// Fig 16 — "Number of SMuxes used in Duet and Ananta" (§8.2).
//
// For total VIP traffic of {1.25, 2.5, 5, 10} Tbps (paper units): Ananta
// needs traffic/capacity SMuxes; Duet needs only enough to cover (a) the
// leftover VIPs that didn't fit on HMuxes, and (b) the worst-case failover
// traffic (whole container, or 3 switches). Both at 3.6 Gbps and 10 Gbps per
// SMux. Paper: Duet uses 12-24x fewer SMuxes (3.6G) / 8-12x fewer (10G),
// with most of Duet's SMuxes provisioned for failure, not steady state.
#include <cstdio>

#include "common.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 16", "SMuxes needed: Duet vs Ananta across traffic loads", &scale);
  bench::paper_note("Duet needs 12-24x fewer SMuxes at 3.6G capacity, 8-12x fewer at 10G");

  const auto fabric = build_fattree(scale.fabric);
  const DuetConfig cfg;

  TablePrinter t{{"traffic (paper Tbps)", "simulated Gbps", "VIPs on HMux", "HMux traffic %",
                  "Duet (3.6G)", "Ananta (3.6G)", "ratio", "Duet (10G)", "Ananta (10G)",
                  "ratio(10G)"}};

  for (const double paper_tbps : {1.25, 2.5, 5.0, 10.0}) {
    const auto trace = bench::make_trace(fabric, scale, paper_tbps, 2,
                                         20140817 + static_cast<std::uint64_t>(paper_tbps * 4));
    const auto demands = build_demands(fabric, trace, 0);
    const double total = total_demand_gbps(demands);

    const VipAssigner assigner{fabric, bench::make_options(scale)};
    const auto a = assigner.assign(demands);
    const auto failover = analyze_failover(fabric, demands, a);

    const std::size_t duet36 =
        smuxes_needed(a.smux_gbps, failover.worst_gbps(), 0.0, 3.6);
    const std::size_t ananta36 = smuxes_needed(total, 0.0, 0.0, 3.6);
    const std::size_t duet10 = smuxes_needed(a.smux_gbps, failover.worst_gbps(), 0.0, 10.0);
    const std::size_t ananta10 = smuxes_needed(total, 0.0, 0.0, 10.0);

    t.add_row({TablePrinter::fmt(paper_tbps, "%.2f"), TablePrinter::fmt(total, "%.0f"),
               TablePrinter::fmt_int(static_cast<long long>(a.placement.size())),
               format_pct(a.hmux_fraction()),
               TablePrinter::fmt_int(static_cast<long long>(duet36)),
               TablePrinter::fmt_int(static_cast<long long>(ananta36)),
               TablePrinter::fmt(static_cast<double>(ananta36) / static_cast<double>(duet36),
                                 "%.1fx"),
               TablePrinter::fmt_int(static_cast<long long>(duet10)),
               TablePrinter::fmt_int(static_cast<long long>(ananta10)),
               TablePrinter::fmt(static_cast<double>(ananta10) / static_cast<double>(duet10),
                                 "%.1fx")});
  }
  t.print();
  std::printf(
      "\nnote: as in the paper, most of Duet's SMuxes exist to absorb failover\n"
      "traffic (worst of: one container, 3 switches); the leftover steady-state\n"
      "VIP traffic is a small fraction.\n");
  return 0;
}
