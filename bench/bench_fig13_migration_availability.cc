// Fig 13 — "VIP availability during migration" (§7.3).
//
// Three simultaneous migrations launched at T1: VIP1 HMux->SMux, VIP2
// SMux->HMux, VIP3 HMux->HMux (through the SMux stepping stone). Probes
// every 3 ms. Paper: zero loss; ~450 ms per migration wave (FIB dominated);
// a visible latency bump while a VIP rides the software path.
#include <cstdio>

#include "common.h"
#include "sim/probe.h"
#include "util/chart.h"

using namespace duet;

int main() {
  bench::header("Figure 13", "VIP availability during migration (H->S, S->H, H->H)");
  bench::paper_note(
      "all VIPs remain available; migration waves take ~400-450ms each; "
      "slight latency increase while on SMux");

  constexpr double kMs = 1e3;
  DuetConfig cfg;
  TestbedSim sim{FatTreeParams::testbed(), cfg, 5};
  const auto& ft = sim.fabric();
  sim.deploy_smux(ft.tors[0]);
  sim.deploy_smux(ft.tors[1]);
  sim.deploy_smux(ft.tors[2]);

  const Ipv4Address vip1{100, 0, 0, 1}, vip2{100, 0, 0, 2}, vip3{100, 0, 0, 3};
  sim.define_vip(vip1, {ft.servers_by_tor[3][0]});
  sim.define_vip(vip2, {ft.servers_by_tor[3][1]});
  sim.define_vip(vip3, {ft.servers_by_tor[3][2]});
  sim.assign_vip_to_hmux(vip1, ft.cores[0]);
  sim.assign_vip_to_hmux(vip3, ft.cores[1]);

  const double kT1 = 100 * kMs;
  sim.schedule_migration(kT1, vip1, std::nullopt);   // H->S
  sim.schedule_migration(kT1, vip2, ft.aggs[0]);     // S->H
  sim.schedule_migration(kT1, vip3, ft.cores[0]);    // H->H via SMux

  const Ipv4Address src = ft.servers_by_tor[1][10];
  for (const auto v : {vip1, vip2, vip3}) sim.start_probes(v, src, 0.0, 2200 * kMs, 3 * kMs);
  sim.run_until(2200 * kMs);

  // 100 ms bins: median latency + which mux type served.
  TablePrinter t{{"t (ms)", "VIP1 H->S (ms/via)", "VIP2 S->H (ms/via)", "VIP3 H->H (ms/via)"}};
  auto bin_cell = [&](Ipv4Address vip, int bin) -> std::string {
    Summary s;
    int hmux = 0, smux = 0, lost = 0;
    for (const auto& p : sim.samples(vip)) {
      if (p.t_us < bin * 100 * kMs || p.t_us >= (bin + 1) * 100 * kMs) continue;
      if (p.lost) {
        ++lost;
        continue;
      }
      s.add(p.rtt_us / 1e3);
      (p.via == ProbeVia::kHmux ? hmux : smux)++;
    }
    if (lost > 0) return "LOST!";
    if (s.empty()) return "-";
    return TablePrinter::fmt(s.median()) + (hmux >= smux ? " H" : " S");
  };
  for (int bin = 0; bin < 22; ++bin) {
    t.add_row({TablePrinter::fmt_int(bin * 100), bin_cell(vip1, bin), bin_cell(vip2, bin),
               bin_cell(vip3, bin)});
  }
  t.print();

  // The figure: each VIP's RTT timeline; the SMux phase shows as the raised
  // noisy band (cf. Fig 13's gray segments).
  const struct { const char* name; Ipv4Address vip; char glyph; } rows[] = {
      {"VIP1 H->S", vip1, '1'}, {"VIP2 S->H", vip2, '2'}, {"VIP3 H->H", vip3, '3'}};
  for (const auto& row : rows) {
    Series line{row.name, row.glyph, {}};
    for (const auto& p : sim.samples(row.vip)) {
      if (static_cast<long>(p.t_us / 3e3) % 4 != 0) continue;  // thin out
      line.points.push_back({p.t_us / kMs, p.lost ? -1.0 : p.rtt_us / 1e3});
    }
    ChartOptions co;
    co.height = 8;
    co.x_label = std::string(row.name) + " — migration command at 100ms";
    co.y_label = "RTT (ms)";
    std::printf("\n%s\n", render_chart({line}, co).c_str());
  }

  int total_lost = 0;
  for (const auto v : {vip1, vip2, vip3}) {
    for (const auto& p : sim.samples(v)) total_lost += p.lost;
  }
  std::printf("\ntotal lost probes across all three migrations: %d (paper: 0 — no failure\n"
              "detection involved, the SMux backstop covers every transition)\n", total_lost);
  return 0;
}
