// BENCH_live — the live runtime (duetd + duetload) on loopback.
//
// Two phases over one MuxServer + FakeDipPool deployment, plus an optional
// aggregate multi-worker phase (phase 3) over a second deployment:
//   (1) closed loop: windowed request/response with full per-packet
//       accounting — the RTT histogram (duet.loadgen.rtt_us) is complete,
//       so the latency percentiles are trustworthy;
//   (2) open loop: paced at DUET_LIVE_PPS (default 400 K) for
//       DUET_LIVE_SECONDS — the throughput number. The acceptance line is
//       >= 300 Kpps sustained on loopback with ZERO parse failures (every
//       datagram on the wire is a valid nested-IPv4 Duet packet). 300 Kpps
//       is the paper's Fig 1/11 single-SMux saturation point — the batched
//       hot path (DESIGN.md §12) clears it on one worker; the seed
//       (per-packet std::unordered_map path) sustained ~100 K on the same
//       floor, recorded in the seed_floor_pps gauge.
//
// The floor is a CAPABILITY gate, so phase 2 is best-of-N: with loadgen,
// mux, and echo DIPs timesharing the cores of a small runner, any single
// 2-second window is at the mercy of scheduler rhythm (observed spread on
// one core: ~230 K to ~435 K for identical binaries). Up to
// DUET_LIVE_ATTEMPTS (default 3) open-loop runs, stopping at the first
// that clears the floor; the best attempt is the reported number. Wire
// corruption in ANY attempt still fails — bugs don't get retries.
//
// The merged registries (mux + both generators + headline gauges) land in
// BENCH_live.json. Exit status: 0 on success or a skipped sandbox, 1 when
// the wire was corrupted (parse failures / integrity / remap violations) —
// a real bug, not machine variance. A below-target pps prints a warning by
// default (shared CI machines can't promise cycles); DUET_LIVE_STRICT=1
// makes it exit 1 — the CI perf-smoke leg's acceptance gate.
//
// Phase 3 (aggregate): a second deployment — stateless engine so the
// in-process fast tier serves, pin_cpus workers behind one SO_REUSEPORT
// group, DUET_LIVE_AGG_GENS paced generators running concurrently — gated
// on >= DUET_LIVE_AGG_MIN_PPS (default 1 Mpps) AGGREGATE send rate, the
// paper's scale-out claim (§5.2: capacity grows linearly with SMux count).
// The phase SKIPS (exit 0) without batched io or enough CPUs for
// workers + generators + the echo pool; below-floor is a warning unless
// DUET_LIVE_AGG_STRICT=1. Corruption in any phase always fails.
//
// Env knobs: DUET_LIVE_SECONDS, DUET_LIVE_PPS, DUET_LIVE_MIN_PPS,
// DUET_LIVE_WORKERS, DUET_LIVE_ATTEMPTS, DUET_LIVE_STRICT,
// DUET_LIVE_AGG_{WORKERS,GENS,PPS,MIN_PPS,SECONDS,ATTEMPTS,STRICT},
// DUET_BENCH_QUICK (halves the phases).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common.h"
#include "duet/config.h"
#include "net/hash.h"
#include "runtime/fake_dip.h"
#include "runtime/load_gen.h"
#include "runtime/mux_server.h"

using namespace duet;

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main() {
  bench::header("live", "duetd loopback throughput and latency (real UDP sockets)");

  constexpr auto kLoopback = Ipv4Address{127, 0, 0, 1};
  if (!runtime::UdpSocket::bind(runtime::Endpoint{kLoopback, 0}).has_value()) {
    std::printf("SKIP: no loopback UDP sockets in this sandbox\n");
    return 0;
  }
  std::printf("batched io (recvmmsg/sendmmsg): %s\n",
              runtime::kBatchIoAvailable ? "available" : "fallback (one syscall per packet)");

  const bool quick = bench::quick_mode();
  const double duration_s = env_or("DUET_LIVE_SECONDS", quick ? 1.0 : 2.0);
  const double pps = env_or("DUET_LIVE_PPS", 400e3);
  const double min_pps = env_or("DUET_LIVE_MIN_PPS", 300e3);
  const auto workers = static_cast<std::size_t>(env_or("DUET_LIVE_WORKERS", 1));
  const auto max_attempts = std::max<std::size_t>(
      1, static_cast<std::size_t>(env_or("DUET_LIVE_ATTEMPTS", 3)));
  const char* strict_env = std::getenv("DUET_LIVE_STRICT");
  const bool strict = strict_env != nullptr && strict_env[0] != '\0' && strict_env[0] != '0';
  const std::uint64_t closed_packets = quick ? 2000 : 10000;

  // One deployment for both phases: 2 VIPs x 4 echo DIPs. One worker by
  // default: the 300 Kpps floor is a single-core claim (Fig 1/11), and on
  // small machines the loadgen + DIP echo threads need the other cores.
  const FlowHasher hasher{0xd0e7ULL};
  runtime::MuxServerOptions mo;
  mo.workers = workers;
  mo.hasher = hasher;
  runtime::MuxServer mux{mo, DuetConfig{}};
  runtime::FakeDipPool dips;
  std::vector<Ipv4Address> vips;
  std::vector<std::vector<Ipv4Address>> pools;  // per-VIP, reused by phase 3
  std::vector<std::pair<Ipv4Address, runtime::Endpoint>> dip_endpoints;
  for (std::size_t v = 0; v < 2; ++v) {
    const Ipv4Address vip{static_cast<std::uint32_t>((100u << 24) + 256 * v + 1)};
    std::vector<Ipv4Address> pool;
    for (std::size_t d = 0; d < 4; ++d) {
      const Ipv4Address dip{static_cast<std::uint32_t>((10u << 24) + (v << 16) + d + 1)};
      const auto at = dips.add_dip(dip);
      if (!at.has_value()) {
        std::printf("SKIP: could not bind echo DIP sockets\n");
        return 0;
      }
      mux.map_dip(dip, *at);
      dip_endpoints.emplace_back(dip, *at);
      pool.push_back(dip);
    }
    mux.set_vip(vip, pool);
    pools.push_back(std::move(pool));
    vips.push_back(vip);
  }
  if (!dips.start() || !mux.start()) {
    std::printf("SKIP: could not start the loopback deployment\n");
    return 0;
  }

  // Phase 1: closed-loop RTT.
  runtime::LoadGenOptions closed_opts;
  closed_opts.target = mux.listen_endpoint();
  closed_opts.sockets = 2;
  closed_opts.window = 64;
  closed_opts.packet_bytes = 128;
  runtime::LoadGenerator closed_gen{closed_opts};
  if (!closed_gen.init()) {
    std::printf("SKIP: could not bind load sockets\n");
    return 0;
  }
  const auto closed_flows = closed_gen.make_flows(vips, 64);
  std::printf("\nphase 1: closed loop, %llu packets over %zu flows\n",
              static_cast<unsigned long long>(closed_packets), closed_flows.size());
  const auto closed = closed_gen.run_closed(closed_flows, closed_packets);
  const auto* rtt = closed_gen.metrics().find_histogram("duet.loadgen.rtt_us");
  TablePrinter t1{{"metric", "value"}};
  t1.add_row({"received / sent", TablePrinter::fmt_int(static_cast<long long>(closed.received)) +
                                     " / " +
                                     TablePrinter::fmt_int(static_cast<long long>(closed.sent))});
  if (rtt != nullptr && !rtt->empty()) {
    t1.add_row({"rtt p50 (us)", TablePrinter::fmt(rtt->percentile(50), "%.0f")});
    t1.add_row({"rtt p90 (us)", TablePrinter::fmt(rtt->percentile(90), "%.0f")});
    t1.add_row({"rtt p99 (us)", TablePrinter::fmt(rtt->percentile(99), "%.0f")});
    t1.add_row({"rtt max (us)", TablePrinter::fmt(rtt->max(), "%.0f")});
  }
  t1.print();

  // Phase 2: open-loop throughput, best of up to max_attempts runs (the
  // floor is a capability gate; see the header comment). Corruption
  // counters accumulate across every attempt — retries never hide a bug.
  runtime::LoadGenOptions open_opts;
  open_opts.target = mux.listen_endpoint();
  open_opts.sockets = 2;
  open_opts.packet_bytes = 128;
  open_opts.pps = pps;
  open_opts.duration_s = duration_s;
  std::printf("\nphase 2: open loop, %.0f pps offered for %.1f s, best of <= %zu\n", pps,
              duration_s, max_attempts);
  std::unique_ptr<runtime::LoadGenerator> open_gen;
  runtime::LoadReport open;
  std::uint64_t open_violations = 0;
  std::size_t attempts = 0;
  for (std::size_t a = 0; a < max_attempts; ++a) {
    auto gen = std::make_unique<runtime::LoadGenerator>(open_opts);
    if (!gen->init()) {
      std::printf("SKIP: could not bind load sockets\n");
      return 0;
    }
    const auto open_flows = gen->make_flows(vips, 256);
    const auto r = gen->run_open(open_flows);
    ++attempts;
    open_violations += r.integrity_failures + r.remap_violations;
    std::printf("  attempt %zu: sustained %.0f pps\n", a + 1, r.send_pps);
    if (open_gen == nullptr || r.send_pps > open.send_pps) {
      open = r;
      open_gen = std::move(gen);
    }
    if (open.send_pps >= min_pps) break;  // capability shown; stop early
  }

  mux.shutdown();
  mux.join();

  // Phase 3: aggregate multi-worker throughput — the multi-Mpps claim. A
  // SECOND deployment over the same echo DIPs: stateless engine (so the
  // in-process fast tier serves the steady state, DESIGN.md §17), pinned
  // SO_REUSEPORT workers, several paced generators running concurrently.
  // Aggregate pps = sum of the generators' send rates. Like phase 2 the
  // floor is a CAPABILITY gate (best-of-attempts, warning unless
  // DUET_LIVE_AGG_STRICT=1); unlike phase 2 it also needs cores — with
  // fewer than workers + generators + 1 CPUs the phase SKIPS (exit 0):
  // timesharing that deployment on a laptop measures the scheduler, not
  // the mux. Corruption in any attempt still fails hard.
  const auto agg_workers = static_cast<std::size_t>(env_or("DUET_LIVE_AGG_WORKERS", 4));
  const auto agg_gens = static_cast<std::size_t>(env_or("DUET_LIVE_AGG_GENS", 2));
  const double agg_pps = env_or("DUET_LIVE_AGG_PPS", 1.6e6);
  const double agg_min_pps = env_or("DUET_LIVE_AGG_MIN_PPS", 1e6);
  const double agg_duration_s = env_or("DUET_LIVE_AGG_SECONDS", duration_s);
  const auto agg_attempts_max = std::max<std::size_t>(
      1, static_cast<std::size_t>(env_or("DUET_LIVE_AGG_ATTEMPTS", 3)));
  const char* agg_strict_env = std::getenv("DUET_LIVE_AGG_STRICT");
  const bool agg_strict =
      agg_strict_env != nullptr && agg_strict_env[0] != '\0' && agg_strict_env[0] != '0';
  const auto agg_cpus_needed = static_cast<std::size_t>(env_or(
      "DUET_LIVE_AGG_MIN_CPUS", static_cast<double>(agg_workers + agg_gens + 1)));

  double agg_best_pps = 0.0;
  std::uint64_t agg_violations = 0;
  std::uint64_t agg_parse_failures = 0;
  std::uint64_t agg_fast_hits = 0;
  std::uint64_t agg_fast_misses = 0;
  std::size_t agg_attempts = 0;
  bool agg_ran = false;
  bool agg_decision_bug = false;
  if (!runtime::kBatchIoAvailable) {
    std::printf("\nphase 3: SKIP aggregate — no batched io on this platform\n");
  } else if (runtime::online_cpus() < agg_cpus_needed) {
    std::printf("\nphase 3: SKIP aggregate — %zu CPUs online, need >= %zu "
                "(%zu workers + %zu generators + dips)\n",
                runtime::online_cpus(), agg_cpus_needed, agg_workers, agg_gens);
  } else {
    DuetConfig agg_cfg;
    agg_cfg.smux_engine = SmuxEngine::kStateless;
    runtime::MuxServerOptions amo;
    amo.workers = agg_workers;
    amo.pin_cpus = true;
    amo.hasher = hasher;
    runtime::MuxServer agg_mux{amo, agg_cfg};
    for (const auto& [dip, at] : dip_endpoints) agg_mux.map_dip(dip, at);
    for (std::size_t v = 0; v < vips.size(); ++v) agg_mux.set_vip(vips[v], pools[v]);
    if (!agg_mux.start()) {
      std::printf("\nphase 3: SKIP aggregate — could not start the pinned deployment\n");
    } else {
      agg_ran = true;
      std::printf("\nphase 3: aggregate, %zu pinned workers, %zu generators, "
                  "%.0f pps offered for %.1f s, best of <= %zu\n",
                  agg_workers, agg_gens, agg_pps, agg_duration_s, agg_attempts_max);
      runtime::LoadGenOptions agg_opts;
      agg_opts.target = agg_mux.listen_endpoint();
      agg_opts.sockets = 2;
      agg_opts.packet_bytes = 128;
      agg_opts.pps = agg_pps / static_cast<double>(agg_gens);
      agg_opts.duration_s = agg_duration_s;
      for (std::size_t a = 0; a < agg_attempts_max; ++a) {
        std::vector<std::unique_ptr<runtime::LoadGenerator>> gens;
        std::vector<std::vector<FiveTuple>> gen_flows;
        bool bound = true;
        for (std::size_t g = 0; g < agg_gens; ++g) {
          auto gen = std::make_unique<runtime::LoadGenerator>(agg_opts);
          if (!gen->init()) {
            bound = false;
            break;
          }
          gen_flows.push_back(gen->make_flows(vips, 256));
          gens.push_back(std::move(gen));
        }
        if (!bound) {
          std::printf("  attempt %zu: SKIP — could not bind generator sockets\n", a + 1);
          break;
        }
        std::vector<runtime::LoadReport> reports(agg_gens);
        std::vector<std::thread> threads;
        threads.reserve(agg_gens);
        for (std::size_t g = 0; g < agg_gens; ++g) {
          threads.emplace_back([&, g] { reports[g] = gens[g]->run_open(gen_flows[g]); });
        }
        for (auto& th : threads) th.join();
        ++agg_attempts;
        double sum_pps = 0.0;
        for (const auto& r : reports) {
          sum_pps += r.send_pps;
          agg_violations += r.integrity_failures + r.remap_violations;
        }
        std::printf("  attempt %zu: aggregate %.0f pps\n", a + 1, sum_pps);
        agg_best_pps = std::max(agg_best_pps, sum_pps);
        if (agg_best_pps >= agg_min_pps) break;  // capability shown; stop early
      }
      agg_mux.shutdown();
      agg_mux.join();
      agg_parse_failures = agg_mux.metrics().counter("duet.runtime.parse_failures").value();
      agg_fast_hits = agg_mux.metrics().counter("duet.runtime.fast_tier.hits").value();
      agg_fast_misses = agg_mux.metrics().counter("duet.runtime.fast_tier.misses").value();
      const auto agg_tx = agg_mux.metrics().counter("duet.runtime.tx_packets").value();
      // Both VIPs are plain stateless pools, so the tier must admit them and
      // serve essentially every packet; a zero here is a decision-path bug
      // (tier never engaged), not machine variance.
      if (agg_tx > 0 && agg_fast_hits == 0) {
        std::printf("  FAIL: fast tier served 0 of %llu forwarded packets\n",
                    static_cast<unsigned long long>(agg_tx));
        agg_decision_bug = true;
      } else if (agg_tx > 0) {
        std::printf("  fast tier served %llu hits / %llu misses\n",
                    static_cast<unsigned long long>(agg_fast_hits),
                    static_cast<unsigned long long>(agg_fast_misses));
      }
    }
  }

  dips.shutdown();
  dips.join();

  const auto parse_failures = mux.metrics().counter("duet.runtime.parse_failures").value();
  const auto forwarded = mux.metrics().counter("duet.runtime.tx_packets").value();
  const double delivered_pps = open.elapsed_s > 0 ? open.received / open.elapsed_s : 0.0;
  TablePrinter t2{{"metric", "value"}};
  t2.add_row({"offered (pps)", TablePrinter::fmt(pps, "%.0f")});
  t2.add_row({"sent (pps)", TablePrinter::fmt(open.send_pps, "%.0f")});
  t2.add_row({"replies delivered (pps)", TablePrinter::fmt(delivered_pps, "%.0f")});
  t2.add_row({"mux forwarded (pkts)", TablePrinter::fmt_int(static_cast<long long>(forwarded))});
  t2.add_row({"send drops", TablePrinter::fmt_int(static_cast<long long>(open.send_drops))});
  t2.add_row({"parse failures", TablePrinter::fmt_int(static_cast<long long>(parse_failures))});
  t2.print();

  // Everything into one registry for BENCH_live.json: the mux's counters,
  // both generators', and the headline numbers as gauges.
  telemetry::MetricRegistry out;
  out.merge(mux.metrics());
  out.merge(closed_gen.metrics());
  out.merge(open_gen->metrics());  // best attempt only; the mux side spans all
  out.gauge("duet.live.offered_pps").set(pps);
  out.gauge("duet.live.attempts").set(static_cast<double>(attempts));
  out.gauge("duet.live.send_pps").set(open.send_pps);
  out.gauge("duet.live.delivered_pps").set(delivered_pps);
  out.gauge("duet.live.duration_s").set(open.elapsed_s);
  out.gauge("duet.live.workers").set(static_cast<double>(workers));
  out.gauge("duet.live.floor_pps").set(min_pps);
  // The acceptance floor before the batched hot path landed, for before/after
  // diffs of BENCH_live.json across versions.
  out.gauge("duet.live.seed_floor_pps").set(100e3);
  if (rtt != nullptr && !rtt->empty()) {
    out.gauge("duet.live.rtt_p50_us").set(rtt->percentile(50));
    out.gauge("duet.live.rtt_p99_us").set(rtt->percentile(99));
  }
  out.gauge("duet.live.agg_ran").set(agg_ran ? 1.0 : 0.0);
  out.gauge("duet.live.agg_workers").set(static_cast<double>(agg_workers));
  out.gauge("duet.live.agg_generators").set(static_cast<double>(agg_gens));
  out.gauge("duet.live.agg_offered_pps").set(agg_pps);
  out.gauge("duet.live.agg_floor_pps").set(agg_min_pps);
  out.gauge("duet.live.agg_attempts").set(static_cast<double>(agg_attempts));
  out.gauge("duet.live.agg_send_pps").set(agg_best_pps);
  out.gauge("duet.live.agg_fast_tier_hits").set(static_cast<double>(agg_fast_hits));
  out.gauge("duet.live.agg_fast_tier_misses").set(static_cast<double>(agg_fast_misses));
  bench::export_bench_json("live", out);

  const auto corrupted = parse_failures + closed.integrity_failures + closed.remap_violations +
                         open_violations + agg_parse_failures + agg_violations;
  if (corrupted != 0) {
    std::printf("\nFAIL: %llu corrupted/remapped packets on the wire\n",
                static_cast<unsigned long long>(corrupted));
    return 1;
  }
  if (agg_decision_bug) return 1;
  bool failed = false;
  if (open.send_pps < min_pps) {
    std::printf("\n%s: sustained %.0f pps < %.0f floor%s\n", strict ? "FAIL" : "WARNING",
                open.send_pps, min_pps, strict ? "" : " (machine load?)");
    failed = failed || strict;
  } else {
    std::printf("\nOK: sustained %.0f pps >= %.0f floor, zero parse failures\n", open.send_pps,
                min_pps);
  }
  if (agg_ran && agg_attempts > 0) {
    if (agg_best_pps < agg_min_pps) {
      std::printf("%s: aggregate %.0f pps < %.0f floor across %zu workers%s\n",
                  agg_strict ? "FAIL" : "WARNING", agg_best_pps, agg_min_pps, agg_workers,
                  agg_strict ? "" : " (machine load?)");
      failed = failed || agg_strict;
    } else {
      std::printf("OK: aggregate %.0f pps >= %.0f floor across %zu pinned workers\n",
                  agg_best_pps, agg_min_pps, agg_workers);
    }
  }
  return failed ? 1 : 0;
}
