// BENCH_live — the live runtime (duetd + duetload) on loopback.
//
// Two phases over one MuxServer + FakeDipPool deployment:
//   (1) closed loop: windowed request/response with full per-packet
//       accounting — the RTT histogram (duet.loadgen.rtt_us) is complete,
//       so the latency percentiles are trustworthy;
//   (2) open loop: paced at DUET_LIVE_PPS (default 400 K) for
//       DUET_LIVE_SECONDS — the throughput number. The acceptance line is
//       >= 300 Kpps sustained on loopback with ZERO parse failures (every
//       datagram on the wire is a valid nested-IPv4 Duet packet). 300 Kpps
//       is the paper's Fig 1/11 single-SMux saturation point — the batched
//       hot path (DESIGN.md §12) clears it on one worker; the seed
//       (per-packet std::unordered_map path) sustained ~100 K on the same
//       floor, recorded in the seed_floor_pps gauge.
//
// The floor is a CAPABILITY gate, so phase 2 is best-of-N: with loadgen,
// mux, and echo DIPs timesharing the cores of a small runner, any single
// 2-second window is at the mercy of scheduler rhythm (observed spread on
// one core: ~230 K to ~435 K for identical binaries). Up to
// DUET_LIVE_ATTEMPTS (default 3) open-loop runs, stopping at the first
// that clears the floor; the best attempt is the reported number. Wire
// corruption in ANY attempt still fails — bugs don't get retries.
//
// The merged registries (mux + both generators + headline gauges) land in
// BENCH_live.json. Exit status: 0 on success or a skipped sandbox, 1 when
// the wire was corrupted (parse failures / integrity / remap violations) —
// a real bug, not machine variance. A below-target pps prints a warning by
// default (shared CI machines can't promise cycles); DUET_LIVE_STRICT=1
// makes it exit 1 — the CI perf-smoke leg's acceptance gate.
//
// Env knobs: DUET_LIVE_SECONDS, DUET_LIVE_PPS, DUET_LIVE_MIN_PPS,
// DUET_LIVE_WORKERS, DUET_LIVE_ATTEMPTS, DUET_LIVE_STRICT,
// DUET_BENCH_QUICK (halves both phases).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common.h"
#include "duet/config.h"
#include "net/hash.h"
#include "runtime/fake_dip.h"
#include "runtime/load_gen.h"
#include "runtime/mux_server.h"

using namespace duet;

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main() {
  bench::header("live", "duetd loopback throughput and latency (real UDP sockets)");

  constexpr auto kLoopback = Ipv4Address{127, 0, 0, 1};
  if (!runtime::UdpSocket::bind(runtime::Endpoint{kLoopback, 0}).has_value()) {
    std::printf("SKIP: no loopback UDP sockets in this sandbox\n");
    return 0;
  }
  std::printf("batched io (recvmmsg/sendmmsg): %s\n",
              runtime::kBatchIoAvailable ? "available" : "fallback (one syscall per packet)");

  const bool quick = bench::quick_mode();
  const double duration_s = env_or("DUET_LIVE_SECONDS", quick ? 1.0 : 2.0);
  const double pps = env_or("DUET_LIVE_PPS", 400e3);
  const double min_pps = env_or("DUET_LIVE_MIN_PPS", 300e3);
  const auto workers = static_cast<std::size_t>(env_or("DUET_LIVE_WORKERS", 1));
  const auto max_attempts = std::max<std::size_t>(
      1, static_cast<std::size_t>(env_or("DUET_LIVE_ATTEMPTS", 3)));
  const char* strict_env = std::getenv("DUET_LIVE_STRICT");
  const bool strict = strict_env != nullptr && strict_env[0] != '\0' && strict_env[0] != '0';
  const std::uint64_t closed_packets = quick ? 2000 : 10000;

  // One deployment for both phases: 2 VIPs x 4 echo DIPs. One worker by
  // default: the 300 Kpps floor is a single-core claim (Fig 1/11), and on
  // small machines the loadgen + DIP echo threads need the other cores.
  const FlowHasher hasher{0xd0e7ULL};
  runtime::MuxServerOptions mo;
  mo.workers = workers;
  mo.hasher = hasher;
  runtime::MuxServer mux{mo, DuetConfig{}};
  runtime::FakeDipPool dips;
  std::vector<Ipv4Address> vips;
  for (std::size_t v = 0; v < 2; ++v) {
    const Ipv4Address vip{static_cast<std::uint32_t>((100u << 24) + 256 * v + 1)};
    std::vector<Ipv4Address> pool;
    for (std::size_t d = 0; d < 4; ++d) {
      const Ipv4Address dip{static_cast<std::uint32_t>((10u << 24) + (v << 16) + d + 1)};
      const auto at = dips.add_dip(dip);
      if (!at.has_value()) {
        std::printf("SKIP: could not bind echo DIP sockets\n");
        return 0;
      }
      mux.map_dip(dip, *at);
      pool.push_back(dip);
    }
    mux.set_vip(vip, std::move(pool));
    vips.push_back(vip);
  }
  if (!dips.start() || !mux.start()) {
    std::printf("SKIP: could not start the loopback deployment\n");
    return 0;
  }

  // Phase 1: closed-loop RTT.
  runtime::LoadGenOptions closed_opts;
  closed_opts.target = mux.listen_endpoint();
  closed_opts.sockets = 2;
  closed_opts.window = 64;
  closed_opts.packet_bytes = 128;
  runtime::LoadGenerator closed_gen{closed_opts};
  if (!closed_gen.init()) {
    std::printf("SKIP: could not bind load sockets\n");
    return 0;
  }
  const auto closed_flows = closed_gen.make_flows(vips, 64);
  std::printf("\nphase 1: closed loop, %llu packets over %zu flows\n",
              static_cast<unsigned long long>(closed_packets), closed_flows.size());
  const auto closed = closed_gen.run_closed(closed_flows, closed_packets);
  const auto* rtt = closed_gen.metrics().find_histogram("duet.loadgen.rtt_us");
  TablePrinter t1{{"metric", "value"}};
  t1.add_row({"received / sent", TablePrinter::fmt_int(static_cast<long long>(closed.received)) +
                                     " / " +
                                     TablePrinter::fmt_int(static_cast<long long>(closed.sent))});
  if (rtt != nullptr && !rtt->empty()) {
    t1.add_row({"rtt p50 (us)", TablePrinter::fmt(rtt->percentile(50), "%.0f")});
    t1.add_row({"rtt p90 (us)", TablePrinter::fmt(rtt->percentile(90), "%.0f")});
    t1.add_row({"rtt p99 (us)", TablePrinter::fmt(rtt->percentile(99), "%.0f")});
    t1.add_row({"rtt max (us)", TablePrinter::fmt(rtt->max(), "%.0f")});
  }
  t1.print();

  // Phase 2: open-loop throughput, best of up to max_attempts runs (the
  // floor is a capability gate; see the header comment). Corruption
  // counters accumulate across every attempt — retries never hide a bug.
  runtime::LoadGenOptions open_opts;
  open_opts.target = mux.listen_endpoint();
  open_opts.sockets = 2;
  open_opts.packet_bytes = 128;
  open_opts.pps = pps;
  open_opts.duration_s = duration_s;
  std::printf("\nphase 2: open loop, %.0f pps offered for %.1f s, best of <= %zu\n", pps,
              duration_s, max_attempts);
  std::unique_ptr<runtime::LoadGenerator> open_gen;
  runtime::LoadReport open;
  std::uint64_t open_violations = 0;
  std::size_t attempts = 0;
  for (std::size_t a = 0; a < max_attempts; ++a) {
    auto gen = std::make_unique<runtime::LoadGenerator>(open_opts);
    if (!gen->init()) {
      std::printf("SKIP: could not bind load sockets\n");
      return 0;
    }
    const auto open_flows = gen->make_flows(vips, 256);
    const auto r = gen->run_open(open_flows);
    ++attempts;
    open_violations += r.integrity_failures + r.remap_violations;
    std::printf("  attempt %zu: sustained %.0f pps\n", a + 1, r.send_pps);
    if (open_gen == nullptr || r.send_pps > open.send_pps) {
      open = r;
      open_gen = std::move(gen);
    }
    if (open.send_pps >= min_pps) break;  // capability shown; stop early
  }

  mux.shutdown();
  mux.join();
  dips.shutdown();
  dips.join();

  const auto parse_failures = mux.metrics().counter("duet.runtime.parse_failures").value();
  const auto forwarded = mux.metrics().counter("duet.runtime.tx_packets").value();
  const double delivered_pps = open.elapsed_s > 0 ? open.received / open.elapsed_s : 0.0;
  TablePrinter t2{{"metric", "value"}};
  t2.add_row({"offered (pps)", TablePrinter::fmt(pps, "%.0f")});
  t2.add_row({"sent (pps)", TablePrinter::fmt(open.send_pps, "%.0f")});
  t2.add_row({"replies delivered (pps)", TablePrinter::fmt(delivered_pps, "%.0f")});
  t2.add_row({"mux forwarded (pkts)", TablePrinter::fmt_int(static_cast<long long>(forwarded))});
  t2.add_row({"send drops", TablePrinter::fmt_int(static_cast<long long>(open.send_drops))});
  t2.add_row({"parse failures", TablePrinter::fmt_int(static_cast<long long>(parse_failures))});
  t2.print();

  // Everything into one registry for BENCH_live.json: the mux's counters,
  // both generators', and the headline numbers as gauges.
  telemetry::MetricRegistry out;
  out.merge(mux.metrics());
  out.merge(closed_gen.metrics());
  out.merge(open_gen->metrics());  // best attempt only; the mux side spans all
  out.gauge("duet.live.offered_pps").set(pps);
  out.gauge("duet.live.attempts").set(static_cast<double>(attempts));
  out.gauge("duet.live.send_pps").set(open.send_pps);
  out.gauge("duet.live.delivered_pps").set(delivered_pps);
  out.gauge("duet.live.duration_s").set(open.elapsed_s);
  out.gauge("duet.live.workers").set(static_cast<double>(workers));
  out.gauge("duet.live.floor_pps").set(min_pps);
  // The acceptance floor before the batched hot path landed, for before/after
  // diffs of BENCH_live.json across versions.
  out.gauge("duet.live.seed_floor_pps").set(100e3);
  if (rtt != nullptr && !rtt->empty()) {
    out.gauge("duet.live.rtt_p50_us").set(rtt->percentile(50));
    out.gauge("duet.live.rtt_p99_us").set(rtt->percentile(99));
  }
  bench::export_bench_json("live", out);

  const auto corrupted =
      parse_failures + closed.integrity_failures + closed.remap_violations + open_violations;
  if (corrupted != 0) {
    std::printf("\nFAIL: %llu corrupted/remapped packets on the wire\n",
                static_cast<unsigned long long>(corrupted));
    return 1;
  }
  if (open.send_pps < min_pps) {
    std::printf("\n%s: sustained %.0f pps < %.0f floor%s\n", strict ? "FAIL" : "WARNING",
                open.send_pps, min_pps, strict ? "" : " (machine load?)");
    return strict ? 1 : 0;
  }
  std::printf("\nOK: sustained %.0f pps >= %.0f floor, zero parse failures\n", open.send_pps,
              min_pps);
  return 0;
}
