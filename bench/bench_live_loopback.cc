// BENCH_live — the live runtime (duetd + duetload) on loopback.
//
// Two phases over one MuxServer + FakeDipPool deployment:
//   (1) closed loop: windowed request/response with full per-packet
//       accounting — the RTT histogram (duet.loadgen.rtt_us) is complete,
//       so the latency percentiles are trustworthy;
//   (2) open loop: paced at DUET_LIVE_PPS (default 150 K) for
//       DUET_LIVE_SECONDS — the throughput number. The acceptance line is
//       >= 100 Kpps sustained on loopback with ZERO parse failures (every
//       datagram on the wire is a valid nested-IPv4 Duet packet).
//
// The merged registries (mux + both generators + headline gauges) land in
// BENCH_live.json. Exit status: 0 on success or a skipped sandbox, 1 when
// the wire was corrupted (parse failures / integrity / remap violations) —
// a real bug, not machine variance. A below-target pps prints a warning
// only, since shared CI machines can't promise cycles.
//
// Env knobs: DUET_LIVE_SECONDS, DUET_LIVE_PPS, DUET_LIVE_MIN_PPS,
// DUET_BENCH_QUICK (halves both phases).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.h"
#include "duet/config.h"
#include "net/hash.h"
#include "runtime/fake_dip.h"
#include "runtime/load_gen.h"
#include "runtime/mux_server.h"

using namespace duet;

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main() {
  bench::header("live", "duetd loopback throughput and latency (real UDP sockets)");

  constexpr auto kLoopback = Ipv4Address{127, 0, 0, 1};
  if (!runtime::UdpSocket::bind(runtime::Endpoint{kLoopback, 0}).has_value()) {
    std::printf("SKIP: no loopback UDP sockets in this sandbox\n");
    return 0;
  }
  std::printf("batched io (recvmmsg/sendmmsg): %s\n",
              runtime::kBatchIoAvailable ? "available" : "fallback (one syscall per packet)");

  const bool quick = bench::quick_mode();
  const double duration_s = env_or("DUET_LIVE_SECONDS", quick ? 1.0 : 2.0);
  const double pps = env_or("DUET_LIVE_PPS", 150e3);
  const double min_pps = env_or("DUET_LIVE_MIN_PPS", 100e3);
  const std::uint64_t closed_packets = quick ? 2000 : 10000;

  // One deployment for both phases: 2 workers, 2 VIPs x 4 echo DIPs.
  const FlowHasher hasher{0xd0e7ULL};
  runtime::MuxServerOptions mo;
  mo.workers = 2;
  mo.hasher = hasher;
  runtime::MuxServer mux{mo, DuetConfig{}};
  runtime::FakeDipPool dips;
  std::vector<Ipv4Address> vips;
  for (std::size_t v = 0; v < 2; ++v) {
    const Ipv4Address vip{static_cast<std::uint32_t>((100u << 24) + 256 * v + 1)};
    std::vector<Ipv4Address> pool;
    for (std::size_t d = 0; d < 4; ++d) {
      const Ipv4Address dip{static_cast<std::uint32_t>((10u << 24) + (v << 16) + d + 1)};
      const auto at = dips.add_dip(dip);
      if (!at.has_value()) {
        std::printf("SKIP: could not bind echo DIP sockets\n");
        return 0;
      }
      mux.map_dip(dip, *at);
      pool.push_back(dip);
    }
    mux.set_vip(vip, std::move(pool));
    vips.push_back(vip);
  }
  if (!dips.start() || !mux.start()) {
    std::printf("SKIP: could not start the loopback deployment\n");
    return 0;
  }

  // Phase 1: closed-loop RTT.
  runtime::LoadGenOptions closed_opts;
  closed_opts.target = mux.listen_endpoint();
  closed_opts.sockets = 2;
  closed_opts.window = 64;
  closed_opts.packet_bytes = 128;
  runtime::LoadGenerator closed_gen{closed_opts};
  if (!closed_gen.init()) {
    std::printf("SKIP: could not bind load sockets\n");
    return 0;
  }
  const auto closed_flows = closed_gen.make_flows(vips, 64);
  std::printf("\nphase 1: closed loop, %llu packets over %zu flows\n",
              static_cast<unsigned long long>(closed_packets), closed_flows.size());
  const auto closed = closed_gen.run_closed(closed_flows, closed_packets);
  const auto* rtt = closed_gen.metrics().find_histogram("duet.loadgen.rtt_us");
  TablePrinter t1{{"metric", "value"}};
  t1.add_row({"received / sent", TablePrinter::fmt_int(static_cast<long long>(closed.received)) +
                                     " / " +
                                     TablePrinter::fmt_int(static_cast<long long>(closed.sent))});
  if (rtt != nullptr && !rtt->empty()) {
    t1.add_row({"rtt p50 (us)", TablePrinter::fmt(rtt->percentile(50), "%.0f")});
    t1.add_row({"rtt p90 (us)", TablePrinter::fmt(rtt->percentile(90), "%.0f")});
    t1.add_row({"rtt p99 (us)", TablePrinter::fmt(rtt->percentile(99), "%.0f")});
    t1.add_row({"rtt max (us)", TablePrinter::fmt(rtt->max(), "%.0f")});
  }
  t1.print();

  // Phase 2: open-loop throughput.
  runtime::LoadGenOptions open_opts;
  open_opts.target = mux.listen_endpoint();
  open_opts.sockets = 2;
  open_opts.packet_bytes = 128;
  open_opts.pps = pps;
  open_opts.duration_s = duration_s;
  runtime::LoadGenerator open_gen{open_opts};
  if (!open_gen.init()) {
    std::printf("SKIP: could not bind load sockets\n");
    return 0;
  }
  const auto open_flows = open_gen.make_flows(vips, 256);
  std::printf("\nphase 2: open loop, %.0f pps offered for %.1f s\n", pps, duration_s);
  const auto open = open_gen.run_open(open_flows);

  mux.shutdown();
  mux.join();
  dips.shutdown();
  dips.join();

  const auto parse_failures = mux.metrics().counter("duet.runtime.parse_failures").value();
  const auto forwarded = mux.metrics().counter("duet.runtime.tx_packets").value();
  const double delivered_pps = open.elapsed_s > 0 ? open.received / open.elapsed_s : 0.0;
  TablePrinter t2{{"metric", "value"}};
  t2.add_row({"offered (pps)", TablePrinter::fmt(pps, "%.0f")});
  t2.add_row({"sent (pps)", TablePrinter::fmt(open.send_pps, "%.0f")});
  t2.add_row({"replies delivered (pps)", TablePrinter::fmt(delivered_pps, "%.0f")});
  t2.add_row({"mux forwarded (pkts)", TablePrinter::fmt_int(static_cast<long long>(forwarded))});
  t2.add_row({"send drops", TablePrinter::fmt_int(static_cast<long long>(open.send_drops))});
  t2.add_row({"parse failures", TablePrinter::fmt_int(static_cast<long long>(parse_failures))});
  t2.print();

  // Everything into one registry for BENCH_live.json: the mux's counters,
  // both generators', and the headline numbers as gauges.
  telemetry::MetricRegistry out;
  out.merge(mux.metrics());
  out.merge(closed_gen.metrics());
  out.merge(open_gen.metrics());
  out.gauge("duet.live.offered_pps").set(pps);
  out.gauge("duet.live.send_pps").set(open.send_pps);
  out.gauge("duet.live.delivered_pps").set(delivered_pps);
  out.gauge("duet.live.duration_s").set(open.elapsed_s);
  if (rtt != nullptr && !rtt->empty()) {
    out.gauge("duet.live.rtt_p50_us").set(rtt->percentile(50));
    out.gauge("duet.live.rtt_p99_us").set(rtt->percentile(99));
  }
  bench::export_bench_json("live", out);

  const auto corrupted = parse_failures + closed.integrity_failures + open.integrity_failures +
                         closed.remap_violations + open.remap_violations;
  if (corrupted != 0) {
    std::printf("\nFAIL: %llu corrupted/remapped packets on the wire\n",
                static_cast<unsigned long long>(corrupted));
    return 1;
  }
  if (open.send_pps < min_pps) {
    std::printf("\nWARNING: sustained %.0f pps < %.0f target (machine load?)\n", open.send_pps,
                min_pps);
  } else {
    std::printf("\nOK: sustained %.0f pps >= %.0f target, zero parse failures\n", open.send_pps,
                min_pps);
  }
  return 0;
}
