// Fig 17 — "Latency vs. number of SMuxes in Ananta and Duet" (§8.3).
//
// Hold traffic at 10 Tbps (paper units) and sweep Ananta's SMux count from
// 2000 to 15000 (scaled): median VIP RTT falls as per-SMux load drops, but
// only approaches Duet once the deployment is enormous. Duet is a single
// point: its few-hundred SMuxes carry almost nothing; nearly all traffic
// crosses an HMux at switch latency. Paper: Duet = 474 µs with 230 SMuxes;
// Ananta needs 15,000 SMuxes to get close, and is >6 ms at Duet's count.
#include <cstdio>

#include "ananta/ananta.h"
#include "common.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 17", "median latency vs number of SMuxes (Ananta curve, Duet point)",
                &scale);
  bench::paper_note(
      "Duet: ~474us with ~230 SMuxes; Ananta needs ~15000 SMuxes for "
      "comparable latency and is >6ms at Duet's SMux count");

  const auto fabric = build_fattree(scale.fabric);
  const DuetConfig cfg;
  const AnantaModel ananta{cfg};

  const auto trace = bench::make_trace(fabric, scale, 10.0);
  const auto demands = build_demands(fabric, trace, 0);
  const double total = total_demand_gbps(demands);

  // --- Duet point -------------------------------------------------------------
  const VipAssigner assigner{fabric, bench::make_options(scale)};
  const auto a = assigner.assign(demands);
  const auto failover = analyze_failover(fabric, demands, a);
  const std::size_t duet_smuxes =
      smuxes_needed(a.smux_gbps, failover.worst_gbps(), 0.0, cfg.smux_capacity_gbps());
  // Median over traffic: HMux share at switch latency (+ the <30us VIP
  // indirection detour), SMux share at software latency for the leftover load.
  const double smux_pps = ananta.gbps_to_pps(a.smux_gbps) / static_cast<double>(duet_smuxes);
  const Smux probe{0, FlowHasher{}, cfg};
  const double hmux_rtt = cfg.dc_rtt_us + cfg.indirection_delay_us + cfg.hmux_latency_us;
  const double smux_rtt =
      cfg.dc_rtt_us + probe.median_added_latency_us(probe.utilization(smux_pps));
  const double duet_median =
      a.hmux_fraction() >= 0.5 ? hmux_rtt : smux_rtt;  // median follows the majority share
  std::printf("Duet: %zu SMuxes, median latency %.0f us (%.1f%% of traffic on HMux)\n\n",
              duet_smuxes, duet_median, 100.0 * a.hmux_fraction());

  // --- Ananta curve -----------------------------------------------------------
  TablePrinter t{{"SMuxes (paper-scale)", "SMuxes (simulated)", "per-SMux Kpps",
                  "median latency (us)", "vs Duet"}};
  for (const double paper_n : {2000.0, 3000.0, 5000.0, 8000.0, 10000.0, 15000.0}) {
    const auto n = static_cast<std::size_t>(paper_n * scale.factor);
    const double lat = ananta.median_latency_us(total, n);
    t.add_row({TablePrinter::fmt(paper_n, "%.0f"),
               TablePrinter::fmt_int(static_cast<long long>(n)),
               TablePrinter::fmt(ananta.gbps_to_pps(total) / static_cast<double>(n) / 1e3,
                                 "%.0f"),
               TablePrinter::fmt(lat, "%.0f"),
               TablePrinter::fmt(lat / duet_median, "%.1fx")});
  }
  // And Ananta pinned at Duet's SMux count.
  const double lat_at_duet = ananta.median_latency_us(total, duet_smuxes);
  t.add_row({"(= Duet's count)", TablePrinter::fmt_int(static_cast<long long>(duet_smuxes)),
             TablePrinter::fmt(ananta.gbps_to_pps(total) / static_cast<double>(duet_smuxes) / 1e3,
                               "%.0f"),
             TablePrinter::fmt(lat_at_duet, "%.0f"),
             TablePrinter::fmt(lat_at_duet / duet_median, "%.1fx")});
  t.print();
  return 0;
}
