// Shared scaffolding for the figure-reproduction benches.
//
// The paper's large-scale simulations run on a production datacenter (40
// containers × 40 ToRs, 50 K servers, 30 K VIPs, up to 10 Tbps). The benches
// default to a 1/8-scale replica with every *ratio* preserved — link
// capacities, table sizes per switch, VIPs and traffic scaled together — so
// the comparative shapes (who wins, by what factor, where crossovers fall)
// are unchanged while the whole suite runs in minutes. Traffic axes are
// labelled in PAPER units (the equivalent full-scale Tbps) with the actual
// simulated Gbps alongside.
//
// Set DUET_BENCH_SCALE=paper for the full-size run (slow), =small for CI.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "duet/assignment.h"
#include "duet/config.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "topo/fattree.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/demand.h"
#include "workload/tracegen.h"

namespace duet::bench {

struct DcScale {
  const char* name;
  FatTreeParams fabric;
  double factor;           // our size / paper size (applies to traffic, VIPs, table budget)
  std::size_t vip_count;
  std::size_t host_table_capacity;
};

inline DcScale dc_scale() {
  const char* env = std::getenv("DUET_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "medium";
  if (scale == "paper") {
    return DcScale{"paper (40x40 containers, 50K servers)", FatTreeParams::production(), 1.0,
                   30'000, 16 * 1024};
  }
  if (scale == "small") {
    return DcScale{"small (1/32 of paper)", FatTreeParams::scaled(5, 10, 5), 1.0 / 32.0, 1'000,
                   512};
  }
  // medium: 20 containers x 10 ToRs, 10 cores -> 6400 servers = 1/8 paper.
  // More, slimmer containers keep the failure domain (one container ≈ 5 % of
  // the DC) closer to the paper's 1/40 than a few fat containers would.
  return DcScale{"medium (1/8 of paper)", FatTreeParams::scaled(20, 10, 10), 1.0 / 8.0, 3'750,
                 2'048};
}

// DUET_BENCH_QUICK=1 trims repetition counts (CI smoke legs). The quick run
// exercises the same code paths on the same scenarios, just fewer of them.
inline bool quick_mode() {
  const char* env = std::getenv("DUET_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

// Wall-clock stopwatch for the self-reported parallel speedup lines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Paper-units helper: `paper_tbps` on the x-axis -> simulated Gbps.
inline double scaled_gbps(const DcScale& s, double paper_tbps) {
  return paper_tbps * 1e3 * s.factor;
}

inline Trace make_trace(const FatTree& fabric, const DcScale& s, double paper_tbps,
                        std::size_t epochs = 2, std::uint64_t seed = 20140817) {
  TraceParams p;
  p.vip_count = s.vip_count;
  p.total_gbps = scaled_gbps(s, paper_tbps);
  p.epochs = epochs;
  p.seed = seed;
  return generate_trace(fabric, p);
}

inline AssignmentOptions make_options(const DcScale& s) {
  AssignmentOptions o;
  o.host_table_capacity = s.host_table_capacity;
  return o;
}

inline void header(const char* fig, const char* what, const DcScale* scale = nullptr) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", fig, what);
  if (scale != nullptr) {
    std::printf("scale: %s (traffic axis labelled in paper-equivalent units)\n", scale->name);
  }
  std::printf("================================================================\n");
}

inline void paper_note(const char* note) { std::printf("paper: %s\n\n", note); }

// Machine-readable dump alongside the human tables: writes BENCH_<fig>.json
// (into $DUET_BENCH_JSON_DIR when set, else the working directory) so runs
// can be diffed/plotted without scraping stdout. Keep `fig` filesystem-safe
// ("fig18", "fig12_failover", ...).
inline void export_bench_json(const char* fig, const telemetry::MetricRegistry& registry,
                              const telemetry::EventJournal* journal = nullptr) {
  const char* dir = std::getenv("DUET_BENCH_JSON_DIR");
  std::string path;
  if (dir != nullptr && dir[0] != '\0') {
    path = std::string(dir);
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_";
  path += fig;
  path += ".json";
  if (telemetry::JsonExporter::write_file(path, fig, &registry, journal)) {
    std::printf("json: %s\n", path.c_str());
  } else {
    std::printf("json: FAILED to write %s\n", path.c_str());
  }
}

}  // namespace duet::bench
