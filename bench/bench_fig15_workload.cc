// Fig 15 — "Traffic and DIP distribution" of the trace (§8.1).
//
// The paper characterizes its production trace with three CDFs over the VIP
// population (x = fraction of total VIPs, ranked ascending by the metric):
// cumulative share of bytes, packets, and DIPs. All three are heavily
// skewed: the bottom ~90 % of VIPs contribute a small sliver of bytes while
// a few elephants dominate. This bench prints the same curves for our
// synthetic trace so the calibration is auditable.
#include <algorithm>
#include <cstdio>

#include "common.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 15", "traffic and DIP distribution across VIPs", &scale);
  bench::paper_note(
      "bytes/packets/DIP counts are all highly skewed: most VIPs are mice, a "
      "small head of elephants carries most traffic");

  const auto fabric = build_fattree(scale.fabric);
  const auto trace = bench::make_trace(fabric, scale, 10.0 /*paper Tbps*/);

  // Per-VIP metrics at epoch 0. Packets use a per-VIP mean packet size (the
  // paper's byte and packet CDFs differ slightly for the same reason).
  struct Row {
    double bytes;
    double packets;
    double dips;
  };
  Rng rng{99};
  std::vector<Row> rows;
  rows.reserve(trace.vips.size());
  for (const auto& v : trace.vips) {
    const double gbps = v.gbps(0);
    const double pkt_bytes = rng.uniform_real(200.0, 1500.0);
    rows.push_back({gbps, gbps * 1e9 / 8.0 / pkt_bytes, static_cast<double>(v.dips.size())});
  }

  auto cumulative = [&](auto metric) {
    std::vector<double> vals;
    vals.reserve(rows.size());
    for (const auto& r : rows) vals.push_back(metric(r));
    std::sort(vals.begin(), vals.end());  // ascending: mice first, like Fig 15
    double total = 0.0;
    for (const double v : vals) total += v;
    std::vector<double> cdf(vals.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      acc += vals[i];
      cdf[i] = acc / total;
    }
    return cdf;
  };
  const auto bytes_cdf = cumulative([](const Row& r) { return r.bytes; });
  const auto pkts_cdf = cumulative([](const Row& r) { return r.packets; });
  const auto dips_cdf = cumulative([](const Row& r) { return r.dips; });

  TablePrinter t{{"fraction of VIPs", "cum. bytes", "cum. packets", "cum. DIPs"}};
  for (const double f : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const auto idx = std::min(rows.size() - 1,
                              static_cast<std::size_t>(f * static_cast<double>(rows.size())));
    t.add_row({TablePrinter::fmt(f, "%.2f"), format_pct(bytes_cdf[idx]), format_pct(pkts_cdf[idx]),
               format_pct(dips_cdf[idx])});
  }
  t.print();

  std::printf("\nhead check: top 10%% of VIPs carry %s of bytes (paper: the vast majority)\n",
              format_pct(1.0 - bytes_cdf[static_cast<std::size_t>(0.9 * rows.size())]).c_str());
  std::printf("largest VIP: %.1f Gbps, %zu DIPs; smallest: %.3f Gbps\n",
              trace.vips.front().gbps(0), trace.vips.front().dips.size(),
              trace.vips.back().gbps(0));
  return 0;
}
