// Fig 11 — "HMux has higher capacity" (§7.1).
//
// Testbed (Fig 10): 11 VIPs × 2 DIPs, 3 SMuxes. Probe the UNLOADED 11th VIP
// every 3 ms while the other 10 carry background load:
//   phase 1 (0-100 s):   600K pps total -> 200K per SMux  (within capacity)
//   phase 2 (100-200 s): 1.2M pps total -> 400K per SMux  (saturated)
//   phase 3 (200-300 s): all VIPs moved to ONE HMux at 1.2M pps (line rate)
// Paper: latency <1 ms, then ~25 ms, then back ~1 ms — one switch outperforms
// at least 3 SMuxes.
#include <cstdio>

#include "common.h"
#include "sim/probe.h"
#include "util/chart.h"

using namespace duet;

int main() {
  bench::header("Figure 11", "probe latency timeline: SMux 600K / SMux 1.2M / HMux 1.2M");
  bench::paper_note(
      "latency <1ms at 200Kpps/SMux, ~20-30ms at 400Kpps/SMux, ~1ms after "
      "moving all VIPs to a single HMux");

  constexpr double kSec = 1e6;
  DuetConfig cfg;
  TestbedSim sim{FatTreeParams::testbed(), cfg, 7};
  const auto& ft = sim.fabric();

  sim.deploy_smux(ft.tors[0]);
  sim.deploy_smux(ft.tors[1]);
  sim.deploy_smux(ft.tors[2]);

  // 11 VIPs, 2 DIPs each, all starting on the SMuxes.
  std::vector<Ipv4Address> vips;
  for (std::uint32_t i = 0; i < 11; ++i) {
    const Ipv4Address vip{(100u << 24) + 1 + i};
    sim.define_vip(vip, {ft.servers_by_tor[3][i], ft.servers_by_tor[2][i]});
    vips.push_back(vip);
  }
  const Ipv4Address probe_vip = vips.back();  // unloaded
  const Ipv4Address src = ft.servers_by_tor[0][10];

  // Background load phases (per-SMux pps).
  sim.set_smux_offered_pps(200e3);
  sim.schedule_smux_offered_pps(100 * kSec, 400e3);
  // Phase 3: all VIPs to one HMux (ToR 1's switch in the paper; we use a
  // Core so every source reaches it without detours).
  for (const auto vip : vips) sim.schedule_migration(200 * kSec, vip, ft.cores[0]);
  // After the move the SMuxes are idle.
  sim.schedule_smux_offered_pps(201 * kSec, 0.0);

  sim.start_probes(probe_vip, src, 0.0, 300 * kSec, 3e3);
  sim.run_until(300 * kSec);

  // Bucket into 10-second bins.
  TablePrinter t{{"time (s)", "median (ms)", "p99 (ms)", "mux"}};
  const auto& samples = sim.samples(probe_vip);
  for (int bin = 0; bin < 30; ++bin) {
    Summary s;
    int hmux = 0, smux = 0;
    for (const auto& p : samples) {
      if (p.t_us >= bin * 10 * kSec && p.t_us < (bin + 1) * 10 * kSec && !p.lost) {
        s.add(p.rtt_us / 1e3);
        (p.via == ProbeVia::kHmux ? hmux : smux)++;
      }
    }
    if (s.empty()) continue;
    t.add_row({TablePrinter::fmt_int(bin * 10), TablePrinter::fmt(s.median()),
               TablePrinter::fmt(s.percentile(99)), hmux > smux ? "HMux" : "SMux"});
  }
  t.print();

  // The figure itself: per-second median latency timeline (log axis, like
  // the paper's plot).
  Series line{"probe latency", '*', {}};
  for (int sec = 0; sec < 300; ++sec) {
    Summary s;
    for (const auto& p : samples) {
      if (!p.lost && p.t_us >= sec * kSec && p.t_us < (sec + 1) * kSec) s.add(p.rtt_us / 1e3);
    }
    if (!s.empty()) line.points.push_back({static_cast<double>(sec), s.median()});
  }
  ChartOptions co;
  co.log_y = true;
  co.x_label = "time (s) — SMux@200k | SMux@400k | HMux@1.2M";
  co.y_label = "median RTT (ms)";
  std::printf("\n%s\n\n", render_chart({line}, co).c_str());

  // Phase summary — the paper's claim in one row.
  Summary p1, p2, p3;
  for (const auto& p : samples) {
    if (p.lost) continue;
    if (p.t_us < 100 * kSec) {
      p1.add(p.rtt_us / 1e3);
    } else if (p.t_us < 200 * kSec) {
      p2.add(p.rtt_us / 1e3);
    } else if (p.t_us > 210 * kSec) {  // skip the migration transient
      p3.add(p.rtt_us / 1e3);
    }
  }
  std::printf(
      "\nphase medians: SMux@200k=%.2fms  SMux@400k=%.2fms  HMux@1.2M=%.3fms\n"
      "=> one HMux instance outperforms %s3 saturated SMuxes (paper: 10x+ latency gap)\n",
      p1.median(), p2.median(), p3.median(), p2.median() / p3.median() > 3 ? "" : "at least ");

  auto& reg = sim.metrics();
  reg.gauge("duet.bench.fig11.smux_200k_median_ms").set(p1.median());
  reg.gauge("duet.bench.fig11.smux_400k_median_ms").set(p2.median());
  reg.gauge("duet.bench.fig11.hmux_median_ms").set(p3.median());
  bench::export_bench_json("fig11", reg, &sim.journal());
  return 0;
}
