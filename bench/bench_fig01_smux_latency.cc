// Fig 1 — "Performance of software Mux".
//
//  (a) CDF of end-to-end latency through one SMux as its offered load sweeps
//      {no-load, 200K, 300K, 400K, 450K} packets/sec. Paper: 196 µs median
//      added at no load, p90 ≈ 1 ms, and a wholesale shift to tens of
//      milliseconds once the CPU saturates at 300 Kpps.
//  (b) CPU utilization vs offered load: linear to 100 % at 300 Kpps.
#include <cstdio>

#include "common.h"
#include "duet/smux.h"

using namespace duet;

int main() {
  bench::header("Figure 1(a)", "end-to-end latency CDF through one SMux");
  bench::paper_note(
      "196us median added latency at no load, p90 ~1ms; latency explodes past "
      "300Kpps (CPU saturation)");

  const DuetConfig cfg;
  const Smux smux{0, FlowHasher{}, cfg};
  Rng rng{1};

  const double loads_pps[] = {0, 200e3, 300e3, 400e3, 450e3};
  const char* labels[] = {"no-load", "200k", "300k", "400k", "450k"};
  constexpr int kSamples = 200000;
  // End-to-end latency = DC RTT + SMux added latency (the paper measures
  // ping RTTs through the mux).
  TablePrinter cdf{{"percentile", "no-load (ms)", "200k (ms)", "300k (ms)", "400k (ms)",
                    "450k (ms)"}};
  Summary dists[5];
  for (int l = 0; l < 5; ++l) {
    const double rho = smux.utilization(loads_pps[l]);
    for (int i = 0; i < kSamples; ++i) {
      dists[l].add((cfg.dc_rtt_us + smux.sample_added_latency_us(rho, rng)) / 1e3);
    }
  }
  for (const double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::vector<std::string> row{TablePrinter::fmt(p, "p%.0f")};
    for (auto& d : dists) row.push_back(TablePrinter::fmt(d.percentile(p)));
    cdf.add_row(row);
  }
  cdf.print();
  std::printf("\nmedian ADDED latency (us): no-load %.0f | 200k %.0f | 300k %.0f | 400k %.0f\n",
              dists[0].median() * 1e3 - cfg.dc_rtt_us, dists[1].median() * 1e3 - cfg.dc_rtt_us,
              dists[2].median() * 1e3 - cfg.dc_rtt_us, dists[3].median() * 1e3 - cfg.dc_rtt_us);

  bench::header("Figure 1(b)", "SMux CPU utilization vs offered load");
  bench::paper_note("CPU reaches 100% at 300K packets/sec (the capacity cliff)");
  TablePrinter cpu{{"offered (pps)", "CPU (%)"}};
  for (int l = 0; l < 5; ++l) {
    cpu.add_row({labels[l], TablePrinter::fmt(smux.cpu_percent(loads_pps[l]), "%.1f")});
  }
  cpu.print();
  return 0;
}
