// Fig 14 — "Latency breakdown" of migration operations (§7.3).
//
// Repeats HMux->HMux migrations and reports the distribution of each
// control-plane component: add/delete DIP entries, add/delete the VIP route
// in the FIB, and the BGP announce/withdraw convergence. Paper: the FIB VIP
// operation dominates (80-90 % of total migration delay, ~300-450 ms); BGP
// updates are tens of milliseconds.
#include <cstdio>

#include "common.h"
#include "sim/probe.h"

using namespace duet;

namespace {

void print_side(const char* title, const std::vector<double>& dips,
                const std::vector<double>& vip, const std::vector<double>& bgp,
                const char* dips_label, const char* vip_label, const char* bgp_label) {
  Summary sd, sv, sb;
  for (const double x : dips) sd.add(x / 1e3);
  for (const double x : vip) sv.add(x / 1e3);
  for (const double x : bgp) sb.add(x / 1e3);
  std::printf("\n%s\n", title);
  TablePrinter t{{"component", "p10 (ms)", "median (ms)", "p90 (ms)"}};
  t.add_row({dips_label, TablePrinter::fmt(sd.percentile(10)), TablePrinter::fmt(sd.median()),
             TablePrinter::fmt(sd.percentile(90))});
  t.add_row({vip_label, TablePrinter::fmt(sv.percentile(10)), TablePrinter::fmt(sv.median()),
             TablePrinter::fmt(sv.percentile(90))});
  t.add_row({bgp_label, TablePrinter::fmt(sb.percentile(10)), TablePrinter::fmt(sb.median()),
             TablePrinter::fmt(sb.percentile(90))});
  t.print();
  const double total = sd.median() + sv.median() + sb.median();
  std::printf("FIB share of total: %.0f%% (paper: 80-90%%)\n", 100.0 * sv.median() / total);
}

}  // namespace

int main() {
  bench::header("Figure 14", "migration-delay component breakdown over 100 migrations");
  bench::paper_note("FIB add/remove of the VIP dominates; BGP convergence is tens of ms");

  constexpr double kMs = 1e3;
  DuetConfig cfg;
  TestbedSim sim{FatTreeParams::testbed(), cfg, 21};
  const auto& ft = sim.fabric();
  sim.deploy_smux(ft.tors[0]);
  const Ipv4Address vip{100, 0, 0, 1};
  sim.define_vip(vip, {ft.servers_by_tor[3][0]});
  sim.assign_vip_to_hmux(vip, ft.cores[0]);

  // 100 back-to-back H->H migrations, alternating homes.
  double t = 100 * kMs;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_migration(t, vip, i % 2 == 0 ? ft.cores[1] : ft.cores[0]);
    t += 2000 * kMs;  // well past one migration's worst case
  }
  sim.run_until(t + 2000 * kMs);

  const auto& ops = sim.op_latencies();
  print_side("(a) Add — installing the VIP on the new switch", ops.add_dips_us, ops.add_vip_us,
             ops.vip_announce_us, "Add-DIPs (FIB)", "Add-VIP (FIB)", "VIP-Announce (BGP)");
  print_side("(b) Delete — removing the VIP from the old switch", ops.delete_dips_us,
             ops.delete_vip_us, ops.vip_withdraw_us, "Delete-DIPs (FIB)", "Delete-VIP (FIB)",
             "VIP-Withdraw (BGP)");
  return 0;
}
