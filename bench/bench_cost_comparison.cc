// Cost comparison (§1, §2.2, §3.3.2) — the paper's economic argument, made
// reproducible: for each traffic level, what does the load-balancing tier
// cost as (a) dedicated 1+1 hardware appliances, (b) a pure software fleet
// (Ananta), (c) Duet (free HMuxes + the measured backstop SMux pool)?
//
// Paper quotes: 15 Tbps needs "over 4000 SMuxes, costing over USD 10
// million" and "10% of the DC size"; Duet delivers "10x more capacity than a
// software load balancer, at a fraction of a cost".
#include <cstdio>

#include "common.h"
#include "duet/cost.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Cost", "load-balancer tier cost: hardware LB vs Ananta vs Duet", &scale);
  bench::paper_note(
      "15Tbps on Ananta: >4000 SMuxes, >$10M, ~10% of the DC's servers; Duet "
      "is a small fraction of that");

  const auto fabric = build_fattree(scale.fabric);
  const CostModel cost;
  const DuetConfig cfg;

  TablePrinter t{{"traffic (paper Tbps)", "HW LB ($M)", "Ananta SMuxes", "Ananta ($M)",
                  "Ananta % of DC", "Duet SMuxes", "Duet ($M)", "Duet/Ananta"}};

  for (const double paper_tbps : {1.25, 2.5, 5.0, 10.0, 15.0}) {
    // Backstop pool measured from an actual assignment at simulator scale,
    // then expressed in paper units via the scale factor.
    const auto trace = bench::make_trace(fabric, scale, paper_tbps, 2,
                                         555 + static_cast<std::uint64_t>(paper_tbps * 4));
    const auto demands = build_demands(fabric, trace, 0);
    const auto a = VipAssigner{fabric, bench::make_options(scale)}.assign(demands);
    const auto failover = analyze_failover(fabric, demands, a);
    const std::size_t duet_scaled =
        smuxes_needed(a.smux_gbps, failover.worst_gbps(), 0.0, cfg.smux_capacity_gbps());
    const auto duet_paper =
        static_cast<std::size_t>(static_cast<double>(duet_scaled) / scale.factor);

    const double paper_gbps = paper_tbps * 1e3;
    const auto ananta_n = cost.ananta_smuxes(paper_gbps);
    const double ananta_usd = cost.ananta_usd(paper_gbps);
    const double duet_usd = cost.duet_usd(duet_paper);

    t.add_row({TablePrinter::fmt(paper_tbps, "%.2f"),
               TablePrinter::fmt(cost.hardware_lb_usd(paper_gbps) / 1e6, "%.1f"),
               TablePrinter::fmt_int(static_cast<long long>(ananta_n)),
               TablePrinter::fmt(ananta_usd / 1e6, "%.2f"),
               format_pct(cost.fleet_fraction(ananta_n, 40'000)),
               TablePrinter::fmt_int(static_cast<long long>(duet_paper)),
               TablePrinter::fmt(duet_usd / 1e6, "%.2f"),
               format_pct(duet_usd / ananta_usd)});
  }
  t.print();
  std::printf("\nDuet's HMuxes are the switches the datacenter already owns — its only\n"
              "marginal cost is the backstop pool and the controller (§3.3.2).\n");
  return 0;
}
