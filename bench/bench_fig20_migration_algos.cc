// Fig 20 — "Effectiveness of different migration algorithms" (§8.6).
//
// Replays the 3-hour trace in 10-minute epochs and compares:
//   * One-time   — assign at epoch 0, never adapt (Fig 20a only);
//   * Sticky     — re-assign each epoch, move a VIP only if MRU improves >5%;
//   * Non-sticky — re-assign from scratch each epoch, migrate every change.
// Reports: (a) % of traffic handled by HMuxes, (b) % of traffic shuffled
// through the SMuxes at each migration, (c) SMuxes needed (max of leftover /
// failover / transition traffic) vs Ananta.
//
// Paper: Sticky and Non-sticky both keep 86-99.9% (avg ~95%) of traffic on
// HMuxes while One-time decays to ~75%; Sticky shuffles 0.7-4.4% (avg 3.5%)
// of traffic vs 25-46% (avg 37.4%) for Non-sticky; Non-sticky therefore
// needs more SMuxes than Sticky, and Ananta dwarfs both.
#include <cstdio>

#include "common.h"
#include "duet/migration.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 20", "migration algorithms over the 3-hour trace (18 epochs)", &scale);
  bench::paper_note(
      "(a) Sticky/Non-sticky ~95% avg on HMux, One-time decays to ~75%; "
      "(b) Sticky shuffles ~3.5% vs ~37% for Non-sticky; (c) Sticky needs no "
      "extra SMuxes for migration");

  const auto fabric = build_fattree(scale.fabric);
  const DuetConfig cfg;
  const std::size_t epochs = 18;
  TraceParams tp;
  tp.vip_count = scale.vip_count;
  tp.total_gbps = bench::scaled_gbps(scale, 6.7 /*paper: 6.2-7.1 Tbps*/);
  tp.epochs = epochs;
  tp.arrival_fraction = 0.15;  // customers add VIPs over the 3 hours (§4.2)
  const auto trace = generate_trace(fabric, tp);
  auto opts = bench::make_options(scale);
  // All three strategies keep scanning past an unplaceable VIP so their
  // coverage is comparable (the §4.1 termination rule would otherwise give
  // the from-scratch runs an artificial handicap vs Sticky, which always
  // continues).
  opts.stop_on_first_failure = false;
  const VipAssigner assigner{fabric, opts};

  struct EpochRow {
    double onetime_frac, sticky_frac, nonsticky_frac;
    double sticky_shuffle, nonsticky_shuffle;
    std::size_t smux_onetime, smux_sticky, smux_nonsticky, smux_ananta;
  };
  std::vector<EpochRow> rows;

  const auto demands0 = build_demands(fabric, trace, 0);
  const Assignment onetime = assigner.assign(demands0);
  Assignment sticky = onetime;
  Assignment nonsticky = onetime;

  for (std::size_t e = 0; e < epochs; ++e) {
    const auto demands = build_demands(fabric, trace, e);
    const double total = total_demand_gbps(demands);

    // One-time: placement frozen at epoch 0, re-validated against today's
    // demands — a home that no longer fits the drifted traffic overflows to
    // the SMuxes (this is the decay of Fig 20a).
    const Assignment onetime_now = assigner.revalidate(demands, onetime);

    EpochRow row{};
    row.onetime_frac = onetime_now.hmux_fraction();
    row.smux_onetime = smuxes_needed(
        onetime_now.smux_gbps, analyze_failover(fabric, demands, onetime_now).worst_gbps(), 0.0,
        cfg.smux_capacity_gbps());

    if (e == 0) {
      row.sticky_frac = row.nonsticky_frac = onetime.hmux_fraction();
      row.sticky_shuffle = row.nonsticky_shuffle = 0.0;
      row.smux_sticky = row.smux_nonsticky = row.smux_onetime;
    } else {
      // Sticky.
      Assignment next_sticky = assigner.assign_sticky(demands, sticky);
      const auto plan_s = plan_migration(sticky, next_sticky, demands);
      row.sticky_frac = next_sticky.hmux_fraction();
      row.sticky_shuffle = plan_s.shuffled_fraction();
      row.smux_sticky = smuxes_needed(next_sticky.smux_gbps,
                                      analyze_failover(fabric, demands, next_sticky).worst_gbps(),
                                      plan_s.shuffled_gbps, cfg.smux_capacity_gbps());
      sticky = std::move(next_sticky);

      // Non-sticky: recomputed from scratch each epoch (deterministic seed —
      // the real controller runs the same code each time; churn comes from
      // demand drift steering the greedy differently, not from RNG).
      Assignment next_ns = assigner.assign(demands);
      const auto plan_ns = plan_migration(nonsticky, next_ns, demands);
      row.nonsticky_frac = next_ns.hmux_fraction();
      row.nonsticky_shuffle = plan_ns.shuffled_fraction();
      row.smux_nonsticky = smuxes_needed(next_ns.smux_gbps,
                                         analyze_failover(fabric, demands, next_ns).worst_gbps(),
                                         plan_ns.shuffled_gbps, cfg.smux_capacity_gbps());
      nonsticky = std::move(next_ns);
    }
    row.smux_ananta = smuxes_needed(total, 0.0, 0.0, cfg.smux_capacity_gbps());
    rows.push_back(row);
  }

  std::printf("(a) %% of VIP traffic handled by HMuxes\n");
  TablePrinter ta{{"epoch (min)", "One-time", "Sticky", "Non-sticky"}};
  for (std::size_t e = 0; e < rows.size(); ++e) {
    ta.add_row({TablePrinter::fmt_int(static_cast<long long>(e * 10)),
                format_pct(rows[e].onetime_frac), format_pct(rows[e].sticky_frac),
                format_pct(rows[e].nonsticky_frac)});
  }
  ta.print();

  std::printf("\n(b) %% of VIP traffic shuffled during each migration\n");
  TablePrinter tb{{"epoch (min)", "Sticky", "Non-sticky"}};
  for (std::size_t e = 1; e < rows.size(); ++e) {
    tb.add_row({TablePrinter::fmt_int(static_cast<long long>(e * 10)),
                format_pct(rows[e].sticky_shuffle), format_pct(rows[e].nonsticky_shuffle)});
  }
  tb.print();

  std::printf("\n(c) SMuxes needed (max of VIP leftover / failover / transition traffic)\n");
  TablePrinter tc{{"epoch (min)", "No-migration", "Sticky", "Non-sticky", "Ananta"}};
  for (std::size_t e = 0; e < rows.size(); ++e) {
    tc.add_row({TablePrinter::fmt_int(static_cast<long long>(e * 10)),
                TablePrinter::fmt_int(static_cast<long long>(rows[e].smux_onetime)),
                TablePrinter::fmt_int(static_cast<long long>(rows[e].smux_sticky)),
                TablePrinter::fmt_int(static_cast<long long>(rows[e].smux_nonsticky)),
                TablePrinter::fmt_int(static_cast<long long>(rows[e].smux_ananta))});
  }
  tc.print();

  // Averages for the EXPERIMENTS.md record.
  double ot = 0, st = 0, ns = 0, sh_s = 0, sh_ns = 0;
  for (std::size_t e = 0; e < rows.size(); ++e) {
    ot += rows[e].onetime_frac;
    st += rows[e].sticky_frac;
    ns += rows[e].nonsticky_frac;
    if (e > 0) {
      sh_s += rows[e].sticky_shuffle;
      sh_ns += rows[e].nonsticky_shuffle;
    }
  }
  const double n = static_cast<double>(rows.size());
  std::printf(
      "\naverages: HMux traffic One-time %.1f%% | Sticky %.1f%% | Non-sticky %.1f%%\n"
      "          shuffled    Sticky %.1f%% | Non-sticky %.1f%%\n"
      "paper:    HMux traffic One-time 75.2%% | Sticky 95.1%% | Non-sticky 95.67%%\n"
      "          shuffled    Sticky 3.5%%  | Non-sticky 37.4%%\n",
      100 * ot / n, 100 * st / n, 100 * ns / n, 100 * sh_s / (n - 1), 100 * sh_ns / (n - 1));
  return 0;
}
