// Fig 20 — "Effectiveness of different migration algorithms" (§8.6).
//
// Replays the 3-hour trace in 10-minute epochs and compares:
//   * One-time   — assign at epoch 0, never adapt (Fig 20a only);
//   * Sticky     — re-assign each epoch, move a VIP only if MRU improves >5%;
//   * Non-sticky — re-assign from scratch each epoch, migrate every change.
// Reports: (a) % of traffic handled by HMuxes, (b) % of traffic shuffled
// through the SMuxes at each migration, (c) SMuxes needed (max of leftover /
// failover / transition traffic) vs Ananta.
//
// Each strategy is a sequential chain over the epochs (epoch e depends on
// e-1), but the three chains never read each other's state — so they run as
// three parallel sweep tasks over shared read-only per-epoch demands, each
// writing its own ordered result slot and per-shard registry.
//
// Paper: Sticky and Non-sticky both keep 86-99.9% (avg ~95%) of traffic on
// HMuxes while One-time decays to ~75%; Sticky shuffles 0.7-4.4% (avg 3.5%)
// of traffic vs 25-46% (avg 37.4%) for Non-sticky; Non-sticky therefore
// needs more SMuxes than Sticky, and Ananta dwarfs both.
#include <cstdio>

#include "common.h"
#include "duet/migration.h"
#include "exec/sweep.h"

using namespace duet;

namespace {

// Per-epoch numbers one strategy chain produces.
struct EpochPoint {
  double frac = 0.0;     // HMux traffic fraction
  double shuffle = 0.0;  // traffic shuffled by this epoch's migration
  std::size_t smuxes = 0;
};

}  // namespace

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 20", "migration algorithms over the 3-hour trace (18 epochs)", &scale);
  bench::paper_note(
      "(a) Sticky/Non-sticky ~95% avg on HMux, One-time decays to ~75%; "
      "(b) Sticky shuffles ~3.5% vs ~37% for Non-sticky; (c) Sticky needs no "
      "extra SMuxes for migration");

  const auto fabric = build_fattree(scale.fabric);
  const DuetConfig cfg;
  const std::size_t epochs = bench::quick_mode() ? 6 : 18;
  TraceParams tp;
  tp.vip_count = scale.vip_count;
  tp.total_gbps = bench::scaled_gbps(scale, 6.7 /*paper: 6.2-7.1 Tbps*/);
  tp.epochs = epochs;
  tp.arrival_fraction = 0.15;  // customers add VIPs over the 3 hours (§4.2)
  const auto trace = generate_trace(fabric, tp);
  auto opts = bench::make_options(scale);
  // All three strategies keep scanning past an unplaceable VIP so their
  // coverage is comparable (the §4.1 termination rule would otherwise give
  // the from-scratch runs an artificial handicap vs Sticky, which always
  // continues).
  opts.stop_on_first_failure = false;
  const VipAssigner assigner{fabric, opts};

  // Shared read-only inputs for the strategy chains.
  std::vector<std::vector<VipDemand>> demands;
  demands.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) demands.push_back(build_demands(fabric, trace, e));
  const Assignment epoch0 = assigner.assign(demands[0]);

  const auto chain_gauges = [&](exec::ShardContext& ctx, const char* strategy,
                                const std::vector<EpochPoint>& pts) {
    char name[96];
    for (std::size_t e = 0; e < pts.size(); ++e) {
      std::snprintf(name, sizeof(name), "duet.fig20.%s.e%02zu.hmux_fraction", strategy, e);
      ctx.metrics.gauge(name).set(pts[e].frac);
      std::snprintf(name, sizeof(name), "duet.fig20.%s.e%02zu.shuffled_fraction", strategy, e);
      ctx.metrics.gauge(name).set(pts[e].shuffle);
    }
  };

  // Task 0: One-time — placement frozen at epoch 0, re-validated against each
  // epoch's demands (a home that no longer fits the drifted traffic overflows
  // to the SMuxes; the decay of Fig 20a).
  // Task 1: Sticky. Task 2: Non-sticky (deterministic seed — the real
  // controller runs the same code each time; churn comes from demand drift
  // steering the greedy differently, not from RNG).
  const auto swept = exec::sweep(3, {}, [&](exec::ShardContext& ctx) {
    std::vector<EpochPoint> pts(epochs);
    if (ctx.shard == 0) {
      for (std::size_t e = 0; e < epochs; ++e) {
        const Assignment now = assigner.revalidate(demands[e], epoch0);
        pts[e].frac = now.hmux_fraction();
        pts[e].smuxes =
            smuxes_needed(now.smux_gbps, analyze_failover(fabric, demands[e], now).worst_gbps(),
                          0.0, cfg.smux_capacity_gbps());
      }
      chain_gauges(ctx, "onetime", pts);
      return pts;
    }

    const bool is_sticky = ctx.shard == 1;
    Assignment prev = epoch0;
    pts[0].frac = epoch0.hmux_fraction();
    pts[0].smuxes =
        smuxes_needed(epoch0.smux_gbps, analyze_failover(fabric, demands[0], epoch0).worst_gbps(),
                      0.0, cfg.smux_capacity_gbps());
    for (std::size_t e = 1; e < epochs; ++e) {
      Assignment next =
          is_sticky ? assigner.assign_sticky(demands[e], prev) : assigner.assign(demands[e]);
      const auto plan = plan_migration(prev, next, demands[e]);
      pts[e].frac = next.hmux_fraction();
      pts[e].shuffle = plan.shuffled_fraction();
      pts[e].smuxes =
          smuxes_needed(next.smux_gbps, analyze_failover(fabric, demands[e], next).worst_gbps(),
                        plan.shuffled_gbps, cfg.smux_capacity_gbps());
      prev = std::move(next);
    }
    chain_gauges(ctx, is_sticky ? "sticky" : "nonsticky", pts);
    return pts;
  });

  const std::vector<EpochPoint>& onetime = swept.results[0];
  const std::vector<EpochPoint>& sticky = swept.results[1];
  const std::vector<EpochPoint>& nonsticky = swept.results[2];

  std::printf("(a) %% of VIP traffic handled by HMuxes\n");
  TablePrinter ta{{"epoch (min)", "One-time", "Sticky", "Non-sticky"}};
  for (std::size_t e = 0; e < epochs; ++e) {
    ta.add_row({TablePrinter::fmt_int(static_cast<long long>(e * 10)),
                format_pct(onetime[e].frac), format_pct(sticky[e].frac),
                format_pct(nonsticky[e].frac)});
  }
  ta.print();

  std::printf("\n(b) %% of VIP traffic shuffled during each migration\n");
  TablePrinter tb{{"epoch (min)", "Sticky", "Non-sticky"}};
  for (std::size_t e = 1; e < epochs; ++e) {
    tb.add_row({TablePrinter::fmt_int(static_cast<long long>(e * 10)),
                format_pct(sticky[e].shuffle), format_pct(nonsticky[e].shuffle)});
  }
  tb.print();

  std::printf("\n(c) SMuxes needed (max of VIP leftover / failover / transition traffic)\n");
  TablePrinter tc{{"epoch (min)", "No-migration", "Sticky", "Non-sticky", "Ananta"}};
  for (std::size_t e = 0; e < epochs; ++e) {
    const std::size_t ananta =
        smuxes_needed(total_demand_gbps(demands[e]), 0.0, 0.0, cfg.smux_capacity_gbps());
    tc.add_row({TablePrinter::fmt_int(static_cast<long long>(e * 10)),
                TablePrinter::fmt_int(static_cast<long long>(onetime[e].smuxes)),
                TablePrinter::fmt_int(static_cast<long long>(sticky[e].smuxes)),
                TablePrinter::fmt_int(static_cast<long long>(nonsticky[e].smuxes)),
                TablePrinter::fmt_int(static_cast<long long>(ananta))});
  }
  tc.print();

  // Averages for the EXPERIMENTS.md record.
  double ot = 0, st = 0, ns = 0, sh_s = 0, sh_ns = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    ot += onetime[e].frac;
    st += sticky[e].frac;
    ns += nonsticky[e].frac;
    if (e > 0) {
      sh_s += sticky[e].shuffle;
      sh_ns += nonsticky[e].shuffle;
    }
  }
  const double n = static_cast<double>(epochs);
  std::printf(
      "\naverages: HMux traffic One-time %.1f%% | Sticky %.1f%% | Non-sticky %.1f%%\n"
      "          shuffled    Sticky %.1f%% | Non-sticky %.1f%%\n"
      "paper:    HMux traffic One-time 75.2%% | Sticky 95.1%% | Non-sticky 95.67%%\n"
      "          shuffled    Sticky 3.5%%  | Non-sticky 37.4%%\n",
      100 * ot / n, 100 * st / n, 100 * ns / n, 100 * sh_s / (n - 1), 100 * sh_ns / (n - 1));
  bench::export_bench_json("fig20", *swept.metrics);
  return 0;
}
