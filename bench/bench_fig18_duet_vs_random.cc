// Fig 18 — "Number of SMuxes used by Duet and Random" (§8.4).
//
// Same provisioning computation as Fig 16, but the VIP placement comes from
// the Random (first-feasible / FFD) baseline instead of Duet's MRU-greedy.
// Paper: Random strands far more traffic on the SMuxes — 120-307 % more
// SMuxes than Duet across 1.25-10 Tbps.
//
// The four traffic points are independent (each builds its own trace and
// assignments), so they run as one parallel sweep: results land in ordered
// slots, per-point gauges land in per-shard registries, and the merged
// document is identical at any DUET_THREADS.
#include <array>
#include <cstdio>

#include "baselines/random_assign.h"
#include "common.h"
#include "exec/sweep.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 18", "SMuxes needed: Duet (MRU-greedy) vs Random (first-feasible)",
                &scale);
  bench::paper_note("Random needs 120%-307% more SMuxes than Duet across the sweep");

  const auto fabric = build_fattree(scale.fabric);
  constexpr std::array<double, 4> kTbps{1.25, 2.5, 5.0, 10.0};

  struct Point {
    std::size_t n_duet = 0, n_rand = 0;
    double duet_frac = 0.0, rand_frac = 0.0;
  };

  const auto swept = exec::sweep(kTbps.size(), {}, [&](exec::ShardContext& ctx) {
    const double paper_tbps = kTbps[ctx.shard];
    const auto trace = bench::make_trace(fabric, scale, paper_tbps, 2,
                                         777 + static_cast<std::uint64_t>(paper_tbps * 4));
    const auto demands = build_demands(fabric, trace, 0);
    const auto opts = bench::make_options(scale);

    const auto duet = VipAssigner{fabric, opts}.assign(demands);
    const auto random = assign_random(fabric, demands, opts);

    // SMuxes for the LEFTOVER VIP traffic only: this figure isolates how
    // well the assignment packs VIPs onto HMuxes ("only a small fraction of
    // VIPs traffic is left to be handled by the SMuxes", §8.4). Failover
    // provisioning is identical policy for both and covered by Fig 16.
    Point p;
    p.n_duet = smuxes_needed(duet.smux_gbps, 0.0, 0.0, 3.6);
    p.n_rand = smuxes_needed(random.smux_gbps, 0.0, 0.0, 3.6);
    p.duet_frac = duet.hmux_fraction();
    p.rand_frac = random.hmux_fraction();

    char pfx[64];
    std::snprintf(pfx, sizeof(pfx), "duet.bench.fig18.tbps%.2f.", paper_tbps);
    ctx.metrics.gauge(std::string(pfx) + "duet_smuxes").set(static_cast<double>(p.n_duet));
    ctx.metrics.gauge(std::string(pfx) + "random_smuxes").set(static_cast<double>(p.n_rand));
    ctx.metrics.gauge(std::string(pfx) + "duet_hmux_fraction").set(p.duet_frac);
    ctx.metrics.gauge(std::string(pfx) + "random_hmux_fraction").set(p.rand_frac);
    return p;
  });

  TablePrinter t{{"traffic (paper Tbps)", "Duet SMuxes", "Random SMuxes", "extra",
                  "Duet HMux %", "Random HMux %"}};
  for (std::size_t i = 0; i < kTbps.size(); ++i) {
    const Point& p = swept.results[i];
    t.add_row({TablePrinter::fmt(kTbps[i], "%.2f"),
               TablePrinter::fmt_int(static_cast<long long>(p.n_duet)),
               TablePrinter::fmt_int(static_cast<long long>(p.n_rand)),
               TablePrinter::fmt(
                   100.0 * (static_cast<double>(p.n_rand) / static_cast<double>(p.n_duet) - 1.0),
                   "%+.0f%%"),
               format_pct(p.duet_frac), format_pct(p.rand_frac)});
  }
  t.print();
  bench::export_bench_json("fig18", *swept.metrics);
  return 0;
}
