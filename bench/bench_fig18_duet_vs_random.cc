// Fig 18 — "Number of SMuxes used by Duet and Random" (§8.4).
//
// Same provisioning computation as Fig 16, but the VIP placement comes from
// the Random (first-feasible / FFD) baseline instead of Duet's MRU-greedy.
// Paper: Random strands far more traffic on the SMuxes — 120-307 % more
// SMuxes than Duet across 1.25-10 Tbps.
#include <cstdio>

#include "baselines/random_assign.h"
#include "common.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 18", "SMuxes needed: Duet (MRU-greedy) vs Random (first-feasible)",
                &scale);
  bench::paper_note("Random needs 120%-307% more SMuxes than Duet across the sweep");

  const auto fabric = build_fattree(scale.fabric);

  TablePrinter t{{"traffic (paper Tbps)", "Duet SMuxes", "Random SMuxes", "extra",
                  "Duet HMux %", "Random HMux %"}};
  telemetry::MetricRegistry reg;
  for (const double paper_tbps : {1.25, 2.5, 5.0, 10.0}) {
    const auto trace = bench::make_trace(fabric, scale, paper_tbps, 2,
                                         777 + static_cast<std::uint64_t>(paper_tbps * 4));
    const auto demands = build_demands(fabric, trace, 0);
    const auto opts = bench::make_options(scale);

    const auto duet = VipAssigner{fabric, opts}.assign(demands);
    const auto random = assign_random(fabric, demands, opts);

    // SMuxes for the LEFTOVER VIP traffic only: this figure isolates how
    // well the assignment packs VIPs onto HMuxes ("only a small fraction of
    // VIPs traffic is left to be handled by the SMuxes", §8.4). Failover
    // provisioning is identical policy for both and covered by Fig 16.
    const std::size_t n_duet = smuxes_needed(duet.smux_gbps, 0.0, 0.0, 3.6);
    const std::size_t n_rand = smuxes_needed(random.smux_gbps, 0.0, 0.0, 3.6);

    t.add_row({TablePrinter::fmt(paper_tbps, "%.2f"),
               TablePrinter::fmt_int(static_cast<long long>(n_duet)),
               TablePrinter::fmt_int(static_cast<long long>(n_rand)),
               TablePrinter::fmt(100.0 * (static_cast<double>(n_rand) / n_duet - 1.0),
                                 "%+.0f%%"),
               format_pct(duet.hmux_fraction()), format_pct(random.hmux_fraction())});

    char pfx[64];
    std::snprintf(pfx, sizeof(pfx), "duet.bench.fig18.tbps%.2f.", paper_tbps);
    reg.gauge(std::string(pfx) + "duet_smuxes").set(static_cast<double>(n_duet));
    reg.gauge(std::string(pfx) + "random_smuxes").set(static_cast<double>(n_rand));
    reg.gauge(std::string(pfx) + "duet_hmux_fraction").set(duet.hmux_fraction());
    reg.gauge(std::string(pfx) + "random_hmux_fraction").set(random.hmux_fraction());
  }
  t.print();
  bench::export_bench_json("fig18", reg);
  return 0;
}
