// Ablation — VIP replication vs the SMux backstop (§9).
//
// The paper chose a small SMux pool over replicating VIPs across HMuxes,
// citing complexity. This bench quantifies the trade both ways:
//   * failover spill (traffic that must fall to SMuxes under the §8.2
//     failure model) shrinks dramatically with R — anti-affine R=2 makes
//     container failures spill nothing;
//   * but every replica costs switch memory and a fleet-wide host-table
//     route, so fewer VIPs fit on hardware and steady-state HMux coverage
//     falls — exactly the capacity the backstop design preserves.
#include <cstdio>

#include "common.h"
#include "duet/replication.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Ablation", "VIP replication across HMuxes vs the SMux backstop (§9)", &scale);
  bench::paper_note(
      "the paper's design uses R=1 + SMux backstop; replication trades "
      "switch memory for failover traffic");

  // A smaller fabric keeps the full-scan replica placement quick.
  const auto fabric = build_fattree(FatTreeParams::scaled(8, 8, 8));
  TraceParams tp;
  tp.vip_count = 1'200;
  tp.total_gbps = 400.0;
  tp.epochs = 1;
  const auto trace = generate_trace(fabric, tp);
  const auto demands = build_demands(fabric, trace, 0);

  AssignmentOptions opts;
  opts.host_table_capacity = 2'048;

  TablePrinter t{{"replicas", "VIPs on HMux", "HMux traffic %", "container spill (Gbps)",
                  "3-switch spill (Gbps)", "SMuxes needed", "DIP slots used"}};
  for (const std::size_t r : {1u, 2u, 3u}) {
    ReplicationOptions ro;
    ro.replicas = r;
    const auto a = ReplicatedAssigner{fabric, opts, ro}.assign(demands);
    const auto f = analyze_failover_replicated(fabric, demands, a);
    std::size_t slots = 0;
    for (const auto m : a.switch_dips_used) slots += m;
    const auto smuxes = smuxes_needed(a.smux_gbps, f.worst_gbps(), 0.0, 3.6);
    t.add_row({TablePrinter::fmt_int(static_cast<long long>(r)),
               TablePrinter::fmt_int(static_cast<long long>(a.placement.size())),
               format_pct(a.hmux_fraction()), TablePrinter::fmt(f.worst_container_gbps, "%.1f"),
               TablePrinter::fmt(f.worst_three_switch_gbps, "%.1f"),
               TablePrinter::fmt_int(static_cast<long long>(smuxes)),
               TablePrinter::fmt_int(static_cast<long long>(slots))});
  }
  t.print();
  std::printf(
      "\nR=2 with container anti-affinity eliminates container-failure spill and\n"
      "shrinks the SMux pool, at ~2x the switch memory per VIP — the complexity\n"
      "cost (per-VIP anycast management, R-way consistent updates) is why the\n"
      "paper kept the backstop design (§9).\n");
  return 0;
}
