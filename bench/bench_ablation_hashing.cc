// Ablation — resilient hashing vs naive modulo-N (§5.1).
//
// The design choice: DIP removal must not remap surviving connections. A
// naive mod-N ECMP remaps ~ (N-1)/N of all flows when N shrinks; resilient
// hashing remaps exactly the failed member's 1/N share. DIP *addition* is
// not resilient — the measured remap fraction there is why Duet bounces the
// VIP through SMuxes for additions (§5.2). Plus a select() throughput
// micro-benchmark (it sits on the per-packet path of the simulators).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.h"
#include "dataplane/resilient_hash.h"

using namespace duet;

namespace {

// Fraction of 64K synthetic flows whose member changed between two mappers.
template <typename MapA, typename MapB>
double remap_fraction(const MapA& before, const MapB& after) {
  std::size_t remapped = 0;
  constexpr std::size_t kFlows = 65536;
  for (std::size_t f = 0; f < kFlows; ++f) {
    const std::uint64_t h = f * 0x9e3779b97f4a7c15ULL;
    if (before(h) != after(h)) ++remapped;
  }
  return static_cast<double>(remapped) / kFlows;
}

void print_remap_table() {
  std::printf("=== flow remapping on membership change: resilient vs modulo-N ===\n");
  TablePrinter t{{"group size N", "mod-N remove (remap %)", "resilient remove (remap %)",
                  "resilient add (remap %)", "ideal remove"}};
  for (const std::size_t n : {4u, 8u, 16u, 64u, 256u}) {
    // Naive mod-N: member = hash % N, removal -> hash % (N-1).
    const auto mod_before = [n](std::uint64_t h) { return h % n; };
    const auto mod_after = [n](std::uint64_t h) { return h % (n - 1); };
    const double mod_remap = remap_fraction(mod_before, mod_after);

    ResilientHashGroup g{n, 8};
    ResilientHashGroup g2 = g;
    const double res_remap_reported = g2.remove_member(static_cast<std::uint32_t>(n / 2));
    const auto res_before = [&g](std::uint64_t h) { return g.select(h); };
    const auto res_after = [&g2](std::uint64_t h) { return g2.select(h); };
    const double res_remap = remap_fraction(res_before, res_after);
    (void)res_remap_reported;

    ResilientHashGroup g3{n, 8};
    const double add_remap = g3.add_member();

    t.add_row({TablePrinter::fmt_int(static_cast<long long>(n)),
               format_pct(mod_remap), format_pct(res_remap), format_pct(add_remap),
               format_pct(1.0 / static_cast<double>(n))});
  }
  t.print();
  std::printf(
      "\nresilient removal stays at the ~1/N ideal while mod-N remaps nearly\n"
      "everything; addition is NOT resilient — hence the SMux bounce (§5.2).\n\n"
      "=== select() micro-benchmark ===\n");
}

void BM_ResilientSelect(benchmark::State& state) {
  ResilientHashGroup g{static_cast<std::size_t>(state.range(0)), 8};
  std::uint64_t h = 0x12345;
  for (auto _ : state) {
    h = h * 0x9e3779b97f4a7c15ULL + 1;
    benchmark::DoNotOptimize(g.select(h));
  }
}
BENCHMARK(BM_ResilientSelect)->Arg(8)->Arg(64)->Arg(512);

void BM_FlowHash(benchmark::State& state) {
  const FlowHasher hasher{42};
  FiveTuple t{Ipv4Address(10, 0, 0, 1), Ipv4Address(100, 0, 0, 1), 1, 80, IpProto::kTcp};
  for (auto _ : state) {
    ++t.src_port;
    benchmark::DoNotOptimize(hasher.hash(t));
  }
}
BENCHMARK(BM_FlowHash);

}  // namespace

int main(int argc, char** argv) {
  print_remap_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
