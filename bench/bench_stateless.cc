// BENCH_stateless — the stateful/stateless engine trade-off, measured.
//
// Three experiments (DESIGN.md §13):
//   1. MEMORY CURVE: decision-state bytes vs concurrent flows, both engines.
//      The stateless engine's state is a pure function of the DIP set, so
//      its curve must be FLAT (gate: ±1% from the smallest to the largest
//      flow count). The stateful flow table grows linearly; above the
//      feasible measurement cap its bytes come from the capacity model
//      (power-of-two growth at load factor 3/4 × slot size), which is
//      validated EXACTLY against measured points before being trusted.
//   2. LOOKUP COST: steady-state ns/packet per engine at each flow count
//      (stateful = pin hit, stateless = bucket lookup).
//   3. SYN FLOOD: the deterministic flood scenario (stateless/flood_scenario)
//      through both engines. Gates: the stateless engine records ZERO PCC
//      violations, ZERO evictions, and ZERO flow entries — there is no
//      per-flow state for the flood to exhaust.
//
// DUET_STATELESS_RELAX=1 turns gate failures into warnings (loaded dev
// machines). Results land in BENCH_stateless.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.h"
#include "duet/config.h"
#include "duet/smux.h"
#include "net/hash.h"
#include "net/packet.h"
#include "stateless/flood_scenario.h"
#include "stateless/stateless_engine.h"

using namespace duet;

namespace {

constexpr Ipv4Address kVip{100, 0, 0, 1};
constexpr std::size_t kBatch = 256;

std::vector<Ipv4Address> make_dips(std::size_t n) {
  std::vector<Ipv4Address> dips;
  dips.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    dips.push_back(Ipv4Address{static_cast<std::uint32_t>(0x0ac80000u + d + 1)});
  }
  return dips;
}

// Tuple i, procedurally: (src, src_port) encode i, so tuples are distinct
// and nothing per-flow is ever materialized on the bench side either.
FiveTuple tuple_at(std::size_t i) {
  FiveTuple t;
  t.src = Ipv4Address{static_cast<std::uint32_t>(0x0a000000u + (i >> 16))};
  t.dst = kVip;
  t.src_port = static_cast<std::uint16_t>(i & 0xffff);
  t.dst_port = 80;
  t.proto = IpProto::kUdp;
  return t;
}

// Drives flows [0, n) through the mux once (reused batch, constant bench
// memory). Returns ns/packet for the pass.
double drive(Smux& mux, std::size_t n, double t0_us) {
  std::vector<Packet> batch;
  batch.reserve(kBatch);
  std::vector<Ipv4Address> out(kBatch);
  const auto start = std::chrono::steady_clock::now();
  std::size_t at = 0;
  double now_us = t0_us;
  while (at < n) {
    batch.clear();
    const std::size_t m = std::min(kBatch, n - at);
    for (std::size_t k = 0; k < m; ++k) batch.emplace_back(tuple_at(at + k), 64u);
    mux.process_batch({batch.data(), m}, {out.data(), m}, now_us);
    at += m;
    now_us += static_cast<double>(m);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(n);
}

// The stateful table's capacity model: FlatTable power-of-two growth at load
// factor 3/4 (validated against measured decision_state_bytes below).
std::size_t modeled_capacity(std::size_t flows) {
  std::size_t cap = 16;
  while (cap * 3 < flows * 4) cap <<= 1;
  return cap;
}

struct MemPoint {
  std::size_t flows = 0;
  std::size_t stateless_bytes = 0;
  std::size_t stateful_bytes = 0;  // measured or modeled
  bool stateful_measured = false;
  double stateless_ns = 0.0;
  double stateful_ns = 0.0;  // 0 when not measured at this point
};

}  // namespace

int main() {
  bench::header("stateless", "stateful vs stateless decision engines: memory, ns/pkt, floods");

  const bool quick = bench::quick_mode();
  const char* relax = std::getenv("DUET_STATELESS_RELAX");
  const bool strict = relax == nullptr || relax[0] == '\0' || relax[0] == '0';
  bool failed = false;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("%s: %s\n", strict ? "FAIL" : "WARNING", what);
      failed = failed || strict;
    }
  };

  const FlowHasher hasher{0xd0e7ULL};
  const auto dips = make_dips(16);
  const std::vector<std::size_t> points =
      quick ? std::vector<std::size_t>{100'000, 1'000'000}
            : std::vector<std::size_t>{1'000'000, 10'000'000, 50'000'000};
  const std::size_t stateful_cap = quick ? 100'000 : 1'000'000;
  const std::size_t perf_cap = quick ? 500'000 : 2'000'000;  // pass-2 timing bound

  telemetry::MetricRegistry out;

  // --- model validation -------------------------------------------------------
  // The model must reproduce measured stateful bytes EXACTLY (same growth
  // rule, same slot size) before it is trusted beyond the measurement cap.
  std::size_t slot_bytes = 0;
  {
    DuetConfig cfg;
    cfg.smux_flow_idle_us = 0.0;
    cfg.smux_flow_table_max = 0;
    for (const std::size_t n : {50'000, 200'000}) {
      Smux mux(0, hasher, cfg);
      mux.set_vip(kVip, dips);
      drive(mux, n, 0.0);
      const std::size_t measured = mux.stateful_engine().decision_state_bytes();
      const std::size_t cap = modeled_capacity(n);
      if (slot_bytes == 0) slot_bytes = measured / cap;
      gate(measured == cap * slot_bytes, "stateful capacity model mismatch vs measurement");
    }
    std::printf("stateful model: capacity(n) x %zu B/slot (validated)\n", slot_bytes);
  }

  // --- memory + lookup curves -------------------------------------------------
  std::vector<MemPoint> curve;
  for (const std::size_t n : points) {
    MemPoint pt;
    pt.flows = n;

    DuetConfig sl_cfg;
    sl_cfg.smux_engine = SmuxEngine::kStateless;
    Smux sl_mux(0, hasher, sl_cfg);
    sl_mux.set_vip(kVip, dips);
    drive(sl_mux, n, 0.0);  // full population: every flow decided once
    pt.stateless_ns = drive(sl_mux, std::min(n, perf_cap), static_cast<double>(n));
    pt.stateless_bytes = sl_mux.stateless_engine()->decision_state_bytes();
    gate(sl_mux.flow_table_size() == 0, "stateless run wrote flow pins");

    if (n <= stateful_cap) {
      DuetConfig sf_cfg;
      sf_cfg.smux_flow_idle_us = 0.0;
      sf_cfg.smux_flow_table_max = 0;
      Smux sf_mux(1, hasher, sf_cfg);
      sf_mux.set_vip(kVip, dips);
      drive(sf_mux, n, 0.0);
      pt.stateful_ns = drive(sf_mux, std::min(n, perf_cap), static_cast<double>(n));
      pt.stateful_bytes = sf_mux.stateful_engine().decision_state_bytes();
      pt.stateful_measured = true;
      gate(pt.stateful_bytes == modeled_capacity(n) * slot_bytes,
           "stateful model diverged at a measured curve point");
    } else {
      pt.stateful_bytes = modeled_capacity(n) * slot_bytes;
    }
    curve.push_back(pt);
  }

  std::printf("\nDIP pool: %zu DIPs; stateless knobs: defaults\n", dips.size());
  TablePrinter t{{"flows", "stateless B", "B/flow", "stateful B", "B/flow", "ratio", "sl ns/pkt",
                  "sf ns/pkt"}};
  for (const MemPoint& pt : curve) {
    t.add_row({TablePrinter::fmt(static_cast<double>(pt.flows) / 1e6, "%.1fM"),
               TablePrinter::fmt(static_cast<double>(pt.stateless_bytes), "%.0f"),
               TablePrinter::fmt(static_cast<double>(pt.stateless_bytes) /
                                     static_cast<double>(pt.flows),
                                 "%.4f"),
               TablePrinter::fmt(static_cast<double>(pt.stateful_bytes), "%.0f") +
                   (pt.stateful_measured ? "" : "*"),
               TablePrinter::fmt(static_cast<double>(pt.stateful_bytes) /
                                     static_cast<double>(pt.flows),
                                 "%.1f"),
               TablePrinter::fmt(static_cast<double>(pt.stateful_bytes) /
                                     static_cast<double>(pt.stateless_bytes),
                                 "%.0fx"),
               TablePrinter::fmt(pt.stateless_ns, "%.1f"),
               pt.stateful_ns > 0 ? TablePrinter::fmt(pt.stateful_ns, "%.1f") : "-"});
  }
  t.print();
  std::printf("(* = capacity model beyond the %zu-flow measurement cap)\n", stateful_cap);

  // Gates: stateless flat within ±1%; stateful linear (capacity ratio tracks
  // the flow ratio across the curve).
  const double sl_min = static_cast<double>(
      std::min_element(curve.begin(), curve.end(), [](const auto& a, const auto& b) {
        return a.stateless_bytes < b.stateless_bytes;
      })->stateless_bytes);
  const double sl_max = static_cast<double>(
      std::max_element(curve.begin(), curve.end(), [](const auto& a, const auto& b) {
        return a.stateless_bytes < b.stateless_bytes;
      })->stateless_bytes);
  gate(sl_max <= sl_min * 1.01, "stateless decision state not flat (>1%) across the curve");
  gate(curve.back().stateful_bytes >=
           curve.front().stateful_bytes *
               (curve.back().flows / curve.front().flows) / 2,
       "stateful decision state not growing linearly with flows");

  // O(DIPs) scaling: stateless bytes grow with the pool, not with flows.
  {
    std::printf("\nstateless state vs DIP count (flows-independent):\n");
    TablePrinter td{{"dips", "bytes"}};
    for (const std::size_t d : {8, 64, 256}) {
      DuetConfig cfg;
      cfg.smux_engine = SmuxEngine::kStateless;
      Smux mux(0, hasher, cfg);
      mux.set_vip(kVip, make_dips(d));
      const std::size_t bytes = mux.stateless_engine()->decision_state_bytes();
      td.add_row({TablePrinter::fmt(static_cast<double>(d), "%.0f"),
                  TablePrinter::fmt(static_cast<double>(bytes), "%.0f")});
      out.gauge("duet.stateless.bytes_by_dips." + std::to_string(d))
          .set(static_cast<double>(bytes));
    }
    td.print();
  }

  // --- SYN flood --------------------------------------------------------------
  stateless::FloodParams fp;
  if (!quick) {
    fp.established_flows = 2048;
    fp.flood_tuples = 65'536;
    fp.flow_table_cap = 4096;
  }
  DuetConfig flood_cfg;
  const stateless::FloodReport flood = stateless::run_flood_scenario(fp, flood_cfg, 0xf100d);

  std::printf("\nSYN flood: %zu established, %zu spoofed tuples, %zu rounds, cap %zu\n",
              fp.established_flows, fp.flood_tuples, fp.rounds, fp.flow_table_cap);
  TablePrinter tf{{"engine", "pcc violations", "legal remaps", "evictions", "entries peak",
                   "state B"}};
  const auto flood_row = [&](const char* name, const stateless::EngineFloodReport& r) {
    tf.add_row({name, TablePrinter::fmt(static_cast<double>(r.pcc_violations), "%.0f"),
                TablePrinter::fmt(static_cast<double>(r.legal_remaps), "%.0f"),
                TablePrinter::fmt(static_cast<double>(r.evictions), "%.0f"),
                TablePrinter::fmt(static_cast<double>(r.flow_entries_peak), "%.0f"),
                TablePrinter::fmt(static_cast<double>(r.decision_state_bytes), "%.0f")});
  };
  flood_row("stateful", flood.stateful);
  flood_row("stateless", flood.stateless);
  tf.print();

  gate(flood.stateless.pcc_violations == 0, "stateless engine broke PCC under flood");
  gate(flood.stateless.evictions == 0, "stateless engine evicted flows under flood");
  gate(flood.stateless.flow_entries_peak == 0, "stateless engine wrote per-flow state");
  if (flood.stateful.evictions == 0) {
    std::printf("NOTE: flood did not pressure the stateful table (cap too high?)\n");
  }

  // --- export -----------------------------------------------------------------
  for (const MemPoint& pt : curve) {
    const std::string p = "duet.stateless.mem." + std::to_string(pt.flows) + ".";
    out.gauge(p + "stateless_bytes").set(static_cast<double>(pt.stateless_bytes));
    out.gauge(p + "stateful_bytes").set(static_cast<double>(pt.stateful_bytes));
    out.gauge(p + "stateful_measured").set(pt.stateful_measured ? 1.0 : 0.0);
    out.gauge(p + "stateless_ns").set(pt.stateless_ns);
    out.gauge(p + "stateful_ns").set(pt.stateful_ns);
  }
  out.gauge("duet.stateless.flood.stateful_violations")
      .set(static_cast<double>(flood.stateful.pcc_violations));
  out.gauge("duet.stateless.flood.stateful_evictions")
      .set(static_cast<double>(flood.stateful.evictions));
  out.gauge("duet.stateless.flood.stateful_entries_peak")
      .set(static_cast<double>(flood.stateful.flow_entries_peak));
  out.gauge("duet.stateless.flood.stateless_violations")
      .set(static_cast<double>(flood.stateless.pcc_violations));
  out.gauge("duet.stateless.flood.stateless_evictions")
      .set(static_cast<double>(flood.stateless.evictions));
  out.gauge("duet.stateless.flood.stateless_entries_peak")
      .set(static_cast<double>(flood.stateless.flow_entries_peak));
  bench::export_bench_json("stateless", out);

  if (!failed) std::printf("\nOK: all stateless gates passed\n");
  return failed ? 1 : 0;
}
