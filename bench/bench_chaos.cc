// Chaos scenario suite (DESIGN.md §15): the builtin adversary matrix —
// churn storm, flash crowd, correlated failure mid-migration, gray DIP,
// SYN flood, and the composed perfect storm — each twin-driven through the
// stateful AND stateless decision engines by the chaos runner.
//
// Three gate families, all strict by default (DUET_CHAOS_RELAX=1 turns
// failures into warnings):
//   1. Scenario gates: every builtin scenario's ChaosReport must sit inside
//      its documented per-engine bounds (stateless single-adversary PCC == 0
//      and zero per-flow state; stateful within the per-scenario limits).
//   2. Fixture gates: the deliberately mis-configured violation fixtures
//      MUST trip their named gate — a gate that cannot fail is not a gate —
//      while leaving the stateless contract intact.
//   3. Width determinism: sweep_chaos over every scenario must be
//      bit-for-bit identical at pool width 1 and 4 (the sweep contract,
//      DESIGN.md §9).
//
// Exports BENCH_chaos.json: per-scenario per-engine counters plus the
// journaled adversary event stream.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/scenarios.h"
#include "common.h"
#include "exec/thread_pool.h"

using namespace duet;

int main() {
  bench::header("chaos", "chaos scenario suite: adversary matrix x both engines, gated");

  const bool quick = bench::quick_mode();
  const char* relax = std::getenv("DUET_CHAOS_RELAX");
  const bool strict = relax == nullptr || relax[0] == '\0' || relax[0] == '0';
  bool failed = false;
  const auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::printf("%s: %s\n", strict ? "FAIL" : "WARNING", what.c_str());
      failed = failed || strict;
    }
  };

  constexpr std::uint64_t kSeed = 0xc4a05c4a05ULL;
  const DuetConfig base_config{};
  telemetry::MetricRegistry out;
  telemetry::EventJournal journal;

  // --- scenario matrix --------------------------------------------------------
  TablePrinter table{{"scenario", "engine", "packets", "drops", "loss", "gray", "pcc",
                      "legal", "evict", "peak", "state B"}};
  const auto row = [&](const std::string& name, const char* engine,
                       const chaos::EngineChaosReport& r) {
    table.add_row({name, engine, TablePrinter::fmt_int(static_cast<long long>(r.packets)),
                   TablePrinter::fmt_int(static_cast<long long>(r.overload_drops)),
                   TablePrinter::fmt_int(static_cast<long long>(r.packet_loss)),
                   TablePrinter::fmt_int(static_cast<long long>(r.gray_packets)),
                   TablePrinter::fmt_int(static_cast<long long>(r.pcc_violations)),
                   TablePrinter::fmt_int(static_cast<long long>(r.legal_remaps)),
                   TablePrinter::fmt_int(static_cast<long long>(r.evictions)),
                   TablePrinter::fmt_int(static_cast<long long>(r.flow_entries_peak)),
                   TablePrinter::fmt_int(static_cast<long long>(r.decision_state_bytes))});
  };

  std::printf("\nscenario matrix (%s scale, seed %#llx):\n", quick ? "quick" : "full",
              static_cast<unsigned long long>(kSeed));
  for (const chaos::NamedScenario& s : chaos::builtin_scenarios()) {
    const chaos::ChaosPlan plan = s.build(quick, kSeed);
    const chaos::ChaosReport report = chaos::run_chaos(plan, base_config, &out, &journal);
    row(s.name + (s.composed ? " *" : ""), "stateful", report.stateful);
    row("", "stateless", report.stateless);
    for (const std::string& f : chaos::evaluate_gates(report, s.gates)) {
      gate(false, s.name + ": " + f);
    }
    // Twin-drive sanity: routing and overload are engine-independent.
    gate(report.stateful.packets == report.stateless.packets,
         s.name + ": engines processed different packet counts");
    gate(report.stateful.overload_drops == report.stateless.overload_drops,
         s.name + ": engines saw different overload drops");
  }
  table.print();
  std::printf("(* = composed multi-adversary scenario)\n");

  // --- violation fixtures -----------------------------------------------------
  std::printf("\nviolation fixtures (gates must bite):\n");
  for (const chaos::NamedScenario& s : chaos::violation_fixtures()) {
    const chaos::ChaosReport report = chaos::run_chaos(s.build(quick, kSeed), base_config);
    const std::vector<std::string> fails = chaos::evaluate_gates(report, s.gates);
    bool tripped = false;
    bool stateless_broken = false;
    for (const std::string& f : fails) {
      if (f.find(s.must_trip) != std::string::npos) tripped = true;
      if (f.find("stateless") != std::string::npos) stateless_broken = true;
    }
    gate(tripped, std::string(s.name) + ": expected gate " + s.must_trip + " did not trip");
    gate(!stateless_broken, std::string(s.name) + ": broke the stateless contract");
    std::printf("  %-32s %s (%zu gate failure%s)\n", s.name.c_str(),
                tripped ? "tripped as designed" : "DID NOT TRIP", fails.size(),
                fails.size() == 1 ? "" : "s");
    out.gauge("chaos.fixtures." + s.name + ".tripped").set(tripped ? 1.0 : 0.0);
  }

  // --- width determinism ------------------------------------------------------
  std::printf("\nwidth determinism (3 shards, pool width 1 vs 4):\n");
  {
    exec::ThreadPool serial(1);
    exec::ThreadPool wide(4);
    for (const chaos::NamedScenario& s : chaos::builtin_scenarios()) {
      const auto builder = [&](std::uint64_t seed) { return s.build(quick, seed); };
      const auto a = chaos::sweep_chaos(builder, base_config, 3, kSeed, &serial);
      const auto b = chaos::sweep_chaos(builder, base_config, 3, kSeed, &wide);
      bool identical = a.size() == b.size();
      for (std::size_t i = 0; identical && i < a.size(); ++i) identical = a[i] == b[i];
      gate(identical, s.name + ": sweep diverged across pool widths");
      std::printf("  %-24s %s\n", s.name.c_str(), identical ? "bit-for-bit" : "DIVERGED");
    }
  }

  bench::export_bench_json("chaos", out, &journal);
  if (!failed) std::printf("\nOK: all chaos gates passed\n");
  return failed ? 1 : 0;
}
