// Fig 12 — "VIP availability during failure" (§7.2).
//
// 7 VIPs on HMuxes, 3 on SMuxes; one HMux switch is killed at t=100 ms.
// Probes every 3 ms to three representative VIPs:
//   VIP3 — on the failed HMux: blackholed until BGP convergence (~38 ms),
//          then served by the SMux backstop;
//   VIP2 — on a healthy HMux: untouched;
//   VIP1 — on the SMuxes: untouched.
#include <cstdio>

#include "common.h"
#include "sim/probe.h"
#include "util/chart.h"

using namespace duet;

int main() {
  bench::header("Figure 12", "VIP availability during HMux failure");
  bench::paper_note(
      "VIP on failed switch is unavailable for ~38ms (detection + BGP "
      "convergence), then falls over to SMuxes; other VIPs unaffected");

  constexpr double kMs = 1e3;
  DuetConfig cfg;
  TestbedSim sim{FatTreeParams::testbed(), cfg, 11};
  const auto& ft = sim.fabric();
  sim.deploy_smux(ft.tors[0]);
  sim.deploy_smux(ft.tors[1]);
  sim.deploy_smux(ft.tors[2]);

  // 10 VIPs: 7 on HMuxes (spread over cores+aggs), 3 on SMuxes.
  std::vector<Ipv4Address> vips;
  const SwitchId hmux_homes[] = {ft.cores[0], ft.cores[1], ft.aggs[0], ft.aggs[1],
                                 ft.aggs[2],  ft.aggs[3],  ft.cores[1]};
  for (std::uint32_t i = 0; i < 10; ++i) {
    const Ipv4Address vip{(100u << 24) + 1 + i};
    sim.define_vip(vip, {ft.servers_by_tor[3][i], ft.servers_by_tor[2][i]});
    if (i < 7) sim.assign_vip_to_hmux(vip, hmux_homes[i]);
    vips.push_back(vip);
  }
  const Ipv4Address vip_on_failed = vips[6];   // lives on cores[1]
  const Ipv4Address vip_on_healthy = vips[0];  // lives on cores[0]
  const Ipv4Address vip_on_smux = vips[9];
  const Ipv4Address src = ft.servers_by_tor[0][10];

  sim.schedule_switch_failure(100 * kMs, ft.cores[1]);
  for (const auto v : {vip_on_failed, vip_on_healthy, vip_on_smux}) {
    sim.start_probes(v, src, 0.0, 250 * kMs, 3 * kMs);
  }
  sim.run_until(250 * kMs);

  struct Row {
    const char* name;
    Ipv4Address vip;
  };
  const Row rows[] = {{"VIP3 (on failed HMux)", vip_on_failed},
                      {"VIP2 (healthy HMux)", vip_on_healthy},
                      {"VIP1 (on SMux)", vip_on_smux}};

  TablePrinter t{{"vip", "lost probes", "outage (ms)", "recovered via", "rtt before (ms)",
                  "rtt after (ms)"}};
  for (const auto& r : rows) {
    const auto& samples = sim.samples(r.vip);
    int lost = 0;
    double first_loss = -1, last_loss = -1;
    Summary before, after;
    ProbeVia via_after = ProbeVia::kNone;
    for (const auto& p : samples) {
      if (p.lost) {
        ++lost;
        if (first_loss < 0) first_loss = p.t_us;
        last_loss = p.t_us;
      } else if (p.t_us < 100 * kMs) {
        before.add(p.rtt_us / 1e3);
      } else {
        after.add(p.rtt_us / 1e3);
        if (last_loss >= 0 && via_after == ProbeVia::kNone) via_after = p.via;
      }
    }
    const double outage = lost > 0 ? (last_loss - first_loss) / kMs + 3.0 : 0.0;
    t.add_row({r.name, TablePrinter::fmt_int(lost), TablePrinter::fmt(outage, "%.0f"),
               via_after == ProbeVia::kSmux ? "SMux"
               : via_after == ProbeVia::kHmux ? "HMux"
                                              : "-",
               TablePrinter::fmt(before.median()), TablePrinter::fmt(after.median())});
  }
  t.print();

  // The figure: VIP3's timeline with the failover gap marked (x = lost).
  Series line{"VIP3 RTT", '*', {}};
  for (const auto& p : sim.samples(vip_on_failed)) {
    line.points.push_back({p.t_us / kMs, p.lost ? -1.0 : p.rtt_us / 1e3});
  }
  ChartOptions co;
  co.x_label = "time (ms) — switch fails at 100ms";
  co.y_label = "RTT (ms)";
  std::printf("\n%s\n", render_chart({line}, co).c_str());

  std::printf("\npaper: VIP3 outage ~38ms, VIP1/VIP2 outage 0ms\n");

  bench::export_bench_json("fig12", sim.metrics(), &sim.journal());
  return 0;
}
