// Fig 19 — "Impact of failures on max. link utilization" (§8.5).
//
// With VIPs assigned by a failure-OBLIVIOUS algorithm, fail (a) 3 random
// switches or (b) one random container, re-route, and measure the maximum
// link utilization (against raw capacity). Paper: the increase over normal
// is at most ~16 %, comfortably inside the 20 % reservation the assignment
// left (§4); container failure often causes LESS congestion than 3-switch
// failure because the traffic sourced/sunk inside the container disappears.
//
// The failure scenarios are independent, so they run through the parallel
// sweep engine (exec/sweep.h). Every traffic point is swept twice — once on
// a width-1 pool (the serial reference) and once on the default pool — the
// bench prints the self-reported speedup and FAILS if the merged metric
// documents differ by a single byte (the determinism contract).
#include <cstdio>

#include "common.h"
#include "exec/thread_pool.h"
#include "sim/flowsim.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 19", "max link utilization: normal / 3-switch failure / container failure",
                &scale);
  bench::paper_note(
      "failure-driven increase <= ~16%, absorbed by the 20% reservation; "
      "container failure often milder than 3-switch failure");

  const auto fabric = build_fattree(scale.fabric);
  Rng rng{4242};

  TablePrinter t{{"traffic (paper Tbps)", "normal", "3-switch (mean)", "3-switch (max)",
                  "container (mean)", "container (max)"}};
  const int kRuns = bench::quick_mode() ? 3 : 10;  // paper: "the 10 experiments"

  exec::ThreadPool serial_pool{1};
  exec::ThreadPool& wide_pool = exec::global_pool();
  double serial_s = 0.0, wide_s = 0.0;

  telemetry::MetricRegistry figure;  // merged across traffic points for the JSON dump

  for (const double paper_tbps : {1.25, 2.5, 5.0, 10.0}) {
    const auto trace = bench::make_trace(fabric, scale, paper_tbps, 2,
                                         31337 + static_cast<std::uint64_t>(paper_tbps * 4));
    const auto demands = build_demands(fabric, trace, 0);
    const auto assignment = VipAssigner{fabric, bench::make_options(scale)}.assign(demands);

    // SMux pool: one per container spread over first ToRs.
    std::vector<SwitchId> smux_tors;
    for (std::size_t c = 0; c < fabric.params.containers; ++c) {
      smux_tors.push_back(fabric.tors[c * fabric.params.tors_per_container]);
    }

    // Scenario generation stays serial (one rng stream, same draw order as
    // the historical serial bench): slot 0 = healthy, then per experiment a
    // 3-switch failure followed by a container failure.
    std::vector<FailureScenario> scenarios;
    scenarios.push_back(healthy_scenario());
    for (int run = 0; run < kRuns; ++run) {
      scenarios.push_back(random_switch_failure(fabric, 3, rng));
      scenarios.push_back(random_container_failure(fabric, rng));
    }

    FlowSweepOptions serial_opts, wide_opts;
    serial_opts.pool = &serial_pool;
    wide_opts.pool = &wide_pool;

    const bench::Stopwatch t1;
    const auto ref = sweep_flows(fabric, demands, assignment, smux_tors, scenarios, serial_opts);
    serial_s += t1.seconds();

    const bench::Stopwatch tn;
    const auto par = sweep_flows(fabric, demands, assignment, smux_tors, scenarios, wide_opts);
    wide_s += tn.seconds();

    // Determinism gate: the width-1 and width-N merged documents must match
    // byte for byte.
    if (telemetry::JsonExporter::to_json(*ref.metrics) !=
        telemetry::JsonExporter::to_json(*par.metrics)) {
      std::fprintf(stderr, "FAIL: merged metrics differ between 1 and %zu threads\n",
                   wide_pool.width());
      return 1;
    }

    const FlowSimResult& normal = par.runs[0];
    Summary sw_util, ct_util;
    for (int run = 0; run < kRuns; ++run) {
      sw_util.add(par.runs[1 + 2 * static_cast<std::size_t>(run)].max_link_utilization);
      ct_util.add(par.runs[2 + 2 * static_cast<std::size_t>(run)].max_link_utilization);
    }

    figure.merge(*par.metrics);
    char name[80];
    std::snprintf(name, sizeof(name), "duet.fig19.%.2ftbps.normal_util", paper_tbps);
    figure.gauge(name).set(normal.max_link_utilization);
    std::snprintf(name, sizeof(name), "duet.fig19.%.2ftbps.switch_fail_util_mean", paper_tbps);
    figure.gauge(name).set(sw_util.mean());
    std::snprintf(name, sizeof(name), "duet.fig19.%.2ftbps.container_fail_util_mean", paper_tbps);
    figure.gauge(name).set(ct_util.mean());

    t.add_row({TablePrinter::fmt(paper_tbps, "%.2f"),
               TablePrinter::fmt(normal.max_link_utilization),
               TablePrinter::fmt(sw_util.mean()), TablePrinter::fmt(sw_util.max()),
               TablePrinter::fmt(ct_util.mean()), TablePrinter::fmt(ct_util.max())});
  }
  t.print();
  std::printf("\n(utilization measured against RAW capacity; the assignment packed to 0.8)\n");
  std::printf("sweep wall-clock: 1 thread %.3fs, %zu threads %.3fs, speedup %.2fx "
              "(merged metrics byte-identical)\n",
              serial_s, wide_pool.width(), wide_s, wide_s > 0.0 ? serial_s / wide_s : 0.0);
  bench::export_bench_json("fig19", figure);
  return 0;
}
