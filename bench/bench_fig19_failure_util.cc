// Fig 19 — "Impact of failures on max. link utilization" (§8.5).
//
// With VIPs assigned by a failure-OBLIVIOUS algorithm, fail (a) 3 random
// switches or (b) one random container, re-route, and measure the maximum
// link utilization (against raw capacity). Paper: the increase over normal
// is at most ~16 %, comfortably inside the 20 % reservation the assignment
// left (§4); container failure often causes LESS congestion than 3-switch
// failure because the traffic sourced/sunk inside the container disappears.
#include <cstdio>

#include "common.h"
#include "sim/flowsim.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Figure 19", "max link utilization: normal / 3-switch failure / container failure",
                &scale);
  bench::paper_note(
      "failure-driven increase <= ~16%, absorbed by the 20% reservation; "
      "container failure often milder than 3-switch failure");

  const auto fabric = build_fattree(scale.fabric);
  Rng rng{4242};

  TablePrinter t{{"traffic (paper Tbps)", "normal", "3-switch (mean)", "3-switch (max)",
                  "container (mean)", "container (max)"}};
  constexpr int kRuns = 10;  // paper: "the 10 experiments"

  for (const double paper_tbps : {1.25, 2.5, 5.0, 10.0}) {
    const auto trace = bench::make_trace(fabric, scale, paper_tbps, 2,
                                         31337 + static_cast<std::uint64_t>(paper_tbps * 4));
    const auto demands = build_demands(fabric, trace, 0);
    const auto assignment = VipAssigner{fabric, bench::make_options(scale)}.assign(demands);

    // SMux pool: one per container spread over first ToRs.
    std::vector<SwitchId> smux_tors;
    for (std::size_t c = 0; c < fabric.params.containers; ++c) {
      smux_tors.push_back(fabric.tors[c * fabric.params.tors_per_container]);
    }

    const auto normal =
        simulate_flows(fabric, demands, assignment, smux_tors, healthy_scenario());

    Summary sw_util, ct_util;
    for (int run = 0; run < kRuns; ++run) {
      const auto sw = random_switch_failure(fabric, 3, rng);
      sw_util.add(simulate_flows(fabric, demands, assignment, smux_tors, sw)
                      .max_link_utilization);
      const auto ct = random_container_failure(fabric, rng);
      ct_util.add(simulate_flows(fabric, demands, assignment, smux_tors, ct)
                      .max_link_utilization);
    }

    t.add_row({TablePrinter::fmt(paper_tbps, "%.2f"),
               TablePrinter::fmt(normal.max_link_utilization),
               TablePrinter::fmt(sw_util.mean()), TablePrinter::fmt(sw_util.max()),
               TablePrinter::fmt(ct_util.mean()), TablePrinter::fmt(ct_util.max())});
  }
  t.print();
  std::printf("\n(utilization measured against RAW capacity; the assignment packed to 0.8)\n");
  return 0;
}
