// Ablation — assignment-algorithm design choices (§4.2 complexity claim).
//
// (1) Runtime of the container-optimized candidate search vs the full
//     O(|V|·|S|·|E|) scan — the paper's complexity-reduction argument.
// (2) Quality (traffic on HMux) of greedy-MRU vs Random first-fit.
// Uses google-benchmark for the timing half; prints a quality table first.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/random_assign.h"
#include "common.h"

using namespace duet;

namespace {

struct Setup {
  FatTree fabric;
  std::vector<VipDemand> demands;
  AssignmentOptions opts;
};

Setup make_setup(std::size_t containers, std::size_t tors, std::size_t vips,
                 double gbps_per_tor = 4.0) {
  Setup s{build_fattree(FatTreeParams::scaled(containers, tors, containers)), {}, {}};
  TraceParams p;
  p.vip_count = vips;
  p.total_gbps = static_cast<double>(containers * tors) * gbps_per_tor;
  p.epochs = 1;
  const auto trace = generate_trace(s.fabric, p);
  s.demands = build_demands(s.fabric, trace, 0);
  s.opts.host_table_capacity = vips;  // not the binding constraint here
  return s;
}

void BM_AssignContainerOptimized(benchmark::State& state) {
  auto setup = make_setup(static_cast<std::size_t>(state.range(0)), 10,
                          static_cast<std::size_t>(state.range(1)));
  const VipAssigner assigner{setup.fabric, setup.opts};
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.assign(setup.demands));
  }
  state.counters["switches"] = static_cast<double>(setup.fabric.topo.switch_count());
}

void BM_AssignFullScan(benchmark::State& state) {
  auto setup = make_setup(static_cast<std::size_t>(state.range(0)), 10,
                          static_cast<std::size_t>(state.range(1)));
  setup.opts.container_optimization = false;
  const VipAssigner assigner{setup.fabric, setup.opts};
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.assign(setup.demands));
  }
  state.counters["switches"] = static_cast<double>(setup.fabric.topo.switch_count());
}

void BM_AssignRandomBaseline(benchmark::State& state) {
  auto setup = make_setup(static_cast<std::size_t>(state.range(0)), 10,
                          static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_random(setup.fabric, setup.demands, setup.opts));
  }
}

BENCHMARK(BM_AssignContainerOptimized)->Args({4, 500})->Args({8, 1000})->Args({12, 1500})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AssignFullScan)->Args({4, 500})->Args({8, 1000})->Args({12, 1500})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AssignRandomBaseline)->Args({8, 1000})->Unit(benchmark::kMillisecond);

void print_quality_table() {
  std::printf("=== assignment quality: greedy-MRU (both candidate searches) vs Random ===\n");
  TablePrinter t{{"fabric", "greedy+container-opt", "greedy full-scan", "random first-fit"}};
  for (const std::size_t c : {4u, 8u}) {
    // Heavy load (~24 Gbps offered per ToR against 32 Gbps usable uplink):
    // this is where packing quality separates the strategies.
    auto setup = make_setup(c, 10, 250 * c, 24.0);
    auto full = setup.opts;
    full.container_optimization = false;
    full.stop_on_first_failure = false;
    auto opt = setup.opts;
    opt.stop_on_first_failure = false;
    const auto a_opt = VipAssigner{setup.fabric, opt}.assign(setup.demands);
    const auto a_full = VipAssigner{setup.fabric, full}.assign(setup.demands);
    const auto a_rand = assign_random(setup.fabric, setup.demands, setup.opts);
    t.add_row({std::to_string(c) + " containers", format_pct(a_opt.hmux_fraction()),
               format_pct(a_full.hmux_fraction()), format_pct(a_rand.hmux_fraction())});
  }
  t.print();
  std::printf("\n=== runtime (google-benchmark) ===\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_quality_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
