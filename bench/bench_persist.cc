// Persistence bench: crash-recovery time vs op-journal length, WAL append
// cost, and the snapshot-compaction payoff.
//
// Three questions, answered on the same deterministic op scripts:
//   * how fast do journaled mutations apply under each fsync policy (the
//     price of write-ahead durability);
//   * how does recovery time grow with the journal length when every op
//     must replay (no snapshots) — the paper-side worst case for a
//     controller restart;
//   * how flat does recovery stay when auto-snapshots bound the replay tail
//     (the duetd default).
//
// Gate (strict): with snapshots every 64 ops, recovery must replay <= 64
// ops regardless of history length — the compaction bound that keeps duetd
// restarts O(snapshot interval), not O(uptime).
//
// Exports BENCH_persist.json (duet.bench.persist.* gauges).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "common.h"
#include "persist/store.h"
#include "util/random.h"

using namespace duet;
using namespace duet::bench;

namespace {

// Deterministic op script: grows a VIP population, then churns it with DIP
// adds/removes, operator migrations, and periodic epochs. Same shape the
// daemon-smoke leg drives over the ops socket, minus the socket.
std::vector<persist::Op> make_script(const FatTree& fabric, std::size_t ops,
                                     std::uint64_t seed) {
  Rng rng{seed};
  std::vector<persist::Op> script;
  double t_us = 0.0;
  auto stamp = [&](persist::Op op) {
    t_us += 1e5;
    op.t_us = t_us;
    script.push_back(std::move(op));
  };

  persist::Op deploy;
  deploy.kind = persist::OpKind::kDeploySmuxes;
  deploy.aggregate = Ipv4Prefix{Ipv4Address{100, 0, 0, 0}, 8};
  deploy.addrs = {fabric.tors.front(), fabric.tors[fabric.tors.size() / 2],
                  fabric.tors.back()};
  stamp(std::move(deploy));

  struct Vip {
    VipId id;
    std::uint32_t addr;
    std::vector<std::uint32_t> dips;
  };
  std::vector<Vip> vips;
  VipId next_id = 0;
  std::uint32_t next_dip = (10u << 24) + 1;
  constexpr std::size_t kMaxVips = 64;

  while (script.size() < ops) {
    const auto roll = rng.uniform_int(0, 99);
    if (vips.empty() || (roll < 20 && vips.size() < kMaxVips)) {
      persist::Op op;
      op.kind = persist::OpKind::kAddVip;
      const std::uint32_t addr = (100u << 24) + (static_cast<std::uint32_t>(next_id) << 8) + 1;
      op.vip = Ipv4Address{addr};
      Vip v{next_id++, addr, {}};
      const auto ndips = static_cast<std::size_t>(rng.uniform_int(2, 4));
      for (std::size_t d = 0; d < ndips; ++d) {
        op.addrs.push_back(next_dip);
        v.dips.push_back(next_dip++);
      }
      vips.push_back(std::move(v));
      stamp(std::move(op));
    } else if (roll < 45) {
      auto& v = vips[rng.uniform_int(0, vips.size() - 1)];
      persist::Op op;
      op.kind = persist::OpKind::kAddDip;
      op.vip = Ipv4Address{v.addr};
      op.dip = Ipv4Address{next_dip};
      v.dips.push_back(next_dip++);
      stamp(std::move(op));
    } else if (roll < 60 && !vips.empty()) {
      auto& v = vips[rng.uniform_int(0, vips.size() - 1)];
      if (v.dips.size() < 2) continue;  // keep the VIP alive
      persist::Op op;
      op.kind = persist::OpKind::kRemoveDip;
      op.vip = Ipv4Address{v.addr};
      op.dip = Ipv4Address{v.dips.back()};
      v.dips.pop_back();
      stamp(std::move(op));
    } else if (roll < 85) {
      const auto& v = vips[rng.uniform_int(0, vips.size() - 1)];
      persist::Op op;
      op.kind = persist::OpKind::kMigrateVip;
      op.vip = Ipv4Address{v.addr};
      op.sw = rng.uniform01() < 0.3
                  ? kInvalidSwitch
                  : static_cast<std::uint32_t>(
                        rng.uniform_int(0, fabric.topo.switch_count() - 1));
      stamp(std::move(op));
    } else {
      persist::Op op;
      op.kind = persist::OpKind::kRunEpoch;
      op.flag = true;
      for (const auto& v : vips) {
        VipDemand d;
        d.id = v.id;
        d.vip = Ipv4Address{v.addr};
        d.total_gbps = 0.5 + 4.0 * rng.uniform01();
        d.dip_count = v.dips.size();
        d.ingress_gbps = {
            {fabric.tors[rng.uniform_int(0, fabric.tors.size() - 1)], d.total_gbps}};
        d.dip_tor_gbps = {
            {fabric.tors[rng.uniform_int(0, fabric.tors.size() - 1)], d.total_gbps}};
        op.demands.push_back(std::move(d));
      }
      stamp(std::move(op));
    }
  }
  script.resize(ops);
  return script;
}

struct RunResult {
  double apply_s = 0.0;
  double recover_ms = 0.0;
  std::uint64_t replayed = 0;
  std::uint64_t journal_bytes = 0;
};

RunResult run_case(const FatTree& fabric, const std::vector<persist::Op>& script,
                   persist::FsyncPolicy fsync, std::uint64_t snapshot_every) {
  char tmpl[] = "/tmp/duet_bench_persist_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  RunResult result;
  persist::StoreOptions so;
  so.dir = dir;
  so.fsync = fsync;
  so.snapshot_every_ops = snapshot_every;
  const DuetConfig config;
  std::string error;
  {
    auto store = persist::PersistentController::open(fabric, config, FlowHasher{1}, 1, so,
                                                     &error);
    if (store == nullptr) {
      std::fprintf(stderr, "open: %s\n", error.c_str());
      std::exit(1);
    }
    Stopwatch sw;
    for (const auto& op : script) {
      if (!store->apply(op)) {
        std::fprintf(stderr, "apply failed at seq %llu\n",
                     static_cast<unsigned long long>(store->last_seq() + 1));
        std::exit(1);
      }
    }
    result.apply_s = sw.seconds();
  }
  std::error_code ec;
  const auto n = std::filesystem::file_size(std::string{dir} + "/oplog.duet", ec);
  result.journal_bytes = ec ? 0 : static_cast<std::uint64_t>(n);
  // A destroyed store is indistinguishable from kill -9 with an intact tail;
  // recover_ms covers snapshot restore + replay + the 16-invariant boot audit.
  auto reopened =
      persist::PersistentController::open(fabric, config, FlowHasher{1}, 1, so, &error);
  if (reopened == nullptr) {
    std::fprintf(stderr, "recovery: %s\n", error.c_str());
    std::exit(1);
  }
  result.recover_ms = reopened->recovery().recover_ms;
  result.replayed = reopened->recovery().replayed;
  reopened.reset();
  std::filesystem::remove_all(dir, ec);
  return result;
}

}  // namespace

int main() {
  header("persist", "crash recovery: time vs journal length, WAL cost, compaction bound");
  paper_note(
      "the paper's controller keeps assignment state in memory and recomputes "
      "on restart; duetd instead journals every mutation and must recover "
      "O(snapshot interval), not O(uptime)");

  const auto fabric = build_fattree(FatTreeParams::scaled(2, 4, 2));
  const std::vector<std::size_t> lengths =
      quick_mode() ? std::vector<std::size_t>{64, 256} : std::vector<std::size_t>{64, 256, 1024, 4096};

  telemetry::MetricRegistry registry;
  TablePrinter table{{"ops", "fsync", "snapshot", "apply ops/s", "journal KB", "replayed",
                      "recover ms"}};
  bool gate_ok = true;

  for (const std::size_t ops : lengths) {
    const auto script = make_script(fabric, ops, /*seed=*/20140817);
    struct Case {
      const char* name;
      persist::FsyncPolicy fsync;
      std::uint64_t snapshot_every;
    };
    const Case cases[] = {
        {"fsync_none.full_replay", persist::FsyncPolicy::kNone, 0},
        {"fsync_every.full_replay", persist::FsyncPolicy::kEveryRecord, 0},
        {"fsync_every.snap64", persist::FsyncPolicy::kEveryRecord, 64},
    };
    for (const auto& c : cases) {
      const auto r = run_case(fabric, script, c.fsync, c.snapshot_every);
      table.add_row({TablePrinter::fmt_int(static_cast<long long>(ops)),
                     persist::to_string(c.fsync),
                     c.snapshot_every == 0 ? "none" : "every 64",
                     TablePrinter::fmt(static_cast<double>(ops) / r.apply_s, "%.0f"),
                     TablePrinter::fmt(static_cast<double>(r.journal_bytes) / 1024.0, "%.1f"),
                     TablePrinter::fmt_int(static_cast<long long>(r.replayed)),
                     TablePrinter::fmt(r.recover_ms, "%.2f")});
      const std::string prefix = "duet.bench.persist." + std::string{c.name} + "." +
                                 std::to_string(ops) + ".";
      registry.gauge(prefix + "apply_ops_per_s").set(static_cast<double>(ops) / r.apply_s);
      registry.gauge(prefix + "recover_ms").set(r.recover_ms);
      registry.gauge(prefix + "replayed_ops").set(static_cast<double>(r.replayed));
      registry.gauge(prefix + "journal_bytes").set(static_cast<double>(r.journal_bytes));
      if (c.snapshot_every > 0 && r.replayed > c.snapshot_every) {
        std::printf("GATE FAILED: %zu-op run replayed %llu ops (> snapshot interval %llu)\n",
                    ops, static_cast<unsigned long long>(r.replayed),
                    static_cast<unsigned long long>(c.snapshot_every));
        gate_ok = false;
      }
    }
  }
  table.print();
  std::printf("\ngate: snapshot-compaction replay bound %s\n", gate_ok ? "ok" : "FAILED");

  export_bench_json("persist", registry);
  return gate_ok ? 0 : 1;
}
