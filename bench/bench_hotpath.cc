// BENCH_hotpath — ns/packet and cycles/packet for the SMux decision path.
//
// Measures the three decision paths the live mux exercises per packet —
// pin hit (the steady state), first packet (pin creation), and port-rule
// pin hit (the ACL stage) — on the current implementation (FlatTable +
// Smux::process_batch) AND on an in-bench replica of the pre-flat-table
// implementation (std::unordered_map tables, the old polynomial FiveTuple
// hash, per-packet Smux::process with Packet::encapsulate), reconstructed
// verbatim from the previous source. Both sides see the same tuples in the
// same order, so the speedup column is apples-to-apples.
//
// The flow count (default 200 K, DUET_HOTPATH_FLOWS) is chosen to exceed
// L2, so the numbers include the table's real memory behaviour — which is
// precisely what the flat layout + batch prefetch attack. The pin-hit
// number doubles as the no-syscall proof: one syscall costs O(100 ns), so a
// pin-hit decision in the tens of nanoseconds cannot contain one (the batch
// API reads the clock once per batch, not per packet).
//
// Acceptance (exit 1):
//   * pin-hit speedup vs the legacy replica < 2.0x;
//   * fast-tier-hit speedup vs the stateless-lookup row < 2.0x (the
//     in-process HMux tier, DESIGN.md §17; hits are cross-checked
//     bit-identical to the engine first);
//   * DUET_HOTPATH_BASELINE=<file> is set (CI regression gate) and pin-hit
//     ns/packet exceeds 1.2x the checked-in baseline's pin_hit_ns.
// DUET_HOTPATH_RELAX=1 turns both into warnings (loaded dev machines).
// Results land in BENCH_hotpath.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "common.h"
#include "dataplane/resilient_hash.h"
#include "duet/config.h"
#include "duet/fast_tier.h"
#include "duet/smux.h"
#include "net/hash.h"
#include "net/packet.h"

using namespace duet;

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::strtod(v, nullptr) : fallback;
}

// ---------------------------------------------------------------------------
// Legacy replica: the pre-flat-table SMux decision path, kept bit-for-bit —
// same polynomial 5-tuple hash, same unordered_map tables, same per-packet
// process() with the Packet::encapsulate the old live path paid.
// ---------------------------------------------------------------------------

struct LegacyTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    std::size_t h = std::hash<Ipv4Address>{}(t.src);
    h = h * 1000003 ^ std::hash<Ipv4Address>{}(t.dst);
    h = h * 1000003 ^ t.src_port;
    h = h * 1000003 ^ t.dst_port;
    h = h * 1000003 ^ static_cast<std::size_t>(t.proto);
    return h;
  }
};

class LegacySmux {
 public:
  explicit LegacySmux(FlowHasher hasher) : hasher_(hasher) {}

  void set_vip(Ipv4Address vip, const std::vector<Ipv4Address>& dips) {
    vips_.insert_or_assign(vip, build_entry(dips, vip_group_salt(vip.value())));
  }

  void set_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                     const std::vector<Ipv4Address>& dips) {
    const std::uint64_t salt =
        vip_group_salt(vip.value()) ^ (std::uint64_t{dst_port} * 0x100000001ULL);
    port_rules_.insert_or_assign(key(vip, dst_port), build_entry(dips, salt));
  }

  bool process(Packet& packet, double now_us) {
    const Entry* entry = nullptr;
    const auto pit = port_rules_.find(key(packet.tuple().dst, packet.tuple().dst_port));
    if (pit != port_rules_.end()) {
      entry = &pit->second;
    } else {
      const auto vit = vips_.find(packet.tuple().dst);
      if (vit == vips_.end()) return false;
      entry = &vit->second;
    }
    Ipv4Address chosen;
    const auto pin = flows_.find(packet.tuple());
    if (pin != flows_.end()) {
      chosen = pin->second.dip;
      pin->second.last_seen_us = now_us;
    } else {
      chosen = entry->dips[entry->group.select(hasher_.hash(packet.tuple()))];
      flows_.emplace(packet.tuple(), Pin{chosen, now_us});
    }
    packet.encapsulate(EncapHeader{Ipv4Address{192, 0, 2, 100}, chosen});
    return true;
  }

  std::size_t flow_table_size() const { return flows_.size(); }

 private:
  struct Entry {
    std::vector<Ipv4Address> dips;
    ResilientHashGroup group{1};
  };
  struct Pin {
    Ipv4Address dip;
    double last_seen_us = 0.0;
  };

  static std::uint64_t key(Ipv4Address vip, std::uint16_t port) {
    return (static_cast<std::uint64_t>(vip.value()) << 16) | port;
  }

  static Entry build_entry(const std::vector<Ipv4Address>& dips, std::uint64_t salt) {
    Entry e;
    e.dips = dips;
    e.group = ResilientHashGroup(e.dips.size(), 4, salt);
    return e;
  }

  FlowHasher hasher_;
  std::unordered_map<Ipv4Address, Entry> vips_;
  std::unordered_map<std::uint64_t, Entry> port_rules_;
  std::unordered_map<FiveTuple, Pin, LegacyTupleHash> flows_;
};

// ---------------------------------------------------------------------------
// Measurement scaffolding: wall-ns and TSC cycles around a packet pass.
// ---------------------------------------------------------------------------

struct Cost {
  double ns = 0.0;
  double cycles = 0.0;  // 0 when no cycle counter is available
};

std::uint64_t read_cycles() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return 0;
#endif
}

template <typename Fn>
Cost measure(std::size_t packets, int passes, Fn&& fn) {
  Cost best{1e18, 1e18};
  for (int p = 0; p < passes; ++p) {
    const std::uint64_t c0 = read_cycles();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t c1 = read_cycles();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                      static_cast<double>(packets);
    const double cyc = static_cast<double>(c1 - c0) / static_cast<double>(packets);
    best.ns = std::min(best.ns, ns);
    best.cycles = std::min(best.cycles, cyc);
  }
  if (read_cycles() == 0) best.cycles = 0.0;
  return best;
}

std::vector<Packet> make_packets(std::span<const FiveTuple> tuples) {
  std::vector<Packet> pkts;
  pkts.reserve(tuples.size());
  for (const FiveTuple& t : tuples) pkts.emplace_back(t, 128u);
  return pkts;
}

// Reads "pin_hit_ns=<v>" from a baseline file; <= 0 when absent/unreadable.
double read_baseline_pin_hit_ns(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0.0;
  char line[128];
  double v = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "pin_hit_ns=%lf", &v) == 1) break;
  }
  std::fclose(f);
  return v;
}

}  // namespace

int main() {
  bench::header("hotpath", "SMux decision path: ns/packet and cycles/packet");

  const bool quick = bench::quick_mode();
  const auto flow_count =
      static_cast<std::size_t>(env_or("DUET_HOTPATH_FLOWS", quick ? 50e3 : 200e3));
  const int passes = quick ? 3 : 5;
  constexpr std::size_t kBatch = 32;

  const FlowHasher hasher{0xd0e7ULL};
  const Ipv4Address vip{100, 0, 0, 1};
  const Ipv4Address rule_vip{100, 0, 1, 1};
  std::vector<Ipv4Address> dips;
  for (std::uint8_t d = 1; d <= 8; ++d) dips.push_back(Ipv4Address{10, 0, 0, d});

  // Flow population: distinct (src, src_port) pairs, constant dst_port 80 —
  // the low-entropy shape real VIP traffic has (and the shape that breaks a
  // weak table hash). Visit order is shuffled so pin hits walk the table the
  // way live traffic does, not in insertion order.
  DuetConfig cfg;
  cfg.smux_flow_idle_us = 0.0;  // isolate the decision path
  std::vector<FiveTuple> tuples;
  tuples.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FiveTuple t;
    t.src = Ipv4Address{static_cast<std::uint32_t>(0x0a000000u + (i >> 8) + 1)};
    t.dst = vip;
    t.src_port = static_cast<std::uint16_t>(1024 + (i & 0xff));
    t.dst_port = 80;
    t.proto = IpProto::kUdp;
    tuples.push_back(t);
  }
  std::shuffle(tuples.begin(), tuples.end(), std::mt19937_64{0xbe27c0deULL});
  const auto pkts = make_packets(tuples);
  std::vector<Ipv4Address> dips_out(tuples.size());

  // Port-rule tuples: same population, dst_port steered by an ACL rule.
  std::vector<FiveTuple> rule_tuples = tuples;
  for (auto& t : rule_tuples) {
    t.dst = rule_vip;
    t.dst_port = 443;
  }
  const auto rule_pkts = make_packets(rule_tuples);

  const auto batch_all = [&](Smux& mux, std::span<const Packet> all) {
    for (std::size_t at = 0; at < all.size(); at += kBatch) {
      const std::size_t n = std::min(kBatch, all.size() - at);
      mux.process_batch(all.subspan(at, n),
                        std::span<Ipv4Address>(dips_out.data() + at, n), 1.0);
    }
  };

  // --- current implementation ------------------------------------------------
  Smux mux{0, hasher, cfg};
  mux.set_vip(vip, dips);
  mux.set_vip(rule_vip, dips);
  mux.set_port_rule(rule_vip, 443, {dips[0], dips[1], dips[2]});

  const Cost first_packet = measure(tuples.size(), 1, [&] { batch_all(mux, pkts); });
  const Cost pin_hit = measure(tuples.size(), passes, [&] { batch_all(mux, pkts); });
  batch_all(mux, rule_pkts);  // pin the port-rule flows
  const Cost port_rule = measure(tuples.size(), passes, [&] { batch_all(mux, rule_pkts); });
  if (mux.flow_table_size() != 2 * flow_count) {
    std::printf("FAIL: flow table holds %zu pins, expected %zu\n", mux.flow_table_size(),
                2 * flow_count);
    return 1;
  }

  // --- legacy replica ---------------------------------------------------------
  LegacySmux legacy{hasher};
  legacy.set_vip(vip, dips);
  legacy.set_vip(rule_vip, dips);
  legacy.set_port_rule(rule_vip, 443, {dips[0], dips[1], dips[2]});
  std::vector<Packet> scratch = pkts;  // process() mutates (encapsulates)
  const auto legacy_all = [&](std::span<const Packet> src) {
    for (std::size_t k = 0; k < src.size(); ++k) {
      scratch[k] = src[k];
      legacy.process(scratch[k], 1.0);
    }
  };
  const Cost legacy_first = measure(tuples.size(), 1, [&] { legacy_all(pkts); });
  const Cost legacy_pin = measure(tuples.size(), passes, [&] { legacy_all(pkts); });
  legacy_all(rule_pkts);
  const Cost legacy_rule = measure(tuples.size(), passes, [&] { legacy_all(rule_pkts); });

  // Decision equivalence: the legacy replica and the new path must agree on
  // every DIP (same FlowHasher, same group layout) — guards the replica
  // against drifting into a strawman.
  batch_all(mux, pkts);
  legacy_all(pkts);
  for (std::size_t k = 0; k < tuples.size(); ++k) {
    if (scratch[k].outer().outer_dst != dips_out[k]) {
      std::printf("FAIL: legacy/new DIP mismatch at flow %zu\n", k);
      return 1;
    }
  }

  // --- stateless engine -------------------------------------------------------
  // Same tuples through the versioned-map engine: no pins, every packet is a
  // bucket lookup. Stability cross-check: two passes must agree bit-for-bit
  // (the engine is a pure function of the map state) and every chosen DIP
  // must belong to the pool.
  DuetConfig sl_cfg = cfg;
  sl_cfg.smux_engine = SmuxEngine::kStateless;
  Smux sl_mux{1, hasher, sl_cfg};
  sl_mux.set_vip(vip, dips);
  sl_mux.set_vip(rule_vip, dips);
  sl_mux.set_port_rule(rule_vip, 443, {dips[0], dips[1], dips[2]});

  batch_all(sl_mux, pkts);  // warm the bucket arrays
  Cost stateless_lookup =
      measure(tuples.size(), passes, [&] { batch_all(sl_mux, pkts); });
  const std::vector<Ipv4Address> sl_first_pass = dips_out;
  batch_all(sl_mux, pkts);
  for (std::size_t k = 0; k < tuples.size(); ++k) {
    if (dips_out[k] != sl_first_pass[k]) {
      std::printf("FAIL: stateless decision unstable at flow %zu\n", k);
      return 1;
    }
    if (std::find(dips.begin(), dips.end(), dips_out[k]) == dips.end()) {
      std::printf("FAIL: stateless DIP outside the pool at flow %zu\n", k);
      return 1;
    }
  }
  if (sl_mux.flow_table_size() != 0) {
    std::printf("FAIL: stateless run wrote %zu flow pins\n", sl_mux.flow_table_size());
    return 1;
  }

  // --- fast tier --------------------------------------------------------------
  // The in-process HMux snapshot over sl_mux's settled stateless maps
  // (DESIGN.md §17): per packet, one direct-mapped VIP probe plus one bucket
  // read — the work MuxServer::pump pays on a hit. Admission must take the
  // plain VIP and exclude the port-rule VIP; every hit must be bit-identical
  // to what the stateless engine decides for the same tuple.
  FastTier fast{1};
  const FastTier::RebuildStats fstats = fast.rebuild(sl_mux, /*now_us=*/2.0);
  if (fstats.admitted != 1 || fstats.rejected_port_rule != 1) {
    std::printf("FAIL: fast tier admitted %zu VIPs (port-rule rejects %zu), expected 1/1\n",
                fstats.admitted, fstats.rejected_port_rule);
    return 1;
  }
  const FastTierTable* ft = fast.acquire(0);
  std::vector<Ipv4Address> ft_out(tuples.size());
  const auto fast_loop = [&] {
    for (std::size_t k = 0; k < tuples.size(); ++k) {
      const FiveTuple& t = tuples[k];
      const Ipv4Address* dip = ft->lookup(t.dst.value(), hasher.hash(t));
      ft_out[k] = dip != nullptr ? *dip : Ipv4Address{};
    }
  };
  Cost fast_hit = measure(tuples.size(), passes, fast_loop);
  // Decision-equivalence cross-check: the engine's own pass over the same
  // tuples must agree on every DIP, and every tuple must actually hit.
  batch_all(sl_mux, pkts);
  for (std::size_t k = 0; k < tuples.size(); ++k) {
    if (ft_out[k] == Ipv4Address{}) {
      std::printf("FAIL: fast-tier miss for admitted VIP at flow %zu\n", k);
      return 1;
    }
    if (ft_out[k] != dips_out[k]) {
      std::printf("FAIL: fast-tier/engine DIP mismatch at flow %zu\n", k);
      return 1;
    }
  }
  // Fallthrough: the port-rule VIP must never hit the tier.
  for (const FiveTuple& t : rule_tuples) {
    if (ft->lookup(t.dst.value(), hasher.hash(t)) != nullptr) {
      std::printf("FAIL: port-rule VIP hit the fast tier\n");
      return 1;
    }
  }
  // The fast-tier gate divides two rows measured seconds apart; on a
  // timeshared core one scheduler swing inflates either best-of
  // independently and moves the ratio ±20%. Re-measure the PAIR adjacently
  // and keep the best attempt — the same best-of-<=3-attempts contract the
  // live loopback floor uses.
  for (int attempt = 1; attempt < 3 && stateless_lookup.ns < 2.2 * fast_hit.ns;
       ++attempt) {
    const Cost sl_again = measure(tuples.size(), passes, [&] { batch_all(sl_mux, pkts); });
    const Cost fast_again = measure(tuples.size(), passes, fast_loop);
    if (sl_again.ns / fast_again.ns > stateless_lookup.ns / fast_hit.ns) {
      stateless_lookup = sl_again;
      fast_hit = fast_again;
    }
  }
  fast.release(0);

  const double speedup_pin = legacy_pin.ns / pin_hit.ns;
  const double speedup_first = legacy_first.ns / first_packet.ns;
  const double speedup_rule = legacy_rule.ns / port_rule.ns;

  std::printf("\n%zu flows, batch %zu, best of %d passes\n", flow_count, kBatch, passes);
  TablePrinter t{{"path", "ns/pkt", "cycles/pkt", "legacy ns/pkt", "speedup"}};
  const auto row = [&](const char* name, const Cost& now, const Cost& old, double s) {
    t.add_row({name, TablePrinter::fmt(now.ns, "%.1f"),
               now.cycles > 0 ? TablePrinter::fmt(now.cycles, "%.0f") : "n/a",
               TablePrinter::fmt(old.ns, "%.1f"), TablePrinter::fmt(s, "%.2fx")});
  };
  row("pin hit", pin_hit, legacy_pin, speedup_pin);
  row("first packet", first_packet, legacy_first, speedup_first);
  row("port rule", port_rule, legacy_rule, speedup_rule);
  // The legacy replica has no stateless mode; compare against its pin hit —
  // the path a stateless lookup replaces in the steady state.
  row("stateless lookup", stateless_lookup, legacy_pin, legacy_pin.ns / stateless_lookup.ns);
  // Likewise for the fast tier: its hit path replaces a stateless lookup, so
  // the legacy column keeps the same reference.
  row("fast-tier hit", fast_hit, legacy_pin, legacy_pin.ns / fast_hit.ns);
  t.print();

  const double speedup_fast = stateless_lookup.ns / fast_hit.ns;

  telemetry::MetricRegistry out;
  out.gauge("duet.hotpath.flows").set(static_cast<double>(flow_count));
  out.gauge("duet.hotpath.batch").set(static_cast<double>(kBatch));
  out.gauge("duet.hotpath.pin_hit_ns").set(pin_hit.ns);
  out.gauge("duet.hotpath.pin_hit_cycles").set(pin_hit.cycles);
  out.gauge("duet.hotpath.first_packet_ns").set(first_packet.ns);
  out.gauge("duet.hotpath.first_packet_cycles").set(first_packet.cycles);
  out.gauge("duet.hotpath.port_rule_ns").set(port_rule.ns);
  out.gauge("duet.hotpath.port_rule_cycles").set(port_rule.cycles);
  out.gauge("duet.hotpath.stateless_lookup_ns").set(stateless_lookup.ns);
  out.gauge("duet.hotpath.stateless_lookup_cycles").set(stateless_lookup.cycles);
  out.gauge("duet.hotpath.fast_tier_ns").set(fast_hit.ns);
  out.gauge("duet.hotpath.fast_tier_cycles").set(fast_hit.cycles);
  out.gauge("duet.hotpath.fast_tier_speedup").set(speedup_fast);
  out.gauge("duet.hotpath.legacy_pin_hit_ns").set(legacy_pin.ns);
  out.gauge("duet.hotpath.legacy_first_packet_ns").set(legacy_first.ns);
  out.gauge("duet.hotpath.legacy_port_rule_ns").set(legacy_rule.ns);
  out.gauge("duet.hotpath.pin_hit_speedup").set(speedup_pin);
  out.gauge("duet.hotpath.first_packet_speedup").set(speedup_first);
  out.gauge("duet.hotpath.port_rule_speedup").set(speedup_rule);
  bench::export_bench_json("hotpath", out);

  const char* relax = std::getenv("DUET_HOTPATH_RELAX");
  const bool strict = relax == nullptr || relax[0] == '\0' || relax[0] == '0';
  bool failed = false;

  if (speedup_pin < 2.0) {
    std::printf("\n%s: pin-hit speedup %.2fx < 2.0x over the legacy path\n",
                strict ? "FAIL" : "WARNING", speedup_pin);
    failed = failed || strict;
  } else {
    std::printf("\nOK: pin-hit %.1f ns/pkt, %.2fx over legacy (%.1f ns/pkt)\n", pin_hit.ns,
                speedup_pin, legacy_pin.ns);
  }

  if (speedup_fast < 2.0) {
    std::printf("%s: fast-tier speedup %.2fx < 2.0x over the stateless lookup\n",
                strict ? "FAIL" : "WARNING", speedup_fast);
    failed = failed || strict;
  } else {
    std::printf("OK: fast-tier hit %.1f ns/pkt, %.2fx over stateless lookup (%.1f ns/pkt)\n",
                fast_hit.ns, speedup_fast, stateless_lookup.ns);
  }

  if (const char* base = std::getenv("DUET_HOTPATH_BASELINE");
      base != nullptr && base[0] != '\0') {
    const double base_ns = read_baseline_pin_hit_ns(base);
    if (base_ns <= 0.0) {
      std::printf("WARNING: baseline %s unreadable, regression gate skipped\n", base);
    } else if (pin_hit.ns > base_ns * 1.2) {
      std::printf("%s: pin-hit %.1f ns/pkt regressed > 20%% vs baseline %.1f ns/pkt\n",
                  strict ? "FAIL" : "WARNING", pin_hit.ns, base_ns);
      failed = failed || strict;
    } else {
      std::printf("OK: pin-hit %.1f ns/pkt within 20%% of baseline %.1f ns/pkt\n", pin_hit.ns,
                  base_ns);
    }
  }

  // The no-syscall sanity line: a single syscall is O(100 ns), so a pin-hit
  // decision under that bound cannot be making one per packet.
  if (pin_hit.ns >= 100.0) {
    std::printf("WARNING: pin-hit %.1f ns/pkt >= 100 ns — per-packet budget blown?\n",
                pin_hit.ns);
  }
  return failed ? 1 : 0;
}
