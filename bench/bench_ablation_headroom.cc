// Ablation — the 20 % bandwidth reservation (§4).
//
// "To absorb the potential transient congestion during VIP migration and
// network failures, we set the capacity of a link to be 80% of its
// bandwidth." This bench sweeps that knob: pack the same workload with
// headroom ∈ {1.0 … 0.6}, then throw the §8.2 failure scenarios at each
// assignment and count links pushed past 100 % of RAW capacity (where real
// traffic would be dropped).
//
// Expected shape: in a k-Agg container, losing one Agg multiplies the
// surviving uplinks' load by k/(k-1) — 4/3 here — so worst-fail utilization
// is exactly headroom x 1.33. Absorbing a worst-case adjacent-Agg loss
// needs headroom <= 0.75; the paper's 0.8 covers the <=16% increases they
// measured (the max-utilization link is rarely adjacent to the failed
// switch) while costing only ~3% of HMux coverage relative to headroom 1.0.
// Below 0.7 coverage decays with no failure benefit: the trade-off curve
// the 80% choice sits on.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "sim/flowsim.h"

using namespace duet;

int main() {
  const auto scale = bench::dc_scale();
  bench::header("Ablation", "link-bandwidth headroom sweep (the §4 '80%' design choice)", &scale);
  bench::paper_note("20% reservation absorbs failure-driven re-routing (Fig 19 shows <=16%)");

  // The reservation only matters where links are actually contended: run at
  // ~2x the Fig 16 peak with a generous VIP budget so bandwidth — not the
  // host table — is the binding constraint.
  const auto fabric = build_fattree(scale.fabric);
  const auto trace = bench::make_trace(fabric, scale, 22.0);
  const auto demands = build_demands(fabric, trace, 0);

  std::vector<SwitchId> smux_tors;
  for (std::size_t c = 0; c < fabric.params.containers; ++c) {
    smux_tors.push_back(fabric.tors[c * fabric.params.tors_per_container]);
  }

  TablePrinter t{{"headroom", "HMux traffic %", "normal max util", "worst fail max util",
                  "overloaded links (worst fail)"}};
  Rng rng{7};
  for (const double headroom : {1.0, 0.9, 0.8, 0.7, 0.6}) {
    AssignmentOptions o = bench::make_options(scale);
    o.link_headroom = headroom;
    o.host_table_capacity = scale.host_table_capacity * 2;
    o.stop_on_first_failure = false;
    const auto a = VipAssigner{fabric, o}.assign(demands);

    // The reservation governs HMux-placed traffic; simulate exactly that
    // (the SMux leftovers are provisioned separately, Fig 16).
    std::vector<VipDemand> placed;
    for (const auto& d : demands) {
      if (a.on_hmux(d.id)) placed.push_back(d);
    }

    const auto normal = simulate_flows(fabric, placed, a, smux_tors, healthy_scenario());

    // Failure stress isolated to RE-ROUTING: fail 3 random Agg switches and
    // measure the surviving HMux traffic squeezing through the remaining
    // paths. The failed switches' own VIPs fall to the SMux pool — a
    // separately provisioned resource (Fig 16) — so they are excluded here;
    // what remains is exactly the congestion the §4 reservation must absorb.
    double worst_util = normal.max_link_utilization;
    std::size_t worst_overloaded = 0;
    Rng scenario_rng{99};  // same failure draws for every headroom setting
    for (int run = 0; run < 8; ++run) {
      FailureScenario scenario;
      scenario.name = "3-agg";
      while (scenario.failed_switches.size() < 3) {
        scenario.failed_switches.insert(
            fabric.aggs[scenario_rng.uniform(fabric.aggs.size())]);
      }
      std::vector<VipDemand> survivors;
      for (const auto& d : placed) {
        if (!scenario.failed_switches.contains(*a.switch_of(d.id))) survivors.push_back(d);
      }
      const auto r = simulate_flows(fabric, survivors, a, smux_tors, scenario);
      std::size_t overloaded = 0;
      for (LinkId l = 0; l < fabric.topo.link_count(); ++l) {
        const double cap = fabric.topo.capacity_gbps(l);
        overloaded += (r.link_load_gbps[l * 2] > cap) + (r.link_load_gbps[l * 2 + 1] > cap);
      }
      if (r.max_link_utilization > worst_util) {
        worst_util = r.max_link_utilization;
        worst_overloaded = overloaded;
      } else {
        worst_overloaded = std::max(worst_overloaded, overloaded);
      }
    }
    (void)rng;
    t.add_row({TablePrinter::fmt(headroom, "%.1f"), format_pct(a.hmux_fraction()),
               TablePrinter::fmt(normal.max_link_utilization),
               TablePrinter::fmt(worst_util),
               TablePrinter::fmt_int(static_cast<long long>(worst_overloaded))});
  }
  t.print();
  std::printf("\nlinks past 1.0 of RAW capacity drop traffic in a real deployment; the\n"
              "reservation exists to keep that count at zero through failures (§4).\n");
  return 0;
}
