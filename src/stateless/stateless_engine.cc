#include "stateless/stateless_engine.h"

#include "dataplane/resilient_hash.h"

namespace duet::stateless {

namespace {

// The same per-pool salt derivation the front-end uses for the resilient
// hash groups (Smux::set_vip / set_port_rule), recovered from the pool id so
// every replica colors identically without extra plumbing.
std::uint64_t pool_salt(std::uint64_t pool_id) {
  if ((pool_id & kVipWidePoolBit) != 0) {
    return vip_group_salt(static_cast<std::uint32_t>(pool_id & 0xffffffffULL));
  }
  const auto vip = static_cast<std::uint32_t>(pool_id >> 16);
  const auto port = static_cast<std::uint16_t>(pool_id & 0xffff);
  return vip_group_salt(vip) ^ (std::uint64_t{port} * 0x100000001ULL);
}

}  // namespace

void StatelessEngine::pool_updated(std::uint64_t pool_id, const VipPool& pool,
                                   double now_us) {
  auto [slot, inserted] = pools_.try_emplace(pool_id);
  if (inserted || *slot == nullptr) {
    *slot = std::make_unique<VersionedPoolMap>(pool_salt(pool_id), knobs_);
  }
  (*slot)->rebuild(pool, now_us);
}

void StatelessEngine::pool_removed(std::uint64_t pool_id, Ipv4Address, double) {
  pools_.erase(pool_id);
}

void StatelessEngine::dip_removed(std::uint64_t pool_id, const VipPool& pool,
                                  Ipv4Address dip, double now_us) {
  auto* map = pools_.find(pool_id);
  if (map == nullptr) return;
  (*map)->rebuild(pool, now_us, dip);
}

std::size_t StatelessEngine::decision_state_bytes() const noexcept {
  std::size_t bytes = pools_.capacity() * sizeof(decltype(pools_)::Slot);
  pools_.for_each([&](std::uint64_t, const std::unique_ptr<VersionedPoolMap>& map) {
    bytes += map->state_bytes();
  });
  return bytes;
}

VersionedPoolMap::Stats StatelessEngine::aggregate_stats() const {
  VersionedPoolMap::Stats total;
  pools_.for_each([&](std::uint64_t, const std::unique_ptr<VersionedPoolMap>& map) {
    const auto& s = map->stats();
    total.lookups += s.lookups;
    total.held_lookups += s.held_lookups;
    total.adoptions += s.adoptions;
    total.builds += s.builds;
    total.noop_builds += s.noop_builds;
    total.retired_versions += s.retired_versions;
    total.forced_adoptions += s.forced_adoptions;
    total.dead_owner_flips += s.dead_owner_flips;
    total.bucket_regrows += s.bucket_regrows;
  });
  return total;
}

void StatelessEngine::bind_telemetry(telemetry::MetricRegistry& registry,
                                     const std::string& prefix) {
  tm_lookups_ = &registry.counter(prefix + "lookups");
  tm_held_ = &registry.counter(prefix + "held_lookups");
  tm_adoptions_ = &registry.counter(prefix + "adoptions");
  tm_builds_ = &registry.counter(prefix + "version_builds");
  tm_noop_builds_ = &registry.counter(prefix + "noop_builds");
  tm_retired_ = &registry.counter(prefix + "retired_versions");
  tm_forced_ = &registry.counter(prefix + "forced_adoptions");
  tm_dead_flips_ = &registry.counter(prefix + "dead_owner_flips");
  tm_regrows_ = &registry.counter(prefix + "bucket_regrows");
  tm_state_bytes_ = &registry.gauge(prefix + "state_bytes");
  tm_versions_ = &registry.gauge(prefix + "versions_retained");
  tm_pools_ = &registry.gauge(prefix + "pools");
  flushed_ = {};
  flush_telemetry();
}

void StatelessEngine::flush_telemetry() {
  if (tm_lookups_ == nullptr) return;
  const VersionedPoolMap::Stats now = aggregate_stats();
  const auto delta = [](std::uint64_t cur, std::uint64_t prev) {
    return cur >= prev ? cur - prev : 0;  // pools_ erase can shrink totals
  };
  tm_lookups_->inc(delta(now.lookups, flushed_.lookups));
  tm_held_->inc(delta(now.held_lookups, flushed_.held_lookups));
  tm_adoptions_->inc(delta(now.adoptions, flushed_.adoptions));
  tm_builds_->inc(delta(now.builds, flushed_.builds));
  tm_noop_builds_->inc(delta(now.noop_builds, flushed_.noop_builds));
  tm_retired_->inc(delta(now.retired_versions, flushed_.retired_versions));
  tm_forced_->inc(delta(now.forced_adoptions, flushed_.forced_adoptions));
  tm_dead_flips_->inc(delta(now.dead_owner_flips, flushed_.dead_owner_flips));
  tm_regrows_->inc(delta(now.bucket_regrows, flushed_.bucket_regrows));
  flushed_ = now;

  std::size_t versions = 0;
  pools_.for_each([&](std::uint64_t, const std::unique_ptr<VersionedPoolMap>& map) {
    versions += map->version_count();
  });
  tm_state_bytes_->set(static_cast<double>(decision_state_bytes()));
  tm_versions_->set(static_cast<double>(versions));
  tm_pools_->set(static_cast<double>(pools_.size()));
}

}  // namespace duet::stateless
