#include "stateless/flood_scenario.h"

#include <algorithm>

#include "duet/smux.h"
#include "exec/sweep.h"
#include "net/hash.h"
#include "stateless/stateless_engine.h"
#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/mix.h"
#include "util/random.h"

namespace duet::stateless {

namespace {

constexpr Ipv4Address kVip{100, 0, 0, 1};

struct ChurnOp {
  enum Kind : std::uint8_t { kAdd, kRemove, kWeights };
  Kind kind = kAdd;
  Ipv4Address dip;                     // kAdd / kRemove
  std::vector<Ipv4Address> dips;       // kWeights: live DIP list at that point
  std::vector<std::uint32_t> weights;  // kWeights
};

// The seeded scenario script. Built ONCE and replayed through both engines,
// so their reports differ only by engine behavior.
struct Plan {
  std::vector<Ipv4Address> initial_dips;
  std::vector<FiveTuple> established;
  std::vector<std::vector<FiveTuple>> flood_rounds;
  std::vector<ChurnOp> churn;  // one op per round
};

Ipv4Address established_src(std::size_t i) {
  return Ipv4Address{10, static_cast<std::uint8_t>(1 + ((i >> 16) & 63)),
                     static_cast<std::uint8_t>((i >> 8) & 255),
                     static_cast<std::uint8_t>(i & 255)};
}

Ipv4Address flood_src(std::size_t j) {
  return Ipv4Address{172, static_cast<std::uint8_t>(16 + ((j >> 16) & 63)),
                     static_cast<std::uint8_t>((j >> 8) & 255),
                     static_cast<std::uint8_t>(j & 255)};
}

Plan build_plan(const FloodParams& p, std::uint64_t seed) {
  DUET_CHECK(p.rounds > 0 && p.initial_dips >= 2) << "flood plan needs rounds and >=2 DIPs";
  Rng rng(seed);
  Plan plan;

  for (std::size_t d = 0; d < p.initial_dips; ++d) {
    plan.initial_dips.push_back(Ipv4Address{10, 200, static_cast<std::uint8_t>((d >> 8) & 255),
                                            static_cast<std::uint8_t>(d & 255)});
  }

  plan.established.reserve(p.established_flows);
  for (std::size_t i = 0; i < p.established_flows; ++i) {
    // src encodes i, so tuples are distinct regardless of the random port.
    plan.established.push_back(FiveTuple{
        established_src(i), kVip, static_cast<std::uint16_t>(1024 + rng.uniform(60000)), 80,
        IpProto::kTcp});
  }

  plan.flood_rounds.resize(p.rounds);
  std::size_t j = 0;
  for (std::size_t r = 0; r < p.rounds; ++r) {
    const std::size_t quota =
        r + 1 == p.rounds ? p.flood_tuples - j : p.flood_tuples / p.rounds;
    auto& round = plan.flood_rounds[r];
    round.reserve(quota);
    for (std::size_t q = 0; q < quota; ++q, ++j) {
      round.push_back(FiveTuple{flood_src(j), kVip,
                                static_cast<std::uint16_t>(1024 + rng.uniform(60000)), 80,
                                IpProto::kTcp});
    }
  }

  // Churn script, tracking the live DIP set as it evolves.
  std::vector<Ipv4Address> live = plan.initial_dips;
  std::size_t next_added = 0;
  for (std::size_t r = 0; r < p.rounds; ++r) {
    ChurnOp op;
    std::uint64_t kind = rng.uniform(3);
    if (kind == 1 && live.size() <= 2) kind = 0;  // never remove below 2 DIPs
    if (kind == 0) {
      op.kind = ChurnOp::kAdd;
      op.dip = Ipv4Address{10, 201, static_cast<std::uint8_t>((next_added >> 8) & 255),
                           static_cast<std::uint8_t>(next_added & 255)};
      ++next_added;
      live.push_back(op.dip);
    } else if (kind == 1) {
      op.kind = ChurnOp::kRemove;
      const std::size_t victim = static_cast<std::size_t>(rng.uniform(live.size()));
      op.dip = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      op.kind = ChurnOp::kWeights;
      op.dips = live;
      op.weights.reserve(live.size());
      for (std::size_t d = 0; d < live.size(); ++d) {
        op.weights.push_back(static_cast<std::uint32_t>(1 + rng.uniform(4)));
      }
    }
    plan.churn.push_back(std::move(op));
  }
  return plan;
}

EngineFloodReport run_engine(const Plan& plan, const FloodParams& p, DuetConfig cfg,
                             SmuxEngine engine) {
  cfg.smux_engine = engine;
  cfg.smux_flow_table_max = p.flow_table_cap;
  cfg.smux_flow_idle_us = p.flow_idle_us;

  telemetry::MetricRegistry registry;
  Smux smux(0, FlowHasher{}, cfg);
  smux.bind_telemetry(registry, "flood.");
  smux.set_vip(kVip, plan.initial_dips);

  const std::size_t e = plan.established.size();
  std::vector<Ipv4Address> expected(e);
  std::vector<char> seen(e, 0);
  std::vector<Ipv4Address> live = plan.initial_dips;

  EngineFloodReport rep;
  double now_us = 0.0;
  std::vector<Packet> batch;
  std::vector<std::int64_t> flow_of;  // established index per packet, -1 = flood
  std::vector<Ipv4Address> out(p.batch);
  batch.reserve(p.batch);
  flow_of.reserve(p.batch);

  const auto is_live = [&](Ipv4Address d) {
    return std::find(live.begin(), live.end(), d) != live.end();
  };

  const auto flush = [&] {
    if (batch.empty()) return;
    smux.process_batch({batch.data(), batch.size()}, {out.data(), batch.size()}, now_us);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      // Order-sensitive chain: the bit-for-bit fingerprint of every decision.
      rep.fingerprint = mix64(rep.fingerprint ^ (static_cast<std::uint64_t>(out[k].value()) +
                                                 0x9e3779b97f4a7c15ULL));
      const std::int64_t fi = flow_of[k];
      if (fi >= 0) {
        const auto i = static_cast<std::size_t>(fi);
        if (seen[i] != 0 && out[k] != expected[i]) {
          // Moving off a removed DIP is §5.1 termination, not a PCC break.
          if (is_live(expected[i])) {
            ++rep.pcc_violations;
          } else {
            ++rep.legal_remaps;
          }
        }
        expected[i] = out[k];
        seen[i] = 1;
      }
    }
    rep.packets += batch.size();
    now_us += static_cast<double>(batch.size());  // 1 µs per packet
    rep.flow_entries_peak =
        std::max<std::uint64_t>(rep.flow_entries_peak, smux.flow_table_size());
    batch.clear();
    flow_of.clear();
  };
  const auto push = [&](const FiveTuple& t, std::int64_t fi) {
    batch.emplace_back(t, 64);
    flow_of.push_back(fi);
    if (batch.size() == p.batch) flush();
  };

  // Establish the legit connections.
  for (std::size_t i = 0; i < e; ++i) push(plan.established[i], static_cast<std::int64_t>(i));
  flush();

  for (std::size_t r = 0; r < plan.flood_rounds.size(); ++r) {
    // The flood burst, then the established keepalives (they survive or not
    // depending on what the flood did to the engine's state).
    for (const FiveTuple& t : plan.flood_rounds[r]) push(t, -1);
    for (std::size_t i = 0; i < e; ++i) push(plan.established[i], static_cast<std::int64_t>(i));
    flush();

    const ChurnOp& op = plan.churn[r];
    switch (op.kind) {
      case ChurnOp::kAdd:
        smux.add_dip(kVip, op.dip);
        live.push_back(op.dip);
        break;
      case ChurnOp::kRemove:
        smux.remove_dip(kVip, op.dip);
        live.erase(std::find(live.begin(), live.end(), op.dip));
        break;
      case ChurnOp::kWeights:
        smux.set_vip(kVip, op.dips, op.weights);
        break;
    }
  }

  // Final keepalive pass: every surviving flow must still get expected[i].
  for (std::size_t i = 0; i < e; ++i) push(plan.established[i], static_cast<std::int64_t>(i));
  flush();

  rep.evictions = registry.counter("flood.flow_evictions").value();
  rep.flow_entries_end = smux.flow_table_size();
  rep.decision_state_bytes = smux.decision_state_bytes();
  return rep;
}

}  // namespace

FloodReport run_flood_scenario(const FloodParams& params, const DuetConfig& base_config,
                               std::uint64_t seed) {
  const Plan plan = build_plan(params, seed);
  FloodReport report;
  report.stateful = run_engine(plan, params, base_config, SmuxEngine::kStateful);
  report.stateless = run_engine(plan, params, base_config, SmuxEngine::kStateless);
  return report;
}

std::vector<FloodReport> sweep_flood(const FloodParams& params, const DuetConfig& base_config,
                                     std::size_t shards, std::uint64_t seed,
                                     exec::ThreadPool* pool) {
  exec::SweepOptions options;
  options.pool = pool;
  options.seed = seed;
  auto result = exec::sweep(shards, options, [&](exec::ShardContext& ctx) {
    return run_flood_scenario(params, base_config, ctx.seed);
  });
  return std::move(result.results);
}

}  // namespace duet::stateless
