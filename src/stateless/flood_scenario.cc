// The SYN-flood twin-drive, re-based onto the chaos harness (src/chaos): the
// scenario is now a ChaosPlan composing the shared syn_flood and
// random_churn injectors, replayed by the chaos runner. The public API and
// the qualitative contract (stateless immune, stateful exhausted, identical
// packets, width-deterministic sweeps) are unchanged; what used to be a
// bespoke loop here is the general machinery every chaos scenario uses.
#include "stateless/flood_scenario.h"

#include "chaos/plan.h"
#include "chaos/runner.h"
#include "exec/sweep.h"
#include "util/logging.h"
#include "util/mix.h"

namespace duet::stateless {

namespace {

chaos::ChaosPlan flood_plan(const FloodParams& p, std::uint64_t seed) {
  DUET_CHECK(p.rounds > 0 && p.initial_dips >= 2) << "flood plan needs rounds and >=2 DIPs";
  chaos::ChaosEnv env;
  env.ticks = p.rounds + 1;  // R flood/churn rounds + the final keepalive pass
  env.established_flows = p.established_flows;
  env.initial_dips = p.initial_dips;
  env.flow_table_cap = p.flow_table_cap;
  env.flow_idle_us = p.flow_idle_us;
  env.batch = p.batch;
  env.traffic_seed = seed;
  // base_config supplies the stateless knobs untouched (historical flood
  // semantics), so no version-retention override here.
  env.unbounded_versions = false;

  chaos::SynFloodParams flood;
  flood.tuples_total = p.flood_tuples;
  flood.begin_tick = 0;
  flood.end_tick = p.rounds;
  chaos::RandomChurnParams churn;
  churn.start_tick = 1;
  churn.end_tick = p.rounds + 1;
  return chaos::compose_plan(
      "flood", env,
      {chaos::syn_flood(flood, env, seed),
       chaos::random_churn(churn, env, mix64(seed ^ 0x9e3779b97f4a7c15ULL))});
}

EngineFloodReport from_chaos(const chaos::EngineChaosReport& r) {
  EngineFloodReport out;
  out.pcc_violations = r.pcc_violations;
  out.legal_remaps = r.legal_remaps;
  out.evictions = r.evictions;
  out.flow_entries_peak = r.flow_entries_peak;
  out.flow_entries_end = r.flow_entries_end;
  out.decision_state_bytes = r.decision_state_bytes;
  out.packets = r.packets;
  out.fingerprint = r.fingerprint;
  return out;
}

}  // namespace

FloodReport run_flood_scenario(const FloodParams& params, const DuetConfig& base_config,
                               std::uint64_t seed) {
  const chaos::ChaosPlan plan = flood_plan(params, seed);
  const chaos::ChaosReport r = chaos::run_chaos(plan, base_config);
  FloodReport report;
  report.stateful = from_chaos(r.stateful);
  report.stateless = from_chaos(r.stateless);
  return report;
}

std::vector<FloodReport> sweep_flood(const FloodParams& params, const DuetConfig& base_config,
                                     std::size_t shards, std::uint64_t seed,
                                     exec::ThreadPool* pool) {
  exec::SweepOptions options;
  options.pool = pool;
  options.seed = seed;
  auto result = exec::sweep(shards, options, [&](exec::ShardContext& ctx) {
    return run_flood_scenario(params, base_config, ctx.seed);
  });
  return std::move(result.results);
}

}  // namespace duet::stateless
