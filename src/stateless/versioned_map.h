// VersionedPoolMap: the stateless engine's per-pool decision structure —
// a versioned, Othello/MPH-style bucket coloring from connection hash to
// DIP, with per-bucket epoch stamps instead of per-flow entries (Concury,
// arXiv:1908.01889; the stateful/stateless trade-off of arXiv:2010.13385).
//
// Structure (DESIGN.md §13):
//   * A power-of-two array of B buckets, B = O(distinct DIPs) chosen at pool
//     creation with headroom (regrown only by PCC-preserving bucket
//     splitting when the DIP count outgrows it 2x — the low bits of a new
//     bucket index name the old bucket it split from, so every carried-over
//     stamp, timestamp, and retained coloring refines in place). A flow's
//     bucket is a pure function of its 5-tuple hash and the pool salt — no
//     per-flow entry is ever written.
//   * A MAP VERSION is an immutable bucket -> DIP coloring built off-path by
//     weighted rendezvous hashing over (DIP, replica) keys: removing a DIP
//     recolors only its own buckets, adding a DIP (or weight) steals only
//     the new replicas' share — the minimal-disruption property resilient
//     hashing gives the switch, reproduced without mutable bucket state.
//   * DIP updates BUILD A NEW VERSION; old versions are retained for
//     in-flight connections. Each bucket carries a compact epoch stamp
//     naming the version its established flows still decide through, plus a
//     last-packet timestamp. A recolored bucket adopts the newest version
//     only after stateless_drain_idle_us of silence: an idle bucket holds no
//     live flows, so the flip breaks no connection (PCC) — the bucket-
//     granular analogue of flow-table idle eviction. New flows land on the
//     newest version everywhere except inside a still-draining bucket.
//   * A version is retired only when no bucket stamp references it (the
//     retirement invariant tests/stateless_test.cc proves), except past the
//     stateless_max_versions cap, where the oldest pinned version is
//     force-retired and its buckets counted in forced_adoptions.
//
// Memory is O(B) = O(DIPs x headroom), flat in concurrent flows — there is
// nothing per-flow for a SYN flood to exhaust (bench_stateless plots this
// against the stateful flow table).
//
// Not thread-safe: one map belongs to one engine, one SMux replica, one
// worker — the same model as the flow table. lookup() is the only hot-path
// entry; everything else is control path.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "duet/decision_engine.h"
#include "net/ip.h"
#include "util/hot.h"
#include "util/mix.h"

namespace duet::stateless {

// One immutable bucket -> DIP coloring. Shared-ptr ownership: the ASan
// lifetime test holds a version alive through its own reference and reads
// its data through a raw pointer while any bucket still stamps it.
struct MapVersion {
  std::uint32_t epoch = 0;
  std::vector<Ipv4Address> owner;  // bucket -> DIP
};

struct StatelessKnobs {
  double drain_idle_us = 120e6;
  std::size_t buckets_per_dip = 32;
  std::size_t min_buckets = 256;
  std::size_t max_versions = 16;  // 0 = unbounded
};

class VersionedPoolMap {
 public:
  VersionedPoolMap() = default;
  VersionedPoolMap(std::uint64_t salt, const StatelessKnobs& knobs)
      : salt_(salt), knobs_(knobs) {}

  // Off-path (re)build from the pool's current slot layout. Installs a new
  // version only when the coloring actually changed (controller re-syncs are
  // no-ops). `removed_dip` (non-zero) marks an in-place DIP removal: buckets
  // whose STAMPED version still points at it flip to the newest version
  // immediately — those connections terminate anyway (§5.1). Returns true
  // when a new version was installed.
  bool rebuild(const VipPool& pool, double now_us, Ipv4Address removed_dip = {});

  // The hot path: decide the DIP for a flow hash (FlowHasher over the
  // 5-tuple). Reads the bucket's stamped version, lazily adopting the
  // newest one when the bucket has drained. Precondition: rebuilt at least
  // once (the engine builds on pool_updated before any packet). Purity root
  // (DESIGN.md §14): pure array reads — no allocation, ever.
  DUET_HOT Ipv4Address lookup(std::uint64_t flow_hash, double now_us) {
    const std::size_t b = static_cast<std::size_t>(mix64(flow_hash ^ salt_)) & mask_;
    const MapVersion& newest = *versions_.back();
    std::uint32_t e = stamp_[b];
    if (e != newest.epoch) {
      if (now_us - last_seen_us_[b] >= knobs_.drain_idle_us) {
        stamp_[b] = newest.epoch;  // bucket drained: no live flows to break
        e = newest.epoch;
        ++stats_.adoptions;
      } else {
        ++stats_.held_lookups;  // established flows keep their old version
      }
    }
    last_seen_us_[b] = now_us;
    ++stats_.lookups;
    return (e == newest.epoch ? newest : *version(e)).owner[b];
  }

  // --- introspection ---------------------------------------------------------
  bool built() const noexcept { return !versions_.empty(); }
  std::size_t bucket_count() const noexcept { return stamp_.size(); }
  std::uint32_t newest_epoch() const noexcept { return versions_.back()->epoch; }
  std::size_t version_count() const noexcept { return versions_.size(); }

  // The retained version carrying `epoch`, nullptr when retired. Valid until
  // the next rebuild retires it (the retirement invariant: never while any
  // bucket stamp references it, absent a max_versions force-retire).
  const MapVersion* version(std::uint32_t epoch) const noexcept {
    // Newest-first: the hot path only ever misses on a draining bucket.
    for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
      if ((*it)->epoch == epoch) return it->get();
    }
    return nullptr;
  }

  // Distinct epochs referenced by bucket stamps, ascending.
  std::vector<std::uint32_t> referenced_epochs() const;

  // True when every bucket stamp references the newest version — the state
  // in which lookup() degenerates to the pure expression
  // `newest.owner[mix64(hash ^ salt) & mask]` (no adoption, no held
  // version). The fast tier's admission predicate (duet/fast_tier.h).
  bool settled() const noexcept {
    if (versions_.empty()) return false;
    const std::uint32_t newest = versions_.back()->epoch;
    for (const std::uint32_t e : stamp_) {
      if (e != newest) return false;
    }
    return true;
  }

  // Control-path drain sweep: flips every bucket whose drain window already
  // expired to the newest version — exactly the adoption lookup() would
  // perform lazily, done eagerly so an idle pool settles without a packet
  // per bucket. Returns the buckets flipped (counted as adoptions).
  std::size_t adopt_drained(double now_us);

  // Refreshes every bucket's last-seen to `now_us`, postponing drain by a
  // full idle window. The fast tier calls this on pools it had admitted:
  // traffic it absorbed never stamped the map, so after churn every bucket
  // must be presumed recently active (PCC-conservative).
  void mark_all_seen(double now_us) noexcept {
    for (double& t : last_seen_us_) t = now_us;
  }

  std::uint64_t salt() const noexcept { return salt_; }
  std::size_t bucket_mask() const noexcept { return mask_; }

  std::size_t bucket_of(std::uint64_t flow_hash) const noexcept {
    return static_cast<std::size_t>(mix64(flow_hash ^ salt_)) & mask_;
  }
  std::uint32_t stamp(std::size_t bucket) const noexcept { return stamp_[bucket]; }

  // Resident decision-state bytes: retained versions + stamps + timestamps.
  std::size_t state_bytes() const noexcept {
    return versions_.size() * bucket_count() * sizeof(Ipv4Address) +
           stamp_.size() * sizeof(std::uint32_t) +
           last_seen_us_.size() * sizeof(double) + sizeof(*this);
  }

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t held_lookups = 0;      // served by a pinned (non-newest) version
    std::uint64_t adoptions = 0;         // drained buckets advanced to newest
    std::uint64_t builds = 0;            // versions installed
    std::uint64_t noop_builds = 0;       // rebuilds with an unchanged coloring
    std::uint64_t retired_versions = 0;  // versions freed (no stamp referenced them)
    std::uint64_t forced_adoptions = 0;  // buckets flipped by the max_versions cap
    std::uint64_t dead_owner_flips = 0;  // buckets flipped off a removed DIP
    std::uint64_t bucket_regrows = 0;    // array regrown (PCC-preserving split)
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  // Chooses the bucket array size for the given live replica count.
  std::size_t target_buckets(std::size_t live_replicas) const noexcept;
  // The weighted-rendezvous coloring for the pool's live slots.
  std::vector<Ipv4Address> color(const VipPool& pool, std::size_t buckets) const;
  void retire_unreferenced();

  std::uint64_t salt_ = 0;
  StatelessKnobs knobs_;
  std::size_t mask_ = 0;
  std::uint32_t next_epoch_ = 0;
  // Retained versions, ascending epoch; back() is the newest (live) one.
  std::vector<std::shared_ptr<const MapVersion>> versions_;
  std::vector<std::uint32_t> stamp_;     // bucket -> epoch serving its flows
  std::vector<double> last_seen_us_;     // bucket -> last packet time
  Stats stats_;
};

}  // namespace duet::stateless
