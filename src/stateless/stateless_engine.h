// StatelessEngine: O(1)-in-flows DIP decisions (Concury, arXiv:1908.01889).
//
// One VersionedPoolMap per pool (VIP-wide or port-rule), keyed by the same
// pool ids the Smux front-end resolves. Per packet: FlowHasher over the
// 5-tuple (the §3.3.1 shared hash) -> the pool map's bucket -> the bucket's
// stamped map version -> DIP. No flow table, no pins, no eviction: the
// engine's memory is a pure function of the DIP sets, so a SYN flood finds
// nothing to exhaust and established flows nothing to lose (DESIGN.md §13).
//
// PCC across DIP churn comes from the map's drain-stamped versioning (see
// versioned_map.h); this class is the pool directory plus telemetry.
//
// Telemetry is accumulated in plain locals inside the maps and flushed once
// per batch by the Smux front-end (flush_telemetry), mirroring the batched
// counter discipline of DESIGN.md §12. Counters: stateless.lookups,
// stateless.held_lookups, stateless.adoptions, stateless.version_builds,
// stateless.noop_builds, stateless.retired_versions,
// stateless.forced_adoptions, stateless.dead_owner_flips,
// stateless.bucket_regrows. Gauges: stateless.state_bytes,
// stateless.versions_retained, stateless.pools.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "duet/config.h"
#include "duet/decision_engine.h"
#include "net/hash.h"
#include "stateless/versioned_map.h"
#include "telemetry/metrics.h"
#include "util/flat_table.h"
#include "util/hot.h"
#include "util/mix.h"

namespace duet::stateless {

class StatelessEngine final : public DecisionEngine {
 public:
  StatelessEngine(FlowHasher hasher, const DuetConfig& config)
      : hasher_(hasher),
        knobs_{config.stateless_drain_idle_us, config.stateless_buckets_per_dip,
               config.stateless_min_buckets, config.stateless_max_versions} {}

  const char* name() const noexcept override { return "stateless"; }

  // --- DecisionEngine ---------------------------------------------------------
  void pool_updated(std::uint64_t pool_id, const VipPool& pool, double now_us) override;
  void pool_removed(std::uint64_t pool_id, Ipv4Address vip, double now_us) override;
  void dip_removed(std::uint64_t pool_id, const VipPool& pool, Ipv4Address dip,
                   double now_us) override;

  // Purity root (DESIGN.md §14): the whole stateless lookup path — directory
  // find, bucket hash, stamped-version read — must stay allocation-free.
  DUET_HOT bool decide(std::uint64_t pool_id, const VipPool&, const FiveTuple& tuple,
                       double now_us, Ipv4Address* chosen, bool* pinned) override {
    *pinned = false;  // never any per-flow state
    auto* map = pools_.find(pool_id);
    if (map == nullptr || !(*map)->built()) return false;
    *chosen = (*map)->lookup(hasher_.hash(tuple), now_us);
    return true;
  }

  std::size_t flow_entries() const noexcept override { return 0; }
  std::size_t decision_state_bytes() const noexcept override;

  // --- introspection / tests ---------------------------------------------------
  std::size_t pool_count() const noexcept { return pools_.size(); }
  // The pool's map, nullptr when the pool is unknown. Test/bench access.
  const VersionedPoolMap* pool_map(std::uint64_t pool_id) const {
    const auto* map = pools_.find(pool_id);
    return map == nullptr ? nullptr : map->get();
  }
  VersionedPoolMap* mutable_pool_map(std::uint64_t pool_id) {
    auto* map = pools_.find(pool_id);
    return map == nullptr ? nullptr : map->get();
  }

  // Aggregated per-map stats (control path; walks every pool).
  VersionedPoolMap::Stats aggregate_stats() const;

  // --- telemetry ---------------------------------------------------------------
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);
  // Pushes counter deltas + gauges; called once per batch by the front-end.
  void flush_telemetry();

 private:
  FlowHasher hasher_;
  StatelessKnobs knobs_;
  // unique_ptr values keep map addresses stable across directory rehashes
  // (lookup() mutates the map; FlatTable moves values on growth).
  util::FlatTable<std::uint64_t, std::unique_ptr<VersionedPoolMap>, Mix64Hash> pools_;

  telemetry::Counter* tm_lookups_ = nullptr;
  telemetry::Counter* tm_held_ = nullptr;
  telemetry::Counter* tm_adoptions_ = nullptr;
  telemetry::Counter* tm_builds_ = nullptr;
  telemetry::Counter* tm_noop_builds_ = nullptr;
  telemetry::Counter* tm_retired_ = nullptr;
  telemetry::Counter* tm_forced_ = nullptr;
  telemetry::Counter* tm_dead_flips_ = nullptr;
  telemetry::Counter* tm_regrows_ = nullptr;
  telemetry::Gauge* tm_state_bytes_ = nullptr;
  telemetry::Gauge* tm_versions_ = nullptr;
  telemetry::Gauge* tm_pools_ = nullptr;
  VersionedPoolMap::Stats flushed_;  // last flushed totals (delta base)
};

}  // namespace duet::stateless
