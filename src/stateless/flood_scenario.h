// Deterministic SYN-flood micro-scenario: the head-to-head experiment behind
// DESIGN.md §13's engine trade-off (and bench_stateless's flood gates).
//
// One scenario = one VIP, E established flows, then R rounds of
//   * a burst of DISTINCT spoofed tuples (the flood — every packet is a
//     first packet, the worst case for per-flow state),
//   * keepalives for every established flow (they are live connections and
//     must keep their DIPs — the PCC clock the scenario checks against),
//   * one DIP churn op (add / in-place remove / WCMP weight change) pulled
//     from the scenario's seeded plan.
// The same PLAN (tuples, churn sequence) drives BOTH engines, so the two
// EngineFloodReports are directly comparable:
//   * stateful: every spoofed tuple pins a FlowPin; the table blows past
//     smux_flow_table_max, cap shedding evicts the coldest pins —
//     established flows among them — and churn makes the re-pin land on a
//     different DIP: evictions > 0, pcc_violations > 0.
//   * stateless: nothing is written per flow; the flood merely keeps buckets
//     warm (which HELPS retention). Gate: pcc_violations == 0 AND
//     evictions == 0 AND flow_entries_peak == 0.
// A flow whose own DIP was removed necessarily terminates (§5.1); its remap
// is legal and NOT counted as a violation.
//
// Everything is a pure function of (params, config, seed). Since the chaos
// harness landed this is a thin adapter: the scenario is a ChaosPlan
// composing the shared syn_flood + random_churn injectors (src/chaos),
// replayed by the chaos runner on its 1 µs-per-packet clock. sweep_flood
// runs independent scenario shards on the deterministic sweep engine
// (exec/sweep.h) — results are bit-for-bit identical at any thread count,
// which the width-determinism test pins.
#pragma once

#include <cstdint>
#include <vector>

#include "duet/config.h"
#include "exec/thread_pool.h"
#include "net/ip.h"

namespace duet::stateless {

struct FloodParams {
  std::size_t established_flows = 512;  // legit long-lived connections
  std::size_t flood_tuples = 8192;      // distinct spoofed tuples, total
  std::size_t rounds = 8;               // flood/keepalive/churn rounds
  std::size_t initial_dips = 8;
  std::size_t flow_table_cap = 1024;    // smux_flow_table_max for the run
  double flow_idle_us = 0.0;            // 0 = idle expiry off (cap-shed only)
  std::size_t batch = 128;              // process_batch size
};

// Per-engine outcome. `fingerprint` mixes every decision in packet order —
// the bit-for-bit handle for the width-determinism contract.
struct EngineFloodReport {
  std::uint64_t pcc_violations = 0;   // established flow moved off a LIVE DIP
  std::uint64_t legal_remaps = 0;     // moved off a REMOVED DIP (§5.1, allowed)
  std::uint64_t evictions = 0;        // flow_evictions counter at scenario end
  std::uint64_t flow_entries_peak = 0;
  std::uint64_t flow_entries_end = 0;
  std::uint64_t decision_state_bytes = 0;
  std::uint64_t packets = 0;
  std::uint64_t fingerprint = 0;

  friend bool operator==(const EngineFloodReport&, const EngineFloodReport&) = default;
};

struct FloodReport {
  EngineFloodReport stateful;
  EngineFloodReport stateless;

  friend bool operator==(const FloodReport&, const FloodReport&) = default;
};

// Runs the seeded scenario through both engines. `base_config` supplies the
// stateless knobs; the flow-table cap/idle knobs come from `params`.
FloodReport run_flood_scenario(const FloodParams& params, const DuetConfig& base_config,
                               std::uint64_t seed);

// `shards` independent scenarios (shard i seeded with
// exec::shard_seed(seed, i)) on the deterministic sweep engine. Slot i of
// the result is shard i's report at ANY pool width.
std::vector<FloodReport> sweep_flood(const FloodParams& params, const DuetConfig& base_config,
                                     std::size_t shards, std::uint64_t seed,
                                     exec::ThreadPool* pool = nullptr);

}  // namespace duet::stateless
