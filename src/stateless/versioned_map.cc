#include "stateless/versioned_map.h"

#include <algorithm>

#include "util/logging.h"

namespace duet::stateless {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Per-(DIP, replica) rendezvous key. Keyed on the DIP ADDRESS and the
// replica ordinal within that DIP — never on the global slot index — so a
// weight change on one DIP shifts no other DIP's keys and the coloring
// moves only the stolen/released share.
std::uint64_t replica_key(std::uint64_t salt, Ipv4Address dip, std::uint32_t replica) {
  return mix64(salt ^ (static_cast<std::uint64_t>(dip.value()) * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<std::uint64_t>(replica + 1) << 32));
}

}  // namespace

std::size_t VersionedPoolMap::target_buckets(std::size_t live_dips) const noexcept {
  return next_pow2(std::max(knobs_.min_buckets, knobs_.buckets_per_dip * live_dips));
}

std::vector<Ipv4Address> VersionedPoolMap::color(const VipPool& pool,
                                                 std::size_t buckets) const {
  // Live replica keys: one per alive WCMP slot, grouped per DIP in slot
  // order so replica ordinals are stable across rebuilds of the same pool.
  struct Replica {
    std::uint64_t key;
    Ipv4Address dip;
  };
  std::vector<Replica> replicas;
  replicas.reserve(pool.dips.size());
  {
    // Replica ordinal = how many alive slots of this DIP precede this one.
    // O(slots^2) worst case, but slots is tens-to-hundreds and this is the
    // off-path build.
    for (std::uint32_t s = 0; s < pool.dips.size(); ++s) {
      if (!pool.group.member_alive(s)) continue;
      std::uint32_t ordinal = 0;
      for (std::uint32_t t = 0; t < s; ++t) {
        if (pool.dips[t] == pool.dips[s] && pool.group.member_alive(t)) ++ordinal;
      }
      replicas.push_back({replica_key(salt_, pool.dips[s], ordinal), pool.dips[s]});
    }
  }
  DUET_CHECK(!replicas.empty()) << "coloring a pool with no live DIP slots";

  // Highest-random-weight choice per bucket: integer-only (bit-for-bit
  // across platforms and sweep widths), ties broken by replica order.
  std::vector<Ipv4Address> owner(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    std::uint64_t best = 0;
    Ipv4Address best_dip = replicas[0].dip;
    bool first = true;
    for (const Replica& r : replicas) {
      const std::uint64_t score = mix64(r.key ^ b);
      if (first || score > best) {
        best = score;
        best_dip = r.dip;
        first = false;
      }
    }
    owner[b] = best_dip;
  }
  return owner;
}

bool VersionedPoolMap::rebuild(const VipPool& pool, double now_us, Ipv4Address removed_dip) {
  // Bucket sizing is keyed on DISTINCT live DIPs, not WCMP-expanded slots: a
  // weight change reshuffles shares inside the same flow space, and letting
  // it inflate the target would trip the regrow path (a full stamp reset —
  // the one deliberate PCC break) on a routine weight update.
  std::vector<Ipv4Address> distinct;
  for (std::uint32_t s = 0; s < pool.dips.size(); ++s) {
    if (!pool.group.member_alive(s)) continue;
    if (std::find(distinct.begin(), distinct.end(), pool.dips[s]) == distinct.end()) {
      distinct.push_back(pool.dips[s]);
    }
  }
  const std::size_t live = distinct.size();
  DUET_CHECK(live > 0) << "stateless rebuild with no live DIP slots";

  const bool first_build = versions_.empty();
  std::size_t buckets = first_build ? target_buckets(live) : bucket_count();
  // Regrow when the pool outgrew its headroom so badly that coverage would
  // suffer; never shrink. A regrow is PCC-preserving REFINEMENT, not a
  // remap: bucket = hash & mask and both sizes are powers of two, so a new
  // bucket's low bits name the old bucket it split from — stamps, drain
  // timestamps, and every retained version's coloring carry over in place
  // and no flow's decision changes until the NEW version recolors it.
  if (!first_build && target_buckets(live) > buckets * 2) {
    buckets = target_buckets(live);
  }
  if (!first_build && buckets != bucket_count()) {
    ++stats_.bucket_regrows;
    const std::size_t old_mask = mask_;
    for (auto& v : versions_) {
      auto grown = std::make_shared<MapVersion>();
      grown->epoch = v->epoch;
      grown->owner.resize(buckets);
      for (std::size_t b = 0; b < buckets; ++b) grown->owner[b] = v->owner[b & old_mask];
      v = std::move(grown);
    }
    std::vector<std::uint32_t> stamp(buckets);
    std::vector<double> last_seen(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      stamp[b] = stamp_[b & old_mask];
      last_seen[b] = last_seen_us_[b & old_mask];
    }
    stamp_ = std::move(stamp);
    last_seen_us_ = std::move(last_seen);
    mask_ = buckets - 1;
  }

  std::vector<Ipv4Address> owner = color(pool, buckets);

  if (!first_build && owner == versions_.back()->owner) {
    // Unchanged coloring (controller re-sync): no new version. A removed
    // DIP can still be stamped into an OLDER pinned version, though — those
    // buckets must flip now (their connections are dead, §5.1).
    ++stats_.noop_builds;
    if (removed_dip != Ipv4Address{}) {
      const std::uint32_t newest = versions_.back()->epoch;
      for (std::size_t b = 0; b < stamp_.size(); ++b) {
        if (stamp_[b] == newest) continue;
        const MapVersion* v = version(stamp_[b]);
        if (v != nullptr && v->owner[b] == removed_dip) {
          stamp_[b] = newest;
          ++stats_.dead_owner_flips;
        }
      }
      retire_unreferenced();
    }
    return false;
  }

  auto next = std::make_shared<MapVersion>();
  next->epoch = next_epoch_++;
  next->owner = std::move(owner);

  if (first_build) {
    // Fresh bucket space: every bucket starts on this version.
    mask_ = buckets - 1;
    stamp_.assign(buckets, next->epoch);
    last_seen_us_.assign(buckets, -std::numeric_limits<double>::infinity());
    versions_.push_back(std::move(next));
    ++stats_.builds;
    return true;
  }

  // Advance every bucket whose effective owner is unchanged — only genuinely
  // recolored buckets stay pinned (and only until they drain). Buckets whose
  // pinned owner is the removed DIP flip immediately (dead connections).
  for (std::size_t b = 0; b < stamp_.size(); ++b) {
    const MapVersion* cur = version(stamp_[b]);
    DUET_CHECK(cur != nullptr) << "bucket stamped with a retired version";
    if (cur->owner[b] == next->owner[b]) {
      stamp_[b] = next->epoch;
    } else if (removed_dip != Ipv4Address{} && cur->owner[b] == removed_dip) {
      stamp_[b] = next->epoch;
      ++stats_.dead_owner_flips;
    }
    // else: in transition — adopts on drain (lookup) or force-retire below.
  }
  versions_.push_back(std::move(next));
  ++stats_.builds;

  retire_unreferenced();

  // Hard cap: force-retire the oldest pinned versions, flipping their
  // buckets to the newest map. Each flipped bucket is a potential PCC break
  // for flows still alive in it — counted, and zero in every shipped gate.
  if (knobs_.max_versions > 0) {
    while (versions_.size() > knobs_.max_versions) {
      const std::uint32_t doomed = versions_.front()->epoch;
      const std::uint32_t newest = versions_.back()->epoch;
      for (std::size_t b = 0; b < stamp_.size(); ++b) {
        if (stamp_[b] == doomed) {
          stamp_[b] = newest;
          ++stats_.forced_adoptions;
        }
      }
      versions_.erase(versions_.begin());
      ++stats_.retired_versions;
    }
  }
  (void)now_us;
  return true;
}

void VersionedPoolMap::retire_unreferenced() {
  // Mark epochs still referenced by any bucket stamp; the newest version is
  // always live (it serves every drained bucket and all new flows).
  std::vector<bool> referenced(versions_.size(), false);
  referenced.back() = true;
  for (const std::uint32_t e : stamp_) {
    for (std::size_t i = 0; i < versions_.size(); ++i) {
      if (versions_[i]->epoch == e) {
        referenced[i] = true;
        break;
      }
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < versions_.size(); ++i) {
    if (referenced[i]) {
      if (kept != i) versions_[kept] = std::move(versions_[i]);
      ++kept;
    } else {
      ++stats_.retired_versions;
    }
  }
  versions_.resize(kept);
}

std::size_t VersionedPoolMap::adopt_drained(double now_us) {
  if (versions_.empty()) return 0;
  const std::uint32_t newest = versions_.back()->epoch;
  std::size_t flipped = 0;
  for (std::size_t b = 0; b < stamp_.size(); ++b) {
    if (stamp_[b] == newest) continue;
    if (now_us - last_seen_us_[b] >= knobs_.drain_idle_us) {
      stamp_[b] = newest;
      ++stats_.adoptions;
      ++flipped;
    }
  }
  if (flipped > 0) retire_unreferenced();
  return flipped;
}

std::vector<std::uint32_t> VersionedPoolMap::referenced_epochs() const {
  std::vector<std::uint32_t> epochs(stamp_.begin(), stamp_.end());
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs;
}

}  // namespace duet::stateless
