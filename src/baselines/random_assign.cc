#include "baselines/random_assign.h"

#include <algorithm>

#include "topo/paths.h"
#include "util/logging.h"
#include "util/random.h"

namespace duet {

namespace {

std::uint64_t dlink(LinkId l, SwitchId from, const Topology& topo) {
  return static_cast<std::uint64_t>(l) * 2 + (topo.link_info(l).a == from ? 0 : 1);
}

}  // namespace

Assignment assign_random(const FatTree& fabric, const std::vector<VipDemand>& demands,
                         const AssignmentOptions& options) {
  const Topology& topo = fabric.topo;
  EcmpRouting routing{topo};
  Rng rng{options.seed};

  std::vector<double> link_load(topo.link_count() * 2, 0.0);
  std::vector<std::size_t> dips_used(topo.switch_count(), 0);
  std::size_t hmux_vips = 0;

  // FFD order: decreasing traffic.
  std::vector<const VipDemand*> order;
  order.reserve(demands.size());
  for (const auto& d : demands) order.push_back(&d);
  std::stable_sort(order.begin(), order.end(),
                   [](const VipDemand* a, const VipDemand* b) {
                     return a->total_gbps > b->total_gbps;
                   });

  std::vector<SwitchId> probe_order(topo.switch_count());
  for (SwitchId s = 0; s < topo.switch_count(); ++s) probe_order[s] = s;

  Assignment result;
  std::unordered_map<std::uint64_t, double> deltas;

  for (const VipDemand* dp : order) {
    const VipDemand& d = *dp;
    auto leave_on_smux = [&] {
      result.on_smux.push_back(d.id);
      result.smux_gbps += d.total_gbps;
    };
    if (hmux_vips >= options.host_table_capacity) {
      leave_on_smux();
      continue;
    }

    rng.shuffle(probe_order);
    bool placed = false;
    for (const SwitchId s : probe_order) {
      if (d.dip_count > options.switch_dip_capacity ||
          dips_used[s] + d.dip_count > options.switch_dip_capacity) {
        continue;
      }
      deltas.clear();
      const auto add = [&](LinkId l, SwitchId from, double amt) {
        deltas[dlink(l, from, topo)] += amt;
      };
      for (const auto& [ingress, gbps] : d.ingress_gbps) routing.spread(ingress, s, gbps, add);
      for (const auto& [tor, gbps] : d.dip_tor_gbps) routing.spread(s, tor, gbps, add);

      bool feasible = true;
      for (const auto& [idx, delta] : deltas) {
        const auto link = static_cast<LinkId>(idx / 2);
        const double cap = options.link_headroom * topo.capacity_gbps(link);
        if (link_load[idx] + delta > cap) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;

      for (const auto& [idx, delta] : deltas) link_load[idx] += delta;
      dips_used[s] += d.dip_count;
      ++hmux_vips;
      result.placement.emplace(d.id, s);
      result.hmux_gbps += d.total_gbps;
      placed = true;
      break;
    }
    if (!placed) leave_on_smux();
  }

  // Report final MRU for comparability with the greedy.
  double mru = 0.0;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const double cap = options.link_headroom * topo.capacity_gbps(l);
    mru = std::max({mru, link_load[l * 2] / cap, link_load[l * 2 + 1] / cap});
  }
  for (SwitchId s = 0; s < topo.switch_count(); ++s) {
    mru = std::max(mru, static_cast<double>(dips_used[s]) /
                            static_cast<double>(options.switch_dip_capacity));
  }
  result.mru = mru;
  result.link_load_gbps = std::move(link_load);
  result.switch_dips_used = std::move(dips_used);
  return result;
}

}  // namespace duet
