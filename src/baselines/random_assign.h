// Baseline VIP assignment strategies (§8.4, §8.6).
//
//   * Random — "selects the first feasible switch that does not violate the
//     link or switch memory capacity … a variant of FFD as the VIPs are
//     assigned in the sorted order of decreasing traffic volume" (§8.4).
//     Unlike Duet's greedy, it ignores how close each resource is to its
//     limit, so it strands far more traffic on the SMuxes (Fig 18).
//   * One-time — Duet's greedy run once at epoch 0 and never updated; used
//     in Fig 20a to show why migration matters.
#pragma once

#include "duet/assignment.h"

namespace duet {

// First-feasible assignment. Candidate switches are probed in a per-VIP
// pseudo-random order (seeded by options.seed) and the first one that fits
// both memory and link capacity takes the VIP.
Assignment assign_random(const FatTree& fabric, const std::vector<VipDemand>& demands,
                         const AssignmentOptions& options);

}  // namespace duet
