// FlatTable: the forwarding path's hash table.
//
// An open-addressing table tuned for the per-packet decision path of the live
// SMux (Concury/Charon-style "flat lookup, no pointer chasing"):
//   * power-of-two capacity, linear probing, max load factor 3/4 — a lookup
//     is one cached-hash compare per probed slot in ONE contiguous array, so
//     the common case costs a single cache line and zero pointer derefs
//     (std::unordered_map costs bucket array -> node -> key, 2-3 dependent
//     misses once the table outgrows cache);
//   * tombstone-free backward-shift deletion — erases compact the probe chain
//     in place, so probe lengths never degrade with churn and there is no
//     tombstone/rehash debt to pay on the data path;
//   * cached 64-bit hashes per slot (hash 0 = empty sentinel) — probes
//     compare 8 bytes before touching the key, and the home slot of any
//     entry is recomputable for backward shift without re-hashing the key;
//   * prefetch(key) — software-prefetches the key's home slot, so a batch
//     pass (Smux::process_batch) overlaps the table's cache misses across
//     the whole batch instead of paying them serially;
//   * scan_step — bounded incremental iteration (at most max_slots slots per
//     call) with inline erase, the primitive behind idle-flow eviction that
//     never does a full-table pass on the serving thread.
//
// Iteration order is slot order — a function of the hash layout and
// insertion/erase history, NOT insertion order, and it changes whenever the
// table grows. Nothing order-dependent may consume for_each/scan_step output
// without sorting or reducing it order-independently (see DESIGN.md §12).
//
// Requirements: Key and Value default-constructible and movable; Key
// equality-comparable; Hash stateless. Empty slots keep a default-constructed
// Key/Value in place (no placement-new lifetime games, so the table is
// trivially ASan/TSan-clean and copyable whenever Key/Value are).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/hot.h"
#include "util/logging.h"

namespace duet::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatTable {
 public:
  struct Slot {
    std::uint64_t hash = 0;  // 0 = empty
    Key key{};
    Value value{};
  };

  struct ScanResult {
    std::size_t scanned = 0;  // slots visited (<= the max_slots budget)
    std::size_t erased = 0;
  };

  FlatTable() = default;
  explicit FlatTable(std::size_t expected) { reserve(expected); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  bool contains(const Key& key) const { return find(key) != nullptr; }

  // find/prefetch/try_emplace are the per-packet entry points; DUET_HOT here
  // is advisory (GCC drops section attributes on template instantiations) —
  // the purity gate still covers them via call-graph closure from the
  // annotated concrete roots (engine decide paths, DESIGN.md §14).
  DUET_HOT Value* find(const Key& key) {
    return const_cast<Value*>(static_cast<const FlatTable*>(this)->find(key));
  }

  DUET_HOT const Value* find(const Key& key) const {
    if (slots_.empty()) return nullptr;
    const std::uint64_t h = hash_of(key);
    std::size_t i = h & mask_;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  // Software-prefetch the key's home slot; a batch of prefetches followed by
  // a batch of find()s overlaps the memory latency across the batch.
  DUET_HOT void prefetch(const Key& key) const {
    if (slots_.empty()) return;
    __builtin_prefetch(&slots_[hash_of(key) & mask_]);
  }

  // Find-or-default-construct; returns {value, inserted}. The returned
  // pointer is invalidated by any subsequent insert/erase/rehash.
  DUET_HOT std::pair<Value*, bool> try_emplace(const Key& key) {
    grow_if_needed();
    const std::uint64_t h = hash_of(key);
    std::size_t i = h & mask_;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
    slots_[i].hash = h;
    slots_[i].key = key;
    ++size_;
    return {&slots_[i].value, true};
  }

  // insert_or_assign.
  std::pair<Value*, bool> insert(const Key& key, Value value) {
    auto [slot, inserted] = try_emplace(key);
    *slot = std::move(value);
    return {slot, inserted};
  }

  bool erase(const Key& key) {
    if (slots_.empty()) return false;
    const std::uint64_t h = hash_of(key);
    std::size_t i = h & mask_;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && slots_[i].key == key) {
        erase_slot(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  // Pre-sizes so that `expected` entries fit without rehashing.
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < expected * 4) cap <<= 1;  // target load <= 3/4
    if (cap > slots_.size()) rehash(cap);
  }

  // Visits every entry in SLOT order (see header note on ordering). The
  // callback must not mutate the table.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.hash != 0) fn(s.key, s.value);
    }
  }

  // Erases every entry matching pred. Exact — entries present at the time of
  // the call are each tested exactly once regardless of backward shifts
  // (matches are collected first, then erased by key). Control-path helper;
  // allocates O(matches).
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::vector<Key> doomed;
    for (const Slot& s : slots_) {
      if (s.hash != 0 && pred(s.key, s.value)) doomed.push_back(s.key);
    }
    for (const Key& k : doomed) erase(k);
    return doomed.size();
  }

  // Bounded incremental sweep: visits at most max_slots slots starting at
  // *cursor (callers keep one cursor per table; it survives rehashes as a
  // plain slot index). fn(key, value&) returning true erases the entry in
  // place via backward shift; the backfilled slot is re-examined so a chain
  // of expired entries is fully reclaimed within one budget. A shift that
  // wraps the array end can move an entry behind the cursor — such an entry
  // is caught on the NEXT full cycle, which is the deal incremental eviction
  // makes: bounded per-call work, eventual completeness. Use erase_if for
  // exact one-shot semantics.
  template <typename Fn>
  ScanResult scan_step(std::size_t* cursor, std::size_t max_slots, Fn&& fn) {
    ScanResult r;
    if (slots_.empty()) {
      *cursor = 0;
      return r;
    }
    std::size_t i = *cursor & mask_;
    while (r.scanned < max_slots) {
      ++r.scanned;
      Slot& s = slots_[i];
      if (s.hash != 0 && fn(s.key, s.value)) {
        erase_slot(i);  // backfills slot i; re-examine it
        ++r.erased;
      } else {
        i = (i + 1) & mask_;
      }
    }
    *cursor = i;
    return r;
  }

  // Diagnostics: longest probe distance over all entries (0 = every entry at
  // its home slot). A weak key hash shows up here as clustering long before
  // it shows up as latency.
  std::size_t max_probe_length() const {
    std::size_t worst = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].hash == 0) continue;
      const std::size_t d = (i - (slots_[i].hash & mask_)) & mask_;
      worst = worst > d ? worst : d;
    }
    return worst;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  static std::uint64_t hash_of(const Key& key) {
    const std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    // 0 is the empty sentinel; remap it to an arbitrary nonzero constant
    // (the displaced key still compares by equality, so this only ever
    // costs a probe, never correctness).
    return h != 0 ? h : 0x9e3779b97f4a7c15ULL;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {  // load factor 3/4
      rehash(slots_.size() * 2);
    }
  }

  // The one allocation a hot insert can reach. DUET_HOT_ALLOW's section is
  // dropped on templates (see util/hot.h) but noinline still holds, which
  // keeps rehash an out-of-line call so the tools/hotcheck allow.conf
  // pattern for it has a symbol to stop traversal at.
  DUET_HOT_ALLOW("amortized growth: doubling rehash off the steady-state path; reserve() pre-sizing makes it free in the serving loop")
  void rehash(std::size_t new_capacity) {
    DUET_CHECK((new_capacity & (new_capacity - 1)) == 0) << "capacity not a power of two";
    std::vector<Slot> old = std::move(slots_);
    // resize (default-insertion), not assign (copy-fill): Value only has to
    // be default-constructible and movable, per the header contract.
    slots_.clear();
    slots_.resize(new_capacity);
    mask_ = new_capacity - 1;
    for (Slot& s : old) {
      if (s.hash == 0) continue;
      std::size_t i = s.hash & mask_;
      while (slots_[i].hash != 0) i = (i + 1) & mask_;
      slots_[i].hash = s.hash;
      slots_[i].key = std::move(s.key);
      slots_[i].value = std::move(s.value);
    }
  }

  // Backward-shift deletion at slot i: walk the cluster after the gap and
  // pull back every entry whose probe path passes through the gap, keeping
  // all probe chains gap-free without tombstones. An entry at k (home h) can
  // fill gap j iff its probe h..k crosses j, i.e. the cyclic distance h->k
  // is at least the distance j->k. Entries whose home lies strictly between
  // the gap and their slot must stay (moving them past their home would make
  // them unfindable) — but the walk continues past them: the cluster only
  // ends at an empty slot.
  void erase_slot(std::size_t i) {
    std::size_t j = i;  // the gap
    std::size_t k = i;
    for (;;) {
      k = (k + 1) & mask_;
      if (slots_[k].hash == 0) break;
      const std::size_t home = slots_[k].hash & mask_;
      if (((k - home) & mask_) >= ((k - j) & mask_)) {
        slots_[j] = std::move(slots_[k]);
        j = k;
      }
    }
    slots_[j] = Slot{};
    --size_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace duet::util
