// ASCII table printer used by the figure-reproduction benches so every
// harness emits the paper's rows in a uniform, copy-pasteable format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace duet {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Convenience: all cells are stringified with the given printf format.
  void add_row(std::vector<std::string> cells);

  // Renders to stdout (default) or the given stream.
  void print(std::FILE* out = stdout) const;

  // Renders as CSV (for EXPERIMENTS.md extraction).
  void print_csv(std::FILE* out = stdout) const;

  static std::string fmt(double v, const char* format = "%.3f");
  static std::string fmt_int(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace duet
