// Small statistics helpers: percentile/CDF summaries used by every bench.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace duet {

// Accumulates samples and answers percentile / mean queries. Samples are
// stored; suitable for the 1e5..1e7-sample scales our simulations produce.
class Summary {
 public:
  Summary() = default;

  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add_n(double x, std::size_t n) {
    samples_.insert(samples_.end(), n, x);
    sorted_ = false;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  // p in [0,100]. Nearest-rank with linear interpolation. A one-off query on
  // unsorted samples uses std::nth_element (O(n)) instead of a full sort;
  // answers are bit-identical either way.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // Appends the other summary's samples (shard combining).
  void merge(const Summary& other);

  // Evenly spaced (x, F(x)) points of the empirical CDF; `points` >= 2.
  std::vector<std::pair<double, double>> cdf(std::size_t points = 50) const;

  // Clears all samples.
  void reset() { samples_.clear(); sorted_ = false; }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fraction helpers used by figure harnesses.
std::string format_si(double value);       // 1234567 -> "1.23M"
std::string format_pct(double fraction);   // 0.1234  -> "12.3%"

}  // namespace duet
