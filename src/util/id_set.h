// IdSet: a sorted-vector set for small integer id domains (switch ids, link
// ids) — the container policy counterpart of util/flat_table.h for SET
// semantics on the control/sim paths (DESIGN.md §12: no unordered_* in
// sweep-driven state).
//
// Why not std::unordered_set:
//   * one contiguous allocation instead of a node per element, so copying a
//     FailureScenario between chaos sweep shards is a single memcpy-ish
//     vector copy (allocation-light, cache-friendly membership tests);
//   * DETERMINISTIC iteration order (ascending) — anything that walks the
//     set produces identical output across runs, platforms, and hash-seed
//     choices, which the bit-for-bit sweep contract (DESIGN.md §9) wants
//     from every data structure scenarios are built from.
//
// Membership is a binary search; inserts are O(n) worst case, which is the
// right trade for failure scenarios (built once, a handful of elements,
// queried per packet/flow).
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace duet::util {

template <typename T>
class IdSet {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;
  using value_type = T;

  IdSet() = default;
  IdSet(std::initializer_list<T> init) {
    for (const T& v : init) insert(v);
  }

  std::size_t size() const noexcept { return ids_.size(); }
  bool empty() const noexcept { return ids_.empty(); }
  void clear() noexcept { ids_.clear(); }
  void reserve(std::size_t n) { ids_.reserve(n); }

  bool contains(const T& v) const noexcept {
    return std::binary_search(ids_.begin(), ids_.end(), v);
  }

  // Returns true when inserted (false = already present).
  bool insert(const T& v) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), v);
    if (it != ids_.end() && *it == v) return false;
    ids_.insert(it, v);
    return true;
  }

  bool erase(const T& v) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), v);
    if (it == ids_.end() || *it != v) return false;
    ids_.erase(it);
    return true;
  }

  // Set union — the composition primitive behind merged failure scenarios.
  void merge(const IdSet& other) {
    for (const T& v : other.ids_) insert(v);
  }

  const_iterator begin() const noexcept { return ids_.begin(); }
  const_iterator end() const noexcept { return ids_.end(); }

  // Ascending, deterministic.
  const std::vector<T>& values() const noexcept { return ids_; }

  friend bool operator==(const IdSet&, const IdSet&) = default;

 private:
  std::vector<T> ids_;  // sorted, unique
};

}  // namespace duet::util
