// The shared 64-bit avalanche mixer.
//
// One finalizer (SplitMix64's) serves every hashing consumer in the tree:
// FlowHasher (net/hash.h) builds the cross-device DIP-selection hash from it,
// std::hash<FiveTuple> (net/packet.h) and the FlatTable key hashers use it so
// open addressing never clusters on low-entropy address/port patterns, and
// vip_group_salt keeps its own copy of the same constants. Keeping the mixer
// in one header makes "same hash function everywhere" (§3.3.1) auditable.
#pragma once

#include <cstdint>

namespace duet {

// SplitMix64 finalizer: full avalanche, ~3 multiplies. Bit-for-bit the mix
// FlowHasher has always used — changing these constants would remap every
// pinned flow in every golden trace.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Hasher for 64-bit packed keys (e.g. the SMux port-rule key, vip<<16|port).
// std::hash<uint64_t> is the identity on common stdlibs, which would send
// every rule with the same port to the SAME flat-table slot; mixing first
// restores uniform low bits for the power-of-two index.
struct Mix64Hash {
  std::size_t operator()(std::uint64_t v) const noexcept {
    return static_cast<std::size_t>(mix64(v));
  }
};

}  // namespace duet
