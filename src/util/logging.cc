#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/hot.h"

namespace duet {

namespace {
LogLevel g_level = LogLevel::kWarn;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

// Trim a __FILE__ path down to its basename for readable records.
std::string_view basename_of(std::string_view path) noexcept {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

namespace detail {

void emit(LogLevel level, std::string_view file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%.*s %.*s:%d] %s\n", static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(basename_of(file).size()),
               basename_of(file).data(), line, msg.c_str());
  if (level == LogLevel::kError) std::fflush(stderr);
}

CheckFailure::CheckFailure(std::string_view file, int line, std::string_view cond) {
  stream_ << "CHECK failed at " << basename_of(file) << ":" << line << ": " << cond << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

DUET_HOT_ALLOW("fail-fast abort sink: one predicted branch on the hot path, formats and aborts only on a broken invariant")
void hot_check_fail(const char* file, int line, const char* what) noexcept {
  std::fprintf(stderr, "HOT CHECK failed at %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace duet
