// ASCII chart rendering for the figure-reproduction benches.
//
// The paper's testbed results are timelines (latency vs time, Figs 11-13)
// and CDFs (Fig 1, Fig 15). Tables carry the numbers; these charts carry the
// *shape* — the latency cliff at SMux saturation, the failover gap, the
// migration bump — directly in the bench output, so a reader can compare
// against the paper's plots without replotting.
#pragma once

#include <string>
#include <vector>

namespace duet {

struct ChartOptions {
  std::size_t width = 72;   // plot columns
  std::size_t height = 12;  // plot rows
  bool log_y = false;       // log-scale the value axis
  std::string y_label;
  std::string x_label;
};

// One series of (x, y) points; x ascending. y values < 0 are treated as
// gaps (e.g. lost probes in an availability timeline).
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

// Renders one or more series into a multi-line string (no trailing newline).
// Series are overlaid; later series win glyph conflicts.
std::string render_chart(const std::vector<Series>& series, const ChartOptions& options = {});

}  // namespace duet
