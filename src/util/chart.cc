#include "util/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace duet {

std::string render_chart(const std::vector<Series>& series, const ChartOptions& options) {
  DUET_CHECK(options.width >= 8 && options.height >= 3) << "chart too small";

  // Bounds over all visible points.
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity(), ymax = -ymin;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      if (y >= 0) {
        ymin = std::min(ymin, y);
        ymax = std::max(ymax, y);
      }
    }
  }
  if (!(xmin < xmax)) xmax = xmin + 1;
  if (!(ymin < ymax)) ymax = ymin + 1;
  if (options.log_y) ymin = std::max(ymin, ymax * 1e-6);

  const auto y_to_row = [&](double y) -> std::ptrdiff_t {
    double f;
    if (options.log_y) {
      f = (std::log(std::max(y, ymin)) - std::log(ymin)) / (std::log(ymax) - std::log(ymin));
    } else {
      f = (y - ymin) / (ymax - ymin);
    }
    f = std::clamp(f, 0.0, 1.0);
    return static_cast<std::ptrdiff_t>(std::llround((1.0 - f) * (options.height - 1)));
  };
  const auto x_to_col = [&](double x) {
    const double f = std::clamp((x - xmin) / (xmax - xmin), 0.0, 1.0);
    return static_cast<std::size_t>(std::llround(f * (options.width - 1)));
  };

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const std::size_t col = x_to_col(x);
      if (y < 0) {
        // Gap marker at the bottom row: an availability hole.
        grid[options.height - 1][col] = 'x';
      } else {
        grid[y_to_row(y)][col] = s.glyph;
      }
    }
  }

  // Assemble with a labelled frame.
  std::string out;
  char buf[64];
  const auto axis_value = [&](double f) {
    if (options.log_y) return std::exp(std::log(ymin) + f * (std::log(ymax) - std::log(ymin)));
    return ymin + f * (ymax - ymin);
  };
  for (std::size_t row = 0; row < options.height; ++row) {
    const double f = 1.0 - static_cast<double>(row) / (options.height - 1);
    if (row == 0 || row == options.height - 1 || row == options.height / 2) {
      std::snprintf(buf, sizeof(buf), "%10.3g |", axis_value(f));
    } else {
      std::snprintf(buf, sizeof(buf), "%10s |", "");
    }
    out += buf;
    out += grid[row];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(options.width, '-') + '\n';
  std::snprintf(buf, sizeof(buf), "%10s  %-10.4g", "", xmin);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%*.4g", static_cast<int>(options.width - 12), xmax);
  out += buf;
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out += "\n" + std::string(12, ' ') + options.x_label;
    if (!options.y_label.empty()) out += "   [y: " + options.y_label + "]";
  }
  // Legend.
  if (series.size() > 1 || !series.empty()) {
    out += "\n" + std::string(12, ' ');
    for (const auto& s : series) {
      out += "(";
      out += s.glyph;
      out += ") " + s.name + "  ";
    }
    out += "(x) lost";
  }
  return out;
}

}  // namespace duet
