#include "util/subprocess.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace duet::util {

namespace {

bool is_executable_file(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
         ::access(path.c_str(), X_OK) == 0;
}

}  // namespace

std::optional<CommandResult> run_command(const std::vector<std::string>& argv) {
  if (argv.empty()) return std::nullopt;
  int fds[2];
  if (::pipe(fds) != 0) return std::nullopt;

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    // Child: stdout -> pipe, stderr untouched.
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    _exit(127);  // exec failed; 127 mirrors the shell convention
  }

  ::close(fds[1]);
  CommandResult result;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      result.out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fds[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  }
  if (result.exit_code == 127) return std::nullopt;  // exec failure
  return result;
}

bool command_exists(const std::string& name) {
  if (name.empty()) return false;
  if (name.find('/') != std::string::npos) return is_executable_file(name);
  const char* path = std::getenv("PATH");
  if (path == nullptr) return false;
  std::string dirs(path);
  std::size_t start = 0;
  while (start <= dirs.size()) {
    std::size_t end = dirs.find(':', start);
    if (end == std::string::npos) end = dirs.size();
    const std::string dir = dirs.substr(start, end - start);
    if (!dir.empty() && is_executable_file(dir + "/" + name)) return true;
    start = end + 1;
  }
  return false;
}

}  // namespace duet::util
