// Minimal child-process helpers for tools that drive external binaries
// (tools/hotcheck shells out to nm/objdump; tests shell out to hotcheck).
//
// No shell is involved: argv is passed straight to execvp, so arguments
// never need quoting and PATH lookup follows the usual exec rules. stdout is
// captured; stderr passes through to the parent's stderr so diagnostics from
// the child stay visible.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace duet::util {

struct CommandResult {
  int exit_code = -1;  // child's exit status; 128+signal when killed
  std::string out;     // everything the child wrote to stdout
};

// Runs argv[0] with the given arguments, blocking until it exits. Returns
// nullopt when the child cannot be spawned at all (fork/pipe failure or
// exec failure, e.g. the binary does not exist).
std::optional<CommandResult> run_command(const std::vector<std::string>& argv);

// True when `name` resolves to an executable via PATH (or directly, when it
// contains a slash). Lets callers skip gracefully instead of failing mid-run.
bool command_exists(const std::string& name);

}  // namespace duet::util
