#include "util/table.h"

#include <algorithm>

#include "util/logging.h"

namespace duet {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DUET_CHECK(!headers_.empty()) << "table with no columns";
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DUET_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_sep = [&] {
    std::fputc('+', out);
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

void TablePrinter::print_csv(std::FILE* out) const {
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%s", cells[c].c_str(), c + 1 == cells.size() ? "\n" : ",");
    }
  };
  print_cells(headers_);
  for (const auto& row : rows_) print_cells(row);
}

std::string TablePrinter::fmt(double v, const char* format) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace duet
