#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace duet {

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  DUET_CHECK(!samples_.empty()) << "min of empty Summary";
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  DUET_CHECK(!samples_.empty()) << "max of empty Summary";
  ensure_sorted();
  return samples_.back();
}

double Summary::mean() const {
  DUET_CHECK(!samples_.empty()) << "mean of empty Summary";
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  DUET_CHECK(!samples_.empty()) << "stddev of empty Summary";
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::percentile(double p) const {
  DUET_CHECK(!samples_.empty()) << "percentile of empty Summary";
  DUET_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  if (samples_.size() == 1) return samples_[0];
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (sorted_) {
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }
  // Unsorted: selection instead of a full sort. After nth_element the range
  // past `lo` holds everything >= the answer, so its minimum is exactly the
  // sorted array's next sample — same interpolation inputs, same bits.
  const auto nth = samples_.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(samples_.begin(), nth, samples_.end());
  if (lo + 1 >= samples_.size()) return *nth;
  const double next = *std::min_element(nth + 1, samples_.end());
  return *nth * (1.0 - frac) + next * frac;
}

void Summary::merge(const Summary& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

std::vector<std::pair<double, double>> Summary::cdf(std::size_t points) const {
  DUET_CHECK(points >= 2) << "cdf needs >= 2 points";
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  if (samples_.empty()) return out;
  for (std::size_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = static_cast<std::size_t>(f * static_cast<double>(samples_.size() - 1));
    out.emplace_back(samples_[idx], f);
  }
  return out;
}

std::string format_si(double value) {
  char buf[32];
  const double a = std::fabs(value);
  if (a >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.2fT", value / 1e12);
  } else if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

std::string format_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace duet
