// Hot-path purity annotations (DESIGN.md §14).
//
// The multi-Mpps claims rest on conventions no generic linter can express:
// forwarding-path code must not allocate, take a mutex, read the clock per
// packet, throw, touch std::unordered_map, or do stdio. DUET_HOT turns those
// conventions into a machine-checkable contract: an annotated function is
// placed in a dedicated `.text.duet_hot.<n>` section of its object file, and
// tools/hotcheck reconstructs the call graph of the built objects and walks
// the transitive closure from every such root, failing on any reachable call
// into the denylist.
//
//   * DUET_HOT — marks a forwarding-path entry point (a purity ROOT). Apply
//     to the function definition. Everything statically reachable from it
//     must stay pure; the analyzer follows calls through unannotated helpers
//     (closure, not per-function), so only entry points need the attribute.
//     On GCC, section attributes are silently dropped from template
//     instantiations — annotating a template member (FlatTable ops) is
//     advisory documentation there; such code is still checked via closure
//     from its concrete callers, which is why every concrete entry point
//     must carry the attribute.
//   * DUET_HOT_ALLOW(reason) — the escape hatch: an out-of-line cold path
//     that is REACHABLE from hot code but deliberately impure (amortized
//     growth, fail-fast abort sinks). The function lands in a
//     `.text.duet_hot_allow.<n>` section and the analyzer stops traversal
//     there, reporting the barrier together with `reason` (recovered from
//     the source annotation). Implies noinline — an inlined barrier would
//     dissolve into its hot caller and mask nothing... and hide everything.
//     The reason must be a single-line string literal. For template
//     functions (where GCC drops the section) add a pattern entry to
//     tools/hotcheck/allow.conf instead; the attribute still pins the
//     function out of line so the pattern has a symbol to match.
//   * DUET_HOT_CHECK(cond, what) — DUET_CHECK for hot functions. The classic
//     macro inlines ostringstream streaming into the caller, which makes
//     every hot function "call" iostream in its cold branch and trips the
//     stdio gate. This variant costs one predicted branch and a call to an
//     out-of-line DUET_HOT_ALLOW'd [[noreturn]] sink; no formatting, no
//     allocation, no iostream anywhere in the hot object code.
//
// Sections are suffixed with __COUNTER__ because GCC rejects mixing comdat
// (inline/member) and plain functions in one named section ("section type
// conflict"); unique names sidestep that and give the analyzer unambiguous
// per-function relocation attribution as a bonus.
#pragma once

namespace duet::detail {

// Logs "file:line: hot-path check failed: what" and aborts. Never returns.
// Defined out of line (util/logging.cc) behind DUET_HOT_ALLOW.
[[noreturn]] void hot_check_fail(const char* file, int line, const char* what) noexcept;

}  // namespace duet::detail

#define DUET_HOT_STRINGIZE_IMPL(x) #x
#define DUET_HOT_STRINGIZE(x) DUET_HOT_STRINGIZE_IMPL(x)

#if defined(__clang__)
// clang: no `noclone` attribute.
#define DUET_HOT \
  __attribute__((section(".text.duet_hot." DUET_HOT_STRINGIZE(__COUNTER__)), used))
#define DUET_HOT_ALLOW(reason)                                                         \
  __attribute__((section(".text.duet_hot_allow." DUET_HOT_STRINGIZE(__COUNTER__)), \
                 noinline, used))
#elif defined(__GNUC__)
// noclone keeps -O2 from splitting off .constprop clones that would escape
// their section (and therefore the root set).
#define DUET_HOT \
  __attribute__((section(".text.duet_hot." DUET_HOT_STRINGIZE(__COUNTER__)), used, noclone))
#define DUET_HOT_ALLOW(reason)                                                         \
  __attribute__((section(".text.duet_hot_allow." DUET_HOT_STRINGIZE(__COUNTER__)), \
                 noinline, used, noclone))
#else
#define DUET_HOT
#define DUET_HOT_ALLOW(reason)
#endif

#define DUET_HOT_CHECK(cond, what)                                  \
  do {                                                              \
    if (__builtin_expect(!(cond), 0)) {                             \
      ::duet::detail::hot_check_fail(__FILE__, __LINE__, what);     \
    }                                                               \
  } while (0)
