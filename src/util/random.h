// Deterministic random number utilities.
//
// Every stochastic component in the library (trace generation, failure
// injection, tie-breaking in the assignment algorithm) takes an explicit
// Rng so that experiments are reproducible run-to-run and the test suite can
// pin seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace duet {

// SplitMix64: tiny, fast, well-distributed; good enough for simulation and
// far cheaper than mt19937_64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) noexcept {
    // Modulo bias is negligible for simulation-scale n (< 2^32).
    return (*this)() % n;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform real in [0, 1).
  double uniform01() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept { return lo + (hi - lo) * uniform01(); }

  // Exponential with given mean (> 0).
  double exponential(double mean) noexcept {
    double u = uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Standard-ish normal via Box-Muller (one value per call; simple > fast).
  double normal(double mean, double stddev) noexcept {
    double u1 = uniform01();
    double u2 = uniform01();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return mean + stddev * std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  // The full generator state (SplitMix64 has exactly one word). Persisted by
  // controller snapshots so a recovered process draws the same sequence a
  // never-crashed one would.
  std::uint64_t state() const noexcept { return state_; }
  void set_state(std::uint64_t state) noexcept { state_ = state; }

 private:
  std::uint64_t state_;
};

// Samples indexes 0..n-1 with Zipf(s) popularity: P(k) ∝ 1/(k+1)^s.
// Used to generate the heavy-tailed VIP traffic split of Fig 15.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    DUET_CHECK(n > 0) << "Zipf over empty support";
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  // Probability mass of index k.
  double pmf(std::size_t k) const noexcept {
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

  std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.uniform01();
    // Binary search over the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace duet
