// Lightweight leveled logging for the Duet library.
//
// The library is used both from long-running benchmark harnesses (which want
// terse output) and from tests (which want silence unless something goes
// wrong), so the default level is kWarn and callers opt in to more.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace duet {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level. Not thread-safe by design: set it once at startup.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {

// Sinks a fully formatted record; appends a newline and flushes on kError.
void emit(LogLevel level, std::string_view file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line) noexcept
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view file_;
  int line_;
  std::ostringstream stream_;
};

// No-op sink used when a level is compiled/filtered out; swallows streaming.
struct NullMessage {
  template <typename T>
  NullMessage& operator<<(const T&) noexcept {
    return *this;
  }
};

}  // namespace detail

#define DUET_LOG(level)                                         \
  if (::duet::log_level() > ::duet::LogLevel::level) {          \
  } else                                                        \
    ::duet::detail::LogMessage(::duet::LogLevel::level, __FILE__, __LINE__)

#define DUET_LOG_DEBUG DUET_LOG(kDebug)
#define DUET_LOG_INFO DUET_LOG(kInfo)
#define DUET_LOG_WARN DUET_LOG(kWarn)
#define DUET_LOG_ERROR DUET_LOG(kError)

// Invariant check that is active in all build types. Networking control-plane
// state machines are exactly the kind of code where a silent bad state turns
// into a routing loop three modules later; fail fast instead.
#define DUET_CHECK(cond)                                                        \
  if (cond) {                                                                   \
  } else                                                                        \
    ::duet::detail::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace detail {

class CheckFailure {
 public:
  CheckFailure(std::string_view file, int line, std::string_view cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace duet
