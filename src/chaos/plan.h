// ChaosPlan: a composed, fully-scripted chaos scenario.
//
// compose_plan() interleaves any number of injector streams onto one shared
// clock. Ordering is total and deterministic: events sort by tick; within a
// tick they keep COMPOSITION ORDER (stream position first, then the
// within-stream order the injector emitted). Composing the same streams in
// the same order therefore always yields the identical plan — the property
// the chaos tests pin — and the plan, not the injectors, is what the runner
// replays through both engines.
#pragma once

#include <string>
#include <vector>

#include "chaos/injector.h"

namespace duet::chaos {

struct ChaosPlan {
  std::string name;
  ChaosEnv env;
  std::vector<ChaosEvent> events;       // (tick, stream position, seq) order
  std::vector<std::string> injectors;   // ingredient names, composition order

  friend bool operator==(const ChaosPlan&, const ChaosPlan&) = default;
};

ChaosPlan compose_plan(std::string name, const ChaosEnv& env,
                       std::vector<InjectorStream> streams);

}  // namespace duet::chaos
