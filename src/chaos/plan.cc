#include "chaos/plan.h"

#include <algorithm>
#include <utility>

namespace duet::chaos {

ChaosPlan compose_plan(std::string name, const ChaosEnv& env,
                       std::vector<InjectorStream> streams) {
  ChaosPlan plan;
  plan.name = std::move(name);
  plan.env = env;
  for (InjectorStream& s : streams) {
    plan.injectors.push_back(std::move(s.name));
    for (ChaosEvent& e : s.events) plan.events.push_back(std::move(e));
  }
  // Stable: same-tick events keep (stream position, within-stream) order.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.tick < b.tick; });
  return plan;
}

}  // namespace duet::chaos
