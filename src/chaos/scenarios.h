// Named chaos scenarios and their per-engine gates.
//
// builtin_scenarios() is the scenario matrix bench_chaos runs and CI's
// chaos-smoke leg gates on: five single-adversary scenarios (churn storm,
// flash crowd, correlated failure mid-migration, gray DIP, SYN flood) plus
// the composed multi-adversary "perfect storm". Each entry carries the
// documented bounds (DESIGN.md §15) for BOTH engines; evaluate_gates()
// turns a ChaosReport into the list of violated bounds (empty = pass).
//
// violation_fixtures() are deliberately mis-configured twins — the same
// injectors against a broken env — that MUST trip their named gate
// (`must_trip`). They prove the gates bite, mirroring the hotcheck fixture
// pattern: a gate that cannot fail is not a gate.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "chaos/plan.h"
#include "chaos/runner.h"

namespace duet::chaos {

inline constexpr std::uint64_t kUnbounded = std::numeric_limits<std::uint64_t>::max();

// Documented per-scenario bounds. *_max gates cap a metric; *_min gates
// prove the scenario actually exercises the mechanism it claims to (e.g. a
// flood that never evicts is not a flood). Every bound names the engine it
// constrains; packet_loss_max applies to each engine separately.
struct ChaosGates {
  std::uint64_t stateless_pcc_max = 0;         // the stateless contract
  std::uint64_t stateless_flow_state_max = 0;  // peak per-flow entries
  std::uint64_t stateful_pcc_max = kUnbounded;
  std::uint64_t stateful_pcc_min = 0;
  std::uint64_t stateful_evictions_max = kUnbounded;
  std::uint64_t stateful_evictions_min = 0;
  std::uint64_t packet_loss_max = kUnbounded;
  std::uint64_t packet_loss_min = 0;
  std::uint64_t legal_remaps_min = 0;
  std::uint64_t gray_packets_min = 0;
  std::uint64_t overload_drops_min = 0;
};

// Human-readable gate failures, empty when the report is within bounds.
// Each failure string contains the gate's field name (e.g. "stateful_pcc_max")
// so fixtures can assert WHICH gate tripped.
std::vector<std::string> evaluate_gates(const ChaosReport& report, const ChaosGates& gates);

struct NamedScenario {
  std::string name;
  std::string summary;
  bool composed = false;           // multi-adversary
  const char* must_trip = nullptr; // violation fixtures: gate that must fail
  ChaosGates gates;
  ChaosPlan (*build)(bool quick, std::uint64_t seed);
};

// The scenario matrix: churn_storm, flash_crowd, correlated_failure,
// gray_dip, syn_flood, perfect_storm (composed).
const std::vector<NamedScenario>& builtin_scenarios();

// Mis-configured twins that must trip `must_trip` under their own gates.
const std::vector<NamedScenario>& violation_fixtures();

}  // namespace duet::chaos
