#include "chaos/runner.h"

#include <algorithm>
#include <string>
#include <utility>

#include "duet/smux.h"
#include "exec/sweep.h"
#include "net/hash.h"
#include "util/id_set.h"
#include "util/logging.h"
#include "util/mix.h"

namespace duet::chaos {

namespace {

constexpr Ipv4Address kVip{100, 0, 0, 1};
constexpr std::uint64_t kEcmpSalt = 0x65636d7073616c74ULL;
constexpr std::uint64_t kGraySalt = 0x6772617973616c74ULL;
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// Distinct src blocks per traffic class, index-encoded so tuples are unique
// regardless of the procedural port.
Ipv4Address established_src(std::size_t i) {
  return Ipv4Address{10, static_cast<std::uint8_t>(1 + ((i >> 16) & 63)),
                     static_cast<std::uint8_t>((i >> 8) & 255),
                     static_cast<std::uint8_t>(i & 255)};
}
Ipv4Address flood_src(std::size_t j) {
  return Ipv4Address{172, static_cast<std::uint8_t>(16 + ((j >> 16) & 63)),
                     static_cast<std::uint8_t>((j >> 8) & 255),
                     static_cast<std::uint8_t>(j & 255)};
}
Ipv4Address flash_src(std::size_t k) {
  return Ipv4Address{192, static_cast<std::uint8_t>(64 + ((k >> 16) & 63)),
                     static_cast<std::uint8_t>((k >> 8) & 255),
                     static_cast<std::uint8_t>(k & 255)};
}

std::uint16_t flow_port(std::uint64_t traffic_seed, std::uint64_t cls, std::uint64_t idx) {
  return static_cast<std::uint16_t>(1024 +
                                    mix64(traffic_seed ^ (cls * kGolden) ^ (idx + 1)) % 60000);
}

EngineChaosReport run_engine(const ChaosPlan& plan, DuetConfig cfg, SmuxEngine engine) {
  const ChaosEnv& env = plan.env;
  DUET_CHECK(env.replicas >= 1 && env.initial_dips >= 2 && env.batch > 0)
      << "chaos env needs a replica, two DIPs and a batch size";
  cfg.smux_engine = engine;
  cfg.smux_flow_table_max = env.flow_table_cap;
  cfg.smux_flow_idle_us = env.flow_idle_us;
  if (env.unbounded_versions) cfg.stateless_max_versions = 0;

  telemetry::MetricRegistry registry;
  // One hasher seed for every replica: any SMux decides any flow alike —
  // the property the ECMP failover model below leans on.
  const FlowHasher hasher;

  struct Replica {
    Smux smux;
    bool alive = true;
    std::uint64_t used = 0;  // this tick's packet budget consumption
    std::vector<Packet> batch;
    std::vector<std::int64_t> flow_of;  // established index per packet, -1 = attack
  };
  const std::vector<Ipv4Address> dips0 = initial_dip_list(env.initial_dips);
  std::vector<Replica> reps;
  reps.reserve(env.replicas);
  for (std::size_t r = 0; r < env.replicas; ++r) {
    reps.push_back(Replica{Smux(static_cast<std::uint32_t>(r), hasher, cfg), true, 0, {}, {}});
    reps[r].smux.bind_telemetry(registry, "chaos.r" + std::to_string(r) + ".");
    reps[r].smux.set_vip(kVip, dips0);
    reps[r].batch.reserve(env.batch);
    reps[r].flow_of.reserve(env.batch);
  }

  // Pool state. `live` keeps insertion order (the canonical set_vip order);
  // the IdSet doubles it for O(log n) liveness checks in the oracle.
  std::vector<Ipv4Address> live = dips0;
  util::IdSet<std::uint32_t> live_set;
  for (const Ipv4Address d : dips0) live_set.insert(d.value());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> gray;  // dip value -> timeout %

  int home = 0;  // the VIP's announced replica; -1 = through-SMux transit
  std::vector<std::size_t> live_ids;
  const auto rebuild_live_ids = [&] {
    live_ids.clear();
    for (std::size_t r = 0; r < reps.size(); ++r) {
      if (reps[r].alive) live_ids.push_back(r);
    }
  };
  rebuild_live_ids();
  std::uint64_t flash_mult = 1;

  // PCC oracle: expected DIP per established flow.
  const std::size_t e = env.established_flows;
  std::vector<Ipv4Address> expected(e);
  std::vector<char> seen(e, 0);

  EngineChaosReport rep;
  double now_us = 0.0;
  std::uint64_t seq = 0;  // global processed-packet sequence (gray loss draws)
  std::vector<Ipv4Address> out(env.batch);

  const auto flush = [&](Replica& R) {
    if (R.batch.empty()) return;
    const std::size_t n = R.batch.size();
    R.smux.process_batch({R.batch.data(), n}, {out.data(), n}, now_us);
    for (std::size_t k = 0; k < n; ++k) {
      const Ipv4Address dip = out[k];
      // Order-sensitive chain: the bit-for-bit fingerprint of every decision.
      rep.fingerprint =
          mix64(rep.fingerprint ^ (static_cast<std::uint64_t>(dip.value()) + kGolden));
      if (!gray.empty()) {
        for (const auto& [value, pct] : gray) {
          if (value != dip.value()) continue;
          ++rep.gray_packets;
          if (mix64((seq + k) ^ kGraySalt) % 100 < pct) ++rep.packet_loss;
          break;
        }
      }
      if (!live_set.contains(dip.value())) ++rep.dead_decisions;
      const std::int64_t fi = R.flow_of[k];
      if (fi >= 0) {
        const auto i = static_cast<std::size_t>(fi);
        if (seen[i] != 0 && dip != expected[i]) {
          // Moving off a removed DIP is §5.1 termination, not a PCC break.
          if (live_set.contains(expected[i].value())) {
            ++rep.pcc_violations;
          } else {
            ++rep.legal_remaps;
          }
        }
        expected[i] = dip;
        seen[i] = 1;
      }
    }
    rep.packets += n;
    seq += n;
    now_us += static_cast<double>(n);  // 1 µs per packet
    std::uint64_t entries = 0;
    for (const Replica& rr : reps) entries += rr.smux.flow_table_size();
    rep.flow_entries_peak = std::max<std::uint64_t>(rep.flow_entries_peak, entries);
    R.batch.clear();
    R.flow_of.clear();
  };
  const auto flush_all = [&] {
    for (Replica& R : reps) flush(R);
  };
  const auto push = [&](const FiveTuple& t, std::int64_t fi) {
    const std::uint64_t h = hasher.hash(t);
    const std::size_t r = (home >= 0 && reps[static_cast<std::size_t>(home)].alive)
                              ? static_cast<std::size_t>(home)
                              : live_ids[mix64(h ^ kEcmpSalt) % live_ids.size()];
    Replica& R = reps[r];
    if (env.replica_capacity_ppt != 0 && R.used >= env.replica_capacity_ppt) {
      ++rep.overload_drops;  // brownout: dropped before any decision
      return;
    }
    ++R.used;
    R.batch.emplace_back(t, 64);
    R.flow_of.push_back(fi);
    if (R.batch.size() == env.batch) flush(R);
  };

  // Control-plane ops go to EVERY replica, dead or not: config distribution
  // is a separate plane, and a recovering replica must come back with the
  // current pool (only its FLOW TABLE is stale — deliberately).
  const auto remove_dip = [&](Ipv4Address dip, bool crash) {
    // Composition no-ops: stale target, or the pool floor of 2.
    if (!live_set.contains(dip.value()) || live.size() <= 2) return;
    if (crash) {
      // In-flight packets on a crash-killed DIP are lost (a graceful remove
      // drains them first).
      for (std::size_t i = 0; i < e; ++i) {
        if (seen[i] != 0 && expected[i] == dip) ++rep.packet_loss;
      }
    }
    for (Replica& R : reps) R.smux.remove_dip(kVip, dip);
    live.erase(std::find(live.begin(), live.end(), dip));
    live_set.erase(dip.value());
  };
  std::uint64_t flood_quota = 0;
  const auto apply = [&](const ChaosEvent& ev) {
    switch (ev.kind) {
      case ChaosEventKind::kDipAdd:
        if (live_set.contains(ev.dip.value())) return;  // composition no-op
        for (Replica& R : reps) R.smux.add_dip(kVip, ev.dip);
        live.push_back(ev.dip);
        live_set.insert(ev.dip.value());
        break;
      case ChaosEventKind::kDipRemove:
        remove_dip(ev.dip, /*crash=*/false);
        break;
      case ChaosEventKind::kDipKill:
        for (const Ipv4Address d : ev.dips) remove_dip(d, /*crash=*/true);
        break;
      case ChaosEventKind::kWeights: {
        // Derived over the CURRENT live set so the event composes.
        std::vector<std::uint32_t> weights;
        weights.reserve(live.size());
        for (std::size_t i = 0; i < live.size(); ++i) {
          weights.push_back(static_cast<std::uint32_t>(1 + mix64(ev.a ^ ((i + 1) * kGolden)) % 4));
        }
        for (Replica& R : reps) R.smux.set_vip(kVip, live, weights);
        break;
      }
      case ChaosEventKind::kFlood:
        flood_quota += ev.a;
        break;
      case ChaosEventKind::kFlashBegin:
        flash_mult = std::max<std::uint64_t>(1, ev.a);
        break;
      case ChaosEventKind::kFlashEnd:
        flash_mult = 1;
        break;
      case ChaosEventKind::kGrayBegin: {
        bool found = false;
        for (auto& g : gray) {
          if (g.first == ev.dip.value()) {
            g.second = ev.a;
            found = true;
          }
        }
        if (!found) gray.emplace_back(ev.dip.value(), ev.a);
        break;
      }
      case ChaosEventKind::kGrayEnd:
        std::erase_if(gray, [&](const auto& g) { return g.first == ev.dip.value(); });
        break;
      case ChaosEventKind::kMuxFail: {
        const std::size_t r = static_cast<std::size_t>(ev.a);
        if (r >= reps.size() || !reps[r].alive || live_ids.size() <= 1) return;
        reps[r].alive = false;
        if (home == static_cast<int>(r)) home = -1;  // flows fail over by ECMP
        rebuild_live_ids();
        break;
      }
      case ChaosEventKind::kMuxRecover: {
        const std::size_t r = static_cast<std::size_t>(ev.a);
        if (r >= reps.size() || reps[r].alive) return;
        reps[r].alive = true;  // flow table intact: stale pins by design
        rebuild_live_ids();
        break;
      }
      case ChaosEventKind::kMigrateWithdraw:
        home = -1;  // §4.2 phase 1: through-SMux transit
        break;
      case ChaosEventKind::kMigrateAnnounce: {
        const std::size_t r = static_cast<std::size_t>(ev.a);
        if (r < reps.size() && reps[r].alive) home = static_cast<int>(r);
        break;
      }
    }
  };

  const auto established_tuple = [&](std::size_t i) {
    return FiveTuple{established_src(i), kVip, flow_port(env.traffic_seed, 1, i), 80,
                     IpProto::kTcp};
  };

  // Establish the legit connections (the PCC baseline).
  for (std::size_t i = 0; i < e; ++i) push(established_tuple(i), static_cast<std::int64_t>(i));
  flush_all();

  std::size_t ev_idx = 0;
  std::size_t flood_j = 0;
  std::size_t flash_k = 0;
  for (std::size_t t = 0; t < env.ticks; ++t) {
    for (Replica& R : reps) R.used = 0;
    flood_quota = 0;
    while (ev_idx < plan.events.size() && plan.events[ev_idx].tick == t) {
      apply(plan.events[ev_idx++]);
    }
    // Traffic: attack classes first, keepalives last — overload budgets
    // brown out the legit flows, exactly the failure mode that matters.
    for (std::uint64_t q = 0; q < flood_quota; ++q, ++flood_j) {
      push(FiveTuple{flood_src(flood_j), kVip, flow_port(env.traffic_seed, 2, flood_j), 80,
                     IpProto::kTcp},
           -1);
    }
    if (flash_mult > 1) {
      const std::uint64_t surge = (flash_mult - 1) * e;
      for (std::uint64_t q = 0; q < surge; ++q, ++flash_k) {
        push(FiveTuple{flash_src(flash_k), kVip, flow_port(env.traffic_seed, 3, flash_k), 80,
                       IpProto::kTcp},
             -1);
      }
    }
    for (std::size_t i = 0; i < e; ++i) push(established_tuple(i), static_cast<std::int64_t>(i));
    flush_all();
  }

  for (std::size_t r = 0; r < reps.size(); ++r) {
    const std::string p = "chaos.r" + std::to_string(r) + ".";
    rep.evictions += registry.counter(p + "flow_evictions").value();
    rep.dip_kill_evictions += registry.counter(p + "flow_dip_kills").value();
    rep.flow_entries_end += reps[r].smux.flow_table_size();
    rep.decision_state_bytes += reps[r].smux.decision_state_bytes();
  }
  return rep;
}

void journal_plan(const ChaosPlan& plan, telemetry::EventJournal& journal) {
  using telemetry::Event;
  using telemetry::EventKind;
  for (const ChaosEvent& ev : plan.events) {
    const double t = static_cast<double>(ev.tick);
    switch (ev.kind) {
      case ChaosEventKind::kMigrateWithdraw:
        journal.record(t, EventKind::kMigrationWithdraw, kVip);
        break;
      case ChaosEventKind::kMigrateAnnounce:
        journal.record(Event{t, EventKind::kMigrationAnnounce, kVip, {}, telemetry::kNoSwitch,
                             ev.a, 0, 0, plan.name});
        break;
      case ChaosEventKind::kMuxFail:
        journal.record(Event{t, EventKind::kSmuxDown, kVip, {}, telemetry::kNoSwitch, ev.a, 0,
                             0, plan.name});
        break;
      case ChaosEventKind::kDipKill:
        for (const Ipv4Address d : ev.dips) journal.record(t, EventKind::kDipDown, kVip, d);
        break;
      default:
        journal.record(Event{t, EventKind::kChaosInject, kVip, ev.dip, telemetry::kNoSwitch,
                             ev.a, 0, 0, std::string(to_string(ev.kind))});
        break;
    }
  }
}

void record_engine(telemetry::MetricRegistry& metrics, const std::string& prefix,
                   const EngineChaosReport& r) {
  metrics.counter(prefix + "packets").inc(r.packets);
  metrics.counter(prefix + "overload_drops").inc(r.overload_drops);
  metrics.counter(prefix + "packet_loss").inc(r.packet_loss);
  metrics.counter(prefix + "gray_packets").inc(r.gray_packets);
  metrics.counter(prefix + "pcc_violations").inc(r.pcc_violations);
  metrics.counter(prefix + "legal_remaps").inc(r.legal_remaps);
  metrics.counter(prefix + "dead_decisions").inc(r.dead_decisions);
  metrics.counter(prefix + "flow_evictions").inc(r.evictions);
  metrics.counter(prefix + "flow_dip_kills").inc(r.dip_kill_evictions);
  metrics.gauge(prefix + "flow_entries_peak").set(static_cast<double>(r.flow_entries_peak));
  metrics.gauge(prefix + "decision_state_bytes")
      .set(static_cast<double>(r.decision_state_bytes));
}

}  // namespace

ChaosReport run_chaos(const ChaosPlan& plan, const DuetConfig& base_config,
                      telemetry::MetricRegistry* metrics, telemetry::EventJournal* journal) {
  if (journal != nullptr) journal_plan(plan, *journal);
  ChaosReport report;
  report.stateful = run_engine(plan, base_config, SmuxEngine::kStateful);
  report.stateless = run_engine(plan, base_config, SmuxEngine::kStateless);
  if (metrics != nullptr) {
    record_engine(*metrics, "chaos." + plan.name + ".stateful.", report.stateful);
    record_engine(*metrics, "chaos." + plan.name + ".stateless.", report.stateless);
  }
  return report;
}

std::vector<ChaosReport> sweep_chaos(const ChaosPlanBuilder& build,
                                     const DuetConfig& base_config, std::size_t shards,
                                     std::uint64_t seed, exec::ThreadPool* pool) {
  exec::SweepOptions options;
  options.pool = pool;
  options.seed = seed;
  auto result = exec::sweep(shards, options, [&](exec::ShardContext& ctx) {
    return run_chaos(build(ctx.seed), base_config);
  });
  return std::move(result.results);
}

}  // namespace duet::chaos
