#include "chaos/scenarios.h"

#include <string>

#include "util/mix.h"

namespace duet::chaos {

namespace {

void gate(std::vector<std::string>& failures, bool ok, const std::string& text) {
  if (!ok) failures.push_back(text);
}

std::string num(std::uint64_t v) { return std::to_string(v); }

// Independent sub-seed per injector of a composed scenario.
std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t k) {
  return mix64(seed ^ (0x9e3779b97f4a7c15ULL * (k + 1)));
}

// ---------------------------------------------------------------------------
// Scenario builders. `quick` quarters the workload (CI smoke scale); the
// qualitative outcomes the gates check are scale-invariant.
// ---------------------------------------------------------------------------

ChaosPlan build_churn_storm(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 12;
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 1024 : 4096;  // roomy: churn alone, no pressure
  env.traffic_seed = seed;
  ChurnStormParams churn;  // 5%/min sustained, one tick = one minute
  return compose_plan("churn_storm", env, {churn_storm(churn, env, seed)});
}

ChaosPlan build_flash_crowd(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 8;
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 512 : 2048;        // absorbs churnless re-pins only
  env.replica_capacity_ppt = quick ? 768 : 3072;  // brownout during the surge
  env.traffic_seed = seed;
  FlashCrowdParams flash;  // 10x for 2 ticks starting at tick 2
  return compose_plan("flash_crowd", env, {flash_crowd(flash, env, seed)});
}

ChaosPlan build_correlated_failure(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 10;
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 1024 : 4096;
  env.replicas = 3;
  env.traffic_seed = seed;
  CorrelatedFailureParams fail;  // withdraw@2, dest+fabric die@3, recover@7
  return compose_plan("correlated_failure", env, {correlated_failure(fail, env, seed)});
}

ChaosPlan build_gray_dip(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 8;
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 1024 : 4096;
  env.traffic_seed = seed;
  GrayDipParams gray;  // DIP 0 times out 50% from tick 1, never marked dead
  return compose_plan("gray_dip", env, {gray_dip(gray, env, seed)});
}

ChaosPlan build_syn_flood(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 9;  // 8 flood rounds + the final keepalive tick
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 256 : 1024;  // the table the flood exhausts
  env.traffic_seed = seed;
  SynFloodParams flood;
  flood.tuples_total = quick ? 2048 : 8192;
  flood.end_tick = 8;
  RandomChurnParams churn;  // background pool churn: what turns lost pins
  return compose_plan(       // into PCC violations
      "syn_flood", env,
      {syn_flood(flood, env, seed), random_churn(churn, env, sub_seed(seed, 1))});
}

ChaosPlan build_perfect_storm(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 12;
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 512 : 2048;
  env.replica_capacity_ppt = quick ? 768 : 3072;
  env.traffic_seed = seed;
  ChurnStormParams churn;
  churn.percent_per_min = 10.0;  // storm-grade rolling churn
  SynFloodParams flood;
  flood.tuples_total = quick ? 2048 : 8192;
  FlashCrowdParams flash;
  flash.begin_tick = 4;
  flash.duration = 3;
  flash.multiplier = 6;
  GrayDipParams gray;
  gray.begin_tick = 2;
  gray.dip_index = 1;
  gray.timeout_pct = 30;
  RandomChurnParams bg;
  return compose_plan("perfect_storm", env,
                      {churn_storm(churn, env, seed), syn_flood(flood, env, sub_seed(seed, 2)),
                       flash_crowd(flash, env, sub_seed(seed, 3)),
                       gray_dip(gray, env, sub_seed(seed, 4)),
                       random_churn(bg, env, sub_seed(seed, 5))});
}

// Mis-configured fixtures -----------------------------------------------------

// Flow-table cap far below the established-flow count: establishing alone
// sheds pins. Must trip gray_dip's stateful_evictions_max == 0.
ChaosPlan build_cap_starved_gray(bool quick, std::uint64_t seed) {
  ChaosPlan plan = build_gray_dip(quick, seed);
  plan.name = "fixture_cap_starved_gray";
  plan.env.flow_table_cap = quick ? 16 : 64;
  return plan;
}

// Churn while the cap thrashes every pin: re-pins land on the post-churn
// layout while the old DIP is still live. Must trip churn_storm's
// stateful_pcc_max == 0.
ChaosPlan build_churn_under_pressure(bool quick, std::uint64_t seed) {
  ChaosEnv env;
  env.ticks = 8;
  env.established_flows = quick ? 128 : 512;
  env.flow_table_cap = quick ? 16 : 64;  // broken: thrashes every established pin
  env.traffic_seed = seed;
  ChurnStormParams churn;
  churn.percent_per_min = 25.0;  // 2 DIPs rolled per tick
  return compose_plan("fixture_churn_under_pressure", env, {churn_storm(churn, env, seed)});
}

ChaosGates churn_storm_gates() {
  ChaosGates g;
  g.stateful_pcc_max = 0;  // uncapped table: pins shield flows through churn
  g.packet_loss_max = 0;   // rolling removals drain gracefully
  g.legal_remaps_min = 1;  // removed DIPs must actually carry flows
  return g;
}

ChaosGates gray_dip_gates() {
  ChaosGates g;
  g.stateful_pcc_max = 0;       // pool never changes
  g.stateful_evictions_max = 0; // nothing pressures the table
  g.gray_packets_min = 1;       // the gray DIP keeps taking traffic
  g.packet_loss_min = 1;        // and keeps timing out
  g.packet_loss_max = 4096;     // bounded by its keepalive share
  return g;
}

}  // namespace

std::vector<std::string> evaluate_gates(const ChaosReport& r, const ChaosGates& g) {
  std::vector<std::string> f;
  const EngineChaosReport& sf = r.stateful;
  const EngineChaosReport& sl = r.stateless;
  gate(f, sl.pcc_violations <= g.stateless_pcc_max,
       "stateless_pcc_max: " + num(sl.pcc_violations) + " > " + num(g.stateless_pcc_max));
  gate(f, sl.flow_entries_peak <= g.stateless_flow_state_max,
       "stateless_flow_state_max: " + num(sl.flow_entries_peak) + " > " +
           num(g.stateless_flow_state_max));
  gate(f, sf.pcc_violations <= g.stateful_pcc_max,
       "stateful_pcc_max: " + num(sf.pcc_violations) + " > " + num(g.stateful_pcc_max));
  gate(f, sf.pcc_violations >= g.stateful_pcc_min,
       "stateful_pcc_min: " + num(sf.pcc_violations) + " < " + num(g.stateful_pcc_min));
  gate(f, sf.evictions <= g.stateful_evictions_max,
       "stateful_evictions_max: " + num(sf.evictions) + " > " + num(g.stateful_evictions_max));
  gate(f, sf.evictions >= g.stateful_evictions_min,
       "stateful_evictions_min: " + num(sf.evictions) + " < " + num(g.stateful_evictions_min));
  for (const auto* e : {&sf, &sl}) {
    const char* tag = e == &sf ? "stateful" : "stateless";
    gate(f, e->packet_loss <= g.packet_loss_max,
         std::string("packet_loss_max(") + tag + "): " + num(e->packet_loss) + " > " +
             num(g.packet_loss_max));
    gate(f, e->packet_loss >= g.packet_loss_min,
         std::string("packet_loss_min(") + tag + "): " + num(e->packet_loss) + " < " +
             num(g.packet_loss_min));
    gate(f, e->legal_remaps >= g.legal_remaps_min,
         std::string("legal_remaps_min(") + tag + "): " + num(e->legal_remaps) + " < " +
             num(g.legal_remaps_min));
    gate(f, e->gray_packets >= g.gray_packets_min,
         std::string("gray_packets_min(") + tag + "): " + num(e->gray_packets) + " < " +
             num(g.gray_packets_min));
    gate(f, e->overload_drops >= g.overload_drops_min,
         std::string("overload_drops_min(") + tag + "): " + num(e->overload_drops) + " < " +
             num(g.overload_drops_min));
  }
  return f;
}

const std::vector<NamedScenario>& builtin_scenarios() {
  static const std::vector<NamedScenario> scenarios = [] {
    std::vector<NamedScenario> v;
    {
      NamedScenario s{"churn_storm", "rolling 5%/min DIP churn, roomy table", false, nullptr,
                      churn_storm_gates(), &build_churn_storm};
      v.push_back(std::move(s));
    }
    {
      ChaosGates g;
      g.stateful_pcc_max = 0;       // static pool: re-pins land where they were
      g.stateful_evictions_min = 1; // the surge must pressure the table
      g.overload_drops_min = 1;     // and the replica budget
      g.packet_loss_max = 0;        // drops are brownout, not loss
      NamedScenario s{"flash_crowd", "10x VIP surge for two ticks, replica budget browns out",
                      false, nullptr, g, &build_flash_crowd};
      v.push_back(std::move(s));
    }
    {
      ChaosGates g;
      g.stateful_pcc_max = 0;  // hash-stable failover: survivors keep their share
      g.packet_loss_min = 1;   // crash-killed DIPs lose in-flight packets
      g.legal_remaps_min = 1;  // their flows terminate and remap legally
      NamedScenario s{"correlated_failure",
                      "container+switch+link die with the migration destination SMux", false,
                      nullptr, g, &build_correlated_failure};
      v.push_back(std::move(s));
    }
    {
      NamedScenario s{"gray_dip", "DIP answers slowly, never marked dead", false, nullptr,
                      gray_dip_gates(), &build_gray_dip};
      v.push_back(std::move(s));
    }
    {
      ChaosGates g;
      g.stateful_pcc_min = 1;        // the classic: flood + churn breaks PCC
      g.stateful_evictions_min = 1;  // by shedding real pins
      g.packet_loss_max = 0;
      NamedScenario s{"syn_flood", "8K spoofed first packets over churning pool", false,
                      nullptr, g, &build_syn_flood};
      v.push_back(std::move(s));
    }
    {
      ChaosGates g;
      g.stateful_pcc_min = 1;
      g.stateful_evictions_min = 1;
      g.overload_drops_min = 1;
      // No gray/loss minimum: composition can mask an adversary — the churn
      // storm tends to roll the gray DIP out of the pool (a rolling deploy
      // accidentally curing a gray failure), which is an emergent behavior
      // worth observing, not forcing.
      NamedScenario s{"perfect_storm",
                      "churn storm + SYN flood + flash crowd + gray DIP + background churn",
                      true, nullptr, g, &build_perfect_storm};
      v.push_back(std::move(s));
    }
    return v;
  }();
  return scenarios;
}

const std::vector<NamedScenario>& violation_fixtures() {
  static const std::vector<NamedScenario> fixtures = [] {
    std::vector<NamedScenario> v;
    {
      NamedScenario s{"fixture_cap_starved_gray",
                      "gray_dip with a cap below the flow count: establishing sheds pins",
                      false, "stateful_evictions_max", gray_dip_gates(),
                      &build_cap_starved_gray};
      v.push_back(std::move(s));
    }
    {
      NamedScenario s{"fixture_churn_under_pressure",
                      "churn storm while the cap thrashes every pin: PCC breaks", false,
                      "stateful_pcc_max", churn_storm_gates(), &build_churn_under_pressure};
      v.push_back(std::move(s));
    }
    return v;
  }();
  return fixtures;
}

}  // namespace duet::chaos
