#include "chaos/injector.h"

#include <algorithm>

#include "sim/failure.h"
#include "topo/fattree.h"
#include "util/logging.h"
#include "util/random.h"

namespace duet::chaos {

const char* to_string(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kDipAdd: return "dip_add";
    case ChaosEventKind::kDipRemove: return "dip_remove";
    case ChaosEventKind::kDipKill: return "dip_kill";
    case ChaosEventKind::kWeights: return "weights";
    case ChaosEventKind::kFlood: return "flood";
    case ChaosEventKind::kFlashBegin: return "flash_begin";
    case ChaosEventKind::kFlashEnd: return "flash_end";
    case ChaosEventKind::kGrayBegin: return "gray_begin";
    case ChaosEventKind::kGrayEnd: return "gray_end";
    case ChaosEventKind::kMuxFail: return "mux_fail";
    case ChaosEventKind::kMuxRecover: return "mux_recover";
    case ChaosEventKind::kMigrateWithdraw: return "migrate_withdraw";
    case ChaosEventKind::kMigrateAnnounce: return "migrate_announce";
  }
  return "?";
}

namespace {

Ipv4Address indexed_dip(std::uint8_t block, std::size_t k) {
  return Ipv4Address{10, block, static_cast<std::uint8_t>((k >> 8) & 255),
                     static_cast<std::uint8_t>(k & 255)};
}

std::size_t clamp_end(std::size_t end_tick, const ChaosEnv& env) {
  return std::min(end_tick, env.ticks);
}

}  // namespace

Ipv4Address initial_dip(std::size_t d) { return indexed_dip(200, d); }
Ipv4Address churn_add_dip(std::size_t k) { return indexed_dip(201, k); }
Ipv4Address storm_add_dip(std::size_t k) { return indexed_dip(202, k); }

std::vector<Ipv4Address> initial_dip_list(std::size_t n) {
  std::vector<Ipv4Address> dips;
  dips.reserve(n);
  for (std::size_t d = 0; d < n; ++d) dips.push_back(initial_dip(d));
  return dips;
}

InjectorStream churn_storm(const ChurnStormParams& params, const ChaosEnv& env,
                           std::uint64_t seed) {
  DUET_CHECK(params.percent_per_min >= 0.0) << "churn rate must be non-negative";
  InjectorStream s{"churn_storm", {}};
  Rng rng(seed);
  // The injector's own pool model: the canonical initial list, rolled over
  // by its replacements. Co-adversary kills make some removes stale; the
  // runner no-ops those.
  std::vector<Ipv4Address> pool = initial_dip_list(env.initial_dips);
  const double per_tick_rate = params.percent_per_min / 100.0 * (params.tick_seconds / 60.0);
  double pending = 0.0;
  std::size_t next_replacement = 0;
  const std::size_t end = clamp_end(params.end_tick, env);
  for (std::size_t t = params.start_tick; t < end; ++t) {
    pending += per_tick_rate * static_cast<double>(pool.size());
    while (pending >= 1.0) {
      pending -= 1.0;
      const std::size_t victim = static_cast<std::size_t>(rng.uniform(pool.size()));
      const Ipv4Address out = pool[victim];
      const Ipv4Address in = storm_add_dip(next_replacement++);
      // Add-before-remove: the pool never passes through a shrunken state,
      // so composed removals cannot strand it below the 2-DIP floor.
      s.events.push_back({t, ChaosEventKind::kDipAdd, in, {}, 0});
      s.events.push_back({t, ChaosEventKind::kDipRemove, out, {}, 0});
      pool[victim] = in;
    }
  }
  return s;
}

InjectorStream random_churn(const RandomChurnParams& params, const ChaosEnv& env,
                            std::uint64_t seed) {
  InjectorStream s{"random_churn", {}};
  Rng rng(seed);
  std::vector<Ipv4Address> pool = initial_dip_list(env.initial_dips);
  std::size_t next_added = 0;
  const std::size_t end = clamp_end(params.end_tick, env);
  for (std::size_t t = params.start_tick; t < end; ++t) {
    std::uint64_t kind = rng.uniform(3);
    if (kind == 1 && pool.size() <= 2) kind = 0;  // never remove below 2 DIPs
    if (kind == 0) {
      const Ipv4Address in = churn_add_dip(next_added++);
      s.events.push_back({t, ChaosEventKind::kDipAdd, in, {}, 0});
      pool.push_back(in);
    } else if (kind == 1) {
      const std::size_t victim = static_cast<std::size_t>(rng.uniform(pool.size()));
      s.events.push_back({t, ChaosEventKind::kDipRemove, pool[victim], {}, 0});
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      s.events.push_back({t, ChaosEventKind::kWeights, Ipv4Address{}, {}, rng()});
    }
  }
  return s;
}

InjectorStream flash_crowd(const FlashCrowdParams& params, const ChaosEnv& env,
                           std::uint64_t /*seed*/) {
  DUET_CHECK(params.multiplier >= 1) << "flash multiplier must be >= 1";
  InjectorStream s{"flash_crowd", {}};
  if (params.begin_tick >= env.ticks || params.duration == 0) return s;
  s.events.push_back({params.begin_tick, ChaosEventKind::kFlashBegin, Ipv4Address{}, {},
                      params.multiplier});
  const std::size_t end = params.begin_tick + params.duration;
  if (end < env.ticks) {
    s.events.push_back({end, ChaosEventKind::kFlashEnd, Ipv4Address{}, {}, 0});
  }
  return s;
}

InjectorStream syn_flood(const SynFloodParams& params, const ChaosEnv& env,
                         std::uint64_t /*seed*/) {
  InjectorStream s{"syn_flood", {}};
  const std::size_t end = clamp_end(params.end_tick, env);
  if (params.begin_tick >= end || params.tuples_total == 0) return s;
  const std::size_t window = end - params.begin_tick;
  const std::size_t per_tick = params.tuples_total / window;
  std::size_t emitted = 0;
  for (std::size_t t = params.begin_tick; t < end; ++t) {
    const std::size_t quota =
        t + 1 == end ? params.tuples_total - emitted : per_tick;
    emitted += quota;
    if (quota > 0) {
      s.events.push_back({t, ChaosEventKind::kFlood, Ipv4Address{}, {}, quota});
    }
  }
  return s;
}

InjectorStream gray_dip(const GrayDipParams& params, const ChaosEnv& env,
                        std::uint64_t /*seed*/) {
  DUET_CHECK(params.dip_index < env.initial_dips) << "gray DIP index out of range";
  DUET_CHECK(params.timeout_pct <= 100) << "timeout percentage out of range";
  InjectorStream s{"gray_dip", {}};
  if (params.begin_tick >= env.ticks) return s;
  const Ipv4Address dip = initial_dip(params.dip_index);
  s.events.push_back({params.begin_tick, ChaosEventKind::kGrayBegin, dip, {},
                      params.timeout_pct});
  if (params.end_tick < env.ticks) {
    s.events.push_back({params.end_tick, ChaosEventKind::kGrayEnd, dip, {}, 0});
  }
  return s;
}

InjectorStream correlated_failure(const CorrelatedFailureParams& params, const ChaosEnv& env,
                                  std::uint64_t seed) {
  DUET_CHECK(env.replicas >= 2) << "correlated failure needs a migration destination";
  DUET_CHECK(params.dest_replica < env.replicas) << "destination replica out of range";
  DUET_CHECK(params.withdraw_tick <= params.fail_tick &&
             params.fail_tick < params.announce_tick &&
             params.announce_tick <= params.recover_tick)
      << "correlated failure ticks must be ordered";

  // Composed fabric failure over a mini FatTree: a whole container plus a
  // random switch plus a random link at once (sim/failure.h compose()). DIPs
  // map round-robin onto the ToRs; DIPs on dead ToRs die with them.
  FatTreeParams fp = FatTreeParams::scaled(params.containers, params.tors_per_container,
                                           params.cores);
  const FatTree fabric = build_fattree(fp);
  Rng rng(seed);
  const FailureScenario fabric_failure =
      compose({random_container_failure(fabric, rng), random_switch_failure(fabric, 1, rng),
               random_link_failure(fabric, rng)});

  std::vector<Ipv4Address> killed;
  for (std::size_t d = 0; d < env.initial_dips; ++d) {
    const SwitchId tor = fabric.tors[d % fabric.tors.size()];
    if (fabric_failure.affects(tor)) killed.push_back(initial_dip(d));
  }

  InjectorStream s{"correlated_failure(" + fabric_failure.name + ")", {}};
  s.events.push_back({params.withdraw_tick, ChaosEventKind::kMigrateWithdraw, Ipv4Address{},
                      {}, 0});
  s.events.push_back({params.fail_tick, ChaosEventKind::kMuxFail, Ipv4Address{}, {},
                      params.dest_replica});
  if (!killed.empty()) {
    s.events.push_back({params.fail_tick, ChaosEventKind::kDipKill, Ipv4Address{},
                        std::move(killed), 0});
  }
  // Attempted while the destination is down: the runner no-ops it and the
  // VIP stays in through-SMux transit.
  s.events.push_back({params.announce_tick, ChaosEventKind::kMigrateAnnounce, Ipv4Address{},
                      {}, params.dest_replica});
  s.events.push_back({params.recover_tick, ChaosEventKind::kMuxRecover, Ipv4Address{}, {},
                      params.dest_replica});
  s.events.push_back({params.recover_tick, ChaosEventKind::kMigrateAnnounce, Ipv4Address{},
                      {}, params.dest_replica});
  return s;
}

}  // namespace duet::chaos
