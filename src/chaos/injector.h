// Chaos injectors: seeded adversary generators for the chaos harness.
//
// An INJECTOR is a pure function of (params, env, seed) that emits an
// InjectorStream — a tick-stamped list of ChaosEvents on the scenario's
// shared clock. Injectors never touch an engine: they only script WHAT
// happens WHEN. The runner (chaos/runner.h) replays a composed stream of
// events through both decision engines, so a scenario's adversity is fully
// determined before a single packet is processed and the two engines see
// byte-identical trouble.
//
// Composition contract (chaos/plan.h): streams from several injectors are
// merged onto one clock, ordered by (tick, injector position, within-stream
// order). Because an injector cannot see its co-adversaries, its events may
// become stale under composition (e.g. it removes a DIP another injector
// already killed). The RUNNER resolves staleness deterministically: an event
// targeting a DIP that is no longer live, or a replica that cannot take it,
// is a no-op. This keeps every injector independently pure while letting
// arbitrary subsets compose.
//
// Event semantics (applied by the runner at the START of their tick, before
// that tick's traffic):
//   kDipAdd / kDipRemove  pool churn. Remove is graceful (rolling deploy):
//                         flows on the DIP terminate per §5.1 — a legal
//                         remap, no packet loss.
//   kDipKill              correlated crash: like remove, but established
//                         flows currently on the DIP each lose an in-flight
//                         packet (counted as packet_loss).
//   kWeights              WCMP reweight of the live pool; `a` seeds the new
//                         weight vector (derived over the CURRENT live set so
//                         the event stays composition-safe).
//   kFlood                `a` distinct spoofed first-packet tuples this tick.
//   kFlashBegin/kFlashEnd flash crowd: `a`-fold traffic multiplier — each
//                         flash tick adds (a-1)*established ephemeral new
//                         flows ahead of the keepalives.
//   kGrayBegin/kGrayEnd   the DIP answers but times out `a`% of its packets;
//                         the binary health monitor never marks it dead, so
//                         it stays in the pool (the gray-failure trap).
//   kMuxFail/kMuxRecover  SMux replica `a` dies / returns. Its flows fail
//                         over by ECMP to the surviving replicas; its flow
//                         table survives the outage (stale pins on return).
//   kMigrateWithdraw      §4.2 phase 1: the VIP leaves its home replica and
//                         transits ALL live replicas by ECMP.
//   kMigrateAnnounce      §4.2 phase 2: the VIP lands on replica `a`
//                         (no-op while that replica is down).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/ip.h"

namespace duet::chaos {

inline constexpr std::size_t kAllTicks = std::numeric_limits<std::size_t>::max();

// The base workload every scenario runs against: E established flows on one
// VIP, kept alive every tick. Injectors perturb this world; the runner maps
// the knobs onto DuetConfig.
struct ChaosEnv {
  std::size_t ticks = 8;                // adversity rounds after establish
  std::size_t established_flows = 512;  // legit long-lived connections
  std::size_t initial_dips = 8;
  std::size_t replicas = 1;             // identical SMux replicas per engine
  std::size_t flow_table_cap = 1024;    // smux_flow_table_max for the run
  double flow_idle_us = 0.0;            // 0 = idle expiry off (cap-shed only)
  std::size_t batch = 128;              // process_batch size
  // Per-replica per-tick packet budget; packets beyond it are dropped before
  // any decision (overload brownout). 0 = unlimited.
  std::uint64_t replica_capacity_ppt = 0;
  // Unbounded stateless version retention (stateless_max_versions = 0): the
  // documented requirement for the zero-PCC contract under sustained churn —
  // memory instead of violations (decision_state_bytes shows the bill).
  bool unbounded_versions = true;
  // Salts the procedural src-port generation for all traffic classes, so
  // sweep shards exercise distinct flow-hash populations.
  std::uint64_t traffic_seed = 0x7261666669637365ULL;

  friend bool operator==(const ChaosEnv&, const ChaosEnv&) = default;
};

enum class ChaosEventKind : std::uint8_t {
  kDipAdd,
  kDipRemove,
  kDipKill,
  kWeights,
  kFlood,
  kFlashBegin,
  kFlashEnd,
  kGrayBegin,
  kGrayEnd,
  kMuxFail,
  kMuxRecover,
  kMigrateWithdraw,
  kMigrateAnnounce,
};

const char* to_string(ChaosEventKind kind);

struct ChaosEvent {
  std::size_t tick = 0;
  ChaosEventKind kind = ChaosEventKind::kDipAdd;
  Ipv4Address dip{};               // kDipAdd/kDipRemove/kGray*
  std::vector<Ipv4Address> dips;   // kDipKill: the correlated kill list
  std::uint64_t a = 0;             // kind-specific payload (see header comment)

  friend bool operator==(const ChaosEvent&, const ChaosEvent&) = default;
};

// One injector's output: events sorted by tick (stable within a tick).
struct InjectorStream {
  std::string name;
  std::vector<ChaosEvent> events;

  friend bool operator==(const InjectorStream&, const InjectorStream&) = default;
};

// The canonical DIP address plan shared by injectors and the runner, so a
// pure injector can name pool members without seeing the live set:
//   initial pool     10.200.x.x   (index d)
//   flood-churn adds 10.201.x.x   (k-th add)
//   churn-storm adds 10.202.x.x   (k-th replacement)
Ipv4Address initial_dip(std::size_t d);
Ipv4Address churn_add_dip(std::size_t k);
Ipv4Address storm_add_dip(std::size_t k);
std::vector<Ipv4Address> initial_dip_list(std::size_t n);

// --------------------------------------------------------------------------
// Rolling DIP churn at a sustained rate (the "churn storm"): every whole
// accumulated unit emits a graceful (remove victim, add replacement) pair —
// a rolling deploy that never shrinks the pool. Victims are seeded picks
// from the injector's own pool model (initial list + its replacements).
struct ChurnStormParams {
  double percent_per_min = 5.0;  // fraction of the pool churned per minute
  double tick_seconds = 60.0;    // scenario clock: wall time per tick
  std::size_t start_tick = 1;
  std::size_t end_tick = kAllTicks;  // exclusive; clamped to env.ticks
};
InjectorStream churn_storm(const ChurnStormParams& params, const ChaosEnv& env,
                           std::uint64_t seed);

// Flood-style background churn: one seeded op per tick, uniformly add /
// remove / reweight (never removing below 2 live DIPs in its own model).
struct RandomChurnParams {
  std::size_t start_tick = 1;
  std::size_t end_tick = kAllTicks;
};
InjectorStream random_churn(const RandomChurnParams& params, const ChaosEnv& env,
                            std::uint64_t seed);

// Flash crowd: the VIP's traffic multiplies `multiplier`-fold for
// `duration` ticks starting at `begin_tick`.
struct FlashCrowdParams {
  std::size_t begin_tick = 2;
  std::size_t duration = 2;
  std::uint64_t multiplier = 10;
};
InjectorStream flash_crowd(const FlashCrowdParams& params, const ChaosEnv& env,
                           std::uint64_t seed);

// SYN flood: `tuples_total` distinct spoofed tuples spread evenly over the
// window [begin_tick, end_tick) (remainder lands on the last tick).
struct SynFloodParams {
  std::size_t tuples_total = 8192;
  std::size_t begin_tick = 0;
  std::size_t end_tick = kAllTicks;
};
InjectorStream syn_flood(const SynFloodParams& params, const ChaosEnv& env,
                         std::uint64_t seed);

// Gray-failing DIP: initial_dip(dip_index) starts timing out `timeout_pct`%
// of its packets at begin_tick (recovering at end_tick if inside the run).
// It is never removed from the pool: health monitoring is binary and the DIP
// still answers probes.
struct GrayDipParams {
  std::size_t begin_tick = 1;
  std::size_t end_tick = kAllTicks;
  std::size_t dip_index = 0;
  std::uint64_t timeout_pct = 50;
};
InjectorStream gray_dip(const GrayDipParams& params, const ChaosEnv& env,
                        std::uint64_t seed);

// Correlated switch + SMux failure mid-migration (§4.2 meets §8.2): the VIP
// withdraws from its home replica at withdraw_tick (through-SMux transit);
// at fail_tick the DESTINATION replica dies together with a composed fabric
// failure (container + random switch + random link over a mini FatTree,
// built with sim/failure.h compose()) whose dead ToRs take their DIPs with
// them (kDipKill); the announce at announce_tick is a no-op while the
// destination is down; the replica recovers and the announce lands at
// recover_tick.
struct CorrelatedFailureParams {
  std::size_t withdraw_tick = 2;
  std::size_t fail_tick = 3;
  std::size_t announce_tick = 5;   // attempted while the destination is dead
  std::size_t recover_tick = 7;
  std::size_t dest_replica = 1;
  // Mini-fabric shape for the composed fabric failure.
  std::size_t containers = 3;
  std::size_t tors_per_container = 4;
  std::size_t cores = 2;
};
InjectorStream correlated_failure(const CorrelatedFailureParams& params, const ChaosEnv& env,
                                  std::uint64_t seed);

}  // namespace duet::chaos
