// The chaos runner: twin-drives one ChaosPlan through BOTH decision engines
// and reports directly comparable outcomes.
//
// Per engine, the runner stands up env.replicas identical SMux replicas
// (same hasher, same config, all receiving every control-plane op — the
// Duet SMux property that lets any replica serve any VIP) and replays the
// plan on a shared clock:
//
//   establish:  every established flow sends its first packet (pins / warms
//               buckets) — the PCC baseline.
//   each tick:  1. control events scheduled for this tick, in plan order
//                  (stale events — dead DIP, dead replica — are no-ops);
//               2. traffic: flood tuples, then flash-crowd ephemerals, then
//                  one keepalive per established flow. Packets route to the
//                  VIP's home replica, or by flow-hash ECMP over the live
//                  replicas while the VIP is in through-SMux transit (§4.2)
//                  or its home is down. Per-replica overload budgets drop
//                  excess packets BEFORE any decision is made.
//
// The oracle tracks each established flow's expected DIP. A flow observed on
// a different DIP is a PCC violation if the expected DIP is still live, a
// legal remap if it was removed/killed (§5.1 termination). Packet loss
// accrues from gray timeouts, in-flight packets on crash-killed DIPs, and
// is reported separately from overload drops.
//
// Everything is a pure function of the plan: no randomness at run time (all
// randomness was drawn at plan-build time), the clock advances 1 µs per
// processed packet, and `fingerprint` chains every decision in flush order —
// the bit-for-bit handle the width-determinism contract checks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/plan.h"
#include "duet/config.h"
#include "exec/thread_pool.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

namespace duet::chaos {

// Per-engine outcome of one scenario run.
struct EngineChaosReport {
  std::uint64_t packets = 0;          // processed (drops excluded)
  std::uint64_t overload_drops = 0;   // dropped by per-replica budgets
  std::uint64_t packet_loss = 0;      // gray timeouts + in-flight on kills
  std::uint64_t gray_packets = 0;     // packets decided onto a gray DIP
  std::uint64_t pcc_violations = 0;   // established flow moved off a LIVE DIP
  std::uint64_t legal_remaps = 0;     // moved off a removed/killed DIP (§5.1)
  std::uint64_t dead_decisions = 0;   // decision pointed at a non-live DIP
  std::uint64_t evictions = 0;        // flow_evictions across replicas
  std::uint64_t dip_kill_evictions = 0;  // the DIP-removal slice of the above
  std::uint64_t flow_entries_peak = 0;   // max of summed replica tables
  std::uint64_t flow_entries_end = 0;
  std::uint64_t decision_state_bytes = 0;
  std::uint64_t fingerprint = 0;

  friend bool operator==(const EngineChaosReport&, const EngineChaosReport&) = default;
};

struct ChaosReport {
  EngineChaosReport stateful;
  EngineChaosReport stateless;

  friend bool operator==(const ChaosReport&, const ChaosReport&) = default;
};

// Runs the plan through both engines. `base_config` supplies the knobs the
// plan's env does not own (hashing, stateless drain clock, ...). When
// `metrics` is given, per-engine outcome counters are recorded under
// "chaos.<plan name>.<engine>."; when `journal` is given, the plan's control
// events are journaled once (they are engine-independent), tick t at t µs.
ChaosReport run_chaos(const ChaosPlan& plan, const DuetConfig& base_config,
                      telemetry::MetricRegistry* metrics = nullptr,
                      telemetry::EventJournal* journal = nullptr);

// `shards` independent scenarios — shard i's plan built by
// `build(exec::shard_seed(seed, i))` — on the deterministic sweep engine
// (exec/sweep.h). Slot i of the result is shard i's report at ANY pool
// width.
using ChaosPlanBuilder = std::function<ChaosPlan(std::uint64_t seed)>;
std::vector<ChaosReport> sweep_chaos(const ChaosPlanBuilder& build,
                                     const DuetConfig& base_config, std::size_t shards,
                                     std::uint64_t seed, exec::ThreadPool* pool = nullptr);

}  // namespace duet::chaos
