// The duetd ops-socket protocol: length-prefixed frames over an AF_UNIX
// SOCK_STREAM socket.
//
// Frame:    [u32 payload_len][payload], little-endian, one frame per message.
// Request:  u32 argc ++ argc length-prefixed strings — exactly the argv the
//           duetctl subcommand was invoked with ("add-dip", "100.0.0.1", ...),
//           so the daemon-side dispatcher and the CLI share one vocabulary.
// Response: u8 status (0 = ok, nonzero = the server refused or failed the
//           command) ++ length-prefixed text (human-readable result/detail).
//
// One request per connection: connect, send, receive, close. The daemon
// serves connections sequentially from a single accept thread — ops-socket
// traffic is control-plane rate (a human or a test harness), and sequential
// service gives every mutation a total order for free.
//
// The client side (CtlClient) retries with bounded exponential backoff, but
// ONLY failures that provably precede delivery: refused/timed-out connects
// (duetd still booting) and partial sends (a torn frame never decodes
// server-side). Once the request frame was fully sent the attempt is final —
// the daemon may have applied the mutation even if the reply is lost, so a
// re-send would violate at-most-once and double-apply. A response with
// nonzero status is likewise never retried.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace duet::persist {

// Frames above this are protocol violations (a stats dump is a few KB).
inline constexpr std::uint32_t kCtlMaxFrame = 1u << 20;

// --- wire helpers (shared by daemon and client) -------------------------------

// Writes one [len][payload] frame, waiting up to timeout_ms for socket
// writability per chunk. False on timeout, EPIPE, or oversize payload.
bool ctl_send_frame(int fd, std::span<const std::uint8_t> payload, int timeout_ms);
// Reads one frame. nullopt on EOF, timeout, or a length prefix over
// kCtlMaxFrame (everything after a framing violation is suspect).
std::optional<std::vector<std::uint8_t>> ctl_recv_frame(int fd, int timeout_ms);

std::vector<std::uint8_t> encode_request(const std::vector<std::string>& argv);
std::optional<std::vector<std::string>> decode_request(std::span<const std::uint8_t> bytes);

struct CtlResponse {
  std::uint8_t status = 0;  // 0 = ok
  std::string text;

  bool ok() const noexcept { return status == 0; }
};

std::vector<std::uint8_t> encode_response(const CtlResponse& response);
std::optional<CtlResponse> decode_response(std::span<const std::uint8_t> bytes);

// Binds and listens on a unix socket path, unlinking any stale file first
// (duetd owns its socket path; a leftover from a kill -9 must not block
// restart). Returns the listening fd, or -1 with *error set.
int ctl_listen(const std::string& path, std::string* error);

// --- client -------------------------------------------------------------------

struct CtlClientOptions {
  int connect_timeout_ms = 1000;
  int request_timeout_ms = 5000;
  // Pre-delivery transport retries (connect/send failures only) AFTER the
  // first attempt. Each retry waits backoff_ms * 2^attempt before
  // reconnecting. Never applies once a request was fully sent.
  int retries = 3;
  int backoff_ms = 100;
};

class CtlClient {
 public:
  explicit CtlClient(std::string socket_path, CtlClientOptions options = {});

  // Connects, sends argv, awaits the response. nullopt = transport failure
  // (daemon not running after all retries, or a lost/timed-out reply to a
  // delivered request — which is never re-sent; the mutation may have
  // applied). The caller maps that to its distinct "could not reach duetd"
  // exit code. A decoded response — even a refusal — is returned as-is.
  std::optional<CtlResponse> request(const std::vector<std::string>& argv);

 private:
  std::string path_;
  CtlClientOptions opts_;
};

}  // namespace duet::persist
