#include "persist/ctl_protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "persist/framing.h"

namespace duet::persist {

namespace {

// Fills `addr` from `path`; false when the path overflows sun_path (the
// kernel limit is ~107 bytes — long temp dirs in tests can hit it).
bool fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
// passes. Treats EINTR as "keep waiting".
bool wait_ready(int fd, short events, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc > 0) return (pfd.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_ready(fd, POLLOUT, timeout_ms)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t len, int timeout_ms) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;  // EOF mid-frame
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd, POLLIN, timeout_ms)) return false;
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

bool ctl_send_frame(int fd, std::span<const std::uint8_t> payload, int timeout_ms) {
  if (payload.size() > kCtlMaxFrame) return false;
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<std::uint8_t>((len >> shift) & 0xff));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return write_all(fd, frame.data(), frame.size(), timeout_ms);
}

std::optional<std::vector<std::uint8_t>> ctl_recv_frame(int fd, int timeout_ms) {
  std::uint8_t head[4];
  if (!read_all(fd, head, sizeof(head), timeout_ms)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{head[i]} << (8 * i);
  if (len > kCtlMaxFrame) return std::nullopt;
  std::vector<std::uint8_t> payload(len);
  if (len > 0 && !read_all(fd, payload.data(), len, timeout_ms)) return std::nullopt;
  return payload;
}

std::vector<std::uint8_t> encode_request(const std::vector<std::string>& argv) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(argv.size()));
  for (const auto& arg : argv) w.str(arg);
  return std::move(w).take();
}

std::optional<std::vector<std::string>> decode_request(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto argc = r.u32();
  if (!argc.has_value()) return std::nullopt;
  // Each arg costs at least its u32 length prefix, so a claimed argc beyond
  // remaining/4 is a malformed frame — reject it before reserve() turns the
  // attacker-controlled count into a multi-gigabyte allocation.
  if (*argc > r.remaining() / 4) return std::nullopt;
  std::vector<std::string> argv;
  argv.reserve(*argc);
  for (std::uint32_t i = 0; i < *argc; ++i) {
    auto arg = r.str();
    if (!arg.has_value()) return std::nullopt;
    argv.push_back(*std::move(arg));
  }
  if (!r.done()) return std::nullopt;
  return argv;
}

std::vector<std::uint8_t> encode_response(const CtlResponse& response) {
  ByteWriter w;
  w.u8(response.status);
  w.str(response.text);
  return std::move(w).take();
}

std::optional<CtlResponse> decode_response(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto status = r.u8();
  auto text = r.str();
  if (!status.has_value() || !text.has_value() || !r.done()) return std::nullopt;
  return CtlResponse{*status, *std::move(text)};
}

int ctl_listen(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, &addr)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string{"socket: "} + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    if (error != nullptr) {
      *error = "bind/listen " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

CtlClient::CtlClient(std::string socket_path, CtlClientOptions options)
    : path_(std::move(socket_path)), opts_(options) {}

std::optional<CtlResponse> CtlClient::request(const std::vector<std::string>& argv) {
  const auto payload = encode_request(argv);
  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long long>(opts_.backoff_ms) << (attempt - 1)));
    }
    sockaddr_un addr;
    if (!fill_sockaddr(path_, &addr)) return std::nullopt;  // permanent; no retry helps
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) continue;
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      if (!wait_ready(fd, POLLOUT, opts_.connect_timeout_ms)) {
        ::close(fd);
        continue;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
        ::close(fd);
        continue;
      }
      rc = 0;
    }
    if (rc != 0) {
      ::close(fd);
      continue;
    }
    if (!ctl_send_frame(fd, payload, opts_.request_timeout_ms)) {
      // Safe to retry: a partially sent frame can never decode server-side,
      // so the daemon cannot have applied anything from this attempt.
      ::close(fd);
      continue;
    }
    auto reply = ctl_recv_frame(fd, opts_.request_timeout_ms);
    ::close(fd);
    // Once the request frame was fully delivered, the daemon may have applied
    // it even though the reply was lost or timed out — re-sending would break
    // at-most-once and double-apply mutations (or fake a failure when the
    // server rejects the duplicate). Any post-send failure is final.
    if (!reply.has_value()) return std::nullopt;
    if (auto decoded = decode_response(*reply); decoded.has_value()) return decoded;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace duet::persist
