#include "persist/framing.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace duet::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) | static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 | static_cast<std::uint32_t>(in[3]) << 24;
}

// Writes all of `bytes` or fails; short writes are retried (EINTR included).
bool write_fully(int fd, const std::uint8_t* bytes, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, bytes, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

bool parse_fsync_policy(const char* name, FsyncPolicy* out) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "none") == 0) {
    *out = FsyncPolicy::kNone;
    return true;
  }
  if (std::strcmp(name, "every") == 0) {
    *out = FsyncPolicy::kEveryRecord;
    return true;
  }
  return false;
}

const char* to_string(FsyncPolicy policy) noexcept {
  return policy == FsyncPolicy::kEveryRecord ? "every" : "none";
}

// --- ByteWriter / ByteReader --------------------------------------------------

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

const std::uint8_t* ByteReader::take(std::size_t n) noexcept {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const std::uint8_t* at = bytes_.data() + pos_;
  pos_ += n;
  return at;
}

std::optional<std::uint8_t> ByteReader::u8() noexcept {
  const std::uint8_t* at = take(1);
  if (at == nullptr) return std::nullopt;
  return *at;
}

std::optional<std::uint16_t> ByteReader::u16() noexcept {
  const std::uint8_t* at = take(2);
  if (at == nullptr) return std::nullopt;
  return static_cast<std::uint16_t>(at[0] | at[1] << 8);
}

std::optional<std::uint32_t> ByteReader::u32() noexcept {
  const std::uint8_t* at = take(4);
  if (at == nullptr) return std::nullopt;
  return get_u32(at);
}

std::optional<std::uint64_t> ByteReader::u64() noexcept {
  const std::uint8_t* at = take(8);
  if (at == nullptr) return std::nullopt;
  return static_cast<std::uint64_t>(get_u32(at)) |
         static_cast<std::uint64_t>(get_u32(at + 4)) << 32;
}

std::optional<double> ByteReader::f64() noexcept {
  const auto bits = u64();
  if (!bits.has_value()) return std::nullopt;
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string> ByteReader::str() {
  const auto n = u32();
  if (!n.has_value()) return std::nullopt;
  const std::uint8_t* at = take(*n);
  if (at == nullptr) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(at), *n);
}

// --- FrameWriter --------------------------------------------------------------

FrameWriter::~FrameWriter() { close(); }

FrameWriter::FrameWriter(FrameWriter&& other) noexcept
    : fd_(other.fd_), policy_(other.policy_), size_(other.size_), poisoned_(other.poisoned_) {
  other.fd_ = -1;
}

FrameWriter& FrameWriter::operator=(FrameWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    policy_ = other.policy_;
    size_ = other.size_;
    poisoned_ = other.poisoned_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<FrameWriter> FrameWriter::open(const std::string& path, std::string_view magic,
                                             FsyncPolicy policy,
                                             std::optional<std::uint64_t> truncate_to) {
  if (magic.size() != kMagicBytes) return std::nullopt;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (truncate_to.has_value() && *truncate_to < size) {
    if (::ftruncate(fd, static_cast<off_t>(*truncate_to)) != 0) {
      ::close(fd);
      return std::nullopt;
    }
    size = *truncate_to;
  }
  FrameWriter w;
  w.fd_ = fd;
  w.policy_ = policy;
  w.size_ = size;
  if (size == 0) {
    if (!write_fully(fd, reinterpret_cast<const std::uint8_t*>(magic.data()), magic.size())) {
      return std::nullopt;  // w's destructor closes fd
    }
    w.size_ = magic.size();
    if (policy == FsyncPolicy::kEveryRecord && ::fsync(fd) != 0) return std::nullopt;
  }
  return w;
}

bool FrameWriter::append(std::uint8_t type, std::span<const std::uint8_t> payload) {
  if (fd_ < 0 || poisoned_ || payload.size() > kMaxFramePayload) return false;
  // Header and payload go out in one buffer so a crash tears at most one
  // record, and always at the file tail.
  std::vector<std::uint8_t> buf(kFrameHeaderBytes + payload.size());
  put_u32(buf.data(), static_cast<std::uint32_t>(payload.size()));
  buf[4] = type;
  if (!payload.empty()) {
    std::memcpy(buf.data() + kFrameHeaderBytes, payload.data(), payload.size());
  }
  std::uint32_t crc = crc32(std::span<const std::uint8_t>(&buf[4], 1));
  crc = crc32(payload, crc);
  put_u32(buf.data() + 5, crc);
  if (!write_fully(fd_, buf.data(), buf.size())) {
    // A partial write (ENOSPC, EIO) leaves a torn record at the tail, and
    // readers stop at the first damaged frame — so any record appended after
    // it would be silently lost at recovery. Roll the file back to the last
    // good record; if even that fails, poison the writer so nothing can land
    // behind the garbage until the log is reopened and repaired.
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) poisoned_ = true;
    return false;
  }
  size_ += buf.size();
  if (policy_ == FsyncPolicy::kEveryRecord && ::fsync(fd_) != 0) {
    // The record reached the file but its durability is unknown, and after a
    // failed fsync the kernel may have dropped the dirty pages. Poison: the
    // log must be reopened (re-read + torn-tail repair) before more appends.
    poisoned_ = true;
    return false;
  }
  return true;
}

bool FrameWriter::sync() { return fd_ >= 0 && ::fsync(fd_) == 0; }

void FrameWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- read_frames --------------------------------------------------------------

ReadFramesResult read_frames(const std::string& path, std::string_view magic) {
  ReadFramesResult result;
  if (magic.size() != kMagicBytes) {
    result.error = "bad magic length";
    return result;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.error = "cannot open " + path;
    return result;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f);
    bytes.insert(bytes.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    result.error = "read error on " + path;
    return result;
  }
  if (bytes.size() < kMagicBytes) {
    // Shorter than the magic means the kill -9 window between open(O_CREAT)
    // and the magic stamp in FrameWriter::open — an empty log, not a corrupt
    // one. Report it as a (possibly torn) empty file so the opener truncates
    // to 0 and re-stamps the magic instead of refusing to boot.
    result.truncated_tail = !bytes.empty();
    return result;
  }
  if (std::memcmp(bytes.data(), magic.data(), kMagicBytes) != 0) {
    result.error = "bad magic in " + path;
    return result;
  }

  std::size_t pos = kMagicBytes;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      result.truncated_tail = true;  // torn header
      break;
    }
    const std::uint32_t len = get_u32(bytes.data() + pos);
    const std::uint8_t type = bytes[pos + 4];
    const std::uint32_t want_crc = get_u32(bytes.data() + pos + 5);
    if (len > kMaxFramePayload || bytes.size() - pos - kFrameHeaderBytes < len) {
      result.truncated_tail = true;  // torn payload (or a corrupt length)
      break;
    }
    const std::span<const std::uint8_t> payload(bytes.data() + pos + kFrameHeaderBytes, len);
    std::uint32_t crc = crc32(std::span<const std::uint8_t>(&type, 1));
    crc = crc32(payload, crc);
    if (crc != want_crc) {
      result.truncated_tail = true;  // bit rot or torn write inside the record
      break;
    }
    result.frames.push_back(Frame{type, std::vector<std::uint8_t>(payload.begin(), payload.end())});
    pos += kFrameHeaderBytes + len;
    result.valid_bytes = pos;
  }
  return result;
}

bool sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool atomic_write_file(const std::string& path, std::string_view magic,
                       std::span<const std::uint8_t> bytes, std::uint8_t type) {
  const std::string tmp = path + ".tmp";
  ::unlink(tmp.c_str());
  {
    auto w = FrameWriter::open(tmp, magic, FsyncPolicy::kNone);
    if (!w.has_value() || !w->append(type, bytes) || !w->sync()) return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) return false;
  sync_parent_dir(path);
  return true;
}

}  // namespace duet::persist
