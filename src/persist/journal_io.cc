#include "persist/journal_io.h"

#include <cstdio>

namespace duet::persist {

namespace {
constexpr std::uint8_t kEventFrame = 1;
}  // namespace

std::vector<std::uint8_t> encode_event(const telemetry::Event& event) {
  ByteWriter w;
  w.f64(event.t_us);
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.u32(event.vip.value());
  w.u32(event.dip.value());
  w.u32(event.sw);
  w.u64(event.a);
  w.u64(event.b);
  w.u64(event.c);
  w.str(event.detail);
  return std::move(w).take();
}

std::optional<telemetry::Event> decode_event(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  telemetry::Event e;
  e.t_us = r.f64().value_or(0.0);
  e.kind = static_cast<telemetry::EventKind>(r.u8().value_or(0));
  e.vip = Ipv4Address{r.u32().value_or(0)};
  e.dip = Ipv4Address{r.u32().value_or(0)};
  e.sw = r.u32().value_or(0);
  e.a = r.u64().value_or(0);
  e.b = r.u64().value_or(0);
  e.c = r.u64().value_or(0);
  e.detail = r.str().value_or("");
  if (!r.done()) return std::nullopt;
  return e;
}

bool write_journal(const std::string& path, const telemetry::EventJournal& journal,
                   FsyncPolicy policy) {
  std::remove(path.c_str());
  auto w = FrameWriter::open(path, kJournalMagic, policy);
  if (!w.has_value()) return false;
  for (const telemetry::Event& e : journal.events()) {
    if (!w->append(kEventFrame, encode_event(e))) return false;
  }
  return policy == FsyncPolicy::kEveryRecord || w->sync();
}

ReadJournalResult read_journal(const std::string& path) {
  ReadJournalResult result;
  auto frames = read_frames(path, kJournalMagic);
  if (!frames.ok()) {
    result.error = std::move(frames.error);
    return result;
  }
  result.truncated_tail = frames.truncated_tail;
  for (const Frame& f : frames.frames) {
    if (f.type != kEventFrame) continue;  // future record kinds pass through
    auto e = decode_event(f.payload);
    if (!e.has_value()) {
      // CRC passed but the payload doesn't parse: a writer/reader version
      // skew, not bit rot. Stop here like a torn tail — everything after a
      // frame we can't interpret is suspect.
      result.truncated_tail = true;
      break;
    }
    result.journal.record(std::move(*e));
  }
  return result;
}

std::optional<JournalWriter> JournalWriter::open(const std::string& path, FsyncPolicy policy) {
  auto frames = read_frames(path, kJournalMagic);
  // Repair a torn tail in place; a missing file starts fresh.
  std::optional<std::uint64_t> truncate_to;
  if (frames.ok() && frames.truncated_tail) truncate_to = frames.valid_bytes;
  auto w = FrameWriter::open(path, kJournalMagic, policy, truncate_to);
  if (!w.has_value()) return std::nullopt;
  JournalWriter jw;
  jw.writer_ = std::move(*w);
  return jw;
}

bool JournalWriter::append(const telemetry::Event& event) {
  return writer_.append(kEventFrame, encode_event(event));
}

}  // namespace duet::persist
