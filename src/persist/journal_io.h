// Durable binary form of the telemetry EventJournal, on the shared CRC
// framing (persist/framing.h) — one frame per event, torn-tail tolerant.
//
// The text/JSON exporters (telemetry/export.h) are presentation formats; this
// is the machine format long-running processes use: `duetd` persists its
// control-plane journal across restarts with it, and dumps survive kill -9
// with at most the in-flight event lost (under FsyncPolicy::kEveryRecord,
// none). Round trips are bit-exact, including the f64 timestamps.
#pragma once

#include <string>

#include "persist/framing.h"
#include "telemetry/journal.h"

namespace duet::persist {

inline constexpr std::string_view kJournalMagic = "DUETEVJ1";

// Event <-> bytes (frame payloads; also reused by tests).
std::vector<std::uint8_t> encode_event(const telemetry::Event& event);
std::optional<telemetry::Event> decode_event(std::span<const std::uint8_t> bytes);

// Writes the whole journal (insertion order) to `path`, replacing any
// existing file. Returns false on I/O failure.
bool write_journal(const std::string& path, const telemetry::EventJournal& journal,
                   FsyncPolicy policy = FsyncPolicy::kNone);

struct ReadJournalResult {
  telemetry::EventJournal journal;
  bool truncated_tail = false;  // a torn final event was dropped
  std::string error;            // hard failure (missing file, bad magic)

  bool ok() const noexcept { return error.empty(); }
};

// Reads a journal written by write_journal (or appended by a JournalWriter).
// A torn final record truncates, never errors.
ReadJournalResult read_journal(const std::string& path);

// Incremental appender for live processes: events stream to disk as they
// are recorded instead of one bulk dump at exit.
class JournalWriter {
 public:
  static std::optional<JournalWriter> open(const std::string& path, FsyncPolicy policy);
  bool append(const telemetry::Event& event);

 private:
  FrameWriter writer_;
};

}  // namespace duet::persist
