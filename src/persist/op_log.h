// The controller operation journal: every DuetController mutation as one
// typed, replayable record.
//
// The DuetController is deterministic: given the same construction inputs
// (fabric, config, hasher, seed) and the same operation sequence — including
// each operation's journal clock — it reaches the same logical state. That
// determinism is what makes write-ahead logging sufficient for crash
// recovery: an Op is appended (and, under FsyncPolicy::kEveryRecord,
// fsync'd) BEFORE it is applied, so after kill -9 the log replays to exactly
// the acknowledged prefix of history. Epoch runs journal their full demand
// vectors (bit-exact f64), so even the assignment algorithm's inputs replay
// identically.
//
// Record framing is persist/framing.h: per-record CRC32, torn final record
// truncated on read. Every record carries its sequence number, so a log that
// grew after a snapshot replays only the suffix (apply ops with seq >
// snapshot seq) — no log rewriting on the snapshot path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "duet/config.h"
#include "net/ip.h"
#include "persist/framing.h"
#include "topo/topology.h"
#include "workload/demand.h"

namespace duet {
class DuetController;
}  // namespace duet

namespace duet::persist {

inline constexpr std::string_view kOpLogMagic = "DUETOPL1";

enum class OpKind : std::uint8_t {
  kDeploySmuxes = 0,     // tors = addrs-as-switch-ids, aggregate
  kAddVip = 1,           // vip, addrs = dips
  kRemoveVip = 2,        // vip
  kAddDip = 3,           // vip, dip
  kRemoveDip = 4,        // vip, dip
  kReportHealth = 5,     // vip, dip, flag = healthy
  kInstallPortRule = 6,  // vip, port, addrs = dips
  kRemovePortRule = 7,   // vip, port
  kSetWeights = 8,       // vip, weights
  kSetEngineOverride = 9,   // vip, engine (255 = clear back to default)
  kRunEpoch = 10,        // demands, flag = sticky
  kSwitchFailure = 11,   // sw
  kSmuxFailure = 12,     // sw = smux id
  kMigrateVip = 13,      // vip, sw = target (kInvalidSwitch = to SMux pool)
  // Runtime directive, not controller state: duetd re-snapshots the serving
  // workers' in-process fast tier (MuxServer::rebuild_fast_tier). addrs
  // records the hot-VIP set admitted at journal time so recovery can rebuild
  // the same tier after replay; the controller itself applies it as a no-op.
  kFastTierRebuild = 14,  // addrs = admitted hot VIPs
};

const char* to_string(OpKind kind) noexcept;

inline constexpr std::uint8_t kEngineClear = 255;

// One journaled mutation. A single struct for all kinds (the unused fields
// stay at their defaults and cost nothing on the wire worth optimizing).
struct Op {
  std::uint64_t seq = 0;  // 1-based, assigned by OpLog::append
  double t_us = 0.0;      // controller journal clock at apply time
  OpKind kind = OpKind::kAddVip;

  Ipv4Address vip{};
  Ipv4Address dip{};
  std::uint32_t sw = kInvalidSwitch;
  std::uint16_t port = 0;
  bool flag = false;           // healthy / sticky
  std::uint8_t engine = kEngineClear;
  Ipv4Prefix aggregate{};
  std::vector<std::uint32_t> addrs;    // DIPs or ToR switch ids, kind-dependent
  std::vector<std::uint32_t> weights;
  std::vector<VipDemand> demands;

  friend bool operator==(const Op&, const Op&) = default;
};

std::vector<std::uint8_t> encode_op(const Op& op);
std::optional<Op> decode_op(std::span<const std::uint8_t> bytes);

// Applies one op to the controller: sets the journal clock to op.t_us, then
// dispatches to the matching mutator. Unknown-VIP removals and re-deliveries
// of already-applied state follow the controller's own semantics (DUET_CHECK
// where the controller checks). Returns false only for a kind the build does
// not understand (version skew).
bool apply_op(DuetController& controller, const Op& op);

// Append side of the log. Not thread-safe; duetd serializes ops anyway.
class OpLog {
 public:
  // Opens for appending, repairing a torn tail in place. `next_seq` is the
  // sequence the next append will get (callers pass last known seq + 1).
  static std::optional<OpLog> open(const std::string& path, FsyncPolicy policy,
                                   std::uint64_t next_seq);

  // Stamps op.seq, appends durably (per the policy), returns the seq — or
  // nullopt on write failure, in which case the op MUST NOT be applied (the
  // WAL contract). A failed append still consumes its seq: the bytes may
  // have reached the file (fsync failure), and reusing the seq would shadow
  // the next acknowledged op at replay.
  std::optional<std::uint64_t> append(Op op);

  std::uint64_t next_seq() const noexcept { return next_seq_; }
  std::uint64_t bytes_written() const noexcept { return writer_.bytes_written(); }
  std::uint64_t records_appended() const noexcept { return appended_; }
  bool sync() { return writer_.sync(); }

 private:
  FrameWriter writer_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_ = 0;
};

struct ReplayResult {
  std::vector<Op> ops;          // seq-ascending, duplicates/regressions dropped
  bool truncated_tail = false;  // torn or unparseable tail dropped
  std::string error;            // hard failure; ops empty

  bool ok() const noexcept { return error.empty(); }
};

// Reads every intact op. Tolerates (reports) a torn tail; errors only on a
// missing/corrupt-header file.
ReplayResult replay_ops(const std::string& path);

}  // namespace duet::persist
