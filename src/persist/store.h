// The durable controller: a DuetController whose every mutation is
// write-ahead journaled, with periodic snapshots and crash recovery.
//
// Directory layout (StoreOptions::dir):
//   snapshot.duet — one CRC-framed StateImage, atomically replaced
//   oplog.duet    — CRC-framed Ops appended since that snapshot
//
// WAL contract: apply() appends the op (fsync'd under kEveryRecord) BEFORE
// applying it, so an acknowledged mutation survives kill -9. Recovery =
// restore the snapshot, then replay every op with seq > snapshot.seq; ops
// carry their journal clock, so the replayed controller is byte-identical
// (encode_state) to one that never crashed. A torn final op — the normal
// aftermath of a crash mid-append — is truncated, never skipped.
//
// Snapshot rotation is crash-window free: the image lands via atomic
// replace, and only then is the op log restarted. A crash between the two
// steps merely replays ops the snapshot already contains — replay skips
// seq <= snapshot.seq.
//
// Every boot runs the InvariantAuditor (all 16 invariants, snapshot +
// journal) over the recovered state; open() refuses to serve a state that
// fails its audit.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "duet/controller.h"
#include "persist/op_log.h"
#include "persist/state_image.h"

namespace duet::persist {

struct StoreOptions {
  std::string dir;  // must exist; snapshot.duet / oplog.duet live here
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  // Auto-snapshot after this many ops since the last one (0 = manual only).
  std::uint64_t snapshot_every_ops = 0;
};

struct RecoveryInfo {
  bool recovered = false;  // any state came from disk (snapshot or ops)
  std::uint64_t snapshot_seq = 0;
  std::uint64_t replayed = 0;       // ops applied on top of the snapshot
  // kFastTierRebuild ops among the replayed suffix: a serving-plane
  // directive the controller no-ops, so duetd must re-drive it against the
  // live mux once the workers are up.
  std::uint64_t fast_tier_rebuilds = 0;
  bool truncated_tail = false;      // a torn final op was cut
  double recover_ms = 0.0;          // restore + replay + boot audit
  std::string audit_summary;        // boot-audit result ("clean" or details)
};

class PersistentController {
 public:
  // Opens (and recovers) the store. The fabric/config/hasher/seed MUST match
  // what the directory's state was built with — the snapshot re-drives the
  // same deterministic controller. Returns nullptr with *error set on I/O
  // failure, undecodable state, or a failed boot audit.
  static std::unique_ptr<PersistentController> open(const FatTree& fabric, DuetConfig config,
                                                    FlowHasher hasher, std::uint64_t seed,
                                                    StoreOptions options, std::string* error);

  DuetController& controller() noexcept { return *controller_; }
  const DuetController& controller() const noexcept { return *controller_; }
  const RecoveryInfo& recovery() const noexcept { return recovery_; }

  // Durably journals `op` (stamping its seq), then applies it. Returns false
  // — with the controller UNTOUCHED — if the append cannot be made durable.
  bool apply(Op op);

  // Captures the current state, atomically replaces the snapshot, restarts
  // the op log. False on I/O failure (the old snapshot+log remain valid).
  bool snapshot_now();

  std::uint64_t last_seq() const noexcept { return last_seq_; }
  std::uint64_t snapshot_seq() const noexcept { return snapshot_seq_; }
  std::uint64_t ops_since_snapshot() const noexcept { return last_seq_ - snapshot_seq_; }

  std::string snapshot_path() const { return options_.dir + "/snapshot.duet"; }
  std::string oplog_path() const { return options_.dir + "/oplog.duet"; }

 private:
  PersistentController() = default;

  StoreOptions options_;
  std::unique_ptr<DuetController> controller_;
  std::optional<OpLog> oplog_;
  std::uint64_t last_seq_ = 0;
  std::uint64_t snapshot_seq_ = 0;
  RecoveryInfo recovery_;
};

}  // namespace duet::persist
