#include "persist/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "audit/invariants.h"
#include "audit/snapshot.h"
#include "net/hash.h"
#include "util/logging.h"

namespace duet::persist {

namespace {

// Matches the audit backstop and duetctl's live VIP scheme: every servable
// VIP lives in 100.0.0.0/8.
const Ipv4Prefix kVipAggregate{Ipv4Address{100, 0, 0, 0}, 8};

constexpr int kRequestTimeoutMs = 5000;

std::optional<std::uint32_t> parse_u32(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xfffffffful) return std::nullopt;
  return static_cast<std::uint32_t>(v);
}

CtlResponse usage(std::string text) { return CtlResponse{2, std::move(text)}; }
CtlResponse fail(std::string text) { return CtlResponse{1, std::move(text)}; }
CtlResponse ok(std::string text) { return CtlResponse{0, std::move(text)}; }

}  // namespace

Duetd::Duetd(DuetdOptions options) : opts_(std::move(options)) {}

Duetd::~Duetd() { stop(false); }

bool Duetd::start(std::string* error) {
  auto set_error = [error](std::string text) {
    if (error != nullptr) *error = std::move(text);
    return false;
  };
  socket_path_ = opts_.socket_path.empty() ? opts_.data_dir + "/duetd.sock" : opts_.socket_path;
  fabric_.emplace(build_fattree(FatTreeParams::scaled(opts_.containers, opts_.tors, opts_.cores)));

  DuetConfig cfg;
  cfg.smux_engine = opts_.engine;
  StoreOptions so;
  so.dir = opts_.data_dir;
  so.fsync = opts_.fsync;
  so.snapshot_every_ops = opts_.snapshot_every_ops;
  std::string open_error;
  store_ = PersistentController::open(*fabric_, cfg, FlowHasher{opts_.seed}, opts_.seed, so,
                                      &open_error);
  if (store_ == nullptr) return set_error("store: " + open_error);

  if (!store_->recovery().recovered) {
    // Fresh data dir: the SMux-pool deployment is itself op #1, so recovery
    // always re-drives it and never boots a controller with no backstop.
    Op deploy;
    deploy.kind = OpKind::kDeploySmuxes;
    deploy.aggregate = kVipAggregate;
    const auto& tors = fabric_->tors;
    for (const SwitchId t : {tors.front(), tors[tors.size() / 2], tors.back()}) {
      if (std::find(deploy.addrs.begin(), deploy.addrs.end(), t) == deploy.addrs.end()) {
        deploy.addrs.push_back(t);
      }
    }
    if (!store_->apply(std::move(deploy))) return set_error("failed to journal the deployment");
  }
  base_clock_us_ = store_->controller().clock_us();
  t0_ = std::chrono::steady_clock::now();

  runtime::MuxServerOptions mo;
  mo.listen.port = opts_.port;
  mo.workers = opts_.mux_workers == 0 ? 1 : opts_.mux_workers;
  mo.pin_cpus = opts_.pin_cpus;
  mo.fast_tier = opts_.fast_tier;
  mo.hasher = FlowHasher{opts_.seed};
  mo.vip_aggregate = kVipAggregate;
  mux_ = std::make_unique<runtime::MuxServer>(mo, cfg);

  // Rebuild the serving path from the recovered controller: every VIP's pool
  // into the worker replicas, an echo endpoint per DIP.
  for (const Ipv4Address vip : store_->controller().vip_addresses()) push_vip(vip);

  if (!dips_.start()) return set_error("failed to start the echo DIP pool");
  if (!mux_->start()) {
    dips_.shutdown();
    dips_.join();
    return set_error("failed to bind the serving socket");
  }
  // Replay contained an explicit fast-tier rebuild (a serving-plane
  // directive the controller no-ops): re-drive it now that the workers are
  // up, so the recovered hot-VIP set is re-admitted without waiting for the
  // next config churn.
  if (store_->recovery().fast_tier_rebuilds > 0) mux_->rebuild_fast_tier();

  std::string listen_error;
  listen_fd_ = ctl_listen(socket_path_, &listen_error);
  if (listen_fd_ < 0) {
    mux_->shutdown();
    mux_->join();
    dips_.shutdown();
    dips_.join();
    return set_error("ops socket: " + listen_error);
  }
  stop_accept_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  return true;
}

void Duetd::accept_loop() {
  while (!stop_accept_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    if (auto frame = ctl_recv_frame(cfd, kRequestTimeoutMs); frame.has_value()) {
      CtlResponse response;
      if (auto argv = decode_request(*frame); argv.has_value()) {
        response = handle(*argv);
      } else {
        response = usage("malformed request frame");
      }
      ctl_send_frame(cfd, encode_response(response), kRequestTimeoutMs);
    }
    ::close(cfd);
  }
}

double Duetd::next_t_us() {
  const auto elapsed = std::chrono::duration<double, std::micro>(
      std::chrono::steady_clock::now() - t0_);
  return base_clock_us_ + elapsed.count();
}

bool Duetd::ensure_dip_endpoint(Ipv4Address dip) {
  if (dip_at_.contains(dip)) return true;
  const auto at = dips_.add_dip(dip);
  if (!at.has_value()) {
    DUET_LOG_WARN << "duetd: failed to bind an echo endpoint for DIP " << dip.to_string();
    return false;
  }
  dip_at_.emplace(dip, *at);
  mux_->apply_dip_map(dip, *at);
  return true;
}

void Duetd::push_vip(Ipv4Address vip) {
  const auto dips = store_->controller().dips_of(vip);
  if (dips.empty()) {
    mux_->apply_vip_removal(vip);
    return;
  }
  for (const Ipv4Address dip : dips) ensure_dip_endpoint(dip);
  mux_->apply_vip_update(vip, dips, store_->controller().weights_of(vip));
}

CtlResponse Duetd::apply_checked(Op op, std::string ok_text) {
  op.t_us = next_t_us();
  if (!store_->apply(std::move(op))) {
    // WAL contract: the append failed, so the controller was NOT mutated.
    return fail("journal append failed; state unchanged");
  }
  return ok(std::move(ok_text));
}

CtlResponse Duetd::handle(const std::vector<std::string>& argv) {
  std::lock_guard<std::mutex> lock(op_mu_);
  if (argv.empty()) return usage("empty request");
  const std::string& cmd = argv[0];
  const auto& ctl = store_->controller();

  if (cmd == "ping") return ok("pong");

  if (cmd == "drain") {
    drain_.store(true, std::memory_order_release);
    return ok("draining");
  }

  if (cmd == "snapshot") {
    if (!store_->snapshot_now()) return fail("snapshot failed; previous snapshot+log remain valid");
    return ok("snapshot at seq " + std::to_string(store_->snapshot_seq()));
  }

  if (cmd == "stats") {
    const auto& rec = store_->recovery();
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "seq %llu | snapshot %llu | %llu ops since snapshot\n"
                  "vips %zu | smuxes %zu | serving 127.0.0.1:%u\n"
                  "recovered %s (snapshot seq %llu + %llu ops%s, %.2f ms)\n",
                  static_cast<unsigned long long>(store_->last_seq()),
                  static_cast<unsigned long long>(store_->snapshot_seq()),
                  static_cast<unsigned long long>(store_->ops_since_snapshot()), ctl.vip_count(),
                  ctl.smux_count(), unsigned{mux_->listen_endpoint().port},
                  rec.recovered ? "yes" : "no (fresh)",
                  static_cast<unsigned long long>(rec.snapshot_seq),
                  static_cast<unsigned long long>(rec.replayed),
                  rec.truncated_tail ? ", torn tail cut" : "", rec.recover_ms);
    std::string text{buf};
    const auto* rx = mux_->metrics().find_counter("duet.runtime.rx_packets");
    const auto* tx = mux_->metrics().find_counter("duet.runtime.tx_packets");
    const auto* fh = mux_->metrics().find_counter("duet.runtime.fast_tier.hits");
    const auto* fm = mux_->metrics().find_counter("duet.runtime.fast_tier.misses");
    const auto* fr = mux_->metrics().find_counter("duet.runtime.fast_tier.rebuilds");
    std::snprintf(buf, sizeof(buf),
                  "rx %llu | tx %llu | flows %zu | dip packets %llu\n"
                  "fast tier: %llu hits | %llu misses | %llu rebuilds",
                  static_cast<unsigned long long>(rx != nullptr ? rx->value() : 0),
                  static_cast<unsigned long long>(tx != nullptr ? tx->value() : 0),
                  mux_->flow_table_size(),
                  static_cast<unsigned long long>(dips_.total_packets()),
                  static_cast<unsigned long long>(fh != nullptr ? fh->value() : 0),
                  static_cast<unsigned long long>(fm != nullptr ? fm->value() : 0),
                  static_cast<unsigned long long>(fr != nullptr ? fr->value() : 0));
    return ok(text + buf);
  }

  if (cmd == "rebuild-fast-tier") {
    // Journal first (WAL contract), then kick the live workers. The op
    // records the VIP set serving at journal time; admission itself is
    // recomputed at rebuild from the replica's engine/port-rule/settledness
    // state, so replay converges on the same tier the original run had.
    Op op;
    op.kind = OpKind::kFastTierRebuild;
    for (const Ipv4Address v : ctl.vip_addresses()) op.addrs.push_back(v.value());
    const auto n = op.addrs.size();
    auto response = apply_checked(std::move(op),
                                  "fast tier rebuilding on all workers (" +
                                      std::to_string(n) + " candidate VIPs journaled)");
    if (response.ok()) mux_->rebuild_fast_tier();
    return response;
  }

  if (cmd == "audit") {
    const audit::InvariantAuditor auditor;
    auto report = auditor.audit(audit::SystemSnapshot::capture(ctl));
    report.merge(auditor.audit_journal(ctl.journal()));
    if (report.clean()) return ok("audit clean (" + std::to_string(
                                      audit::InvariantAuditor::invariants().size()) +
                                  " invariants)");
    std::string text = report.summary();
    for (const auto& v : report.violations) {
      text += "\n[" + v.invariant + "] " + v.message;
    }
    return fail(std::move(text));
  }

  // Everything below names a VIP as argv[1].
  if (argv.size() < 2) return usage(cmd + " requires a VIP argument");
  const auto vip = Ipv4Address::parse(argv[1]);
  if (!vip.has_value()) return usage("bad VIP address: " + argv[1]);
  const bool known = ctl.owner_of(*vip) != DuetController::Owner::kNone;

  if (cmd == "add-vip") {
    if (argv.size() < 3) return usage("add-vip VIP DIP...");
    if (known) return fail("VIP already exists: " + argv[1]);
    if (!kVipAggregate.contains(*vip)) {
      return fail("VIP outside the served aggregate " + kVipAggregate.to_string());
    }
    Op op;
    op.kind = OpKind::kAddVip;
    op.vip = *vip;
    for (std::size_t i = 2; i < argv.size(); ++i) {
      const auto dip = Ipv4Address::parse(argv[i]);
      if (!dip.has_value()) return usage("bad DIP address: " + argv[i]);
      op.addrs.push_back(dip->value());
    }
    auto response = apply_checked(std::move(op), "added " + argv[1] + " with " +
                                                    std::to_string(argv.size() - 2) +
                                                    " DIPs (on smux backstop)");
    if (response.ok()) push_vip(*vip);
    return response;
  }

  if (cmd == "add-dip" || cmd == "remove-dip") {
    if (argv.size() != 3) return usage(cmd + " VIP DIP");
    if (!known) return fail("unknown VIP: " + argv[1]);
    const auto dip = Ipv4Address::parse(argv[2]);
    if (!dip.has_value()) return usage("bad DIP address: " + argv[2]);
    const auto pool = ctl.dips_of(*vip);
    const bool have = std::find(pool.begin(), pool.end(), *dip) != pool.end();
    Op op;
    op.vip = *vip;
    op.dip = *dip;
    std::string text;
    if (cmd == "add-dip") {
      if (have) return fail("DIP already in the pool: " + argv[2]);
      op.kind = OpKind::kAddDip;
      text = "added DIP " + argv[2] + " (VIP bounced to smux backstop)";
    } else {
      if (!have) return fail("no such DIP in the pool: " + argv[2]);
      op.kind = OpKind::kRemoveDip;
      text = pool.size() == 1 ? "removed last DIP; VIP " + argv[1] + " removed"
                              : "removed DIP " + argv[2] + " (resilient hashing, no reshuffle)";
    }
    auto response = apply_checked(std::move(op), std::move(text));
    if (response.ok()) push_vip(*vip);
    return response;
  }

  if (cmd == "remove-vip") {
    if (!known) return fail("unknown VIP: " + argv[1]);
    Op op;
    op.kind = OpKind::kRemoveVip;
    op.vip = *vip;
    auto response = apply_checked(std::move(op), "removed " + argv[1]);
    if (response.ok()) push_vip(*vip);
    return response;
  }

  if (cmd == "set-engine") {
    if (argv.size() != 3) return usage("set-engine VIP stateful|stateless|clear");
    if (!known) return fail("unknown VIP: " + argv[1]);
    Op op;
    op.kind = OpKind::kSetEngineOverride;
    op.vip = *vip;
    if (argv[2] != "clear") {
      SmuxEngine engine;
      if (!parse_smux_engine(argv[2].c_str(), &engine)) {
        return usage("engine must be stateful, stateless, or clear");
      }
      op.engine = static_cast<std::uint8_t>(engine);
    }
    return apply_checked(std::move(op), "engine override: " + argv[2]);
  }

  if (cmd == "migrate") {
    if (argv.size() != 3) return usage("migrate VIP SWITCH|smux");
    if (!known) return fail("unknown VIP: " + argv[1]);
    Op op;
    op.kind = OpKind::kMigrateVip;
    op.vip = *vip;
    if (argv[2] != "smux") {
      const auto sw = parse_u32(argv[2]);
      if (!sw.has_value() || *sw >= fabric_->topo.switch_count()) {
        return usage("bad migration target: " + argv[2]);
      }
      op.sw = *sw;
    }
    auto response = apply_checked(std::move(op), "");
    if (!response.ok()) return response;
    // The §4.2 two-phase move ran inside apply; report where the VIP landed
    // (a rejecting target leaves it safely on the SMux backstop).
    if (const auto home = ctl.hmux_home(*vip); home.has_value()) {
      response.text = argv[1] + " now on hmux switch " + std::to_string(*home);
    } else {
      response.text = argv[1] + " now on the smux pool";
      if (argv[2] != "smux") response.status = 1;  // target rejected the VIP
    }
    return response;
  }

  return usage("unknown command: " + cmd);
}

void Duetd::stop(bool snapshot) {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_accept_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
  if (snapshot) {
    std::lock_guard<std::mutex> lock(op_mu_);
    if (!store_->snapshot_now()) {
      DUET_LOG_WARN << "duetd: shutdown snapshot failed; recovery will replay the op log";
    }
  }
  mux_->shutdown();
  mux_->join();
  dips_.shutdown();
  dips_.join();
}

}  // namespace duet::persist
