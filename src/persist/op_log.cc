#include "persist/op_log.h"

#include "duet/controller.h"

namespace duet::persist {

namespace {

constexpr std::uint8_t kOpFrame = 1;

void encode_demand(ByteWriter& w, const VipDemand& d) {
  w.u32(d.id);
  w.u32(d.vip.value());
  w.f64(d.total_gbps);
  w.u64(d.dip_count);
  w.u32(static_cast<std::uint32_t>(d.ingress_gbps.size()));
  for (const auto& [sw, gbps] : d.ingress_gbps) {
    w.u32(sw);
    w.f64(gbps);
  }
  w.u32(static_cast<std::uint32_t>(d.dip_tor_gbps.size()));
  for (const auto& [sw, gbps] : d.dip_tor_gbps) {
    w.u32(sw);
    w.f64(gbps);
  }
}

bool decode_demand(ByteReader& r, VipDemand& d) {
  d.id = r.u32().value_or(0);
  d.vip = Ipv4Address{r.u32().value_or(0)};
  d.total_gbps = r.f64().value_or(0.0);
  d.dip_count = static_cast<std::size_t>(r.u64().value_or(0));
  const std::uint32_t n_ingress = r.u32().value_or(0);
  if (!r.ok() || n_ingress > r.remaining() / 12) return false;
  d.ingress_gbps.reserve(n_ingress);
  for (std::uint32_t i = 0; i < n_ingress; ++i) {
    const std::uint32_t sw = r.u32().value_or(0);
    d.ingress_gbps.emplace_back(sw, r.f64().value_or(0.0));
  }
  const std::uint32_t n_tors = r.u32().value_or(0);
  if (!r.ok() || n_tors > r.remaining() / 12) return false;
  d.dip_tor_gbps.reserve(n_tors);
  for (std::uint32_t i = 0; i < n_tors; ++i) {
    const std::uint32_t sw = r.u32().value_or(0);
    d.dip_tor_gbps.emplace_back(sw, r.f64().value_or(0.0));
  }
  return r.ok();
}

std::vector<Ipv4Address> to_addresses(const std::vector<std::uint32_t>& raw) {
  std::vector<Ipv4Address> out;
  out.reserve(raw.size());
  for (const std::uint32_t v : raw) out.push_back(Ipv4Address{v});
  return out;
}

}  // namespace

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kDeploySmuxes: return "deploy-smuxes";
    case OpKind::kAddVip: return "add-vip";
    case OpKind::kRemoveVip: return "remove-vip";
    case OpKind::kAddDip: return "add-dip";
    case OpKind::kRemoveDip: return "remove-dip";
    case OpKind::kReportHealth: return "report-health";
    case OpKind::kInstallPortRule: return "install-port-rule";
    case OpKind::kRemovePortRule: return "remove-port-rule";
    case OpKind::kSetWeights: return "set-weights";
    case OpKind::kSetEngineOverride: return "set-engine";
    case OpKind::kRunEpoch: return "run-epoch";
    case OpKind::kSwitchFailure: return "switch-failure";
    case OpKind::kSmuxFailure: return "smux-failure";
    case OpKind::kMigrateVip: return "migrate-vip";
    case OpKind::kFastTierRebuild: return "rebuild-fast-tier";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_op(const Op& op) {
  ByteWriter w;
  w.u64(op.seq);
  w.f64(op.t_us);
  w.u8(static_cast<std::uint8_t>(op.kind));
  w.u32(op.vip.value());
  w.u32(op.dip.value());
  w.u32(op.sw);
  w.u16(op.port);
  w.u8(op.flag ? 1 : 0);
  w.u8(op.engine);
  w.u32(op.aggregate.address().value());
  w.u8(op.aggregate.length());
  w.u32(static_cast<std::uint32_t>(op.addrs.size()));
  for (const std::uint32_t a : op.addrs) w.u32(a);
  w.u32(static_cast<std::uint32_t>(op.weights.size()));
  for (const std::uint32_t v : op.weights) w.u32(v);
  w.u32(static_cast<std::uint32_t>(op.demands.size()));
  for (const VipDemand& d : op.demands) encode_demand(w, d);
  return std::move(w).take();
}

std::optional<Op> decode_op(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  Op op;
  op.seq = r.u64().value_or(0);
  op.t_us = r.f64().value_or(0.0);
  op.kind = static_cast<OpKind>(r.u8().value_or(0));
  op.vip = Ipv4Address{r.u32().value_or(0)};
  op.dip = Ipv4Address{r.u32().value_or(0)};
  op.sw = r.u32().value_or(kInvalidSwitch);
  op.port = r.u16().value_or(0);
  op.flag = r.u8().value_or(0) != 0;
  op.engine = r.u8().value_or(kEngineClear);
  const Ipv4Address agg_addr{r.u32().value_or(0)};
  const std::uint8_t agg_len = r.u8().value_or(0);
  if (agg_len > 32) return std::nullopt;
  op.aggregate = Ipv4Prefix{agg_addr, agg_len};
  const std::uint32_t n_addrs = r.u32().value_or(0);
  if (!r.ok() || n_addrs > r.remaining() / 4) return std::nullopt;
  op.addrs.reserve(n_addrs);
  for (std::uint32_t i = 0; i < n_addrs; ++i) op.addrs.push_back(r.u32().value_or(0));
  const std::uint32_t n_weights = r.u32().value_or(0);
  if (!r.ok() || n_weights > r.remaining() / 4) return std::nullopt;
  op.weights.reserve(n_weights);
  for (std::uint32_t i = 0; i < n_weights; ++i) op.weights.push_back(r.u32().value_or(0));
  const std::uint32_t n_demands = r.u32().value_or(0);
  if (!r.ok()) return std::nullopt;
  op.demands.resize(n_demands);
  for (std::uint32_t i = 0; i < n_demands; ++i) {
    if (!decode_demand(r, op.demands[i])) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return op;
}

bool apply_op(DuetController& controller, const Op& op) {
  // The journal clock is part of the op: replay stamps telemetry events at
  // the times they originally carried, keeping replayed journals comparable.
  controller.set_clock_us(op.t_us);
  switch (op.kind) {
    case OpKind::kDeploySmuxes: {
      std::vector<SwitchId> tors(op.addrs.begin(), op.addrs.end());
      controller.deploy_smuxes(tors, op.aggregate);
      return true;
    }
    case OpKind::kAddVip:
      controller.add_vip(op.vip, to_addresses(op.addrs));
      return true;
    case OpKind::kRemoveVip:
      controller.remove_vip(op.vip);
      return true;
    case OpKind::kAddDip:
      controller.add_dip(op.vip, op.dip);
      return true;
    case OpKind::kRemoveDip:
      controller.remove_dip(op.vip, op.dip);
      return true;
    case OpKind::kReportHealth:
      controller.report_dip_health(op.vip, op.dip, op.flag);
      return true;
    case OpKind::kInstallPortRule:
      controller.install_port_rule(op.vip, op.port, to_addresses(op.addrs));
      return true;
    case OpKind::kRemovePortRule:
      controller.remove_port_rule(op.vip, op.port);
      return true;
    case OpKind::kSetWeights:
      controller.set_dip_weights(op.vip, op.weights);
      return true;
    case OpKind::kSetEngineOverride:
      controller.set_engine_override(
          op.vip, op.engine == kEngineClear
                      ? std::nullopt
                      : std::optional<SmuxEngine>(static_cast<SmuxEngine>(op.engine)));
      return true;
    case OpKind::kRunEpoch:
      controller.run_epoch(op.demands, op.flag);
      return true;
    case OpKind::kSwitchFailure:
      controller.handle_switch_failure(op.sw);
      return true;
    case OpKind::kSmuxFailure:
      controller.handle_smux_failure(op.sw);
      return true;
    case OpKind::kMigrateVip:
      controller.migrate_vip(op.vip, op.sw == kInvalidSwitch
                                         ? std::nullopt
                                         : std::optional<SwitchId>(op.sw));
      return true;
    case OpKind::kFastTierRebuild:
      // Serving-plane directive: no controller state changes. daemon.cc
      // notices it during replay and re-requests the rebuild on the live mux
      // once the workers are up.
      return true;
  }
  return false;  // version skew: a kind this build does not know
}

std::optional<OpLog> OpLog::open(const std::string& path, FsyncPolicy policy,
                                 std::uint64_t next_seq) {
  auto frames = read_frames(path, kOpLogMagic);
  std::optional<std::uint64_t> truncate_to;
  if (frames.ok() && frames.truncated_tail) truncate_to = frames.valid_bytes;
  auto w = FrameWriter::open(path, kOpLogMagic, policy, truncate_to);
  if (!w.has_value()) return std::nullopt;
  OpLog log;
  log.writer_ = std::move(*w);
  log.next_seq_ = next_seq;
  return log;
}

std::optional<std::uint64_t> OpLog::append(Op op) {
  op.seq = next_seq_;
  // The seq is burned even when the append fails: after a write-ok/fsync-fail
  // the record may well be in the file, and re-stamping its seq on the next
  // (acknowledged) op would make replay drop the acknowledged record as a
  // duplicate. Gaps are harmless — replay only requires monotonicity.
  ++next_seq_;
  if (!writer_.append(kOpFrame, encode_op(op))) return std::nullopt;
  ++appended_;
  return op.seq;
}

ReplayResult replay_ops(const std::string& path) {
  ReplayResult result;
  auto frames = read_frames(path, kOpLogMagic);
  if (!frames.ok()) {
    result.error = std::move(frames.error);
    return result;
  }
  result.truncated_tail = frames.truncated_tail;
  std::uint64_t last_seq = 0;
  for (const Frame& f : frames.frames) {
    if (f.type != kOpFrame) continue;
    auto op = decode_op(f.payload);
    if (!op.has_value()) {
      // Parses are versioned by the magic; an undecodable payload behind a
      // valid CRC means writer/reader skew. Treat like a torn tail.
      result.truncated_tail = true;
      break;
    }
    if (op->seq <= last_seq) continue;  // duplicate / regression — drop
    last_seq = op->seq;
    result.ops.push_back(std::move(*op));
  }
  return result;
}

}  // namespace duet::persist
