// duetd — the durable controller daemon.
//
// One process wires together the whole Duet control/data split:
//   * a PersistentController (persist/store.h): every mutation write-ahead
//     journaled, periodic snapshots, crash recovery with a boot audit;
//   * a MuxServer (runtime/mux_server.h): the live SMux worker pool on a real
//     UDP socket, kept in sync with the controller's VIP→DIP state via the
//     tick-applied live-update queues;
//   * a FakeDipPool: in-process echo backends standing in for real DIPs —
//     every DIP the controller knows gets a loopback endpoint, mapped into
//     the serving path (runtime-local state, deliberately NOT journaled: on
//     restart the pool re-binds and the mapping is rebuilt from the
//     recovered controller);
//   * an ops socket (persist/ctl_protocol.h): duetctl's add-vip / add-dip /
//     migrate / stats / audit / snapshot / drain subcommands, one request
//     per connection, served sequentially so mutations are totally ordered.
//
// Mutation path: parse + validate the request -> build the Op ->
// PersistentController::apply (journal durably, THEN mutate) -> render the
// VIP's new pool into the MuxServer. A crash at any point leaves the journal
// holding exactly the acknowledged prefix; the serving path is rebuilt from
// the recovered controller on restart, so it can never disagree with
// recovered state for longer than a boot.
//
// Shutdown: stop(snapshot=true) is the SIGTERM path — snapshot first (so the
// next boot replays nothing), then drain the serving path. kill -9 is the
// *tested* path: recovery replays the op log and must land bit-identical
// (tests/persist_test.cc, scripts/daemon_smoke.sh).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "duet/config.h"
#include "persist/ctl_protocol.h"
#include "persist/store.h"
#include "runtime/fake_dip.h"
#include "runtime/mux_server.h"
#include "topo/fattree.h"

namespace duet::persist {

struct DuetdOptions {
  std::string data_dir;     // must exist; snapshot/oplog/socket live here
  std::string socket_path;  // "" = data_dir + "/duetd.sock"
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  std::uint64_t snapshot_every_ops = 256;  // 0 = manual `duetctl snapshot` only

  // The modeled fabric the controller plans against. MUST stay identical
  // across restarts of one data_dir: recovery re-drives the deterministic
  // controller from these construction inputs.
  std::size_t containers = 2, tors = 4, cores = 2;
  std::uint64_t seed = 1;
  SmuxEngine engine = SmuxEngine::kStateful;

  // Serving path.
  std::uint16_t port = 0;  // UDP listen port (0 = kernel-assigned)
  std::size_t mux_workers = 1;
  // Pin worker i to CPU (i mod online CPUs); see MuxServerOptions::pin_cpus.
  bool pin_cpus = false;
  // In-process hot-VIP fast tier (DESIGN.md §17); on by default, admission
  // is automatic so a stateful deployment is unaffected either way.
  bool fast_tier = true;
};

class Duetd {
 public:
  explicit Duetd(DuetdOptions options);
  ~Duetd();
  Duetd(const Duetd&) = delete;
  Duetd& operator=(const Duetd&) = delete;

  // Recovers (or freshly initializes) the store, rebuilds the serving path
  // from the recovered state, starts the worker pool, the echo DIPs, and the
  // ops socket. False with *error set on any failure — including a recovered
  // state that fails its boot audit.
  bool start(std::string* error);

  // True once a `drain` request has been accepted; the caller's main loop
  // exits and calls stop().
  bool drain_requested() const noexcept {
    return drain_.load(std::memory_order_acquire);
  }

  // Stops the ops socket, optionally snapshots (the SIGTERM path — the next
  // boot then replays zero ops), and drains the serving path. Idempotent.
  void stop(bool snapshot);

  // Handles one decoded ops request. Public so in-process tests can drive
  // the full command surface without a socket. Thread-safe (one op at a
  // time).
  CtlResponse handle(const std::vector<std::string>& argv);

  runtime::Endpoint listen_endpoint() const { return mux_->listen_endpoint(); }
  const std::string& socket_path() const noexcept { return socket_path_; }
  PersistentController& store() noexcept { return *store_; }
  runtime::MuxServer& mux() noexcept { return *mux_; }
  runtime::FakeDipPool& dip_pool() noexcept { return dips_; }

 private:
  void accept_loop();
  // Binds an echo endpoint for `dip` (if not yet bound) and maps it into the
  // serving path. False on bind failure.
  bool ensure_dip_endpoint(Ipv4Address dip);
  // Renders the controller's current pool for `vip` into the MuxServer
  // (update or removal), binding echo endpoints for any new DIPs.
  void push_vip(Ipv4Address vip);
  // Journal clock for new ops: monotone continuation of the recovered clock.
  double next_t_us();
  CtlResponse apply_checked(Op op, std::string ok_text);

  DuetdOptions opts_;
  std::string socket_path_;
  std::optional<FatTree> fabric_;
  std::unique_ptr<PersistentController> store_;
  std::unique_ptr<runtime::MuxServer> mux_;
  runtime::FakeDipPool dips_;
  std::unordered_map<Ipv4Address, runtime::Endpoint> dip_at_;

  std::mutex op_mu_;  // serializes handle() bodies (ops total order)
  double base_clock_us_ = 0.0;
  std::chrono::steady_clock::time_point t0_{};

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stop_accept_{false};
  std::atomic<bool> drain_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace duet::persist
