// Canonical snapshot of a DuetController's LOGICAL state.
//
// A StateImage is the fixed point of recovery: capture() reads every field
// that determines future controller behaviour, encode() lays it out in a
// canonical order (maps sorted, doubles as IEEE-754 bits), and restore()
// rebuilds a FRESH controller to an equivalent point by re-driving the same
// assignment-updater primitives normal operation uses — SMux pool deployment,
// SMux table syncs, HMux installs, BGP announcements. Fanout plans are
// restored VERBATIM (re-planning would draw different TIP addresses, since
// the live controller's TIP cursor had advanced); next_tip_/next_vip_id_ are
// restored after placement for the same reason.
//
// What the image deliberately EXCLUDES:
//   * telemetry (journal + metrics) — history, not state;
//   * per-flow soft state (SMux flow-table pins, stateless bucket stamps) —
//     connections do not survive a mux process restart in the paper's design
//     either (§5.1: SMux failure terminates its flows' stickiness);
//   * the physical HMux object set — ensure_hmux() creates switch objects as
//     a side effect of *scanning* helper candidates, so the object set is
//     history-dependent while being behaviourally inert when empty.
//
// Equality over encode_state() bytes is therefore the contract "a recovered
// controller continues exactly like one that never crashed" — the recovery
// property test drives both to the same op and compares the bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "duet/assignment.h"
#include "duet/config.h"
#include "duet/fanout.h"
#include "net/ip.h"
#include "persist/op_log.h"
#include "topo/topology.h"

namespace duet::persist {

inline constexpr std::string_view kSnapshotMagic = "DUETSNP1";

struct SmuxImage {
  std::uint32_t id = 0;
  SwitchId tor = kInvalidSwitch;
  bool alive = true;

  friend bool operator==(const SmuxImage&, const SmuxImage&) = default;
};

struct VipImage {
  VipId id = 0;
  Ipv4Address vip;
  std::vector<Ipv4Address> dips;  // verbatim order (it fixes the slot layout)
  std::optional<SwitchId> home;
  std::optional<FanoutPlan> fanout;  // verbatim (TIPs are already allocated)
  std::vector<std::uint32_t> weights;
  // Sorted by port on capture.
  std::vector<std::pair<std::uint16_t, std::vector<Ipv4Address>>> port_rules;
  std::uint8_t engine_override = kEngineClear;  // SmuxEngine or kEngineClear
};

struct StateImage {
  std::uint64_t seq = 0;  // last applied op (stamped by the store, 0 in digests)
  double clock_us = 0.0;
  Ipv4Prefix aggregate;
  VipId next_vip_id = 0;
  std::uint32_t next_tip = 0;
  std::uint64_t rng_state = 0;
  std::vector<SmuxImage> smuxes;        // id order (== deployment order)
  std::vector<SwitchId> dead_switches;  // sorted
  bool have_assignment = false;
  Assignment assignment;  // on_smux verbatim; placement canonicalized on encode
  std::vector<VipImage> vips;  // id order
  // CRC over the sorted converged RIB — restore() rebuilds the routes and
  // verifies it reproduced them exactly.
  std::uint32_t routing_digest = 0;
};

std::vector<std::uint8_t> encode_image(const StateImage& image);
std::optional<StateImage> decode_image(std::span<const std::uint8_t> bytes);

// Friend-access bridge into DuetController's private state (declared a friend
// in duet/controller.h). All persistence code funnels through these three.
struct ControllerAccess {
  static StateImage capture(const DuetController& controller);
  // `controller` must be freshly constructed (no smuxes, no VIPs) with the
  // SAME fabric/config/hasher/seed the image's controller had. DUET_CHECKs
  // that the rebuilt routing state matches the image's digest.
  static void restore(DuetController& controller, const StateImage& image);
  static std::uint32_t routing_digest(const DuetController& controller);
};

// The canonical logical-state bytes (encode of a capture with seq forced to
// 0): two controllers with equal encode_state() continue identically.
std::vector<std::uint8_t> encode_state(const DuetController& controller);

// Snapshot file = one frame of encode_image bytes, atomically replaced.
bool write_image(const std::string& path, const StateImage& image);
struct ReadImageResult {
  std::optional<StateImage> image;
  std::string error;  // empty when image is set OR the file simply absent

  bool missing() const noexcept { return !image.has_value() && error.empty(); }
};
ReadImageResult read_image(const std::string& path);

}  // namespace duet::persist
