#include "persist/store.h"

#include <chrono>
#include <cstdio>

#include "audit/invariants.h"
#include "audit/snapshot.h"
#include "util/logging.h"

namespace duet::persist {

namespace {

bool is_missing_file(const std::string& error) {
  return error.rfind("cannot open", 0) == 0;
}

}  // namespace

std::unique_ptr<PersistentController> PersistentController::open(
    const FatTree& fabric, DuetConfig config, FlowHasher hasher, std::uint64_t seed,
    StoreOptions options, std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  auto fail = [&](std::string why) -> std::unique_ptr<PersistentController> {
    if (error != nullptr) *error = std::move(why);
    return nullptr;
  };

  // Private ctor keeps open() the only entry, so make_unique can't reach it.
  auto pc = std::unique_ptr<PersistentController>(new PersistentController());  // lint: allow-new
  pc->options_ = std::move(options);
  pc->controller_ = std::make_unique<DuetController>(fabric, config, hasher, seed);

  // 1. Snapshot (if any).
  auto snap = read_image(pc->snapshot_path());
  if (!snap.error.empty()) return fail(snap.error);
  if (snap.image.has_value()) {
    ControllerAccess::restore(*pc->controller_, *snap.image);
    pc->snapshot_seq_ = snap.image->seq;
    pc->last_seq_ = snap.image->seq;
    pc->recovery_.recovered = true;
    pc->recovery_.snapshot_seq = snap.image->seq;
  }

  // 2. Op replay. Ops the snapshot already contains (seq <= snapshot.seq)
  // are skipped — the crash window between "snapshot written" and "op log
  // rotated" leaves exactly such a prefix behind.
  auto replay = replay_ops(pc->oplog_path());
  if (!replay.ok() && !is_missing_file(replay.error)) return fail(replay.error);
  pc->recovery_.truncated_tail = replay.truncated_tail;
  for (const Op& op : replay.ops) {
    if (op.seq <= pc->snapshot_seq_) continue;
    if (!apply_op(*pc->controller_, op)) {
      return fail("op log contains an unknown op kind (version skew) at seq " +
                  std::to_string(op.seq));
    }
    pc->last_seq_ = op.seq;
    ++pc->recovery_.replayed;
    if (op.kind == OpKind::kFastTierRebuild) ++pc->recovery_.fast_tier_rebuilds;
    pc->recovery_.recovered = true;
  }

  // 3. Boot audit: all 16 invariants over the recovered structures plus the
  // journal's §4.2 temporal replay. A state that fails is not served.
  {
    audit::InvariantAuditor auditor(audit::AuditOptions{/*expect_converged_placement=*/true});
    audit::AuditReport report =
        auditor.audit(audit::SystemSnapshot::capture(*pc->controller_));
    report.merge(auditor.audit_journal(pc->controller_->journal()));
    pc->recovery_.audit_summary = report.clean() ? "clean" : report.summary();
    if (!report.clean()) {
      return fail("boot audit failed: " + report.summary());
    }
  }

  // 4. Reopen the log for appending (repairing any torn tail in place).
  pc->oplog_ = OpLog::open(pc->oplog_path(), pc->options_.fsync, pc->last_seq_ + 1);
  if (!pc->oplog_.has_value()) {
    return fail("cannot open op log for append: " + pc->oplog_path());
  }

  pc->recovery_.recover_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  // 5. Telemetry: the recovery event + persist gauges.
  auto& c = *pc->controller_;
  c.journal().record(telemetry::Event{
      c.clock_us(), telemetry::EventKind::kPersistRecover, {}, {}, telemetry::kNoSwitch,
      pc->recovery_.snapshot_seq, pc->recovery_.replayed,
      pc->recovery_.truncated_tail ? 1u : 0u,
      pc->recovery_.recovered ? "recovered" : "fresh"});
  auto& reg = c.metrics();
  reg.gauge("duet.persist.recovered").set(pc->recovery_.recovered ? 1.0 : 0.0);
  reg.gauge("duet.persist.snapshot_seq").set(static_cast<double>(pc->snapshot_seq_));
  reg.gauge("duet.persist.replayed_ops").set(static_cast<double>(pc->recovery_.replayed));
  reg.gauge("duet.persist.recover_ms").set(pc->recovery_.recover_ms);
  if (pc->recovery_.truncated_tail) reg.counter("duet.persist.torn_tails").inc();
  return pc;
}

bool PersistentController::apply(Op op) {
  // WAL order: durable first, applied second. A false return means the op
  // never happened — the controller was not touched.
  const auto seq = oplog_->append(op);
  if (!seq.has_value()) return false;
  op.seq = *seq;
  const bool dispatched = apply_op(*controller_, op);
  DUET_CHECK(dispatched) << "locally built op with unknown kind";
  last_seq_ = *seq;
  controller_->metrics().counter("duet.persist.ops_applied").inc();
  if (options_.snapshot_every_ops > 0 && ops_since_snapshot() >= options_.snapshot_every_ops) {
    snapshot_now();
  }
  return true;
}

bool PersistentController::snapshot_now() {
  StateImage image = ControllerAccess::capture(*controller_);
  image.seq = last_seq_;
  if (!write_image(snapshot_path(), image)) {
    DUET_LOG_ERROR << "snapshot write failed; keeping previous snapshot + op log";
    return false;
  }
  snapshot_seq_ = last_seq_;
  // Restart the op log: everything up to snapshot_seq_ is now in the image.
  // A crash anywhere in this window is safe — replay skips seq <= snapshot
  // seq, and a missing log is an empty log.
  oplog_.reset();  // close the fd before unlinking
  std::remove(oplog_path().c_str());
  oplog_ = OpLog::open(oplog_path(), options_.fsync, last_seq_ + 1);
  DUET_CHECK(oplog_.has_value()) << "cannot restart op log " << oplog_path();
  auto& reg = controller_->metrics();
  reg.counter("duet.persist.snapshots").inc();
  reg.gauge("duet.persist.snapshot_seq").set(static_cast<double>(snapshot_seq_));
  return true;
}

}  // namespace duet::persist
