#include "persist/state_image.h"

#include <algorithm>
#include <unordered_set>

#include "duet/controller.h"
#include "util/logging.h"

namespace duet::persist {

namespace {

constexpr std::uint8_t kImageFrame = 1;
constexpr std::uint32_t kNoHome = kInvalidSwitch;

void encode_assignment(ByteWriter& w, const Assignment& a) {
  std::vector<std::pair<VipId, SwitchId>> placement(a.placement.begin(), a.placement.end());
  std::sort(placement.begin(), placement.end());
  w.u32(static_cast<std::uint32_t>(placement.size()));
  for (const auto& [vip_id, sw] : placement) {
    w.u32(vip_id);
    w.u32(sw);
  }
  w.u32(static_cast<std::uint32_t>(a.on_smux.size()));
  for (const VipId v : a.on_smux) w.u32(v);
  w.f64(a.hmux_gbps);
  w.f64(a.smux_gbps);
  w.f64(a.mru);
  w.u32(static_cast<std::uint32_t>(a.link_load_gbps.size()));
  for (const double g : a.link_load_gbps) w.f64(g);
  w.u32(static_cast<std::uint32_t>(a.switch_dips_used.size()));
  for (const std::size_t n : a.switch_dips_used) w.u64(n);
}

bool decode_assignment(ByteReader& r, Assignment& a) {
  const std::uint32_t n_placement = r.u32().value_or(0);
  if (!r.ok() || n_placement > r.remaining() / 8) return false;
  for (std::uint32_t i = 0; i < n_placement; ++i) {
    const VipId vip_id = r.u32().value_or(0);
    a.placement.emplace(vip_id, r.u32().value_or(0));
  }
  const std::uint32_t n_smux = r.u32().value_or(0);
  if (!r.ok() || n_smux > r.remaining() / 4) return false;
  a.on_smux.reserve(n_smux);
  for (std::uint32_t i = 0; i < n_smux; ++i) a.on_smux.push_back(r.u32().value_or(0));
  a.hmux_gbps = r.f64().value_or(0.0);
  a.smux_gbps = r.f64().value_or(0.0);
  a.mru = r.f64().value_or(0.0);
  const std::uint32_t n_links = r.u32().value_or(0);
  if (!r.ok() || n_links > r.remaining() / 8) return false;
  a.link_load_gbps.reserve(n_links);
  for (std::uint32_t i = 0; i < n_links; ++i) a.link_load_gbps.push_back(r.f64().value_or(0.0));
  const std::uint32_t n_dips = r.u32().value_or(0);
  if (!r.ok() || n_dips > r.remaining() / 8) return false;
  a.switch_dips_used.reserve(n_dips);
  for (std::uint32_t i = 0; i < n_dips; ++i) {
    a.switch_dips_used.push_back(static_cast<std::size_t>(r.u64().value_or(0)));
  }
  return r.ok();
}

void encode_vip(ByteWriter& w, const VipImage& v) {
  w.u32(v.id);
  w.u32(v.vip.value());
  w.u32(static_cast<std::uint32_t>(v.dips.size()));
  for (const Ipv4Address d : v.dips) w.u32(d.value());
  w.u32(v.home.value_or(kNoHome));
  w.u8(v.fanout.has_value() ? 1 : 0);
  if (v.fanout.has_value()) {
    w.u32(v.fanout->vip.value());
    w.u32(static_cast<std::uint32_t>(v.fanout->partitions.size()));
    for (const FanoutPartition& p : v.fanout->partitions) {
      w.u32(p.tip.value());
      w.u32(p.host_switch);
      w.u32(static_cast<std::uint32_t>(p.dips.size()));
      for (const Ipv4Address d : p.dips) w.u32(d.value());
    }
  }
  w.u32(static_cast<std::uint32_t>(v.weights.size()));
  for (const std::uint32_t x : v.weights) w.u32(x);
  w.u32(static_cast<std::uint32_t>(v.port_rules.size()));
  for (const auto& [port, dips] : v.port_rules) {
    w.u16(port);
    w.u32(static_cast<std::uint32_t>(dips.size()));
    for (const Ipv4Address d : dips) w.u32(d.value());
  }
  w.u8(v.engine_override);
}

bool decode_vip(ByteReader& r, VipImage& v) {
  v.id = r.u32().value_or(0);
  v.vip = Ipv4Address{r.u32().value_or(0)};
  const std::uint32_t n_dips = r.u32().value_or(0);
  if (!r.ok() || n_dips > r.remaining() / 4) return false;
  v.dips.reserve(n_dips);
  for (std::uint32_t i = 0; i < n_dips; ++i) v.dips.push_back(Ipv4Address{r.u32().value_or(0)});
  const std::uint32_t home = r.u32().value_or(kNoHome);
  if (home != kNoHome) v.home = home;
  if (r.u8().value_or(0) != 0) {
    FanoutPlan plan;
    plan.vip = Ipv4Address{r.u32().value_or(0)};
    const std::uint32_t n_parts = r.u32().value_or(0);
    if (!r.ok() || n_parts > r.remaining() / 12) return false;
    for (std::uint32_t i = 0; i < n_parts; ++i) {
      FanoutPartition p;
      p.tip = Ipv4Address{r.u32().value_or(0)};
      p.host_switch = r.u32().value_or(kInvalidSwitch);
      const std::uint32_t n = r.u32().value_or(0);
      if (!r.ok() || n > r.remaining() / 4) return false;
      p.dips.reserve(n);
      for (std::uint32_t j = 0; j < n; ++j) p.dips.push_back(Ipv4Address{r.u32().value_or(0)});
      plan.partitions.push_back(std::move(p));
    }
    v.fanout = std::move(plan);
  }
  const std::uint32_t n_weights = r.u32().value_or(0);
  if (!r.ok() || n_weights > r.remaining() / 4) return false;
  v.weights.reserve(n_weights);
  for (std::uint32_t i = 0; i < n_weights; ++i) v.weights.push_back(r.u32().value_or(0));
  const std::uint32_t n_rules = r.u32().value_or(0);
  if (!r.ok() || n_rules > r.remaining() / 6) return false;
  for (std::uint32_t i = 0; i < n_rules; ++i) {
    const std::uint16_t port = r.u16().value_or(0);
    const std::uint32_t n = r.u32().value_or(0);
    if (!r.ok() || n > r.remaining() / 4) return false;
    std::vector<Ipv4Address> dips;
    dips.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) dips.push_back(Ipv4Address{r.u32().value_or(0)});
    v.port_rules.emplace_back(port, std::move(dips));
  }
  v.engine_override = r.u8().value_or(kEngineClear);
  return r.ok();
}

}  // namespace

std::vector<std::uint8_t> encode_image(const StateImage& image) {
  ByteWriter w;
  w.u64(image.seq);
  w.f64(image.clock_us);
  w.u32(image.aggregate.address().value());
  w.u8(image.aggregate.length());
  w.u32(image.next_vip_id);
  w.u32(image.next_tip);
  w.u64(image.rng_state);
  w.u32(static_cast<std::uint32_t>(image.smuxes.size()));
  for (const SmuxImage& s : image.smuxes) {
    w.u32(s.id);
    w.u32(s.tor);
    w.u8(s.alive ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(image.dead_switches.size()));
  for (const SwitchId s : image.dead_switches) w.u32(s);
  w.u8(image.have_assignment ? 1 : 0);
  encode_assignment(w, image.assignment);
  w.u32(static_cast<std::uint32_t>(image.vips.size()));
  for (const VipImage& v : image.vips) encode_vip(w, v);
  w.u32(image.routing_digest);
  return std::move(w).take();
}

std::optional<StateImage> decode_image(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  StateImage img;
  img.seq = r.u64().value_or(0);
  img.clock_us = r.f64().value_or(0.0);
  const Ipv4Address agg_addr{r.u32().value_or(0)};
  const std::uint8_t agg_len = r.u8().value_or(0);
  if (agg_len > 32) return std::nullopt;
  img.aggregate = Ipv4Prefix{agg_addr, agg_len};
  img.next_vip_id = r.u32().value_or(0);
  img.next_tip = r.u32().value_or(0);
  img.rng_state = r.u64().value_or(0);
  const std::uint32_t n_smux = r.u32().value_or(0);
  if (!r.ok() || n_smux > r.remaining() / 9) return std::nullopt;
  for (std::uint32_t i = 0; i < n_smux; ++i) {
    SmuxImage s;
    s.id = r.u32().value_or(0);
    s.tor = r.u32().value_or(kInvalidSwitch);
    s.alive = r.u8().value_or(0) != 0;
    img.smuxes.push_back(s);
  }
  const std::uint32_t n_dead = r.u32().value_or(0);
  if (!r.ok() || n_dead > r.remaining() / 4) return std::nullopt;
  for (std::uint32_t i = 0; i < n_dead; ++i) img.dead_switches.push_back(r.u32().value_or(0));
  img.have_assignment = r.u8().value_or(0) != 0;
  if (!decode_assignment(r, img.assignment)) return std::nullopt;
  const std::uint32_t n_vips = r.u32().value_or(0);
  if (!r.ok()) return std::nullopt;
  img.vips.resize(n_vips);
  for (std::uint32_t i = 0; i < n_vips; ++i) {
    if (!decode_vip(r, img.vips[i])) return std::nullopt;
  }
  img.routing_digest = r.u32().value_or(0);
  if (!r.done()) return std::nullopt;
  return img;
}

std::uint32_t ControllerAccess::routing_digest(const DuetController& c) {
  // View 0 stands for all views: the controller only uses converged-view
  // mutators, so every RIB is identical.
  auto routes = c.routing_.rib(0).routes();
  std::vector<std::tuple<std::uint32_t, std::uint8_t, SwitchId>> sorted;
  sorted.reserve(routes.size());
  for (const auto& [prefix, origin] : routes) {
    sorted.emplace_back(prefix.address().value(), prefix.length(), origin);
  }
  std::sort(sorted.begin(), sorted.end());
  ByteWriter w;
  for (const auto& [addr, len, origin] : sorted) {
    w.u32(addr);
    w.u8(len);
    w.u32(origin);
  }
  return crc32(w.bytes());
}

StateImage ControllerAccess::capture(const DuetController& c) {
  StateImage img;
  img.clock_us = c.clock_us_;
  img.aggregate = c.aggregate_;
  img.next_vip_id = c.next_vip_id_;
  img.next_tip = c.next_tip_;
  img.rng_state = c.rng_.state();
  for (const auto& inst : c.smuxes_) {
    img.smuxes.push_back(SmuxImage{inst.id, inst.tor, inst.alive});
  }
  img.dead_switches.assign(c.dead_switches_.begin(), c.dead_switches_.end());
  std::sort(img.dead_switches.begin(), img.dead_switches.end());
  img.have_assignment = c.have_assignment_;
  img.assignment = c.current_;
  for (const auto& [vip, rec] : c.vips_) {
    VipImage v;
    v.id = rec.id;
    v.vip = rec.vip;
    v.dips = rec.dips;
    v.home = rec.home;
    v.fanout = rec.fanout;
    v.weights = rec.weights;
    v.port_rules.assign(rec.port_rules.begin(), rec.port_rules.end());
    std::sort(v.port_rules.begin(), v.port_rules.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (rec.engine_override.has_value()) {
      v.engine_override = static_cast<std::uint8_t>(*rec.engine_override);
    }
    img.vips.push_back(std::move(v));
  }
  std::sort(img.vips.begin(), img.vips.end(),
            [](const VipImage& a, const VipImage& b) { return a.id < b.id; });
  img.routing_digest = routing_digest(c);
  return img;
}

void ControllerAccess::restore(DuetController& c, const StateImage& image) {
  DUET_CHECK(c.smuxes_.empty() && c.vips_.empty() && c.hmuxes_.empty())
      << "restore requires a freshly constructed controller";
  c.clock_us_ = image.clock_us;

  // SMux pool: deploy in id order (ids are assigned by position), then
  // replay deaths. Both paths journal BGP aggregate events like live
  // operation did, keeping the journal auditor's announcer replay balanced.
  if (!image.smuxes.empty()) {
    std::vector<SwitchId> tors;
    tors.reserve(image.smuxes.size());
    for (std::size_t i = 0; i < image.smuxes.size(); ++i) {
      DUET_CHECK(image.smuxes[i].id == i) << "non-contiguous SMux ids in image";
      tors.push_back(image.smuxes[i].tor);
    }
    c.deploy_smuxes(tors, image.aggregate);
    for (const SmuxImage& s : image.smuxes) {
      if (!s.alive) c.handle_smux_failure(s.id);
    }
  } else {
    c.aggregate_ = image.aggregate;
  }
  c.dead_switches_ =
      std::unordered_set<SwitchId>(image.dead_switches.begin(), image.dead_switches.end());

  // VIP records: every VIP lives on the SMuxes first (§5.2), exactly like
  // add_vip, then HMux placements land below.
  for (const VipImage& v : image.vips) {
    DuetController::VipRecord rec;
    rec.id = v.id;
    rec.vip = v.vip;
    rec.dips = v.dips;
    rec.weights = v.weights;
    for (const auto& [port, dips] : v.port_rules) rec.port_rules[port] = dips;
    if (v.engine_override != kEngineClear) {
      rec.engine_override = static_cast<SmuxEngine>(v.engine_override);
    }
    c.vip_by_id_.emplace(rec.id, rec.vip);
    c.sync_smuxes(rec);  // applies pools, port rules, and the engine pin
    c.vips_.emplace(v.vip, std::move(rec));
  }

  // Placements, in id order. Fanout plans install verbatim; re-planning
  // would draw fresh TIPs from a cursor the original controller had already
  // advanced past.
  for (const VipImage& v : image.vips) {
    if (!v.home.has_value()) continue;
    auto& rec = c.record(v.vip);
    const SwitchId target = *v.home;
    if (v.fanout.has_value()) {
      std::unordered_map<SwitchId, SwitchDataPlane*> dps;
      for (const FanoutPartition& part : v.fanout->partitions) {
        dps[part.host_switch] = &c.ensure_hmux(part.host_switch).dataplane();
      }
      DUET_CHECK(install_fanout(*v.fanout, c.ensure_hmux(target).dataplane(), dps))
          << "fanout re-install failed for VIP " << v.vip.to_string();
      for (const FanoutPartition& part : v.fanout->partitions) {
        c.routing_.announce_everywhere(Ipv4Prefix::host_route(part.tip), part.host_switch);
      }
      c.routing_.announce_everywhere(Ipv4Prefix::host_route(v.vip), target);
      c.journal_event(telemetry::EventKind::kBgpAnnounce, v.vip, {}, target,
                      "fanout, " + std::to_string(v.fanout->partitions.size()) +
                          " TIP partitions (restored)");
      c.journal_event(telemetry::EventKind::kVipPlaced, v.vip, {}, target);
      rec.fanout = *v.fanout;
      rec.home = target;
    } else {
      Hmux& hmux = c.ensure_hmux(target);
      DUET_CHECK(hmux.dataplane().install_vip(v.vip, rec.dips, rec.weights))
          << "HMux " << target << " rejected restored VIP " << v.vip.to_string();
      for (const auto& [port, dips] : rec.port_rules) {
        if (!hmux.dataplane().install_port_rule(v.vip, port, dips)) {
          DUET_LOG_WARN << "ACL table full restoring port rule " << v.vip.to_string() << ":"
                        << port;
        }
      }
      c.routing_.announce_everywhere(Ipv4Prefix::host_route(v.vip), target);
      c.journal_event(telemetry::EventKind::kBgpAnnounce, v.vip, {}, target, "restored");
      c.journal_event(telemetry::EventKind::kVipPlaced, v.vip, {}, target);
      rec.home = target;
    }
  }

  c.next_tip_ = image.next_tip;
  c.next_vip_id_ = image.next_vip_id;
  c.current_ = image.assignment;
  c.have_assignment_ = image.have_assignment;
  c.rng_.set_state(image.rng_state);

  DUET_CHECK(routing_digest(c) == image.routing_digest)
      << "restored routing state diverged from the image";
}

std::vector<std::uint8_t> encode_state(const DuetController& controller) {
  return encode_image(ControllerAccess::capture(controller));
}

bool write_image(const std::string& path, const StateImage& image) {
  return atomic_write_file(path, kSnapshotMagic, encode_image(image), kImageFrame);
}

ReadImageResult read_image(const std::string& path) {
  ReadImageResult result;
  auto frames = read_frames(path, kSnapshotMagic);
  if (!frames.ok()) {
    // Distinguish "no snapshot yet" (normal first boot) from damage.
    if (frames.error.rfind("cannot open", 0) == 0) return result;
    result.error = std::move(frames.error);
    return result;
  }
  if (frames.truncated_tail || frames.frames.size() != 1 ||
      frames.frames[0].type != kImageFrame) {
    result.error = "malformed snapshot " + path;
    return result;
  }
  auto img = decode_image(frames.frames[0].payload);
  if (!img.has_value()) {
    result.error = "undecodable snapshot " + path;
    return result;
  }
  result.image = std::move(*img);
  return result;
}

}  // namespace duet::persist
