// CRC32-framed append-only record files — the durability substrate shared by
// the controller op journal (persist/op_log.h), state snapshots
// (persist/state_image.h), and binary telemetry-journal exports
// (persist/journal_io.h).
//
// File layout:  [8-byte magic][record]*
// Record:       [u32 payload_len][u8 type][u32 crc32(type ++ payload)][payload]
// all integers little-endian. The CRC covers the type byte and the payload,
// so a bit flip anywhere in a record (or a short write of its tail) is
// detected. Reads are TORN-TAIL TOLERANT: a final record that is incomplete
// or fails its CRC — the normal aftermath of `kill -9` mid-append — is
// treated as "the write never happened": reading stops at the last intact
// record and reports the valid byte count so the opener can truncate and
// keep appending. A bad frame is never skipped-and-resumed: everything after
// the first damage is suspect, exactly like a write-ahead log.
//
// Durability knob (FsyncPolicy): kEveryRecord gives write-ahead semantics (an
// acknowledged op survives kill -9); kNone leaves flushing to the kernel —
// crash recovery then restores a correct but possibly older state. Either
// way the CRC framing guarantees recovery never *misreads* state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace duet::persist {

// Software CRC32 (IEEE 802.3 polynomial, reflected). crc32("123456789") is
// the standard check value 0xCBF43926.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0) noexcept;

enum class FsyncPolicy : std::uint8_t {
  kNone = 0,         // no explicit flush; kernel writeback decides durability
  kEveryRecord = 1,  // fsync after every append — WAL semantics
};

// Parses "none" | "every" (duetd --fsync). Returns false on unknown names.
bool parse_fsync_policy(const char* name, FsyncPolicy* out) noexcept;
const char* to_string(FsyncPolicy policy) noexcept;

// --- little-endian byte codec -------------------------------------------------
// Used by every persist serializer (ops, state images, journal events, the
// ops-socket protocol); doubles travel as their IEEE-754 bit patterns so
// round trips are bit-exact.

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  // Length-prefixed (u32) byte string.
  void str(std::string_view v);

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked reader over a byte span. Every accessor returns nullopt
// once the input is exhausted or a length prefix overruns the buffer; `ok()`
// stays false from the first failure on, so decoders can check once at the
// end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept : bytes_(bytes) {}

  std::optional<std::uint8_t> u8() noexcept;
  std::optional<std::uint16_t> u16() noexcept;
  std::optional<std::uint32_t> u32() noexcept;
  std::optional<std::uint64_t> u64() noexcept;
  std::optional<double> f64() noexcept;
  std::optional<std::string> str();

  bool ok() const noexcept { return ok_; }
  bool done() const noexcept { return ok_ && pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  const std::uint8_t* take(std::size_t n) noexcept;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- framed files -------------------------------------------------------------

inline constexpr std::size_t kMagicBytes = 8;
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4;  // len + type + crc
// Frames above this are rejected on read as corruption (a genuine record
// this large would be a bug; a random flipped length byte must not trigger
// a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

// Appends CRC-framed records to a file, creating it (with the given magic)
// when absent. Move-only around a POSIX fd so fsync() is a real barrier.
class FrameWriter {
 public:
  FrameWriter() = default;
  ~FrameWriter();
  FrameWriter(FrameWriter&& other) noexcept;
  FrameWriter& operator=(FrameWriter&& other) noexcept;
  FrameWriter(const FrameWriter&) = delete;
  FrameWriter& operator=(const FrameWriter&) = delete;

  // Opens for appending at `offset` (records past it are dropped first —
  // the torn-tail repair path), or at end when offset is nullopt. A missing
  // or empty file is created and stamped with `magic` (exactly kMagicBytes).
  static std::optional<FrameWriter> open(const std::string& path, std::string_view magic,
                                         FsyncPolicy policy,
                                         std::optional<std::uint64_t> truncate_to = std::nullopt);

  bool valid() const noexcept { return fd_ >= 0 && !poisoned_; }
  // Appends one record; with kEveryRecord the record is fsync'd before
  // returning. On a failed write the torn tail is rolled back (ftruncate to
  // the last good record) so the file never holds garbage between records;
  // if the rollback — or a record's fsync — fails, the writer is poisoned
  // and every later append returns false until the log is reopened.
  bool append(std::uint8_t type, std::span<const std::uint8_t> payload);
  // True once an append failure left the file in an unknown state (rollback
  // or fsync failed). Poison clears only by reopening the log.
  bool poisoned() const noexcept { return poisoned_; }
  // Explicit barrier (used by kNone writers at snapshot points).
  bool sync();
  void close();

  std::uint64_t bytes_written() const noexcept { return size_; }

 private:
  int fd_ = -1;
  FsyncPolicy policy_ = FsyncPolicy::kNone;
  std::uint64_t size_ = 0;
  bool poisoned_ = false;
};

struct ReadFramesResult {
  std::vector<Frame> frames;
  // Byte offset just past the last intact record (= the truncate point for
  // repair-on-open).
  std::uint64_t valid_bytes = 0;
  // A torn/corrupt tail was dropped (frames up to it are still returned).
  bool truncated_tail = false;
  // Hard failure: missing file, wrong magic, unreadable. frames is empty.
  std::string error;

  bool ok() const noexcept { return error.empty(); }
};

// Reads every intact record. Wrong magic or an unreadable file is an error;
// a damaged tail is not (see file comment). A file shorter than the magic —
// including 0 bytes, the kill -9 window before FrameWriter stamps it — is an
// empty log, not corruption.
ReadFramesResult read_frames(const std::string& path, std::string_view magic);

// fsync the directory containing `path` so a just-renamed file's directory
// entry is durable too. Best-effort (returns false on failure).
bool sync_parent_dir(const std::string& path);

// Atomic replace: writes `bytes` to `path + ".tmp"`, fsyncs, renames over
// `path`, fsyncs the directory. The destination is either the old file or
// the complete new one — never a mix.
bool atomic_write_file(const std::string& path, std::string_view magic,
                       std::span<const std::uint8_t> bytes, std::uint8_t type);

}  // namespace duet::persist
