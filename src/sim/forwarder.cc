#include "sim/forwarder.h"

#include "util/logging.h"

namespace duet {

std::string to_string(ForwardOutcome outcome) {
  switch (outcome) {
    case ForwardOutcome::kDeliveredToHost:
      return "delivered-to-host";
    case ForwardOutcome::kDeliveredToSmux:
      return "delivered-to-smux";
    case ForwardOutcome::kBlackholed:
      return "blackholed";
    case ForwardOutcome::kDropped:
      return "dropped";
    case ForwardOutcome::kLooped:
      return "looped";
  }
  return "?";
}

HopByHopForwarder::HopByHopForwarder(const Topology& topo, const RoutingFabric& views,
                                     std::unordered_map<SwitchId, SwitchDataPlane*> dataplanes,
                                     std::unordered_set<SwitchId> smux_tors,
                                     util::IdSet<SwitchId> failed_switches)
    : topo_(&topo),
      views_(&views),
      dataplanes_(std::move(dataplanes)),
      smux_tors_(std::move(smux_tors)),
      failed_(std::move(failed_switches)),
      routing_(std::make_unique<EcmpRouting>(topo, failed_, util::IdSet<LinkId>{})) {}

void HopByHopForwarder::set_failed(util::IdSet<SwitchId> failed) {
  failed_ = std::move(failed);
  routing_ = std::make_unique<EcmpRouting>(*topo_, failed_, util::IdSet<LinkId>{});
}

SwitchId HopByHopForwarder::next_hop(SwitchId sw, SwitchId target, const Packet& packet) const {
  const auto hops = routing_->next_hops(sw, target);
  if (hops.empty()) return kInvalidSwitch;
  // Hash the OUTER header identity plus the hop so parallel paths get used
  // (the per-switch seed of real ECMP); deterministic per flow.
  const std::uint64_t h =
      path_hasher_.hash(packet.tuple()) ^
      (static_cast<std::uint64_t>(packet.routing_destination().value()) << 20) ^ (sw * 0x9e37ULL);
  return hops[h % hops.size()].neighbor;
}

ForwardResult HopByHopForwarder::forward(Packet& packet, SwitchId ingress) const {
  ForwardResult result;
  if (failed_.contains(ingress)) return result;  // source rack is dark

  SwitchId current = ingress;
  const std::size_t ttl = topo_->switch_count() + 8;

  for (std::size_t hop = 0; hop <= ttl; ++hop) {
    HopTrace trace;
    trace.sw = current;

    // 1. This switch's mux tables get first look (host-table stage).
    const auto dp_it = dataplanes_.find(current);
    if (dp_it != dataplanes_.end() && dp_it->second != nullptr) {
      const auto verdict = dp_it->second->process(packet);
      if (verdict == PipelineVerdict::kDropped) {
        result.path.push_back(trace);
        result.outcome = ForwardOutcome::kDropped;
        return result;
      }
      trace.mux_processed = (verdict == PipelineVerdict::kEncapsulated);
    }
    result.path.push_back(trace);

    const Ipv4Address dst = packet.routing_destination();

    // 2. Destination is a server attached here: delivered.
    const SwitchId dst_tor = topo_->tor_of(dst);
    if (dst_tor == current) {
      result.outcome = ForwardOutcome::kDeliveredToHost;
      result.final_destination = dst;
      result.final_switch = current;
      return result;
    }

    // 3. Route lookup in THIS switch's RIB view.
    SwitchId target;
    if (dst_tor != kInvalidSwitch) {
      // Server address: infrastructure routing (always converged).
      target = dst_tor;
    } else {
      const auto& rib = views_->rib(current);
      const auto prefix = rib.best_prefix(dst);
      if (!prefix.has_value()) {
        result.outcome = ForwardOutcome::kBlackholed;
        return result;
      }
      const auto origins = rib.origins(*prefix);
      DUET_CHECK(!origins.empty()) << "route with no origins";
      // Anycast: pick the origin by flow hash (ECMP among equal routes).
      target = origins[path_hasher_.hash(packet.tuple()) % origins.size()];
      if (target == current) {
        // We ARE the route's endpoint. A /32 endpoint whose tables no longer
        // hold the VIP (mid-migration) falls through to its own next-best
        // route; an aggregate endpoint is an SMux ToR: delivered.
        if (prefix->length() == 32) {
          // Stale self-route: withdraw hasn't reached our own FIB — treat as
          // no route (the mux stage above already declined it).
          result.outcome = ForwardOutcome::kBlackholed;
          return result;
        }
        result.outcome = ForwardOutcome::kDeliveredToSmux;
        result.final_switch = current;
        return result;
      }
      if (prefix->length() != 32 && smux_tors_.contains(target) && target == current) {
        result.outcome = ForwardOutcome::kDeliveredToSmux;
        result.final_switch = current;
        return result;
      }
    }

    // 4. Dead or unreachable target: blackhole (the Fig 12 window).
    if (failed_.contains(target) || !routing_->reachable(current, target)) {
      result.outcome = ForwardOutcome::kBlackholed;
      return result;
    }
    if (target == current) {
      // An aggregate route terminating here (SMux ToR).
      result.outcome = ForwardOutcome::kDeliveredToSmux;
      result.final_switch = current;
      return result;
    }

    // 5. Take one ECMP hop toward the target.
    const SwitchId nh = next_hop(current, target, packet);
    if (nh == kInvalidSwitch) {
      result.outcome = ForwardOutcome::kBlackholed;
      return result;
    }
    current = nh;
  }
  result.outcome = ForwardOutcome::kLooped;
  return result;
}

}  // namespace duet
