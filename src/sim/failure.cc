#include "sim/failure.h"

#include "util/logging.h"

namespace duet {

FailureScenario& FailureScenario::merge(const FailureScenario& other) {
  failed_switches.merge(other.failed_switches);
  failed_links.merge(other.failed_links);
  if (name.empty()) {
    name = other.name;
  } else if (!other.name.empty()) {
    name += "+" + other.name;
  }
  return *this;
}

FailureScenario healthy_scenario() { return FailureScenario{"normal", {}, {}}; }

FailureScenario random_switch_failure(const FatTree& fabric, std::size_t count, Rng& rng) {
  DUET_CHECK(count < fabric.topo.switch_count()) << "cannot fail every switch";
  FailureScenario s;
  s.name = std::to_string(count) + "-switch";
  while (s.failed_switches.size() < count) {
    s.failed_switches.insert(static_cast<SwitchId>(rng.uniform(fabric.topo.switch_count())));
  }
  return s;
}

FailureScenario container_failure(const FatTree& fabric, ContainerId container) {
  DUET_CHECK(container < fabric.params.containers) << "container out of range";
  FailureScenario s;
  s.name = "container-" + std::to_string(container);
  for (const SwitchId sw : fabric.topo.switches_in_container(container)) {
    s.failed_switches.insert(sw);
  }
  return s;
}

FailureScenario random_container_failure(const FatTree& fabric, Rng& rng) {
  return container_failure(fabric,
                           static_cast<ContainerId>(rng.uniform(fabric.params.containers)));
}

FailureScenario random_link_failure(const FatTree& fabric, Rng& rng) {
  FailureScenario s;
  s.name = "1-link";
  s.failed_links.insert(static_cast<LinkId>(rng.uniform(fabric.topo.link_count())));
  return s;
}

FailureScenario compose(std::initializer_list<FailureScenario> scenarios) {
  FailureScenario out;
  for (const FailureScenario& s : scenarios) out.merge(s);
  return out;
}

FailureScenario compose(const FailureScenario& a, const FailureScenario& b) {
  return compose({a, b});
}

}  // namespace duet
