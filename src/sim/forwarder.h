// Hop-by-hop packet forwarder driven by per-switch state.
//
// The flow/probe simulators answer "where does traffic go" from a global
// view. This forwarder instead walks a packet switch by switch, consulting
// at each hop exactly what that switch knows:
//   * its RIB view (routing/bgp.h — possibly stale mid-convergence),
//   * its mux tables (dataplane/pipeline.h — VIP hit => encapsulate),
//   * ECMP next-hop choice by flow hash.
// It therefore reproduces the *emergent* behaviours the paper's design
// leans on — transient blackholes while a withdrawn /32 lingers in remote
// RIBs, the mid-migration detour through the old HMux, TIP double bounces —
// and detects the pathologies (loops, dead ends) as explicit outcomes
// rather than CHECK failures.
//
// Used by integration tests and the deep-dive examples; the probe simulator
// keeps its faster closed-form path model.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/id_set.h"


#include "dataplane/pipeline.h"
#include "net/packet.h"
#include "routing/bgp.h"
#include "topo/paths.h"
#include "topo/topology.h"

namespace duet {

enum class ForwardOutcome : std::uint8_t {
  kDeliveredToHost,  // reached the server (outer dst attached to final ToR)
  kDeliveredToSmux,  // reached a ToR hosting an SMux that owns the route
  kBlackholed,       // a switch had no route / route pointed at a dead switch
  kDropped,          // data-plane drop (e.g. double-encap)
  kLooped,           // TTL exhausted — forwarding loop
};

std::string to_string(ForwardOutcome outcome);

struct HopTrace {
  SwitchId sw = kInvalidSwitch;
  bool mux_processed = false;  // this switch encapsulated (HMux/TIP action)
};

struct ForwardResult {
  ForwardOutcome outcome = ForwardOutcome::kBlackholed;
  std::vector<HopTrace> path;
  // Where the packet ended up (server IP or SMux ToR), when delivered.
  Ipv4Address final_destination;
  SwitchId final_switch = kInvalidSwitch;
};

class HopByHopForwarder {
 public:
  // `views` must have one RIB per switch. `dataplanes` maps a switch id to
  // its mux tables (switches without load-balancer state may be absent).
  // `smux_tors` flags ToRs hosting SMux servers (aggregate-route endpoints).
  HopByHopForwarder(const Topology& topo, const RoutingFabric& views,
                    std::unordered_map<SwitchId, SwitchDataPlane*> dataplanes,
                    std::unordered_set<SwitchId> smux_tors,
                    util::IdSet<SwitchId> failed_switches = {});

  // Injects the packet at `ingress` and walks it to an outcome. The packet
  // is modified in place (encap headers added by muxes along the way).
  ForwardResult forward(Packet& packet, SwitchId ingress) const;

  void set_failed(util::IdSet<SwitchId> failed);

 private:
  // Picks the ECMP next hop toward `target` from `sw`, or kInvalidSwitch.
  SwitchId next_hop(SwitchId sw, SwitchId target, const Packet& packet) const;

  const Topology* topo_;
  const RoutingFabric* views_;
  std::unordered_map<SwitchId, SwitchDataPlane*> dataplanes_;
  std::unordered_set<SwitchId> smux_tors_;
  util::IdSet<SwitchId> failed_;
  std::unique_ptr<EcmpRouting> routing_;
  FlowHasher path_hasher_{0x9a7Eull};
};

}  // namespace duet
