#include "sim/event.h"

#include "util/logging.h"

namespace duet {

void EventQueue::schedule_at(double t_us, Action action) {
  DUET_CHECK(t_us >= now_us_) << "scheduling into the past: " << t_us << " < " << now_us_;
  queue_.push(Entry{t_us, next_seq_++, std::move(action)});
}

void EventQueue::run_until(double horizon_us) {
  while (!queue_.empty() && queue_.top().t_us <= horizon_us) {
    // Moving out of a priority_queue requires the const_cast dance; the entry
    // is popped immediately after.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_us_ = e.t_us;
    e.action();
  }
  now_us_ = std::max(now_us_, horizon_us);
}

void EventQueue::run() {
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_us_ = e.t_us;
    e.action();
  }
}

}  // namespace duet
