// Failure scenarios (§8.2, §8.5): "a container or up to 3 switches can fail
// simultaneously" — the failure model the paper provisions SMuxes against
// and stresses link utilization with (Fig 19).
#pragma once

#include <string>
#include <unordered_set>

#include "topo/fattree.h"
#include "util/random.h"

namespace duet {

struct FailureScenario {
  std::string name;
  std::unordered_set<SwitchId> failed_switches;
  std::unordered_set<LinkId> failed_links;

  bool affects(SwitchId s) const { return failed_switches.contains(s); }
  bool empty() const { return failed_switches.empty() && failed_links.empty(); }
};

// No failure.
FailureScenario healthy_scenario();

// `count` distinct random switches (any tier).
FailureScenario random_switch_failure(const FatTree& fabric, std::size_t count, Rng& rng);

// One whole container: every ToR and Agg inside it (§8.5: "all the switches
// inside to be disconnected" and the traffic sourced/sunk inside vanishes).
FailureScenario container_failure(const FatTree& fabric, ContainerId container);
FailureScenario random_container_failure(const FatTree& fabric, Rng& rng);

// A single random link.
FailureScenario random_link_failure(const FatTree& fabric, Rng& rng);

}  // namespace duet
