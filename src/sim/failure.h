// Failure scenarios (§8.2, §8.5): "a container or up to 3 switches can fail
// simultaneously" — the failure model the paper provisions SMuxes against
// and stresses link utilization with (Fig 19).
//
// Sets are util::IdSet (sorted vectors), not std::unordered_set: scenarios
// are built once, copied into sweep shards, and queried per flow — the
// sorted-vector form keeps chaos sweeps allocation-light and iteration
// deterministic (the PR 5 container policy, DESIGN.md §12).
//
// Composition: production failures are rarely singular. compose() unions any
// number of scenarios (container + switch + link at once) into one, which is
// what the chaos harness (src/chaos) injects mid-migration. Composition is
// commutative and associative on the failed sets; the name records the
// ingredient order for report readability.
#pragma once

#include <initializer_list>
#include <string>

#include "topo/fattree.h"
#include "util/id_set.h"
#include "util/random.h"

namespace duet {

struct FailureScenario {
  std::string name;
  util::IdSet<SwitchId> failed_switches;
  util::IdSet<LinkId> failed_links;

  bool affects(SwitchId s) const { return failed_switches.contains(s); }
  bool empty() const { return failed_switches.empty() && failed_links.empty(); }

  // In-place union with another scenario ("a+b"). Returns *this.
  FailureScenario& merge(const FailureScenario& other);
};

// No failure.
FailureScenario healthy_scenario();

// `count` distinct random switches (any tier).
FailureScenario random_switch_failure(const FatTree& fabric, std::size_t count, Rng& rng);

// One whole container: every ToR and Agg inside it (§8.5: "all the switches
// inside to be disconnected" and the traffic sourced/sunk inside vanishes).
FailureScenario container_failure(const FatTree& fabric, ContainerId container);
FailureScenario random_container_failure(const FatTree& fabric, Rng& rng);

// A single random link.
FailureScenario random_link_failure(const FatTree& fabric, Rng& rng);

// Union of any number of scenarios: the failed sets merge; the name joins
// the ingredients with '+'. The result of composing the same ingredients is
// identical regardless of grouping (set union), so composed scenarios are as
// sweep-deterministic as their parts.
FailureScenario compose(std::initializer_list<FailureScenario> scenarios);
FailureScenario compose(const FailureScenario& a, const FailureScenario& b);

}  // namespace duet
