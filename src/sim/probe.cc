#include "sim/probe.h"

#include <algorithm>

#include "audit/check.h"
#include "util/logging.h"

namespace duet {

TestbedSim::TestbedSim(FatTreeParams params, DuetConfig config, std::uint64_t seed)
    : fabric_(build_fattree(params)),
      config_(config),
      hasher_(seed ^ 0xdecafbadULL),
      rng_(seed),
      views_(fabric_.topo.switch_count()) {
  rebuild_routing();
  // ~1µs .. 1s, exponential: covers switch-hop RTTs through SMux queueing
  // spikes without per-sample allocation.
  const auto rtt_bounds = telemetry::Histogram::exponential_bounds(1.0, 1e6, 40);
  tm_rtt_ = &registry_.histogram("duet.sim.probe_rtt_us", rtt_bounds);
  tm_rtt_hmux_ = &registry_.histogram("duet.sim.probe_rtt_hmux_us", rtt_bounds);
  tm_rtt_smux_ = &registry_.histogram("duet.sim.probe_rtt_smux_us", rtt_bounds);
  tm_probes_ = &registry_.counter("duet.sim.probes_sent");
  tm_lost_ = &registry_.counter("duet.sim.probes_lost");
}

void TestbedSim::rebuild_routing() {
  routing_ = std::make_unique<EcmpRouting>(fabric_.topo, failed_, failed_links_);
}

Hmux& TestbedSim::ensure_hmux(SwitchId s) {
  auto it = hmuxes_.find(s);
  if (it == hmuxes_.end()) {
    it = hmuxes_.emplace(s, std::make_unique<Hmux>(s, hasher_, config_)).first;
  }
  return *it->second;
}

std::uint32_t TestbedSim::deploy_smux(SwitchId tor) {
  DUET_CHECK(fabric_.topo.switch_info(tor).role == SwitchRole::kTor)
      << "SMux servers attach to ToRs";
  SmuxInstance inst;
  inst.id = static_cast<std::uint32_t>(smuxes_.size());
  inst.tor = tor;
  inst.mux = std::make_unique<Smux>(inst.id, hasher_, config_);
  views_.announce_everywhere(aggregate_, tor);
  for (const auto& [vip, st] : vips_) inst.mux->set_vip(vip, st.dips);
  smuxes_.push_back(std::move(inst));
  return smuxes_.back().id;
}

void TestbedSim::define_vip(Ipv4Address vip, std::vector<Ipv4Address> dips) {
  DUET_CHECK(aggregate_.contains(vip)) << "VIP outside the SMux aggregate";
  DUET_CHECK(!dips.empty()) << "VIP with no DIPs";
  for (auto& inst : smuxes_) inst.mux->set_vip(vip, dips);
  vips_[vip] = VipState{std::move(dips), std::nullopt, false};
  samples_.try_emplace(vip);
}

void TestbedSim::assign_vip_to_hmux(Ipv4Address vip, SwitchId hmux) {
  auto& st = vips_.at(vip);
  DUET_CHECK(!st.home.has_value()) << "VIP already on an HMux; use schedule_migration";
  DUET_CHECK(ensure_hmux(hmux).dataplane().install_vip(vip, st.dips))
      << "HMux tables full during setup";
  views_.announce_everywhere(Ipv4Prefix::host_route(vip), hmux);
  st.home = hmux;
}

void TestbedSim::set_smux_offered_pps(double pps) { smux_offered_pps_ = pps; }

void TestbedSim::schedule_smux_offered_pps(double t_us, double pps) {
  events_.schedule_at(t_us, [this, pps] { smux_offered_pps_ = pps; });
}

void TestbedSim::schedule_smux_failure(double t_us, std::uint32_t smux_id) {
  events_.schedule_at(t_us, [this, smux_id] {
    for (auto& inst : smuxes_) {
      if (inst.id != smux_id || !inst.alive) continue;
      inst.alive = false;  // data plane dies now; flows hashed here are lost
      journal_.record(telemetry::Event{events_.now_us(), telemetry::EventKind::kSmuxDown,
                                       {}, {}, inst.tor, smux_id, 0, 0, {}});
      // BGP detection + convergence later withdraws its aggregate route and
      // ECMP re-spreads onto the survivors (§5.1).
      const double delay = config_.timings.sample(
          config_.timings.failure_detection_us + config_.timings.failure_convergence_us, rng_);
      events_.schedule_after(delay, [this, smux_id] {
        for (auto& i2 : smuxes_) {
          if (i2.id == smux_id) {
            i2.withdrawn = true;
            views_.withdraw_everywhere(aggregate_, i2.tor);
            journal_.record(events_.now_us(), telemetry::EventKind::kBgpWithdraw, {}, {},
                            i2.tor, "smux aggregate withdrawn after detection");
            // §3.3.1: some survivor must keep the LPM backstop alive.
            DUET_AUDIT_WARN("smux-backstop",
                            !views_.rib(0).origins(aggregate_).empty() || vips_.empty())
                << "last SMux aggregate withdrawn: VIPs have no LPM backstop";
          }
        }
      });
      return;
    }
    DUET_LOG_WARN << "unknown SMux id " << smux_id;
  });
}

void TestbedSim::schedule_link_failure(double t_us, LinkId link) {
  events_.schedule_at(t_us, [this, link] {
    failed_links_.insert(link);
    rebuild_routing();  // §5.1: non-isolating link failures just re-route
  });
}

void TestbedSim::schedule_switch_failure(double t_us, SwitchId sw) {
  events_.schedule_at(t_us, [this, sw] {
    failed_.insert(sw);
    rebuild_routing();
    journal_.record(events_.now_us(), telemetry::EventKind::kHmuxDown, {}, {}, sw);
    // Neighbors detect the death, withdrawals propagate; until then every
    // RIB still points /32s at the corpse (the Fig 12 blackhole window).
    const double delay = config_.timings.sample(
        config_.timings.failure_detection_us + config_.timings.failure_convergence_us, rng_);
    events_.schedule_after(delay, [this, sw] {
      views_.fail_origin_everywhere(sw);
      journal_.record(events_.now_us(), telemetry::EventKind::kBgpWithdraw, {}, {}, sw,
                      "origin routes flushed after detection");
      for (auto& [vip, st] : vips_) {
        if (st.home == sw) {
          st.home.reset();
          journal_.record(events_.now_us(), telemetry::EventKind::kVipFallback, vip, {}, sw,
                          "smux backstop after switch failure");
        }
      }
      // §5.1: once the flush converged, no view may retain a route the dead
      // switch originated (a stale /32 would keep blackholing traffic), and
      // the SMux aggregate backstop must still exist somewhere.
      DUET_AUDIT("dead-switch-quiesced", [&] {
        for (SwitchId v = 0; v < views_.view_count(); ++v) {
          for (const auto& [prefix, origin] : views_.rib(v).routes()) {
            if (origin == sw) return false;
          }
        }
        return true;
      }()) << "dead switch " << sw << " still originates routes in some view";
      DUET_AUDIT_WARN("smux-backstop",
                      !views_.rib(0).origins(aggregate_).empty() || vips_.empty())
          << "no live SMux aggregate after switch " << sw << " failed";
    });
  });
}

void TestbedSim::do_withdraw(Ipv4Address vip, SwitchId from, std::optional<SwitchId> then_to) {
  // Switch-agent work: clear the VIP route from the FIB, then the DIP
  // entries. The FIB op dominates (§7.3).
  const double t_vip = config_.timings.sample(config_.timings.fib_vip_delete_us, rng_);
  const double t_dips = config_.timings.sample(config_.timings.fib_dip_delete_us, rng_);
  ops_.delete_vip_us.push_back(t_vip);
  ops_.delete_dips_us.push_back(t_dips);
  journal_.record(events_.now_us(), telemetry::EventKind::kMigrationWithdraw, vip, {}, from);
  events_.schedule_after(t_vip + t_dips, [this, vip, from, then_to] {
    const auto it = hmuxes_.find(from);
    if (it != hmuxes_.end()) it->second->dataplane().remove_vip(vip);
    views_.withdraw_at(from, Ipv4Prefix::host_route(vip), from);
    vips_.at(vip).home.reset();
    // BGP withdraw propagates to the rest of the fabric.
    const double t_bgp = config_.timings.sample(config_.timings.bgp_update_us, rng_);
    ops_.vip_withdraw_us.push_back(t_bgp);
    events_.schedule_after(t_bgp, [this, vip, from, then_to] {
      views_.withdraw_everywhere(Ipv4Prefix::host_route(vip), from);
      journal_.record(events_.now_us(), telemetry::EventKind::kBgpWithdraw, vip, {}, from);
      // §4.2 phase order: the withdraw converged in every view before any
      // re-announce fires, so no view may still know a /32 for the VIP.
      DUET_AUDIT("migration-through-smux", [&] {
        for (SwitchId v = 0; v < views_.view_count(); ++v) {
          if (!views_.rib(v).origins(Ipv4Prefix::host_route(vip)).empty()) return false;
        }
        return true;
      }()) << "VIP " << vip.to_string()
           << " still has a /32 in some view after the withdraw converged";
      if (then_to.has_value()) {
        do_announce(vip, *then_to);  // second wave of an HMux->HMux move
      } else {
        vips_.at(vip).migrating = false;
      }
    });
  });
}

void TestbedSim::do_announce(Ipv4Address vip, SwitchId to) {
  const double t_dips = config_.timings.sample(config_.timings.fib_dip_add_us, rng_);
  const double t_vip = config_.timings.sample(config_.timings.fib_vip_add_us, rng_);
  ops_.add_dips_us.push_back(t_dips);
  ops_.add_vip_us.push_back(t_vip);
  journal_.record(events_.now_us(), telemetry::EventKind::kMigrationAnnounce, vip, {}, to);
  events_.schedule_after(t_dips + t_vip, [this, vip, to] {
    auto& st = vips_.at(vip);
    DUET_CHECK(ensure_hmux(to).dataplane().install_vip(vip, st.dips))
        << "HMux tables full mid-migration";
    views_.announce_at(to, Ipv4Prefix::host_route(vip), to);
    const double t_bgp = config_.timings.sample(config_.timings.bgp_update_us, rng_);
    ops_.vip_announce_us.push_back(t_bgp);
    events_.schedule_after(t_bgp, [this, vip, to] {
      views_.announce_everywhere(Ipv4Prefix::host_route(vip), to);
      journal_.record(events_.now_us(), telemetry::EventKind::kBgpAnnounce, vip, {}, to);
      // Exactly one announcer — the new home — in every converged view
      // (§3.3.1). Two would mean an HMux-to-HMux move skipped the SMuxes.
      DUET_AUDIT("single-announcer", [&] {
        for (SwitchId v = 0; v < views_.view_count(); ++v) {
          const auto origins = views_.rib(v).origins(Ipv4Prefix::host_route(vip));
          if (origins.size() != 1 || origins.front() != to) return false;
        }
        return true;
      }()) << "VIP " << vip.to_string() << " not announced exactly by switch " << to
           << " after the announce converged";
      auto& state = vips_.at(vip);
      state.home = to;
      state.migrating = false;
    });
  });
}

void TestbedSim::schedule_migration(double t_us, Ipv4Address vip, std::optional<SwitchId> to) {
  events_.schedule_at(t_us, [this, vip, to] {
    auto& st = vips_.at(vip);
    DUET_CHECK(!st.migrating) << "overlapping migrations for " << vip.to_string();
    st.migrating = true;
    if (st.home.has_value()) {
      do_withdraw(vip, *st.home, to);  // H->S, or H->H via the SMuxes
    } else if (to.has_value()) {
      do_announce(vip, *to);  // S->H
    } else {
      st.migrating = false;  // S->S: nothing to do
    }
  });
}

TestbedSim::SmuxInstance* TestbedSim::pick_smux(const FiveTuple& t, SwitchId from) {
  // ECMP spreads over the SMuxes whose aggregate route is still announced
  // (withdrawal lags death by the BGP convergence window — flows hashed to
  // a dead-but-not-yet-withdrawn SMux are lost, §5.1).
  std::vector<SmuxInstance*> candidates;
  for (auto& inst : smuxes_) {
    if (!inst.withdrawn && !failed_.contains(inst.tor) && routing_->reachable(from, inst.tor)) {
      candidates.push_back(&inst);
    }
  }
  if (candidates.empty()) return nullptr;
  return candidates[hasher_.bucket(t, static_cast<std::uint32_t>(candidates.size()))];
}

std::optional<double> TestbedSim::path_rtt_us(SwitchId src_tor,
                                              const std::vector<SwitchId>& via_chain,
                                              SwitchId dip_tor) const {
  std::uint32_t hops = 0;
  SwitchId cur = src_tor;
  for (const SwitchId v : via_chain) {
    const auto d = routing_->distance(cur, v);
    if (d == kUnreachable) return std::nullopt;  // partitioned mid-path
    hops += d;
    cur = v;
  }
  const auto to_dip = routing_->distance(cur, dip_tor);
  const auto back = routing_->distance(dip_tor, src_tor);  // DSR return
  if (to_dip == kUnreachable || back == kUnreachable) return std::nullopt;
  hops += to_dip + back;
  return static_cast<double>(hops) * config_.probe_hop_us + config_.probe_stack_us;
}

ProbeSample TestbedSim::probe_once(Ipv4Address vip, Ipv4Address src_server) {
  ProbeSample sample;
  sample.t_us = events_.now_us();
  sample.lost = true;

  const SwitchId src_tor = fabric_.topo.tor_of(src_server);
  DUET_CHECK(src_tor != kInvalidSwitch) << "probe source not attached";
  if (failed_.contains(src_tor)) return sample;

  Packet packet{FiveTuple{src_server, vip, probe_seq_++, 7, IpProto::kUdp}, 64};
  if (probe_seq_ == 0) probe_seq_ = 1;

  const Rib& rib = views_.rib(src_tor);
  const auto prefix = rib.best_prefix(vip);
  if (!prefix.has_value()) return sample;

  const double rho = smux_offered_pps_ > 0.0
                         ? smux_offered_pps_ / config_.smux_capacity_pps
                         : 0.0;

  // Path-RTT dispersion (drawn only for delivered probes so losses do not
  // shift the rng stream): hop+stack latency is a deterministic function of
  // the path, and without per-probe noise every RTT percentile degenerates
  // to the same constant (the Fig 12 min==p99 bug).
  const auto jittered = [this](double rtt_us) {
    const double f = config_.probe_jitter_frac;
    return f > 0.0 ? rtt_us * rng_.uniform_real(1.0 - f, 1.0 + f) : rtt_us;
  };

  if (prefix->length() == 32) {
    const auto origins = rib.origins(*prefix);
    DUET_CHECK(!origins.empty()) << "matched /32 with no origin";
    const SwitchId o = origins.front();
    // Stale route to a dead switch: the Fig 12 blackhole.
    if (failed_.contains(o) || !routing_->reachable(src_tor, o)) return sample;

    Hmux& hmux = ensure_hmux(o);
    if (hmux.dataplane().process(packet) == PipelineVerdict::kEncapsulated) {
      const SwitchId dip_tor = fabric_.topo.tor_of(packet.outer().outer_dst);
      const auto rtt = path_rtt_us(src_tor, {o}, dip_tor);
      if (!rtt.has_value()) return sample;
      sample.lost = false;
      sample.via = ProbeVia::kHmux;
      sample.rtt_us = jittered(*rtt) + config_.hmux_latency_us;
      return sample;
    }
    // Mid-migration: the /32 still points here but the tables are clean —
    // the switch forwards by its own RIB, i.e. the SMux aggregate.
    SmuxInstance* smux = pick_smux(packet.tuple(), o);
    if (smux == nullptr || !smux->alive || !smux->mux->process(packet)) return sample;
    const SwitchId dip_tor = fabric_.topo.tor_of(packet.outer().outer_dst);
    const auto rtt = path_rtt_us(src_tor, {o, smux->tor}, dip_tor);
    if (!rtt.has_value()) return sample;
    sample.lost = false;
    sample.via = ProbeVia::kSmuxDetour;
    sample.rtt_us = jittered(*rtt) + smux->mux->sample_added_latency_us(rho, rng_);
    return sample;
  }

  // Aggregate route: the SMux backstop.
  SmuxInstance* smux = pick_smux(packet.tuple(), src_tor);
  if (smux == nullptr || !smux->alive || !smux->mux->process(packet)) return sample;
  const SwitchId dip_tor = fabric_.topo.tor_of(packet.outer().outer_dst);
  const auto rtt = path_rtt_us(src_tor, {smux->tor}, dip_tor);
  if (!rtt.has_value()) return sample;
  sample.lost = false;
  sample.via = ProbeVia::kSmux;
  sample.rtt_us = jittered(*rtt) + smux->mux->sample_added_latency_us(rho, rng_);
  return sample;
}

void TestbedSim::start_probes(Ipv4Address vip, Ipv4Address src_server, double start_us,
                              double end_us, double interval_us) {
  DUET_CHECK(interval_us > 0.0) << "non-positive probe interval";
  samples_.try_emplace(vip);
  // Self-rescheduling probe loop; the sim owns the callback (a shared_ptr
  // capturing itself would cycle and leak).
  auto* tick = &probe_loops_.emplace_back();
  *tick = [this, vip, src_server, end_us, interval_us, tick] {
    const ProbeSample sample = probe_once(vip, src_server);
    samples_[vip].push_back(sample);
    tm_probes_->inc();
    if (sample.lost) {
      tm_lost_->inc();
    } else {
      tm_rtt_->record(sample.rtt_us);
      if (sample.via == ProbeVia::kHmux) {
        tm_rtt_hmux_->record(sample.rtt_us);
      } else {
        tm_rtt_smux_->record(sample.rtt_us);
      }
    }
    const double next = events_.now_us() + interval_us;
    if (next < end_us) events_.schedule_at(next, *tick);
  };
  events_.schedule_at(start_us, *tick);
}

const std::vector<ProbeSample>& TestbedSim::samples(Ipv4Address vip) const {
  const auto it = samples_.find(vip);
  DUET_CHECK(it != samples_.end()) << "no probes for " << vip.to_string();
  return it->second;
}

bool TestbedSim::vip_on_hmux(Ipv4Address vip) const {
  const auto p = views_.rib(0).best_prefix(vip);
  return p.has_value() && p->length() == 32;
}

}  // namespace duet
