// Event-driven testbed simulator (the Fig 10 testbed experiments, §7).
//
// Reproduces the microbenchmarks that need a clock:
//   * Fig 11 — per-mux capacity: probe latency to an unloaded VIP while the
//     SMuxes carry 200K/400K pps, then after switching the VIPs to an HMux;
//   * Fig 12 — availability during HMux failure: detection + BGP convergence
//     leaves a ~38 ms blackhole window, after which the SMux backstop serves;
//   * Fig 13 — availability during migration: the SMux stepping-stone makes
//     migration lossless, with a visible latency bump while on software;
//   * Fig 14 — the latency breakdown of migration operations.
//
// The simulator derives every probe's fate from actual state — per-switch
// RIB views (routing/bgp.h) and real HMux/SMux table objects — rather than a
// scripted timeline, so the control-plane sequencing bugs the paper warns
// about (blackholes, memory deadlock) would show up as lost probes here.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "duet/config.h"
#include "duet/hmux.h"
#include "duet/smux.h"
#include "routing/bgp.h"
#include "sim/event.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "topo/fattree.h"
#include "topo/paths.h"
#include "util/id_set.h"

namespace duet {

enum class ProbeVia : std::uint8_t { kNone, kHmux, kSmux, kSmuxDetour };

struct ProbeSample {
  double t_us = 0.0;
  double rtt_us = 0.0;
  bool lost = false;
  ProbeVia via = ProbeVia::kNone;
};

// Latency samples for each migration sub-operation (Fig 14).
struct OpLatencies {
  std::vector<double> add_dips_us, add_vip_us, vip_announce_us;
  std::vector<double> delete_dips_us, delete_vip_us, vip_withdraw_us;
};

class TestbedSim {
 public:
  TestbedSim(FatTreeParams params, DuetConfig config, std::uint64_t seed = 1);

  const FatTree& fabric() const noexcept { return fabric_; }
  EventQueue& events() noexcept { return events_; }

  // --- setup (instantaneous, at t=0 before running) ---------------------------
  std::uint32_t deploy_smux(SwitchId tor);
  // Registers the VIP on every SMux (the backstop path).
  void define_vip(Ipv4Address vip, std::vector<Ipv4Address> dips);
  // Installs + announces instantly (initial condition, not a timed migration).
  void assign_vip_to_hmux(Ipv4Address vip, SwitchId hmux);

  // Background load carried by each SMux / by the HMuxes, for the latency
  // model (probes measure queueing they did not cause, as in Fig 11).
  void set_smux_offered_pps(double pps);
  void schedule_smux_offered_pps(double t_us, double pps);

  // --- timed events -----------------------------------------------------------
  void schedule_switch_failure(double t_us, SwitchId sw);
  // SMux death (§5.1): switches detect it via BGP and ECMP onto the
  // surviving SMuxes; existing connections keep their DIPs (shared hash).
  void schedule_smux_failure(double t_us, std::uint32_t smux_id);
  // Link failure (§5.1): "If a link failure isolates a switch, it is handled
  // as a switch failure. Otherwise, it has no impact on availability."
  void schedule_link_failure(double t_us, LinkId link);
  // §4.2 migration through the SMuxes:
  //   to == switch  : SMux->HMux announce (or HMux->HMux: withdraw old, land
  //                   on SMux, then announce new);
  //   to == nullopt : HMux->SMux withdraw only.
  void schedule_migration(double t_us, Ipv4Address vip, std::optional<SwitchId> to);

  // Ping `vip` from `src_server` every `interval_us` in [start_us, end_us).
  void start_probes(Ipv4Address vip, Ipv4Address src_server, double start_us, double end_us,
                    double interval_us);

  void run_until(double t_us) { events_.run_until(t_us); }

  // --- results ------------------------------------------------------------------
  const std::vector<ProbeSample>& samples(Ipv4Address vip) const;
  const OpLatencies& op_latencies() const noexcept { return ops_; }

  // Telemetry: probe RTT histograms (`duet.sim.probe_rtt_us`, split by the
  // serving path) plus sim-timestamped journal events for every timed
  // control-plane step the run executed.
  telemetry::MetricRegistry& metrics() noexcept { return registry_; }
  const telemetry::MetricRegistry& metrics() const noexcept { return registry_; }
  telemetry::EventJournal& journal() noexcept { return journal_; }
  const telemetry::EventJournal& journal() const noexcept { return journal_; }

  // Current owner view, for assertions in tests.
  bool vip_on_hmux(Ipv4Address vip) const;

 private:
  struct VipState {
    std::vector<Ipv4Address> dips;
    std::optional<SwitchId> home;  // intended HMux home
    bool migrating = false;
  };
  struct SmuxInstance {
    std::uint32_t id;
    SwitchId tor;
    std::unique_ptr<Smux> mux;
    bool alive = true;       // data plane up?
    bool withdrawn = false;  // aggregate route withdrawn after detection?
  };

  ProbeSample probe_once(Ipv4Address vip, Ipv4Address src_server);
  // Path RTT in µs given one-way mux detour (hop counts are ToR-level);
  // nullopt when any leg is partitioned away (the probe is lost).
  std::optional<double> path_rtt_us(SwitchId src_tor, const std::vector<SwitchId>& via_chain,
                                    SwitchId dip_tor) const;
  void rebuild_routing();
  Hmux& ensure_hmux(SwitchId s);
  SmuxInstance* pick_smux(const FiveTuple& t, SwitchId from);

  // Timed control-plane steps.
  void do_withdraw(Ipv4Address vip, SwitchId from, std::optional<SwitchId> then_to);
  void do_announce(Ipv4Address vip, SwitchId to);

  FatTree fabric_;
  DuetConfig config_;
  FlowHasher hasher_;
  Rng rng_;
  EventQueue events_;
  RoutingFabric views_;
  std::unique_ptr<EcmpRouting> routing_;
  util::IdSet<SwitchId> failed_;
  util::IdSet<LinkId> failed_links_;

  std::unordered_map<SwitchId, std::unique_ptr<Hmux>> hmuxes_;
  std::vector<SmuxInstance> smuxes_;
  std::unordered_map<Ipv4Address, VipState> vips_;
  std::unordered_map<Ipv4Address, std::vector<ProbeSample>> samples_;
  // Owns the self-rescheduling probe callbacks (deque: stable addresses).
  std::deque<std::function<void()>> probe_loops_;
  Ipv4Prefix aggregate_{Ipv4Address{100, 0, 0, 0}, 8};
  double smux_offered_pps_ = 0.0;
  OpLatencies ops_;
  std::uint16_t probe_seq_ = 1;

  telemetry::MetricRegistry registry_;
  telemetry::EventJournal journal_;
  // Bound once in the constructor; hot-path pointers, no registry lookups.
  telemetry::Histogram* tm_rtt_ = nullptr;
  telemetry::Histogram* tm_rtt_hmux_ = nullptr;
  telemetry::Histogram* tm_rtt_smux_ = nullptr;
  telemetry::Counter* tm_probes_ = nullptr;
  telemetry::Counter* tm_lost_ = nullptr;
};

}  // namespace duet
