// Flow-level network simulator.
//
// Routes every VIP's traffic through the fabric for a given assignment and
// failure scenario, and reports per-link loads. This is the machinery behind
// Fig 19 (max link utilization under failures) and the integration checks
// that the assignment algorithm's incremental accounting matches a from-
// scratch simulation.
//
// Semantics per VIP (all volumes in Gbps):
//   * traffic sourced at a failed switch disappears (the sources died);
//   * the VIP's mux is its HMux home if that switch is alive and reachable,
//     otherwise the live SMuxes (each an equal ECMP share, §5.1);
//   * from the mux, traffic fans out to the ToRs hosting the VIP's DIPs;
//     DIPs behind failed ToRs are dead and their share redistributes over
//     the surviving DIP ToRs (resilient hashing, §5.1); if none survive the
//     traffic is blackholed at the mux;
//   * DSR return traffic bypasses the muxes and is not modelled (§2.1).
#pragma once

#include <memory>
#include <vector>

#include "duet/assignment.h"
#include "exec/thread_pool.h"
#include "sim/failure.h"
#include "telemetry/metrics.h"
#include "topo/fattree.h"
#include "topo/paths.h"
#include "workload/demand.h"

namespace duet {

struct FlowSimResult {
  // Directed link loads: index = link*2 + dir (dir 0 = a->b).
  std::vector<double> link_load_gbps;
  // Max utilization against RAW link capacity (the 20 % reservation of §4 is
  // the safety margin Fig 19 shows being consumed).
  double max_link_utilization = 0.0;
  LinkId max_link = kInvalidLink;

  double hmux_gbps = 0.0;        // delivered through HMuxes
  double smux_gbps = 0.0;        // delivered through SMuxes
  double vanished_gbps = 0.0;    // sources died with the failure
  double blackholed_gbps = 0.0;  // no live DIP / unreachable mux
};

// When `metrics` is non-null the run also records `duet.sim.link_utilization`
// (one sample per live directed link) plus `duet.sim.*_gbps` gauges mirroring
// the result fields — so sharded Fig 19 sweeps can merge registries instead of
// hand-rolling aggregation.
FlowSimResult simulate_flows(const FatTree& fabric, const std::vector<VipDemand>& demands,
                             const Assignment& assignment,
                             const std::vector<SwitchId>& smux_tors,
                             const FailureScenario& scenario,
                             telemetry::MetricRegistry* metrics = nullptr);

// --- Parallel scenario sweep (exec/sweep.h) -----------------------------------
// Simulates every scenario on the pool, one shard per scenario. Results come
// back in scenario order, and the merged registry is bit-for-bit identical
// for any thread count (exec/sweep.h's contract): the per-shard
// `duet.sim.*` metrics from simulate_flows merge in shard order, plus sweep-
// level aggregates recorded here:
//   * `duet.sim.sweep.scenarios`            (counter, one per scenario)
//   * `duet.sim.sweep.max_link_utilization` (histogram over scenarios)
//   * `duet.sim.sweep.blackholed_gbps`      (histogram over scenarios)
// NOTE on merged gauges: simulate_flows' per-run gauges (e.g.
// `duet.sim.max_link_utilization`) merge by SUMMING across shards — read the
// sweep histograms for per-scenario distributions instead.
struct FlowSweepResult {
  std::vector<FlowSimResult> runs;  // slot i = scenarios[i]
  std::unique_ptr<telemetry::MetricRegistry> metrics;
};

struct FlowSweepOptions {
  exec::ThreadPool* pool = nullptr;  // nullptr = the global pool
  bool per_run_metrics = true;       // record simulate_flows' own metrics per shard
};

FlowSweepResult sweep_flows(const FatTree& fabric, const std::vector<VipDemand>& demands,
                            const Assignment& assignment,
                            const std::vector<SwitchId>& smux_tors,
                            const std::vector<FailureScenario>& scenarios,
                            const FlowSweepOptions& options = {});

}  // namespace duet
