// Minimal discrete-event engine used by the testbed simulator.
//
// Times are in microseconds (double). Events scheduled for the same instant
// run in scheduling order (stable via a sequence number) so control-plane
// step sequences are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace duet {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now_us() const noexcept { return now_us_; }

  void schedule_at(double t_us, Action action);
  void schedule_after(double delay_us, Action action) {
    schedule_at(now_us_ + delay_us, std::move(action));
  }

  // Runs events until the queue drains or the horizon is reached. Events
  // scheduled beyond the horizon stay queued; now() advances to the horizon.
  void run_until(double horizon_us);
  // Drains everything.
  void run();

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    double t_us;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.t_us > b.t_us || (a.t_us == b.t_us && a.seq > b.seq);
    }
  };

  double now_us_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace duet
