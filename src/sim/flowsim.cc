#include "sim/flowsim.h"

#include <algorithm>

#include "exec/sweep.h"
#include "util/logging.h"

namespace duet {

FlowSimResult simulate_flows(const FatTree& fabric, const std::vector<VipDemand>& demands,
                             const Assignment& assignment,
                             const std::vector<SwitchId>& smux_tors,
                             const FailureScenario& scenario,
                             telemetry::MetricRegistry* metrics) {
  const Topology& topo = fabric.topo;
  EcmpRouting routing{topo, scenario.failed_switches, scenario.failed_links};

  FlowSimResult result;
  result.link_load_gbps.assign(topo.link_count() * 2, 0.0);
  // Cached unit flows: the SMux fallback path fans every leftover VIP out to
  // every live SMux ToR, so the same (src, dst) pairs recur constantly.
  const auto add_flow = [&](SwitchId from, SwitchId to, double gbps) {
    for (const auto& [idx, frac] : routing.unit_flow(from, to)) {
      result.link_load_gbps[idx] += gbps * frac;
    }
  };

  // Live SMux attachment points.
  std::vector<SwitchId> live_smux;
  for (const SwitchId t : smux_tors) {
    if (routing.switch_alive(t)) live_smux.push_back(t);
  }

  for (const auto& d : demands) {
    if (d.total_gbps <= 0.0) continue;

    // Sources that survived the failure.
    double live_ingress = 0.0;
    for (const auto& [ingress, gbps] : d.ingress_gbps) {
      if (routing.switch_alive(ingress)) {
        live_ingress += gbps;
      } else {
        result.vanished_gbps += gbps;
      }
    }
    if (live_ingress <= 0.0) continue;

    // Surviving DIP ToRs; dead ToRs' share redistributes (resilient hashing).
    double live_dip_share = 0.0;
    for (const auto& [tor, gbps] : d.dip_tor_gbps) {
      if (routing.switch_alive(tor)) live_dip_share += gbps;
    }
    const bool deliverable = live_dip_share > 0.0;
    // Scale so the surviving ToRs absorb the full live ingress volume.
    const double redistribute =
        deliverable ? (d.total_gbps / live_dip_share) * (live_ingress / d.total_gbps) : 0.0;

    // Mux selection: HMux home if usable, else the SMux pool.
    const auto home = assignment.switch_of(d.id);
    const bool hmux_ok = home.has_value() && routing.switch_alive(*home);

    // (mux switch, share of live ingress routed via it)
    std::vector<std::pair<SwitchId, double>> muxes;
    if (hmux_ok) {
      muxes.emplace_back(*home, 1.0);
      result.hmux_gbps += live_ingress;
    } else {
      if (live_smux.empty()) {
        result.blackholed_gbps += live_ingress;
        continue;
      }
      const double share = 1.0 / static_cast<double>(live_smux.size());
      for (const SwitchId t : live_smux) muxes.emplace_back(t, share);
      result.smux_gbps += live_ingress;
    }

    for (const auto& [mux, share] : muxes) {
      // Ingress -> mux.
      for (const auto& [ingress, gbps] : d.ingress_gbps) {
        if (!routing.switch_alive(ingress)) continue;
        if (!routing.reachable(ingress, mux)) {
          result.blackholed_gbps += gbps * share;
          continue;
        }
        add_flow(ingress, mux, gbps * share);
      }
      // Mux -> DIP ToRs.
      if (!deliverable) {
        result.blackholed_gbps += live_ingress * share;
        continue;
      }
      for (const auto& [tor, gbps] : d.dip_tor_gbps) {
        if (!routing.switch_alive(tor)) continue;
        add_flow(mux, tor, gbps * redistribute * share);
      }
    }
  }

  // Max utilization against raw capacity.
  telemetry::Histogram* util_hist =
      metrics != nullptr
          ? &metrics->histogram("duet.sim.link_utilization",
                                telemetry::Histogram::linear_bounds(0.05, 1.5, 30))
          : nullptr;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const double cap = topo.capacity_gbps(l);
    for (int dir = 0; dir < 2; ++dir) {
      const double util = result.link_load_gbps[l * 2 + dir] / cap;
      if (util_hist != nullptr) util_hist->record(util);
      if (util > result.max_link_utilization) {
        result.max_link_utilization = util;
        result.max_link = l;
      }
    }
  }
  if (metrics != nullptr) {
    metrics->gauge("duet.sim.max_link_utilization").set(result.max_link_utilization);
    metrics->gauge("duet.sim.hmux_gbps").set(result.hmux_gbps);
    metrics->gauge("duet.sim.smux_gbps").set(result.smux_gbps);
    metrics->gauge("duet.sim.vanished_gbps").set(result.vanished_gbps);
    metrics->gauge("duet.sim.blackholed_gbps").set(result.blackholed_gbps);
  }
  return result;
}

FlowSweepResult sweep_flows(const FatTree& fabric, const std::vector<VipDemand>& demands,
                            const Assignment& assignment,
                            const std::vector<SwitchId>& smux_tors,
                            const std::vector<FailureScenario>& scenarios,
                            const FlowSweepOptions& options) {
  FlowSweepResult out;
  const std::size_t n = scenarios.size();
  if (n == 0) {
    out.metrics = std::make_unique<telemetry::MetricRegistry>();
    return out;
  }

  exec::SweepOptions sweep_options;
  sweep_options.pool = options.pool;
  auto swept = exec::sweep(n, sweep_options, [&](exec::ShardContext& ctx) {
    return simulate_flows(fabric, demands, assignment, smux_tors, scenarios[ctx.shard],
                          options.per_run_metrics ? &ctx.metrics : nullptr);
  });

  out.runs = std::move(swept.results);
  out.metrics = std::move(swept.metrics);

  // Sweep-level distributions, recorded AFTER the merge so they are a pure
  // function of the ordered result slots (trivially width-invariant).
  auto& count = out.metrics->counter("duet.sim.sweep.scenarios");
  auto& util = out.metrics->histogram("duet.sim.sweep.max_link_utilization",
                                      telemetry::Histogram::linear_bounds(0.05, 1.5, 30));
  auto& blackholed = out.metrics->histogram(
      "duet.sim.sweep.blackholed_gbps", telemetry::Histogram::exponential_bounds(0.1, 2.0, 20));
  for (const FlowSimResult& r : out.runs) {
    count.inc();
    util.record(r.max_link_utilization);
    blackholed.record(r.blackholed_gbps);
  }
  return out;
}

}  // namespace duet
