// Deterministic parallel sweep: run n independent tasks on a work-stealing
// pool and get back results, metrics, and journal events that are
// BIT-FOR-BIT IDENTICAL no matter how many threads ran them.
//
// The contract rests on three rules (DESIGN.md §9):
//   1. Ordered result slots. Task i writes only results[i]; no task reads
//      another's slot. Scheduling order can't leak into the output.
//   2. Seed partitioning per task, not per thread. Task i draws randomness
//      only from its own Rng seeded shard_seed(sweep_seed, i) — a splitmix64
//      mix, so neighbouring tasks get uncorrelated streams and task i's
//      stream is the same whether 1 or 64 threads ran the sweep.
//   3. Shard-ordered merge at the barrier. Each task records into its own
//      MetricRegistry/EventJournal; after the pool drains, shards merge
//      serially in task order 0..n-1. Registry merge is order-insensitive
//      for counters/histograms and summing gauges; journal merge concatenates
//      in shard order, and EventJournal::ordered() stable-sorts by time — so
//      the exported event order is exactly (t_us, shard, per-shard seq),
//      independent of which thread journaled when.
//
// Tasks must confine all side effects to their ShardContext and result slot.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace duet::exec {

// Task-unique seed: a splitmix64 finalizer over (sweep seed, task index).
// Stable across platforms and thread counts; distinct tasks get decorrelated
// streams even for adjacent indices or adjacent sweep seeds.
inline std::uint64_t shard_seed(std::uint64_t sweep_seed, std::uint64_t task) noexcept {
  std::uint64_t z = sweep_seed + 0x9e3779b97f4a7c15ULL * (task + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Everything a sweep task may touch besides its result slot.
struct ShardContext {
  std::size_t shard = 0;     // == task index
  std::uint64_t seed = 0;    // shard_seed(sweep_seed, shard)
  Rng rng{0};                // pre-seeded with `seed`
  telemetry::MetricRegistry metrics;
  telemetry::EventJournal journal;
};

// Merged sweep output. `metrics` sits behind a unique_ptr only because
// MetricRegistry (mutex member) is not movable.
template <typename R>
struct SweepResult {
  std::vector<R> results;  // slot i = task i
  std::unique_ptr<telemetry::MetricRegistry> metrics;
  telemetry::EventJournal journal;
};

struct SweepOptions {
  ThreadPool* pool = nullptr;  // nullptr = global_pool()
  std::uint64_t seed = 1;      // sweep-level seed, partitioned per task
};

// Runs fn(ShardContext&) for each task in [0, n) on the pool and merges at
// the barrier. fn's return value lands in the task's result slot.
template <typename Fn>
auto sweep(std::size_t n, const SweepOptions& options, Fn&& fn)
    -> SweepResult<std::invoke_result_t<Fn&, ShardContext&>> {
  using R = std::invoke_result_t<Fn&, ShardContext&>;
  static_assert(!std::is_reference_v<R>, "sweep tasks return results by value");

  SweepResult<R> out;
  out.results.resize(n);
  out.metrics = std::make_unique<telemetry::MetricRegistry>();

  // One context per TASK (not per worker): determinism rule 2. The vector is
  // sized once and never reallocates — ShardContext is not movable.
  std::vector<ShardContext> contexts(n);
  pool_or_global(options.pool).parallel_for(n, [&](std::size_t i) {
    ShardContext& ctx = contexts[i];
    ctx.shard = i;
    ctx.seed = shard_seed(options.seed, i);
    ctx.rng = Rng{ctx.seed};
    out.results[i] = fn(ctx);
  });

  // Barrier passed: merge serially in shard order (determinism rule 3).
  for (std::size_t i = 0; i < n; ++i) {
    out.metrics->merge(contexts[i].metrics);
    out.journal.merge(contexts[i].journal);
  }
  return out;
}

}  // namespace duet::exec
