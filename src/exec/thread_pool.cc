#include "exec/thread_pool.h"

#include <cstdlib>

#include "util/logging.h"

#ifndef DUET_DEFAULT_THREADS
#define DUET_DEFAULT_THREADS 0
#endif

namespace duet::exec {

namespace {

std::uint64_t pack(std::uint64_t pos, std::uint64_t end) { return end << 32 | pos; }
std::uint64_t pos_of(std::uint64_t r) { return r & 0xffffffffu; }
std::uint64_t end_of(std::uint64_t r) { return r >> 32; }

std::atomic<std::size_t> g_width_override{0};

// True while the current thread is inside a parallel_for body; nested
// parallel_for calls detect it and run inline.
thread_local bool t_in_worker = false;

}  // namespace

std::size_t default_width() {
  if (const std::size_t w = g_width_override.load(std::memory_order_relaxed); w > 0) return w;
  if (const char* env = std::getenv("DUET_THREADS"); env != nullptr && env[0] != '\0') {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
    DUET_LOG_WARN << "ignoring invalid DUET_THREADS=" << env;
  }
  if constexpr (DUET_DEFAULT_THREADS > 0) return DUET_DEFAULT_THREADS;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_default_width(std::size_t width) {
  g_width_override.store(width, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t width) : width_(width < 1 ? 1 : width) {
  threads_.reserve(width_ - 1);
  for (std::size_t w = 1; w < width_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_job(Job& job, std::size_t worker) {
  const std::size_t w = job.chunks.size();
  const auto& body = *job.body;
  std::size_t chunk = worker;  // start on the owned chunk, then steal
  for (;;) {
    // Drain the current chunk one index at a time (stealers may shrink end
    // under us, so every claim re-validates with a CAS).
    std::atomic<std::uint64_t>& range = job.chunks[chunk].range;
    std::uint64_t r = range.load(std::memory_order_relaxed);
    while (pos_of(r) < end_of(r)) {
      if (range.compare_exchange_weak(r, pack(pos_of(r) + 1, end_of(r)),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        body(pos_of(r), worker);
        r = range.load(std::memory_order_relaxed);
      }
    }
    // Steal the top half of the fattest remaining chunk.
    std::size_t victim = w;
    std::uint64_t fattest = 0;
    for (std::size_t c = 0; c < w; ++c) {
      const std::uint64_t vr = job.chunks[c].range.load(std::memory_order_relaxed);
      const std::uint64_t left = end_of(vr) - pos_of(vr);
      if (left > fattest) {
        fattest = left;
        victim = c;
      }
    }
    if (victim == w) return;  // nothing anywhere: the job index space is drained
    std::atomic<std::uint64_t>& vrange = job.chunks[victim].range;
    std::uint64_t vr = vrange.load(std::memory_order_relaxed);
    const std::uint64_t vpos = pos_of(vr), vend = end_of(vr);
    if (vpos >= vend) continue;  // drained while we scanned; rescan
    const std::uint64_t mid = vpos + (vend - vpos + 1) / 2;
    if (vrange.compare_exchange_strong(vr, pack(vpos, mid), std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      job.chunks[worker].range.store(pack(mid, vend), std::memory_order_relaxed);
      chunk = worker;
    }
    // CAS failure: the victim moved; rescan for a new victim.
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    t_in_worker = true;
    run_job(*job, worker);
    t_in_worker = false;
    if (job->done_workers.fetch_add(1, std::memory_order_acq_rel) + 1 == width_ - 1) {
      // Last worker out wakes the caller. The lock pairs with the caller's
      // wait-predicate read so the notify cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  DUET_CHECK(n < (1ULL << 32)) << "parallel_for index space exceeds the packed 32-bit range";
  if (width_ == 1 || t_in_worker || n == 1) {
    // Serial path: width-1 pools, nested calls, and trivial jobs all take the
    // same in-order loop — worker id 0 throughout.
    const bool nested = t_in_worker;
    t_in_worker = true;
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    t_in_worker = nested;
    return;
  }

  Job job;
  job.body = &body;
  job.chunks = std::vector<Chunk>(width_);
  // Contiguous initial split; empty chunks for workers beyond n are valid
  // (they go straight to stealing).
  const std::uint64_t per = n / width_, extra = n % width_;
  std::uint64_t at = 0;
  for (std::size_t w = 0; w < width_; ++w) {
    const std::uint64_t len = per + (w < extra ? 1 : 0);
    job.chunks[w].range.store(pack(at, at + len), std::memory_order_relaxed);
    at += len;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++epoch_;
  }
  work_cv_.notify_all();

  t_in_worker = true;
  run_job(job, 0);  // the caller is worker 0
  t_in_worker = false;

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job.done_workers.load(std::memory_order_acquire) == width_ - 1;
  });
  job_ = nullptr;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_for(n, [&body](std::size_t i, std::size_t) { body(i); });
}

ThreadPool& global_pool() {
  static ThreadPool pool{default_width()};
  return pool;
}

ThreadPool& pool_or_global(ThreadPool* p) { return p != nullptr ? *p : global_pool(); }

}  // namespace duet::exec
