// Batched packet replay through dataplane::Pipeline on the sweep engine.
//
// The fuzz/property suites replay long random packet sequences through a
// SwitchDataPlane and check verdicts against a reference. Serially that is
// the slowest part of the suites; here the packet index space is chunked into
// shards, each shard replays its contiguous slice against its OWN replica of
// the data plane (built by a caller-supplied factory — per-packet processing
// is pure w.r.t. verdicts, so identical replicas give identical verdicts),
// and every packet's verdict and encap target land in per-index slots.
//
// Determinism: slots make the verdict/target vectors independent of shard
// count and scheduling; each shard's table-lookup/encap counters go to its
// ShardContext registry and merge in shard order — so the merged counter
// document is also width-invariant. The 1-shard run IS the serial reference.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dataplane/pipeline.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "net/packet.h"

namespace duet::exec {

struct ReplayResult {
  // Slot i describes packet i.
  std::vector<PipelineVerdict> verdicts;
  // Outer encap destination for kEncapsulated packets, 0.0.0.0 otherwise.
  std::vector<Ipv4Address> encap_dst;

  std::uint64_t no_match = 0, encapsulated = 0, dropped = 0;

  // Per-shard "duet.replay.*" counters merged in shard order.
  std::unique_ptr<telemetry::MetricRegistry> metrics;

  friend bool operator==(const ReplayResult& a, const ReplayResult& b) {
    return a.verdicts == b.verdicts && a.encap_dst == b.encap_dst &&
           a.no_match == b.no_match && a.encapsulated == b.encapsulated &&
           a.dropped == b.dropped;
  }
};

struct ReplayOptions {
  ThreadPool* pool = nullptr;  // nullptr = global_pool()
  // Shards to split the batch into; 0 = pool width (1 shard per worker).
  std::size_t shards = 0;
};

// Replays `packets` (copied per shard slice; process() mutates its packet)
// through replicas built by `make_replica(shard_context)`. The factory must
// build identical replicas for every shard — same installs, same hasher
// seed — or the width-invariance contract is void.
ReplayResult replay_packets(const std::function<SwitchDataPlane(ShardContext&)>& make_replica,
                            const std::vector<Packet>& packets,
                            const ReplayOptions& options = {});

}  // namespace duet::exec
