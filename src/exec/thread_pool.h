// Work-stealing thread pool: the parallel substrate for scenario sweeps,
// candidate scoring in the assignment greedy, and batched packet replay.
//
// Design constraints (see DESIGN.md §9):
//   * Determinism lives one layer up. The pool promises only that
//     parallel_for(n, body) invokes body exactly once per index; WHICH worker
//     runs an index and in WHAT order is scheduling noise. Callers that need
//     bit-for-bit reproducible output write results into per-index slots and
//     reduce serially afterwards (exec/sweep.h packages that pattern).
//   * Worker ids are stable handles for scratch buffers. body(index, worker)
//     receives worker < width(); two invocations with the same worker id
//     never overlap, so per-worker scratch needs no locks.
//   * The caller participates (worker 0), so a pool of width W uses W-1
//     spawned threads and width 1 means "serial, no threads at all" — the
//     1-thread configuration the determinism tests diff against runs the
//     exact same code path with zero scheduling.
//
// Scheduling: each worker owns a contiguous chunk of the index space, packed
// as (pos, end) in one 64-bit atomic. Owners claim one index at a time with a
// CAS on pos; an idle worker steals the TOP HALF of the largest remaining
// chunk with a CAS on end. Contention is one CAS per index on the hot path
// and stealing touches a chunk at most O(log n) times — the classic
// range-splitting work-stealing loop, without per-task allocation.
//
// Width resolution (`default_width()`): DUET_THREADS env var, else the
// DUET_DEFAULT_THREADS compile-time knob (CMake -DDUET_THREADS=N), else
// std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace duet::exec {

// Resolved default pool width (>= 1): env DUET_THREADS > CMake knob > HW.
std::size_t default_width();

// Overrides default_width() for pools constructed afterwards (duetctl
// --threads). Must be called before global_pool() is first used; 0 resets to
// the env/CMake/HW chain.
void set_default_width(std::size_t width);

class ThreadPool {
 public:
  // width <= 1 runs everything inline on the caller.
  explicit ThreadPool(std::size_t width = default_width());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total workers including the participating caller.
  std::size_t width() const noexcept { return width_; }

  // Invokes body(index, worker) exactly once for every index in [0, n),
  // worker in [0, width()). Blocks until all n invocations returned. body
  // must not throw. Calls from inside a body (nested parallelism) run the
  // whole nested loop inline on the calling worker — no deadlock, no extra
  // parallelism.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

  // Convenience overload when the worker id is not needed.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  // One worker's chunk of the current job: (end << 32) | pos.
  struct alignas(64) Chunk {
    std::atomic<std::uint64_t> range{0};
  };
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::vector<Chunk> chunks;
    std::atomic<std::size_t> done_workers{0};
  };

  void worker_loop(std::size_t worker);
  void run_job(Job& job, std::size_t worker);

  std::size_t width_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job epoch
  std::condition_variable done_cv_;   // caller waits for workers to finish
  Job* job_ = nullptr;                // guarded by mu_ (epoch flips with it)
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

// Lazily constructed process-wide pool at default_width(). All library
// call sites that default to "the" pool use this one, so DUET_THREADS
// controls parallelism everywhere, duetctl included.
ThreadPool& global_pool();

// The pool `p` resolves to: `p` itself, or the global pool when nullptr.
ThreadPool& pool_or_global(ThreadPool* p);

}  // namespace duet::exec
