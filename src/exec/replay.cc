#include "exec/replay.h"

#include <algorithm>

#include "util/logging.h"

namespace duet::exec {

ReplayResult replay_packets(const std::function<SwitchDataPlane(ShardContext&)>& make_replica,
                            const std::vector<Packet>& packets, const ReplayOptions& options) {
  ReplayResult out;
  const std::size_t n = packets.size();
  out.verdicts.assign(n, PipelineVerdict::kNoMatch);
  out.encap_dst.assign(n, Ipv4Address{});
  if (n == 0) {
    out.metrics = std::make_unique<telemetry::MetricRegistry>();
    return out;
  }

  ThreadPool& pool = pool_or_global(options.pool);
  const std::size_t shards =
      std::min(n, options.shards > 0 ? options.shards : pool.width());

  SweepOptions sweep_options;
  sweep_options.pool = &pool;
  auto swept = sweep(shards, sweep_options, [&](ShardContext& ctx) {
    // Contiguous slice [lo, hi) of the packet index space for this shard.
    const std::size_t lo = ctx.shard * n / shards;
    const std::size_t hi = (ctx.shard + 1) * n / shards;
    SwitchDataPlane replica = make_replica(ctx);
    replica.bind_telemetry(ctx.metrics, "duet.replay.");
    auto& lookups = ctx.metrics.counter("duet.replay.table_lookups");
    for (std::size_t i = lo; i < hi; ++i) {
      Packet p = packets[i];
      const PipelineVerdict v = replica.process(p);
      out.verdicts[i] = v;
      if (v == PipelineVerdict::kEncapsulated) out.encap_dst[i] = p.outer().outer_dst;
    }
    lookups.inc(replica.table_lookups());
    return hi - lo;  // slice length, summed below as a tiling check
  });

  std::size_t covered = 0;
  for (const std::size_t len : swept.results) covered += len;
  DUET_CHECK(covered == n) << "replay shards must tile the packet index space";

  for (const PipelineVerdict v : out.verdicts) {
    switch (v) {
      case PipelineVerdict::kNoMatch: ++out.no_match; break;
      case PipelineVerdict::kEncapsulated: ++out.encapsulated; break;
      case PipelineVerdict::kDropped: ++out.dropped; break;
    }
  }
  out.metrics = std::move(swept.metrics);
  return out;
}

}  // namespace duet::exec
