#include "ananta/ananta.h"

#include <cmath>

#include "util/logging.h"

namespace duet {

std::size_t AnantaModel::smuxes_required(double total_gbps, double smux_capacity_gbps) const {
  DUET_CHECK(smux_capacity_gbps > 0.0) << "SMux with no capacity";
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(total_gbps / smux_capacity_gbps)));
}

double AnantaModel::median_latency_us(double total_gbps, std::size_t smuxes) const {
  DUET_CHECK(smuxes > 0) << "Ananta with no SMuxes";
  const double per_smux_pps = gbps_to_pps(total_gbps) / static_cast<double>(smuxes);
  const double rho = probe_.utilization(per_smux_pps);
  return config_.dc_rtt_us + probe_.median_added_latency_us(rho);
}

double AnantaModel::sample_added_latency_us(double per_smux_pps, Rng& rng) const {
  return probe_.sample_added_latency_us(probe_.utilization(per_smux_pps), rng);
}

AnantaPool::AnantaPool(std::size_t smux_count, FlowHasher hasher, const DuetConfig& config)
    : hasher_(hasher) {
  DUET_CHECK(smux_count > 0) << "Ananta with no SMuxes";
  smuxes_.reserve(smux_count);
  for (std::size_t i = 0; i < smux_count; ++i) {
    smuxes_.push_back(std::make_unique<Smux>(static_cast<std::uint32_t>(i), hasher, config));
  }
}

void AnantaPool::set_vip(Ipv4Address vip, const std::vector<Ipv4Address>& dips) {
  DUET_CHECK(!dips.empty()) << "VIP with no DIPs";
  vip_dips_[vip] = dips;
  for (auto& s : smuxes_) s->set_vip(vip, dips);
}

void AnantaPool::remove_vip(Ipv4Address vip) {
  vip_dips_.erase(vip);
  for (auto& s : smuxes_) s->remove_vip(vip);
}

std::optional<Ipv4Address> AnantaPool::process(Packet& packet, bool intra_dc) {
  if (fast_path_ && intra_dc) {
    // Fast path: the connection is redirected to a DIP; no encap, no mux.
    const auto it = vip_dips_.find(packet.tuple().dst);
    if (it == vip_dips_.end()) return std::nullopt;
    const auto& dips = it->second;
    return dips[hasher_.bucket(packet.tuple(), static_cast<std::uint32_t>(dips.size()))];
  }
  // ECMP across the pool, then software mux.
  Smux& s = *smuxes_[hasher_.bucket(packet.tuple(), static_cast<std::uint32_t>(smuxes_.size()))];
  if (!s.process(packet)) return std::nullopt;
  return packet.outer().outer_dst;
}

}  // namespace duet
