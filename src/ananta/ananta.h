// Ananta baseline (§2.1): the pure software load balancer Duet is compared
// against in Figs 16 and 17.
//
// Architecture: ECMP on the routers spreads every VIP's traffic over N
// SMuxes; each SMux holds the full VIP→DIP map. Provisioning and latency
// are therefore pure functions of total traffic and N, which is all the
// large-scale comparison needs:
//   * smuxes_required() — enough SMuxes that none exceeds its capacity;
//   * median_latency_us() — DC RTT plus the SMux queueing latency at the
//     per-SMux load implied by N.
// An operational pool (AnantaPool) is also provided for data-path tests and
// examples, including the fast-path option (§2.1) that lets inter-service
// traffic bypass the muxes at the cost of VIP indirection.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "duet/config.h"
#include "duet/smux.h"
#include "net/hash.h"

namespace duet {

class AnantaModel {
 public:
  explicit AnantaModel(const DuetConfig& config) : config_(config), probe_(0, FlowHasher{}, config) {}

  // SMuxes so that per-SMux traffic stays within capacity_gbps.
  std::size_t smuxes_required(double total_gbps, double smux_capacity_gbps) const;

  // Median end-to-end RTT (µs) when `total_gbps` is spread over `smuxes`.
  double median_latency_us(double total_gbps, std::size_t smuxes) const;

  // Added-latency distribution sampling at a given per-SMux load.
  double sample_added_latency_us(double per_smux_pps, Rng& rng) const;

  double gbps_to_pps(double gbps) const {
    return gbps * 1e9 / 8.0 / config_.smux_packet_bytes;
  }

 private:
  DuetConfig config_;
  Smux probe_;  // used purely for its latency model
};

// A running pool of SMuxes behind ECMP — the whole Ananta data plane.
class AnantaPool {
 public:
  AnantaPool(std::size_t smux_count, FlowHasher hasher, const DuetConfig& config);

  // Every SMux learns every VIP (§2.1).
  void set_vip(Ipv4Address vip, const std::vector<Ipv4Address>& dips);
  void remove_vip(Ipv4Address vip);

  // Fast path (§2.1): inter-service traffic goes directly to DIPs, skipping
  // the muxes — at the cost of expressing ACLs in terms of DIPs.
  void enable_fast_path(bool on) noexcept { fast_path_ = on; }

  // Routes a packet through the pool (ECMP pick, then SMux encap). With fast
  // path enabled and `intra_dc=true` the packet goes straight to a DIP.
  std::optional<Ipv4Address> process(Packet& packet, bool intra_dc = false);

  std::size_t size() const noexcept { return smuxes_.size(); }
  Smux& smux(std::size_t i) { return *smuxes_.at(i); }

 private:
  FlowHasher hasher_;
  bool fast_path_ = false;
  std::vector<std::unique_ptr<Smux>> smuxes_;
  std::unordered_map<Ipv4Address, std::vector<Ipv4Address>> vip_dips_;
};

}  // namespace duet
