// Wire-format serialization for simulated packets.
//
// The simulators pass Packet objects around; this module renders them as the
// real bytes Duet's data plane manipulates — nested RFC 791 IPv4 headers
// (protocol 4 = IP-in-IP for every encapsulation layer, exactly what the
// switch tunneling table and the host agent's decap produce/consume) with a
// minimal L4 stub carrying the ports. Round-tripping through wire format is
// used by tests to pin down the encap semantics, and gives downstream users
// a bridge to pcap-style tooling.
//
// Layout per layer (20-byte IPv4 header, no options):
//   outermost encap header first, protocol = 4, payload = next layer;
//   innermost header's protocol = the 5-tuple's proto, followed by a 4-byte
//   port stub (src port, dst port, big-endian) and zero padding up to the
//   packet's declared size (truncated if the declared size is smaller than
//   the headers need).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace duet {

inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kPortStubBytes = 4;

// RFC 791 header checksum over a 20-byte header (checksum field zeroed by
// the caller or included — including it over a valid header yields 0).
std::uint16_t ipv4_header_checksum(std::span<const std::uint8_t> header);

// Renders the packet; total length covers all nested headers plus the port
// stub plus payload padding to packet.size_bytes() (if room).
std::vector<std::uint8_t> serialize_packet(const Packet& packet);

// Parses bytes back into a Packet (validating version, IHL, checksums and
// lengths). Returns nullopt on any malformation, including inconsistent
// total-length chains: every layer's total length must cover exactly the
// rest of the datagram (what serialize_packet emits), so trailing garbage
// and nested headers that disagree about where the packet ends are rejected
// rather than silently reinterpreted.
std::optional<Packet> parse_packet(std::span<const std::uint8_t> bytes);

// What a decapsulating endpoint needs from an encapsulated datagram, without
// materializing a Packet (parse_packet's encap stack is a heap allocation
// per call — too hot for the DSR echo path).
struct EncapPeek {
  Ipv4Address outer_dst;  // outermost encap destination: the DIP
  std::uint16_t inner_src_port = 0;
  std::uint16_t inner_dst_port = 0;
};

// Zero-allocation peek at an encapsulated datagram. Validation is identical
// to parse_packet (version/IHL, checksums, the exact total-length chain,
// nesting bound): returns a value exactly when parse_packet would return an
// encapsulated Packet, and the fields match routing_destination() and the
// inner tuple's ports. Unencapsulated (but otherwise well-formed) datagrams
// return nullopt — callers on the decap path treat those as rejects.
std::optional<EncapPeek> peek_encap(std::span<const std::uint8_t> bytes);

// Fast-path encapsulation over already-serialized bytes: prepends ONE
// IP-in-IP outer header to `datagram` into `out` without reparsing,
// preserving payload bytes (a serialize_packet round trip would zero-pad
// them away). `out` must hold datagram.size() + kIpv4HeaderBytes bytes and
// may alias the tail of the buffer (out.data() + kIpv4HeaderBytes ==
// datagram.data() is the zero-copy headroom layout the runtime uses).
// Returns the bytes written, or 0 when the result would overflow the 16-bit
// IPv4 total-length field. The output parses back to the input packet with
// one extra encap layer, and dropping its first kIpv4HeaderBytes bytes
// yields `datagram` again (switch decap = pointer arithmetic).
std::size_t encapsulate_on_wire(std::span<const std::uint8_t> datagram,
                                const EncapHeader& outer, std::span<std::uint8_t> out);

}  // namespace duet
