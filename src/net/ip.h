// IPv4 addresses and prefixes.
//
// Duet's entire control plane speaks in terms of VIPs (/32 virtual IPs
// announced by HMuxes), aggregate VIP prefixes (announced by SMuxes as the
// backstop), and DIPs (direct IPs of backend servers). Everything is IPv4,
// as in the paper.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace duet {

// A plain IPv4 address. Value type, totally ordered, hashable.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept : value_(0) {}
  constexpr explicit Ipv4Address(std::uint32_t host_order_value) noexcept
      : value_(host_order_value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  // Parses dotted-quad "a.b.c.d"; returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  constexpr std::uint32_t value() const noexcept { return value_; }
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const noexcept = default;

 private:
  std::uint32_t value_;  // host byte order
};

// A CIDR prefix. Bits below the prefix length are kept zeroed (canonical form)
// so prefixes compare by value.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept : address_(), length_(0) {}
  Ipv4Prefix(Ipv4Address address, std::uint8_t length) noexcept;

  // A /32 host route — how HMuxes announce their assigned VIPs.
  static Ipv4Prefix host_route(Ipv4Address address) noexcept { return {address, 32}; }

  static std::optional<Ipv4Prefix> parse(std::string_view text) noexcept;

  constexpr Ipv4Address address() const noexcept { return address_; }
  constexpr std::uint8_t length() const noexcept { return length_; }

  bool contains(Ipv4Address address) const noexcept;
  bool contains(const Ipv4Prefix& other) const noexcept;

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const noexcept = default;

 private:
  Ipv4Address address_;
  std::uint8_t length_;
};

constexpr std::uint32_t prefix_mask(std::uint8_t length) noexcept {
  return length == 0 ? 0u : (~0u << (32 - length));
}

}  // namespace duet

template <>
struct std::hash<duet::Ipv4Address> {
  std::size_t operator()(const duet::Ipv4Address& a) const noexcept {
    // Avalanche the 32-bit value; identity hash clusters VIPs allocated
    // sequentially into the same unordered_map buckets.
    std::uint64_t z = a.value() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

template <>
struct std::hash<duet::Ipv4Prefix> {
  std::size_t operator()(const duet::Ipv4Prefix& p) const noexcept {
    return std::hash<duet::Ipv4Address>{}(p.address()) * 31 + p.length();
  }
};
