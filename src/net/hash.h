// The shared flow hash.
//
// §3.3.1: "To ensure that existing connections do not break as a VIP migrates
// from HMux to SMux or between HMuxes, all HMuxes and SMuxes use the same
// hash function to select DIPs for a given VIP."  §5.2 (SNAT): the host agent
// also knows this hash so it can pick a source port that lands on the desired
// ECMP bucket.
//
// We model the switch's configurable hash as a seeded 64-bit mix over the
// 5-tuple. A FlowHasher instance (seed) is distributed by the controller to
// every HMux, SMux and host agent in a deployment.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "util/mix.h"

namespace duet {

class FlowHasher {
 public:
  constexpr explicit FlowHasher(std::uint64_t seed = 0x5eedf00dcafef00dULL) noexcept
      : seed_(seed) {}

  // 64-bit hash over the full 5-tuple.
  std::uint64_t hash(const FiveTuple& t) const noexcept {
    std::uint64_t h = seed_;
    h = mix(h ^ t.src.value());
    h = mix(h ^ t.dst.value());
    h = mix(h ^ (static_cast<std::uint64_t>(t.src_port) << 16 | t.dst_port));
    h = mix(h ^ static_cast<std::uint64_t>(t.proto));
    return h;
  }

  // Bucket index in [0, n). This is the value used to index the ECMP member
  // table on the switch and the DIP list on an SMux — same everywhere.
  std::uint32_t bucket(const FiveTuple& t, std::uint32_t n) const noexcept {
    return n == 0 ? 0 : static_cast<std::uint32_t>(hash(t) % n);
  }

  constexpr std::uint64_t seed() const noexcept { return seed_; }

  friend bool operator==(const FlowHasher&, const FlowHasher&) = default;

 private:
  // The shared avalanche (util/mix.h); bit-for-bit the historical mix, so
  // every recorded DIP decision (golden traces, §3.3.1 agreement) is stable.
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept { return mix64(z); }

  std::uint64_t seed_;
};

}  // namespace duet
