#include "net/ip.h"

#include <charconv>
#include <cstdio>

namespace duet {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned v = 0;
    const auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || v > 255 || next == p) return std::nullopt;
    value = (value << 8) | v;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address address, std::uint8_t length) noexcept
    : address_(address.value() & prefix_mask(length)), length_(length) {}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const auto tail = text.substr(slash + 1);
  const auto [next, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), length);
  if (ec != std::errc{} || length > 32 || next != tail.data() + tail.size()) return std::nullopt;
  return Ipv4Prefix{*addr, static_cast<std::uint8_t>(length)};
}

bool Ipv4Prefix::contains(Ipv4Address address) const noexcept {
  return (address.value() & prefix_mask(length_)) == address_.value();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const noexcept {
  return other.length() >= length_ && contains(other.address());
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace duet
