#include "net/packet.h"

#include "util/logging.h"

namespace duet {

std::string FiveTuple::to_string() const {
  return src.to_string() + ":" + std::to_string(src_port) + "->" + dst.to_string() + ":" +
         std::to_string(dst_port) + "/" + std::to_string(static_cast<int>(proto));
}

EncapHeader Packet::decapsulate() {
  DUET_CHECK(!encap_.empty()) << "decapsulate on a plain packet";
  EncapHeader h = encap_.back();
  encap_.pop_back();
  return h;
}

const EncapHeader& Packet::outer() const {
  DUET_CHECK(!encap_.empty()) << "outer() on a plain packet";
  return encap_.back();
}

}  // namespace duet
