// Packet model.
//
// We model exactly what the Duet data plane manipulates: the IP 5-tuple and a
// stack of IP-in-IP encapsulation headers. Commodity switches can push at
// most ONE encap header per pass (§5.2 — "today's switches cannot encapsulate
// a single packet twice"); that limitation is enforced by the dataplane
// pipeline, so the packet itself allows an arbitrary stack (the TIP
// indirection of §5.2 produces depth-1 headers on two successive switches,
// and the virtualized-cluster path produces HMux-encap + HA-delivered inner).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.h"
#include "util/mix.h"

namespace duet {

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kIcmp = 1,
  kIpInIp = 4,
};

// The inner-most connection identity. DIP selection hashes this, identically
// on HMux, SMux and host agent, so connections survive mux migration (§3.3.1).
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  // Total order (lexicographic over the fields) — the deterministic
  // tie-breaker for anything that must pick between tuples independently of
  // hash-table iteration order (e.g. the SMux flow-cap shed).
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
  std::string to_string() const;
};

// One IP-in-IP outer header.
struct EncapHeader {
  Ipv4Address outer_src;
  Ipv4Address outer_dst;

  friend bool operator==(const EncapHeader&, const EncapHeader&) = default;
};

// A simulated packet. Value type; cheap to copy at probe-simulation scales.
class Packet {
 public:
  Packet() = default;
  Packet(FiveTuple tuple, std::uint32_t size_bytes)
      : tuple_(tuple), size_bytes_(size_bytes) {}

  const FiveTuple& tuple() const noexcept { return tuple_; }
  FiveTuple& tuple() noexcept { return tuple_; }

  std::uint32_t size_bytes() const noexcept { return size_bytes_; }
  void set_size_bytes(std::uint32_t s) noexcept { size_bytes_ = s; }

  // --- Encapsulation stack -------------------------------------------------
  bool encapsulated() const noexcept { return !encap_.empty(); }
  std::size_t encap_depth() const noexcept { return encap_.size(); }

  void encapsulate(EncapHeader header) { encap_.push_back(header); }

  // Pops the outermost header; precondition: encapsulated().
  EncapHeader decapsulate();

  const EncapHeader& outer() const;

  // The address the network routes on: outermost encap dst if present,
  // else the inner destination.
  Ipv4Address routing_destination() const noexcept {
    return encap_.empty() ? tuple_.dst : encap_.back().outer_dst;
  }

  // --- Bookkeeping used by the simulators ----------------------------------
  // Cumulative latency experienced so far (microseconds).
  double latency_us = 0.0;
  // Hop count, for loop detection in the pipeline tests.
  int hops = 0;

 private:
  FiveTuple tuple_;
  std::uint32_t size_bytes_ = 1500;
  std::vector<EncapHeader> encap_;
};

}  // namespace duet

template <>
struct std::hash<duet::FiveTuple> {
  // Full 64-bit avalanche over the packed tuple (util/mix.h). The old
  // polynomial mix left the low bits dominated by the ports; in a
  // power-of-two open-addressing table (util/flat_table.h indexes with
  // `hash & mask`) that clustered real traffic — sequential client IPs, a
  // constant dst_port 80 — into long probe chains. Two mix64 rounds give
  // every input bit ~50% influence on every output bit, so the flat table's
  // probe lengths stay O(1) on low-entropy tuples. NOT the DIP-selection
  // hash (that is FlowHasher, unchanged): this hash only places entries in
  // process-local tables, so changing it remaps no connections.
  std::size_t operator()(const duet::FiveTuple& t) const noexcept {
    std::uint64_t h = duet::mix64((static_cast<std::uint64_t>(t.src.value()) << 32) |
                                  t.dst.value());
    h ^= (static_cast<std::uint64_t>(t.src_port) << 24) |
         (static_cast<std::uint64_t>(t.dst_port) << 8) |
         static_cast<std::uint64_t>(t.proto);
    return static_cast<std::size_t>(duet::mix64(h));
  }
};
