#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "util/hot.h"
#include "util/logging.h"

namespace duet {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::size_t at, std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 8);
  out[at + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 24);
  out[at + 1] = static_cast<std::uint8_t>(v >> 16);
  out[at + 2] = static_cast<std::uint8_t>(v >> 8);
  out[at + 3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) | in[at + 3];
}

// Writes one IPv4 header at `at`, filling in the checksum.
void write_header(std::vector<std::uint8_t>& out, std::size_t at, Ipv4Address src,
                  Ipv4Address dst, std::uint8_t proto, std::uint16_t total_length) {
  out[at + 0] = 0x45;  // version 4, IHL 5
  out[at + 1] = 0;     // DSCP/ECN
  put_u16(out, at + 2, total_length);
  put_u16(out, at + 4, 0);  // identification
  put_u16(out, at + 6, 0x4000);  // DF
  out[at + 8] = 64;  // TTL
  out[at + 9] = proto;
  put_u16(out, at + 10, 0);  // checksum placeholder
  put_u32(out, at + 12, src.value());
  put_u32(out, at + 16, dst.value());
  const std::uint16_t csum =
      ipv4_header_checksum(std::span<const std::uint8_t>(out).subspan(at, kIpv4HeaderBytes));
  put_u16(out, at + 10, csum);
}

}  // namespace

DUET_HOT std::uint16_t ipv4_header_checksum(std::span<const std::uint8_t> header) {
  DUET_HOT_CHECK(header.size() == kIpv4HeaderBytes, "checksum over non-header");
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < header.size(); i += 2) {
    sum += static_cast<std::uint32_t>((header[i] << 8) | header[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> serialize_packet(const Packet& packet) {
  const std::size_t layers = packet.encap_depth() + 1;
  const std::size_t header_bytes = layers * kIpv4HeaderBytes + kPortStubBytes;
  const std::size_t total = std::max<std::size_t>(header_bytes, packet.size_bytes());
  std::vector<std::uint8_t> out(total, 0);

  // Encap headers go on the wire outermost first; Packet exposes only the
  // top of its stack, so peel a copy (depths are tiny — at most 2 in Duet).
  Packet copy = packet;
  std::vector<EncapHeader> stack;
  while (copy.encapsulated()) stack.push_back(copy.decapsulate());
  // stack is now outermost-first.
  std::size_t at = 0;
  for (const auto& h : stack) {
    const auto remaining = static_cast<std::uint16_t>(total - at);
    write_header(out, at, h.outer_src, h.outer_dst, static_cast<std::uint8_t>(IpProto::kIpInIp),
                 remaining);
    at += kIpv4HeaderBytes;
  }
  const auto& t = packet.tuple();
  write_header(out, at, t.src, t.dst, static_cast<std::uint8_t>(t.proto),
               static_cast<std::uint16_t>(total - at));
  at += kIpv4HeaderBytes;
  put_u16(out, at, t.src_port);
  put_u16(out, at + 2, t.dst_port);
  return out;
}

std::optional<Packet> parse_packet(std::span<const std::uint8_t> bytes) {
  std::vector<EncapHeader> stack;  // outermost-first
  std::size_t at = 0;

  for (int depth = 0; depth < 16; ++depth) {
    if (bytes.size() < at + kIpv4HeaderBytes) return std::nullopt;
    const auto header = bytes.subspan(at, kIpv4HeaderBytes);
    if (header[0] != 0x45) return std::nullopt;  // version/IHL
    if (ipv4_header_checksum(header) != 0) return std::nullopt;
    const std::uint16_t total_length = get_u16(header, 2);
    // Each layer (serialize_packet's invariant) covers exactly the rest of
    // the datagram: the outermost total length is the datagram length and
    // every nested layer is 20 bytes shorter. Anything else — trailing
    // garbage, a truncated declared length, nested headers disagreeing
    // about the packet end — is malformed and would let an encap/decap
    // fast path and a full reserialization diverge.
    if (total_length < kIpv4HeaderBytes || at + total_length != bytes.size()) {
      return std::nullopt;
    }
    const std::uint8_t proto = header[9];
    const Ipv4Address src{get_u32(header, 12)};
    const Ipv4Address dst{get_u32(header, 16)};

    if (proto == static_cast<std::uint8_t>(IpProto::kIpInIp)) {
      stack.push_back(EncapHeader{src, dst});
      at += kIpv4HeaderBytes;
      continue;
    }

    // Innermost layer: needs the port stub.
    if (bytes.size() < at + kIpv4HeaderBytes + kPortStubBytes) return std::nullopt;
    FiveTuple t;
    t.src = src;
    t.dst = dst;
    t.proto = static_cast<IpProto>(proto);
    t.src_port = get_u16(bytes, at + kIpv4HeaderBytes);
    t.dst_port = get_u16(bytes, at + kIpv4HeaderBytes + 2);

    Packet packet{t, static_cast<std::uint32_t>(bytes.size())};
    // Re-apply encap innermost-first (reverse of parse order).
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) packet.encapsulate(*it);
    return packet;
  }
  return std::nullopt;  // absurd nesting
}

DUET_HOT std::optional<EncapPeek> peek_encap(std::span<const std::uint8_t> bytes) {
  EncapPeek peek{};
  bool have_encap = false;
  std::size_t at = 0;
  // Same walk as parse_packet, same rejects — just no Packet/stack builds.
  for (int depth = 0; depth < 16; ++depth) {
    if (bytes.size() < at + kIpv4HeaderBytes) return std::nullopt;
    const auto header = bytes.subspan(at, kIpv4HeaderBytes);
    if (header[0] != 0x45) return std::nullopt;  // version/IHL
    if (ipv4_header_checksum(header) != 0) return std::nullopt;
    const std::uint16_t total_length = get_u16(header, 2);
    if (total_length < kIpv4HeaderBytes || at + total_length != bytes.size()) {
      return std::nullopt;
    }
    const std::uint8_t proto = header[9];
    if (proto == static_cast<std::uint8_t>(IpProto::kIpInIp)) {
      if (!have_encap) {
        peek.outer_dst = Ipv4Address{get_u32(header, 16)};
        have_encap = true;
      }
      at += kIpv4HeaderBytes;
      continue;
    }
    if (bytes.size() < at + kIpv4HeaderBytes + kPortStubBytes) return std::nullopt;
    if (!have_encap) return std::nullopt;  // well-formed but not encapsulated
    peek.inner_src_port = get_u16(bytes, at + kIpv4HeaderBytes);
    peek.inner_dst_port = get_u16(bytes, at + kIpv4HeaderBytes + 2);
    return peek;
  }
  return std::nullopt;  // absurd nesting
}

DUET_HOT std::size_t encapsulate_on_wire(std::span<const std::uint8_t> datagram,
                                         const EncapHeader& outer, std::span<std::uint8_t> out) {
  const std::size_t total = datagram.size() + kIpv4HeaderBytes;
  if (datagram.size() < kIpv4HeaderBytes || total > 0xffff || out.size() < total) return 0;
  if (out.data() + kIpv4HeaderBytes != datagram.data()) {
    std::memmove(out.data() + kIpv4HeaderBytes, datagram.data(), datagram.size());
  }
  // write_header wants a vector; build the 20 bytes in place instead.
  std::uint8_t* h = out.data();
  h[0] = 0x45;
  h[1] = 0;
  h[2] = static_cast<std::uint8_t>(total >> 8);
  h[3] = static_cast<std::uint8_t>(total & 0xff);
  h[4] = h[5] = 0;       // identification
  h[6] = 0x40; h[7] = 0; // DF
  h[8] = 64;             // TTL
  h[9] = static_cast<std::uint8_t>(IpProto::kIpInIp);
  h[10] = h[11] = 0;     // checksum placeholder
  const std::uint32_t src = outer.outer_src.value(), dst = outer.outer_dst.value();
  h[12] = static_cast<std::uint8_t>(src >> 24);
  h[13] = static_cast<std::uint8_t>(src >> 16);
  h[14] = static_cast<std::uint8_t>(src >> 8);
  h[15] = static_cast<std::uint8_t>(src & 0xff);
  h[16] = static_cast<std::uint8_t>(dst >> 24);
  h[17] = static_cast<std::uint8_t>(dst >> 16);
  h[18] = static_cast<std::uint8_t>(dst >> 8);
  h[19] = static_cast<std::uint8_t>(dst & 0xff);
  const std::uint16_t csum =
      ipv4_header_checksum(std::span<const std::uint8_t>(h, kIpv4HeaderBytes));
  h[10] = static_cast<std::uint8_t>(csum >> 8);
  h[11] = static_cast<std::uint8_t>(csum & 0xff);
  return total;
}

}  // namespace duet
