// FlowHasher is header-only; this TU exists so the build exercises the header
// standalone (include-what-you-use hygiene).
#include "net/hash.h"
