// Echo endpoints standing in for real DIP servers.
//
// Each DIP gets its own loopback UDP socket (one real endpoint per simulated
// backend). An arriving IP-in-IP datagram is validated with parse_packet,
// decapsulated by dropping the outer 20 bytes — the nested total-length
// chain stays valid, so the inner datagram is byte-for-byte what the client
// originally sent — and echoed to (reply_addr, inner src_port).
//
// This is the paper's DSR analog (§2.1): replies bypass the mux entirely,
// and because every DIP answers from its own socket, the reply's kernel
// source endpoint tells the load generator exactly which DIP served the
// flow — the observable the sim/live equivalence test keys on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "net/ip.h"
#include "runtime/event_loop.h"
#include "runtime/udp.h"

namespace duet::runtime {

class FakeDipPool {
 public:
  struct Options {
    Ipv4Address bind_addr{127, 0, 0, 1};
    Ipv4Address reply_addr{127, 0, 0, 1};
    std::size_t batch = 64;
    int tick_ms = 50;
  };

  FakeDipPool() : FakeDipPool(Options{}) {}
  explicit FakeDipPool(Options options);
  ~FakeDipPool();
  FakeDipPool(const FakeDipPool&) = delete;
  FakeDipPool& operator=(const FakeDipPool&) = delete;

  // Binds an echo socket for `dip`; returns the real endpoint to hand to
  // MuxServer::map_dip, or nullopt on bind failure. Works before start() and
  // on a RUNNING pool: a live add is bound immediately (the endpoint is
  // valid at once) and registered with the serving loop on its next tick —
  // duetd's `duetctl add-dip` path.
  std::optional<Endpoint> add_dip(Ipv4Address dip);

  bool start();
  void shutdown();
  void join();

  // Live counters (relaxed): datagrams seen / rejected at this DIP.
  std::uint64_t packets_at(Ipv4Address dip) const;
  std::uint64_t rejects_at(Ipv4Address dip) const;
  std::uint64_t total_packets() const;

 private:
  struct DipSock;
  void pump(DipSock& ds);
  // Registers queued live adds with the loop. Runs on the pool thread.
  void drain_pending();

  Options opts_;
  mutable std::mutex dips_mu_;  // guards dips_ against the tick's appends
  std::vector<std::unique_ptr<DipSock>> dips_;
  std::mutex pending_mu_;
  std::vector<std::unique_ptr<DipSock>> pending_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
  EventLoop loop_;
};

}  // namespace duet::runtime
