// duetload: a UDP load generator speaking the Duet wire format.
//
// Each simulated flow is a FiveTuple whose dst is a VIP and whose src_port
// is the REAL bound port of one of the generator's source sockets — that is
// what makes the loop close: the mux forwards to a DIP, the DIP echoes the
// decapsulated datagram to (reply_addr, inner src_port), and the reply lands
// back on the socket that sent it. The reply's kernel source endpoint
// identifies WHICH DIP served the flow (each FakeDip has its own socket), so
// the generator observes the mux's VIP→DIP decisions from outside — the
// signal the sim/live equivalence test compares against a pure-simulation
// Smux fed the same tuples.
//
// Two modes:
//   * closed loop (run_closed): a fixed in-flight window with per-packet
//     timeout/retry — every packet is accounted for (received, retried, or
//     given up), the RTT histogram is complete;
//   * open loop (run_open): paced at a target aggregate rate for a duration,
//     fire-and-forget with opportunistic reply collection — the max-rate
//     mode BENCH_live.json uses.
//
// Multiple source sockets spread flows across the mux's SO_REUSEPORT
// workers (the kernel shards by 4-tuple, so one source socket always lands
// on one worker). Timestamps ride inside the packet (runtime/stamp.h), so
// RTT needs no per-packet lookup on the reply path.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "runtime/stamp.h"
#include "runtime/udp.h"
#include "telemetry/metrics.h"

namespace duet::runtime {

struct LoadGenOptions {
  Endpoint target;                       // the mux's listen endpoint
  Ipv4Address bind_addr{127, 0, 0, 1};   // where source sockets bind
  std::size_t sockets = 1;               // source sockets (worker spread)
  std::size_t packet_bytes = 128;        // wire datagram size (min 40: stamp)
  std::size_t batch = 64;

  // Closed loop.
  std::size_t window = 64;     // in-flight cap across all sockets
  double timeout_ms = 200.0;   // per-transmission retry timeout
  int max_retries = 3;

  // Open loop.
  double pps = 100e3;          // aggregate target rate
  double duration_s = 1.0;
  double linger_ms = 200.0;    // post-deadline reply collection
};

struct LoadReport {
  std::uint64_t sent = 0;                // datagrams handed to the kernel
  std::uint64_t received = 0;            // replies matched to a request
  std::uint64_t timeouts = 0;            // closed loop: given up after retries
  std::uint64_t retries = 0;
  std::uint64_t send_drops = 0;          // open loop: kernel refused (EAGAIN)
  std::uint64_t integrity_failures = 0;  // reply bytes != request bytes
  std::uint64_t remap_violations = 0;    // one flow answered by two DIPs
  double elapsed_s = 0.0;
  double send_pps = 0.0;

  // Kernel source endpoint of the first reply per flow, index-aligned with
  // the flows span; port 0 = the flow never got a reply.
  std::vector<Endpoint> dip_by_flow;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenOptions options);
  ~LoadGenerator();
  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  // Binds the source sockets. False on bind failure.
  bool init();

  // Real bound ports, one per source socket (valid after init()).
  std::vector<std::uint16_t> source_ports() const;

  // `count` flows round-robin over `vips` and the source sockets: flow i
  // targets vips[i % |vips|], src_port = socket (i % sockets)'s real port,
  // with a distinct simulated 10.0.0.0/8 source address. Feed the SAME
  // tuples to a reference Smux to predict live decisions.
  std::vector<FiveTuple> make_flows(std::span<const Ipv4Address> vips,
                                    std::size_t count) const;

  // Sends `packets` datagrams round-robin over `flows`, windowed, with
  // timeout/retry. Blocks until every packet is resolved.
  LoadReport run_closed(std::span<const FiveTuple> flows, std::uint64_t packets);

  // Paced open loop at opts.pps for opts.duration_s.
  LoadReport run_open(std::span<const FiveTuple> flows);

  // Counters duet.loadgen.{sent, received, retries, timeouts, send_drops,
  // integrity_failures, remap_violations}; histogram duet.loadgen.rtt_us.
  telemetry::MetricRegistry& metrics() noexcept { return registry_; }
  const telemetry::MetricRegistry& metrics() const noexcept { return registry_; }

 private:
  struct Source;
  // Shared reply handling: byte-compares the reply against its flow's
  // template (stamp region excluded), records RTT and the serving DIP.
  // `now` is the receive timestamp, read once per recv batch by the caller
  // (not per reply — the clock is a syscall-priced vDSO call on the hot
  // path). Returns the reply's stamp, or nullopt on an integrity failure.
  std::optional<Stamp> handle_reply(const RxPacket& reply, std::uint64_t now,
                                    std::span<const FiveTuple> flows,
                                    std::span<const std::vector<std::uint8_t>> templates,
                                    LoadReport& report);
  std::vector<std::vector<std::uint8_t>> build_templates(std::span<const FiveTuple> flows) const;
  std::vector<std::size_t> map_flows_to_sources(std::span<const FiveTuple> flows) const;
  // poll(2) over every source socket; returns once one is readable or after
  // `timeout_ms`.
  void wait_readable(int timeout_ms) const;

  std::uint64_t now_ns() const;

  LoadGenOptions opts_;
  telemetry::MetricRegistry registry_;
  telemetry::Counter* tm_sent_;
  telemetry::Counter* tm_received_;
  telemetry::Counter* tm_retries_;
  telemetry::Counter* tm_timeouts_;
  telemetry::Counter* tm_send_drops_;
  telemetry::Counter* tm_integrity_failures_;
  telemetry::Counter* tm_remap_violations_;
  telemetry::Histogram* tm_rtt_us_;

  std::vector<std::unique_ptr<Source>> sources_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace duet::runtime
