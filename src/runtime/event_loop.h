// Minimal per-worker readiness loop: level-triggered read callbacks plus a
// periodic tick, built on epoll(7) on Linux and poll(2) elsewhere.
//
// One EventLoop per worker thread. Only wake() may be called from another
// thread; it interrupts a blocked wait so the worker promptly re-checks its
// stop flag (the drain path in runtime/mux_server.cc).
#pragma once

#include <atomic>
#include <functional>
#include <memory>

namespace duet::runtime {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when the kernel refused the backing fds (fd exhaustion).
  bool ok() const noexcept;

  // Registers a level-triggered readable callback for `fd`. The callback
  // must consume until EAGAIN or the loop spins. `fd` must stay open until
  // remove() or destruction.
  bool add(int fd, std::function<void()> on_readable);
  bool remove(int fd);

  // Dispatches readiness callbacks until `stop` becomes true, invoking
  // `on_tick` (if set) roughly every `tick_ms`. wake() and tick expiry both
  // re-check `stop`, so shutdown latency is bounded by tick_ms even if
  // wake() is never called.
  void run(const std::atomic<bool>& stop, int tick_ms,
           const std::function<void()>& on_tick = nullptr);

  // Thread-safe: interrupts a blocked run() iteration.
  void wake();

 private:
  struct Impl;
  // Destroyed out-of-line in event_loop.cc where Impl is complete (the dtor
  // also closes the backing fds first).
  std::unique_ptr<Impl> impl_;
};

}  // namespace duet::runtime
