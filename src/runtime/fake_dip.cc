#include "runtime/fake_dip.h"

#include "net/wire.h"

namespace duet::runtime {

struct FakeDipPool::DipSock {
  DipSock(Ipv4Address dip_, UdpSocket sock_, std::size_t batch)
      : dip(dip_), sock(std::move(sock_)), io(batch) {
    rx.resize(batch);  // fixed-size descriptor array: recv_batch never grows it
  }

  Ipv4Address dip;
  UdpSocket sock;
  BatchIo io;
  std::vector<RxPacket> rx;
  std::vector<TxPacket> tx;
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> rejects{0};
};

FakeDipPool::FakeDipPool(Options options) : opts_(options) {}

FakeDipPool::~FakeDipPool() {
  shutdown();
  join();
}

std::optional<Endpoint> FakeDipPool::add_dip(Ipv4Address dip) {
  auto sock = UdpSocket::bind(Endpoint{opts_.bind_addr, 0});
  if (!sock) return std::nullopt;
  const Endpoint at = sock->local();
  auto ds = std::make_unique<DipSock>(dip, std::move(*sock), opts_.batch);
  if (!running_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(dips_mu_);
    dips_.push_back(std::move(ds));
  } else {
    // Live add: the socket already accepts (the kernel queues until the
    // serving loop registers it on the next tick), so the returned endpoint
    // can be mapped immediately.
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(std::move(ds));
    }
    loop_.wake();
  }
  return at;
}

void FakeDipPool::drain_pending() {
  std::vector<std::unique_ptr<DipSock>> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.empty()) return;
    batch.swap(pending_);
  }
  for (auto& ds : batch) {
    DipSock* raw = ds.get();
    loop_.add(raw->sock.fd(), [this, raw] { pump(*raw); });
    std::lock_guard<std::mutex> lock(dips_mu_);
    dips_.push_back(std::move(ds));
  }
}

bool FakeDipPool::start() {
  if (thread_.joinable() || !loop_.ok()) return false;
  stop_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(dips_mu_);
    for (const auto& ds : dips_) {
      DipSock* raw = ds.get();
      if (!loop_.add(raw->sock.fd(), [this, raw] { pump(*raw); })) return false;
    }
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop_.run(stop_, opts_.tick_ms, [this] { drain_pending(); }); });
  return true;
}

void FakeDipPool::shutdown() {
  stop_.store(true, std::memory_order_release);
  loop_.wake();
}

void FakeDipPool::join() {
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

std::uint64_t FakeDipPool::packets_at(Ipv4Address dip) const {
  std::lock_guard<std::mutex> lock(dips_mu_);
  for (const auto& ds : dips_) {
    if (ds->dip == dip) return ds->packets.load(std::memory_order_relaxed);
  }
  return 0;
}

std::uint64_t FakeDipPool::rejects_at(Ipv4Address dip) const {
  std::lock_guard<std::mutex> lock(dips_mu_);
  for (const auto& ds : dips_) {
    if (ds->dip == dip) return ds->rejects.load(std::memory_order_relaxed);
  }
  return 0;
}

std::uint64_t FakeDipPool::total_packets() const {
  std::lock_guard<std::mutex> lock(dips_mu_);
  std::uint64_t total = 0;
  for (const auto& ds : dips_) total += ds->packets.load(std::memory_order_relaxed);
  return total;
}

void FakeDipPool::pump(DipSock& ds) {
  for (;;) {
    const std::size_t n = ds.io.recv_batch(ds.sock.fd(), ds.rx);
    if (n == 0) break;
    ds.tx.clear();
    std::uint64_t rejects = 0;
    for (const RxPacket& p : std::span<const RxPacket>(ds.rx.data(), n)) {
      // Only properly encapsulated datagrams addressed to THIS DIP echo;
      // anything else (stray traffic, un-tunneled packets) is rejected, so a
      // mux bug that skips encap shows up as rejects, not silent success.
      // peek_encap validates exactly like parse_packet but allocates nothing.
      const auto peek = peek_encap(p.bytes);
      if (!peek.has_value() || peek->outer_dst != ds.dip) {
        ++rejects;
        continue;
      }
      const auto inner = p.bytes.subspan(kIpv4HeaderBytes);  // decap: drop the outer header
      ds.tx.push_back(TxPacket{inner.data(), inner.size(),
                               Endpoint{opts_.reply_addr, peek->inner_src_port}});
    }
    ds.packets.fetch_add(n, std::memory_order_relaxed);
    if (rejects > 0) ds.rejects.fetch_add(rejects, std::memory_order_relaxed);
    ds.io.send_batch(ds.sock.fd(), ds.tx, 5);
    if (n < ds.io.batch()) break;
  }
}

}  // namespace duet::runtime
