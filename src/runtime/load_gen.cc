#include "runtime/load_gen.h"

#include <poll.h>

#include <algorithm>
#include <unordered_map>

#include "net/wire.h"

namespace duet::runtime {

struct LoadGenerator::Source {
  Source(UdpSocket sock_, std::size_t batch) : sock(std::move(sock_)), io(batch) {
    rx.resize(batch);  // fixed-size descriptor array: recv_batch never grows it
  }

  UdpSocket sock;
  BatchIo io;
  std::vector<RxPacket> rx;
  std::vector<TxPacket> tx;
  std::vector<std::vector<std::uint8_t>> slots;  // open-loop burst buffers
};

LoadGenerator::LoadGenerator(LoadGenOptions options) : opts_(options) {
  tm_sent_ = &registry_.counter("duet.loadgen.sent");
  tm_received_ = &registry_.counter("duet.loadgen.received");
  tm_retries_ = &registry_.counter("duet.loadgen.retries");
  tm_timeouts_ = &registry_.counter("duet.loadgen.timeouts");
  tm_send_drops_ = &registry_.counter("duet.loadgen.send_drops");
  tm_integrity_failures_ = &registry_.counter("duet.loadgen.integrity_failures");
  tm_remap_violations_ = &registry_.counter("duet.loadgen.remap_violations");
  tm_rtt_us_ = &registry_.histogram("duet.loadgen.rtt_us",
                                    telemetry::Histogram::exponential_bounds(10.0, 1e6, 24));
}

LoadGenerator::~LoadGenerator() = default;

bool LoadGenerator::init() {
  opts_.packet_bytes = std::max(opts_.packet_bytes, min_stamped_bytes());
  const std::size_t n = opts_.sockets < 1 ? 1 : opts_.sockets;
  sources_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto sock = UdpSocket::bind(Endpoint{opts_.bind_addr, 0});
    if (!sock) {
      sources_.clear();
      return false;
    }
    sources_.push_back(std::make_unique<Source>(std::move(*sock), opts_.batch));
  }
  t0_ = std::chrono::steady_clock::now();
  return true;
}

std::vector<std::uint16_t> LoadGenerator::source_ports() const {
  std::vector<std::uint16_t> ports;
  ports.reserve(sources_.size());
  for (const auto& s : sources_) ports.push_back(s->sock.local().port);
  return ports;
}

std::vector<FiveTuple> LoadGenerator::make_flows(std::span<const Ipv4Address> vips,
                                                 std::size_t count) const {
  std::vector<FiveTuple> flows;
  if (vips.empty() || sources_.empty()) return flows;
  const auto ports = source_ports();
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FiveTuple t;
    t.src = Ipv4Address{0x0a000000u + static_cast<std::uint32_t>(i % 0x00ffffffu) + 1};
    t.dst = vips[i % vips.size()];
    t.src_port = ports[i % ports.size()];
    t.dst_port = 80;
    t.proto = IpProto::kUdp;
    flows.push_back(t);
  }
  return flows;
}

std::uint64_t LoadGenerator::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           t0_)
          .count());
}

std::vector<std::vector<std::uint8_t>> LoadGenerator::build_templates(
    std::span<const FiveTuple> flows) const {
  std::vector<std::vector<std::uint8_t>> templates;
  templates.reserve(flows.size());
  for (const FiveTuple& t : flows) {
    templates.push_back(
        serialize_packet(Packet{t, static_cast<std::uint32_t>(opts_.packet_bytes)}));
  }
  return templates;
}

std::vector<std::size_t> LoadGenerator::map_flows_to_sources(
    std::span<const FiveTuple> flows) const {
  std::unordered_map<std::uint16_t, std::size_t> by_port;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    by_port.emplace(sources_[i]->sock.local().port, i);
  }
  std::vector<std::size_t> map;
  map.reserve(flows.size());
  for (const FiveTuple& t : flows) {
    const auto it = by_port.find(t.src_port);
    map.push_back(it != by_port.end() ? it->second : 0);
  }
  return map;
}

void LoadGenerator::wait_readable(int timeout_ms) const {
  std::vector<pollfd> fds;
  fds.reserve(sources_.size());
  for (const auto& s : sources_) fds.push_back(pollfd{s->sock.fd(), POLLIN, 0});
  (void)poll(fds.data(), fds.size(), timeout_ms);
}

std::optional<Stamp> LoadGenerator::handle_reply(
    const RxPacket& reply, std::uint64_t now, std::span<const FiveTuple> flows,
    std::span<const std::vector<std::uint8_t>> templates, LoadReport& report) {
  const auto stamp = read_stamp(reply.bytes);
  if (!stamp.has_value()) {
    ++report.integrity_failures;
    tm_integrity_failures_->inc();
    return std::nullopt;
  }
  const std::size_t flow = stamp->seq % flows.size();
  const auto& tmpl = templates[flow];
  const std::size_t at = stamp_offset();
  // The echo path never rewrites payload bytes: the reply must be the sent
  // datagram verbatim outside the (known-variable) stamp region.
  const bool intact =
      reply.bytes.size() == tmpl.size() &&
      std::equal(reply.bytes.begin(), reply.bytes.begin() + static_cast<std::ptrdiff_t>(at),
                 tmpl.begin()) &&
      std::equal(reply.bytes.begin() + static_cast<std::ptrdiff_t>(at + kStampBytes),
                 reply.bytes.end(), tmpl.begin() + static_cast<std::ptrdiff_t>(at + kStampBytes));
  if (!intact) {
    ++report.integrity_failures;
    tm_integrity_failures_->inc();
    return std::nullopt;
  }
  if (now > stamp->send_ns) {
    tm_rtt_us_->record(static_cast<double>(now - stamp->send_ns) / 1e3);
  }
  Endpoint& serving = report.dip_by_flow[flow];
  if (serving.port == 0) {
    serving = reply.from;
  } else if (!(serving == reply.from)) {
    // The same 5-tuple answered by a different DIP: the §5.2 no-remap
    // guarantee broke somewhere between the mux's flow table and the wire.
    ++report.remap_violations;
    tm_remap_violations_->inc();
  }
  return stamp;
}

LoadReport LoadGenerator::run_closed(std::span<const FiveTuple> flows, std::uint64_t packets) {
  LoadReport report;
  if (flows.empty() || sources_.empty() || packets == 0) return report;
  const auto templates = build_templates(flows);
  const auto flow_src = map_flows_to_sources(flows);
  report.dip_by_flow.assign(flows.size(), Endpoint{});

  struct Out {
    std::uint32_t flow = 0;
    std::uint64_t send_ns = 0;
    int retries = 0;
  };
  std::unordered_map<std::uint64_t, Out> outstanding;
  outstanding.reserve(opts_.window * 2);

  std::vector<std::uint8_t> scratch;
  // Returns the stamp time, 0 when the kernel refused the datagram.
  const auto transmit = [&](std::uint64_t seq, std::uint32_t flow) -> std::uint64_t {
    scratch.assign(templates[flow].begin(), templates[flow].end());
    const std::uint64_t t = now_ns();
    write_stamp(scratch, Stamp{seq, t});
    if (!sources_[flow_src[flow]]->sock.send_to(scratch, opts_.target)) return 0;
    ++report.sent;
    tm_sent_->inc();
    return t;
  };

  const auto timeout_ns = static_cast<std::uint64_t>(opts_.timeout_ms * 1e6);
  const std::uint64_t t_start = now_ns();
  std::uint64_t next_seq = 0;
  std::uint64_t resolved = 0;

  while (resolved < packets) {
    while (next_seq < packets && outstanding.size() < opts_.window) {
      const auto flow = static_cast<std::uint32_t>(next_seq % flows.size());
      const std::uint64_t t = transmit(next_seq, flow);
      if (t == 0) break;  // socket backpressure: collect replies first
      outstanding.emplace(next_seq, Out{flow, t, 0});
      ++next_seq;
    }

    bool progressed = false;
    for (const auto& sp : sources_) {
      Source& s = *sp;
      for (;;) {
        const std::size_t n = s.io.recv_batch(s.sock.fd(), s.rx);
        if (n == 0) break;
        const std::uint64_t rx_now = now_ns();  // one clock read per batch
        std::uint64_t got = 0;
        for (const RxPacket& r : std::span<const RxPacket>(s.rx.data(), n)) {
          const auto stamp = handle_reply(r, rx_now, flows, templates, report);
          if (!stamp.has_value()) continue;
          if (outstanding.erase(stamp->seq) > 0) {
            ++resolved;
            ++got;
            progressed = true;
          }
          // else: duplicate or post-retry straggler — already resolved.
        }
        report.received += got;
        if (got > 0) tm_received_->inc(got);
        if (n < s.io.batch()) break;
      }
    }

    const std::uint64_t now = now_ns();
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      Out& o = it->second;
      if (now - o.send_ns <= timeout_ns) {
        ++it;
        continue;
      }
      if (o.retries >= opts_.max_retries) {
        ++report.timeouts;
        tm_timeouts_->inc();
        ++resolved;
        it = outstanding.erase(it);
        continue;
      }
      if (const std::uint64_t t = transmit(it->first, o.flow); t != 0) {
        o.send_ns = t;
        ++o.retries;
        ++report.retries;
        tm_retries_->inc();
      }
      ++it;
    }

    if (!progressed) wait_readable(1);
  }

  report.elapsed_s = static_cast<double>(now_ns() - t_start) / 1e9;
  report.send_pps = report.elapsed_s > 0 ? static_cast<double>(report.sent) / report.elapsed_s
                                         : 0.0;
  return report;
}

LoadReport LoadGenerator::run_open(std::span<const FiveTuple> flows) {
  LoadReport report;
  if (flows.empty() || sources_.empty() || opts_.pps <= 0.0) return report;
  const auto templates = build_templates(flows);
  const auto flow_src = map_flows_to_sources(flows);
  report.dip_by_flow.assign(flows.size(), Endpoint{});

  const std::size_t wire_bytes = templates[0].size();
  for (const auto& sp : sources_) {
    sp->slots.assign(opts_.batch, std::vector<std::uint8_t>(wire_bytes));
    sp->tx.reserve(opts_.batch);
  }

  const auto drain = [&]() {
    std::size_t got = 0;
    for (const auto& sp : sources_) {
      Source& s = *sp;
      for (;;) {
        const std::size_t n = s.io.recv_batch(s.sock.fd(), s.rx);
        if (n == 0) break;
        const std::uint64_t rx_now = now_ns();  // one clock read per batch
        std::uint64_t batch_got = 0;
        for (const RxPacket& r : std::span<const RxPacket>(s.rx.data(), n)) {
          if (handle_reply(r, rx_now, flows, templates, report).has_value()) ++batch_got;
        }
        report.received += batch_got;
        got += batch_got;
        if (batch_got > 0) tm_received_->inc(batch_got);
        if (n < s.io.batch()) break;
      }
    }
    return got;
  };

  const std::uint64_t t_start = now_ns();
  const auto deadline = t_start + static_cast<std::uint64_t>(opts_.duration_s * 1e9);
  std::uint64_t last = t_start;
  std::uint64_t next_seq = 0;
  double credit = 0.0;

  for (;;) {
    const std::uint64_t now = now_ns();
    if (now >= deadline) break;
    credit += static_cast<double>(now - last) * opts_.pps / 1e9;
    last = now;

    while (credit >= 1.0) {
      const auto burst = std::min(static_cast<std::size_t>(credit), opts_.batch);
      for (const auto& sp : sources_) sp->tx.clear();
      std::vector<std::size_t> used(sources_.size(), 0);
      std::size_t filled = 0;
      // One stamp time per burst (≤ batch packets): sub-µs of shared skew in
      // exchange for dropping a clock read per packet off the send path.
      const std::uint64_t stamp_ns = now_ns();
      for (std::size_t i = 0; i < burst; ++i) {
        const std::size_t flow = next_seq % flows.size();
        const std::size_t si = flow_src[flow];
        Source& s = *sources_[si];
        if (used[si] >= s.slots.size()) break;
        auto& slot = s.slots[used[si]++];
        slot.assign(templates[flow].begin(), templates[flow].end());
        write_stamp(slot, Stamp{next_seq, stamp_ns});
        s.tx.push_back(TxPacket{slot.data(), slot.size(), opts_.target});
        ++next_seq;
        ++filled;
      }
      if (filled == 0) break;
      credit -= static_cast<double>(filled);
      for (const auto& sp : sources_) {
        if (sp->tx.empty()) continue;
        const std::size_t ok = sp->io.send_batch(sp->sock.fd(), sp->tx, 0);
        report.sent += ok;
        tm_sent_->inc(ok);
        if (ok < sp->tx.size()) {
          const std::size_t dropped = sp->tx.size() - ok;
          report.send_drops += dropped;
          tm_send_drops_->inc(dropped);
        }
      }
      drain();
    }

    drain();
    if (credit < 1.0) {
      // Idle until the next packet's worth of credit accrues (sub-ms at the
      // rates we target, so this rounds to a zero-timeout poll).
      wait_readable(static_cast<int>(std::min(1.0, 1e3 / opts_.pps)));
    }
  }

  const std::uint64_t linger_end =
      now_ns() + static_cast<std::uint64_t>(opts_.linger_ms * 1e6);
  while (now_ns() < linger_end) {
    if (drain() == 0) wait_readable(1);
  }

  report.elapsed_s = static_cast<double>(deadline - t_start) / 1e9;
  report.send_pps = report.elapsed_s > 0 ? static_cast<double>(report.sent) / report.elapsed_s
                                         : 0.0;
  return report;
}

}  // namespace duet::runtime
