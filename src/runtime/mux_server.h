// duetd's serving core: SMuxes behind real UDP sockets.
//
// A MuxServer hosts N workers, each an SO_REUSEPORT socket + an Smux replica
// + an EventLoop + a BatchIo pool, driven by an exec::ThreadPool. The kernel
// shards ingress by 4-tuple hash, so every datagram of a flow lands on one
// worker — per-worker flow tables need no locks, exactly the Ananta SMux
// scale-out model the paper assumes (§2.2).
//
// Per batch (DESIGN.md §12): recvmmsg → parse_packet per datagram →
// Smux::process_batch (one clock read per batch, flow-slot prefetch, batched
// telemetry) → encapsulate_on_wire into each rx buffer's headroom
// (zero-copy) → sendmmsg to the DIPs' real endpoints (map_dip). Idle-flow
// eviction runs as a bounded incremental scan on the event-loop tick
// (evict_scan_slots per tick), never a full-table pass on the serving
// thread. Every Smux replica is built
// from the same FlowHasher seed and per-VIP salt as a pure-simulation Smux,
// so live first-packet decisions are bit-identical to the sim's — the
// equivalence contract tests/runtime_test.cc asserts.
//
// Lifecycle: configure (set_vip / map_dip) → start() → traffic → shutdown()
// (stop accepting, per-worker drain flush) → join() → final metrics /
// audit_snapshot(). SIGTERM handling lives in the caller (duetctl serve):
// signal handlers only flip a flag; the server never installs its own.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/snapshot.h"
#include "duet/config.h"
#include "net/hash.h"
#include "net/ip.h"
#include "runtime/udp.h"
#include "telemetry/metrics.h"
#include "util/flat_table.h"

namespace duet::runtime {

struct MuxServerOptions {
  Endpoint listen{Ipv4Address{127, 0, 0, 1}, 0};  // port 0 = kernel-assigned
  std::size_t workers = 1;
  std::size_t batch = 64;    // datagrams per recvmmsg/sendmmsg
  int tick_ms = 50;          // event-loop tick (flow expiry, stats)
  double stats_interval_s = 0.0;  // >0: periodic live counters
  std::string stats_json_path;    // interval-exported JSON ("" = none)
  bool print_stats = false;       // one stdout line per interval
  int drain_wait_ms = 100;        // post-shutdown flush budget per worker
  // Flow-table slots scanned per event-loop tick by the incremental idle
  // evictor (Smux::expire_flows_step). Bounds eviction work per tick so GC
  // never stalls a batch; the full table is cycled across successive ticks.
  std::size_t evict_scan_slots = 2048;
  // In-process HMux fast tier (DESIGN.md §17): per-batch hot-VIP lookups
  // before Smux::process_batch. Costs one direct-mapped probe per packet
  // when nothing is admitted; admission is automatic (settled stateless
  // VIPs only), so a stateful deployment behaves identically either way.
  bool fast_tier = true;
  // Pins worker i to CPU (i mod online CPUs) via pthread_setaffinity_np.
  // Overridable by the DUET_CPU_PIN env var ("1"/"0"); a failed pin (no
  // Linux, restricted sandbox) degrades to unpinned, never an error.
  bool pin_cpus = false;

  FlowHasher hasher{};  // MUST match the reference sim's seed for equivalence
  Ipv4Address self{192, 0, 2, 100};  // outer encap source address
  // Audit backstop prefix; a VIP outside it fails the §3.3.1 aggregate check.
  Ipv4Prefix vip_aggregate{Ipv4Address{100, 0, 0, 0}, 8};
};

class MuxServer {
 public:
  MuxServer(MuxServerOptions options, DuetConfig config);
  ~MuxServer();
  MuxServer(const MuxServer&) = delete;
  MuxServer& operator=(const MuxServer&) = delete;

  // --- configuration (before start()) ---------------------------------------
  void set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
               std::vector<std::uint32_t> weights = {});
  // Where packets whose chosen DIP is `dip` are actually forwarded. A DIP
  // without a mapping drops (counted in duet.runtime.unmapped_dip).
  void map_dip(Ipv4Address dip, Endpoint at);

  // --- live reconfiguration ---------------------------------------------------
  // Thread-safe VIP/DIP mutation that also works while serving: before
  // start() these behave like set_vip/map_dip; on a running server the
  // change is queued per worker and applied on that worker's next event-loop
  // tick — the hot path itself never takes a lock (each worker owns its Smux
  // replica and its own DIP→endpoint map copy). Convergence latency is
  // therefore bounded by tick_ms. duetd drives these from its ops socket.
  void apply_vip_update(Ipv4Address vip, std::vector<Ipv4Address> dips,
                        std::vector<std::uint32_t> weights = {});
  void apply_vip_removal(Ipv4Address vip);
  void apply_dip_map(Ipv4Address dip, Endpoint at);
  // Requests a fast-tier re-snapshot on every worker (applied on the next
  // tick, like the update queue). VIP changes trigger one implicitly; this
  // is the explicit controller/duetd epoch push (kFastTierRebuild).
  void rebuild_fast_tier();

  // --- lifecycle ------------------------------------------------------------
  // Binds the worker sockets and launches the serving threads. False when a
  // bind fails (port in use, no SO_REUSEPORT with workers > 1).
  bool start();
  // Async-signal-UNSAFE stop request (callers flip their own sig_atomic_t in
  // handlers and call this from the main loop). Workers stop accepting,
  // flush queued batches for up to drain_wait_ms, then exit.
  void shutdown();
  // Blocks until every worker has drained. Idempotent.
  void join();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  // Resolved listen endpoint (valid after start(); resolves port 0).
  Endpoint listen_endpoint() const;

  // --- observability ----------------------------------------------------------
  // Counters: duet.runtime.{rx_packets, rx_bytes, tx_packets, tx_bytes,
  // parse_failures, unmapped_dip, tx_drops, rx_batches}; histogram
  // duet.runtime.batch_fill; plus per-worker Smux metrics under
  // duet.runtime.smux.w<i>.*. Reading while workers run sees live
  // (relaxed-atomic) values; consistent totals require join() first.
  telemetry::MetricRegistry& metrics() noexcept { return registry_; }
  const telemetry::MetricRegistry& metrics() const noexcept { return registry_; }

  // Summed across workers. Quiescent only after join().
  std::size_t flow_table_size() const;

  // One worker's serving counters, snapshotted from its lock-free
  // single-writer cells (each is one relaxed load; no mutex anywhere).
  // Consistent totals require join(); live reads see per-cell-atomic values.
  struct WorkerStatsSnapshot {
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_batches = 0;
    std::uint64_t parse_failures = 0;
    std::uint64_t unmapped_dip = 0;
    std::uint64_t tx_drops = 0;
    std::uint64_t fast_hits = 0;
    std::uint64_t fast_misses = 0;
    std::uint64_t fast_rebuilds = 0;
  };
  std::vector<WorkerStatsSnapshot> worker_stats() const;

  // The live deployment rendered in the auditor's data model: the worker
  // pool as a pure-software SMux fleet (no switches, every VIP on the SMux
  // list, backstopped by vip_aggregate). Capture after join(), mirroring
  // SystemSnapshot::capture's converged-controller contract.
  audit::SystemSnapshot audit_snapshot() const;

 private:
  struct Worker;
  struct PendingUpdate;
  struct VipRecord {
    Ipv4Address vip;
    std::vector<Ipv4Address> dips;
    std::vector<std::uint32_t> weights;
  };

  // Queues one update on every worker and wakes their loops.
  void enqueue_update(const PendingUpdate& update);
  // Applies queued updates to this worker's Smux replica + DIP map. Runs on
  // the worker thread (tick callback), so it never races process_batch.
  void drain_updates(Worker& worker);

  void serve(std::size_t index);
  // Re-snapshots the worker's fast tier when VIP churn or an explicit
  // rebuild request made it stale. Tick-thread only.
  void maybe_rebuild_fast(Worker& worker, double now);
  // Pushes this worker's counter deltas into the shared registry (tick and
  // final drain; never the per-batch path).
  void fold_stats(Worker& worker);
  // Reads and forwards until the socket drains; returns the datagram count.
  // `draining` shortens the tx flush wait so shutdown cannot stall on a full
  // socket buffer.
  std::size_t pump(Worker& worker, bool draining);
  void maybe_export_stats(double now_us);
  double now_us() const;

  MuxServerOptions opts_;
  DuetConfig config_;
  telemetry::MetricRegistry registry_;
  telemetry::Counter* tm_rx_packets_;
  telemetry::Counter* tm_rx_bytes_;
  telemetry::Counter* tm_tx_packets_;
  telemetry::Counter* tm_tx_bytes_;
  telemetry::Counter* tm_parse_failures_;
  telemetry::Counter* tm_unmapped_dip_;
  telemetry::Counter* tm_tx_drops_;
  telemetry::Counter* tm_rx_batches_;
  telemetry::Counter* tm_fast_hits_;
  telemetry::Counter* tm_fast_misses_;
  telemetry::Counter* tm_fast_rebuilds_;
  telemetry::Histogram* tm_batch_fill_;

  // Desired configuration (what start() seeds workers from and what
  // audit_snapshot renders). Guarded by config_mu_ once live updates exist.
  std::mutex config_mu_;
  std::vector<VipRecord> vips_;
  // Seed copy for workers; each worker serves from its OWN copy so the
  // per-packet DIP→endpoint hop is one unshared cache line.
  util::FlatTable<Ipv4Address, Endpoint> dip_map_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread runner_;
  std::chrono::steady_clock::time_point t0_;

  // Fast-tier rebuild request clock: rebuild_fast_tier() bumps it, each
  // worker's tick re-snapshots when its seen value lags.
  std::atomic<std::uint64_t> fast_rebuild_seq_{0};

  // Interval-stats state; touched only by worker 0's tick. The interval
  // path reads ONLY the per-worker lock-free cells (one relaxed load each)
  // — never the registry, whose snapshot views take a mutex.
  std::uint64_t last_rx_ = 0;
  std::uint64_t last_tx_ = 0;
  double last_stats_us_ = 0.0;
};

}  // namespace duet::runtime
