#include "runtime/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define DUET_RUNTIME_HAVE_EPOLL 1
#else
#define DUET_RUNTIME_HAVE_EPOLL 0
#endif

namespace duet::runtime {

namespace {
using Clock = std::chrono::steady_clock;

int elapsed_ms(Clock::time_point since) {
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - since).count());
}
}  // namespace

struct EventLoop::Impl {
  std::unordered_map<int, std::function<void()>> callbacks;
  // Wake channel: eventfd on Linux (rd == wr), a non-blocking pipe elsewhere.
  int wake_rd = -1;
  int wake_wr = -1;
#if DUET_RUNTIME_HAVE_EPOLL
  int epoll_fd = -1;
#else
  std::vector<pollfd> pollset;  // rebuilt when `dirty`
  bool dirty = true;
#endif

  bool ok() const { return wake_rd >= 0 && wake_wr >= 0; }

  void drain_wake() const {
    std::uint8_t buf[64];
    while (::read(wake_rd, buf, sizeof(buf)) > 0) {
    }
  }
};

EventLoop::EventLoop() : impl_(std::make_unique<Impl>()) {
#if DUET_RUNTIME_HAVE_EPOLL
  impl_->epoll_fd = epoll_create1(0);
  const int efd = eventfd(0, EFD_NONBLOCK);
  impl_->wake_rd = impl_->wake_wr = efd;
  if (impl_->epoll_fd >= 0 && efd >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = efd;
    if (epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, efd, &ev) < 0) {
      ::close(impl_->epoll_fd);
      impl_->epoll_fd = -1;
    }
  }
  if (impl_->epoll_fd < 0) {
    if (efd >= 0) ::close(efd);
    impl_->wake_rd = impl_->wake_wr = -1;
  }
#else
  int fds[2];
  if (pipe(fds) == 0) {
    for (const int fd : fds) {
      const int flags = fcntl(fd, F_GETFL, 0);
      (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    impl_->wake_rd = fds[0];
    impl_->wake_wr = fds[1];
  }
#endif
}

EventLoop::~EventLoop() {
#if DUET_RUNTIME_HAVE_EPOLL
  if (impl_->epoll_fd >= 0) ::close(impl_->epoll_fd);
  if (impl_->wake_rd >= 0) ::close(impl_->wake_rd);  // eventfd: rd == wr
#else
  if (impl_->wake_rd >= 0) ::close(impl_->wake_rd);
  if (impl_->wake_wr >= 0) ::close(impl_->wake_wr);
#endif
}

bool EventLoop::ok() const noexcept { return impl_->ok(); }

bool EventLoop::add(int fd, std::function<void()> on_readable) {
  if (!impl_->ok() || fd < 0) return false;
#if DUET_RUNTIME_HAVE_EPOLL
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) return false;
#else
  impl_->dirty = true;
#endif
  impl_->callbacks[fd] = std::move(on_readable);
  return true;
}

bool EventLoop::remove(int fd) {
  if (impl_->callbacks.erase(fd) == 0) return false;
#if DUET_RUNTIME_HAVE_EPOLL
  (void)epoll_ctl(impl_->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
#else
  impl_->dirty = true;
#endif
  return true;
}

void EventLoop::wake() {
  if (impl_->wake_wr < 0) return;
#if DUET_RUNTIME_HAVE_EPOLL
  const std::uint64_t one = 1;
  (void)::write(impl_->wake_wr, &one, sizeof(one));
#else
  const std::uint8_t one = 1;
  (void)::write(impl_->wake_wr, &one, sizeof(one));
#endif
}

void EventLoop::run(const std::atomic<bool>& stop, int tick_ms,
                    const std::function<void()>& on_tick) {
  if (!impl_->ok()) return;
  if (tick_ms < 1) tick_ms = 1;
  auto last_tick = Clock::now();

  while (!stop.load(std::memory_order_acquire)) {
    const int waited = elapsed_ms(last_tick);
    const int timeout = waited >= tick_ms ? 0 : tick_ms - waited;

#if DUET_RUNTIME_HAVE_EPOLL
    epoll_event events[64];
    const int n = epoll_wait(impl_->epoll_fd, events, 64, timeout);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == impl_->wake_rd) {
        impl_->drain_wake();
        continue;
      }
      if (const auto it = impl_->callbacks.find(fd); it != impl_->callbacks.end()) it->second();
    }
#else
    if (impl_->dirty) {
      impl_->pollset.clear();
      impl_->pollset.push_back(pollfd{impl_->wake_rd, POLLIN, 0});
      for (const auto& [fd, cb] : impl_->callbacks) {
        impl_->pollset.push_back(pollfd{fd, POLLIN, 0});
      }
      impl_->dirty = false;
    }
    const int n = poll(impl_->pollset.data(), impl_->pollset.size(), timeout);
    if (n > 0) {
      for (const pollfd& p : impl_->pollset) {
        if ((p.revents & POLLIN) == 0) continue;
        if (p.fd == impl_->wake_rd) {
          impl_->drain_wake();
          continue;
        }
        const auto it = impl_->callbacks.find(p.fd);
        if (it != impl_->callbacks.end()) it->second();
        if (impl_->dirty) break;  // callback mutated the fd set
      }
    }
#endif

    if (elapsed_ms(last_tick) >= tick_ms) {
      if (on_tick) on_tick();
      last_tick = Clock::now();
    }
  }
}

}  // namespace duet::runtime
