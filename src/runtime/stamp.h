// Payload stamp for live round-trip measurement.
//
// The wire format (net/wire.h) zero-pads the payload region after the
// innermost port stub. duetload claims the first 16 padding bytes for a
// stamp — sequence number plus send timestamp — so a reply identifies which
// request it answers and when that request left, without any per-packet map
// lookup on the echo side.
//
// The stamp sits at a HEADER-RELATIVE offset: (depth+1)*20 + 4 bytes from
// the start of the datagram at encap depth `depth`. Prepend-encap adds 20
// bytes in front (offset grows by one header) and decap removes them, so a
// request stamped at depth 0 comes back from the echo DIP readable at depth
// 0 again — the round trip never rewrites payload bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/wire.h"

namespace duet::runtime {

struct Stamp {
  std::uint64_t seq = 0;
  std::uint64_t send_ns = 0;
};

inline constexpr std::size_t kStampBytes = 16;

// Byte offset of the stamp in a datagram carrying `encap_depth` outer layers.
constexpr std::size_t stamp_offset(std::size_t encap_depth = 0) {
  return (encap_depth + 1) * kIpv4HeaderBytes + kPortStubBytes;
}

// Minimum datagram size (at the given depth) that can carry a stamp.
constexpr std::size_t min_stamped_bytes(std::size_t encap_depth = 0) {
  return stamp_offset(encap_depth) + kStampBytes;
}

inline bool write_stamp(std::span<std::uint8_t> datagram, const Stamp& stamp,
                        std::size_t encap_depth = 0) {
  const std::size_t at = stamp_offset(encap_depth);
  if (datagram.size() < at + kStampBytes) return false;
  for (int i = 0; i < 8; ++i) {
    datagram[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(stamp.seq >> (56 - 8 * i));
    datagram[at + 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(stamp.send_ns >> (56 - 8 * i));
  }
  return true;
}

inline std::optional<Stamp> read_stamp(std::span<const std::uint8_t> datagram,
                                       std::size_t encap_depth = 0) {
  const std::size_t at = stamp_offset(encap_depth);
  if (datagram.size() < at + kStampBytes) return std::nullopt;
  Stamp s;
  for (int i = 0; i < 8; ++i) {
    s.seq = s.seq << 8 | datagram[at + static_cast<std::size_t>(i)];
    s.send_ns = s.send_ns << 8 | datagram[at + 8 + static_cast<std::size_t>(i)];
  }
  return s;
}

}  // namespace duet::runtime
