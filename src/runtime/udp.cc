#include "runtime/udp.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/hot.h"
#include "util/logging.h"

// recvmmsg/sendmmsg are Linux-only; everywhere else the same interface runs
// a recvfrom/sendto loop (correct, just one syscall per datagram).
#if defined(__linux__)
#define DUET_RUNTIME_HAVE_MMSG 1
#else
#define DUET_RUNTIME_HAVE_MMSG 0
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace duet::runtime {

const bool kBatchIoAvailable = DUET_RUNTIME_HAVE_MMSG != 0;

std::size_t online_cpus() noexcept {
#if defined(__linux__)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<std::size_t>(n) : 1;
#else
  return 1;
#endif
}

bool pin_thread_to_cpu(std::size_t cpu) noexcept {
#if defined(__linux__)
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

namespace {

sockaddr_in to_sockaddr(Endpoint e) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(e.port);
  sa.sin_addr.s_addr = htonl(e.addr.value());
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{Ipv4Address{ntohl(sa.sin_addr.s_addr)}, ntohs(sa.sin_port)};
}

bool wait_writable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLOUT;
  return poll(&p, 1, timeout_ms) > 0;
}

}  // namespace

std::string Endpoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<UdpSocket> UdpSocket::bind(Endpoint at, bool reuse_port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  UdpSocket sock;
  sock.fd_ = fd;

  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return std::nullopt;

  const int one = 1;
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) return std::nullopt;
#else
    return std::nullopt;  // multi-worker sharding needs SO_REUSEPORT
#endif
  }
  // Large kernel buffers: loopback bursts at 100k+ pps overrun the defaults
  // long before the worker gets scheduled. Best-effort (clamped by rmem_max).
  const int kBufBytes = 4 * 1024 * 1024;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kBufBytes, sizeof(kBufBytes));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kBufBytes, sizeof(kBufBytes));
  (void)one;

  const sockaddr_in sa = to_sockaddr(at);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    DUET_LOG_WARN << "bind(" << at.to_string() << ") failed: " << std::strerror(errno);
    return std::nullopt;
  }
  return sock;
}

Endpoint UdpSocket::local() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (fd_ < 0 || getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) < 0) return {};
  return from_sockaddr(sa);
}

bool UdpSocket::send_to(std::span<const std::uint8_t> bytes, Endpoint to) const {
  const sockaddr_in sa = to_sockaddr(to);
  const ssize_t n = ::sendto(fd_, bytes.data(), bytes.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  return n == static_cast<ssize_t>(bytes.size());
}

// --- BatchIo -----------------------------------------------------------------

struct BatchIo::Scratch {
#if DUET_RUNTIME_HAVE_MMSG
  std::vector<mmsghdr> rx_hdrs;
  std::vector<iovec> rx_iovs;
  std::vector<mmsghdr> tx_hdrs;
  std::vector<iovec> tx_iovs;
#endif
  std::vector<sockaddr_in> rx_addrs;
  std::vector<sockaddr_in> tx_addrs;
};

BatchIo::BatchIo(std::size_t batch, std::size_t mtu, std::size_t headroom)
    : batch_(batch < 1 ? 1 : batch),
      mtu_(mtu),
      headroom_(headroom),
      stride_(headroom + mtu),
      pool_(batch_ * stride_),
      scratch_(std::make_unique<Scratch>()) {
  scratch_->rx_addrs.resize(batch_);
  scratch_->tx_addrs.resize(batch_);
#if DUET_RUNTIME_HAVE_MMSG
  scratch_->rx_hdrs.resize(batch_);
  scratch_->rx_iovs.resize(batch_);
  scratch_->tx_hdrs.resize(batch_);
  scratch_->tx_iovs.resize(batch_);
  for (std::size_t i = 0; i < batch_; ++i) {
    scratch_->rx_iovs[i].iov_base = pool_.data() + i * stride_ + headroom_;
    scratch_->rx_iovs[i].iov_len = mtu_;
    msghdr& mh = scratch_->rx_hdrs[i].msg_hdr;
    mh = msghdr{};
    mh.msg_name = &scratch_->rx_addrs[i];
    mh.msg_iov = &scratch_->rx_iovs[i];
    mh.msg_iovlen = 1;
  }
#endif
}

BatchIo::~BatchIo() = default;

// Purity roots (DESIGN.md §14): the per-batch syscall legs. Syscall wrappers
// themselves are leaves the gate permits; what the gate enforces is that no
// formatting, locking, or per-packet allocation crept in around them (the
// one amortized exception, out's vector growth, is allow-listed).
DUET_HOT std::size_t BatchIo::recv_batch(int fd, std::span<RxPacket> out) {
  DUET_HOT_CHECK(out.size() >= batch_, "recv_batch descriptor span smaller than batch()");
#if DUET_RUNTIME_HAVE_MMSG
  // The kernel rewrites msg_namelen and iov_len stays fixed, so only the
  // namelen fields need resetting between calls.
  for (std::size_t i = 0; i < batch_; ++i) {
    scratch_->rx_hdrs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
  }
  const int n = recvmmsg(fd, scratch_->rx_hdrs.data(), static_cast<unsigned>(batch_),
                         MSG_DONTWAIT, nullptr);
  if (n <= 0) return 0;
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = RxPacket{
        std::span<std::uint8_t>(pool_.data() + static_cast<std::size_t>(i) * stride_ + headroom_,
                                scratch_->rx_hdrs[i].msg_len),
        from_sockaddr(scratch_->rx_addrs[i])};
  }
  return static_cast<std::size_t>(n);
#else
  std::size_t n = 0;
  while (n < batch_) {
    std::uint8_t* slot = pool_.data() + n * stride_ + headroom_;
    sockaddr_in& sa = scratch_->rx_addrs[n];
    socklen_t sa_len = sizeof(sa);
    const ssize_t got = ::recvfrom(fd, slot, mtu_, 0, reinterpret_cast<sockaddr*>(&sa), &sa_len);
    if (got < 0) break;  // EAGAIN: socket drained
    out[n] = RxPacket{std::span<std::uint8_t>(slot, static_cast<std::size_t>(got)),
                      from_sockaddr(sa)};
    ++n;
  }
  return n;
#endif
}

DUET_HOT std::size_t BatchIo::send_batch(int fd, std::span<const TxPacket> items,
                                         int flush_wait_ms) {
  std::size_t sent = 0;
  while (sent < items.size()) {
    const std::size_t chunk = std::min(items.size() - sent, batch_);
#if DUET_RUNTIME_HAVE_MMSG
    for (std::size_t i = 0; i < chunk; ++i) {
      const TxPacket& t = items[sent + i];
      scratch_->tx_addrs[i] = to_sockaddr(t.to);
      scratch_->tx_iovs[i].iov_base = const_cast<std::uint8_t*>(t.data);
      scratch_->tx_iovs[i].iov_len = t.len;
      msghdr& mh = scratch_->tx_hdrs[i].msg_hdr;
      mh = msghdr{};
      mh.msg_name = &scratch_->tx_addrs[i];
      mh.msg_namelen = sizeof(sockaddr_in);
      mh.msg_iov = &scratch_->tx_iovs[i];
      mh.msg_iovlen = 1;
    }
    std::size_t done = 0;
    while (done < chunk) {
      const int n = sendmmsg(fd, scratch_->tx_hdrs.data() + done,
                             static_cast<unsigned>(chunk - done), 0);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) && flush_wait_ms > 0 &&
          wait_writable(fd, flush_wait_ms)) {
        continue;
      }
      return sent + done;  // persistent backpressure or a hard error: drop the rest
    }
    sent += done;
#else
    for (std::size_t i = 0; i < chunk; ++i) {
      const TxPacket& t = items[sent + i];
      const sockaddr_in sa = to_sockaddr(t.to);
      for (;;) {
        const ssize_t n = ::sendto(fd, t.data, t.len, 0,
                                   reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
        if (n >= 0) break;
        if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
            flush_wait_ms > 0 && wait_writable(fd, flush_wait_ms)) {
          continue;
        }
        return sent + i;
      }
    }
    sent += chunk;
#endif
  }
  return sent;
}

}  // namespace duet::runtime
