#include "runtime/mux_server.h"

#include <cstdio>

#include "duet/smux.h"
#include "exec/thread_pool.h"
#include "net/wire.h"
#include "runtime/event_loop.h"
#include "telemetry/export.h"
#include "util/logging.h"

namespace duet::runtime {

struct MuxServer::PendingUpdate {
  enum class Kind : std::uint8_t { kSetVip, kRemoveVip, kMapDip };
  Kind kind = Kind::kSetVip;
  Ipv4Address vip;
  std::vector<Ipv4Address> dips;
  std::vector<std::uint32_t> weights;
  Ipv4Address dip;
  Endpoint at;
};

struct MuxServer::Worker {
  Worker(std::size_t index_, UdpSocket sock_, Smux smux_, std::size_t batch)
      : index(index_), sock(std::move(sock_)), smux(std::move(smux_)), io(batch) {
    rx.resize(batch);  // fixed-size descriptor array: recv_batch never grows it
    pkts.reserve(batch);
    chosen.reserve(batch);
    rx_index.reserve(batch);
  }

  std::size_t index;
  UdpSocket sock;
  Smux smux;
  BatchIo io;
  EventLoop loop;
  std::vector<RxPacket> rx;
  std::vector<TxPacket> tx;
  // Per-batch scratch, reused so the hot path never allocates: parsed
  // packets, their decided DIPs, and each parsed packet's rx slot.
  std::vector<Packet> pkts;
  std::vector<Ipv4Address> chosen;
  std::vector<std::uint32_t> rx_index;

  // This worker's own DIP→endpoint map. Unshared, so pump() reads it without
  // synchronization; live changes arrive through the pending queue below and
  // land on the worker thread's tick.
  util::FlatTable<Ipv4Address, Endpoint> dip_map;
  std::mutex pending_mu;
  std::vector<PendingUpdate> pending;
};

MuxServer::MuxServer(MuxServerOptions options, DuetConfig config)
    : opts_(std::move(options)), config_(config) {
  tm_rx_packets_ = &registry_.counter("duet.runtime.rx_packets");
  tm_rx_bytes_ = &registry_.counter("duet.runtime.rx_bytes");
  tm_tx_packets_ = &registry_.counter("duet.runtime.tx_packets");
  tm_tx_bytes_ = &registry_.counter("duet.runtime.tx_bytes");
  tm_parse_failures_ = &registry_.counter("duet.runtime.parse_failures");
  tm_unmapped_dip_ = &registry_.counter("duet.runtime.unmapped_dip");
  tm_tx_drops_ = &registry_.counter("duet.runtime.tx_drops");
  tm_rx_batches_ = &registry_.counter("duet.runtime.rx_batches");
  tm_batch_fill_ = &registry_.histogram(
      "duet.runtime.batch_fill", telemetry::Histogram::exponential_bounds(1.0, 1024.0, 11));
}

MuxServer::~MuxServer() {
  shutdown();
  join();
}

void MuxServer::set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
                        std::vector<std::uint32_t> weights) {
  DUET_CHECK(!running()) << "set_vip on a running MuxServer";
  std::lock_guard<std::mutex> lock(config_mu_);
  vips_.push_back(VipRecord{vip, std::move(dips), std::move(weights)});
}

void MuxServer::map_dip(Ipv4Address dip, Endpoint at) {
  DUET_CHECK(!running()) << "map_dip on a running MuxServer";
  std::lock_guard<std::mutex> lock(config_mu_);
  dip_map_.insert(dip, at);
}

void MuxServer::enqueue_update(const PendingUpdate& update) {
  for (const auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->pending_mu);
      worker->pending.push_back(update);
    }
    worker->loop.wake();
  }
}

void MuxServer::drain_updates(Worker& worker) {
  std::vector<PendingUpdate> batch;
  {
    std::lock_guard<std::mutex> lock(worker.pending_mu);
    if (worker.pending.empty()) return;
    batch.swap(worker.pending);
  }
  for (const PendingUpdate& u : batch) {
    switch (u.kind) {
      case PendingUpdate::Kind::kSetVip:
        worker.smux.set_vip(u.vip, u.dips, u.weights);
        break;
      case PendingUpdate::Kind::kRemoveVip:
        worker.smux.remove_vip(u.vip);
        break;
      case PendingUpdate::Kind::kMapDip:
        worker.dip_map.insert(u.dip, u.at);
        break;
    }
  }
}

void MuxServer::apply_vip_update(Ipv4Address vip, std::vector<Ipv4Address> dips,
                                 std::vector<std::uint32_t> weights) {
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    bool found = false;
    for (VipRecord& rec : vips_) {
      if (rec.vip == vip) {
        rec.dips = dips;
        rec.weights = weights;
        found = true;
        break;
      }
    }
    if (!found) vips_.push_back(VipRecord{vip, dips, weights});
  }
  if (!running()) return;  // start() seeds workers from vips_
  PendingUpdate u;
  u.kind = PendingUpdate::Kind::kSetVip;
  u.vip = vip;
  u.dips = std::move(dips);
  u.weights = std::move(weights);
  enqueue_update(u);
}

void MuxServer::apply_vip_removal(Ipv4Address vip) {
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    for (auto it = vips_.begin(); it != vips_.end(); ++it) {
      if (it->vip == vip) {
        vips_.erase(it);
        break;
      }
    }
  }
  if (!running()) return;
  PendingUpdate u;
  u.kind = PendingUpdate::Kind::kRemoveVip;
  u.vip = vip;
  enqueue_update(u);
}

void MuxServer::apply_dip_map(Ipv4Address dip, Endpoint at) {
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    dip_map_.insert(dip, at);
  }
  if (!running()) return;
  PendingUpdate u;
  u.kind = PendingUpdate::Kind::kMapDip;
  u.dip = dip;
  u.at = at;
  enqueue_update(u);
}

bool MuxServer::start() {
  if (running()) return false;
  workers_.clear();
  stop_.store(false, std::memory_order_release);

  const std::size_t n = opts_.workers < 1 ? 1 : opts_.workers;
  const bool shard = n > 1;
  auto first = UdpSocket::bind(opts_.listen, shard);
  if (!first) return false;
  const Endpoint resolved = first->local();

  for (std::size_t w = 0; w < n; ++w) {
    std::optional<UdpSocket> sock;
    if (w == 0) {
      sock = std::move(first);
    } else {
      sock = UdpSocket::bind(resolved, true);
      if (!sock) {
        workers_.clear();
        return false;
      }
    }
    Smux smux(static_cast<std::uint32_t>(w), opts_.hasher, config_, opts_.self);
    for (const VipRecord& rec : vips_) smux.set_vip(rec.vip, rec.dips, rec.weights);
    smux.bind_telemetry(registry_, "duet.runtime.smux.w" + std::to_string(w) + ".");
    auto worker =
        std::make_unique<Worker>(w, std::move(*sock), std::move(smux), opts_.batch);
    if (!worker->loop.ok()) {
      workers_.clear();
      return false;
    }
    worker->dip_map = dip_map_;  // private copy; live changes arrive per tick
    workers_.push_back(std::move(worker));
  }

  t0_ = std::chrono::steady_clock::now();
  last_rx_ = last_tx_ = 0;
  last_stats_us_ = 0.0;
  running_.store(true, std::memory_order_release);
  runner_ = std::thread([this] {
    exec::ThreadPool pool(workers_.size());
    pool.parallel_for(workers_.size(), [this](std::size_t i) { serve(i); });
  });
  return true;
}

void MuxServer::shutdown() {
  stop_.store(true, std::memory_order_release);
  for (const auto& worker : workers_) worker->loop.wake();
}

void MuxServer::join() {
  if (runner_.joinable()) runner_.join();
  if (running_.exchange(false, std::memory_order_acq_rel) &&
      !opts_.stats_json_path.empty()) {
    telemetry::JsonExporter::write_file(opts_.stats_json_path, "duetd", &registry_, nullptr);
  }
}

Endpoint MuxServer::listen_endpoint() const {
  return workers_.empty() ? Endpoint{} : workers_[0]->sock.local();
}

std::size_t MuxServer::flow_table_size() const {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker->smux.flow_table_size();
  return total;
}

double MuxServer::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void MuxServer::serve(std::size_t index) {
  Worker& worker = *workers_[index];
  worker.loop.add(worker.sock.fd(), [this, &worker] { pump(worker, false); });
  worker.loop.run(stop_, opts_.tick_ms, [this, &worker] {
    // Control-plane changes land here, on the serving thread, between
    // batches — no lock on the packet path.
    drain_updates(worker);
    // One clock read per tick; bounded incremental eviction (never a
    // full-table pass on the serving thread).
    const double now = now_us();
    worker.smux.expire_flows_step(now, opts_.evict_scan_slots);
    if (worker.index == 0) maybe_export_stats(now);
  });
  // Drain: serve whatever the kernel already queued, then exit. Each pump
  // empties the socket, so the first empty read means the queue is flushed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opts_.drain_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pump(worker, true) == 0) break;
  }
}

std::size_t MuxServer::pump(Worker& worker, bool draining) {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = worker.io.recv_batch(worker.sock.fd(), worker.rx);
    if (n == 0) break;
    total += n;
    const double now = now_us();  // one clock read per batch

    // Parse pass: telemetry accumulated in locals, flushed once per batch.
    worker.pkts.clear();
    worker.rx_index.clear();
    std::uint64_t rx_bytes = 0;
    std::uint64_t parse_failures = 0;
    for (std::size_t i = 0; i < n; ++i) {
      rx_bytes += worker.rx[i].bytes.size();
      auto parsed = parse_packet(worker.rx[i].bytes);
      if (!parsed.has_value()) {
        ++parse_failures;
        continue;
      }
      worker.pkts.push_back(std::move(*parsed));
      worker.rx_index.push_back(static_cast<std::uint32_t>(i));
    }

    // Decision pass: the whole batch through the SMux at once (prefetched
    // flow lookups, batched counters). Unknown VIPs come back as 0.0.0.0
    // and are counted by the smux's unknown_vip.
    worker.chosen.resize(worker.pkts.size());
    worker.smux.process_batch(worker.pkts, worker.chosen, now);

    // Encap + forward pass.
    worker.tx.clear();
    std::uint64_t unmapped = 0;
    std::uint64_t encap_drops = 0;
    for (std::size_t k = 0; k < worker.pkts.size(); ++k) {
      const Ipv4Address dip = worker.chosen[k];
      if (dip == Ipv4Address{}) continue;
      const Endpoint* at = worker.dip_map.find(dip);
      if (at == nullptr) {
        ++unmapped;
        continue;
      }
      // Zero-copy forward: the outer header goes into the rx headroom.
      const RxPacket& p = worker.rx[worker.rx_index[k]];
      std::uint8_t* head = p.bytes.data() - worker.io.headroom();
      const std::size_t len = encapsulate_on_wire(
          p.bytes, EncapHeader{opts_.self, dip},
          std::span<std::uint8_t>(head, p.bytes.size() + kIpv4HeaderBytes));
      if (len == 0) {
        ++encap_drops;
        continue;
      }
      worker.tx.push_back(TxPacket{head, len, *at});
    }

    const std::size_t sent =
        worker.io.send_batch(worker.sock.fd(), worker.tx, draining ? 1 : 5);
    std::uint64_t tx_bytes = 0;
    for (std::size_t i = 0; i < sent; ++i) tx_bytes += worker.tx[i].len;

    // One telemetry flush per batch.
    tm_rx_batches_->inc();
    tm_batch_fill_->record(static_cast<double>(n));
    tm_rx_packets_->inc(n);
    tm_rx_bytes_->inc(rx_bytes);
    if (parse_failures > 0) tm_parse_failures_->inc(parse_failures);
    if (unmapped > 0) tm_unmapped_dip_->inc(unmapped);
    tm_tx_packets_->inc(sent);
    tm_tx_bytes_->inc(tx_bytes);
    const std::uint64_t tx_drops = encap_drops + (worker.tx.size() - sent);
    if (tx_drops > 0) tm_tx_drops_->inc(tx_drops);

    if (n < worker.io.batch()) break;  // short read: the socket is drained
  }
  return total;
}

void MuxServer::maybe_export_stats(double now) {
  if (opts_.stats_interval_s <= 0.0) return;
  const double interval_us = opts_.stats_interval_s * 1e6;
  if (now - last_stats_us_ < interval_us) return;
  const double dt_s = (now - last_stats_us_) / 1e6;
  const std::uint64_t rx = tm_rx_packets_->value();
  const std::uint64_t tx = tm_tx_packets_->value();
  if (opts_.print_stats) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "duetd t=%8.1fs  rx %10.0f pps  tx %10.0f pps  parse_fail %llu  tx_drops %llu",
                  now / 1e6, static_cast<double>(rx - last_rx_) / dt_s,
                  static_cast<double>(tx - last_tx_) / dt_s,
                  static_cast<unsigned long long>(tm_parse_failures_->value()),
                  static_cast<unsigned long long>(tm_tx_drops_->value()));
    DUET_LOG_INFO << line;
  }
  if (!opts_.stats_json_path.empty()) {
    telemetry::JsonExporter::write_file(opts_.stats_json_path, "duetd", &registry_, nullptr);
  }
  last_rx_ = rx;
  last_tx_ = tx;
  last_stats_us_ = now;
}

audit::SystemSnapshot MuxServer::audit_snapshot() const {
  audit::SystemSnapshot snap;
  snap.host_table_capacity = config_.host_table_capacity;
  snap.aggregate = opts_.vip_aggregate;
  snap.live_smux_count = workers_.size();
  for (const auto& worker : workers_) {
    audit::SmuxSnapshot s;
    s.id = static_cast<std::uint32_t>(worker->index);
    s.alive = true;
    s.vip_count = worker->smux.vip_count();
    snap.smuxes.push_back(s);
  }
  for (std::size_t i = 0; i < vips_.size(); ++i) {
    const VipRecord& rec = vips_[i];
    audit::VipSnapshot v;
    v.id = static_cast<VipId>(i);
    v.vip = rec.vip;
    v.dip_count = rec.dips.size();
    v.weights = rec.weights;
    v.on_smux_list = true;  // a pure-SMux deployment: every VIP on the list
    v.aggregate_covers = opts_.vip_aggregate.contains(rec.vip);
    for (const auto& worker : workers_) {
      if (worker->smux.has_vip(rec.vip)) ++v.live_smuxes_holding;
    }
    snap.vips.push_back(std::move(v));
  }
  return snap;
}

}  // namespace duet::runtime
