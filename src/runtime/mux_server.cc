#include "runtime/mux_server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "duet/fast_tier.h"
#include "duet/smux.h"
#include "exec/thread_pool.h"
#include "net/wire.h"
#include "runtime/event_loop.h"
#include "telemetry/export.h"
#include "util/logging.h"

namespace duet::runtime {

namespace {

// One single-writer serving counter: the owning worker is the only writer
// (plain load+store, no lock-prefixed RMW on the hot path); the stats tick
// on worker 0 reads it with one relaxed load.
struct StatCell {
  std::atomic<std::uint64_t> v{0};
  void add(std::uint64_t n) noexcept {
    v.store(v.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept { return v.load(std::memory_order_relaxed); }
};

}  // namespace

struct MuxServer::PendingUpdate {
  enum class Kind : std::uint8_t { kSetVip, kRemoveVip, kMapDip };
  Kind kind = Kind::kSetVip;
  Ipv4Address vip;
  std::vector<Ipv4Address> dips;
  std::vector<std::uint32_t> weights;
  Ipv4Address dip;
  Endpoint at;
};

struct MuxServer::Worker {
  Worker(std::size_t index_, UdpSocket sock_, Smux smux_, std::size_t batch)
      : index(index_), sock(std::move(sock_)), smux(std::move(smux_)), io(batch) {
    rx.resize(batch);  // fixed-size descriptor array: recv_batch never grows it
    pkts.reserve(batch);
    chosen.reserve(batch);
    rx_index.reserve(batch);
    miss_pkts.reserve(batch);
    miss_pos.reserve(batch);
    miss_chosen.reserve(batch);
  }

  std::size_t index;
  UdpSocket sock;
  Smux smux;
  BatchIo io;
  EventLoop loop;
  std::vector<RxPacket> rx;
  std::vector<TxPacket> tx;
  // Per-batch scratch, reused so the hot path never allocates: parsed
  // packets, their decided DIPs, and each parsed packet's rx slot.
  std::vector<Packet> pkts;
  std::vector<Ipv4Address> chosen;
  std::vector<std::uint32_t> rx_index;
  // Fast-tier miss scatter/gather scratch: the cold remainder of a batch
  // (packets the snapshot cannot decide) and where each lands in `chosen`.
  std::vector<Packet> miss_pkts;
  std::vector<std::uint32_t> miss_pos;
  std::vector<Ipv4Address> miss_chosen;

  // This worker's fast tier (DESIGN.md §17), snapshotting this worker's own
  // Smux replica: settledness is per-replica state, so the table must be
  // built from — and on the tick thread of — the replica it fronts.
  FastTier fast{1};
  bool fast_dirty = true;         // VIP churn since the last snapshot
  std::uint64_t fast_seen_seq = 0;  // last rebuild_fast_tier() clock applied

  // Lock-free serving counters, this worker the only writer (one cache
  // line; see StatCell). The interval-stats tick and worker_stats() read
  // these; the shared registry is only fed folded deltas on the tick.
  struct alignas(64) HotStats {
    StatCell rx_packets, rx_bytes, tx_packets, tx_bytes, rx_batches;
    StatCell parse_failures, unmapped_dip, tx_drops;
    StatCell fast_hits, fast_misses;
  } stats;
  // Registry-fold bookkeeping (worker thread only): what has already been
  // pushed into the shared counters.
  struct Folded {
    std::uint64_t rx_packets = 0, rx_bytes = 0, tx_packets = 0, tx_bytes = 0;
    std::uint64_t rx_batches = 0, parse_failures = 0, unmapped_dip = 0, tx_drops = 0;
    std::uint64_t fast_hits = 0, fast_misses = 0, fast_rebuilds = 0;
  } folded;

  // This worker's own DIP→endpoint map. Unshared, so pump() reads it without
  // synchronization; live changes arrive through the pending queue below and
  // land on the worker thread's tick.
  util::FlatTable<Ipv4Address, Endpoint> dip_map;
  std::mutex pending_mu;
  std::vector<PendingUpdate> pending;
};

MuxServer::MuxServer(MuxServerOptions options, DuetConfig config)
    : opts_(std::move(options)), config_(config) {
  tm_rx_packets_ = &registry_.counter("duet.runtime.rx_packets");
  tm_rx_bytes_ = &registry_.counter("duet.runtime.rx_bytes");
  tm_tx_packets_ = &registry_.counter("duet.runtime.tx_packets");
  tm_tx_bytes_ = &registry_.counter("duet.runtime.tx_bytes");
  tm_parse_failures_ = &registry_.counter("duet.runtime.parse_failures");
  tm_unmapped_dip_ = &registry_.counter("duet.runtime.unmapped_dip");
  tm_tx_drops_ = &registry_.counter("duet.runtime.tx_drops");
  tm_rx_batches_ = &registry_.counter("duet.runtime.rx_batches");
  tm_fast_hits_ = &registry_.counter("duet.runtime.fast_tier.hits");
  tm_fast_misses_ = &registry_.counter("duet.runtime.fast_tier.misses");
  tm_fast_rebuilds_ = &registry_.counter("duet.runtime.fast_tier.rebuilds");
  tm_batch_fill_ = &registry_.histogram(
      "duet.runtime.batch_fill", telemetry::Histogram::exponential_bounds(1.0, 1024.0, 11));
}

MuxServer::~MuxServer() {
  shutdown();
  join();
}

void MuxServer::set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
                        std::vector<std::uint32_t> weights) {
  DUET_CHECK(!running()) << "set_vip on a running MuxServer";
  std::lock_guard<std::mutex> lock(config_mu_);
  vips_.push_back(VipRecord{vip, std::move(dips), std::move(weights)});
}

void MuxServer::map_dip(Ipv4Address dip, Endpoint at) {
  DUET_CHECK(!running()) << "map_dip on a running MuxServer";
  std::lock_guard<std::mutex> lock(config_mu_);
  dip_map_.insert(dip, at);
}

void MuxServer::enqueue_update(const PendingUpdate& update) {
  for (const auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->pending_mu);
      worker->pending.push_back(update);
    }
    worker->loop.wake();
  }
}

void MuxServer::drain_updates(Worker& worker) {
  std::vector<PendingUpdate> batch;
  {
    std::lock_guard<std::mutex> lock(worker.pending_mu);
    if (worker.pending.empty()) return;
    batch.swap(worker.pending);
  }
  for (const PendingUpdate& u : batch) {
    switch (u.kind) {
      case PendingUpdate::Kind::kSetVip:
        worker.smux.set_vip(u.vip, u.dips, u.weights);
        worker.fast_dirty = true;  // snapshot is stale until re-admitted
        break;
      case PendingUpdate::Kind::kRemoveVip:
        worker.smux.remove_vip(u.vip);
        worker.fast_dirty = true;
        break;
      case PendingUpdate::Kind::kMapDip:
        worker.dip_map.insert(u.dip, u.at);  // post-decision; tier unaffected
        break;
    }
  }
}

void MuxServer::rebuild_fast_tier() {
  fast_rebuild_seq_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& worker : workers_) worker->loop.wake();
}

void MuxServer::apply_vip_update(Ipv4Address vip, std::vector<Ipv4Address> dips,
                                 std::vector<std::uint32_t> weights) {
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    bool found = false;
    for (VipRecord& rec : vips_) {
      if (rec.vip == vip) {
        rec.dips = dips;
        rec.weights = weights;
        found = true;
        break;
      }
    }
    if (!found) vips_.push_back(VipRecord{vip, dips, weights});
  }
  if (!running()) return;  // start() seeds workers from vips_
  PendingUpdate u;
  u.kind = PendingUpdate::Kind::kSetVip;
  u.vip = vip;
  u.dips = std::move(dips);
  u.weights = std::move(weights);
  enqueue_update(u);
}

void MuxServer::apply_vip_removal(Ipv4Address vip) {
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    for (auto it = vips_.begin(); it != vips_.end(); ++it) {
      if (it->vip == vip) {
        vips_.erase(it);
        break;
      }
    }
  }
  if (!running()) return;
  PendingUpdate u;
  u.kind = PendingUpdate::Kind::kRemoveVip;
  u.vip = vip;
  enqueue_update(u);
}

void MuxServer::apply_dip_map(Ipv4Address dip, Endpoint at) {
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    dip_map_.insert(dip, at);
  }
  if (!running()) return;
  PendingUpdate u;
  u.kind = PendingUpdate::Kind::kMapDip;
  u.dip = dip;
  u.at = at;
  enqueue_update(u);
}

bool MuxServer::start() {
  if (running()) return false;
  workers_.clear();
  stop_.store(false, std::memory_order_release);

  // Env override for deployments that cannot edit options (benches, CI).
  if (const char* pin = std::getenv("DUET_CPU_PIN"); pin != nullptr && *pin != '\0') {
    opts_.pin_cpus = std::strcmp(pin, "0") != 0;
  }

  const std::size_t n = opts_.workers < 1 ? 1 : opts_.workers;
  const bool shard = n > 1;
  auto first = UdpSocket::bind(opts_.listen, shard);
  if (!first) return false;
  const Endpoint resolved = first->local();

  for (std::size_t w = 0; w < n; ++w) {
    std::optional<UdpSocket> sock;
    if (w == 0) {
      sock = std::move(first);
    } else {
      sock = UdpSocket::bind(resolved, true);
      if (!sock) {
        workers_.clear();
        return false;
      }
    }
    Smux smux(static_cast<std::uint32_t>(w), opts_.hasher, config_, opts_.self);
    for (const VipRecord& rec : vips_) smux.set_vip(rec.vip, rec.dips, rec.weights);
    smux.bind_telemetry(registry_, "duet.runtime.smux.w" + std::to_string(w) + ".");
    auto worker =
        std::make_unique<Worker>(w, std::move(*sock), std::move(smux), opts_.batch);
    if (!worker->loop.ok()) {
      workers_.clear();
      return false;
    }
    worker->dip_map = dip_map_;  // private copy; live changes arrive per tick
    workers_.push_back(std::move(worker));
  }

  t0_ = std::chrono::steady_clock::now();
  last_rx_ = last_tx_ = 0;
  last_stats_us_ = 0.0;
  running_.store(true, std::memory_order_release);
  runner_ = std::thread([this] {
    exec::ThreadPool pool(workers_.size());
    pool.parallel_for(workers_.size(), [this](std::size_t i) { serve(i); });
  });
  return true;
}

void MuxServer::shutdown() {
  stop_.store(true, std::memory_order_release);
  for (const auto& worker : workers_) worker->loop.wake();
}

void MuxServer::join() {
  if (runner_.joinable()) runner_.join();
  if (running_.exchange(false, std::memory_order_acq_rel) &&
      !opts_.stats_json_path.empty()) {
    telemetry::JsonExporter::write_file(opts_.stats_json_path, "duetd", &registry_, nullptr);
  }
}

Endpoint MuxServer::listen_endpoint() const {
  return workers_.empty() ? Endpoint{} : workers_[0]->sock.local();
}

std::size_t MuxServer::flow_table_size() const {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker->smux.flow_table_size();
  return total;
}

double MuxServer::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void MuxServer::maybe_rebuild_fast(Worker& worker, double now) {
  if (!opts_.fast_tier) return;
  const std::uint64_t seq = fast_rebuild_seq_.load(std::memory_order_acquire);
  if (!worker.fast_dirty && seq == worker.fast_seen_seq) return;
  worker.fast_dirty = false;
  worker.fast_seen_seq = seq;
  // Off the serving path: this tick-thread build never races pump() on this
  // worker (same thread), and the swap protocol covers external readers.
  worker.fast.rebuild(worker.smux, now);
}

void MuxServer::fold_stats(Worker& worker) {
  const auto fold = [](StatCell& cell, std::uint64_t& folded, telemetry::Counter* out) {
    const std::uint64_t v = cell.get();
    if (v != folded) {
      out->inc(v - folded);
      folded = v;
    }
  };
  auto& s = worker.stats;
  auto& f = worker.folded;
  fold(s.rx_packets, f.rx_packets, tm_rx_packets_);
  fold(s.rx_bytes, f.rx_bytes, tm_rx_bytes_);
  fold(s.tx_packets, f.tx_packets, tm_tx_packets_);
  fold(s.tx_bytes, f.tx_bytes, tm_tx_bytes_);
  fold(s.rx_batches, f.rx_batches, tm_rx_batches_);
  fold(s.parse_failures, f.parse_failures, tm_parse_failures_);
  fold(s.unmapped_dip, f.unmapped_dip, tm_unmapped_dip_);
  fold(s.tx_drops, f.tx_drops, tm_tx_drops_);
  fold(s.fast_hits, f.fast_hits, tm_fast_hits_);
  fold(s.fast_misses, f.fast_misses, tm_fast_misses_);
  const std::uint64_t rebuilds = worker.fast.rebuilds();
  if (rebuilds != f.fast_rebuilds) {
    tm_fast_rebuilds_->inc(rebuilds - f.fast_rebuilds);
    f.fast_rebuilds = rebuilds;
  }
}

void MuxServer::serve(std::size_t index) {
  Worker& worker = *workers_[index];
  if (opts_.pin_cpus) {
    // Best-effort: a refused pin (non-Linux, sandboxed cpuset) serves
    // unpinned — the fallback ISSUE'd for restricted environments.
    if (!pin_thread_to_cpu(index % online_cpus())) {
      DUET_LOG_INFO << "worker " << index << ": cpu pin unavailable, serving unpinned";
    }
  }
  // First snapshot before any packet, so a stateless deployment serves its
  // very first batch from the fast tier.
  worker.fast_seen_seq = fast_rebuild_seq_.load(std::memory_order_acquire);
  if (opts_.fast_tier) {
    worker.fast_dirty = false;
    worker.fast.rebuild(worker.smux, now_us());
  }
  worker.loop.add(worker.sock.fd(), [this, &worker] { pump(worker, false); });
  worker.loop.run(stop_, opts_.tick_ms, [this, &worker] {
    // Control-plane changes land here, on the serving thread, between
    // batches — no lock on the packet path.
    drain_updates(worker);
    // One clock read per tick; bounded incremental eviction (never a
    // full-table pass on the serving thread).
    const double now = now_us();
    maybe_rebuild_fast(worker, now);
    worker.smux.expire_flows_step(now, opts_.evict_scan_slots);
    fold_stats(worker);
    if (worker.index == 0) maybe_export_stats(now);
  });
  // Drain: serve whatever the kernel already queued, then exit. Each pump
  // empties the socket, so the first empty read means the queue is flushed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opts_.drain_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pump(worker, true) == 0) break;
  }
  // Final fold: after this the shared registry holds this worker's exact
  // totals (join()'s quiescent-counters contract).
  fold_stats(worker);
}

std::size_t MuxServer::pump(Worker& worker, bool draining) {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = worker.io.recv_batch(worker.sock.fd(), worker.rx);
    if (n == 0) break;
    total += n;
    const double now = now_us();  // one clock read per batch

    // Parse pass: telemetry accumulated in locals, flushed once per batch.
    worker.pkts.clear();
    worker.rx_index.clear();
    std::uint64_t rx_bytes = 0;
    std::uint64_t parse_failures = 0;
    for (std::size_t i = 0; i < n; ++i) {
      rx_bytes += worker.rx[i].bytes.size();
      auto parsed = parse_packet(worker.rx[i].bytes);
      if (!parsed.has_value()) {
        ++parse_failures;
        continue;
      }
      worker.pkts.push_back(std::move(*parsed));
      worker.rx_index.push_back(static_cast<std::uint32_t>(i));
    }

    // Decision pass. The fast tier goes first: one direct-mapped probe per
    // packet against the worker's hot-VIP snapshot (hits are bit-identical
    // to the stateless engine's choice by construction — DESIGN.md §17);
    // the cold remainder goes through Smux::process_batch unchanged
    // (prefetched flow lookups, batched counters). Unknown VIPs come back
    // as 0.0.0.0 and are counted by the smux's unknown_vip.
    worker.chosen.resize(worker.pkts.size());
    std::uint64_t fast_hits = 0;
    std::uint64_t fast_misses = 0;
    const FastTierTable* fast = opts_.fast_tier ? worker.fast.acquire(0) : nullptr;
    if (fast != nullptr && fast->empty()) {
      worker.fast.release(0);
      fast = nullptr;  // nothing admitted: skip the probe pass entirely
    }
    if (fast == nullptr) {
      worker.smux.process_batch(worker.pkts, worker.chosen, now);
    } else {
      worker.miss_pkts.clear();
      worker.miss_pos.clear();
      for (std::size_t k = 0; k < worker.pkts.size(); ++k) {
        const FiveTuple& t = worker.pkts[k].tuple();
        const Ipv4Address* dip = fast->lookup(t.dst.value(), opts_.hasher.hash(t));
        if (dip != nullptr) {
          worker.chosen[k] = *dip;
          ++fast_hits;
        } else {
          worker.miss_pos.push_back(static_cast<std::uint32_t>(k));
          worker.miss_pkts.push_back(worker.pkts[k]);
        }
      }
      worker.fast.release(0);
      fast_misses = worker.miss_pkts.size();
      if (!worker.miss_pkts.empty()) {
        worker.miss_chosen.resize(worker.miss_pkts.size());
        worker.smux.process_batch(worker.miss_pkts, worker.miss_chosen, now);
        for (std::size_t j = 0; j < worker.miss_pkts.size(); ++j) {
          worker.chosen[worker.miss_pos[j]] = worker.miss_chosen[j];
        }
      }
    }

    // Encap + forward pass.
    worker.tx.clear();
    std::uint64_t unmapped = 0;
    std::uint64_t encap_drops = 0;
    for (std::size_t k = 0; k < worker.pkts.size(); ++k) {
      const Ipv4Address dip = worker.chosen[k];
      if (dip == Ipv4Address{}) continue;
      const Endpoint* at = worker.dip_map.find(dip);
      if (at == nullptr) {
        ++unmapped;
        continue;
      }
      // Zero-copy forward: the outer header goes into the rx headroom.
      const RxPacket& p = worker.rx[worker.rx_index[k]];
      std::uint8_t* head = p.bytes.data() - worker.io.headroom();
      const std::size_t len = encapsulate_on_wire(
          p.bytes, EncapHeader{opts_.self, dip},
          std::span<std::uint8_t>(head, p.bytes.size() + kIpv4HeaderBytes));
      if (len == 0) {
        ++encap_drops;
        continue;
      }
      worker.tx.push_back(TxPacket{head, len, *at});
    }

    const std::size_t sent =
        worker.io.send_batch(worker.sock.fd(), worker.tx, draining ? 1 : 5);
    std::uint64_t tx_bytes = 0;
    for (std::size_t i = 0; i < sent; ++i) tx_bytes += worker.tx[i].len;

    // One telemetry flush per batch, into this worker's OWN cells (plain
    // load+store, one unshared cache line — no cross-worker contention, no
    // lock-prefixed RMW). The shared registry gets folded deltas on the
    // tick (fold_stats); the batch-fill histogram keeps its shared record
    // (one bucket increment per batch, not per packet).
    auto& st = worker.stats;
    st.rx_batches.add(1);
    tm_batch_fill_->record(static_cast<double>(n));
    st.rx_packets.add(n);
    st.rx_bytes.add(rx_bytes);
    if (parse_failures > 0) st.parse_failures.add(parse_failures);
    if (unmapped > 0) st.unmapped_dip.add(unmapped);
    st.tx_packets.add(sent);
    st.tx_bytes.add(tx_bytes);
    const std::uint64_t tx_drops = encap_drops + (worker.tx.size() - sent);
    if (tx_drops > 0) st.tx_drops.add(tx_drops);
    if (fast_hits > 0) st.fast_hits.add(fast_hits);
    if (fast_misses > 0) st.fast_misses.add(fast_misses);

    if (n < worker.io.batch()) break;  // short read: the socket is drained
  }
  return total;
}

std::vector<MuxServer::WorkerStatsSnapshot> MuxServer::worker_stats() const {
  std::vector<WorkerStatsSnapshot> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    const auto& s = worker->stats;
    WorkerStatsSnapshot w;
    w.rx_packets = s.rx_packets.get();
    w.rx_bytes = s.rx_bytes.get();
    w.tx_packets = s.tx_packets.get();
    w.tx_bytes = s.tx_bytes.get();
    w.rx_batches = s.rx_batches.get();
    w.parse_failures = s.parse_failures.get();
    w.unmapped_dip = s.unmapped_dip.get();
    w.tx_drops = s.tx_drops.get();
    w.fast_hits = s.fast_hits.get();
    w.fast_misses = s.fast_misses.get();
    w.fast_rebuilds = worker->fast.rebuilds();
    out.push_back(w);
  }
  return out;
}

void MuxServer::maybe_export_stats(double now) {
  if (opts_.stats_interval_s <= 0.0) return;
  const double interval_us = opts_.stats_interval_s * 1e6;
  if (now - last_stats_us_ < interval_us) return;
  const double dt_s = (now - last_stats_us_) / 1e6;
  // Fan-in: one relaxed load per per-worker cell. The shared registry — and
  // its snapshot mutex — is never touched on this path.
  const std::vector<WorkerStatsSnapshot> per_worker = worker_stats();
  WorkerStatsSnapshot total;
  for (const WorkerStatsSnapshot& w : per_worker) {
    total.rx_packets += w.rx_packets;
    total.tx_packets += w.tx_packets;
    total.parse_failures += w.parse_failures;
    total.tx_drops += w.tx_drops;
    total.fast_hits += w.fast_hits;
    total.fast_misses += w.fast_misses;
    total.fast_rebuilds += w.fast_rebuilds;
  }
  if (opts_.print_stats) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "duetd t=%8.1fs  rx %10.0f pps  tx %10.0f pps  fast_hit %llu  "
                  "parse_fail %llu  tx_drops %llu",
                  now / 1e6, static_cast<double>(total.rx_packets - last_rx_) / dt_s,
                  static_cast<double>(total.tx_packets - last_tx_) / dt_s,
                  static_cast<unsigned long long>(total.fast_hits),
                  static_cast<unsigned long long>(total.parse_failures),
                  static_cast<unsigned long long>(total.tx_drops));
    DUET_LOG_INFO << line;
  }
  if (!opts_.stats_json_path.empty()) {
    // Light interval document straight from the per-worker cells, with one
    // row per worker (`workers[i].rx/tx/fast_hits`); the full registry dump
    // still lands at join() via JsonExporter.
    std::FILE* f = std::fopen(opts_.stats_json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n  \"source\": \"duetd\",\n  \"t_us\": %.0f,\n"
                   "  \"rx_pps\": %.0f,\n  \"tx_pps\": %.0f,\n"
                   "  \"fast_tier_hits\": %llu,\n  \"fast_tier_misses\": %llu,\n"
                   "  \"fast_tier_rebuilds\": %llu,\n  \"workers\": [\n",
                   now, static_cast<double>(total.rx_packets - last_rx_) / dt_s,
                   static_cast<double>(total.tx_packets - last_tx_) / dt_s,
                   static_cast<unsigned long long>(total.fast_hits),
                   static_cast<unsigned long long>(total.fast_misses),
                   static_cast<unsigned long long>(total.fast_rebuilds));
      for (std::size_t i = 0; i < per_worker.size(); ++i) {
        const WorkerStatsSnapshot& w = per_worker[i];
        std::fprintf(f,
                     "    {\"rx\": %llu, \"tx\": %llu, \"fast_hits\": %llu, "
                     "\"fast_misses\": %llu, \"tx_drops\": %llu}%s\n",
                     static_cast<unsigned long long>(w.rx_packets),
                     static_cast<unsigned long long>(w.tx_packets),
                     static_cast<unsigned long long>(w.fast_hits),
                     static_cast<unsigned long long>(w.fast_misses),
                     static_cast<unsigned long long>(w.tx_drops),
                     i + 1 < per_worker.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
    }
  }
  last_rx_ = total.rx_packets;
  last_tx_ = total.tx_packets;
  last_stats_us_ = now;
}

audit::SystemSnapshot MuxServer::audit_snapshot() const {
  audit::SystemSnapshot snap;
  snap.host_table_capacity = config_.host_table_capacity;
  snap.aggregate = opts_.vip_aggregate;
  snap.live_smux_count = workers_.size();
  for (const auto& worker : workers_) {
    audit::SmuxSnapshot s;
    s.id = static_cast<std::uint32_t>(worker->index);
    s.alive = true;
    s.vip_count = worker->smux.vip_count();
    snap.smuxes.push_back(s);
  }
  for (std::size_t i = 0; i < vips_.size(); ++i) {
    const VipRecord& rec = vips_[i];
    audit::VipSnapshot v;
    v.id = static_cast<VipId>(i);
    v.vip = rec.vip;
    v.dip_count = rec.dips.size();
    v.weights = rec.weights;
    v.on_smux_list = true;  // a pure-SMux deployment: every VIP on the list
    v.aggregate_covers = opts_.vip_aggregate.contains(rec.vip);
    for (const auto& worker : workers_) {
      if (worker->smux.has_vip(rec.vip)) ++v.live_smuxes_holding;
    }
    snap.vips.push_back(std::move(v));
  }
  return snap;
}

}  // namespace duet::runtime
