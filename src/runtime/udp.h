// Non-blocking UDP sockets and batched datagram I/O for the live runtime.
//
// The serving path (runtime/mux_server.h) moves Duet's wire-format packets
// (net/wire.h) over real sockets. Throughput at software-LB rates comes from
// amortizing syscalls: on Linux every socket read/write moves a BATCH of
// datagrams via recvmmsg/sendmmsg into a preallocated buffer pool (BatchIo),
// one syscall per batch instead of per packet. Platforms without the mmsg
// calls fall back to recvfrom/sendto loops behind the same interface
// (kBatchIoAvailable tells callers which world they are in, so CI legs can
// skip throughput assertions gracefully).
//
// Buffers carry kIpv4HeaderBytes of HEADROOM in front of every received
// datagram, sized for exactly one more encap layer: the mux writes the outer
// IP-in-IP header into the headroom (wire.h encapsulate_on_wire) and
// transmits without copying the payload.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ip.h"
#include "net/wire.h"

struct sockaddr_in;  // avoid dragging <netinet/in.h> into every include site

namespace duet::runtime {

// True when the build uses recvmmsg/sendmmsg batching (Linux); false on the
// recvfrom/sendto fallback.
extern const bool kBatchIoAvailable;

// CPU affinity for the sharded-worker scale-out (MuxServerOptions::pin_cpus):
// pins the CALLING thread to `cpu`. Returns false when pinning is
// unsupported (non-Linux) or refused (sandboxed cpuset, cpu offline) —
// callers degrade to unpinned, never fail. online_cpus() never returns 0.
bool pin_thread_to_cpu(std::size_t cpu) noexcept;
std::size_t online_cpus() noexcept;

// A real (kernel-routable) UDP endpoint. Distinct from the SIMULATED
// addresses inside the wire format: the runtime maps simulated DIP/client
// addresses onto loopback endpoints (see MuxServer::map_dip).
struct Endpoint {
  Ipv4Address addr;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  std::string to_string() const;
};

// Move-only RAII wrapper over a bound, non-blocking UDP socket with large
// kernel buffers. `reuse_port` joins an SO_REUSEPORT group: several sockets
// bound to the same endpoint, the kernel sharding ingress flows between them
// (the multi-worker mux's shard mechanism).
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Binds to `at` (port 0 = kernel-assigned). Returns nullopt on failure.
  static std::optional<UdpSocket> bind(Endpoint at, bool reuse_port = false);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  // The actually-bound endpoint (resolves port 0).
  Endpoint local() const;

  // Single-datagram send; returns false on any failure (including EAGAIN).
  bool send_to(std::span<const std::uint8_t> bytes, Endpoint to) const;

 private:
  int fd_ = -1;
};

// One received datagram; `bytes` points into the owning BatchIo's pool and
// is valid until its next recv_batch call. `bytes.data() - headroom()` is
// writable scratch for prepending one encap header.
struct RxPacket {
  std::span<std::uint8_t> bytes;
  Endpoint from;
};

// One datagram to transmit. `data` may point into the rx pool (the zero-copy
// forward path) or anywhere else alive across the send_batch call.
struct TxPacket {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
  Endpoint to;
};

// Preallocated buffers plus the mmsghdr/iovec/sockaddr scratch arrays for
// batched I/O on one socket. Not thread-safe: one BatchIo per worker.
class BatchIo {
 public:
  explicit BatchIo(std::size_t batch, std::size_t mtu = 2048,
                   std::size_t headroom = kIpv4HeaderBytes);
  ~BatchIo();
  BatchIo(const BatchIo&) = delete;
  BatchIo& operator=(const BatchIo&) = delete;

  std::size_t batch() const noexcept { return batch_; }
  std::size_t headroom() const noexcept { return headroom_; }

  // Receives up to batch() datagrams without blocking; writes them to
  // out[0..n) and returns n (0 when the socket is drained). Requires
  // out.size() >= batch() — callers size their descriptor array once at
  // setup, so the receive path compiles down with no growth branch at all
  // (the hot-path purity gate, DESIGN.md §14, checks exactly that).
  // Overwrites the pool, invalidating spans from the previous call.
  std::size_t recv_batch(int fd, std::span<RxPacket> out);

  // Sends as many of `items` as the socket accepts, in order, waiting up to
  // `flush_wait_ms` for buffer space before giving up on the remainder.
  // Returns the number actually handed to the kernel.
  std::size_t send_batch(int fd, std::span<const TxPacket> items, int flush_wait_ms = 5);

 private:
  std::size_t batch_;
  std::size_t mtu_;
  std::size_t headroom_;
  std::size_t stride_;
  std::vector<std::uint8_t> pool_;
  // Opaque scratch (mmsghdr/iovec/sockaddr_in arrays on Linux); hidden so
  // this header stays free of <sys/socket.h>. Destroyed out-of-line in
  // udp.cc where Scratch is complete.
  struct Scratch;
  std::unique_ptr<Scratch> scratch_;
};

}  // namespace duet::runtime

template <>
struct std::hash<duet::runtime::Endpoint> {
  std::size_t operator()(const duet::runtime::Endpoint& e) const noexcept {
    return std::hash<duet::Ipv4Address>{}(e.addr) * 65599 + e.port;
  }
};
