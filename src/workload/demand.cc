#include "workload/demand.h"

#include <algorithm>

#include "util/logging.h"

namespace duet {

std::vector<VipDemand> build_demands(const FatTree& fabric, const Trace& trace,
                                     std::size_t epoch) {
  std::vector<VipDemand> out;
  out.reserve(trace.vips.size());
  for (const auto& v : trace.vips) {
    VipDemand d;
    d.id = v.id;
    d.vip = v.vip;
    d.total_gbps = v.gbps(epoch);
    d.dip_count = v.dips.size();

    d.ingress_gbps.reserve(v.sources.size());
    for (const auto& src : v.sources) {
      d.ingress_gbps.emplace_back(src.ingress, src.fraction * d.total_gbps);
    }

    // Equal split over DIPs (that is what ECMP does); aggregate per ToR.
    std::unordered_map<SwitchId, double> per_tor;
    const double per_dip = v.dips.empty() ? 0.0 : d.total_gbps / static_cast<double>(v.dips.size());
    for (const auto dip : v.dips) {
      const SwitchId tor = fabric.topo.tor_of(dip);
      DUET_CHECK(tor != kInvalidSwitch) << "DIP " << dip.to_string() << " not attached";
      per_tor[tor] += per_dip;
    }
    d.dip_tor_gbps.assign(per_tor.begin(), per_tor.end());
    std::sort(d.dip_tor_gbps.begin(), d.dip_tor_gbps.end());
    std::sort(d.ingress_gbps.begin(), d.ingress_gbps.end());

    out.push_back(std::move(d));
  }
  return out;
}

double total_demand_gbps(const std::vector<VipDemand>& demands) {
  double sum = 0.0;
  for (const auto& d : demands) sum += d.total_gbps;
  return sum;
}

}  // namespace duet
