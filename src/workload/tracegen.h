// Synthetic production-trace generator.
//
// The paper's large-scale evaluation (§8) is driven by a 3-hour trace from a
// production DC with 30 K VIPs whose traffic and DIP-count distributions are
// published as CDFs in Fig 15: highly skewed — a few "elephant" VIPs carry
// most bytes, while the long tail of "mice" VIPs carries almost nothing; DIP
// counts follow a similar skew. We cannot ship that trace, so this module
// generates a synthetic one matching those shapes:
//
//   * per-VIP traffic share ~ Zipf(s≈1.2) over VIP rank (top 10 % of VIPs
//     carry >90 % of bytes, as in Fig 15);
//   * per-VIP DIP count ~ LogNormal, clipped to [1, max_dips], correlated
//     with traffic rank (elephants have more DIPs);
//   * 70 % of each VIP's volume originates at random server ToRs, 30 % at
//     Core switches (Internet ingress) — §2: "almost 70% of the total VIP
//     traffic is generated within DC";
//   * per-epoch drift: each VIP's volume follows a geometric random walk
//     across 10-minute epochs so migration has something to chase (§8.6 runs
//     18 epochs over 3 h with total 6.2–7.1 Tbps).
#pragma once

#include "topo/fattree.h"
#include "util/random.h"
#include "workload/vip.h"

namespace duet {

struct TraceParams {
  std::size_t vip_count = 30'000;
  // Average total VIP traffic per epoch. Individual epochs drift around it.
  double total_gbps = 10'000.0;
  std::size_t epochs = 18;  // 3 hours of 10-minute intervals

  double traffic_zipf_s = 1.2;
  // No single VIP is a fifth of the datacenter: clamp the Zipf head to this
  // share of total traffic (and renormalize). Keeps the Fig 15 tail skew
  // while keeping elephants servable by a single switch.
  double max_vip_fraction = 0.015;
  double dip_lognormal_mu = 1.9;     // median ≈ e^1.9 ≈ 7 DIPs
  double dip_lognormal_sigma = 1.1;  // long tail into the hundreds
  std::size_t max_dips = 1'500;      // tail cap; >512 exercises TIP fanout
  double dip_traffic_correlation = 0.6;  // elephants get more DIPs
  // Physical floor: a DIP's NIC sinks at most this much, so a VIP has at
  // least ceil(peak_gbps / max_gbps_per_dip) DIPs.
  double max_gbps_per_dip = 5.0;

  double internet_fraction = 0.3;  // share of volume entering at Cores
  std::size_t sources_per_vip = 8;
  double epoch_drift_sigma = 0.08;  // per-epoch lognormal step
  // Churn: with this probability per epoch a VIP's volume JUMPS (service
  // redeployment, flash crowd, tenant turnover — the "VIPs or DIPs are added
  // or removed by customers" dynamics of §4.2 expressed as demand shifts).
  // This is what erodes a frozen assignment over hours (Fig 20a One-time).
  double epoch_jump_prob = 0.05;
  double epoch_jump_sigma = 1.0;
  // Fraction of VIPs that ARRIVE mid-trace (uniform birth epoch > 0, zero
  // traffic before) — "VIPs are added or removed by customers" (§4.2). A
  // frozen assignment can never have placed them, which is the main reason
  // One-time decays in Fig 20a. Default 0 keeps single-epoch workloads
  // stationary; the Fig 20 bench turns it on.
  double arrival_fraction = 0.0;

  std::uint64_t seed = 20140817;  // SIGCOMM'14 started Aug 17

  // First VIP address; VIPs are allocated sequentially under the aggregate.
  Ipv4Address vip_base{100, 0, 0, 1};
  std::uint8_t aggregate_length = 8;  // 100.0.0.0/8 announced by SMuxes
};

Trace generate_trace(const FatTree& fabric, const TraceParams& params);

}  // namespace duet
