// VIP workload types shared by the trace generator, the assignment algorithm
// and the simulators.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/ip.h"
#include "topo/topology.h"

namespace duet {

using VipId = std::uint32_t;

// Where a VIP's traffic enters the fabric: a switch (source ToR for intra-DC
// traffic, Core switch for Internet ingress) and the fraction of the VIP's
// volume arriving there. Fractions sum to 1 per VIP.
struct TrafficSource {
  SwitchId ingress = kInvalidSwitch;
  double fraction = 0.0;
};

// One VIP of the workload across the whole trace.
struct VipWorkload {
  VipId id = 0;
  Ipv4Address vip;
  std::vector<Ipv4Address> dips;       // backend servers (attached to ToRs)
  std::vector<TrafficSource> sources;  // ingress distribution
  std::vector<double> gbps_by_epoch;   // traffic volume per 10-min epoch

  double gbps(std::size_t epoch) const {
    return epoch < gbps_by_epoch.size() ? gbps_by_epoch[epoch] : 0.0;
  }
};

// A full trace: the VIP universe plus the covering aggregate prefix that the
// SMuxes announce as backstop (§3.3.1).
struct Trace {
  std::vector<VipWorkload> vips;
  Ipv4Prefix vip_aggregate;  // covers every VIP address
  std::size_t epochs = 0;

  double total_gbps(std::size_t epoch) const {
    double sum = 0.0;
    for (const auto& v : vips) sum += v.gbps(epoch);
    return sum;
  }
};

}  // namespace duet
