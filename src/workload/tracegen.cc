#include "workload/tracegen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace duet {

namespace {

// DIP count for the VIP at `rank` (0 = biggest). Correlation pulls elephants
// towards larger backend pools without making the relation deterministic.
std::size_t sample_dip_count(const TraceParams& p, std::size_t rank, std::size_t vip_count,
                             Rng& rng) {
  // rank_factor in [0,1]: 1 for the hottest VIP, 0 for the coldest.
  const double rank_factor =
      1.0 - static_cast<double>(rank) / static_cast<double>(std::max<std::size_t>(1, vip_count));
  const double mu = p.dip_lognormal_mu + p.dip_traffic_correlation * 2.0 * (rank_factor - 0.5);
  const double raw = rng.lognormal(mu, p.dip_lognormal_sigma);
  const auto n = static_cast<std::size_t>(std::llround(raw));
  return std::clamp<std::size_t>(n, 1, p.max_dips);
}

}  // namespace

Trace generate_trace(const FatTree& fabric, const TraceParams& params) {
  DUET_CHECK(params.vip_count > 0) << "empty trace";
  DUET_CHECK(!fabric.servers.empty()) << "fabric with no servers";
  DUET_CHECK(params.epochs > 0) << "trace needs at least one epoch";

  Rng rng{params.seed};
  Trace trace;
  trace.epochs = params.epochs;
  trace.vip_aggregate = Ipv4Prefix{params.vip_base, params.aggregate_length};
  trace.vips.reserve(params.vip_count);

  // Zipf traffic shares over rank, head-clamped to max_vip_fraction and
  // renormalized. VIPs are emitted in rank order (heaviest first) — callers
  // that need the §4.1 "decreasing traffic" order get it for free, and tests
  // can rely on vips[0] being the elephant.
  const ZipfSampler zipf{params.vip_count, params.traffic_zipf_s};
  std::vector<double> share(params.vip_count);
  double share_sum = 0.0;
  for (std::size_t k = 0; k < params.vip_count; ++k) {
    share[k] = std::min(zipf.pmf(k), params.max_vip_fraction);
    share_sum += share[k];
  }
  for (auto& s : share) s /= share_sum;

  const auto& cores = fabric.cores;
  const std::size_t tor_count = fabric.tors.size();

  for (std::size_t rank = 0; rank < params.vip_count; ++rank) {
    VipWorkload v;
    v.id = static_cast<VipId>(rank);
    v.vip = Ipv4Address{params.vip_base.value() + static_cast<std::uint32_t>(rank)};
    DUET_CHECK(trace.vip_aggregate.contains(v.vip))
        << "VIP " << v.vip.to_string() << " escapes the aggregate "
        << trace.vip_aggregate.to_string();

    // --- DIPs: distinct random servers --------------------------------------
    // Floor the backend pool so no DIP is asked to sink more than a NIC's
    // worth of traffic even at the drift peak (walk is clamped at 4x but
    // stays near ~1.5x in practice; use 2x headroom).
    const double base_gbps = params.total_gbps * share[rank];
    const auto traffic_floor = static_cast<std::size_t>(
        std::ceil(base_gbps * 2.0 / params.max_gbps_per_dip));
    const std::size_t dip_count = std::min(
        {std::max({sample_dip_count(params, rank, params.vip_count, rng), traffic_floor,
                   std::size_t{1}}),
         params.max_dips, fabric.servers.size()});
    std::unordered_set<std::uint32_t> picked;
    while (picked.size() < dip_count) {
      picked.insert(static_cast<std::uint32_t>(rng.uniform(fabric.servers.size())));
    }
    v.dips.reserve(dip_count);
    for (const auto idx : picked) v.dips.push_back(fabric.servers[idx]);

    // --- Sources: intra-DC ToRs + Internet ingress at Cores -----------------
    const double internet = params.internet_fraction;
    const std::size_t n_src = std::max<std::size_t>(1, params.sources_per_vip);
    std::vector<double> weights(n_src);
    double wsum = 0.0;
    for (auto& w : weights) {
      w = rng.exponential(1.0);
      wsum += w;
    }
    for (std::size_t s = 0; s < n_src; ++s) {
      const SwitchId tor = fabric.tors[rng.uniform(tor_count)];
      v.sources.push_back(TrafficSource{tor, (1.0 - internet) * weights[s] / wsum});
    }
    // Internet share splits evenly over all Cores (ECMP from the WAN edge).
    for (const SwitchId core : cores) {
      v.sources.push_back(TrafficSource{core, internet / static_cast<double>(cores.size())});
    }

    // --- Per-epoch volume: clamped-Zipf base × geometric random walk --------
    // Late arrivals contribute nothing before their birth epoch.
    std::size_t birth = 0;
    if (params.epochs > 1 && rng.uniform01() < params.arrival_fraction) {
      birth = 1 + rng.uniform(params.epochs - 1);
    }
    double walk = 1.0;
    v.gbps_by_epoch.reserve(params.epochs);
    for (std::size_t e = 0; e < params.epochs; ++e) {
      v.gbps_by_epoch.push_back(e < birth ? 0.0 : base_gbps * walk);
      walk *= std::exp(rng.normal(0.0, params.epoch_drift_sigma));
      if (rng.uniform01() < params.epoch_jump_prob) {
        walk *= std::exp(rng.normal(0.0, params.epoch_jump_sigma));  // churn event
      }
      walk = std::clamp(walk, 0.25, 4.0);  // keep individual VIPs sane
    }

    trace.vips.push_back(std::move(v));
  }

  DUET_LOG_INFO << "generated trace: " << trace.vips.size() << " VIPs, " << params.epochs
                << " epochs, epoch-0 total " << trace.total_gbps(0) << " Gbps";
  return trace;
}

}  // namespace duet
