// Trace serialization.
//
// Lets users persist a generated trace or bring their own measured workload
// (the moral equivalent of the paper's production trace) in a simple line
// format:
//
//   # duet-trace v1
//   epochs <N>
//   aggregate <prefix>
//   vip <addr> dips <d1;d2;...> sources <sw:frac;...> gbps <g0;g1;...>
//
// Source switch ids bind the trace to a specific fabric build; load_trace
// validates them against the fabric it is given (same builder + params =>
// same ids, so traces are portable across runs).
#pragma once

#include <optional>
#include <string>

#include "topo/fattree.h"
#include "workload/vip.h"

namespace duet {

// Writes the trace; returns false on I/O failure.
bool save_trace(const std::string& path, const Trace& trace);

// Parses and validates against `fabric` (DIPs must be attached servers,
// source switches must exist). Returns nullopt with a logged reason on any
// malformed or inconsistent line.
std::optional<Trace> load_trace(const std::string& path, const FatTree& fabric);

}  // namespace duet
