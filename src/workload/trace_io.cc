#include "workload/trace_io.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace duet {

namespace {

// Splits "a;b;c" into pieces; empty input -> empty vector.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

}  // namespace

bool save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) {
    DUET_LOG_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  out << std::setprecision(17);  // fractions must survive the round trip
  out << "# duet-trace v1\n";
  out << "epochs " << trace.epochs << "\n";
  out << "aggregate " << trace.vip_aggregate.to_string() << "\n";
  for (const auto& v : trace.vips) {
    out << "vip " << v.vip.to_string() << " dips ";
    for (std::size_t i = 0; i < v.dips.size(); ++i) {
      out << (i ? ";" : "") << v.dips[i].to_string();
    }
    out << " sources ";
    for (std::size_t i = 0; i < v.sources.size(); ++i) {
      out << (i ? ";" : "") << v.sources[i].ingress << ":" << v.sources[i].fraction;
    }
    out << " gbps ";
    for (std::size_t i = 0; i < v.gbps_by_epoch.size(); ++i) {
      out << (i ? ";" : "") << v.gbps_by_epoch[i];
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

std::optional<Trace> load_trace(const std::string& path, const FatTree& fabric) {
  std::ifstream in(path);
  if (!in) {
    DUET_LOG_ERROR << "cannot open " << path;
    return std::nullopt;
  }

  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  VipId next_id = 0;
  auto fail = [&](const std::string& why) {
    DUET_LOG_ERROR << path << ":" << line_no << ": " << why;
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;

    if (keyword == "epochs") {
      fields >> trace.epochs;
      if (!fields || trace.epochs == 0) return fail("bad epochs");
    } else if (keyword == "aggregate") {
      std::string text;
      fields >> text;
      const auto prefix = Ipv4Prefix::parse(text);
      if (!prefix) return fail("bad aggregate prefix: " + text);
      trace.vip_aggregate = *prefix;
    } else if (keyword == "vip") {
      std::string addr_text, tag, dips_text, sources_text, gbps_text;
      fields >> addr_text;
      fields >> tag >> dips_text;
      if (tag != "dips") return fail("expected 'dips'");
      fields >> tag >> sources_text;
      if (tag != "sources") return fail("expected 'sources'");
      fields >> tag >> gbps_text;
      if (tag != "gbps") return fail("expected 'gbps'");

      VipWorkload v;
      v.id = next_id++;
      const auto vip = Ipv4Address::parse(addr_text);
      if (!vip) return fail("bad VIP address: " + addr_text);
      v.vip = *vip;
      if (!trace.vip_aggregate.contains(v.vip)) return fail("VIP escapes the aggregate");

      for (const auto& d : split(dips_text, ';')) {
        const auto dip = Ipv4Address::parse(d);
        if (!dip) return fail("bad DIP: " + d);
        if (fabric.topo.tor_of(*dip) == kInvalidSwitch) {
          return fail("DIP " + d + " is not an attached server of this fabric");
        }
        v.dips.push_back(*dip);
      }
      if (v.dips.empty()) return fail("VIP with no DIPs");

      double frac_sum = 0.0;
      for (const auto& s : split(sources_text, ';')) {
        const auto colon = s.find(':');
        if (colon == std::string::npos) return fail("bad source: " + s);
        TrafficSource src;
        src.ingress = static_cast<SwitchId>(std::stoul(s.substr(0, colon)));
        src.fraction = std::stod(s.substr(colon + 1));
        if (src.ingress >= fabric.topo.switch_count()) {
          return fail("source switch out of range: " + s);
        }
        frac_sum += src.fraction;
        v.sources.push_back(src);
      }
      if (v.sources.empty() || std::abs(frac_sum - 1.0) > 1e-6) {
        return fail("source fractions must sum to 1");
      }

      for (const auto& g : split(gbps_text, ';')) v.gbps_by_epoch.push_back(std::stod(g));
      if (v.gbps_by_epoch.size() != trace.epochs) {
        return fail("gbps series length != epochs");
      }
      trace.vips.push_back(std::move(v));
    } else {
      return fail("unknown keyword: " + keyword);
    }
  }
  if (trace.vips.empty()) return fail("trace has no VIPs");
  return trace;
}

}  // namespace duet
