// Per-VIP demand summaries.
//
// The assignment algorithm (§4.1) computes t_{i,s,v} — VIP v's traffic on
// link i when assigned to switch s — "based on the topology and routing
// information as the source/DIP locations and traffic load are known for
// every VIP". The raw trace keys demand by server; the algorithm and the
// flow simulator want it keyed by switch. VipDemand is that aggregation:
//   * ingress:   where the VIP's traffic enters (ToR / Core), in Gbps;
//   * dip_tors:  where it leaves towards DIPs (each DIP gets an equal split
//                of the VIP volume; its ToR accumulates the shares).
// Return (DIP→source) traffic bypasses the mux entirely via DSR (§2.1), so
// only the forward direction is modelled.
#pragma once

#include <unordered_map>
#include <vector>

#include "topo/fattree.h"
#include "workload/vip.h"

namespace duet {

struct VipDemand {
  VipId id = 0;
  Ipv4Address vip;
  double total_gbps = 0.0;
  std::size_t dip_count = 0;
  // Sorted by switch id; at most (sources_per_vip + cores) entries.
  std::vector<std::pair<SwitchId, double>> ingress_gbps;
  // ToRs hosting this VIP's DIPs, with the Gbps leaving the mux toward them.
  std::vector<std::pair<SwitchId, double>> dip_tor_gbps;

  // Bit-exact equality, used by the persist op codec's round-trip checks.
  friend bool operator==(const VipDemand&, const VipDemand&) = default;
};

// Builds demand summaries for one epoch. Order matches trace.vips (i.e.
// decreasing traffic rank).
std::vector<VipDemand> build_demands(const FatTree& fabric, const Trace& trace,
                                     std::size_t epoch);

// Total across a demand set.
double total_demand_gbps(const std::vector<VipDemand>& demands);

}  // namespace duet
