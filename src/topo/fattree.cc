#include "topo/fattree.h"

#include <string>

#include "util/logging.h"

namespace duet {

FatTree build_fattree(const FatTreeParams& params) {
  DUET_CHECK(params.containers > 0 && params.tors_per_container > 0 &&
             params.aggs_per_container > 0 && params.cores > 0)
      << "degenerate FatTree parameters";

  FatTree ft;
  ft.params = params;
  Topology& topo = ft.topo;

  // Core layer.
  for (std::size_t k = 0; k < params.cores; ++k) {
    ft.cores.push_back(topo.add_switch(SwitchRole::kCore, kNoContainer, "C" + std::to_string(k)));
  }

  // Containers: Aggs then ToRs; ToR–Agg full bipartite inside a container.
  for (std::size_t c = 0; c < params.containers; ++c) {
    std::vector<SwitchId> container_aggs;
    for (std::size_t a = 0; a < params.aggs_per_container; ++a) {
      const auto id = topo.add_switch(SwitchRole::kAgg, static_cast<ContainerId>(c),
                                      "A" + std::to_string(c) + "." + std::to_string(a));
      container_aggs.push_back(id);
      ft.aggs.push_back(id);
    }
    for (std::size_t t = 0; t < params.tors_per_container; ++t) {
      const auto id = topo.add_switch(SwitchRole::kTor, static_cast<ContainerId>(c),
                                      "T" + std::to_string(c) + "." + std::to_string(t));
      ft.tors.push_back(id);
      for (const SwitchId agg : container_aggs) {
        topo.add_link(id, agg, params.tor_agg_gbps);
      }
    }
    // Agg–Core uplinks.
    for (std::size_t a = 0; a < container_aggs.size(); ++a) {
      if (params.full_core_mesh) {
        for (const SwitchId core : ft.cores) {
          topo.add_link(container_aggs[a], core, params.agg_core_gbps);
        }
      } else {
        // Stripe: agg a connects to cores a, a+aggs, a+2*aggs, ...
        for (std::size_t k = a; k < params.cores; k += params.aggs_per_container) {
          topo.add_link(container_aggs[a], ft.cores[k], params.agg_core_gbps);
        }
      }
    }
  }

  // Servers: 10.c.t.h style blocks, one /24-ish block per ToR. With more
  // than 256 ToRs per container or servers per ToR this would wrap, so
  // compose the address arithmetically instead of via octets.
  ft.servers_by_tor.resize(ft.tors.size());
  std::uint32_t next_host = (10u << 24) + 1;  // 10.0.0.1 onwards
  for (std::size_t t = 0; t < ft.tors.size(); ++t) {
    ft.servers_by_tor[t].reserve(params.servers_per_tor);
    for (std::size_t h = 0; h < params.servers_per_tor; ++h) {
      const Ipv4Address ip{next_host++};
      topo.attach_host(ip, ft.tors[t]);
      ft.servers_by_tor[t].push_back(ip);
      ft.servers.push_back(ip);
    }
  }

  DUET_LOG_INFO << "built FatTree: " << topo.switch_count() << " switches, " << topo.link_count()
                << " links, " << ft.servers.size() << " servers";
  return ft;
}

}  // namespace duet
