#include "topo/topology.h"

#include "util/logging.h"

namespace duet {

std::string to_string(SwitchRole role) {
  switch (role) {
    case SwitchRole::kTor:
      return "ToR";
    case SwitchRole::kAgg:
      return "Agg";
    case SwitchRole::kCore:
      return "Core";
  }
  return "?";
}

SwitchId Topology::add_switch(SwitchRole role, ContainerId container, std::string name) {
  const auto id = static_cast<SwitchId>(switches_.size());
  switches_.push_back(SwitchInfo{role, container, std::move(name)});
  adjacency_.emplace_back();
  if (container != kNoContainer && container + 1 > container_count_) {
    container_count_ = container + 1;
  }
  return id;
}

LinkId Topology::add_link(SwitchId a, SwitchId b, double capacity_gbps) {
  DUET_CHECK(a < switches_.size() && b < switches_.size()) << "link endpoint out of range";
  DUET_CHECK(a != b) << "self-loop link";
  DUET_CHECK(capacity_gbps > 0.0) << "link with non-positive capacity";
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(LinkInfo{a, b, capacity_gbps});
  adjacency_[a].push_back(Adjacency{b, id});
  adjacency_[b].push_back(Adjacency{a, id});
  return id;
}

void Topology::attach_host(Ipv4Address host, SwitchId tor) {
  DUET_CHECK(tor < switches_.size()) << "attach to unknown switch";
  DUET_CHECK(switches_[tor].role == SwitchRole::kTor) << "hosts attach to ToRs only";
  host_tor_[host] = tor;
}

const SwitchInfo& Topology::switch_info(SwitchId s) const {
  DUET_CHECK(s < switches_.size()) << "switch id out of range: " << s;
  return switches_[s];
}

const LinkInfo& Topology::link_info(LinkId l) const {
  DUET_CHECK(l < links_.size()) << "link id out of range: " << l;
  return links_[l];
}

std::span<const Adjacency> Topology::neighbors(SwitchId s) const {
  DUET_CHECK(s < adjacency_.size()) << "switch id out of range: " << s;
  return adjacency_[s];
}

SwitchId Topology::tor_of(Ipv4Address host) const noexcept {
  const auto it = host_tor_.find(host);
  return it == host_tor_.end() ? kInvalidSwitch : it->second;
}

std::vector<SwitchId> Topology::switches_with_role(SwitchRole role) const {
  std::vector<SwitchId> out;
  for (SwitchId s = 0; s < switches_.size(); ++s) {
    if (switches_[s].role == role) out.push_back(s);
  }
  return out;
}

std::vector<SwitchId> Topology::switches_in_container(ContainerId c) const {
  std::vector<SwitchId> out;
  for (SwitchId s = 0; s < switches_.size(); ++s) {
    if (switches_[s].container == c) out.push_back(s);
  }
  return out;
}

std::vector<LinkId> Topology::links_in_container(ContainerId c) const {
  std::vector<LinkId> out;
  for (LinkId l = 0; l < links_.size(); ++l) {
    const auto& li = links_[l];
    if (switches_[li.a].container == c && switches_[li.b].container == c) out.push_back(l);
  }
  return out;
}

SwitchId Topology::other_end(LinkId l, SwitchId s) const {
  const auto& li = link_info(l);
  DUET_CHECK(li.a == s || li.b == s) << "switch " << s << " is not an endpoint of link " << l;
  return li.a == s ? li.b : li.a;
}

}  // namespace duet
