#include "topo/paths.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace duet {

EcmpRouting::EcmpRouting(const Topology& topo, util::IdSet<SwitchId> failed_switches,
                         util::IdSet<LinkId> failed_links)
    : topo_(&topo),
      failed_switches_(std::move(failed_switches)),
      failed_links_(std::move(failed_links)),
      dist_cache_(topo.switch_count()) {}

bool EcmpRouting::link_alive(LinkId l) const noexcept {
  if (failed_links_.contains(l)) return false;
  const auto& li = topo_->link_info(l);
  return switch_alive(li.a) && switch_alive(li.b);
}

const std::vector<std::uint32_t>& EcmpRouting::dist_field(SwitchId dst) const {
  DUET_CHECK(dst < topo_->switch_count()) << "destination out of range";
  auto& field = dist_cache_[dst];
  if (!field.empty()) return field;

  field.assign(topo_->switch_count(), kUnreachable);
  if (!switch_alive(dst)) return field;  // everything unreachable
  std::deque<SwitchId> queue;
  field[dst] = 0;
  queue.push_back(dst);
  while (!queue.empty()) {
    const SwitchId s = queue.front();
    queue.pop_front();
    for (const auto& adj : topo_->neighbors(s)) {
      if (!link_alive(adj.link) || !switch_alive(adj.neighbor)) continue;
      if (field[adj.neighbor] == kUnreachable) {
        field[adj.neighbor] = field[s] + 1;
        queue.push_back(adj.neighbor);
      }
    }
  }
  return field;
}

std::uint32_t EcmpRouting::distance(SwitchId s, SwitchId dst) const {
  DUET_CHECK(s < topo_->switch_count()) << "source out of range";
  if (!switch_alive(s)) return kUnreachable;
  return dist_field(dst)[s];
}

std::vector<Adjacency> EcmpRouting::next_hops(SwitchId s, SwitchId dst) const {
  std::vector<Adjacency> out;
  const auto& field = dist_field(dst);
  if (!switch_alive(s) || field[s] == kUnreachable || field[s] == 0) return out;
  for (const auto& adj : topo_->neighbors(s)) {
    if (!link_alive(adj.link) || !switch_alive(adj.neighbor)) continue;
    if (field[adj.neighbor] + 1 == field[s]) out.push_back(adj);
  }
  return out;
}

void EcmpRouting::spread(SwitchId src, SwitchId dst, double amount, const SpreadCallback& cb) const {
  if (amount <= 0.0 || src == dst) return;
  const auto& field = dist_field(dst);
  if (!switch_alive(src) || field[src] == kUnreachable) return;

  // Epoch-stamped scratch: no per-call clearing or allocation.
  if (inflow_.size() != topo_->switch_count()) {
    inflow_.assign(topo_->switch_count(), 0.0);
    stamp_.assign(topo_->switch_count(), 0);
  }
  const std::uint32_t epoch = ++epoch_;
  auto touch = [&](SwitchId s) {
    if (stamp_[s] != epoch) {
      stamp_[s] = epoch;
      inflow_[s] = 0.0;
      dag_nodes_.push_back(s);
    }
  };

  // Discover the ECMP DAG nodes (stack DFS), then process them in decreasing
  // distance order — every edge goes dist d -> d-1, so each node's inflow is
  // final before it is expanded.
  dag_nodes_.clear();
  touch(src);
  inflow_[src] = amount;
  for (std::size_t head = 0; head < dag_nodes_.size(); ++head) {
    const SwitchId node = dag_nodes_[head];
    if (field[node] == 0) continue;
    for (const auto& adj : topo_->neighbors(node)) {
      if (!link_alive(adj.link) || !switch_alive(adj.neighbor)) continue;
      if (field[adj.neighbor] + 1 == field[node]) touch(adj.neighbor);
    }
  }
  std::sort(dag_nodes_.begin(), dag_nodes_.end(),
            [&field](SwitchId a, SwitchId b) { return field[a] > field[b]; });

  for (const SwitchId node : dag_nodes_) {
    if (field[node] == 0) continue;
    const double a = inflow_[node];
    if (a <= 0.0) continue;
    // Count ECMP next hops, then deposit the even split.
    std::size_t fanout = 0;
    for (const auto& adj : topo_->neighbors(node)) {
      if (!link_alive(adj.link) || !switch_alive(adj.neighbor)) continue;
      if (field[adj.neighbor] + 1 == field[node]) ++fanout;
    }
    DUET_CHECK(fanout > 0) << "reachable node with no next hop";
    const double share = a / static_cast<double>(fanout);
    for (const auto& adj : topo_->neighbors(node)) {
      if (!link_alive(adj.link) || !switch_alive(adj.neighbor)) continue;
      if (field[adj.neighbor] + 1 == field[node]) {
        cb(adj.link, node, share);
        inflow_[adj.neighbor] += share;
      }
    }
  }
}

std::span<const std::pair<std::uint64_t, double>> EcmpRouting::unit_flow(SwitchId src,
                                                                          SwitchId dst) const {
  const std::uint64_t key = static_cast<std::uint64_t>(src) * topo_->switch_count() + dst;
  const auto it = unit_flow_cache_.find(key);
  if (it != unit_flow_cache_.end()) return it->second;
  std::vector<std::pair<std::uint64_t, double>> entries;
  spread(src, dst, 1.0, [&](LinkId l, SwitchId from, double amt) {
    entries.emplace_back(directed_index(l, from), amt);
  });
  // Merge duplicate directed-link entries (a DAG node can be reached twice).
  std::sort(entries.begin(), entries.end());
  std::vector<std::pair<std::uint64_t, double>> merged;
  for (const auto& [idx, amt] : entries) {
    if (!merged.empty() && merged.back().first == idx) {
      merged.back().second += amt;
    } else {
      merged.emplace_back(idx, amt);
    }
  }
  return unit_flow_cache_.emplace(key, std::move(merged)).first->second;
}

std::vector<SwitchId> EcmpRouting::sample_path(SwitchId src, SwitchId dst,
                                               std::uint64_t flow_hash) const {
  std::vector<SwitchId> path;
  if (!switch_alive(src)) return path;
  const auto& field = dist_field(dst);
  if (field[src] == kUnreachable) return path;
  SwitchId cur = src;
  path.push_back(cur);
  std::uint64_t h = flow_hash;
  while (cur != dst) {
    const auto hops = next_hops(cur, dst);
    DUET_CHECK(!hops.empty()) << "reachable node with no next hop";
    // Re-mix per hop: real switches use per-switch hash seeds, which avoids
    // ECMP polarization where every switch makes the same modulo choice.
    h = (h ^ (h >> 33)) * 0xff51afd7ed558ccdULL + cur;
    cur = hops[h % hops.size()].neighbor;
    path.push_back(cur);
    DUET_CHECK(path.size() <= topo_->switch_count() + 1) << "routing loop";
  }
  return path;
}

}  // namespace duet
