// ECMP shortest-path routing over a Topology.
//
// The data center runs standard shortest-path routing with ECMP splitting at
// every hop (§2.1). This class answers three questions the rest of the
// library needs:
//   * next_hops(s, dst)   — control plane: where does switch s forward
//                           traffic destined to (the switch owning) dst?
//   * spread(...)         — flow level: deposit a traffic volume on every
//                           link of the ECMP DAG between two switches,
//                           splitting evenly at each hop. This is what the
//                           VIP assignment algorithm uses to compute t_{i,s,v}.
//   * sample_path(...)    — packet level: the single concrete path a given
//                           flow hash takes (for probe/latency simulation).
//
// Failures: construct with the set of failed switches/links (util::IdSet —
// sorted vectors, deterministic and allocation-light like the rest of the
// failure model); distances are recomputed around them (lazy, per
// destination).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/hash.h"
#include "topo/topology.h"
#include "util/id_set.h"

namespace duet {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

class EcmpRouting {
 public:
  explicit EcmpRouting(const Topology& topo, util::IdSet<SwitchId> failed_switches = {},
                       util::IdSet<LinkId> failed_links = {});

  const Topology& topo() const noexcept { return *topo_; }

  bool switch_alive(SwitchId s) const noexcept { return !failed_switches_.contains(s); }
  bool link_alive(LinkId l) const noexcept;

  // Hop distance from s to dst (0 when s == dst), kUnreachable if cut off.
  std::uint32_t distance(SwitchId s, SwitchId dst) const;
  bool reachable(SwitchId s, SwitchId dst) const { return distance(s, dst) != kUnreachable; }

  // ECMP next hops from s towards dst (neighbors one hop closer).
  std::vector<Adjacency> next_hops(SwitchId s, SwitchId dst) const;

  // Spreads `amount` (any unit; we use Gbps) from src to dst over the ECMP
  // DAG, splitting evenly at each hop. Invokes cb(link, from, amount) for the
  // directed share crossing each link. No-op if unreachable.
  using SpreadCallback = std::function<void(LinkId link, SwitchId from, double amount)>;
  void spread(SwitchId src, SwitchId dst, double amount, const SpreadCallback& cb) const;

  // Cached unit flow: the per-directed-link share of one unit spread from
  // src to dst. Entries are (directed index, fraction) with directed index
  // = link*2 + (0 if traversed a->b else 1). The assignment algorithm calls
  // spread() for the same (src, dst) pairs millions of times per epoch;
  // caching the DAG turns each call into a short multiply-accumulate scan.
  // The cache lives with this routing instance (it is failure-specific).
  //
  // Thread-safety: a MISS computes and inserts into the lazy caches, so
  // concurrent calls are safe only for pairs that are already cached.
  // Parallel callers (VipAssigner's candidate scoring) pre-warm their pairs
  // serially first; the parallel region then performs read-only hits.
  std::span<const std::pair<std::uint64_t, double>> unit_flow(SwitchId src, SwitchId dst) const;

  // The directed index convention used by unit_flow.
  std::uint64_t directed_index(LinkId link, SwitchId from) const {
    return static_cast<std::uint64_t>(link) * 2 + (topo_->link_info(link).a == from ? 0 : 1);
  }

  // The concrete switch sequence taken by a flow with the given hash
  // (per-hop ECMP choice = hash mod fanout, re-mixed each hop as real
  // switches do with distinct hash seeds). Empty if unreachable.
  std::vector<SwitchId> sample_path(SwitchId src, SwitchId dst, std::uint64_t flow_hash) const;

 private:
  // Lazily computed BFS distance field toward each destination.
  const std::vector<std::uint32_t>& dist_field(SwitchId dst) const;

  const Topology* topo_;
  util::IdSet<SwitchId> failed_switches_;
  util::IdSet<LinkId> failed_links_;
  mutable std::vector<std::vector<std::uint32_t>> dist_cache_;  // [dst] -> per-switch dist

  // Allocation-free spread(): epoch-stamped scratch buffers. spread() is the
  // inner loop of the assignment algorithm (millions of calls per epoch at
  // datacenter scale), so it must not allocate.
  mutable std::vector<double> inflow_;
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<SwitchId> dag_nodes_;

  mutable std::unordered_map<std::uint64_t, std::vector<std::pair<std::uint64_t, double>>>
      unit_flow_cache_;
};

}  // namespace duet
