// Parametric FatTree builders.
//
// Two concrete instances matter for the reproduction:
//  * the production DC of §8.1 — 40 containers × (40 ToR + 4 Agg) + 40 Core,
//    10 G ToR–Agg links, 40 G Agg–Core links, ~50 K servers; and
//  * the testbed of Fig 10 — 2 containers × (2 ToR + 2 Agg) + 2 Core.
//
// Benches default to a scaled-down DC (same shape, fewer containers) so the
// whole suite runs in minutes; `FatTreeParams::production()` restores the
// paper's full size.
#pragma once

#include <cstddef>
#include <vector>

#include "topo/topology.h"

namespace duet {

struct FatTreeParams {
  std::size_t containers = 40;
  std::size_t tors_per_container = 40;
  std::size_t aggs_per_container = 4;
  std::size_t cores = 40;
  std::size_t servers_per_tor = 32;     // ≈50K servers at production scale
  double tor_agg_gbps = 10.0;
  double agg_core_gbps = 40.0;
  // Each Agg connects to cores [agg_index * stride ...] round-robin; with
  // full mesh (stride 0 meaning "all"), every Agg uplinks to every Core.
  bool full_core_mesh = true;

  // §8.1 production datacenter.
  static FatTreeParams production() { return FatTreeParams{}; }

  // Same shape, fewer containers/ToRs: default for fast benches.
  static FatTreeParams scaled(std::size_t containers = 8, std::size_t tors = 10,
                              std::size_t cores = 8) {
    FatTreeParams p;
    p.containers = containers;
    p.tors_per_container = tors;
    p.cores = cores;
    return p;
  }

  // Fig 10 testbed: 2 containers of 2 Agg + 2 ToR each, 2 Cores.
  static FatTreeParams testbed() {
    FatTreeParams p;
    p.containers = 2;
    p.tors_per_container = 2;
    p.aggs_per_container = 2;
    p.cores = 2;
    p.servers_per_tor = 15;  // 60 servers across 4 ToRs
    return p;
  }

  std::size_t total_switches() const {
    return containers * (tors_per_container + aggs_per_container) + cores;
  }
  std::size_t total_servers() const { return containers * tors_per_container * servers_per_tor; }
};

// The built tree plus indexes into it that builders and benches need.
struct FatTree {
  Topology topo;
  FatTreeParams params;
  std::vector<SwitchId> tors;   // all ToRs, container-major order
  std::vector<SwitchId> aggs;   // all Aggs, container-major order
  std::vector<SwitchId> cores;  // all Cores

  // Server IPs attached to each ToR (index parallel to `tors`).
  std::vector<std::vector<Ipv4Address>> servers_by_tor;
  // Flat list of all server IPs.
  std::vector<Ipv4Address> servers;

  // ToR index (into `tors`) hosting a server; convenience over topo.tor_of.
  SwitchId tor_of(Ipv4Address server) const { return topo.tor_of(server); }
};

// Builds the tree. Server IPs are allocated from 10.0.0.0/8, one block per
// ToR, so tests can predict addresses.
FatTree build_fattree(const FatTreeParams& params);

}  // namespace duet
