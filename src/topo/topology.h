// Switch-level datacenter topology.
//
// Nodes are switches (ToR / Agg / Core); servers are modelled as endpoints
// attached to a ToR (the paper's assignment algorithm and simulations operate
// at switch/link granularity — §4, §8.1). Links are bidirectional with a
// capacity per direction; utilization accounting happens in sim/flowsim.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace duet {

using SwitchId = std::uint32_t;
using LinkId = std::uint32_t;
using ContainerId = std::uint32_t;

inline constexpr SwitchId kInvalidSwitch = std::numeric_limits<SwitchId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();
inline constexpr ContainerId kNoContainer = std::numeric_limits<ContainerId>::max();

enum class SwitchRole : std::uint8_t { kTor, kAgg, kCore };

std::string to_string(SwitchRole role);

struct SwitchInfo {
  SwitchRole role = SwitchRole::kTor;
  ContainerId container = kNoContainer;  // Core switches live outside containers.
  std::string name;
};

struct LinkInfo {
  SwitchId a = kInvalidSwitch;
  SwitchId b = kInvalidSwitch;
  double capacity_gbps = 0.0;  // per direction
};

// Directed half of a link, as seen from one endpoint.
struct Adjacency {
  SwitchId neighbor = kInvalidSwitch;
  LinkId link = kInvalidLink;
};

class Topology {
 public:
  SwitchId add_switch(SwitchRole role, ContainerId container, std::string name);
  LinkId add_link(SwitchId a, SwitchId b, double capacity_gbps);

  // Attaches a server (host) IP to a ToR. Server access links are not
  // modelled as graph links; the ToR is the traffic source/sink.
  void attach_host(Ipv4Address host, SwitchId tor);

  std::size_t switch_count() const noexcept { return switches_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }
  std::size_t container_count() const noexcept { return container_count_; }

  const SwitchInfo& switch_info(SwitchId s) const;
  const LinkInfo& link_info(LinkId l) const;
  std::span<const Adjacency> neighbors(SwitchId s) const;

  // ToR hosting the given server IP, or kInvalidSwitch when unattached.
  SwitchId tor_of(Ipv4Address host) const noexcept;

  // All switches with the given role.
  std::vector<SwitchId> switches_with_role(SwitchRole role) const;
  // All switches within the given container (ToR + Agg).
  std::vector<SwitchId> switches_in_container(ContainerId c) const;
  // Links with both endpoints inside the given container.
  std::vector<LinkId> links_in_container(ContainerId c) const;

  // Directed-capacity helper: capacity of link l (per direction).
  double capacity_gbps(LinkId l) const { return link_info(l).capacity_gbps; }

  // Opposite endpoint of link l relative to s.
  SwitchId other_end(LinkId l, SwitchId s) const;

 private:
  std::vector<SwitchInfo> switches_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::unordered_map<Ipv4Address, SwitchId> host_tor_;
  std::size_t container_count_ = 0;
};

}  // namespace duet
