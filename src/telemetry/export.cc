#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>

#include "util/table.h"

namespace duet::telemetry {

namespace {

std::string fmt_double(double v) {
  // Shortest round-trip-ish form; JSON has no inf/nan, clamp to null-safe 0.
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to a friendlier form when exact.
  double reparsed = 0.0;
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%.12g", v);
  std::sscanf(shorter, "%lf", &reparsed);
  return reparsed == v ? shorter : buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_histogram_json(std::string& out, const Histogram& h) {
  char buf[64];
  out += "{\"count\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
  out += buf;
  out += ",\"sum\":" + fmt_double(h.empty() ? 0.0 : h.sum());
  out += ",\"min\":" + fmt_double(h.empty() ? 0.0 : h.min());
  out += ",\"max\":" + fmt_double(h.empty() ? 0.0 : h.max());
  out += ",\"mean\":" + fmt_double(h.empty() ? 0.0 : h.mean());
  out += ",\"p50\":" + fmt_double(h.empty() ? 0.0 : h.percentile(50));
  out += ",\"p99\":" + fmt_double(h.empty() ? 0.0 : h.percentile(99));
  out += ",\"buckets\":[";
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (i > 0) out += ',';
    out += "{\"le\":";
    out += i < h.bounds().size() ? fmt_double(h.bounds()[i]) : std::string("\"inf\"");
    out += ",\"count\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, h.bucket(i));
    out += buf;
    out += '}';
  }
  out += "]}";
}

void append_event_json(std::string& out, const Event& e) {
  char buf[64];
  out += "{\"t_us\":" + fmt_double(e.t_us);
  out += ",\"kind\":\"";
  out += to_string(e.kind);
  out += '"';
  if (e.vip.value() != 0) out += ",\"vip\":\"" + e.vip.to_string() + '"';
  if (e.dip.value() != 0) out += ",\"dip\":\"" + e.dip.to_string() + '"';
  if (e.sw != kNoSwitch) {
    std::snprintf(buf, sizeof(buf), ",\"sw\":%u", e.sw);
    out += buf;
  }
  if (e.a != 0 || e.b != 0 || e.c != 0) {
    std::snprintf(buf, sizeof(buf), ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 ",\"c\":%" PRIu64, e.a,
                  e.b, e.c);
    out += buf;
  }
  if (!e.detail.empty()) out += ",\"detail\":\"" + json_escape(e.detail) + '"';
  out += '}';
}

}  // namespace

// --- TextExporter ------------------------------------------------------------

void TextExporter::print(const MetricRegistry& registry, std::FILE* out) {
  const auto counters = registry.counters();
  const auto gauges = registry.gauges();
  const auto histograms = registry.histograms();

  if (!counters.empty() || !gauges.empty()) {
    TablePrinter t{{"metric", "type", "value"}};
    for (const auto& [name, c] : counters) {
      t.add_row({name, "counter", TablePrinter::fmt_int(static_cast<long long>(c->value()))});
    }
    for (const auto& [name, g] : gauges) {
      t.add_row({name, "gauge", TablePrinter::fmt(g->value(), "%.3f")});
    }
    t.print(out);
  }
  if (!histograms.empty()) {
    TablePrinter t{{"histogram", "count", "mean", "p50", "p99", "max"}};
    for (const auto& [name, h] : histograms) {
      if (h->empty()) {
        t.add_row({name, "0", "-", "-", "-", "-"});
        continue;
      }
      t.add_row({name, TablePrinter::fmt_int(static_cast<long long>(h->count())),
                 TablePrinter::fmt(h->mean(), "%.2f"), TablePrinter::fmt(h->percentile(50), "%.2f"),
                 TablePrinter::fmt(h->percentile(99), "%.2f"), TablePrinter::fmt(h->max(), "%.2f")});
    }
    t.print(out);
  }
}

void TextExporter::print(const EventJournal& journal, std::FILE* out, std::size_t tail) {
  const auto events = journal.ordered();
  const std::size_t first = tail > 0 && tail < events.size() ? events.size() - tail : 0;
  TablePrinter t{{"t (ms)", "event", "vip", "dip", "switch", "detail"}};
  for (std::size_t i = first; i < events.size(); ++i) {
    const Event& e = events[i];
    std::string detail = e.detail;
    if (e.kind == EventKind::kTableOccupancy) {
      char buf[80];
      std::snprintf(buf, sizeof(buf), "host=%" PRIu64 " ecmp=%" PRIu64 " tunnel=%" PRIu64, e.a,
                    e.b, e.c);
      detail = buf;
    }
    t.add_row({TablePrinter::fmt(e.t_us / 1e3, "%.3f"), to_string(e.kind),
               e.vip.value() != 0 ? e.vip.to_string() : "-",
               e.dip.value() != 0 ? e.dip.to_string() : "-",
               e.sw != kNoSwitch ? TablePrinter::fmt_int(e.sw) : "-", detail});
  }
  t.print(out);
}

// --- JsonExporter ------------------------------------------------------------

std::string JsonExporter::to_json(const MetricRegistry& registry) {
  std::string out;
  char buf[64];
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c->value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + fmt_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    append_histogram_json(out, *h);
  }
  out += '}';
  return out;
}

std::string JsonExporter::to_json(const EventJournal& journal) {
  std::string out = "\"events\":[";
  bool first = true;
  for (const Event& e : journal.ordered()) {
    if (!first) out += ',';
    first = false;
    append_event_json(out, e);
  }
  out += ']';
  return out;
}

std::string JsonExporter::to_json(std::string_view name, const MetricRegistry* registry,
                                  const EventJournal* journal) {
  std::string out = "{\"name\":\"" + json_escape(name) + '"';
  if (registry != nullptr) out += ',' + to_json(*registry);
  if (journal != nullptr) out += ',' + to_json(*journal);
  out += "}\n";
  return out;
}

bool JsonExporter::write_file(const std::string& path, std::string_view name,
                              const MetricRegistry* registry, const EventJournal* journal) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json(name, registry, journal);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace duet::telemetry
