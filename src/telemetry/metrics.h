// Low-overhead metrics: the shared observability substrate (naming
// convention: `duet.<layer>.<name>`).
//
// Three metric types, all designed around the sim hot paths:
//   * Counter   — monotonic u64; single-writer lock-free increment
//                 (relaxed atomic, no RMW contention in our single-threaded
//                 shards, safe to read from another thread);
//   * Gauge     — last-written double (table occupancy, MRU, flow pins);
//   * Histogram — FIXED bucket array chosen at registration. record() is a
//                 branchless-ish upper_bound over the bound array plus one
//                 relaxed increment: no per-sample allocation, unlike
//                 util/stats.h::Summary which stores every sample. Percentile
//                 answers are bucket-interpolated estimates — the trade for
//                 O(1) memory at 1e7+ samples.
//
// Every type (and the registry itself) is mergeable, so sharded simulations
// can run one registry per shard and combine at the end.
//
// The registry owns its metrics and hands out stable references: look up a
// metric once (mutex-guarded slow path), then hammer the returned object
// from the hot loop with no further registry involvement.
//
// Memory-ordering contract: every atomic here uses memory_order_relaxed.
// That means each individual metric read is coherent (no torn values, each
// load sees *some* recorded value), but a reader observing counter A does
// NOT thereby observe an earlier write to counter B — metrics carry no
// happens-before edges. Readers wanting a consistent multi-metric picture
// must synchronize externally (e.g. join the writer threads first, as the
// exporters' callers do). Within one Histogram, count()/sum()/min()/max()
// read at a moment writers may still be mid-record_n: the fields are
// updated one by one, so transient states where count() is ahead of sum()
// are expected; min()/max() are always conservative bounds of the recorded
// samples because they start at ±inf and only ever tighten via CAS.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace duet::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void merge(const Counter& other) noexcept { inc(other.value()); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double dx) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  // Gauges merge by summation: shard occupancies/loads add up. For
  // non-additive gauges (MRU), merge registries before the final set, or
  // take the max by hand.
  void merge(const Gauge& other) noexcept { add(other.value()); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; bucket i counts samples
  // x <= upper_bounds[i], with one implicit overflow bucket (+inf) at the
  // end. The array is fixed for the histogram's lifetime.
  explicit Histogram(std::vector<double> upper_bounds);

  // Hot path: no heap allocation, no locks.
  void record(double x) noexcept;
  void record_n(double x, std::uint64_t n) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  bool empty() const noexcept { return count() == 0; }
  double sum() const noexcept;
  double mean() const;
  double min() const;  // exact (tracked per sample), not bucket-derived
  double max() const;

  // Bucket-interpolated percentile estimate, p in [0,100]. Within a bucket
  // the mass is assumed uniform; the overflow bucket answers with max().
  double percentile(double p) const;

  // Requires identical bounds (checked).
  void merge(const Histogram& other);

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

  // Bound builders for the common shapes.
  static std::vector<double> linear_bounds(double lo, double hi, std::size_t n);
  static std::vector<double> exponential_bounds(double lo, double hi, std::size_t n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Start at ±inf and only tighten (CAS), so concurrent first records can't
  // lose an extremum; meaningful once count_ > 0 (min()/max() check).
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// Named metric store. Registration (counter()/gauge()/histogram()) takes a
// mutex and is for setup / slow paths; the returned references stay valid
// for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Re-registering an existing histogram name requires identical bounds.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  // nullptr when the name was never registered (or is a different type).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Combines a shard's registry into this one: same-name metrics merge,
  // unseen names are created.
  void merge(const MetricRegistry& other);

  // Name-sorted views for the exporters (std::map keeps them ordered, so
  // exports are byte-stable across runs).
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace duet::telemetry
