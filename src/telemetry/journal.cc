#include "telemetry/journal.h"

#include <algorithm>

namespace duet::telemetry {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kVipAdded: return "vip_added";
    case EventKind::kVipRemoved: return "vip_removed";
    case EventKind::kVipPlaced: return "vip_placed";
    case EventKind::kVipFallback: return "vip_fallback";
    case EventKind::kMigrationWithdraw: return "migration_withdraw";
    case EventKind::kMigrationAnnounce: return "migration_announce";
    case EventKind::kBgpAnnounce: return "bgp_announce";
    case EventKind::kBgpWithdraw: return "bgp_withdraw";
    case EventKind::kDipUp: return "dip_up";
    case EventKind::kDipDown: return "dip_down";
    case EventKind::kHmuxDown: return "hmux_down";
    case EventKind::kSmuxDown: return "smux_down";
    case EventKind::kTableOccupancy: return "table_occupancy";
    case EventKind::kStatelessVersionBuild: return "stateless_version_build";
    case EventKind::kChaosInject: return "chaos_inject";
    case EventKind::kPersistRecover: return "persist_recover";
  }
  return "unknown";
}

std::vector<Event> EventJournal::ordered() const {
  std::vector<Event> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.t_us < b.t_us; });
  return out;
}

std::vector<Event> EventJournal::of_kind(EventKind kind) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.t_us < b.t_us; });
  return out;
}

std::vector<Event> EventJournal::for_vip(Ipv4Address vip) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.vip == vip) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.t_us < b.t_us; });
  return out;
}

void EventJournal::merge(const EventJournal& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

}  // namespace duet::telemetry
