// Exporters: one registry/journal, two renderings.
//
//   * TextExporter — human-readable tables (util/table.h) for duetctl stats
//     and interactive poking;
//   * JsonExporter — the machine-readable `BENCH_*.json` format the benches
//     emit, for regression tracking and plotting. Key names are stable:
//       { "name": "...",
//         "counters":   { "<metric>": <u64>, ... },
//         "gauges":     { "<metric>": <double>, ... },
//         "histograms": { "<metric>": { "count", "sum", "min", "max",
//                                       "mean", "p50", "p99",
//                                       "buckets": [ {"le": <bound|"inf">,
//                                                     "count": <u64>}, ...] } },
//         "events":     [ {"t_us", "kind", "vip", "dip", "sw",
//                          "a", "b", "c", "detail"}, ... ] }
//     Metrics are emitted name-sorted and events time-ordered, so two runs
//     of the same scenario produce byte-identical files.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "telemetry/journal.h"
#include "telemetry/metrics.h"

namespace duet::telemetry {

class TextExporter {
 public:
  static void print(const MetricRegistry& registry, std::FILE* out = stdout);
  // `tail` > 0 prints only the last `tail` events (time-ordered).
  static void print(const EventJournal& journal, std::FILE* out = stdout, std::size_t tail = 0);
};

class JsonExporter {
 public:
  static std::string to_json(const MetricRegistry& registry);
  static std::string to_json(const EventJournal& journal);
  // Full document; either part may be null. `name` labels the dump
  // (conventionally the bench/figure id).
  static std::string to_json(std::string_view name, const MetricRegistry* registry,
                             const EventJournal* journal);
  // Writes the full document to `path`; returns false on I/O failure.
  static bool write_file(const std::string& path, std::string_view name,
                         const MetricRegistry* registry, const EventJournal* journal = nullptr);
};

}  // namespace duet::telemetry
