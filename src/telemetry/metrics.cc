#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace duet::telemetry {

namespace {

// Relaxed CAS accumulate for atomic<double> (fetch_add on floating atomics
// is C++20 but not universally lowered well; the CAS loop is portable and
// uncontended in our single-writer shards).
void atomic_add(std::atomic<double>& a, double dx) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + dx, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur && !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur && !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double dx) noexcept { atomic_add(v_, dx); }

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  DUET_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  DUET_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
             std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end())
      << "histogram bounds must be strictly increasing";
}

void Histogram::record(double x) noexcept { record_n(x, 1); }

void Histogram::record_n(double x, std::uint64_t n) noexcept {
  // x <= bounds_[i] lands in bucket i; beyond the last bound -> overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add(sum_, x * static_cast<double>(n));
  // min_/max_ start at ±inf, so the first record is just another CAS
  // tighten — no "first sample" store that a racing second thread at
  // count 0 could clobber with a worse extremum.
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  DUET_CHECK(!empty()) << "mean of empty Histogram";
  return sum() / static_cast<double>(count());
}

double Histogram::min() const {
  DUET_CHECK(!empty()) << "min of empty Histogram";
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  DUET_CHECK(!empty()) << "max of empty Histogram";
  return max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  DUET_CHECK(!empty()) << "percentile of empty Histogram";
  DUET_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  const double target = (p / 100.0) * static_cast<double>(count());
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(bucket(i));
    if (c == 0.0) continue;
    if (cum + c >= target) {
      if (i == counts_.size() - 1) return max();  // overflow bucket
      // Uniform mass inside the bucket, clamped to the observed range.
      const double lo = i == 0 ? std::min(min(), bounds_[0]) : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = c == 0.0 ? 0.0 : (target - cum) / c;
      return std::clamp(lo + (hi - lo) * frac, min(), max());
    }
    cum += c;
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  DUET_CHECK(bounds_ == other.bounds_) << "merging histograms with different bucket bounds";
  if (other.empty()) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  atomic_min(min_, other.min());
  atomic_max(max_, other.max());
}

std::vector<double> Histogram::linear_bounds(double lo, double hi, std::size_t n) {
  DUET_CHECK(n >= 1 && hi > lo) << "bad linear bounds";
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i + 1) / static_cast<double>(n);
  }
  return out;
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi, std::size_t n) {
  DUET_CHECK(n >= 2 && lo > 0.0 && hi > lo) << "bad exponential bounds";
  std::vector<double> out(n);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double b = lo;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = b;
    b *= ratio;
  }
  out.back() = hi;  // kill accumulated rounding so the top bound is exact
  return out;
}

// --- MetricRegistry ----------------------------------------------------------

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  } else {
    DUET_CHECK(it->second->bounds() == upper_bounds)
        << "histogram re-registered with different bounds: " << std::string(name);
  }
  return *it->second;
}

const Counter* MetricRegistry::find_counter(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricRegistry::find_gauge(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::find_histogram(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricRegistry::merge(const MetricRegistry& other) {
  DUET_CHECK(this != &other) << "registry merged into itself";
  for (const auto& [name, c] : other.counters()) counter(name).merge(*c);
  for (const auto& [name, g] : other.gauges()) gauge(name).merge(*g);
  for (const auto& [name, h] : other.histograms()) {
    histogram(name, h->bounds()).merge(*h);
  }
}

std::vector<std::pair<std::string, const Counter*>> MetricRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricRegistry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> MetricRegistry::histograms() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::size_t MetricRegistry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace duet::telemetry
