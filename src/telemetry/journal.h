// Structured control-plane event journal.
//
// Every interesting control-plane step — VIP lifecycle, §4.2 migration
// phases, BGP announce/withdraw, DIP health transitions, mux failures,
// table-occupancy snapshots — is recorded as one typed event with an
// EXPLICIT simulation timestamp supplied by the caller (the journal never
// reads a clock). Events may arrive out of timestamp order — concurrent
// shards, or a controller journaling a batch after the fact — so queries
// return a stably time-ordered view: ties keep insertion order, which makes
// same-instant control-plane step sequences (withdraw before announce)
// deterministic, exactly like sim/event.h's queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.h"

namespace duet::telemetry {

enum class EventKind : std::uint8_t {
  kVipAdded,            // VIP defined; starts on the SMux backstop (§5.2)
  kVipRemoved,
  kVipPlaced,           // VIP landed on an HMux (sw = switch)
  kVipFallback,         // VIP fell back to the SMux pool (failure or bounce)
  kMigrationWithdraw,   // §4.2 phase 1: leave the old HMux, transit SMuxes
  kMigrationAnnounce,   // §4.2 phase 2: land on the new HMux
  kBgpAnnounce,         // route originated (a = /32 VIP route or aggregate)
  kBgpWithdraw,
  kDipUp,               // DIP health transitions (§5.1)
  kDipDown,
  kHmuxDown,            // switch failure (sw)
  kSmuxDown,            // software mux failure (a = smux id)
  kTableOccupancy,      // snapshot: a/b/c = host/ECMP/tunnel entries used (sw)
  kStatelessVersionBuild,  // stateless map version pushed to the SMuxes (vip)
  kChaosInject,         // chaos-harness adversary event (detail = event name)
  kPersistRecover,      // duetd booted from snapshot+journal (a = snapshot
                        // seq, b = ops replayed, c = 1 if a torn tail was cut)
};

// Stable wire name, used by the exporters and grep-able in dumps.
const char* to_string(EventKind kind);

inline constexpr std::uint32_t kNoSwitch = 0xffffffffu;

struct Event {
  double t_us = 0.0;
  EventKind kind = EventKind::kVipAdded;
  Ipv4Address vip{};                 // 0.0.0.0 when not VIP-scoped
  Ipv4Address dip{};                 // 0.0.0.0 when not DIP-scoped
  std::uint32_t sw = kNoSwitch;      // switch id when switch-scoped
  std::uint64_t a = 0, b = 0, c = 0; // kind-specific payload
  std::string detail;                // short free text, optional
};

class EventJournal {
 public:
  void record(Event e) { events_.push_back(std::move(e)); }
  void record(double t_us, EventKind kind, Ipv4Address vip = {}, Ipv4Address dip = {},
              std::uint32_t sw = kNoSwitch, std::string detail = {}) {
    record(Event{t_us, kind, vip, dip, sw, 0, 0, 0, std::move(detail)});
  }

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  // Insertion order (the raw stream).
  const std::vector<Event>& events() const noexcept { return events_; }

  // Stably time-ordered view; ties keep insertion order.
  std::vector<Event> ordered() const;
  // Time-ordered events of one kind.
  std::vector<Event> of_kind(EventKind kind) const;
  // Time-ordered events touching one VIP.
  std::vector<Event> for_vip(Ipv4Address vip) const;

  // Appends a shard's events (ordering is resolved at query time).
  void merge(const EventJournal& other);

 private:
  std::vector<Event> events_;
};

}  // namespace duet::telemetry
