#include "dataplane/pipeline.h"

#include "audit/check.h"
#include "util/logging.h"

namespace duet {

namespace {
std::uint64_t port_rule_key(Ipv4Address vip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(vip.value()) << 16) | port;
}
}  // namespace

void SwitchDataPlane::bind_telemetry(telemetry::MetricRegistry& registry,
                                     const std::string& prefix) {
  tm_packets_ = &registry.counter(prefix + "packets");
  tm_encaps_ = &registry.counter(prefix + "encaps");
  tm_drops_ = &registry.counter(prefix + "drops");
  tm_host_used_ = &registry.gauge(prefix + "host_entries_used");
  tm_ecmp_used_ = &registry.gauge(prefix + "ecmp_entries_used");
  tm_tunnel_used_ = &registry.gauge(prefix + "tunnel_entries_used");
  refresh_occupancy_gauges();
}

void SwitchDataPlane::refresh_occupancy_gauges() {
  if (tm_host_used_ == nullptr) return;
  tm_host_used_->set(static_cast<double>(host_entries_used()));
  tm_ecmp_used_->set(static_cast<double>(ecmp_entries_used()));
  tm_tunnel_used_->set(static_cast<double>(tunnel_entries_used()));
}

std::optional<SwitchDataPlane::MuxGroup> SwitchDataPlane::build_group(
    const std::vector<Ipv4Address>& targets, const std::vector<std::uint32_t>& weights,
    bool decap_first, std::uint64_t salt) {
  DUET_CHECK(!targets.empty()) << "VIP with no targets";
  DUET_CHECK(weights.empty() || weights.size() == targets.size())
      << "weights/targets size mismatch";

  MuxGroup g;
  g.decap_first = decap_first;
  std::vector<EcmpMember> members;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint32_t w = weights.empty() ? 1 : weights[i];
    DUET_CHECK(w > 0) << "zero WCMP weight";
    // WCMP: a target with weight w occupies w member slots, each with its
    // own tunneling entry (Fig 6 stores duplicate encap IPs to split load).
    for (std::uint32_t r = 0; r < w; ++r) {
      const auto tunnel = tunnel_table_.allocate(targets[i]);
      if (!tunnel) {
        tear_down(g);
        return std::nullopt;
      }
      g.tunnels.push_back(*tunnel);
      g.targets.push_back(targets[i]);
      members.push_back(EcmpMember{EcmpActionKind::kEncap, 0, *tunnel});
    }
  }
  const auto group = ecmp_table_.create_group(std::move(members));
  if (!group) {
    tear_down(g);
    return std::nullopt;
  }
  g.group = *group;
  g.hash = ResilientHashGroup(g.tunnels.size(), 4, salt);
  return g;
}

void SwitchDataPlane::tear_down(MuxGroup& g) {
  for (const TunnelIndex t : g.tunnels) tunnel_table_.release(t);
  if (!g.tunnels.empty()) ecmp_table_.destroy_group(g.group);
  g.tunnels.clear();
  g.targets.clear();
}

bool SwitchDataPlane::install_vip(Ipv4Address vip, const std::vector<Ipv4Address>& targets,
                                  const std::vector<std::uint32_t>& weights) {
  if (vips_.contains(vip)) return false;  // caller must remove first (§5.2 DIP addition)
  auto g = build_group(targets, weights, /*decap_first=*/false,
                       vip_group_salt(vip.value()));
  if (!g) return false;
  if (!host_table_.insert(vip, HostEntry{g->group, false})) {
    tear_down(*g);
    return false;
  }
  vips_.emplace(vip, std::move(*g));
  refresh_occupancy_gauges();
  return true;
}

bool SwitchDataPlane::install_tip(Ipv4Address tip, const std::vector<Ipv4Address>& dips) {
  if (vips_.contains(tip)) return false;
  auto g = build_group(dips, {}, /*decap_first=*/true, vip_group_salt(tip.value()));
  if (!g) return false;
  if (!host_table_.insert(tip, HostEntry{g->group, true})) {
    tear_down(*g);
    return false;
  }
  vips_.emplace(tip, std::move(*g));
  refresh_occupancy_gauges();
  return true;
}

bool SwitchDataPlane::install_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                                        const std::vector<Ipv4Address>& dips) {
  const auto key = port_rule_key(vip, dst_port);
  if (port_rules_.contains(key)) return false;
  auto g = build_group(dips, {}, /*decap_first=*/false,
                       vip_group_salt(vip.value()) ^ (std::uint64_t{dst_port} * 0x100000001ULL));
  if (!g) return false;
  if (!acl_table_.insert(vip, dst_port, g->group)) {
    tear_down(*g);
    return false;
  }
  port_rules_.emplace(key, std::move(*g));
  refresh_occupancy_gauges();
  return true;
}

bool SwitchDataPlane::remove_vip(Ipv4Address vip) {
  const auto it = vips_.find(vip);
  if (it == vips_.end()) return false;
  host_table_.erase(vip);
  tear_down(it->second);
  vips_.erase(it);
  refresh_occupancy_gauges();
  return true;
}

bool SwitchDataPlane::remove_port_rule(Ipv4Address vip, std::uint16_t dst_port) {
  const auto it = port_rules_.find(port_rule_key(vip, dst_port));
  if (it == port_rules_.end()) return false;
  acl_table_.erase(vip, dst_port);
  tear_down(it->second);
  port_rules_.erase(it);
  refresh_occupancy_gauges();
  return true;
}

bool SwitchDataPlane::remove_vip_target(Ipv4Address vip, Ipv4Address target) {
  const auto it = vips_.find(vip);
  if (it == vips_.end()) return false;
  MuxGroup& g = it->second;
  bool removed_any = false;
  // A target may occupy several member slots under WCMP; kill them all.
  for (std::uint32_t slot = 0; slot < g.targets.size(); ++slot) {
    if (g.targets[slot] == target && g.hash.member_alive(slot)) {
      if (g.hash.member_count() <= 1) return false;  // last DIP: remove the VIP instead
      g.hash.remove_member(slot);
      tunnel_table_.release(g.tunnels[slot]);
      removed_any = true;
    }
  }
  if (removed_any) refresh_occupancy_gauges();
  return removed_any;
}

std::vector<SwitchDataPlane::InstallInfo> SwitchDataPlane::installs() const {
  std::vector<InstallInfo> out;
  out.reserve(vips_.size() + port_rules_.size());
  const auto snapshot_group = [](InstallInfo& info, const MuxGroup& g) {
    info.decap_first = g.decap_first;
    info.group = g.group;
    // Dead member slots (resilient-hash removals) released their tunnel
    // entries; only live slots still hold table state.
    for (std::uint32_t slot = 0; slot < g.targets.size(); ++slot) {
      if (!g.hash.member_alive(slot)) continue;
      info.tunnels.push_back(g.tunnels[slot]);
      info.targets.push_back(g.targets[slot]);
    }
  };
  for (const auto& [address, g] : vips_) {
    InstallInfo info;
    info.address = address;
    snapshot_group(info, g);
    out.push_back(std::move(info));
  }
  for (const auto& [key, g] : port_rules_) {
    InstallInfo info;
    info.address = Ipv4Address{static_cast<std::uint32_t>(key >> 16)};
    info.port = static_cast<std::uint16_t>(key & 0xffff);
    snapshot_group(info, g);
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<Ipv4Address> SwitchDataPlane::vip_targets(Ipv4Address vip) const {
  std::vector<Ipv4Address> out;
  const auto it = vips_.find(vip);
  if (it == vips_.end()) return out;
  const MuxGroup& g = it->second;
  for (std::uint32_t slot = 0; slot < g.targets.size(); ++slot) {
    if (g.hash.member_alive(slot)) out.push_back(g.targets[slot]);
  }
  return out;
}

PipelineVerdict SwitchDataPlane::apply_group(MuxGroup& g, Packet& packet) {
  if (packet.encapsulated()) {
    if (!g.decap_first) {
      // §5.2: today's switches cannot encapsulate a single packet twice. The
      // hardware drops; the audit flags the control-plane misconfiguration
      // that steered encapsulated traffic at a non-TIP entry (warning
      // severity: the drop itself is the modelled, safe behaviour).
      DUET_AUDIT_WARN("single-encap", !packet.encapsulated())
          << "double-encap attempt for " << packet.tuple().to_string();
      DUET_LOG_WARN << "double-encap attempt for " << packet.tuple().to_string() << "; dropping";
      if (tm_drops_ != nullptr) tm_drops_->inc();
      return PipelineVerdict::kDropped;
    }
    packet.decapsulate();
  }
  // Inner 5-tuple hash — identical on every HMux/SMux/HA (§3.3.1).
  const std::uint32_t slot = g.hash.select(hasher_.hash(packet.tuple()));
  const auto encap_dst = tunnel_table_.lookup(g.tunnels[slot]);
  DUET_CHECK(encap_dst.has_value()) << "live member slot with missing tunnel entry";
  packet.encapsulate(EncapHeader{self_, *encap_dst});
  // §5.2 post-condition: no packet ever leaves the pipeline double-wrapped.
  DUET_AUDIT("single-encap", packet.encap_depth() <= 1)
      << "packet left the pipeline with encap depth " << packet.encap_depth();
  if (tm_encaps_ != nullptr) tm_encaps_->inc();
  return PipelineVerdict::kEncapsulated;
}

PipelineVerdict SwitchDataPlane::process(Packet& packet) {
  ++packet.hops;
  if (tm_packets_ != nullptr) tm_packets_->inc();
  const Ipv4Address dst = packet.routing_destination();

  // 1. ACL stage: port-based rules on un-encapsulated VIP traffic.
  if (!packet.encapsulated()) {
    if (acl_table_.lookup(dst, packet.tuple().dst_port).has_value()) {
      const auto it = port_rules_.find(port_rule_key(dst, packet.tuple().dst_port));
      DUET_CHECK(it != port_rules_.end()) << "ACL hit without a port-rule group";
      return apply_group(it->second, packet);
    }
  }

  // 2. Host table stage.
  const auto host = host_table_.lookup(dst);
  if (host.has_value()) {
    const auto it = vips_.find(dst);
    DUET_CHECK(it != vips_.end()) << "host-table hit without a mux group";
    return apply_group(it->second, packet);
  }

  // 3. Plain transit.
  return PipelineVerdict::kNoMatch;
}

}  // namespace duet
