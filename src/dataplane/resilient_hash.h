// Resilient hashing (Broadcom "smart hashing", §5.1 of the paper).
//
// A group of N members is spread over B >= N fixed hash buckets. A flow
// hashes to a bucket, the bucket points at a member. On member REMOVAL only
// the failed member's buckets are remapped — flows on surviving members stay
// put (this is why DIP failure does not disturb other connections, §5.1).
// On member ADDITION the whole bucket array must be re-balanced, remapping
// many flows — which is exactly why Duet bounces a VIP through the SMuxes
// when adding a DIP (§5.2 "Resilient hashing only ensures correct mapping in
// case of DIP removal – not DIP addition").
#pragma once

#include <cstdint>
#include <vector>

namespace duet {

class ResilientHashGroup {
 public:
  // B is chosen as the smallest power of two >= buckets_per_member * n so the
  // bucket array stays balanced even after removals.
  //
  // `salt` decorrelates bucket indexing across groups: without it, a flow
  // traversing two groups (the TIP double bounce of §5.2) would present the
  // same hash to both and alias onto a fraction of the second group's
  // members — the ECMP polarization problem. The salt must be a function of
  // the *VIP* (not the device) so that every HMux/SMux holding the same VIP
  // still maps flows identically (§3.3.1).
  explicit ResilientHashGroup(std::size_t member_count, std::size_t buckets_per_member = 4,
                              std::uint64_t salt = 0);

  std::size_t member_count() const noexcept { return live_members_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  // Member index serving the given flow hash. Precondition: member_count()>0.
  std::uint32_t select(std::uint64_t flow_hash) const;

  // Removes a member, remapping only its buckets. Returns the fraction of
  // buckets that changed owner (== fraction of flows remapped).
  double remove_member(std::uint32_t member);

  // Adds a member by re-balancing the whole array (NOT resilient). Returns
  // the fraction of buckets that changed owner.
  double add_member();

  bool member_alive(std::uint32_t member) const;

 private:
  void rebalance();

  std::vector<std::uint32_t> buckets_;  // bucket -> member index
  std::vector<bool> alive_;             // member index -> alive?
  std::size_t live_members_ = 0;
  std::uint64_t salt_ = 0;
  std::size_t buckets_per_member_ = 4;
};

// The canonical VIP-derived salt shared by every mux holding the VIP.
constexpr std::uint64_t vip_group_salt(std::uint32_t vip_value) noexcept {
  std::uint64_t z = (static_cast<std::uint64_t>(vip_value) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

}  // namespace duet
