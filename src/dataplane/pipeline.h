// The switch data plane: what turns a commodity switch into an HMux.
//
// Pipeline order per packet (Fig 2 + Fig 8):
//   1. ACL table        — (VIP, dst port) rules for port-based LB; wins over
//                         the host table, like real switch ACL stages.
//   2. host table       — /32 exact match on the routing destination (the
//                         outer header when the packet is encapsulated).
//   3. (no match)       — the packet is plain transit; the network-level
//                         ECMP routing (topo/paths) moves it along. Plain
//                         routing table occupancy is not load-balancer state,
//                         so it is not modelled here.
//
// A VIP match selects an ECMP member via resilient hashing of the *inner*
// 5-tuple — the same FlowHasher shared with SMuxes and host agents — and
// encapsulates the packet toward the chosen DIP/HIP/TIP. The single-encap
// hardware limitation (§5.2) is enforced: a packet that is already
// encapsulated cannot be encapsulated again unless the matching entry is a
// TIP entry (decap-then-encap, which real switches do at line rate).
//
// Memory accounting follows §4: a VIP with DIP-set d costs |d| tunneling
// entries and |d| ECMP member entries (sum of weights under WCMP). The
// resilient-hash bucket array is group-internal switch state and is not
// charged against the tables, matching the paper's L_{s,s,v} = |d_v|/C_s.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/resilient_hash.h"
#include "dataplane/tables.h"
#include "net/hash.h"
#include "net/packet.h"
#include "telemetry/metrics.h"

namespace duet {

enum class PipelineVerdict : std::uint8_t {
  kNoMatch,       // not load-balancer traffic here; forward normally
  kEncapsulated,  // matched a VIP/TIP; packet now carries a (new) outer header
  kDropped,       // would require double encapsulation — hardware can't
};

struct TableSizes {
  std::size_t host = kDefaultHostTableCapacity;
  std::size_t ecmp = kDefaultEcmpTableCapacity;
  std::size_t tunnel = kDefaultTunnelTableCapacity;
  std::size_t acl = kDefaultAclTableCapacity;
};

class SwitchDataPlane {
 public:
  explicit SwitchDataPlane(FlowHasher hasher = FlowHasher{}, TableSizes sizes = {},
                           Ipv4Address self = Ipv4Address{192, 0, 2, 1})
      : hasher_(hasher),
        self_(self),
        host_table_(sizes.host),
        ecmp_table_(sizes.ecmp),
        tunnel_table_(sizes.tunnel),
        acl_table_(sizes.acl) {}

  // --- switch-agent interface (§6): VIP-DIP reconfiguration ----------------

  // Installs a VIP whose traffic is split over `targets` (DIPs, or host IPs
  // in virtualized clusters, or TIPs for large fanout). Optional WCMP
  // weights (§5.2 heterogeneity); empty means equal weight 1. Fails without
  // side effects when any table lacks room.
  bool install_vip(Ipv4Address vip, const std::vector<Ipv4Address>& targets,
                   const std::vector<std::uint32_t>& weights = {});

  // Installs a TIP (§5.2 large fanout): like a VIP but arriving packets are
  // decapsulated before re-encapsulation toward the partition's DIPs.
  bool install_tip(Ipv4Address tip, const std::vector<Ipv4Address>& dips);

  // Port-based LB (§5.2): (vip, dst_port) gets its own DIP set via ACL.
  bool install_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                         const std::vector<Ipv4Address>& dips);

  bool remove_vip(Ipv4Address vip);
  bool remove_port_rule(Ipv4Address vip, std::uint16_t dst_port);

  // DIP removal via resilient hashing: flows on surviving DIPs keep their
  // mapping (§5.1). Returns false if the VIP or target is unknown.
  bool remove_vip_target(Ipv4Address vip, Ipv4Address target);

  // --- data plane -----------------------------------------------------------

  PipelineVerdict process(Packet& packet);

  // --- inspection ------------------------------------------------------------

  bool has_vip(Ipv4Address vip) const { return vips_.contains(vip); }
  // Live targets for a VIP (after removals), in member order.
  std::vector<Ipv4Address> vip_targets(Ipv4Address vip) const;

  // One installed VIP/TIP/port-rule as the invariant auditor sees it: which
  // ECMP group it owns, which tunnel entries its members reference (dead
  // member slots excluded), and the TIP decap flag. `port` is set for ACL
  // port rules only.
  struct InstallInfo {
    Ipv4Address address;
    std::optional<std::uint16_t> port;
    bool decap_first = false;
    EcmpGroupId group = 0;
    std::vector<TunnelIndex> tunnels;
    std::vector<Ipv4Address> targets;
  };
  // Every VIP/TIP install plus every port rule, in unspecified order.
  std::vector<InstallInfo> installs() const;

  const HostForwardingTable& host_table() const noexcept { return host_table_; }
  const EcmpTable& ecmp_table() const noexcept { return ecmp_table_; }
  const TunnelingTable& tunnel_table() const noexcept { return tunnel_table_; }
  const AclTable& acl_table() const noexcept { return acl_table_; }

  std::size_t free_host_entries() const { return host_table_.free_entries(); }
  std::size_t free_ecmp_entries() const { return ecmp_table_.free_members(); }
  std::size_t free_tunnel_entries() const { return tunnel_table_.free_entries(); }
  std::size_t host_entries_used() const { return host_table_.size(); }
  std::size_t ecmp_entries_used() const { return ecmp_table_.used_members(); }
  std::size_t tunnel_entries_used() const { return tunnel_table_.size(); }
  std::size_t vip_count() const { return vips_.size(); }
  // Data-plane table probes since construction (host + ACL + tunnel stages).
  std::uint64_t table_lookups() const {
    return host_table_.lookup_count() + acl_table_.lookup_count() +
           tunnel_table_.lookup_count();
  }

  // --- telemetry ------------------------------------------------------------

  // Binds process()/occupancy telemetry into `registry` under `prefix`
  // (e.g. "duet.hmux.sw12."). The counters are bumped on the packet path
  // (relaxed atomics, no allocation); the occupancy gauges refresh on every
  // table mutation. Call once; the registry must outlive this object.
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

  const FlowHasher& hasher() const noexcept { return hasher_; }
  Ipv4Address self() const noexcept { return self_; }

 private:
  struct MuxGroup {
    EcmpGroupId group = 0;
    std::vector<TunnelIndex> tunnels;       // member slot -> tunnel entry
    std::vector<Ipv4Address> targets;       // member slot -> target (for inspection)
    ResilientHashGroup hash{1};
    bool decap_first = false;               // TIP semantics
  };

  // Builds the ECMP group + tunnel entries for a target list; rolls back on
  // capacity failure. Returns nullopt on failure.
  std::optional<MuxGroup> build_group(const std::vector<Ipv4Address>& targets,
                                      const std::vector<std::uint32_t>& weights, bool decap_first,
                                      std::uint64_t salt);
  void tear_down(MuxGroup& g);

  PipelineVerdict apply_group(MuxGroup& g, Packet& packet);
  void refresh_occupancy_gauges();

  // Null until bind_telemetry; the packet path tests one pointer.
  telemetry::Counter* tm_packets_ = nullptr;
  telemetry::Counter* tm_encaps_ = nullptr;
  telemetry::Counter* tm_drops_ = nullptr;
  telemetry::Gauge* tm_host_used_ = nullptr;
  telemetry::Gauge* tm_ecmp_used_ = nullptr;
  telemetry::Gauge* tm_tunnel_used_ = nullptr;

  FlowHasher hasher_;
  Ipv4Address self_;
  HostForwardingTable host_table_;
  EcmpTable ecmp_table_;
  TunnelingTable tunnel_table_;
  AclTable acl_table_;

  std::unordered_map<Ipv4Address, MuxGroup> vips_;  // includes TIPs
  std::unordered_map<std::uint64_t, MuxGroup> port_rules_;  // (vip<<16|port)
};

}  // namespace duet
