#include "dataplane/resilient_hash.h"

#include <algorithm>
#include <bit>

#include "util/hot.h"
#include "util/logging.h"

namespace duet {

ResilientHashGroup::ResilientHashGroup(std::size_t member_count, std::size_t buckets_per_member,
                                       std::uint64_t salt)
    : salt_(salt), buckets_per_member_(buckets_per_member) {
  DUET_CHECK(member_count > 0) << "empty resilient hash group";
  DUET_CHECK(buckets_per_member > 0) << "need at least one bucket per member";
  // At least 64 buckets so small groups split finely; a power-of-two bucket
  // array with few buckets would skew a 3-member group 6/5/5.
  const std::size_t wanted = std::max<std::size_t>(64, member_count * buckets_per_member);
  buckets_.assign(std::bit_ceil(wanted), 0);
  alive_.assign(member_count, true);
  live_members_ = member_count;
  rebalance();
}

void ResilientHashGroup::rebalance() {
  // Round-robin live members across the bucket array.
  std::vector<std::uint32_t> live;
  live.reserve(live_members_);
  for (std::uint32_t m = 0; m < alive_.size(); ++m) {
    if (alive_[m]) live.push_back(m);
  }
  DUET_CHECK(!live.empty()) << "rebalance with no live members";
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] = live[b % live.size()];
  }
}

DUET_HOT std::uint32_t ResilientHashGroup::select(std::uint64_t flow_hash) const {
  DUET_HOT_CHECK(live_members_ > 0, "select from empty group");
  // Salt + remix before indexing so consecutive groups on a packet's path
  // see decorrelated bucket choices; bucket_count is a power of two.
  std::uint64_t z = flow_hash ^ salt_;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return buckets_[z & (buckets_.size() - 1)];
}

double ResilientHashGroup::remove_member(std::uint32_t member) {
  DUET_CHECK(member < alive_.size() && alive_[member]) << "removing dead/unknown member";
  DUET_CHECK(live_members_ > 1) << "cannot remove the last member";
  alive_[member] = false;
  --live_members_;

  std::vector<std::uint32_t> live;
  live.reserve(live_members_);
  for (std::uint32_t m = 0; m < alive_.size(); ++m) {
    if (alive_[m]) live.push_back(m);
  }

  std::size_t remapped = 0;
  std::size_t spill = 0;
  for (auto& bucket : buckets_) {
    if (bucket == member) {
      bucket = live[spill++ % live.size()];
      ++remapped;
    }
  }
  return static_cast<double>(remapped) / static_cast<double>(buckets_.size());
}

double ResilientHashGroup::add_member() {
  alive_.push_back(true);
  ++live_members_;
  const std::vector<std::uint32_t> before = buckets_;
  // Addition may require growing the array to preserve the original
  // buckets-per-member ratio; either way the whole array is re-dealt. The
  // target is derived from live_members_ (not the current size) so repeated
  // add/remove cycles cannot grow the array without bound.
  const std::size_t wanted =
      std::max<std::size_t>(64, live_members_ * buckets_per_member_);
  if (std::bit_ceil(wanted) > buckets_.size()) buckets_.resize(std::bit_ceil(wanted), 0);
  rebalance();

  std::size_t remapped = 0;
  const std::size_t common = std::min(before.size(), buckets_.size());
  for (std::size_t b = 0; b < common; ++b) {
    if (before[b] != buckets_[b]) ++remapped;
  }
  remapped += buckets_.size() - common;  // fresh buckets count as remapped
  return static_cast<double>(remapped) / static_cast<double>(buckets_.size());
}

bool ResilientHashGroup::member_alive(std::uint32_t member) const {
  return member < alive_.size() && alive_[member];
}

}  // namespace duet
