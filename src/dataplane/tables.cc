#include "dataplane/tables.h"

#include "util/logging.h"

namespace duet {

// --- HostForwardingTable -----------------------------------------------------

bool HostForwardingTable::insert(Ipv4Address dst, HostEntry entry) {
  const auto it = entries_.find(dst);
  if (it != entries_.end()) {
    it->second = entry;  // overwrite is free: same slot
    return true;
  }
  if (entries_.size() >= capacity_) return false;
  entries_.emplace(dst, entry);
  return true;
}

bool HostForwardingTable::erase(Ipv4Address dst) { return entries_.erase(dst) > 0; }

std::optional<HostEntry> HostForwardingTable::lookup(Ipv4Address dst) const {
  ++lookups_;
  const auto it = entries_.find(dst);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

// --- LpmTable ----------------------------------------------------------------

bool LpmTable::insert(Ipv4Prefix prefix, EcmpGroupId group) {
  auto& bucket = by_length_[prefix.length()];
  const auto [it, inserted] = bucket.insert_or_assign(prefix, group);
  (void)it;
  if (inserted) ++count_;
  return true;
}

bool LpmTable::erase(Ipv4Prefix prefix) {
  auto& bucket = by_length_[prefix.length()];
  if (bucket.erase(prefix) > 0) {
    --count_;
    return true;
  }
  return false;
}

std::optional<EcmpGroupId> LpmTable::lookup(Ipv4Address dst) const {
  ++lookups_;
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_length_[len];
    if (bucket.empty()) continue;
    const Ipv4Prefix candidate{dst, static_cast<std::uint8_t>(len)};
    const auto it = bucket.find(candidate);
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

std::optional<EcmpGroupId> LpmTable::lookup_exact(Ipv4Prefix prefix) const {
  const auto& bucket = by_length_[prefix.length()];
  const auto it = bucket.find(prefix);
  if (it == bucket.end()) return std::nullopt;
  return it->second;
}

// --- EcmpTable ---------------------------------------------------------------

std::optional<EcmpGroupId> EcmpTable::create_group(std::vector<EcmpMember> members) {
  DUET_CHECK(!members.empty()) << "empty ECMP group";
  if (used_members_ + members.size() > member_capacity_) return std::nullopt;
  const EcmpGroupId id = next_id_++;
  used_members_ += members.size();
  groups_.emplace(id, std::move(members));
  return id;
}

bool EcmpTable::destroy_group(EcmpGroupId group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  used_members_ -= it->second.size();
  groups_.erase(it);
  return true;
}

bool EcmpTable::update_group(EcmpGroupId group, std::vector<EcmpMember> members) {
  DUET_CHECK(!members.empty()) << "empty ECMP group";
  const auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  const std::size_t new_used = used_members_ - it->second.size() + members.size();
  if (new_used > member_capacity_) return false;
  used_members_ = new_used;
  it->second = std::move(members);
  return true;
}

const std::vector<EcmpMember>* EcmpTable::members(EcmpGroupId group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : &it->second;
}

// --- TunnelingTable ----------------------------------------------------------

std::optional<TunnelIndex> TunnelingTable::allocate(Ipv4Address encap_dst) {
  if (entries_.size() >= capacity_) return std::nullopt;
  const TunnelIndex idx = next_index_++;
  entries_.emplace(idx, encap_dst);
  return idx;
}

bool TunnelingTable::release(TunnelIndex index) { return entries_.erase(index) > 0; }

std::optional<Ipv4Address> TunnelingTable::lookup(TunnelIndex index) const {
  ++lookups_;
  const auto it = entries_.find(index);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

// --- AclTable ------------------------------------------------------------------

bool AclTable::insert(Ipv4Address dst, std::uint16_t dst_port, EcmpGroupId group) {
  const Key k = key(dst, dst_port);
  const auto it = entries_.find(k);
  if (it != entries_.end()) {
    it->second = group;
    return true;
  }
  if (entries_.size() >= capacity_) return false;
  entries_.emplace(k, group);
  return true;
}

bool AclTable::erase(Ipv4Address dst, std::uint16_t dst_port) {
  return entries_.erase(key(dst, dst_port)) > 0;
}

std::optional<EcmpGroupId> AclTable::lookup(Ipv4Address dst, std::uint16_t dst_port) const {
  ++lookups_;
  const auto it = entries_.find(key(dst, dst_port));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace duet
