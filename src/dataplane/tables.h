// Switch pipeline tables (Fig 2 of the paper).
//
// A commodity switch exposes, per the paper's numbers:
//   * host forwarding table — 16 K exact /32 entries (mostly empty; only
//     intra-rack routes live here normally);
//   * LPM table — longest-prefix-match routes (heavily used for routing, NOT
//     available to the load balancer; we model it anyway because the SMux
//     aggregate announcements and the /32-beats-aggregate preference of
//     §3.3.1 are LPM semantics);
//   * ECMP group + member tables — 4 K member entries;
//   * tunneling table — 512 IP-in-IP encap entries;
//   * ACL table — match on (dst IP, dst port), used for port-based LB (§5.2).
//
// Capacity is enforced: installation fails (returns false / nullopt) when a
// table is full, exactly the constraint the VIP assignment algorithm packs
// against.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace duet {

using EcmpGroupId = std::uint32_t;
using TunnelIndex = std::uint32_t;

// Default capacities from the paper (§3.1, §8.1).
inline constexpr std::size_t kDefaultHostTableCapacity = 16 * 1024;
inline constexpr std::size_t kDefaultEcmpTableCapacity = 4 * 1024;
inline constexpr std::size_t kDefaultTunnelTableCapacity = 512;
inline constexpr std::size_t kDefaultAclTableCapacity = 4 * 1024;

// What an ECMP member entry does with a matching packet.
enum class EcmpActionKind : std::uint8_t {
  kForward,  // plain routing: send towards a neighbor switch
  kEncap,    // load balancing: IP-in-IP encapsulate via tunneling table
};

struct EcmpMember {
  EcmpActionKind kind = EcmpActionKind::kForward;
  // kForward: opaque next-hop id (a SwitchId in our simulations).
  std::uint32_t next_hop = 0;
  // kEncap: index into the tunneling table.
  TunnelIndex tunnel = 0;

  friend bool operator==(const EcmpMember&, const EcmpMember&) = default;
};

// Host forwarding table entry: /32 exact match.
struct HostEntry {
  EcmpGroupId group = 0;
  // TIP support (§5.2 large fanout): when true, an arriving encapsulated
  // packet destined to this address is decapsulated before the group's encap
  // action runs (decap + re-encap at line rate).
  bool decap_first = false;
};

class HostForwardingTable {
 public:
  explicit HostForwardingTable(std::size_t capacity = kDefaultHostTableCapacity)
      : capacity_(capacity) {}

  bool insert(Ipv4Address dst, HostEntry entry);
  bool erase(Ipv4Address dst);
  std::optional<HostEntry> lookup(Ipv4Address dst) const;

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t free_entries() const noexcept { return capacity_ - entries_.size(); }
  std::uint64_t lookup_count() const noexcept { return lookups_; }
  // Read-only walk for the invariant auditor (audit/).
  const std::unordered_map<Ipv4Address, HostEntry>& entries() const noexcept { return entries_; }

 private:
  std::size_t capacity_;
  mutable std::uint64_t lookups_ = 0;  // data-plane probes of this table
  std::unordered_map<Ipv4Address, HostEntry> entries_;
};

// LPM table: longest-prefix match over CIDR routes.
class LpmTable {
 public:
  bool insert(Ipv4Prefix prefix, EcmpGroupId group);
  bool erase(Ipv4Prefix prefix);
  // Longest matching prefix's group, if any.
  std::optional<EcmpGroupId> lookup(Ipv4Address dst) const;
  std::optional<EcmpGroupId> lookup_exact(Ipv4Prefix prefix) const;

  std::size_t size() const noexcept { return count_; }
  std::uint64_t lookup_count() const noexcept { return lookups_; }

 private:
  // Buckets by prefix length, longest first on lookup. 33 lengths (0..32).
  std::unordered_map<Ipv4Prefix, EcmpGroupId> by_length_[33];
  std::size_t count_ = 0;
  mutable std::uint64_t lookups_ = 0;
};

// ECMP group + member tables. Groups are variable-length runs of members;
// the member count is what the 4 K capacity limits.
class EcmpTable {
 public:
  explicit EcmpTable(std::size_t member_capacity = kDefaultEcmpTableCapacity)
      : member_capacity_(member_capacity) {}

  // Creates a group with the given members; nullopt when capacity exceeded.
  std::optional<EcmpGroupId> create_group(std::vector<EcmpMember> members);
  bool destroy_group(EcmpGroupId group);

  // Replaces the member list in place (same group id). Fails on capacity.
  bool update_group(EcmpGroupId group, std::vector<EcmpMember> members);

  const std::vector<EcmpMember>* members(EcmpGroupId group) const;

  std::size_t used_members() const noexcept { return used_members_; }
  std::size_t member_capacity() const noexcept { return member_capacity_; }
  std::size_t free_members() const noexcept { return member_capacity_ - used_members_; }
  std::size_t group_count() const noexcept { return groups_.size(); }
  // Read-only walk for the invariant auditor (audit/).
  const std::unordered_map<EcmpGroupId, std::vector<EcmpMember>>& groups() const noexcept {
    return groups_;
  }

 private:
  std::size_t member_capacity_;
  std::size_t used_members_ = 0;
  EcmpGroupId next_id_ = 0;
  std::unordered_map<EcmpGroupId, std::vector<EcmpMember>> groups_;
};

// Tunneling table: index -> outer destination IP.
class TunnelingTable {
 public:
  explicit TunnelingTable(std::size_t capacity = kDefaultTunnelTableCapacity)
      : capacity_(capacity) {}

  std::optional<TunnelIndex> allocate(Ipv4Address encap_dst);
  bool release(TunnelIndex index);
  std::optional<Ipv4Address> lookup(TunnelIndex index) const;

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t free_entries() const noexcept { return capacity_ - entries_.size(); }
  std::uint64_t lookup_count() const noexcept { return lookups_; }
  // Read-only walk for the invariant auditor (audit/).
  const std::unordered_map<TunnelIndex, Ipv4Address>& entries() const noexcept { return entries_; }

 private:
  std::size_t capacity_;
  TunnelIndex next_index_ = 0;
  mutable std::uint64_t lookups_ = 0;
  std::unordered_map<TunnelIndex, Ipv4Address> entries_;
};

// ACL table for port-based load balancing: (dst IP, dst port) -> group.
class AclTable {
 public:
  explicit AclTable(std::size_t capacity = kDefaultAclTableCapacity) : capacity_(capacity) {}

  bool insert(Ipv4Address dst, std::uint16_t dst_port, EcmpGroupId group);
  bool erase(Ipv4Address dst, std::uint16_t dst_port);
  std::optional<EcmpGroupId> lookup(Ipv4Address dst, std::uint16_t dst_port) const;

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t free_entries() const noexcept { return capacity_ - entries_.size(); }
  std::uint64_t lookup_count() const noexcept { return lookups_; }

 private:
  using Key = std::uint64_t;  // (ip << 16) | port
  mutable std::uint64_t lookups_ = 0;
  static Key key(Ipv4Address dst, std::uint16_t port) noexcept {
    return (static_cast<Key>(dst.value()) << 16) | port;
  }
  std::size_t capacity_;
  std::unordered_map<Key, EcmpGroupId> entries_;
};

}  // namespace duet
