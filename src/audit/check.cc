#include "audit/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "telemetry/metrics.h"
#include "util/logging.h"

// The CMake cache variable DUET_AUDIT_LEVEL becomes this compile definition
// (0 = off, 1 = log, 2 = fatal); "log" when the build system says nothing.
#ifndef DUET_AUDIT_DEFAULT_LEVEL
#define DUET_AUDIT_DEFAULT_LEVEL 1
#endif

namespace duet::audit {

namespace {

AuditLevel initial_level() noexcept {
  AuditLevel level = static_cast<AuditLevel>(DUET_AUDIT_DEFAULT_LEVEL);
  if (const char* env = std::getenv("DUET_AUDIT_LEVEL")) {
    if (!parse_audit_level(env, level)) {
      // Runs at static-init time; the log level global is constant-initialized
      // so the logger is already usable.
      DUET_LOG_WARN << "audit: ignoring unknown DUET_AUDIT_LEVEL=" << env;
    }
  }
  return level;
}

std::atomic<AuditLevel> g_level{initial_level()};
std::atomic<std::uint64_t> g_violations{0};

// The registry binding is a slow path (violations are exceptional); a mutex
// keeps bind/unbind safe against concurrent reporters.
std::mutex g_registry_mu;
telemetry::MetricRegistry* g_registry = nullptr;

}  // namespace

const char* to_string(AuditLevel level) noexcept {
  switch (level) {
    case AuditLevel::kOff:
      return "off";
    case AuditLevel::kLog:
      return "log";
    case AuditLevel::kFatal:
      return "fatal";
  }
  return "?";
}

const char* to_string(Severity severity) noexcept {
  return severity == Severity::kWarning ? "warning" : "error";
}

AuditLevel audit_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_audit_level(AuditLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

bool parse_audit_level(std::string_view text, AuditLevel& out) noexcept {
  // Numeric aliases match the DUET_AUDIT_DEFAULT_LEVEL compile define.
  if (text == "off" || text == "0") {
    out = AuditLevel::kOff;
  } else if (text == "log" || text == "1") {
    out = AuditLevel::kLog;
  } else if (text == "fatal" || text == "2") {
    out = AuditLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

void bind_registry(telemetry::MetricRegistry* registry) noexcept {
  std::lock_guard lock(g_registry_mu);
  g_registry = registry;
}

void unbind_registry(const telemetry::MetricRegistry* registry) noexcept {
  std::lock_guard lock(g_registry_mu);
  if (g_registry == registry) g_registry = nullptr;
}

std::uint64_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_violation_count() noexcept { g_violations.store(0, std::memory_order_relaxed); }

void report_violation(std::string_view invariant, Severity severity, const std::string& message) {
  const AuditLevel level = audit_level();
  if (level == AuditLevel::kOff) return;
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(g_registry_mu);
    if (g_registry != nullptr) {
      g_registry->counter("duet.audit.violations").inc();
      g_registry->counter("duet.audit.violation." + std::string(invariant)).inc();
    }
  }
  DUET_LOG_ERROR << "audit[" << invariant << "] " << to_string(severity)
                 << " violation: " << message;
  if (level == AuditLevel::kFatal && severity == Severity::kError) {
    std::fflush(nullptr);
    std::abort();
  }
}

namespace detail {

AuditFailure::AuditFailure(std::string_view invariant, Severity severity, std::string_view cond,
                           std::string_view file, int line)
    : invariant_(invariant), severity_(severity) {
  stream_ << "(" << cond << ") failed at " << file << ":" << line;
  stream_ << " ";  // separates the site from the caller's streamed context
}

AuditFailure::~AuditFailure() {
  report_violation(invariant_, severity_, stream_.str());
}

}  // namespace detail
}  // namespace duet::audit
