// Runtime-verification assertion library (the "audit" in src/audit).
//
// DUET_CHECK (util/logging.h) guards programming errors and always aborts.
// DUET_AUDIT guards *system invariants* — cross-layer properties of the
// Duet control/data plane (table accounting, single-announcer, the SMux
// backstop) whose violation means the load balancer has drifted into a bad
// state, not that a function was called wrong. Audits are therefore
// *tunable*: a production binary wants them nearly free, a CI binary wants
// them fatal, and a soak test wants them logged and counted.
//
// Three levels, settable per process:
//   * kOff   — every DUET_AUDIT is one relaxed load + branch; no message is
//              formatted, no counter is bumped (free in release);
//   * kLog   — violations are logged (util/logging.h, kError), counted in a
//              process-wide counter, and mirrored into a bound
//              telemetry::MetricRegistry (`duet.audit.violations` plus a
//              per-invariant series); execution continues;
//   * kFatal — as kLog, then std::abort() on kError-severity violations
//              (CI: a violated invariant fails the run at the exact step
//              that broke it, not three modules later).
//
// The initial level comes from the DUET_AUDIT_LEVEL environment variable
// ("off" / "log" / "fatal"), falling back to the compile-time default
// DUET_AUDIT_DEFAULT_LEVEL (a CMake cache variable, "log" unless overridden).
// set_audit_level() overrides both at runtime.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace duet::telemetry {
class MetricRegistry;
}  // namespace duet::telemetry

namespace duet::audit {

enum class AuditLevel : std::uint8_t { kOff = 0, kLog = 1, kFatal = 2 };

// A violation's severity decides what kFatal does with it: kError aborts,
// kWarning never does (it flags states that are suspicious but survivable,
// e.g. an ACL port rule that could not be mirrored to hardware).
enum class Severity : std::uint8_t { kWarning = 0, kError = 1 };

const char* to_string(AuditLevel level) noexcept;
const char* to_string(Severity severity) noexcept;

// Process-wide level. Initialized from DUET_AUDIT_LEVEL / the compile-time
// default before main(); thread-safe to read anywhere.
AuditLevel audit_level() noexcept;
void set_audit_level(AuditLevel level) noexcept;
inline bool audit_enabled() noexcept { return audit_level() != AuditLevel::kOff; }

// Parses "off" / "log" / "fatal" (case-sensitive, as documented). Returns
// false and leaves `out` untouched on anything else.
bool parse_audit_level(std::string_view text, AuditLevel& out) noexcept;

// Wires violation counters into `registry`: every reported violation bumps
// `duet.audit.violations` and `duet.audit.violation.<invariant>`. Pass
// nullptr to unbind (e.g. before the registry dies). The process-wide
// violation_count() works with or without a bound registry.
void bind_registry(telemetry::MetricRegistry* registry) noexcept;

// Unbinds only if `registry` is the one currently bound. Owners of a bound
// registry MUST call this before the registry dies (DuetController does, in
// its destructor) — a dangling binding turns the next report_violation into
// a use-after-free. The conditional form means a dying owner never clobbers
// a newer owner's binding.
void unbind_registry(const telemetry::MetricRegistry* registry) noexcept;

// Total violations reported since process start (or the last reset).
std::uint64_t violation_count() noexcept;
void reset_violation_count() noexcept;

// Reports one violation through the level policy: log + count at kLog and
// above, abort at kFatal when severity is kError. The `invariant` name keys
// the per-invariant telemetry counter; keep it a short stable slug
// (e.g. "single-announcer"). No-op at kOff.
void report_violation(std::string_view invariant, Severity severity, const std::string& message);

namespace detail {

// Streams the failure message, reports on destruction (macro plumbing).
class AuditFailure {
 public:
  AuditFailure(std::string_view invariant, Severity severity, std::string_view cond,
               std::string_view file, int line);
  AuditFailure(const AuditFailure&) = delete;
  AuditFailure& operator=(const AuditFailure&) = delete;
  ~AuditFailure();

  std::ostringstream& stream() noexcept { return stream_; }

 private:
  std::string_view invariant_;
  Severity severity_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace duet::audit

// Audits `cond` under the named invariant. Streams extra context:
//   DUET_AUDIT("single-announcer", origins.size() == 1) << vip.to_string();
// At kOff this is a level load + (cond) short-circuit; the condition itself
// is still evaluated, so keep audited expressions side-effect free and cheap.
#define DUET_AUDIT(invariant, cond)                                                        \
  if (!::duet::audit::audit_enabled() || (cond)) {                                         \
  } else                                                                                   \
    ::duet::audit::detail::AuditFailure(invariant, ::duet::audit::Severity::kError, #cond, \
                                        __FILE__, __LINE__)                                \
        .stream()

// Warning-severity variant: logged and counted, never fatal.
#define DUET_AUDIT_WARN(invariant, cond)                                                     \
  if (!::duet::audit::audit_enabled() || (cond)) {                                           \
  } else                                                                                     \
    ::duet::audit::detail::AuditFailure(invariant, ::duet::audit::Severity::kWarning, #cond, \
                                        __FILE__, __LINE__)                                  \
        .stream()
