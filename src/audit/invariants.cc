#include "audit/invariants.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace duet::audit {

namespace {

// One snapshot audit's collection state: violations append through add(),
// which formats "<context>: <what>" uniformly.
class Collector {
 public:
  explicit Collector(AuditReport& report) : report_(&report) {}

  void begin_invariant() { ++report_->checks_run; }

  template <typename... Parts>
  void add(std::string_view invariant, Severity severity, Parts&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    report_->violations.push_back(
        Violation{std::string(invariant), severity, os.str()});
  }

 private:
  AuditReport* report_;
};

std::string addr(Ipv4Address a) { return a.to_string(); }

// --- 1. table-capacity (§3.1) ------------------------------------------------
void check_table_capacity(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& sw : snap.switches) {
    if (sw.host_used > sw.host_capacity) {
      c.add("table-capacity", Severity::kError, "switch ", sw.id, " host table over capacity: ",
            sw.host_used, " > ", sw.host_capacity);
    }
    if (sw.ecmp_used > sw.ecmp_capacity) {
      c.add("table-capacity", Severity::kError, "switch ", sw.id, " ECMP members over capacity: ",
            sw.ecmp_used, " > ", sw.ecmp_capacity);
    }
    if (sw.tunnel_used > sw.tunnel_capacity) {
      c.add("table-capacity", Severity::kError, "switch ", sw.id,
            " tunnel table over capacity: ", sw.tunnel_used, " > ", sw.tunnel_capacity);
    }
  }
}

// --- 2. occupancy-accounting (§4) --------------------------------------------
// Reported occupancy must equal the sum of per-VIP costs: |d_v| tunneling
// entries per live slot, Σweights ECMP members per group, one host entry per
// VIP/TIP install — the L_{s,v} model the assignment algorithm packs against.
void check_occupancy_accounting(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& sw : snap.switches) {
    std::size_t group_members = 0;
    for (const auto& [gid, members] : sw.ecmp_groups) group_members += members.size();
    if (group_members != sw.ecmp_used) {
      c.add("occupancy-accounting", Severity::kError, "switch ", sw.id,
            " ECMP occupancy ", sw.ecmp_used, " != sum of group member counts ", group_members);
    }
    if (sw.tunnel_entries.size() != sw.tunnel_used) {
      c.add("occupancy-accounting", Severity::kError, "switch ", sw.id, " tunnel occupancy ",
            sw.tunnel_used, " != entry count ", sw.tunnel_entries.size());
    }
    std::size_t host_installs = 0;
    std::size_t live_tunnel_refs = 0;
    for (const auto& inst : sw.installs) {
      if (!inst.port.has_value()) ++host_installs;
      live_tunnel_refs += inst.tunnels.size();
    }
    if (host_installs != sw.host_used) {
      c.add("occupancy-accounting", Severity::kError, "switch ", sw.id, " host occupancy ",
            sw.host_used, " != VIP/TIP install count ", host_installs);
    }
    if (live_tunnel_refs != sw.tunnel_used) {
      c.add("occupancy-accounting", Severity::kError, "switch ", sw.id, " tunnel occupancy ",
            sw.tunnel_used, " != live member slots ", live_tunnel_refs);
    }
  }
}

// --- 3. ecmp-tunnel-refs (§3.1) ----------------------------------------------
// Every install references an existing ECMP group; every live member slot's
// tunnel entry exists and encapsulates toward the slot's recorded target.
void check_ecmp_tunnel_refs(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& sw : snap.switches) {
    for (const auto& inst : sw.installs) {
      if (!sw.ecmp_groups.contains(inst.group)) {
        c.add("ecmp-tunnel-refs", Severity::kError, "switch ", sw.id, " install ",
              addr(inst.address), " references missing ECMP group ", inst.group);
      }
      for (std::size_t i = 0; i < inst.tunnels.size(); ++i) {
        const auto it = sw.tunnel_entries.find(inst.tunnels[i]);
        if (it == sw.tunnel_entries.end()) {
          c.add("ecmp-tunnel-refs", Severity::kError, "switch ", sw.id, " install ",
                addr(inst.address), " live slot references missing tunnel entry ",
                inst.tunnels[i]);
        } else if (i < inst.targets.size() && it->second != inst.targets[i]) {
          c.add("ecmp-tunnel-refs", Severity::kError, "switch ", sw.id, " install ",
                addr(inst.address), " tunnel ", inst.tunnels[i], " encapsulates to ",
                addr(it->second), " but the member targets ", addr(inst.targets[i]));
        }
      }
    }
  }
}

// --- 4. no-leaked-tunnels (§3.1) ---------------------------------------------
// Tunnel entries are owned by exactly one live member slot; a refcount of 0
// is a leak (entry survived its VIP) and >1 is double-use.
void check_no_leaked_tunnels(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& sw : snap.switches) {
    std::unordered_map<TunnelIndex, std::size_t> refs;
    for (const auto& inst : sw.installs) {
      for (const TunnelIndex t : inst.tunnels) ++refs[t];
    }
    for (const auto& [index, dst] : sw.tunnel_entries) {
      const auto it = refs.find(index);
      if (it == refs.end()) {
        c.add("no-leaked-tunnels", Severity::kError, "switch ", sw.id, " tunnel entry ", index,
              " -> ", addr(dst), " is referenced by no live member slot (leaked)");
      } else if (it->second > 1) {
        c.add("no-leaked-tunnels", Severity::kError, "switch ", sw.id, " tunnel entry ", index,
              " is referenced by ", it->second, " member slots");
      }
    }
  }
}

// --- 5. single-announcer (§3.3.1, §4.2) --------------------------------------
void check_single_announcer(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& vip : snap.vips) {
    if (vip.home.has_value()) {
      if (vip.announcers.size() != 1) {
        c.add("single-announcer", Severity::kError, "VIP ", addr(vip.vip), " on HMux ",
              *vip.home, " has ", vip.announcers.size(), " /32 announcers (want exactly 1)");
      } else if (vip.announcers.front() != *vip.home) {
        c.add("single-announcer", Severity::kError, "VIP ", addr(vip.vip), " homed on HMux ",
              *vip.home, " but announced by switch ", vip.announcers.front());
      }
    } else if (!vip.announcers.empty()) {
      c.add("single-announcer", Severity::kError, "VIP ", addr(vip.vip),
            " is on the SMux pool but still has ", vip.announcers.size(), " /32 announcer(s)");
    }
  }
  if (!snap.views_consistent) {
    c.add("single-announcer", Severity::kError,
          "RIB views disagree (converged controller must update all views atomically)");
  }
}

// --- 6. announcer-holds-vip (§3.3.1) -----------------------------------------
// The switch announcing a VIP's /32 must actually hold its entries, or the
// /32 attracts traffic into a blackhole.
void check_announcer_holds_vip(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& vip : snap.vips) {
    if (!vip.home.has_value()) continue;
    const SwitchSnapshot* sw = snap.switch_by_id(*vip.home);
    const bool holds =
        sw != nullptr &&
        std::any_of(sw->installs.begin(), sw->installs.end(),
                    [&](const SwitchDataPlane::InstallInfo& i) {
                      return i.address == vip.vip && !i.port.has_value();
                    });
    if (!holds) {
      c.add("announcer-holds-vip", Severity::kError, "VIP ", addr(vip.vip),
            " announced from switch ", *vip.home, " which holds no entries for it");
    }
  }
}

// --- 7. no-orphan-routes (§5.1) ----------------------------------------------
// Every /32 in the RIB must be justified by a VIP home or an active fanout
// TIP; anything else is a stale route surviving a withdraw or failure.
void check_no_orphan_routes(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  std::unordered_map<Ipv4Address, SwitchId> expected;
  for (const auto& vip : snap.vips) {
    if (vip.home.has_value()) expected.emplace(vip.vip, *vip.home);
    for (const auto& part : vip.fanout) expected.emplace(part.tip, part.host_switch);
  }
  for (const auto& [address, origin] : snap.host_routes) {
    const auto it = expected.find(address);
    if (it == expected.end()) {
      c.add("no-orphan-routes", Severity::kError, "/32 route for ", addr(address),
            " (origin switch ", origin, ") matches no VIP home or fanout TIP");
    } else if (it->second != origin) {
      c.add("no-orphan-routes", Severity::kError, "/32 route for ", addr(address),
            " originated by switch ", origin, " but its owner is switch ", it->second);
    }
  }
}

// --- 8. smux-backstop (§3.3.1) -----------------------------------------------
// As long as any SMux lives, LPM must be able to fall back: an aggregate
// route covering every VIP must exist, so a withdrawn /32 fails over instead
// of blackholing.
void check_smux_backstop(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  if (snap.live_smux_count == 0) {
    if (!snap.vips.empty()) {
      c.add("smux-backstop", Severity::kWarning, "no live SMux: ", snap.vips.size(),
            " VIP(s) have no LPM backstop");
    }
    return;
  }
  for (const auto& vip : snap.vips) {
    if (!vip.aggregate_covers) {
      c.add("smux-backstop", Severity::kError, "VIP ", addr(vip.vip),
            " is not covered by any announced aggregate (backstop broken)");
    }
  }
}

// --- 9. smux-holds-all-vips (§3.3.1) -----------------------------------------
// "Each SMux announces all the VIPs" — every live SMux carries the complete
// VIP table, or the backstop serves only part of the traffic it attracts.
void check_smux_holds_all_vips(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& vip : snap.vips) {
    if (vip.live_smuxes_holding != snap.live_smux_count) {
      c.add("smux-holds-all-vips", Severity::kError, "VIP ", addr(vip.vip), " programmed on ",
            vip.live_smuxes_holding, " of ", snap.live_smux_count, " live SMuxes");
    }
  }
}

// --- 10. host-table-global-limit (§3.3.2) ------------------------------------
// Every switch carries a /32 route per HMux VIP, so the fleet-wide count of
// distinct /32s is bounded by one host table.
void check_host_table_global_limit(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  std::unordered_set<Ipv4Address> distinct;
  for (const auto& [address, origin] : snap.host_routes) distinct.insert(address);
  if (snap.host_table_capacity > 0 && distinct.size() > snap.host_table_capacity) {
    c.add("host-table-global-limit", Severity::kError, distinct.size(),
          " distinct /32 routes exceed the host table capacity ", snap.host_table_capacity);
  }
}

// --- 11. dead-switch-quiesced (§5.1) -----------------------------------------
// A failed switch must be fully withdrawn: no routes from it, no data-plane
// state on it, no VIP homed on it.
void check_dead_switch_quiesced(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  const std::unordered_set<SwitchId> dead(snap.dead_switches.begin(), snap.dead_switches.end());
  if (dead.empty()) return;
  for (const auto& [address, origin] : snap.host_routes) {
    if (dead.contains(origin)) {
      c.add("dead-switch-quiesced", Severity::kError, "dead switch ", origin,
            " still originates the /32 for ", addr(address));
    }
  }
  for (const auto& sw : snap.switches) {
    if (dead.contains(sw.id) && (sw.host_used > 0 || sw.tunnel_used > 0)) {
      c.add("dead-switch-quiesced", Severity::kError, "dead switch ", sw.id,
            " still holds data-plane state (", sw.host_used, " host / ", sw.tunnel_used,
            " tunnel entries)");
    }
  }
  for (const auto& vip : snap.vips) {
    if (vip.home.has_value() && dead.contains(*vip.home)) {
      c.add("dead-switch-quiesced", Severity::kError, "VIP ", addr(vip.vip),
            " still homed on dead switch ", *vip.home);
    }
  }
}

// --- 12. fanout-integrity (§5.2) ---------------------------------------------
// A large-fanout VIP's TIP partitions must tile its DIP set; the primary's
// targets must be exactly the TIPs; each partition host must hold its TIP
// decap-first and announce its /32.
void check_fanout_integrity(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  std::unordered_map<Ipv4Address, std::vector<SwitchId>> route_origins;
  for (const auto& [address, origin] : snap.host_routes) route_origins[address].push_back(origin);

  for (const auto& vip : snap.vips) {
    if (vip.fanout.empty()) continue;
    std::size_t covered = 0;
    std::unordered_set<Ipv4Address> tips;
    for (const auto& part : vip.fanout) {
      covered += part.dip_count;
      tips.insert(part.tip);
      const SwitchSnapshot* host = snap.switch_by_id(part.host_switch);
      const auto* install =
          host == nullptr
              ? nullptr
              : [&]() -> const SwitchDataPlane::InstallInfo* {
                  for (const auto& i : host->installs) {
                    if (i.address == part.tip && !i.port.has_value()) return &i;
                  }
                  return nullptr;
                }();
      if (install == nullptr) {
        c.add("fanout-integrity", Severity::kError, "VIP ", addr(vip.vip), " TIP ",
              addr(part.tip), " is not installed on its host switch ", part.host_switch);
      } else if (!install->decap_first) {
        c.add("fanout-integrity", Severity::kError, "VIP ", addr(vip.vip), " TIP ",
              addr(part.tip), " on switch ", part.host_switch,
              " lacks decap-first (double encap would drop)");
      }
      const auto rit = route_origins.find(part.tip);
      if (rit == route_origins.end() ||
          std::find(rit->second.begin(), rit->second.end(), part.host_switch) ==
              rit->second.end()) {
        c.add("fanout-integrity", Severity::kError, "VIP ", addr(vip.vip), " TIP ",
              addr(part.tip), " has no /32 route from its host switch ", part.host_switch);
      }
    }
    if (covered != vip.dip_count) {
      c.add("fanout-integrity", Severity::kError, "VIP ", addr(vip.vip), " partitions cover ",
            covered, " DIPs but the VIP has ", vip.dip_count);
    }
    if (vip.home.has_value()) {
      const SwitchSnapshot* primary = snap.switch_by_id(*vip.home);
      if (primary != nullptr) {
        for (const auto& inst : primary->installs) {
          if (inst.address != vip.vip || inst.port.has_value()) continue;
          for (const auto& target : inst.targets) {
            if (!tips.contains(target)) {
              c.add("fanout-integrity", Severity::kError, "VIP ", addr(vip.vip),
                    " primary targets ", addr(target), " which is not one of its TIPs");
            }
          }
        }
      }
    }
  }
}

// --- 13. single-encap, static form (§5.2) ------------------------------------
// An encap chain must terminate after at most one TIP hop: any tunnel entry
// whose destination is itself an installed LB address must point at a
// decap-first (TIP) install, or the second hop double-encapsulates and the
// hardware drops.
void check_single_encap_static(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  // Installed addresses fleet-wide -> is every install decap-first?
  std::unordered_map<Ipv4Address, bool> installed_decap;
  for (const auto& sw : snap.switches) {
    for (const auto& inst : sw.installs) {
      if (inst.port.has_value()) continue;
      const auto [it, inserted] = installed_decap.emplace(inst.address, inst.decap_first);
      if (!inserted) it->second = it->second && inst.decap_first;
    }
  }
  for (const auto& sw : snap.switches) {
    for (const auto& [index, dst] : sw.tunnel_entries) {
      const auto it = installed_decap.find(dst);
      if (it != installed_decap.end() && !it->second) {
        c.add("single-encap", Severity::kError, "switch ", sw.id, " tunnel entry ", index,
              " encapsulates toward ", addr(dst),
              " which is installed without decap-first: the second hop would double-encap");
      }
    }
  }
}

// --- 14. placement-consistency (§6) ------------------------------------------
// The controller's remembered assignment and the per-VIP records must agree
// once an epoch has converged.
void check_placement_consistency(const SystemSnapshot& snap, Collector& c) {
  c.begin_invariant();
  for (const auto& vip : snap.vips) {
    if (vip.placement_switch.has_value()) {
      if (!vip.home.has_value() || *vip.home != *vip.placement_switch) {
        c.add("placement-consistency", Severity::kError, "VIP ", addr(vip.vip),
              " placed on switch ", *vip.placement_switch, " by the assignment but homed on ",
              vip.home.has_value() ? static_cast<long long>(*vip.home) : -1LL);
      }
      if (vip.on_smux_list) {
        c.add("placement-consistency", Severity::kError, "VIP ", addr(vip.vip),
              " appears in both the HMux placement and the SMux list");
      }
    } else if (vip.home.has_value()) {
      c.add("placement-consistency", Severity::kError, "VIP ", addr(vip.vip), " homed on switch ",
            *vip.home, " but absent from the assignment placement");
    }
  }
}

}  // namespace

std::size_t AuditReport::count(std::string_view invariant) const {
  std::size_t n = 0;
  for (const auto& v : violations) {
    if (v.invariant == invariant) ++n;
  }
  return n;
}

void AuditReport::raise() const {
  for (const auto& v : violations) report_violation(v.invariant, v.severity, v.message);
}

void AuditReport::merge(AuditReport other) {
  checks_run += other.checks_run;
  violations.insert(violations.end(), std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << violations.size() << " violation(s) across " << checks_run << " invariant checks";
  return os.str();
}

AuditReport InvariantAuditor::audit(const SystemSnapshot& snapshot) const {
  AuditReport report;
  Collector c(report);
  check_table_capacity(snapshot, c);
  check_occupancy_accounting(snapshot, c);
  check_ecmp_tunnel_refs(snapshot, c);
  check_no_leaked_tunnels(snapshot, c);
  check_single_announcer(snapshot, c);
  check_announcer_holds_vip(snapshot, c);
  check_no_orphan_routes(snapshot, c);
  check_smux_backstop(snapshot, c);
  check_smux_holds_all_vips(snapshot, c);
  check_host_table_global_limit(snapshot, c);
  check_dead_switch_quiesced(snapshot, c);
  check_fanout_integrity(snapshot, c);
  check_single_encap_static(snapshot, c);
  if (options_.expect_converged_placement) check_placement_consistency(snapshot, c);
  return report;
}

// --- 15. migration-through-smux (§4.2, temporal) -----------------------------
AuditReport InvariantAuditor::audit_journal(const telemetry::EventJournal& journal) const {
  AuditReport report;
  Collector c(report);
  c.begin_invariant();  // migration-through-smux
  c.begin_invariant();  // journal-withdraw-matches

  // Replay the /32 announce/withdraw stream in stable time order. The §4.2
  // phase rule (withdraw converges before the new announce) means a VIP's
  // announcer set never holds two switches at once; journal ties keep
  // insertion order, so a same-instant withdraw+announce pair is legal
  // exactly when the withdraw was journaled first.
  std::unordered_map<Ipv4Address, std::unordered_set<std::uint32_t>> announcers;
  for (const auto& e : journal.ordered()) {
    if (e.vip == Ipv4Address{}) continue;  // aggregate (SMux) routes
    if (e.kind == telemetry::EventKind::kBgpAnnounce) {
      auto& set = announcers[e.vip];
      set.insert(e.sw);
      if (set.size() > 1) {
        c.add("migration-through-smux", Severity::kError, "VIP ", addr(e.vip), " announced by ",
              set.size(), " switches at t=", e.t_us,
              "us: an HMux-to-HMux move skipped the SMux transit");
      }
    } else if (e.kind == telemetry::EventKind::kBgpWithdraw) {
      auto& set = announcers[e.vip];
      if (set.erase(e.sw) == 0) {
        c.add("journal-withdraw-matches", Severity::kWarning, "VIP ", addr(e.vip),
              " withdrawn from switch ", e.sw, " at t=", e.t_us,
              "us without a matching announce");
      }
    }
  }
  return report;
}

const std::vector<InvariantInfo>& InvariantAuditor::invariants() {
  static const std::vector<InvariantInfo> kInvariants = {
      {"table-capacity", "§3.1",
       "host/ECMP/tunnel occupancy never exceeds the table's capacity on any switch"},
      {"occupancy-accounting", "§4",
       "occupancy equals the sum of per-VIP costs: one host entry per install, Σweights ECMP "
       "members per group, one tunnel entry per live member slot"},
      {"ecmp-tunnel-refs", "§3.1",
       "every install's ECMP group exists and every live member's tunnel entry exists and "
       "matches its target"},
      {"no-leaked-tunnels", "§3.1",
       "every tunnel entry is owned by exactly one live member slot (no leaks, no double use)"},
      {"single-announcer", "§3.3.1/§4.2",
       "an HMux VIP has exactly one /32 announcer (its home); a SMux VIP has none; all RIB "
       "views agree"},
      {"announcer-holds-vip", "§3.3.1",
       "the switch announcing a VIP's /32 actually holds the VIP's table entries"},
      {"no-orphan-routes", "§5.1",
       "every /32 route is justified by a VIP home or an active fanout TIP"},
      {"smux-backstop", "§3.3.1",
       "while any SMux lives, an announced aggregate covers every VIP (LPM fallback)"},
      {"smux-holds-all-vips", "§3.3.1", "every live SMux is programmed with every VIP"},
      {"host-table-global-limit", "§3.3.2",
       "distinct /32 routes fleet-wide fit one host table (every switch carries them all)"},
      {"dead-switch-quiesced", "§5.1",
       "a failed switch originates no routes, holds no entries, and homes no VIP"},
      {"fanout-integrity", "§5.2",
       "TIP partitions tile the DIP set; the primary targets exactly the TIPs; each TIP is "
       "installed decap-first and announced by its host"},
      {"single-encap", "§5.2",
       "no packet path double-encapsulates: tunnel targets that are themselves installed are "
       "decap-first (static), and the pipeline never emits encap depth > 1 (runtime)"},
      {"placement-consistency", "§6",
       "the remembered assignment and per-VIP records agree once an epoch converged"},
      {"migration-through-smux", "§4.2",
       "replayed from the journal: a VIP never has two /32 announcers at any instant, i.e. "
       "every HMux-to-HMux move transited the SMuxes"},
      {"journal-withdraw-matches", "§4.2",
       "every journaled withdraw matches a prior announce from the same switch"},
  };
  return kInvariants;
}

}  // namespace duet::audit
