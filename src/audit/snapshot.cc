#include "audit/snapshot.h"

#include <algorithm>

#include "duet/controller.h"

namespace duet::audit {

namespace {

SwitchSnapshot capture_switch(SwitchId id, const SwitchDataPlane& dp) {
  SwitchSnapshot s;
  s.id = id;
  s.host_used = dp.host_table().size();
  s.host_capacity = dp.host_table().capacity();
  s.ecmp_used = dp.ecmp_table().used_members();
  s.ecmp_capacity = dp.ecmp_table().member_capacity();
  s.tunnel_used = dp.tunnel_table().size();
  s.tunnel_capacity = dp.tunnel_table().capacity();
  s.ecmp_groups = dp.ecmp_table().groups();
  s.tunnel_entries = dp.tunnel_table().entries();
  s.installs = dp.installs();
  return s;
}

}  // namespace

SystemSnapshot SystemSnapshot::capture(const DuetController& controller) {
  SystemSnapshot snap;
  snap.host_table_capacity = controller.config().host_table_capacity;
  snap.aggregate = controller.aggregate_;

  const RoutingFabric& routing = controller.routing();
  const Rib& rib0 = routing.rib(0);

  // Cross-view agreement: a converged controller updates every view in one
  // step, so any disagreement is itself a finding. routes() emits origin
  // sets in hash order, so sort before comparing.
  auto routes0 = rib0.routes();
  std::sort(routes0.begin(), routes0.end());
  for (SwitchId v = 1; v < routing.view_count() && snap.views_consistent; ++v) {
    auto routes_v = routing.rib(v).routes();
    std::sort(routes_v.begin(), routes_v.end());
    snap.views_consistent = routes_v == routes0;
  }
  std::vector<Ipv4Prefix> aggregates0;  // non-/32 routes: the LPM backstops
  for (const auto& [prefix, origin] : routes0) {
    if (prefix.length() == 32) {
      snap.host_routes.emplace_back(prefix.address(), origin);
    } else {
      aggregates0.push_back(prefix);
    }
  }

  for (const auto& [sw, hmux] : controller.hmuxes_) {
    snap.switches.push_back(capture_switch(sw, hmux->dataplane()));
  }
  std::sort(snap.switches.begin(), snap.switches.end(),
            [](const SwitchSnapshot& a, const SwitchSnapshot& b) { return a.id < b.id; });

  snap.dead_switches.assign(controller.dead_switches_.begin(), controller.dead_switches_.end());
  std::sort(snap.dead_switches.begin(), snap.dead_switches.end());

  for (const auto& inst : controller.smuxes_) {
    SmuxSnapshot s;
    s.id = inst.id;
    s.tor = inst.tor;
    s.alive = inst.alive;
    s.vip_count = inst.mux->vip_count();
    snap.smuxes.push_back(s);
    if (inst.alive) ++snap.live_smux_count;
  }

  const Assignment& assignment = controller.current_;
  for (const auto& [vip, rec] : controller.vips_) {
    VipSnapshot v;
    v.id = rec.id;
    v.vip = vip;
    v.dip_count = rec.dips.size();
    v.weights = rec.weights;
    v.home = rec.home;
    v.placement_switch = assignment.switch_of(rec.id);
    v.on_smux_list =
        std::find(assignment.on_smux.begin(), assignment.on_smux.end(), rec.id) !=
        assignment.on_smux.end();
    v.announcers = rib0.origins(Ipv4Prefix::host_route(vip));
    // The backstop holds when some aggregate (non-/32) route would still
    // catch the VIP's traffic after the /32 disappears.
    v.aggregate_covers =
        std::any_of(aggregates0.begin(), aggregates0.end(),
                    [&](const Ipv4Prefix& p) { return p.contains(vip); });
    for (const auto& inst : controller.smuxes_) {
      if (inst.alive && inst.mux->has_vip(vip)) ++v.live_smuxes_holding;
    }
    if (rec.fanout.has_value()) {
      for (const auto& part : rec.fanout->partitions) {
        FanoutPartitionSnapshot p;
        p.tip = part.tip;
        p.host_switch = part.host_switch;
        p.dip_count = part.dips.size();
        v.fanout.push_back(p);
      }
    }
    snap.vips.push_back(std::move(v));
  }
  std::sort(snap.vips.begin(), snap.vips.end(),
            [](const VipSnapshot& a, const VipSnapshot& b) { return a.vip < b.vip; });
  return snap;
}

const SwitchSnapshot* SystemSnapshot::switch_by_id(SwitchId id) const noexcept {
  for (const auto& s : switches) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const VipSnapshot* SystemSnapshot::vip_by_address(Ipv4Address vip) const noexcept {
  for (const auto& v : vips) {
    if (v.vip == vip) return &v;
  }
  return nullptr;
}

}  // namespace duet::audit
