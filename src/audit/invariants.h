// The invariant auditor: named cross-layer invariants of the Duet design.
//
// Each invariant is a property the PAPER states or assumes but the code
// never enforced in one place — table capacities (§3.1), the §4 cost
// accounting, "exactly one /32 announcer per HMux VIP with the SMux
// aggregate as LPM backstop" (§3.3.1), the §4.2 through-SMux migration
// order, the §5.2 single-encap rule. The auditor walks a SystemSnapshot
// (audit/snapshot.h) and reports every violation with the invariant's
// stable name, so a failing CI run names the broken design rule, not a
// stack trace.
//
// Severity: kError marks states the design rules out entirely (they become
// fatal under DUET_AUDIT_LEVEL=fatal); kWarning marks survivable drift.
//
// The journal auditor replays BGP /32 announce/withdraw events and checks
// the *temporal* invariant the snapshot cannot see: at no instant does a
// VIP have two announcers, i.e. every HMux-to-HMux move really transited
// the SMuxes (withdraw strictly before announce, §4.2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audit/check.h"
#include "audit/snapshot.h"
#include "telemetry/journal.h"

namespace duet::audit {

struct Violation {
  std::string invariant;  // stable slug, see InvariantAuditor::invariants()
  Severity severity = Severity::kError;
  std::string message;
};

struct AuditReport {
  std::vector<Violation> violations;
  std::size_t checks_run = 0;  // invariants evaluated (not violation count)

  bool clean() const noexcept { return violations.empty(); }
  std::size_t count(std::string_view invariant) const;
  // Feeds every violation through audit::report_violation, applying the
  // process audit-level policy (logging, counters, fatal-on-error).
  void raise() const;
  // Merges another report (e.g. snapshot + journal audits of one system).
  void merge(AuditReport other);
  std::string summary() const;
};

struct AuditOptions {
  // Between the §4.2 withdraw and announce phases the controller's
  // remembered assignment intentionally disagrees with VipRecord homes;
  // clear this to skip the placement-consistency invariant mid-migration.
  bool expect_converged_placement = true;
};

// Name + provenance of one audited invariant, for docs and `duetctl audit`.
struct InvariantInfo {
  const char* name;
  const char* paper_ref;
  const char* description;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditOptions options = {}) : options_(options) {}

  // Checks every static invariant against the snapshot.
  AuditReport audit(const SystemSnapshot& snapshot) const;

  // Replays the journal's BGP /32 announce/withdraw stream and checks the
  // §4.2 migration phase order (invariants "migration-through-smux" and
  // "journal-withdraw-matches").
  AuditReport audit_journal(const telemetry::EventJournal& journal) const;

  // The full catalogue (including the data-path "single-encap" audit that
  // lives in dataplane/pipeline.cc rather than here).
  static const std::vector<InvariantInfo>& invariants();

 private:
  AuditOptions options_;
};

}  // namespace duet::audit
