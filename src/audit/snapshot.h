// Plain-data capture of the full Duet system state, for invariant auditing.
//
// The InvariantAuditor (audit/invariants.h) checks cross-layer properties —
// switch table accounting against the §4 cost model, /32 announcer
// uniqueness, the SMux LPM backstop — that span the controller, every
// SwitchDataPlane, the RIB views, and the SMux pool. Rather than handing the
// auditor friend access to four subsystems, SystemSnapshot::capture() walks
// them once (read-only, via the public inspection APIs plus controller
// friendship) into this plain-data model, and all invariant logic runs over
// the snapshot.
//
// That split is what makes the auditor testable: a unit test captures a
// clean snapshot, mutates one field to seed a violation (a leaked tunnel
// entry, a second announcer, a dead switch still holding routes), and
// asserts the auditor names exactly the invariant it broke — no need to
// force a live controller into a corrupt state through public APIs that
// are designed to prevent exactly that.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/pipeline.h"
#include "net/ip.h"
#include "topo/topology.h"
#include "workload/vip.h"

namespace duet {
class DuetController;
}  // namespace duet

namespace duet::audit {

// One switch's load-balancer table state.
struct SwitchSnapshot {
  SwitchId id = kInvalidSwitch;

  std::size_t host_used = 0, host_capacity = 0;
  std::size_t ecmp_used = 0, ecmp_capacity = 0;
  std::size_t tunnel_used = 0, tunnel_capacity = 0;

  // Full ECMP group table: group id -> members (including dead WCMP slots;
  // the switch never reclaims members until the group dies, which is why
  // ecmp_used charges them while tunnel_used does not).
  std::unordered_map<EcmpGroupId, std::vector<EcmpMember>> ecmp_groups;
  // Full tunneling table: index -> encap destination.
  std::unordered_map<TunnelIndex, Ipv4Address> tunnel_entries;
  // Every VIP/TIP/port-rule installed on this switch (live slots only).
  std::vector<SwitchDataPlane::InstallInfo> installs;
};

// One partition of a large-fanout VIP (§5.2).
struct FanoutPartitionSnapshot {
  Ipv4Address tip;
  SwitchId host_switch = kInvalidSwitch;
  std::size_t dip_count = 0;
};

// One VIP as the controller + routing layer see it.
struct VipSnapshot {
  VipId id = 0;
  Ipv4Address vip;
  std::size_t dip_count = 0;
  std::vector<std::uint32_t> weights;  // empty = equal-weight

  // Controller record vs. assignment bookkeeping.
  std::optional<SwitchId> home;             // VipRecord::home
  std::optional<SwitchId> placement_switch; // current assignment's entry
  bool on_smux_list = false;                // listed in assignment.on_smux

  // Routing facts (view 0; views_consistent below covers the rest).
  std::vector<SwitchId> announcers;  // origins of the VIP's /32 route
  bool aggregate_covers = false;     // an SMux aggregate route matches the VIP

  std::size_t live_smuxes_holding = 0;  // live SMuxes with this VIP programmed

  std::vector<FanoutPartitionSnapshot> fanout;  // empty unless large-fanout
};

struct SmuxSnapshot {
  std::uint32_t id = 0;
  SwitchId tor = kInvalidSwitch;
  bool alive = true;
  std::size_t vip_count = 0;
};

struct SystemSnapshot {
  // Global limits / deployment facts.
  std::size_t host_table_capacity = 0;  // §3.3.2 global /32 budget
  Ipv4Prefix aggregate;                 // the SMux backstop prefix
  std::size_t live_smux_count = 0;

  std::vector<SwitchSnapshot> switches;
  std::vector<VipSnapshot> vips;
  std::vector<SmuxSnapshot> smuxes;
  std::vector<SwitchId> dead_switches;

  // Every /32 route in view 0 as (address, origin) pairs — the auditor
  // cross-checks these against VIP homes and fanout TIPs (stale routes after
  // a failure or withdraw are exactly the §5.1 bugs this catches).
  std::vector<std::pair<Ipv4Address, SwitchId>> host_routes;

  // True when every RIB view agrees with view 0 (converged controller; the
  // staged-convergence testbed sim audits per view instead).
  bool views_consistent = true;

  // Read-only walk of a live controller.
  static SystemSnapshot capture(const DuetController& controller);

  const SwitchSnapshot* switch_by_id(SwitchId id) const noexcept;
  const VipSnapshot* vip_by_address(Ipv4Address vip) const noexcept;
};

}  // namespace duet::audit
