// BGP-lite control plane.
//
// We do not model full BGP path selection — a Duet deployment runs a single
// AS-internal fabric where every route is one-hop-best everywhere — but we do
// model the parts the paper measures:
//   * announce /32 (HMux VIP) and aggregate (SMux backstop) routes;
//   * withdraw on VIP removal / HMux failure;
//   * the TIME those operations take (Fig 14: the FIB insert/delete on the
//     switch dominates end-to-end migration latency; BGP propagation adds
//     tens of milliseconds; failure detection + convergence < 40 ms, §7.2).
//
// RoutingFabric keeps one Rib per switch. Converged-view mutators update all
// views at once (what the large-scale flow simulations need); per-view
// mutators let the event-driven probe simulator stage convergence over time.
#pragma once

#include <vector>

#include "routing/rib.h"
#include "util/random.h"

namespace duet {

// Control-plane latencies in microseconds, calibrated to §7.2 and Fig 14.
struct ControlPlaneTimings {
  // Switch-agent FIB programming (the dominant cost: "80-90% of the
  // migration delay is due to the latency of adding/removing the VIP
  // to/from the FIB").
  double fib_vip_add_us = 380e3;
  double fib_vip_delete_us = 340e3;
  double fib_dip_add_us = 60e3;
  double fib_dip_delete_us = 55e3;
  // BGP update seen by other switches after a FIB change.
  double bgp_update_us = 45e3;
  // HMux failure: neighbor detection, then withdraw convergence. Fig 12
  // measures the sum at ~38 ms.
  double failure_detection_us = 15e3;
  double failure_convergence_us = 23e3;
  // Relative jitter applied to every sample (uniform ±fraction).
  double jitter_frac = 0.15;

  double sample(double base_us, Rng& rng) const {
    return base_us * rng.uniform_real(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
};

class RoutingFabric {
 public:
  explicit RoutingFabric(std::size_t switch_count) : ribs_(switch_count) {}

  std::size_t view_count() const noexcept { return ribs_.size(); }

  const Rib& rib(SwitchId viewer) const;
  Rib& rib(SwitchId viewer);

  // --- converged-view mutators ------------------------------------------------
  void announce_everywhere(Ipv4Prefix prefix, SwitchId origin);
  void withdraw_everywhere(Ipv4Prefix prefix, SwitchId origin);
  // All routes from `origin` disappear from every view (origin switch died).
  void fail_origin_everywhere(SwitchId origin);

  // --- per-view mutators (staged convergence) ---------------------------------
  void announce_at(SwitchId viewer, Ipv4Prefix prefix, SwitchId origin);
  void withdraw_at(SwitchId viewer, Ipv4Prefix prefix, SwitchId origin);
  void fail_origin_at(SwitchId viewer, SwitchId origin);

 private:
  std::vector<Rib> ribs_;
};

}  // namespace duet
