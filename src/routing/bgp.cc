#include "routing/bgp.h"

#include "util/logging.h"

namespace duet {

const Rib& RoutingFabric::rib(SwitchId viewer) const {
  DUET_CHECK(viewer < ribs_.size()) << "rib viewer out of range: " << viewer;
  return ribs_[viewer];
}

Rib& RoutingFabric::rib(SwitchId viewer) {
  DUET_CHECK(viewer < ribs_.size()) << "rib viewer out of range: " << viewer;
  return ribs_[viewer];
}

void RoutingFabric::announce_everywhere(Ipv4Prefix prefix, SwitchId origin) {
  for (auto& r : ribs_) r.announce(prefix, origin);
}

void RoutingFabric::withdraw_everywhere(Ipv4Prefix prefix, SwitchId origin) {
  for (auto& r : ribs_) r.withdraw(prefix, origin);
}

void RoutingFabric::fail_origin_everywhere(SwitchId origin) {
  for (auto& r : ribs_) r.withdraw_all_from(origin);
}

void RoutingFabric::announce_at(SwitchId viewer, Ipv4Prefix prefix, SwitchId origin) {
  rib(viewer).announce(prefix, origin);
}

void RoutingFabric::withdraw_at(SwitchId viewer, Ipv4Prefix prefix, SwitchId origin) {
  rib(viewer).withdraw(prefix, origin);
}

void RoutingFabric::fail_origin_at(SwitchId viewer, SwitchId origin) {
  rib(viewer).withdraw_all_from(origin);
}

}  // namespace duet
