// Per-switch routing information base (RIB).
//
// Duet's traffic steering is plain BGP + LPM (§3.3.1):
//   * each HMux announces /32 host routes for the VIPs assigned to it;
//   * every SMux announces the covering VIP aggregates (e.g. 100.0.0.0/16);
//   * longest-prefix match prefers the /32, so traffic reaches the HMux while
//     it is alive and collapses onto the SMux pool the moment the /32 is
//     withdrawn.
//
// A route's "origin" is the switch (or SMux's ToR) that announced it; a
// prefix announced by several origins is an anycast route and lookup returns
// the full origin set — upstream switches ECMP across them (this is exactly
// how Ananta spreads VIP traffic over SMuxes, §2.1).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ip.h"
#include "topo/topology.h"

namespace duet {

class Rib {
 public:
  // Adds `origin` as a nexthop owner for `prefix`. Idempotent.
  void announce(Ipv4Prefix prefix, SwitchId origin);

  // Removes one origin. Returns true if the origin was present.
  bool withdraw(Ipv4Prefix prefix, SwitchId origin);

  // Removes every route originated by `origin` (switch death).
  void withdraw_all_from(SwitchId origin);

  // All origins of the longest matching prefix; empty when no route.
  std::vector<SwitchId> lookup(Ipv4Address dst) const;

  // The matched prefix itself (for tests / diagnostics).
  std::optional<Ipv4Prefix> best_prefix(Ipv4Address dst) const;

  // Origins currently announcing exactly this prefix.
  std::vector<SwitchId> origins(Ipv4Prefix prefix) const;

  // Every (prefix, origin) pair, longest prefixes first (origin order within
  // a prefix unspecified). For the invariant auditor's route walks.
  std::vector<std::pair<Ipv4Prefix, SwitchId>> routes() const;

  std::size_t route_count() const noexcept { return count_; }

 private:
  // Origin sets bucketed by prefix length for LPM scans, longest-first.
  std::unordered_map<Ipv4Prefix, std::unordered_set<SwitchId>> by_length_[33];
  std::size_t count_ = 0;  // number of (prefix, origin) pairs
};

}  // namespace duet
