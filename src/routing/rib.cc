#include "routing/rib.h"

#include <algorithm>

namespace duet {

void Rib::announce(Ipv4Prefix prefix, SwitchId origin) {
  auto& set = by_length_[prefix.length()][prefix];
  if (set.insert(origin).second) ++count_;
}

bool Rib::withdraw(Ipv4Prefix prefix, SwitchId origin) {
  auto& bucket = by_length_[prefix.length()];
  const auto it = bucket.find(prefix);
  if (it == bucket.end()) return false;
  if (it->second.erase(origin) == 0) return false;
  --count_;
  if (it->second.empty()) bucket.erase(it);
  return true;
}

void Rib::withdraw_all_from(SwitchId origin) {
  for (auto& bucket : by_length_) {
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (it->second.erase(origin) > 0) --count_;
      if (it->second.empty()) {
        it = bucket.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::vector<SwitchId> Rib::lookup(Ipv4Address dst) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_length_[len];
    if (bucket.empty()) continue;
    const auto it = bucket.find(Ipv4Prefix{dst, static_cast<std::uint8_t>(len)});
    if (it != bucket.end()) {
      std::vector<SwitchId> out(it->second.begin(), it->second.end());
      std::sort(out.begin(), out.end());  // deterministic ECMP ordering
      return out;
    }
  }
  return {};
}

std::optional<Ipv4Prefix> Rib::best_prefix(Ipv4Address dst) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_length_[len];
    if (bucket.empty()) continue;
    const Ipv4Prefix candidate{dst, static_cast<std::uint8_t>(len)};
    if (bucket.contains(candidate)) return candidate;
  }
  return std::nullopt;
}

std::vector<std::pair<Ipv4Prefix, SwitchId>> Rib::routes() const {
  std::vector<std::pair<Ipv4Prefix, SwitchId>> out;
  out.reserve(count_);
  for (int len = 32; len >= 0; --len) {
    for (const auto& [prefix, origin_set] : by_length_[len]) {
      for (const SwitchId origin : origin_set) out.emplace_back(prefix, origin);
    }
  }
  return out;
}

std::vector<SwitchId> Rib::origins(Ipv4Prefix prefix) const {
  const auto& bucket = by_length_[prefix.length()];
  const auto it = bucket.find(prefix);
  if (it == bucket.end()) return {};
  std::vector<SwitchId> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace duet
