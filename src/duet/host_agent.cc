#include "duet/host_agent.h"

#include <algorithm>

#include "util/logging.h"

namespace duet {

void HostAgent::add_local_dip(Ipv4Address vip, Ipv4Address dip) {
  auto& dips = local_dips_[vip];
  if (std::find(dips.begin(), dips.end(), dip) == dips.end()) dips.push_back(dip);
}

bool HostAgent::remove_local_dip(Ipv4Address vip, Ipv4Address dip) {
  const auto it = local_dips_.find(vip);
  if (it == local_dips_.end()) return false;
  auto& dips = it->second;
  const auto pos = std::find(dips.begin(), dips.end(), dip);
  if (pos == dips.end()) return false;
  dips.erase(pos);
  if (dips.empty()) local_dips_.erase(it);
  return true;
}

std::optional<Ipv4Address> HostAgent::deliver(Packet& packet) {
  if (!packet.encapsulated()) return std::nullopt;
  if (packet.outer().outer_dst != host_ip_) return std::nullopt;
  packet.decapsulate();

  const auto it = local_dips_.find(packet.tuple().dst);
  if (it == local_dips_.end()) {
    DUET_LOG_DEBUG << "HA " << host_ip_.to_string() << ": no local DIP for VIP "
                   << packet.tuple().dst.to_string();
    return std::nullopt;
  }
  const auto& dips = it->second;
  // Several local DIPs (VMs): the HA selects by hashing the 5-tuple (§5.2).
  const Ipv4Address chosen =
      dips[hasher_.bucket(packet.tuple(), static_cast<std::uint32_t>(dips.size()))];
  ++delivered_packets_;
  delivered_bytes_ += packet.size_bytes();
  return chosen;
}

Packet HostAgent::direct_server_return(Ipv4Address vip, Packet response) const {
  DUET_CHECK(!response.encapsulated()) << "DSR on an encapsulated packet";
  response.tuple().src = vip;  // client sees the VIP it connected to
  return response;
}

}  // namespace duet
