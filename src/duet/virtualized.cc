#include "duet/virtualized.h"

#include "util/logging.h"

namespace duet {

std::vector<Ipv4Address> hmux_targets(const std::vector<VmPlacement>& placement) {
  DUET_CHECK(!placement.empty()) << "virtualized VIP with no VMs";
  std::vector<Ipv4Address> targets;
  targets.reserve(placement.size());
  for (const auto& vm : placement) targets.push_back(vm.host);
  return targets;  // one HIP entry per VM — multiplicity is the splitting
}

void register_host_agents(Ipv4Address vip, const std::vector<VmPlacement>& placement,
                          FlowHasher hasher,
                          std::unordered_map<Ipv4Address, HostAgent>& agents) {
  for (const auto& vm : placement) {
    auto it = agents.find(vm.host);
    if (it == agents.end()) {
      it = agents.emplace(vm.host, HostAgent{vm.host, hasher}).first;
    }
    it->second.add_local_dip(vip, vm.vm);
  }
}

bool install_virtualized_vip(Ipv4Address vip, const std::vector<VmPlacement>& placement,
                             SwitchDataPlane& hmux,
                             std::unordered_map<Ipv4Address, HostAgent>& agents) {
  if (!hmux.install_vip(vip, hmux_targets(placement))) return false;
  register_host_agents(vip, placement, hmux.hasher(), agents);
  return true;
}

}  // namespace duet
