#include "duet/smux.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace duet {

namespace {
std::uint64_t port_rule_key(Ipv4Address vip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(vip.value()) << 16) | port;
}
}  // namespace

Smux::VipEntry Smux::build_entry(const std::vector<Ipv4Address>& dips,
                                 const std::vector<std::uint32_t>& weights,
                                 std::uint64_t salt) {
  DUET_CHECK(!dips.empty()) << "VIP with no DIPs";
  DUET_CHECK(weights.empty() || weights.size() == dips.size())
      << "weights/dips size mismatch";
  VipEntry entry;
  // WCMP slot expansion, identical to the switch's tunneling-table layout.
  for (std::size_t i = 0; i < dips.size(); ++i) {
    const std::uint32_t w = weights.empty() ? 1 : weights[i];
    DUET_CHECK(w > 0) << "zero WCMP weight";
    for (std::uint32_t r = 0; r < w; ++r) entry.dips.push_back(dips[i]);
  }
  entry.group = ResilientHashGroup(entry.dips.size(), 4, salt);
  return entry;
}

void Smux::set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
                   const std::vector<std::uint32_t>& weights) {
  vips_.insert(vip, build_entry(dips, weights, vip_group_salt(vip.value())));
}

void Smux::set_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                         std::vector<Ipv4Address> dips) {
  // Same salt derivation as SwitchDataPlane::install_port_rule.
  const std::uint64_t salt =
      vip_group_salt(vip.value()) ^ (std::uint64_t{dst_port} * 0x100000001ULL);
  port_rules_.insert(port_rule_key(vip, dst_port), build_entry(dips, {}, salt));
}

bool Smux::remove_port_rule(Ipv4Address vip, std::uint16_t dst_port) {
  return port_rules_.erase(port_rule_key(vip, dst_port));
}

bool Smux::remove_vip(Ipv4Address vip) {
  if (!vips_.erase(vip)) return false;
  flow_table_.erase_if(
      [vip](const FiveTuple& tuple, const FlowPin&) { return tuple.dst == vip; });
  return true;
}

std::size_t Smux::expire_flows(double now_us, double idle_us) {
  const std::size_t evicted = flow_table_.erase_if(
      [&](const FiveTuple&, const FlowPin& pin) { return now_us - pin.last_seen_us > idle_us; });
  if (tm_flow_evictions_ != nullptr && evicted > 0) tm_flow_evictions_->inc(evicted);
  if (tm_flow_table_size_ != nullptr) {
    tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
  }
  return evicted;
}

Smux::EvictStats Smux::expire_flows_step(double now_us, double idle_us,
                                         std::size_t max_slots) {
  const auto r = flow_table_.scan_step(&scan_cursor_, max_slots, [&](const FiveTuple&,
                                                                     FlowPin& pin) {
    return now_us - pin.last_seen_us > idle_us;
  });
  scan_max_slots_ = std::max(scan_max_slots_, r.scanned);
  if (tm_flow_scan_slots_ != nullptr) tm_flow_scan_slots_->inc(r.scanned);
  if (tm_flow_scan_max_ != nullptr) tm_flow_scan_max_->set(static_cast<double>(scan_max_slots_));
  if (r.erased > 0) {
    if (tm_flow_evictions_ != nullptr) tm_flow_evictions_->inc(r.erased);
    if (tm_flow_table_size_ != nullptr) {
      tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
    }
  }
  return EvictStats{r.scanned, r.erased};
}

void Smux::enforce_flow_cap(double now_us) {
  if (config_.smux_flow_idle_us > 0) expire_flows(now_us, config_.smux_flow_idle_us);
  const std::size_t cap = config_.smux_flow_table_max;
  if (cap == 0 || flow_table_.size() <= cap) return;
  // Still over the cap with no idle pins to reclaim: shed the coldest
  // entries. O(n) selection, but reaching here requires > cap concurrently
  // live flows, so it is rare by construction. Ties on last-seen break by
  // tuple order so the shed set does not depend on slot iteration order.
  std::vector<std::pair<double, FiveTuple>> by_age;
  by_age.reserve(flow_table_.size());
  flow_table_.for_each(
      [&](const FiveTuple& tuple, const FlowPin& pin) { by_age.emplace_back(pin.last_seen_us, tuple); });
  const std::size_t excess = flow_table_.size() - cap;
  const auto colder = [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  };
  std::nth_element(by_age.begin(), by_age.begin() + static_cast<std::ptrdiff_t>(excess - 1),
                   by_age.end(), colder);
  for (std::size_t i = 0; i < excess; ++i) flow_table_.erase(by_age[i].second);
  if (tm_flow_evictions_ != nullptr) tm_flow_evictions_->inc(excess);
  if (tm_flow_table_size_ != nullptr) {
    tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
  }
}

void Smux::add_dip(Ipv4Address vip, Ipv4Address dip) {
  auto* entry = vips_.find(vip);
  DUET_CHECK(entry != nullptr) << "add_dip on unknown VIP " << vip.to_string();
  entry->dips.push_back(dip);
  entry->group.add_member();
  // Existing connections keep their flow-table pins — no remapping (§5.2).
}

void Smux::remove_dip(Ipv4Address vip, Ipv4Address dip) {
  auto* entry = vips_.find(vip);
  DUET_CHECK(entry != nullptr) << "remove_dip on unknown VIP " << vip.to_string();
  DUET_CHECK(entry->group.member_count() > 1) << "removing last DIP of " << vip.to_string();
  // Kill every member slot carrying this DIP (slots stay in place so the
  // survivors' buckets — and flows — are untouched, as on the switch).
  for (std::uint32_t slot = 0; slot < entry->dips.size(); ++slot) {
    if (entry->dips[slot] == dip && entry->group.member_alive(slot)) {
      entry->group.remove_member(slot);
    }
  }
  // Connections to the removed DIP necessarily terminate (§5.1). Exact
  // erase_if scan — no full-table rebuild, no order dependence.
  flow_table_.erase_if([&](const FiveTuple& tuple, const FlowPin& pin) {
    return tuple.dst == vip && pin.dip == dip;
  });
}

bool Smux::decide(const FiveTuple& tuple, double now_us, Ipv4Address* chosen, bool* pinned) {
  *pinned = false;
  // Port-specific pool first (the ACL stage of the switch pipeline, Fig 8).
  const VipEntry* entry = port_rules_.find(port_rule_key(tuple.dst, tuple.dst_port));
  if (entry == nullptr) {
    entry = vips_.find(tuple.dst);
    if (entry == nullptr) return false;
  }

  FlowPin* pin = flow_table_.find(tuple);
  if (pin != nullptr) {
    *chosen = pin->dip;
    pin->last_seen_us = now_us;
    return true;
  }
  // First packet: the exact bucket layout every HMux computes (§3.3.1).
  const Ipv4Address dip = entry->dips[entry->group.select(hasher_.hash(tuple))];
  *flow_table_.try_emplace(tuple).first = FlowPin{dip, now_us};
  *pinned = true;
  if (config_.smux_flow_table_max > 0 && flow_table_.size() > config_.smux_flow_table_max) {
    enforce_flow_cap(now_us);
  }
  *chosen = dip;
  return true;
}

bool Smux::process(Packet& packet, double now_us) {
  if (tm_packets_ != nullptr) tm_packets_->inc();
  Ipv4Address chosen;
  bool pinned = false;
  if (!decide(packet.tuple(), now_us, &chosen, &pinned)) {
    if (tm_unknown_vip_ != nullptr) tm_unknown_vip_->inc();
    return false;
  }
  if (pinned) {
    if (tm_flow_pins_ != nullptr) tm_flow_pins_->inc();
    if (tm_flow_table_size_ != nullptr) {
      tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
    }
  }
  packet.encapsulate(EncapHeader{self_, chosen});
  return true;
}

std::size_t Smux::process_batch(std::span<const Packet> packets,
                                std::span<Ipv4Address> dips_out, double now_us) {
  DUET_CHECK(dips_out.size() >= packets.size()) << "process_batch output span too small";
  // Overlap the flow-table misses: by the time the decision pass reaches
  // packet k, its home slot has been in flight for k prefetch distances.
  for (const Packet& p : packets) flow_table_.prefetch(p.tuple());

  std::uint64_t unknown = 0;
  std::uint64_t pins = 0;
  std::size_t forwarded = 0;
  for (std::size_t k = 0; k < packets.size(); ++k) {
    Ipv4Address chosen{};
    bool pinned = false;
    if (!decide(packets[k].tuple(), now_us, &chosen, &pinned)) {
      ++unknown;
      dips_out[k] = Ipv4Address{};
      continue;
    }
    if (pinned) ++pins;
    dips_out[k] = chosen;
    ++forwarded;
  }

  // One telemetry flush per batch: locals above, atomics here.
  if (tm_packets_ != nullptr) tm_packets_->inc(packets.size());
  if (tm_unknown_vip_ != nullptr && unknown > 0) tm_unknown_vip_->inc(unknown);
  if (pins > 0) {
    if (tm_flow_pins_ != nullptr) tm_flow_pins_->inc(pins);
    if (tm_flow_table_size_ != nullptr) {
      tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
    }
  }
  return forwarded;
}

void Smux::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  tm_packets_ = &registry.counter(prefix + "packets");
  tm_unknown_vip_ = &registry.counter(prefix + "unknown_vip");
  tm_flow_pins_ = &registry.counter(prefix + "flow_pins");
  tm_flow_evictions_ = &registry.counter(prefix + "flow_evictions");
  tm_flow_scan_slots_ = &registry.counter(prefix + "flow_scan_slots");
  tm_flow_table_size_ = &registry.gauge(prefix + "flow_table_size");
  tm_flow_scan_max_ = &registry.gauge(prefix + "flow_scan_max_slots");
  tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
}

double Smux::cpu_percent(double offered_pps) const {
  return std::min(100.0, utilization(offered_pps) * 100.0);
}

double Smux::median_added_latency_us(double rho) const {
  if (rho > 1.02) return config_.smux_overload_latency_us;
  // M/M/1-style inflation of the no-load median, clamped at the overload
  // plateau where the NIC queue caps the wait.
  const double inflated = config_.smux_base_latency_us / std::max(0.05, 1.0 - 0.9 * rho);
  return std::min(inflated, config_.smux_overload_latency_us);
}

double Smux::sample_added_latency_us(double rho, Rng& rng) const {
  const double median = median_added_latency_us(rho);
  if (rho > 1.02) {
    // Saturated: queue-dominated, narrow distribution around the plateau.
    return median * rng.uniform_real(0.8, 1.3);
  }
  // Lognormal around the median: exp(mu) = median.
  const double mu = std::log(median);
  const double sample = rng.lognormal(mu, config_.smux_latency_sigma);
  // Physical floor: software forwarding can't beat ~40 us even when lucky.
  return std::max(40.0, std::min(sample, config_.smux_overload_latency_us * 1.5));
}

}  // namespace duet
