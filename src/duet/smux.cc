#include "duet/smux.h"

#include <algorithm>
#include <cmath>

#include "stateless/stateless_engine.h"
#include "util/hot.h"
#include "util/logging.h"

namespace duet {

Smux::Smux(std::uint32_t id, FlowHasher hasher, const DuetConfig& config, Ipv4Address self)
    : id_(id), hasher_(hasher), config_(config), self_(self), stateful_(hasher, config) {
  if (config_.smux_engine == SmuxEngine::kStateless) ensure_stateless();
}

Smux::~Smux() = default;
Smux::Smux(Smux&&) noexcept = default;
Smux& Smux::operator=(Smux&&) noexcept = default;

stateless::StatelessEngine& Smux::ensure_stateless() {
  if (stateless_ == nullptr) {
    stateless_ = std::make_unique<stateless::StatelessEngine>(hasher_, config_);
    // Replay every existing pool so the engine can serve it immediately.
    vips_.for_each([&](Ipv4Address vip, const VipPool& pool) {
      stateless_->pool_updated(vip_pool_id(vip), pool, 0.0);
    });
    port_rules_.for_each([&](std::uint64_t pool_id, const VipPool& pool) {
      stateless_->pool_updated(pool_id, pool, 0.0);
    });
    if (registry_ != nullptr) {
      stateless_->bind_telemetry(*registry_, tm_prefix_ + "stateless.");
    }
  }
  return *stateless_;
}

void Smux::set_engine_override(Ipv4Address vip, SmuxEngine engine) {
  engine_overrides_.insert(vip, engine);
  if (engine == SmuxEngine::kStateless) ensure_stateless();
}

void Smux::notify_pool_updated(std::uint64_t pool_id, const VipPool& pool) {
  stateful_.pool_updated(pool_id, pool, 0.0);
  if (stateless_ != nullptr) stateless_->pool_updated(pool_id, pool, 0.0);
}

void Smux::set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
                   const std::vector<std::uint32_t>& weights) {
  auto [pool, inserted] =
      vips_.insert(vip, VipPool::build(dips, weights, vip_group_salt(vip.value())));
  (void)inserted;
  notify_pool_updated(vip_pool_id(vip), *pool);
}

void Smux::set_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                         std::vector<Ipv4Address> dips) {
  // Same salt derivation as SwitchDataPlane::install_port_rule.
  const std::uint64_t salt =
      vip_group_salt(vip.value()) ^ (std::uint64_t{dst_port} * 0x100000001ULL);
  const std::uint64_t pool_id = port_rule_pool_id(vip, dst_port);
  auto [pool, inserted] = port_rules_.insert(pool_id, VipPool::build(dips, {}, salt));
  (void)inserted;
  notify_pool_updated(pool_id, *pool);
}

bool Smux::remove_port_rule(Ipv4Address vip, std::uint16_t dst_port) {
  const std::uint64_t pool_id = port_rule_pool_id(vip, dst_port);
  if (!port_rules_.erase(pool_id)) return false;
  stateful_.pool_removed(pool_id, vip, 0.0);
  if (stateless_ != nullptr) stateless_->pool_removed(pool_id, vip, 0.0);
  return true;
}

bool Smux::remove_vip(Ipv4Address vip) {
  if (!vips_.erase(vip)) return false;
  stateful_.pool_removed(vip_pool_id(vip), vip, 0.0);
  if (stateless_ != nullptr) stateless_->pool_removed(vip_pool_id(vip), vip, 0.0);
  return true;
}

void Smux::add_dip(Ipv4Address vip, Ipv4Address dip) {
  auto* pool = vips_.find(vip);
  DUET_CHECK(pool != nullptr) << "add_dip on unknown VIP " << vip.to_string();
  pool->dips.push_back(dip);
  pool->group.add_member();
  // Existing connections keep their pins / bucket versions — no remapping
  // (§5.2); the stateless engine builds a new version that steals only the
  // added DIP's share.
  notify_pool_updated(vip_pool_id(vip), *pool);
}

void Smux::remove_dip(Ipv4Address vip, Ipv4Address dip) {
  auto* pool = vips_.find(vip);
  DUET_CHECK(pool != nullptr) << "remove_dip on unknown VIP " << vip.to_string();
  DUET_CHECK(pool->group.member_count() > 1) << "removing last DIP of " << vip.to_string();
  // Kill every member slot carrying this DIP (slots stay in place so the
  // survivors' buckets — and flows — are untouched, as on the switch).
  for (std::uint32_t slot = 0; slot < pool->dips.size(); ++slot) {
    if (pool->dips[slot] == dip && pool->group.member_alive(slot)) {
      pool->group.remove_member(slot);
    }
  }
  // Connections to the removed DIP necessarily terminate (§5.1): the
  // stateful engine erases their pins, the stateless one flips their
  // buckets off the dead owner.
  stateful_.dip_removed(vip_pool_id(vip), *pool, dip, 0.0);
  if (stateless_ != nullptr) stateless_->dip_removed(vip_pool_id(vip), *pool, dip, 0.0);
}

std::size_t Smux::decision_state_bytes() const noexcept {
  return stateful_.decision_state_bytes() +
         (stateless_ != nullptr ? stateless_->decision_state_bytes() : 0);
}

DUET_HOT bool Smux::decide(const FiveTuple& tuple, double now_us, Ipv4Address* chosen,
                           bool* pinned) {
  // Port-specific pool first (the ACL stage of the switch pipeline, Fig 8).
  std::uint64_t pool_id = port_rule_pool_id(tuple.dst, tuple.dst_port);
  const VipPool* pool = port_rules_.find(pool_id);
  if (pool == nullptr) {
    pool = vips_.find(tuple.dst);
    if (pool == nullptr) return false;
    pool_id = vip_pool_id(tuple.dst);
  }
  // Engine dispatch: one null check when no VIP decides statelessly; the
  // stateful path stays a concrete inline call (bench_hotpath's gates).
  if (stateless_ != nullptr && engine_for(tuple.dst) == SmuxEngine::kStateless) {
    if (stateless_->decide(pool_id, *pool, tuple, now_us, chosen, pinned)) return true;
    // Pool not yet replayed into the engine (cannot happen through the
    // public API); fall through to the stateful path rather than drop.
  }
  return stateful_.decide(pool_id, *pool, tuple, now_us, chosen, pinned);
}

bool Smux::process(Packet& packet, double now_us) {
  if (tm_packets_ != nullptr) tm_packets_->inc();
  Ipv4Address chosen;
  bool pinned = false;
  if (!decide(packet.tuple(), now_us, &chosen, &pinned)) {
    if (tm_unknown_vip_ != nullptr) tm_unknown_vip_->inc();
    return false;
  }
  if (pinned) {
    if (tm_flow_pins_ != nullptr) tm_flow_pins_->inc();
    stateful_.refresh_size_gauge();
  }
  if (stateless_ != nullptr) stateless_->flush_telemetry();
  packet.encapsulate(EncapHeader{self_, chosen});
  return true;
}

DUET_HOT std::size_t Smux::process_batch(std::span<const Packet> packets,
                                         std::span<Ipv4Address> dips_out, double now_us) {
  DUET_HOT_CHECK(dips_out.size() >= packets.size(), "process_batch output span too small");
  // Overlap the flow-table misses: by the time the decision pass reaches
  // packet k, its home slot has been in flight for k prefetch distances.
  // (No-op under a purely stateless config: the flow table stays empty.)
  for (const Packet& p : packets) stateful_.prefetch(p.tuple());

  std::uint64_t unknown = 0;
  std::uint64_t pins = 0;
  std::size_t forwarded = 0;
  for (std::size_t k = 0; k < packets.size(); ++k) {
    Ipv4Address chosen{};
    bool pinned = false;
    if (!decide(packets[k].tuple(), now_us, &chosen, &pinned)) {
      ++unknown;
      dips_out[k] = Ipv4Address{};
      continue;
    }
    if (pinned) ++pins;
    dips_out[k] = chosen;
    ++forwarded;
  }

  // One telemetry flush per batch: locals above, atomics here.
  if (tm_packets_ != nullptr) tm_packets_->inc(packets.size());
  if (tm_unknown_vip_ != nullptr && unknown > 0) tm_unknown_vip_->inc(unknown);
  if (pins > 0) {
    if (tm_flow_pins_ != nullptr) tm_flow_pins_->inc(pins);
    stateful_.refresh_size_gauge();
  }
  if (stateless_ != nullptr) stateless_->flush_telemetry();
  return forwarded;
}

void Smux::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  registry_ = &registry;
  tm_prefix_ = prefix;
  tm_packets_ = &registry.counter(prefix + "packets");
  tm_unknown_vip_ = &registry.counter(prefix + "unknown_vip");
  tm_flow_pins_ = &registry.counter(prefix + "flow_pins");
  stateful_.bind_telemetry(registry, prefix);
  if (stateless_ != nullptr) stateless_->bind_telemetry(registry, prefix + "stateless.");
}

double Smux::cpu_percent(double offered_pps) const {
  return std::min(100.0, utilization(offered_pps) * 100.0);
}

double Smux::median_added_latency_us(double rho) const {
  if (rho > 1.02) return config_.smux_overload_latency_us;
  // M/M/1-style inflation of the no-load median, clamped at the overload
  // plateau where the NIC queue caps the wait.
  const double inflated = config_.smux_base_latency_us / std::max(0.05, 1.0 - 0.9 * rho);
  return std::min(inflated, config_.smux_overload_latency_us);
}

double Smux::sample_added_latency_us(double rho, Rng& rng) const {
  const double median = median_added_latency_us(rho);
  if (rho > 1.02) {
    // Saturated: queue-dominated, narrow distribution around the plateau.
    return median * rng.uniform_real(0.8, 1.3);
  }
  // Lognormal around the median: exp(mu) = median.
  const double mu = std::log(median);
  const double sample = rng.lognormal(mu, config_.smux_latency_sigma);
  // Physical floor: software forwarding can't beat ~40 us even when lucky.
  return std::max(40.0, std::min(sample, config_.smux_overload_latency_us * 1.5));
}

}  // namespace duet
