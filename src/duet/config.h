// Calibrated constants for the Duet reproduction.
//
// Every number here is taken from the paper (section references inline); the
// benches print results in the same units the paper reports, so keeping the
// constants in one place makes the calibration auditable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "routing/bgp.h"

namespace duet {

// Which decision engine an SMux runs behind the shared port-rule/VIP
// front-end (duet/decision_engine.h):
//   * kStateful  — per-connection flow-table pins (Ananta §2.2): exact PCC,
//     O(concurrent flows) memory, SYN-floodable (smux_flow_table_max caps
//     the damage at the price of evicting real flows);
//   * kStateless — versioned bucket map with per-bucket epoch stamps
//     (stateless/stateless_engine.h, after Concury): O(DIPs) memory flat in
//     flows, zero per-flow state for a flood to exhaust; established flows
//     keep their DIP because a moved bucket adopts the newest map version
//     only after stateless_drain_idle_us of bucket silence.
// Selectable globally here or per VIP via Smux::set_engine_override.
enum class SmuxEngine : std::uint8_t { kStateful = 0, kStateless = 1 };

constexpr const char* to_string(SmuxEngine e) noexcept {
  return e == SmuxEngine::kStateless ? "stateless" : "stateful";
}

// Parses the `smux_engine=stateful|stateless` knob (duetctl --engine, env
// overrides). Returns false on an unknown name, leaving *out untouched.
inline bool parse_smux_engine(const char* name, SmuxEngine* out) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "stateful") == 0) {
    *out = SmuxEngine::kStateful;
    return true;
  }
  if (std::strcmp(name, "stateless") == 0) {
    *out = SmuxEngine::kStateless;
    return true;
  }
  return false;
}

struct DuetConfig {
  // --- SMux (Ananta software mux), §2.2 / Fig 1 -----------------------------
  // CPU saturates at 300 Kpps; with 1500-byte packets that is 3.6 Gbps.
  double smux_capacity_pps = 300e3;
  double smux_packet_bytes = 1500.0;
  // Added latency at zero load: median 196 us, 90th percentile ~1 ms.
  double smux_base_latency_us = 196.0;
  double smux_latency_sigma = 1.25;  // lognormal sigma giving p90/p50 ~ 5
  // Queue-limited latency once the CPU saturates (Fig 11 shows 20-30 ms).
  double smux_overload_latency_us = 25e3;

  // --- SMux flow-table hygiene (long-running duetd processes) ----------------
  // Connection pins idle for longer than this are eligible for eviction; a
  // re-pinned live flow maps to the SAME DIP as long as the DIP set is
  // unchanged (deterministic hash), so eviction never breaks the §5.2
  // no-remap guarantee for flows that are actually sending. 0 disables
  // idle-based expiry.
  double smux_flow_idle_us = 120e6;  // 2 minutes
  // Hard cap on flow-table entries; crossing it first expires idle pins,
  // then sheds the coldest survivors. 0 = unbounded (the short-lived sims).
  std::size_t smux_flow_table_max = 1u << 20;

  // --- SMux decision engine (DESIGN.md §13) -----------------------------------
  // Default engine for every pool on every SMux; per-VIP overrides via
  // Smux::set_engine_override. `duetctl serve --engine stateless` flips it
  // for the live runtime.
  SmuxEngine smux_engine = SmuxEngine::kStateful;
  // Stateless engine: a bucket whose map version changed adopts the newest
  // version only once the bucket has seen NO packet for this long — the
  // bucket-granular analogue of flow-table idle eviction (an idle bucket
  // holds no live flows, so flipping it breaks no connection). Matches
  // smux_flow_idle_us by default so both engines age out silence alike.
  double stateless_drain_idle_us = 120e6;  // 2 minutes
  // Bucket-array headroom: buckets per DISTINCT DIP at pool creation (sized
  // next_pow2(buckets_per_dip x dips)). If the DIP count outgrows it 2x the
  // array regrows by PCC-preserving bucket splitting (counted in telemetry).
  // Keyed on DIP cardinality, not WCMP-expanded slots, so weight changes
  // never resize.
  std::size_t stateless_buckets_per_dip = 32;
  std::size_t stateless_min_buckets = 256;
  // Hard cap on retained map versions per pool. A bucket kept busy across
  // many DIP updates pins its old version; past the cap the oldest pinned
  // version is force-retired (its buckets adopt the newest map — a counted,
  // potential PCC break, stateless.forced_adoptions). 0 = unbounded.
  std::size_t stateless_max_versions = 16;

  // --- HMux (switch), §3.1 ---------------------------------------------------
  // "microsecond latency", "high capacity (500 Gbps)".
  double hmux_latency_us = 1.0;
  double hmux_capacity_gbps = 500.0;
  std::size_t host_table_capacity = 16 * 1024;  // global VIP cap on HMuxes
  std::size_t tunnel_table_capacity = 512;      // DIP slots per switch
  std::size_t ecmp_table_capacity = 4 * 1024;

  // --- Network, §2.2 / §4 ------------------------------------------------------
  double dc_rtt_us = 381.0;           // median DC RTT without load balancer
  double indirection_delay_us = 30.0; // extra propagation via HMux detour (<30us)
  double link_headroom = 0.8;         // assignment uses 80 % of link bandwidth

  // --- Probe (ping) path model for the testbed experiments (§7) ----------------
  // Per-switch-hop latency and end-host stack cost; together they put the
  // no-mux testbed RTT in the few-hundred-µs range the paper plots.
  double probe_hop_us = 15.0;
  double probe_stack_us = 120.0;
  // Multiplicative RTT dispersion: each delivered probe's path RTT is scaled
  // by Uniform(1-f, 1+f), modelling queueing and scheduling noise along the
  // hops. Without it the hop+stack model is a constant per path and the
  // Fig 12 RTT histograms collapse to a single bucket (min==p99).
  double probe_jitter_frac = 0.12;

  // --- Assignment / migration, §4 ---------------------------------------------
  double sticky_threshold = 0.05;  // migrate only if MRU improves by 5 %

  // --- Control plane timings (Figs 12-14) --------------------------------------
  ControlPlaneTimings timings;

  double smux_capacity_gbps() const {
    return smux_capacity_pps * smux_packet_bytes * 8.0 / 1e9;
  }
};

}  // namespace duet
