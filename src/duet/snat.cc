#include "duet/snat.h"

#include "util/logging.h"

namespace duet {

SnatPortAllocator::SnatPortAllocator(FlowHasher hasher, std::uint16_t range_begin,
                                     std::uint16_t range_end)
    : SnatPortAllocator(hasher, PortRange{range_begin, range_end}) {}

SnatPortAllocator::SnatPortAllocator(FlowHasher hasher, PortRange initial) : hasher_(hasher) {
  DUET_CHECK(initial.begin < initial.end) << "empty SNAT port range";
  ranges_.push_back(initial);
}

std::optional<std::uint16_t> SnatPortAllocator::allocate(Ipv4Address vip, Ipv4Address remote,
                                                         std::uint16_t remote_port, IpProto proto,
                                                         const LandsOnUs& lands_on_us) {
  // The return packet the HMux will hash: remote -> vip, dst port = our pick.
  FiveTuple ret;
  ret.src = remote;
  ret.dst = vip;
  ret.src_port = remote_port;
  ret.proto = proto;
  for (const auto& range : ranges_) {
    for (std::uint32_t p = range.begin; p < range.end; ++p) {
      const auto port = static_cast<std::uint16_t>(p);
      if (used_.contains(port)) continue;
      ret.dst_port = port;
      if (lands_on_us(ret)) {
        used_.insert(port);
        return port;
      }
    }
  }
  return std::nullopt;  // caller asks the controller for another block
}

std::optional<std::uint16_t> SnatPortAllocator::allocate_modulo(
    Ipv4Address vip, Ipv4Address remote, std::uint16_t remote_port, IpProto proto,
    std::uint32_t wanted_slot, std::uint32_t slot_count) {
  DUET_CHECK(slot_count > 0) << "SNAT against empty ECMP group";
  DUET_CHECK(wanted_slot < slot_count) << "wanted slot out of range";
  return allocate(vip, remote, remote_port, proto, [&](const FiveTuple& t) {
    return hasher_.bucket(t, slot_count) == wanted_slot;
  });
}

void SnatPortAllocator::release(std::uint16_t port) { used_.erase(port); }

void SnatPortAllocator::extend_range(std::uint16_t new_end) {
  DUET_CHECK(!ranges_.empty() && new_end > ranges_.back().end) << "range extension must grow";
  ranges_.back().end = new_end;
}

void SnatPortAllocator::add_range(PortRange range) {
  DUET_CHECK(range.begin < range.end) << "empty SNAT port range";
  for (const auto& r : ranges_) {
    DUET_CHECK(range.end <= r.begin || range.begin >= r.end)
        << "overlapping SNAT ranges would break return-traffic disjointness";
  }
  ranges_.push_back(range);
}

}  // namespace duet
