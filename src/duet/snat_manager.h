// Controller-side SNAT port-range management (§5.2).
//
// "Like Ananta, DUET assigns disjoint port ranges to the DIPs … If an HA
// runs out of available ports, it receives another set from the DUET
// controller." The coordinator owns, per VIP, the 64K source-port space of
// outbound connections that masquerade as that VIP, and hands out
// fixed-size disjoint blocks to (vip, dip) host agents on demand. Blocks
// return to the pool when a DIP leaves.
//
// Disjointness is the correctness property: two DIPs sharing a port could
// both SNAT the same (vip, port) and the return traffic for one of them
// would reach the other.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace duet {

struct PortRange {
  std::uint16_t begin = 0;  // inclusive
  std::uint16_t end = 0;    // exclusive

  std::size_t size() const noexcept { return end - begin; }
  bool contains(std::uint16_t p) const noexcept { return p >= begin && p < end; }
  friend bool operator==(const PortRange&, const PortRange&) = default;
};

class SnatCoordinator {
 public:
  // Blocks of `block_size` ports, allocated from [first_port, 65536).
  // Ports below first_port are left for well-known services.
  explicit SnatCoordinator(std::uint16_t block_size = 1024, std::uint16_t first_port = 1024);

  // Grants the next free block of the VIP's port space to `dip`; nullopt
  // when the space is exhausted.
  std::optional<PortRange> grant(Ipv4Address vip, Ipv4Address dip);

  // Returns every block held by (vip, dip) to the pool (DIP removal, §5.1).
  void release_all(Ipv4Address vip, Ipv4Address dip);

  // Blocks currently held by (vip, dip).
  std::vector<PortRange> ranges_of(Ipv4Address vip, Ipv4Address dip) const;

  // Free blocks remaining in the VIP's space.
  std::size_t free_blocks(Ipv4Address vip) const;

 private:
  struct VipSpace {
    std::vector<PortRange> free;  // LIFO free list
    std::uint16_t next_fresh = 0;  // next never-allocated block start
    std::unordered_map<Ipv4Address, std::vector<PortRange>> held;
  };

  VipSpace& space(Ipv4Address vip);

  std::uint16_t block_size_;
  std::uint16_t first_port_;
  std::unordered_map<Ipv4Address, VipSpace> spaces_;
};

}  // namespace duet
