#include "duet/replication.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace duet {

namespace {

// Anti-affinity domain of a switch: its container, or a unique pseudo-domain
// per Core switch.
std::uint64_t affinity_domain(const Topology& topo, SwitchId s) {
  const auto& info = topo.switch_info(s);
  if (info.container != kNoContainer) return info.container;
  return (1ULL << 32) + s;
}

}  // namespace

ReplicatedAssigner::ReplicatedAssigner(const FatTree& fabric, AssignmentOptions options,
                                       ReplicationOptions replication)
    : fabric_(&fabric), options_(options), replication_(replication), routing_(fabric.topo) {
  DUET_CHECK(replication_.replicas >= 1) << "replication factor must be >= 1";
}

ReplicatedAssignment ReplicatedAssigner::assign(const std::vector<VipDemand>& demands) const {
  const Topology& topo = fabric_->topo;
  const double r = static_cast<double>(replication_.replicas);

  std::vector<double> link_load(topo.link_count() * 2, 0.0);
  std::vector<std::size_t> dips_used(topo.switch_count(), 0);
  std::vector<double> delta(topo.link_count() * 2, 0.0);
  std::vector<std::uint64_t> touched;
  std::size_t hmux_routes = 0;  // host-table entries: R per placed VIP
  double global_mru = 0.0;

  // Per-candidate load of ONE replica: each ingress sends gbps/R here, and
  // this replica forwards gbps/R of the VIP's DIP volume.
  const auto replica_delta = [&](const VipDemand& d, SwitchId s) {
    for (const std::uint64_t idx : touched) delta[idx] = 0.0;
    touched.clear();
    const auto add_unit = [&](SwitchId from, SwitchId to, double gbps) {
      for (const auto& [idx, frac] : routing_.unit_flow(from, to)) {
        if (delta[idx] == 0.0) touched.push_back(idx);
        delta[idx] += gbps * frac;
      }
    };
    for (const auto& [ingress, gbps] : d.ingress_gbps) add_unit(ingress, s, gbps / r);
    for (const auto& [tor, gbps] : d.dip_tor_gbps) add_unit(s, tor, gbps / r);
  };

  // MRU of placing one replica of d on s; nullopt if infeasible.
  const auto evaluate = [&](const VipDemand& d, SwitchId s) -> std::optional<double> {
    if (d.dip_count > options_.switch_dip_capacity ||
        dips_used[s] + d.dip_count > options_.switch_dip_capacity) {
      return std::nullopt;
    }
    replica_delta(d, s);
    double tmax = static_cast<double>(dips_used[s] + d.dip_count) /
                  static_cast<double>(options_.switch_dip_capacity);
    for (const std::uint64_t idx : touched) {
      const auto link = static_cast<LinkId>(idx / 2);
      const double cap = options_.link_headroom * topo.capacity_gbps(link);
      tmax = std::max(tmax, (link_load[idx] + delta[idx]) / cap);
    }
    if (tmax > 1.0) return std::nullopt;
    return std::max(tmax, global_mru);
  };

  const auto commit = [&](const VipDemand& d, SwitchId s) {
    replica_delta(d, s);
    for (const std::uint64_t idx : touched) {
      link_load[idx] += delta[idx];
      const auto link = static_cast<LinkId>(idx / 2);
      const double cap = options_.link_headroom * topo.capacity_gbps(link);
      global_mru = std::max(global_mru, link_load[idx] / cap);
    }
    dips_used[s] += d.dip_count;
    global_mru = std::max(global_mru, static_cast<double>(dips_used[s]) /
                                          static_cast<double>(options_.switch_dip_capacity));
  };

  std::vector<const VipDemand*> order;
  order.reserve(demands.size());
  for (const auto& d : demands) order.push_back(&d);
  std::stable_sort(order.begin(), order.end(), [](const VipDemand* a, const VipDemand* b) {
    return a->total_gbps > b->total_gbps;
  });

  ReplicatedAssignment result;
  for (const VipDemand* dp : order) {
    const VipDemand& d = *dp;
    // Every replica consumes a host-table route fleet-wide.
    if (hmux_routes + replication_.replicas > options_.host_table_capacity) {
      result.on_smux.push_back(d.id);
      result.smux_gbps += d.total_gbps;
      continue;
    }

    // Greedily pick R replicas, one at a time, honoring anti-affinity.
    std::vector<SwitchId> homes;
    std::unordered_set<std::uint64_t> used_domains;
    for (std::size_t rep = 0; rep < replication_.replicas; ++rep) {
      SwitchId best = kInvalidSwitch;
      double best_mru = std::numeric_limits<double>::infinity();
      for (SwitchId s = 0; s < topo.switch_count(); ++s) {
        if (std::find(homes.begin(), homes.end(), s) != homes.end()) continue;
        if (replication_.container_anti_affinity &&
            used_domains.contains(affinity_domain(topo, s))) {
          continue;
        }
        const auto mru = evaluate(d, s);
        if (mru.has_value() && *mru < best_mru) {
          best_mru = *mru;
          best = s;
        }
      }
      if (best == kInvalidSwitch) break;  // cannot complete the replica set
      commit(d, best);
      homes.push_back(best);
      used_domains.insert(affinity_domain(topo, best));
    }

    if (homes.size() == replication_.replicas) {
      hmux_routes += homes.size();
      result.placement.emplace(d.id, std::move(homes));
      result.hmux_gbps += d.total_gbps;
    } else {
      // Roll back partial replicas is unnecessary for the aggregate metrics
      // we report (the committed load only makes later placements more
      // conservative), but memory must be returned for accuracy.
      for (const SwitchId s : homes) dips_used[s] -= d.dip_count;
      result.on_smux.push_back(d.id);
      result.smux_gbps += d.total_gbps;
    }
  }

  result.mru = global_mru;
  result.switch_dips_used = std::move(dips_used);
  return result;
}

FailoverAnalysis analyze_failover_replicated(const FatTree& fabric,
                                             const std::vector<VipDemand>& demands,
                                             const ReplicatedAssignment& assignment) {
  const Topology& topo = fabric.topo;
  FailoverAnalysis out;

  // Container failure: a VIP spills only the share served by replicas in
  // that container, and only the part of it that cannot shift to surviving
  // replicas — with >= 1 replica alive, anycast absorbs everything, so the
  // spill is the traffic of VIPs whose EVERY replica is inside.
  std::vector<double> per_container(fabric.params.containers, 0.0);
  for (const auto& d : demands) {
    const auto it = assignment.placement.find(d.id);
    if (it == assignment.placement.end()) continue;
    const auto& homes = it->second;
    // All replicas in one container?
    const ContainerId c0 = topo.switch_info(homes.front()).container;
    if (c0 == kNoContainer) continue;
    bool all_inside = true;
    for (const SwitchId s : homes) all_inside &= (topo.switch_info(s).container == c0);
    if (all_inside) per_container[c0] += d.total_gbps;
  }
  for (const double g : per_container) {
    out.worst_container_gbps = std::max(out.worst_container_gbps, g);
  }

  // Worst 3 switches: upper-bound by the heaviest triple of switches, where
  // a VIP contributes only if ALL of its replicas are within the triple.
  // Exact search is combinatorial; we bound it by the top-3 switches ranked
  // by "traffic that would spill if this switch were the last replica
  // standing elsewhere" — for R >= 2 only VIPs with <= 3 replicas matter.
  std::unordered_map<SwitchId, double> spill_if_alone;
  for (const auto& d : demands) {
    const auto it = assignment.placement.find(d.id);
    if (it == assignment.placement.end()) continue;
    const auto& homes = it->second;
    if (homes.size() > 3) continue;  // cannot lose all replicas to 3 failures
    for (const SwitchId s : homes) spill_if_alone[s] += d.total_gbps / homes.size();
  }
  std::vector<double> loads;
  loads.reserve(spill_if_alone.size());
  for (const auto& [s, g] : spill_if_alone) loads.push_back(g);
  std::partial_sort(loads.begin(), loads.begin() + std::min<std::size_t>(3, loads.size()),
                    loads.end(), std::greater<>());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, loads.size()); ++i) {
    out.worst_three_switch_gbps += loads[i];
  }
  return out;
}

}  // namespace duet
