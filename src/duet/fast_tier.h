// In-process HMux fast tier (DESIGN.md §17).
//
// The paper's throughput claim rests on a tiny, dumb tier in front of the
// flexible one: an HMux is nothing but array indexing in switch memory,
// and it absorbs the hot aggregate while SMuxes keep the generality (§3,
// Fig 5). This is that split reproduced inside one box. A FastTierTable is
// a read-only flat snapshot of the HOT VIPs — one direct-mapped slot array
// from VIP to (salt, mask, offset) and one contiguous DIP slab holding every
// admitted pool's resolved bucket coloring — and the serving loop consults
// it per batch BEFORE Smux::process_batch. A hit is two dependent array
// reads (slot, then bucket) plus two mix64 rounds; a miss falls through to
// the full pipeline unchanged.
//
// Admission (the miss taxonomy — what stays cold):
//   * VIPs deciding through the STATEFUL engine: their decisions depend on
//     per-flow pins the snapshot cannot see. Always a miss.
//   * VIPs with any (vip, port) ACL rule: the fast tier indexes by
//     destination address only; a port-rule VIP's packets would need the
//     rule-resolution stage. Always a miss.
//   * Stateless VIPs whose VersionedPoolMap is still DRAINING (some bucket
//     stamp pinned to a pre-churn version): their decisions are
//     time-dependent until every bucket adopts the newest version. Miss
//     until settled.
//   * VIPs whose slot collides with an already-admitted VIP in the
//     direct-mapped array (rare; the builder grows the array to avoid it).
//
// For an ADMITTED VIP the map is settled — every bucket stamp references the
// newest version — so VersionedPoolMap::lookup degenerates to the pure
// expression `newest.owner[mix64(flow_hash ^ salt) & mask]`. The table
// copies exactly those three inputs, which makes hits bit-identical to the
// stateless engine's decision by construction (tests/fast_tier_test.cc
// twin-drives 1000 epochs of churn to prove it).
//
// Concurrency (the rebuild/swap protocol): a FastTier owns two table
// buffers and an atomic `current` pointer. Readers register once (a slot
// index) and per batch publish the table they read through a per-reader
// hazard slot — acquire() is an acquire-load plus one uncontended store and
// a re-check; no locks, no allocation, no CAS. rebuild() runs off the
// serving path (worker tick / controller epoch): it re-snapshots the Smux
// into the spare buffer, swaps `current`, then spins until no reader still
// holds the retired buffer, which makes that buffer the next rebuild's
// spare. Lookup and acquire/release are DUET_HOT purity roots enforced by
// tools/hotcheck.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/ip.h"
#include "util/hot.h"
#include "util/mix.h"

namespace duet {

class Smux;

// One immutable hot-VIP snapshot. Flat storage only: a power-of-two
// direct-mapped Slot array and one contiguous DIP slab shared by every
// admitted pool. Never mutated after build; readers need no synchronization
// beyond the FastTier hazard protocol that bounds its lifetime.
class FastTierTable {
 public:
  struct Slot {
    std::uint32_t vip = 0;     // 0 (0.0.0.0, never a VIP) = empty
    std::uint32_t mask = 0;    // pool bucket mask (bucket_count - 1)
    std::uint32_t offset = 0;  // pool's first bucket in the dips_ slab
    std::uint32_t epoch = 0;   // admitted map version (introspection only)
    std::uint64_t salt = 0;    // pool salt (vip_group_salt of the VIP)
  };

  // The hot path: the DIP the stateless engine would choose for a packet to
  // `vip_value` with 5-tuple hash `flow_hash`, or nullptr when the VIP is
  // not admitted (fall through to the full pipeline). One direct-mapped
  // probe — no chains, no branches to cold code. Purity root (DESIGN.md
  // §14): pure array reads, no allocation, no clock, ever.
  DUET_HOT const Ipv4Address* lookup(std::uint32_t vip_value,
                                     std::uint64_t flow_hash) const noexcept {
    const Slot& s = slots_[slot_probe(vip_value) & slot_mask_];
    if (s.vip != vip_value) return nullptr;
    const std::size_t b = static_cast<std::size_t>(mix64(flow_hash ^ s.salt)) & s.mask;
    return &dips_[static_cast<std::size_t>(s.offset) + b];
  }

  bool empty() const noexcept { return vip_count_ == 0; }
  std::size_t vip_count() const noexcept { return vip_count_; }
  std::size_t dip_slots() const noexcept { return dips_.size(); }
  std::size_t slot_count() const noexcept { return slots_.size(); }
  bool admits(Ipv4Address vip) const noexcept {
    const Slot& s = slots_[slot_probe(vip.value()) & slot_mask_];
    return s.vip == vip.value() && vip.value() != 0;
  }
  // Admitted VIP values, build order. Control path (rebuild diffing, tests).
  const std::vector<std::uint32_t>& admitted() const noexcept { return admitted_; }

  // Builder input: one admitted pool. `owner` (the settled map's newest
  // bucket coloring) is copied into the slab, not retained.
  struct Entry {
    std::uint32_t vip = 0;
    std::uint64_t salt = 0;
    std::uint32_t mask = 0;
    std::uint32_t epoch = 0;
    const std::vector<Ipv4Address>* owner = nullptr;
  };

 private:
  friend class FastTier;

  // VIP → slot probe: Fibonacci multiply-shift, one imul + one shift on the
  // critical address chain (~3x cheaper than a full mix64, which the hit
  // path would otherwise pay per packet on top of the mandatory bucket
  // mix64). Purely internal — build() and lookup() only have to agree with
  // EACH OTHER; the bucket index above must stay the engine's exact
  // mix64(flow_hash ^ salt) for bit-identity.
  static std::size_t slot_probe(std::uint32_t vip_value) noexcept {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(vip_value) * 0x9e3779b97f4a7c15ULL) >> 32);
  }

  // Rebuilds this buffer in place from `entries`. Grows the slot array
  // until every entry lands collision-free (up to a cap; past it the
  // colliding tail stays cold — a miss, never a wrong answer). Returns the
  // number of entries dropped to collisions.
  std::size_t build(const std::vector<Entry>& entries);

  std::vector<Slot> slots_{Slot{}};  // power-of-two, never empty (see build)
  std::vector<Ipv4Address> dips_;
  std::vector<std::uint32_t> admitted_;
  std::size_t slot_mask_ = 0;
  std::size_t vip_count_ = 0;
};

// The double-buffered container: one per worker (its Smux replica is the
// snapshot source), or standalone in tests/benches. Readers and the single
// rebuilder may run on different threads; rebuilds are serialized by the
// caller (they run on the owning worker's tick).
class FastTier {
 public:
  struct RebuildStats {
    std::size_t admitted = 0;           // VIPs in the new table
    std::size_t rejected_engine = 0;    // stateful-engine VIPs (per-flow pins)
    std::size_t rejected_port_rule = 0; // VIPs carrying (vip, port) ACL rules
    std::size_t rejected_unsettled = 0; // maps still draining old versions
    std::size_t rejected_collision = 0; // direct-mapped slot collisions
    std::size_t dip_slots = 0;          // total bucket slab size
  };

  // `readers` fixes the hazard-slot count; reader ids are [0, readers).
  explicit FastTier(std::size_t readers = 1);

  // --- hot path ---------------------------------------------------------------
  // Pins and returns the current table for reader `reader`. The pointer
  // stays valid until release(). One acquire-load, one hazard store, one
  // re-check load; the re-check loop only spins if a rebuild lands between
  // the load and the store (control-path rare).
  DUET_HOT const FastTierTable* acquire(std::size_t reader) noexcept {
    std::atomic<const FastTierTable*>& slot = hazards_[reader].ptr;
    const FastTierTable* t = current_.load(std::memory_order_acquire);
    for (;;) {
      // seq_cst store + seq_cst re-load: both sides' store→load sequences
      // join the single seq_cst total order, so either the rebuilder's scan
      // sees our hazard or we see the new current and retry. (A fence would
      // express the same pairing but is a compile error under -Werror=tsan.)
      slot.store(t, std::memory_order_seq_cst);
      const FastTierTable* now = current_.load(std::memory_order_seq_cst);
      if (now == t) return t;
      t = now;
    }
  }
  DUET_HOT void release(std::size_t reader) noexcept {
    hazards_[reader].ptr.store(nullptr, std::memory_order_release);
  }

  // --- control path -----------------------------------------------------------
  // Re-snapshots the hot-VIP set from `smux` into the spare buffer and
  // swaps it in. Mutates smux's stateless maps on the way in two
  // PCC-preserving ways: previously admitted pools get every bucket's
  // last-seen refreshed to `now_us` (traffic served by the fast tier is
  // invisible to the map's drain clock, so after churn those buckets must
  // be presumed live), and candidate pools get their expired buckets
  // adopted (adopt_drained) so an idle pool re-settles without needing a
  // packet per bucket. Caller serializes rebuilds.
  RebuildStats rebuild(Smux& smux, double now_us);

  // Swaps in an explicit entry set (tests; also the path rebuild() uses).
  RebuildStats install(const std::vector<FastTierTable::Entry>& entries);

  const FastTierTable* current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }
  std::uint64_t rebuilds() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  std::size_t reader_slots() const noexcept { return hazards_.size(); }

 private:
  friend class FastTierBuilderProbe;  // tests

  struct alignas(64) Hazard {
    std::atomic<const FastTierTable*> ptr{nullptr};
  };

  // Blocks until no hazard slot references `retired` (readers are per-batch
  // critical sections, so this is microseconds).
  void wait_unreferenced(const FastTierTable* retired) const noexcept;

  FastTierTable buffers_[2];
  std::atomic<const FastTierTable*> current_;
  std::vector<Hazard> hazards_;
  std::atomic<std::uint64_t> rebuilds_{0};
};

}  // namespace duet
