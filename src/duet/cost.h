// Deployment cost model (§1, §2.2, §3.3.2).
//
// The paper's economic claims, made computable:
//   * "handling 15 Tbps traffic requires over 4000 SMuxes, costing over USD
//     10 million" — i.e. a commodity SMux server is ~$2,500 and serves
//     3.6 Gbps; an Ananta deployment's cost is linear in traffic;
//   * "4K SMuxes, or 10% of the DC size; which is unacceptable";
//   * traditional hardware load balancers are "very expensive" appliances
//     deployed 1+1 (§10: "typically only provide 1+1 availability");
//   * Duet's HMuxes are free — they are the switches the DC already bought —
//     so Duet pays only for its (small) SMux backstop and the controller.
#pragma once

#include <cstddef>

namespace duet {

struct CostModel {
  // Commodity server hosting one SMux: $10M / 4000 (§1).
  double smux_server_usd = 2'500.0;
  // Dedicated hardware LB appliance cost per Gbps of capacity. Mid-2010s
  // list prices for 40-100 Gbps appliances land around $100-250K per box.
  double hw_lb_usd_per_gbps = 2'500.0;
  // 1+1 deployment: every appliance is paired (§10).
  double hw_lb_redundancy = 2.0;
  // Duet controller + monitoring: a handful of commodity servers.
  double controller_usd = 10'000.0;
  double smux_capacity_gbps = 3.6;

  // Ananta: enough SMuxes for the full traffic.
  double ananta_usd(double total_gbps) const;
  std::size_t ananta_smuxes(double total_gbps) const;

  // Duet: the backstop SMux pool (sized by the §8.2 provisioning rule, so
  // the caller passes the count) plus the controller. HMuxes cost $0.
  double duet_usd(std::size_t backstop_smuxes) const;

  // Traditional hardware load balancer tier for the same traffic.
  double hardware_lb_usd(double total_gbps) const;

  // Server-count overhead of an SMux fleet relative to a DC of `dc_servers`
  // (§2.2's "10% of the DC size" check).
  double fleet_fraction(std::size_t smuxes, std::size_t dc_servers) const;
};

}  // namespace duet
