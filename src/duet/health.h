// DIP health monitoring (§5.1, §6).
//
// "The DUET controller monitors DIP health and removes failed DIP from the
// set of DIPs for the corresponding VIP" — fed by the host agents, which
// probe their local DIPs and report per-VIP health periodically.
//
// The monitor is deliberately hysteretic: one missed heartbeat must not
// trigger a DIP removal, because on an HMux a removal remaps the failed
// member's flows (resilient hashing) and on re-addition the VIP must bounce
// through the SMuxes (§5.2) — flapping would thrash connections. A DIP goes
// DOWN after `fail_after_missed` consecutive misses (or heartbeat silence of
// the same span) and UP again only after `recover_after` consecutive
// successes.
//
// Pure deterministic state machine: time is an explicit parameter so the
// event-driven simulators and the tests drive it precisely.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "telemetry/journal.h"

namespace duet {

struct HealthParams {
  double heartbeat_interval_us = 1e6;  // host agents probe every second
  std::size_t fail_after_missed = 3;
  std::size_t recover_after = 2;
};

struct HealthTransition {
  Ipv4Address vip;
  Ipv4Address dip;
  bool healthy = false;  // new state
  double at_us = 0.0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthParams params = {}) : params_(params) {}

  // Registers a (vip, dip) pair as healthy at time t.
  void watch(Ipv4Address vip, Ipv4Address dip, double t_us);
  void unwatch(Ipv4Address vip, Ipv4Address dip);

  // A host agent's probe result for its local DIP.
  void report_probe(Ipv4Address vip, Ipv4Address dip, bool ok, double t_us);

  // Advances the clock: a DIP whose last heartbeat is older than
  // fail_after_missed * heartbeat_interval is treated as silently dead
  // (host crashed — no agent left to report failures).
  void advance_time(double t_us);

  bool is_healthy(Ipv4Address vip, Ipv4Address dip) const;
  std::size_t watched_count() const noexcept { return entries_.size(); }

  // Optional: every health transition is also journaled (kDipUp/kDipDown)
  // with its explicit timestamp. The journal must outlive the monitor.
  void attach_journal(telemetry::EventJournal* journal) { journal_ = journal; }

  // Drains state transitions accumulated since the last poll — what the
  // controller applies via report_dip_health.
  std::vector<HealthTransition> poll();

 private:
  struct Key {
    Ipv4Address vip, dip;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<Ipv4Address>{}(k.vip) * 1000003 ^ std::hash<Ipv4Address>{}(k.dip);
    }
  };
  struct Entry {
    bool healthy = true;
    std::size_t consecutive_misses = 0;
    std::size_t consecutive_successes = 0;
    double last_heartbeat_us = 0.0;
  };

  void transition(const Key& key, Entry& e, bool healthy, double t_us);

  HealthParams params_;
  telemetry::EventJournal* journal_ = nullptr;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::vector<HealthTransition> pending_;
};

}  // namespace duet
