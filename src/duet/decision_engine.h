// DecisionEngine: the per-flow DIP-selection stage of an SMux, extracted so
// the stateful (flow-table) and stateless (versioned Othello-style map)
// engines are interchangeable behind one contract.
//
// The SMux pipeline has two stages (Fig 8 / §5.2):
//   1. the POOL FRONT-END — which DIP pool applies to this packet: the
//      (vip, dst_port) ACL rule if one exists, else the VIP-wide pool. This
//      stage is identical for every engine and stays in Smux;
//   2. the DECISION — which DIP within the resolved pool serves this flow,
//      and how that choice stays stable across DIP updates (PCC, §5.2's
//      no-remap guarantee). This stage is the engine.
//
// Engines:
//   * StatefulEngine (duet/stateful_engine.h): first packet hashes through
//     the switch-mirrored ResilientHashGroup, then a per-connection flow
//     table pins the choice. O(concurrent flows) memory — the SYN-flood
//     exhaustion surface (smux_flow_table_max + eviction knobs).
//   * stateless::StatelessEngine (stateless/stateless_engine.h): a versioned
//     bucket map from connection hash to DIP with per-bucket epoch stamps.
//     O(DIPs) memory regardless of flow count; no per-flow entries to flood.
//
// Contract notes:
//   * decide() must be deterministic: the same (pool content, tuple, call
//     history) always yields the same DIP — the bit-for-bit sweep contract
//     (DESIGN.md §9) and the golden traces depend on it.
//   * Pool lifecycle callbacks run on the control path (off the per-packet
//     path); decide() is the only hot-path entry. Neither is thread-safe —
//     an engine belongs to one Smux replica, one worker (§2.2 scale-out).
//   * `pinned` reports whether the call created per-flow state (the caller
//     owns flow-pin telemetry); a stateless engine always reports false.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/resilient_hash.h"
#include "net/ip.h"
#include "net/packet.h"
#include "util/logging.h"

namespace duet {

// A resolved DIP pool: the WCMP slot expansion plus the switch-mirrored
// resilient-hash group over those slots (§3.3.1 "same hash function" means
// same *bucket layout*; see smux.h). Shared by the front-end and both
// engines; built once per set_vip/set_port_rule.
struct VipPool {
  // Member slots; a removed DIP keeps its slot (dead) so surviving slots —
  // and therefore surviving flows — never move, mirroring the switch.
  std::vector<Ipv4Address> dips;
  ResilientHashGroup group{1};

  // WCMP slot expansion, identical to the switch's tunneling-table layout
  // (a DIP with weight w occupies w slots).
  static VipPool build(const std::vector<Ipv4Address>& dips,
                       const std::vector<std::uint32_t>& weights, std::uint64_t salt) {
    DUET_CHECK(!dips.empty()) << "pool with no DIPs";
    DUET_CHECK(weights.empty() || weights.size() == dips.size())
        << "weights/dips size mismatch";
    VipPool pool;
    for (std::size_t i = 0; i < dips.size(); ++i) {
      const std::uint32_t w = weights.empty() ? 1 : weights[i];
      DUET_CHECK(w > 0) << "zero WCMP weight";
      for (std::uint32_t r = 0; r < w; ++r) pool.dips.push_back(dips[i]);
    }
    pool.group = ResilientHashGroup(pool.dips.size(), 4, salt);
    return pool;
  }
};

// Stable pool identifiers shared between the front-end and the engines.
// Port rules pack as (vip << 16 | port); VIP-wide pools set the top bit so
// the two spaces never collide (VIP values fit 32 bits, ports 16).
constexpr std::uint64_t kVipWidePoolBit = 1ULL << 63;

constexpr std::uint64_t port_rule_pool_id(Ipv4Address vip, std::uint16_t port) noexcept {
  return (static_cast<std::uint64_t>(vip.value()) << 16) | port;
}
constexpr std::uint64_t vip_pool_id(Ipv4Address vip) noexcept {
  return kVipWidePoolBit | vip.value();
}

class DecisionEngine {
 public:
  virtual ~DecisionEngine() = default;

  virtual const char* name() const noexcept = 0;

  // --- pool lifecycle (control path) ----------------------------------------
  // The pool at `pool_id` was created or its slot layout rebuilt (set_vip /
  // set_port_rule / weight change). `pool` is the freshly built layout; the
  // reference is NOT retained past the call.
  virtual void pool_updated(std::uint64_t pool_id, const VipPool& pool, double now_us) = 0;
  // The pool (and, for VIP-wide pools, the VIP `vip`) went away entirely.
  virtual void pool_removed(std::uint64_t pool_id, Ipv4Address vip, double now_us) = 0;
  // A DIP was removed in place (slots killed, layout otherwise untouched).
  // Connections to `dip` necessarily terminate (§5.1); the engine must stop
  // directing any flow to it. Flows on surviving DIPs must not move.
  virtual void dip_removed(std::uint64_t pool_id, const VipPool& pool, Ipv4Address dip,
                           double now_us) = 0;

  // --- the decision (hot path) ----------------------------------------------
  // Chooses a DIP for `tuple` within the resolved pool. Returns false only
  // when the engine cannot serve the pool (never for a live pool). `pinned`
  // reports whether this call created per-flow state.
  virtual bool decide(std::uint64_t pool_id, const VipPool& pool, const FiveTuple& tuple,
                      double now_us, Ipv4Address* chosen, bool* pinned) = 0;

  // --- introspection ---------------------------------------------------------
  // Per-flow entries currently held (0 for a stateless engine — the memory
  // gate bench plots this against decision_state_bytes()).
  virtual std::size_t flow_entries() const noexcept = 0;
  // Resident bytes of engine-owned decision state: per-flow tables for the
  // stateful engine, version/stamp arrays for the stateless one. Excludes
  // the shared front-end pools (identical for both engines).
  virtual std::size_t decision_state_bytes() const noexcept = 0;
};

}  // namespace duet
