// StatefulEngine: the classical Ananta/Duet SMux decision engine — first
// packet hashes through the switch-mirrored ResilientHashGroup, then a
// per-connection flow table pins the choice (§2.2, §5.2).
//
// This is the flow-table half of the pre-PR-6 Smux, extracted behind the
// DecisionEngine interface so the stateless engine can plug in beside it.
// The hot path (decide, prefetch) is header-inline: Smux::process_batch
// calls it through the concrete type, so the extraction costs nothing on
// the ≥2x pin-hit gate (bench_hotpath).
//
// Memory is O(concurrent flows) — the property the stateless engine exists
// to escape: a SYN flood inserts one FlowPin per spoofed tuple until the
// smux_flow_table_max cap forces eviction of real flows (bench_stateless
// measures exactly this).
#pragma once

#include <cstdint>

#include "duet/config.h"
#include "duet/decision_engine.h"
#include "net/hash.h"
#include "net/packet.h"
#include "telemetry/metrics.h"
#include "util/flat_table.h"
#include "util/hot.h"

namespace duet {

class StatefulEngine final : public DecisionEngine {
 public:
  StatefulEngine(FlowHasher hasher, const DuetConfig& config)
      : hasher_(hasher), config_(config) {}

  const char* name() const noexcept override { return "stateful"; }

  // --- DecisionEngine ---------------------------------------------------------
  // Pool rebuilds never touch pins: existing connections stay pinned across
  // DIP addition / weight changes (§5.2 no-remap).
  void pool_updated(std::uint64_t, const VipPool&, double) override {}

  // VIP removal drops every pin for the VIP; port-rule removal keeps pins
  // (an established flow keeps its port-steered DIP, as before).
  void pool_removed(std::uint64_t pool_id, Ipv4Address vip, double) override {
    if ((pool_id & kVipWidePoolBit) == 0) return;
    flow_table_.erase_if(
        [vip](const FiveTuple& tuple, const FlowPin&) { return tuple.dst == vip; });
    refresh_size_gauge();
  }

  // Connections to the removed DIP necessarily terminate (§5.1); pinned
  // flows to other DIPs survive untouched.
  void dip_removed(std::uint64_t pool_id, const VipPool&, Ipv4Address dip, double) override {
    const Ipv4Address vip{static_cast<std::uint32_t>(
        (pool_id & kVipWidePoolBit) != 0 ? pool_id & 0xffffffffULL : pool_id >> 16)};
    const std::size_t evicted = flow_table_.erase_if([&](const FiveTuple& tuple,
                                                         const FlowPin& pin) {
      return tuple.dst == vip && pin.dip == dip;
    });
    if (evicted > 0) {
      // flow_evictions stays the inclusive total; flow_dip_kills splits out
      // the §5.1 slice so chaos reports can tell cap shedding from DIP loss.
      if (tm_flow_evictions_ != nullptr) tm_flow_evictions_->inc(evicted);
      if (tm_flow_dip_kills_ != nullptr) tm_flow_dip_kills_->inc(evicted);
    }
    refresh_size_gauge();
  }

  // The decision core: pin hit -> pinned DIP, else hash-select (the exact
  // bucket layout every HMux computes, §3.3.1) and pin. Purity root
  // (DESIGN.md §14): everything reachable except the allow-listed cap/grow
  // cold paths must stay allocation/lock/clock/stdio-free.
  DUET_HOT bool decide(std::uint64_t, const VipPool& pool, const FiveTuple& tuple,
                       double now_us, Ipv4Address* chosen, bool* pinned) override {
    *pinned = false;
    FlowPin* pin = flow_table_.find(tuple);
    if (pin != nullptr) {
      *chosen = pin->dip;
      pin->last_seen_us = now_us;
      return true;
    }
    const Ipv4Address dip = pool.dips[pool.group.select(hasher_.hash(tuple))];
    *flow_table_.try_emplace(tuple).first = FlowPin{dip, now_us};
    *pinned = true;
    if (config_.smux_flow_table_max > 0 && flow_table_.size() > config_.smux_flow_table_max) {
      enforce_flow_cap(now_us);
    }
    *chosen = dip;
    return true;
  }

  std::size_t flow_entries() const noexcept override { return flow_table_.size(); }

  std::size_t decision_state_bytes() const noexcept override {
    return flow_table_.capacity() *
           sizeof(util::FlatTable<FiveTuple, FlowPin>::Slot);
  }

  // --- hot-path helpers (Smux::process_batch) ---------------------------------
  DUET_HOT void prefetch(const FiveTuple& tuple) const { flow_table_.prefetch(tuple); }

  // --- flow-table hygiene (see smux.h for the eviction contract) --------------
  std::size_t expire_flows(double now_us, double idle_us);

  struct EvictStats {
    std::size_t scanned = 0;
    std::size_t evicted = 0;
  };
  EvictStats expire_flows_step(double now_us, double idle_us, std::size_t max_slots);

  std::size_t flow_table_size() const noexcept { return flow_table_.size(); }

  // Flow-table telemetry: flow_evictions, flow_scan_slots counters;
  // flow_table_size, flow_scan_max_slots gauges (see Smux::bind_telemetry).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

  // Batched gauge update: decide() leaves the size gauge alone so a batch
  // pays one atomic store, not one per pin (Smux flushes after the batch).
  void refresh_size_gauge() {
    if (tm_flow_table_size_ != nullptr) {
      tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
    }
  }

 private:
  struct FlowPin {
    Ipv4Address dip;
    double last_seen_us = 0.0;
  };

  // Called when an insert pushes the table past smux_flow_table_max: expire
  // idle pins, then shed the coldest survivors down to the cap. Ties on
  // last-seen break by tuple order, so the shed set is independent of table
  // iteration order.
  void enforce_flow_cap(double now_us);

  FlowHasher hasher_;
  DuetConfig config_;
  telemetry::Counter* tm_flow_evictions_ = nullptr;
  telemetry::Counter* tm_flow_dip_kills_ = nullptr;
  telemetry::Counter* tm_flow_scan_slots_ = nullptr;
  telemetry::Gauge* tm_flow_table_size_ = nullptr;
  telemetry::Gauge* tm_flow_scan_max_ = nullptr;

  // Connection pinning: 5-tuple -> chosen DIP + idle timestamp.
  util::FlatTable<FiveTuple, FlowPin> flow_table_;
  // expire_flows_step's persistent position.
  std::size_t scan_cursor_ = 0;
  std::size_t scan_max_slots_ = 0;
};

}  // namespace duet
