#include "duet/migration.h"

namespace duet {

MigrationPlan plan_migration(const Assignment& from, const Assignment& to,
                             const std::vector<VipDemand>& demands) {
  MigrationPlan plan;
  for (const auto& d : demands) {
    plan.total_gbps += d.total_gbps;
    const auto old_home = from.switch_of(d.id);
    const auto new_home = to.switch_of(d.id);
    if (old_home == new_home) continue;  // includes SMux->SMux (both nullopt)

    VipMove move;
    move.vip = d.id;
    move.from = old_home;
    move.to = new_home;
    move.gbps = d.total_gbps;
    if (old_home && new_home) {
      move.kind = MoveKind::kHmuxToHmux;
      plan.shuffled_gbps += d.total_gbps;  // transits SMux as stepping stone
    } else if (old_home) {
      move.kind = MoveKind::kHmuxToSmux;
      plan.shuffled_gbps += d.total_gbps;  // lands on SMux (and stays)
    } else {
      move.kind = MoveKind::kSmuxToHmux;   // already on SMux; no extra transit
    }
    plan.moves.push_back(move);
  }
  return plan;
}

void journal_migration_plan(const MigrationPlan& plan, telemetry::EventJournal& journal,
                            double t_us,
                            const std::function<Ipv4Address(VipId)>& vip_of) {
  using telemetry::Event;
  using telemetry::EventKind;
  // Phase 1: withdraws (traffic falls to the SMux backstop)...
  for (const auto& move : plan.moves) {
    if (move.kind == MoveKind::kSmuxToHmux) continue;
    const Ipv4Address vip = vip_of(move.vip);
    if (vip.value() == 0) continue;
    Event e{t_us, EventKind::kMigrationWithdraw, vip, {}, move.from.value_or(telemetry::kNoSwitch),
            0, 0, 0, {}};
    journal.record(std::move(e));
  }
  // ...phase 2: announces from the new homes.
  for (const auto& move : plan.moves) {
    if (!move.to.has_value()) continue;
    const Ipv4Address vip = vip_of(move.vip);
    if (vip.value() == 0) continue;
    Event e{t_us, EventKind::kMigrationAnnounce, vip, {}, *move.to, 0, 0, 0, {}};
    journal.record(std::move(e));
  }
}

}  // namespace duet
