// Hmux is header-only; this TU compiles the header standalone.
#include "duet/hmux.h"
