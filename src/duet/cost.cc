#include "duet/cost.h"

#include <cmath>

#include "util/logging.h"

namespace duet {

std::size_t CostModel::ananta_smuxes(double total_gbps) const {
  DUET_CHECK(smux_capacity_gbps > 0.0) << "SMux with no capacity";
  return static_cast<std::size_t>(std::ceil(std::max(0.0, total_gbps) / smux_capacity_gbps));
}

double CostModel::ananta_usd(double total_gbps) const {
  return static_cast<double>(ananta_smuxes(total_gbps)) * smux_server_usd;
}

double CostModel::duet_usd(std::size_t backstop_smuxes) const {
  return static_cast<double>(backstop_smuxes) * smux_server_usd + controller_usd;
}

double CostModel::hardware_lb_usd(double total_gbps) const {
  return std::max(0.0, total_gbps) * hw_lb_usd_per_gbps * hw_lb_redundancy;
}

double CostModel::fleet_fraction(std::size_t smuxes, std::size_t dc_servers) const {
  DUET_CHECK(dc_servers > 0) << "empty datacenter";
  return static_cast<double>(smuxes) / static_cast<double>(dc_servers);
}

}  // namespace duet
