// Host Agent (HA), as in Ananta (§2.1) plus Duet's extensions (§5.2, §6).
//
// Runs on every server. Data-plane duties:
//   * decapsulate arriving IP-in-IP packets and deliver to the local DIP
//     (or, in virtualized clusters, hash the inner 5-tuple to pick among the
//     VMs/DIPs hosted on this machine — the HMux encapsulated to the host IP
//     and left the final choice to the HA, Fig 6);
//   * direct server return (DSR): rewrite outgoing source DIP→VIP and send
//     straight to the client, bypassing every mux (§2.1);
//   * SNAT source-port selection with the shared hash (duet/snat.h);
//   * traffic metering reported to the controller (§6).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/hash.h"
#include "net/packet.h"

namespace duet {

class HostAgent {
 public:
  HostAgent(Ipv4Address host_ip, FlowHasher hasher) : host_ip_(host_ip), hasher_(hasher) {}

  Ipv4Address host_ip() const noexcept { return host_ip_; }

  // Registers a DIP hosted on this machine (a VM's address, or the host
  // address itself in bare-metal clusters) serving the given VIP.
  void add_local_dip(Ipv4Address vip, Ipv4Address dip);
  bool remove_local_dip(Ipv4Address vip, Ipv4Address dip);

  // --- inbound ------------------------------------------------------------------
  // Handles a packet whose outer destination is this host. Decapsulates,
  // picks the local DIP (hashing among them when the host runs several, Fig
  // 6), rewrites nothing else — the inner destination stays the VIP so the
  // server sees the connection the client opened. Returns the chosen DIP, or
  // nullopt when the packet is not for a VIP we host (dropped).
  std::optional<Ipv4Address> deliver(Packet& packet);

  // --- outbound (DSR) --------------------------------------------------------------
  // Rewrites the source of a response from the DIP to the VIP and returns it
  // for direct transmission to the client (bypassing all muxes).
  Packet direct_server_return(Ipv4Address vip, Packet response) const;

  // --- metering (§6: "the host agents perform traffic metering") -----------------
  std::uint64_t delivered_packets() const noexcept { return delivered_packets_; }
  std::uint64_t delivered_bytes() const noexcept { return delivered_bytes_; }
  void reset_meters() noexcept { delivered_packets_ = 0; delivered_bytes_ = 0; }

  const FlowHasher& hasher() const noexcept { return hasher_; }

 private:
  Ipv4Address host_ip_;
  FlowHasher hasher_;
  // VIP -> DIPs hosted on this machine.
  std::unordered_map<Ipv4Address, std::vector<Ipv4Address>> local_dips_;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

}  // namespace duet
