// Large-fanout VIP support via TIP indirection (§5.2, Fig 7).
//
// The tunneling table caps an HMux at 512 DIPs per VIP. For bigger backends
// the DIP set is split into partitions of ≤512; each partition gets a
// transient IP (TIP) assigned — like a VIP — to some switch. The primary
// HMux's tunneling entries point at the TIPs; a packet is encapsulated to a
// TIP, routed there, decapsulated, re-encapsulated to a DIP of that
// partition, and forwarded. Two line-rate passes support up to 512 × 512 =
// 262,144 DIPs per VIP at negligible extra propagation delay.
#pragma once

#include <unordered_map>
#include <vector>

#include "dataplane/pipeline.h"
#include "net/ip.h"
#include "topo/topology.h"

namespace duet {

struct FanoutPartition {
  Ipv4Address tip;
  SwitchId host_switch = kInvalidSwitch;  // switch the TIP is assigned to
  std::vector<Ipv4Address> dips;
};

struct FanoutPlan {
  Ipv4Address vip;
  std::vector<FanoutPartition> partitions;

  std::size_t total_dips() const {
    std::size_t n = 0;
    for (const auto& p : partitions) n += p.dips.size();
    return n;
  }
};

// Splits `dips` into partitions of at most `max_per_partition`, allocating
// TIP addresses sequentially from `tip_base` and hosting partition i on
// `hosts[i % hosts.size()]`. hosts must be non-empty; dips must fit in
// hosts.size()*... (checked by install, not plan).
FanoutPlan plan_fanout(Ipv4Address vip, const std::vector<Ipv4Address>& dips,
                       Ipv4Address tip_base, const std::vector<SwitchId>& hosts,
                       std::size_t max_per_partition = 512);

// Programs the plan: the primary switch gets the VIP with TIP targets; each
// partition's host switch gets a TIP entry (decap + re-encap). `dataplanes`
// maps switch id -> its data plane. All-or-nothing: rolls back on failure.
bool install_fanout(const FanoutPlan& plan, SwitchDataPlane& primary,
                    std::unordered_map<SwitchId, SwitchDataPlane*>& dataplanes);

// Removes everything the plan installed.
void remove_fanout(const FanoutPlan& plan, SwitchDataPlane& primary,
                   std::unordered_map<SwitchId, SwitchDataPlane*>& dataplanes);

}  // namespace duet
