#include "duet/assignment.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace duet {

namespace {

// Directed link index: one load counter per link direction.
std::uint64_t dlink(LinkId l, SwitchId from, const Topology& topo) {
  return static_cast<std::uint64_t>(l) * 2 + (topo.link_info(l).a == from ? 0 : 1);
}

}  // namespace

struct VipAssigner::State {
  std::vector<double> link_load;          // Gbps per directed link
  std::vector<std::size_t> dips_used;     // per switch
  std::size_t hmux_vips = 0;              // against host_table_capacity
  double global_mru = 0.0;
  mutable Rng rng{1};
};

// Dense delta buffer + touched list, reused across candidate evaluations
// (the evaluation loop runs millions of times; a hash map here dominates
// the whole algorithm's runtime). One instance per pool worker: worker ids
// never run concurrently with themselves, so per-worker scratch is race-free
// while `State` stays strictly read-only during parallel evaluation.
struct VipAssigner::Scratch {
  std::vector<double> delta;                 // per directed link
  std::vector<std::uint64_t> delta_touched;  // indices with delta != 0

  explicit Scratch(std::size_t dlinks = 0) : delta(dlinks, 0.0) {}

  void clear_delta() {
    for (const std::uint64_t idx : delta_touched) delta[idx] = 0.0;
    delta_touched.clear();
  }
};

VipAssigner::VipAssigner(const FatTree& fabric, AssignmentOptions options)
    : fabric_(&fabric), options_(options), routing_(fabric.topo) {}

void VipAssigner::delta_loads(const VipDemand& d, SwitchId s, Scratch& scratch) const {
  scratch.clear_delta();
  const auto add_unit = [&](SwitchId from, SwitchId to, double gbps) {
    for (const auto& [idx, frac] : routing_.unit_flow(from, to)) {
      if (scratch.delta[idx] == 0.0) scratch.delta_touched.push_back(idx);
      scratch.delta[idx] += gbps * frac;
    }
  };
  for (const auto& [ingress, gbps] : d.ingress_gbps) add_unit(ingress, s, gbps);
  for (const auto& [tor, gbps] : d.dip_tor_gbps) add_unit(s, tor, gbps);
}

std::size_t VipAssigner::dip_slots_needed(const VipDemand& d) const {
  const std::size_t cap = options_.switch_dip_capacity;
  if (d.dip_count <= cap) return d.dip_count;
  // §5.2 large fanout: the primary switch stores one TIP pointer per
  // partition of <= cap DIPs. (The partitions themselves are placed by the
  // controller on other switches; "the VIP assignment algorithm also needs
  // some changes to handle TIPs" — this is our variant of those changes.)
  return (d.dip_count + cap - 1) / cap;
}

std::optional<double> VipAssigner::evaluate(const State& state, Scratch& scratch,
                                            const VipDemand& d, SwitchId s,
                                            double* touched_max) const {
  // Memory feasibility first (cheap).
  const std::size_t mem_cap = options_.switch_dip_capacity;
  if (d.dip_count > mem_cap * mem_cap) return std::nullopt;  // beyond even 512x512
  const std::size_t need = dip_slots_needed(d);
  if (need > mem_cap || state.dips_used[s] + need > mem_cap) {
    return std::nullopt;
  }
  const double mem_util = static_cast<double>(state.dips_used[s] + need) /
                          static_cast<double>(options_.switch_dip_capacity);

  delta_loads(d, s, scratch);

  const Topology& topo = fabric_->topo;
  double tmax = mem_util;
  for (const std::uint64_t idx : scratch.delta_touched) {
    const auto link = static_cast<LinkId>(idx / 2);
    const double cap = options_.link_headroom * topo.capacity_gbps(link);
    const double util = (state.link_load[idx] + scratch.delta[idx]) / cap;
    tmax = std::max(tmax, util);
  }
  if (tmax > 1.0) return std::nullopt;  // would exceed some resource capacity
  if (touched_max != nullptr) *touched_max = tmax;
  return std::max(tmax, state.global_mru);
}

void VipAssigner::commit(State& state, Scratch& scratch, const VipDemand& d, SwitchId s) const {
  delta_loads(d, s, scratch);
  const Topology& topo = fabric_->topo;
  for (const std::uint64_t idx : scratch.delta_touched) {
    state.link_load[idx] += scratch.delta[idx];
    const auto link = static_cast<LinkId>(idx / 2);
    const double cap = options_.link_headroom * topo.capacity_gbps(link);
    state.global_mru = std::max(state.global_mru, state.link_load[idx] / cap);
  }
  state.dips_used[s] += dip_slots_needed(d);
  state.global_mru =
      std::max(state.global_mru, static_cast<double>(state.dips_used[s]) /
                                     static_cast<double>(options_.switch_dip_capacity));
  ++state.hmux_vips;
}

std::vector<SwitchId> VipAssigner::candidates(const State& state, const VipDemand& d) const {
  const Topology& topo = fabric_->topo;
  std::vector<SwitchId> out;
  if (!options_.container_optimization) {
    out.reserve(topo.switch_count());
    for (SwitchId s = 0; s < topo.switch_count(); ++s) out.push_back(s);
    return out;
  }

  // All Core and Agg switches are always candidates…
  out.insert(out.end(), fabric_->cores.begin(), fabric_->cores.end());
  out.insert(out.end(), fabric_->aggs.begin(), fabric_->aggs.end());

  // …plus, per container, the ToR with the lowest local utilization (Fig 5:
  // the intra-container choice only affects intra-container links).
  const std::size_t tpc = fabric_->params.tors_per_container;
  for (std::size_t c = 0; c < fabric_->params.containers; ++c) {
    SwitchId best = kInvalidSwitch;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < tpc; ++t) {
      const SwitchId tor = fabric_->tors[c * tpc + t];
      if (state.dips_used[tor] + dip_slots_needed(d) > options_.switch_dip_capacity) continue;
      double score = static_cast<double>(state.dips_used[tor]) /
                     static_cast<double>(options_.switch_dip_capacity);
      for (const auto& adj : topo.neighbors(tor)) {
        const double cap = options_.link_headroom * topo.capacity_gbps(adj.link);
        score = std::max(score, state.link_load[dlink(adj.link, tor, topo)] / cap);
        score = std::max(score, state.link_load[dlink(adj.link, adj.neighbor, topo)] / cap);
      }
      if (score < best_score) {
        best_score = score;
        best = tor;
      }
    }
    if (best != kInvalidSwitch) out.push_back(best);
  }
  return out;
}

Assignment VipAssigner::run(const std::vector<VipDemand>& demands,
                            const Assignment* previous) const {
  const Topology& topo = fabric_->topo;
  State state;
  state.link_load.assign(topo.link_count() * 2, 0.0);
  state.dips_used.assign(topo.switch_count(), 0);
  state.rng = Rng{options_.seed};

  // One evaluation scratch per pool worker (worker 0 doubles as the serial
  // scratch for commit and the sticky filter).
  exec::ThreadPool& pool = exec::pool_or_global(options_.pool);
  std::vector<Scratch> scratch;
  scratch.reserve(pool.width());
  for (std::size_t w = 0; w < pool.width(); ++w) scratch.emplace_back(topo.link_count() * 2);

  // §4.1: decreasing traffic volume.
  std::vector<const VipDemand*> order;
  order.reserve(demands.size());
  for (const auto& d : demands) order.push_back(&d);
  std::stable_sort(order.begin(), order.end(),
                   [](const VipDemand* a, const VipDemand* b) {
                     return a->total_gbps > b->total_gbps;
                   });

  Assignment result;
  bool terminated = false;

  struct CandEval {
    double mru = 0.0;
    double touched = 0.0;
    bool feasible = false;
  };
  std::vector<CandEval> evals;

  for (const VipDemand* dp : order) {
    const VipDemand& d = *dp;
    auto leave_on_smux = [&] {
      result.on_smux.push_back(d.id);
      result.smux_gbps += d.total_gbps;
    };

    if (terminated || state.hmux_vips >= options_.host_table_capacity) {
      leave_on_smux();
      continue;
    }

    // Score every candidate in parallel into ordered slots. `state` is
    // read-only here; each worker mutates only its own scratch. The routing
    // unit-flow cache must be warmed serially first — a cache MISS inserts
    // (see paths.h), so the parallel region may only perform hits.
    const std::vector<SwitchId> cands = candidates(state, d);
    for (const SwitchId s : cands) {
      for (const auto& in : d.ingress_gbps) (void)routing_.unit_flow(in.first, s);
      for (const auto& dt : d.dip_tor_gbps) (void)routing_.unit_flow(s, dt.first);
    }
    evals.assign(cands.size(), CandEval{});
    pool.parallel_for(cands.size(), [&](std::size_t i, std::size_t worker) {
      double touched = 0.0;
      const auto mru = evaluate(state, scratch[worker], d, cands[i], &touched);
      evals[i] = CandEval{mru.value_or(0.0), touched, mru.has_value()};
    });

    // Pick the best candidate SERIALLY in candidate order (lowest MRU;
    // tie-break by own contribution, then a deterministic per-(VIP, switch)
    // hash — spreads equal candidates like the paper's random rule but is
    // stable across re-runs, so a recompute on near-identical demands lands
    // near-identical placements). The serial scan preserves the exact
    // tie-break sequence — including rng draws under random_tie_break — so
    // the assignment is identical at any pool width.
    SwitchId best = kInvalidSwitch;
    double best_mru = std::numeric_limits<double>::infinity();
    double best_touched = std::numeric_limits<double>::infinity();
    std::uint64_t best_key = 0;
    std::size_t ties = 0;
    const auto tie_key = [&](SwitchId s) {
      std::uint64_t z = (static_cast<std::uint64_t>(d.id) << 32 | s) * 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return z ^ (z >> 31);
    };
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!evals[i].feasible) continue;
      const SwitchId s = cands[i];
      const double mru = evals[i].mru;
      const double touched = evals[i].touched;
      constexpr double kEps = 1e-12;
      if (mru < best_mru - kEps ||
          (mru < best_mru + kEps && touched < best_touched - kEps)) {
        best = s;
        best_mru = mru;
        best_touched = touched;
        best_key = tie_key(s);
        ties = 1;
      } else if (mru < best_mru + kEps && touched < best_touched + kEps) {
        // Full tie.
        if (options_.random_tie_break) {
          // §4.1 literal rule: reservoir-sample among equals.
          ++ties;
          if (state.rng.uniform(ties) == 0) best = s;
        } else if (tie_key(s) < best_key) {
          best = s;
          best_key = tie_key(s);
        }
      }
    }

    // Sticky filter (§4.2): keep the VIP where it was unless the improvement
    // beats the threshold.
    if (previous != nullptr) {
      const auto prev_switch = previous->switch_of(d.id);
      if (prev_switch.has_value()) {
        double prev_touched = 0.0;
        const auto prev_mru = evaluate(state, scratch[0], d, *prev_switch, &prev_touched);
        if (prev_mru.has_value()) {
          const bool move = best != kInvalidSwitch &&
                            (*prev_mru - best_mru) > options_.sticky_threshold;
          if (!move) {
            best = *prev_switch;
            best_mru = *prev_mru;
          }
        }
        // If the previous home is now infeasible, fall through to `best`.
      }
    }

    if (best == kInvalidSwitch) {
      // §4.1: "If the smallest MRU exceeds 100% … the algorithm terminates."
      // Sticky rounds keep scanning so previously placed VIPs are not evicted
      // by one oversized newcomer.
      if (options_.stop_on_first_failure && previous == nullptr) terminated = true;
      leave_on_smux();
      continue;
    }

    commit(state, scratch[0], d, best);
    result.placement.emplace(d.id, best);
    result.hmux_gbps += d.total_gbps;
  }

  result.mru = state.global_mru;
  result.link_load_gbps = std::move(state.link_load);
  result.switch_dips_used = std::move(state.dips_used);
  DUET_LOG_INFO << "assignment: " << result.placement.size() << " VIPs on HMux ("
                << result.hmux_gbps << " Gbps), " << result.on_smux.size() << " on SMux ("
                << result.smux_gbps << " Gbps), MRU " << result.mru;
  return result;
}

Assignment VipAssigner::assign(const std::vector<VipDemand>& demands) const {
  return run(demands, nullptr);
}

Assignment VipAssigner::assign_sticky(const std::vector<VipDemand>& demands,
                                      const Assignment& previous) const {
  return run(demands, &previous);
}

Assignment VipAssigner::revalidate(const std::vector<VipDemand>& demands,
                                   const Assignment& placement) const {
  const Topology& topo = fabric_->topo;
  State state;
  state.link_load.assign(topo.link_count() * 2, 0.0);
  state.dips_used.assign(topo.switch_count(), 0);
  state.rng = Rng{options_.seed};
  Scratch scratch{topo.link_count() * 2};

  std::vector<const VipDemand*> order;
  order.reserve(demands.size());
  for (const auto& d : demands) order.push_back(&d);
  std::stable_sort(order.begin(), order.end(), [](const VipDemand* a, const VipDemand* b) {
    return a->total_gbps > b->total_gbps;
  });

  Assignment result;
  for (const VipDemand* dp : order) {
    const VipDemand& d = *dp;
    const auto home = placement.switch_of(d.id);
    if (home.has_value() && state.hmux_vips < options_.host_table_capacity &&
        evaluate(state, scratch, d, *home, nullptr).has_value()) {
      commit(state, scratch, d, *home);
      result.placement.emplace(d.id, *home);
      result.hmux_gbps += d.total_gbps;
    } else {
      result.on_smux.push_back(d.id);
      result.smux_gbps += d.total_gbps;
    }
  }
  result.mru = state.global_mru;
  result.link_load_gbps = std::move(state.link_load);
  result.switch_dips_used = std::move(state.dips_used);
  return result;
}

// --- Failover provisioning ------------------------------------------------------

FailoverAnalysis analyze_failover(const FatTree& fabric, const std::vector<VipDemand>& demands,
                                  const Assignment& assignment) {
  const Topology& topo = fabric.topo;
  FailoverAnalysis out;

  // Per-switch HMux traffic and per-(container, VIP) source fractions.
  std::vector<double> per_switch(topo.switch_count(), 0.0);
  std::vector<double> per_container(fabric.params.containers, 0.0);

  for (const auto& d : demands) {
    const auto sw = assignment.switch_of(d.id);
    if (!sw) continue;
    per_switch[*sw] += d.total_gbps;

    const ContainerId c = topo.switch_info(*sw).container;
    if (c == kNoContainer) continue;  // Core switches die only in 3-switch mode
    // Container failure kills the hosting switch AND the sources/DIPs inside:
    // only traffic sourced outside the container reaches the SMuxes (§8.5).
    double outside = 0.0;
    for (const auto& [ingress, gbps] : d.ingress_gbps) {
      if (topo.switch_info(ingress).container != c) outside += gbps;
    }
    // If every DIP lived in the failed container the traffic has nowhere to
    // go; SMuxes still receive it (and then blackhole), so keep it counted.
    per_container[c] += outside;
  }

  for (const double g : per_container) {
    out.worst_container_gbps = std::max(out.worst_container_gbps, g);
  }

  // Worst 3 simultaneous switch failures = top-3 switches by assigned traffic.
  std::vector<double> loads = per_switch;
  std::partial_sort(loads.begin(), loads.begin() + std::min<std::size_t>(3, loads.size()),
                    loads.end(), std::greater<>());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, loads.size()); ++i) {
    out.worst_three_switch_gbps += loads[i];
  }
  return out;
}

std::size_t smuxes_needed(double leftover_gbps, double failover_gbps, double migration_gbps,
                          double smux_capacity_gbps) {
  DUET_CHECK(smux_capacity_gbps > 0.0) << "SMux with no capacity";
  const double worst = std::max({leftover_gbps, failover_gbps, migration_gbps});
  // Never fewer than one SMux: the backstop must exist (§3.3.1).
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(worst / smux_capacity_gbps)));
}

}  // namespace duet
