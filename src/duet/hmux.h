// Hardware Mux (HMux): a fabric switch acting as a load balancer (§3.1).
//
// Thin binding of a SwitchDataPlane to its place in the topology, plus the
// performance constants the simulations need. All the table mechanics live
// in dataplane/; all the routing announcements are made by the controller.
#pragma once

#include <memory>

#include "dataplane/pipeline.h"
#include "duet/config.h"
#include "topo/topology.h"

namespace duet {

class Hmux {
 public:
  Hmux(SwitchId switch_id, FlowHasher hasher, const DuetConfig& config)
      : switch_id_(switch_id),
        config_(config),
        dataplane_(hasher,
                   TableSizes{config.host_table_capacity, config.ecmp_table_capacity,
                              config.tunnel_table_capacity, kDefaultAclTableCapacity},
                   // Loopback identity used as the outer source of encaps.
                   Ipv4Address{192, 0, 2, 1}) {}

  SwitchId switch_id() const noexcept { return switch_id_; }
  SwitchDataPlane& dataplane() noexcept { return dataplane_; }
  const SwitchDataPlane& dataplane() const noexcept { return dataplane_; }

  // Residual DIP slots: min of free ECMP and tunneling entries (§3.1).
  std::size_t free_dip_slots() const {
    return std::min(dataplane_.free_ecmp_entries(), dataplane_.free_tunnel_entries());
  }

  // Data-plane added latency: switches forward at line rate (§7.1), so this
  // is a constant microsecond-scale cost regardless of offered load, up to
  // the line-rate capacity.
  double added_latency_us(double offered_gbps) const {
    return offered_gbps <= config_.hmux_capacity_gbps ? config_.hmux_latency_us
                                                      : config_.smux_overload_latency_us;
  }

 private:
  SwitchId switch_id_;
  DuetConfig config_;
  SwitchDataPlane dataplane_;
};

}  // namespace duet
