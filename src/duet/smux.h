// Software Mux (SMux) model, after Ananta (§2.1–2.2).
//
// An SMux holds the complete VIP→DIP mapping in main memory (no practical
// capacity limit on the number of VIPs/DIPs), selects DIPs with the shared
// FlowHasher, and encapsulates in software. What software costs is latency
// and throughput, calibrated to Fig 1:
//   * per-packet added latency is lognormal: median 196 µs at no load with a
//     heavy tail (p90 ≈ 1 ms), inflating as the CPU approaches saturation;
//   * the CPU saturates at 300 Kpps (3.6 Gbps @1500 B); beyond that queues
//     build and latency jumps to tens of milliseconds (Fig 11).
//
// Unlike an HMux, an SMux keeps per-connection state, so DIP addition does
// not remap existing connections (§5.2) — modelled by the flow-table pin.
//
// DIP selection note: "same hash function" (§3.3.1) must mean the same
// *bucket layout*, not just the same 64-bit mix — the switch maps flows via
// a resilient-hash bucket array, so the SMux replicates exactly that
// structure (ResilientHashGroup) for first-packet decisions. Otherwise a
// VIP failing over between mux types would remap every connection.
//
// Hot path (DESIGN.md §12): all three lookup structures are FlatTables
// (open addressing, cache-friendly, prefetchable), and the live runtime
// drives decisions through process_batch — one timestamp per batch, slot
// prefetch across the batch, telemetry accumulated in locals and flushed
// once. Per-tuple DIP selection is bit-identical between process and
// process_batch, and identical to the pre-flat-table implementation: the
// decision inputs (FlowHasher, ResilientHashGroup layout, pin state) never
// touch table iteration order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dataplane/resilient_hash.h"
#include "duet/config.h"
#include "net/hash.h"
#include "net/packet.h"
#include "telemetry/metrics.h"
#include "util/flat_table.h"
#include "util/mix.h"
#include "util/random.h"

namespace duet {

class Smux {
 public:
  Smux(std::uint32_t id, FlowHasher hasher, const DuetConfig& config,
       Ipv4Address self = Ipv4Address{192, 0, 2, 100})
      : id_(id), hasher_(hasher), config_(config), self_(self) {}

  std::uint32_t id() const noexcept { return id_; }

  // --- VIP-DIP reconfiguration (SMuxes hold ALL VIPs, §3.3.1) ----------------
  // Optional WCMP weights (§5.2): the member-slot expansion (a DIP with
  // weight w occupies w slots) replicates the switch's layout exactly, so
  // weighted VIPs keep the cross-device agreement invariant too.
  void set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
               const std::vector<std::uint32_t>& weights = {});

  // Port-based LB (§5.2): a (vip, dst_port)-specific DIP pool, mirroring the
  // ACL rule the HMux programs. Consulted before the VIP-wide pool.
  void set_port_rule(Ipv4Address vip, std::uint16_t dst_port, std::vector<Ipv4Address> dips);
  bool remove_port_rule(Ipv4Address vip, std::uint16_t dst_port);
  bool remove_vip(Ipv4Address vip);
  // DIP addition: existing connections stay pinned via the flow table.
  void add_dip(Ipv4Address vip, Ipv4Address dip);
  // DIP removal: pinned flows to other DIPs survive; flows to the removed DIP
  // are unpinned (connections terminate, §5.1).
  void remove_dip(Ipv4Address vip, Ipv4Address dip);

  bool has_vip(Ipv4Address vip) const { return vips_.contains(vip); }
  std::size_t vip_count() const noexcept { return vips_.size(); }

  // --- data plane ---------------------------------------------------------------
  // Encapsulates toward a DIP; returns false when the VIP is unknown.
  // Consults (and populates) the per-connection flow table. `now_us` stamps
  // the pin for idle expiry.
  bool process(Packet& packet, double now_us = 0.0);

  // Batch decision API — the live runtime's entry point. For each packet,
  // writes the chosen DIP to dips_out (Ipv4Address{} = unknown VIP, drop)
  // WITHOUT touching the packet: the caller encapsulates on the wire
  // (encapsulate_on_wire), so the hot path never allocates a Packet encap
  // stack. One `now_us` stamps the whole batch; flow-table slots are
  // prefetched across the batch before the decision pass; telemetry
  // (packets, unknown_vip, flow_pins, flow_table_size) is accumulated in
  // locals and flushed once per batch. Per-tuple decisions are bit-identical
  // to process(). Returns the number of forwardable packets.
  std::size_t process_batch(std::span<const Packet> packets, std::span<Ipv4Address> dips_out,
                            double now_us);

  // Evicts connection pins idle for longer than `idle_us` — production
  // SMuxes garbage-collect their flow tables or they grow without bound
  // under churny traffic. Returns the number of pins evicted. Safe: an
  // evicted live flow re-pins to the SAME DIP (the hash is deterministic)
  // unless the DIP set changed in between. Exact (full pass, every idle pin
  // goes) — the control-path form; the serving loop uses expire_flows_step.
  std::size_t expire_flows(double now_us, double idle_us);

  // Convenience overload using the DuetConfig knob.
  std::size_t expire_flows(double now_us) {
    return config_.smux_flow_idle_us > 0 ? expire_flows(now_us, config_.smux_flow_idle_us) : 0;
  }

  // Bounded incremental eviction: scans at most `max_slots` flow-table slots
  // from a persistent cursor, evicting idle pins inline. Every pass is
  // budget-bounded by construction (scanned <= max_slots), so eviction on
  // the serving thread never stalls a batch; repeated calls cycle the whole
  // table. Telemetry: flow_scan_slots (total), flow_scan_max_slots (worst
  // single pass — the proof no pass exceeded its budget).
  struct EvictStats {
    std::size_t scanned = 0;
    std::size_t evicted = 0;
  };
  EvictStats expire_flows_step(double now_us, double idle_us, std::size_t max_slots);
  EvictStats expire_flows_step(double now_us, std::size_t max_slots) {
    return config_.smux_flow_idle_us > 0
               ? expire_flows_step(now_us, config_.smux_flow_idle_us, max_slots)
               : EvictStats{};
  }

  // --- performance model ----------------------------------------------------------
  // Offered load as a fraction of CPU capacity.
  double utilization(double offered_pps) const {
    return offered_pps / config_.smux_capacity_pps;
  }
  // CPU% shown in Fig 1(b).
  double cpu_percent(double offered_pps) const;
  // Median added latency at the given utilization (µs).
  double median_added_latency_us(double rho) const;
  // One latency sample (µs) from the lognormal tail at the given utilization.
  double sample_added_latency_us(double rho, Rng& rng) const;

  std::size_t flow_table_size() const noexcept { return flow_table_.size(); }

  // --- telemetry ------------------------------------------------------------
  // Binds per-mux packet/flow telemetry under `prefix` (e.g. "duet.smux.3.").
  // Counters: packets, unknown_vip (dropped: no matching pool), flow_pins
  // (connections pinned), flow_evictions (pins expired or capacity-shed),
  // flow_scan_slots (slots visited by eviction scans). Gauges:
  // flow_table_size, flow_scan_max_slots. The registry must outlive this mux.
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

 private:
  struct VipEntry {
    // Member slots; a removed DIP keeps its slot (dead) so surviving slots —
    // and therefore surviving flows — never move, mirroring the switch.
    std::vector<Ipv4Address> dips;
    ResilientHashGroup group{1};
  };
  struct FlowPin {
    Ipv4Address dip;
    double last_seen_us = 0.0;
  };

  static VipEntry build_entry(const std::vector<Ipv4Address>& dips,
                              const std::vector<std::uint32_t>& weights, std::uint64_t salt);

  // The decision core shared by process and process_batch: port rule →
  // VIP-wide pool, pin hit → pinned DIP, else hash-select and pin.
  // Writes the chosen DIP; returns false on unknown VIP. `pinned` reports
  // whether this call created a new pin (the caller owns the telemetry).
  bool decide(const FiveTuple& tuple, double now_us, Ipv4Address* chosen, bool* pinned);

  // Called when an insert pushes the table past smux_flow_table_max: expire
  // idle pins, then shed the coldest survivors down to the cap. Ties on
  // last-seen break by tuple order, so the shed set is independent of table
  // iteration order.
  void enforce_flow_cap(double now_us);

  std::uint32_t id_;
  FlowHasher hasher_;
  DuetConfig config_;
  Ipv4Address self_;
  telemetry::Counter* tm_packets_ = nullptr;
  telemetry::Counter* tm_unknown_vip_ = nullptr;
  telemetry::Counter* tm_flow_pins_ = nullptr;
  telemetry::Counter* tm_flow_evictions_ = nullptr;
  telemetry::Counter* tm_flow_scan_slots_ = nullptr;
  telemetry::Gauge* tm_flow_table_size_ = nullptr;
  telemetry::Gauge* tm_flow_scan_max_ = nullptr;

  util::FlatTable<Ipv4Address, VipEntry> vips_;
  // (vip << 16 | port) -> port-specific pool. Mix64Hash: std::hash<uint64_t>
  // is identity on common stdlibs and the packed key's low bits are the port.
  util::FlatTable<std::uint64_t, VipEntry, Mix64Hash> port_rules_;
  // Connection pinning: 5-tuple -> chosen DIP + idle timestamp.
  util::FlatTable<FiveTuple, FlowPin> flow_table_;
  // expire_flows_step's persistent position.
  std::size_t scan_cursor_ = 0;
  std::size_t scan_max_slots_ = 0;
};

}  // namespace duet
