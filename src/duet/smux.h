// Software Mux (SMux) model, after Ananta (§2.1–2.2).
//
// An SMux holds the complete VIP→DIP mapping in main memory (no practical
// capacity limit on the number of VIPs/DIPs), selects DIPs with the shared
// FlowHasher, and encapsulates in software. What software costs is latency
// and throughput, calibrated to Fig 1:
//   * per-packet added latency is lognormal: median 196 µs at no load with a
//     heavy tail (p90 ≈ 1 ms), inflating as the CPU approaches saturation;
//   * the CPU saturates at 300 Kpps (3.6 Gbps @1500 B); beyond that queues
//     build and latency jumps to tens of milliseconds (Fig 11).
//
// Unlike an HMux, an SMux keeps per-connection state, so DIP addition does
// not remap existing connections (§5.2) — modelled by the flow-table pin.
//
// DIP selection note: "same hash function" (§3.3.1) must mean the same
// *bucket layout*, not just the same 64-bit mix — the switch maps flows via
// a resilient-hash bucket array, so the SMux replicates exactly that
// structure (ResilientHashGroup) for first-packet decisions. Otherwise a
// VIP failing over between mux types would remap every connection.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataplane/resilient_hash.h"
#include "duet/config.h"
#include "net/hash.h"
#include "net/packet.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace duet {

class Smux {
 public:
  Smux(std::uint32_t id, FlowHasher hasher, const DuetConfig& config,
       Ipv4Address self = Ipv4Address{192, 0, 2, 100})
      : id_(id), hasher_(hasher), config_(config), self_(self) {}

  std::uint32_t id() const noexcept { return id_; }

  // --- VIP-DIP reconfiguration (SMuxes hold ALL VIPs, §3.3.1) ----------------
  // Optional WCMP weights (§5.2): the member-slot expansion (a DIP with
  // weight w occupies w slots) replicates the switch's layout exactly, so
  // weighted VIPs keep the cross-device agreement invariant too.
  void set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
               const std::vector<std::uint32_t>& weights = {});

  // Port-based LB (§5.2): a (vip, dst_port)-specific DIP pool, mirroring the
  // ACL rule the HMux programs. Consulted before the VIP-wide pool.
  void set_port_rule(Ipv4Address vip, std::uint16_t dst_port, std::vector<Ipv4Address> dips);
  bool remove_port_rule(Ipv4Address vip, std::uint16_t dst_port);
  bool remove_vip(Ipv4Address vip);
  // DIP addition: existing connections stay pinned via the flow table.
  void add_dip(Ipv4Address vip, Ipv4Address dip);
  // DIP removal: pinned flows to other DIPs survive; flows to the removed DIP
  // are unpinned (connections terminate, §5.1).
  void remove_dip(Ipv4Address vip, Ipv4Address dip);

  bool has_vip(Ipv4Address vip) const { return vips_.contains(vip); }
  std::size_t vip_count() const noexcept { return vips_.size(); }

  // --- data plane ---------------------------------------------------------------
  // Encapsulates toward a DIP; returns false when the VIP is unknown.
  // Consults (and populates) the per-connection flow table. `now_us` stamps
  // the pin for idle expiry.
  bool process(Packet& packet, double now_us = 0.0);

  // Evicts connection pins idle for longer than `idle_us` — production
  // SMuxes garbage-collect their flow tables or they grow without bound
  // under churny traffic. Returns the number of pins evicted. Safe: an
  // evicted live flow re-pins to the SAME DIP (the hash is deterministic)
  // unless the DIP set changed in between.
  std::size_t expire_flows(double now_us, double idle_us);

  // Convenience overload using the DuetConfig knob.
  std::size_t expire_flows(double now_us) {
    return config_.smux_flow_idle_us > 0 ? expire_flows(now_us, config_.smux_flow_idle_us) : 0;
  }

  // --- performance model ----------------------------------------------------------
  // Offered load as a fraction of CPU capacity.
  double utilization(double offered_pps) const {
    return offered_pps / config_.smux_capacity_pps;
  }
  // CPU% shown in Fig 1(b).
  double cpu_percent(double offered_pps) const;
  // Median added latency at the given utilization (µs).
  double median_added_latency_us(double rho) const;
  // One latency sample (µs) from the lognormal tail at the given utilization.
  double sample_added_latency_us(double rho, Rng& rng) const;

  std::size_t flow_table_size() const noexcept { return flow_table_.size(); }

  // --- telemetry ------------------------------------------------------------
  // Binds per-mux packet/flow telemetry under `prefix` (e.g. "duet.smux.3.").
  // Counters: packets, unknown_vip (dropped: no matching pool), flow_pins
  // (connections pinned), flow_evictions (pins expired or capacity-shed).
  // Gauge: flow_table_size. The registry must outlive this mux.
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

 private:
  struct VipEntry {
    // Member slots; a removed DIP keeps its slot (dead) so surviving slots —
    // and therefore surviving flows — never move, mirroring the switch.
    std::vector<Ipv4Address> dips;
    ResilientHashGroup group{1};
  };

  static VipEntry build_entry(const std::vector<Ipv4Address>& dips,
                              const std::vector<std::uint32_t>& weights, std::uint64_t salt);

  // Called when an insert pushes the table past smux_flow_table_max: expire
  // idle pins, then shed the coldest survivors down to the cap.
  void enforce_flow_cap(double now_us);

  std::uint32_t id_;
  FlowHasher hasher_;
  DuetConfig config_;
  Ipv4Address self_;
  telemetry::Counter* tm_packets_ = nullptr;
  telemetry::Counter* tm_unknown_vip_ = nullptr;
  telemetry::Counter* tm_flow_pins_ = nullptr;
  telemetry::Counter* tm_flow_evictions_ = nullptr;
  telemetry::Gauge* tm_flow_table_size_ = nullptr;
  std::unordered_map<Ipv4Address, VipEntry> vips_;
  struct FlowPin {
    Ipv4Address dip;
    double last_seen_us = 0.0;
  };

  // (vip << 16 | port) -> port-specific pool.
  std::unordered_map<std::uint64_t, VipEntry> port_rules_;
  // Connection pinning: 5-tuple -> chosen DIP + idle timestamp.
  std::unordered_map<FiveTuple, FlowPin> flow_table_;
};

}  // namespace duet
