// Software Mux (SMux) model, after Ananta (§2.1–2.2).
//
// An SMux holds the complete VIP→DIP mapping in main memory (no practical
// capacity limit on the number of VIPs/DIPs), selects DIPs with the shared
// FlowHasher, and encapsulates in software. What software costs is latency
// and throughput, calibrated to Fig 1:
//   * per-packet added latency is lognormal: median 196 µs at no load with a
//     heavy tail (p90 ≈ 1 ms), inflating as the CPU approaches saturation;
//   * the CPU saturates at 300 Kpps (3.6 Gbps @1500 B); beyond that queues
//     build and latency jumps to tens of milliseconds (Fig 11).
//
// DIP selection note: "same hash function" (§3.3.1) must mean the same
// *bucket layout*, not just the same 64-bit mix — the switch maps flows via
// a resilient-hash bucket array, so the SMux replicates exactly that
// structure (ResilientHashGroup) for first-packet decisions. Otherwise a
// VIP failing over between mux types would remap every connection.
//
// The per-flow DECISION stage is a pluggable engine (duet/decision_engine.h):
//   * stateful (default) — flow-table pins; DIP addition does not remap
//     existing connections (§5.2). O(concurrent flows) memory.
//   * stateless — versioned Othello-style bucket map (src/stateless/);
//     O(DIPs) memory, immune to SYN-flood state exhaustion.
// Selection: globally via DuetConfig::smux_engine, or per VIP via
// set_engine_override (a mixed fleet: flood-prone VIPs stateless, the rest
// on the classical pins). The POOL FRONT-END — which DIP pool applies, the
// (vip, dst_port) ACL rule or the VIP-wide pool — is engine-independent and
// lives here.
//
// Hot path (DESIGN.md §12): all lookup structures are FlatTables (open
// addressing, cache-friendly, prefetchable), and the live runtime drives
// decisions through process_batch — one timestamp per batch, slot prefetch
// across the batch, telemetry accumulated in locals and flushed once. The
// stateful engine is called through its concrete type (header-inline, no
// virtual dispatch); the stateless branch costs one null check when unused.
// Per-tuple DIP selection is bit-identical between process and
// process_batch, and — with the default stateful engine — identical to the
// pre-engine-extraction implementation: the decision inputs (FlowHasher,
// ResilientHashGroup layout, pin state) never touch table iteration order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "duet/config.h"
#include "duet/decision_engine.h"
#include "duet/stateful_engine.h"
#include "net/hash.h"
#include "net/packet.h"
#include "telemetry/metrics.h"
#include "util/flat_table.h"
#include "util/mix.h"
#include "util/random.h"

namespace duet {

namespace stateless {
class StatelessEngine;
}  // namespace stateless

class Smux {
 public:
  Smux(std::uint32_t id, FlowHasher hasher, const DuetConfig& config,
       Ipv4Address self = Ipv4Address{192, 0, 2, 100});
  ~Smux();
  Smux(Smux&&) noexcept;
  Smux& operator=(Smux&&) noexcept;

  std::uint32_t id() const noexcept { return id_; }

  // --- VIP-DIP reconfiguration (SMuxes hold ALL VIPs, §3.3.1) ----------------
  // Optional WCMP weights (§5.2): the member-slot expansion (a DIP with
  // weight w occupies w slots) replicates the switch's layout exactly, so
  // weighted VIPs keep the cross-device agreement invariant too.
  void set_vip(Ipv4Address vip, std::vector<Ipv4Address> dips,
               const std::vector<std::uint32_t>& weights = {});

  // Port-based LB (§5.2): a (vip, dst_port)-specific DIP pool, mirroring the
  // ACL rule the HMux programs. Consulted before the VIP-wide pool.
  void set_port_rule(Ipv4Address vip, std::uint16_t dst_port, std::vector<Ipv4Address> dips);
  bool remove_port_rule(Ipv4Address vip, std::uint16_t dst_port);
  bool remove_vip(Ipv4Address vip);
  // DIP addition: existing connections stay pinned (stateful) or keep their
  // bucket's old map version until it drains (stateless) — no remap either way.
  void add_dip(Ipv4Address vip, Ipv4Address dip);
  // DIP removal: flows to other DIPs survive; flows to the removed DIP
  // terminate (§5.1) — pins erased / buckets flipped off the dead owner.
  void remove_dip(Ipv4Address vip, Ipv4Address dip);

  bool has_vip(Ipv4Address vip) const { return vips_.contains(vip); }
  std::size_t vip_count() const noexcept { return vips_.size(); }

  // Control-path pool iteration (unspecified order — FlatTable). The fast
  // tier's rebuild (duet/fast_tier.h) snapshots the hot-VIP set through
  // these; nothing order-dependent may consume them.
  template <typename F>
  void for_each_vip(F&& fn) const {
    vips_.for_each(fn);  // fn(Ipv4Address vip, const VipPool& pool)
  }
  template <typename F>
  void for_each_port_rule(F&& fn) const {
    port_rules_.for_each(fn);  // fn(std::uint64_t pool_id, const VipPool& pool)
  }

  // --- engine selection -------------------------------------------------------
  // The engine deciding a VIP's flows: the per-VIP override if set, else the
  // DuetConfig::smux_engine default. Overrides survive remove_vip (the VIP
  // may come back on the same policy).
  SmuxEngine engine_for(Ipv4Address vip) const {
    const SmuxEngine* o = engine_overrides_.find(vip);
    return o != nullptr ? *o : config_.smux_engine;
  }
  void set_engine_override(Ipv4Address vip, SmuxEngine engine);
  bool clear_engine_override(Ipv4Address vip) { return engine_overrides_.erase(vip); }

  StatefulEngine& stateful_engine() noexcept { return stateful_; }
  const StatefulEngine& stateful_engine() const noexcept { return stateful_; }
  // Non-null once any VIP decides statelessly (global knob or override).
  stateless::StatelessEngine* stateless_engine() noexcept { return stateless_.get(); }
  const stateless::StatelessEngine* stateless_engine() const noexcept {
    return stateless_.get();
  }
  // Engine-owned decision-state bytes (both engines; excludes shared pools).
  std::size_t decision_state_bytes() const noexcept;

  // --- data plane ---------------------------------------------------------------
  // Encapsulates toward a DIP; returns false when the VIP is unknown.
  // `now_us` stamps per-flow state (pins / bucket drain timestamps).
  bool process(Packet& packet, double now_us = 0.0);

  // Batch decision API — the live runtime's entry point. For each packet,
  // writes the chosen DIP to dips_out (Ipv4Address{} = unknown VIP, drop)
  // WITHOUT touching the packet: the caller encapsulates on the wire
  // (encapsulate_on_wire), so the hot path never allocates a Packet encap
  // stack. One `now_us` stamps the whole batch; flow-table slots are
  // prefetched across the batch before the decision pass; telemetry
  // (packets, unknown_vip, flow_pins, flow_table_size, stateless.*) is
  // accumulated in locals and flushed once per batch. Per-tuple decisions
  // are bit-identical to process(). Returns the number of forwardable
  // packets.
  std::size_t process_batch(std::span<const Packet> packets, std::span<Ipv4Address> dips_out,
                            double now_us);

  // Evicts connection pins idle for longer than `idle_us` — production
  // SMuxes garbage-collect their flow tables or they grow without bound
  // under churny traffic. Returns the number of pins evicted. Safe: an
  // evicted live flow re-pins to the SAME DIP (the hash is deterministic)
  // unless the DIP set changed in between. Exact (full pass, every idle pin
  // goes) — the control-path form; the serving loop uses expire_flows_step.
  // Stateful-engine state only; the stateless engine has nothing to expire.
  std::size_t expire_flows(double now_us, double idle_us) {
    return stateful_.expire_flows(now_us, idle_us);
  }

  // Convenience overload using the DuetConfig knob.
  std::size_t expire_flows(double now_us) {
    return config_.smux_flow_idle_us > 0 ? expire_flows(now_us, config_.smux_flow_idle_us) : 0;
  }

  // Bounded incremental eviction: scans at most `max_slots` flow-table slots
  // from a persistent cursor, evicting idle pins inline. Every pass is
  // budget-bounded by construction (scanned <= max_slots), so eviction on
  // the serving thread never stalls a batch; repeated calls cycle the whole
  // table. Telemetry: flow_scan_slots (total), flow_scan_max_slots (worst
  // single pass — the proof no pass exceeded its budget).
  struct EvictStats {
    std::size_t scanned = 0;
    std::size_t evicted = 0;
  };
  EvictStats expire_flows_step(double now_us, double idle_us, std::size_t max_slots) {
    const auto r = stateful_.expire_flows_step(now_us, idle_us, max_slots);
    return EvictStats{r.scanned, r.evicted};
  }
  EvictStats expire_flows_step(double now_us, std::size_t max_slots) {
    return config_.smux_flow_idle_us > 0
               ? expire_flows_step(now_us, config_.smux_flow_idle_us, max_slots)
               : EvictStats{};
  }

  // --- performance model ----------------------------------------------------------
  // Offered load as a fraction of CPU capacity.
  double utilization(double offered_pps) const {
    return offered_pps / config_.smux_capacity_pps;
  }
  // CPU% shown in Fig 1(b).
  double cpu_percent(double offered_pps) const;
  // Median added latency at the given utilization (µs).
  double median_added_latency_us(double rho) const;
  // One latency sample (µs) from the lognormal tail at the given utilization.
  double sample_added_latency_us(double rho, Rng& rng) const;

  std::size_t flow_table_size() const noexcept { return stateful_.flow_table_size(); }

  // --- telemetry ------------------------------------------------------------
  // Binds per-mux packet/flow telemetry under `prefix` (e.g. "duet.smux.3.").
  // Counters: packets, unknown_vip (dropped: no matching pool), flow_pins
  // (connections pinned), flow_evictions (pins expired, capacity-shed, or
  // killed by DIP removal), flow_scan_slots (slots visited by eviction
  // scans). Gauges: flow_table_size, flow_scan_max_slots. When the stateless
  // engine is active its metrics bind under `prefix + "stateless."` (see
  // stateless/stateless_engine.h). The registry must outlive this mux.
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

 private:
  // The decision pipeline shared by process and process_batch: resolve the
  // pool (port rule → VIP-wide), dispatch to the VIP's engine. Writes the
  // chosen DIP; returns false on unknown VIP. `pinned` reports whether the
  // engine created per-flow state (the caller owns the telemetry).
  bool decide(const FiveTuple& tuple, double now_us, Ipv4Address* chosen, bool* pinned);

  // Lazily constructs the stateless engine and replays every existing pool
  // into it (version 0 of each map), so an override can arrive after VIPs.
  stateless::StatelessEngine& ensure_stateless();
  void notify_pool_updated(std::uint64_t pool_id, const VipPool& pool);

  std::uint32_t id_;
  FlowHasher hasher_;
  DuetConfig config_;
  Ipv4Address self_;
  telemetry::Counter* tm_packets_ = nullptr;
  telemetry::Counter* tm_unknown_vip_ = nullptr;
  telemetry::Counter* tm_flow_pins_ = nullptr;
  telemetry::MetricRegistry* registry_ = nullptr;  // for late engine binding
  std::string tm_prefix_;

  // Pool front-end: VIP-wide pools and (vip << 16 | port) ACL pools.
  // Mix64Hash for the packed key: std::hash<uint64_t> is identity on common
  // stdlibs and the key's low bits are the port.
  util::FlatTable<Ipv4Address, VipPool> vips_;
  util::FlatTable<std::uint64_t, VipPool, Mix64Hash> port_rules_;

  // The engines. Stateful is always present (overrides may point any VIP at
  // it) and is called through the concrete type on the hot path; stateless
  // is built on first use.
  StatefulEngine stateful_;
  std::unique_ptr<stateless::StatelessEngine> stateless_;
  util::FlatTable<Ipv4Address, SmuxEngine> engine_overrides_;
};

}  // namespace duet
