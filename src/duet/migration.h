// VIP migration planning (§4.2).
//
// Moving a VIP between HMuxes cannot be done make-before-break: both
// switches would need the VIP's DIP entries simultaneously, and with table
// occupancies like Fig 4 (two VIPs at 60 % memory each, swapping homes)
// there is no feasible order — a transitional memory deadlock. Duet instead
// migrates *through the SMuxes*: withdraw the VIP from its old switch
// (traffic falls to the SMux backstop, connections survive because the hash
// is shared), then announce it from the new switch. The SMux pool must
// therefore be provisioned for the transit traffic, which is why the Sticky
// assignment's migration-traffic reduction (Fig 20b) directly cuts the
// number of SMuxes needed (Fig 20c).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "duet/assignment.h"
#include "telemetry/journal.h"
#include "workload/demand.h"

namespace duet {

enum class MoveKind : std::uint8_t {
  kHmuxToHmux,  // withdraw old, transit SMux, announce new
  kHmuxToSmux,  // withdraw old; SMux keeps it
  kSmuxToHmux,  // announce new; no SMux transit needed (already there)
};

struct VipMove {
  VipId vip = 0;
  MoveKind kind = MoveKind::kHmuxToHmux;
  std::optional<SwitchId> from;  // nullopt = SMux pool
  std::optional<SwitchId> to;
  double gbps = 0.0;
};

struct MigrationPlan {
  std::vector<VipMove> moves;
  double total_gbps = 0.0;      // total VIP traffic this epoch
  double shuffled_gbps = 0.0;   // traffic that transits SMuxes mid-migration
                                // (kHmuxToHmux + kHmuxToSmux moves)
  double shuffled_fraction() const {
    return total_gbps <= 0.0 ? 0.0 : shuffled_gbps / total_gbps;
  }
  std::size_t move_count() const { return moves.size(); }
};

// Diffs two assignments over the epoch's demands.
MigrationPlan plan_migration(const Assignment& from, const Assignment& to,
                             const std::vector<VipDemand>& demands);

// Journals a plan as the §4.2 two-phase sequence: every H->H / H->S move
// records a kMigrationWithdraw at t_us, every move with a destination a
// kMigrationAnnounce at t_us (same instant; insertion order keeps withdraws
// first, matching the controller's phase ordering). `vip_of` maps VipId to
// the journaled address; return 0.0.0.0 for unknown ids to skip them.
void journal_migration_plan(const MigrationPlan& plan, telemetry::EventJournal& journal,
                            double t_us,
                            const std::function<Ipv4Address(VipId)>& vip_of);

}  // namespace duet
