#include "duet/health.h"

#include "util/logging.h"

namespace duet {

void HealthMonitor::watch(Ipv4Address vip, Ipv4Address dip, double t_us) {
  Entry e;
  e.healthy = true;
  e.last_heartbeat_us = t_us;
  entries_.insert_or_assign(Key{vip, dip}, e);
}

void HealthMonitor::unwatch(Ipv4Address vip, Ipv4Address dip) {
  entries_.erase(Key{vip, dip});
}

void HealthMonitor::transition(const Key& key, Entry& e, bool healthy, double t_us) {
  if (e.healthy == healthy) return;
  e.healthy = healthy;
  pending_.push_back(HealthTransition{key.vip, key.dip, healthy, t_us});
  if (journal_ != nullptr) {
    journal_->record(t_us,
                     healthy ? telemetry::EventKind::kDipUp : telemetry::EventKind::kDipDown,
                     key.vip, key.dip);
  }
}

void HealthMonitor::report_probe(Ipv4Address vip, Ipv4Address dip, bool ok, double t_us) {
  const Key key{vip, dip};
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;  // stale report after unwatch
  Entry& e = it->second;
  e.last_heartbeat_us = t_us;
  if (ok) {
    e.consecutive_misses = 0;
    if (!e.healthy && ++e.consecutive_successes >= params_.recover_after) {
      e.consecutive_successes = 0;
      transition(key, e, true, t_us);
    }
  } else {
    e.consecutive_successes = 0;
    if (e.healthy && ++e.consecutive_misses >= params_.fail_after_missed) {
      e.consecutive_misses = 0;
      transition(key, e, false, t_us);
    }
  }
}

void HealthMonitor::advance_time(double t_us) {
  const double deadline =
      params_.heartbeat_interval_us * static_cast<double>(params_.fail_after_missed);
  for (auto& [key, e] : entries_) {
    if (e.healthy && t_us - e.last_heartbeat_us > deadline) {
      DUET_LOG_DEBUG << "DIP " << key.dip.to_string() << " silent for "
                     << (t_us - e.last_heartbeat_us) / 1e6 << "s; marking down";
      transition(key, e, false, t_us);
    }
  }
}

bool HealthMonitor::is_healthy(Ipv4Address vip, Ipv4Address dip) const {
  const auto it = entries_.find(Key{vip, dip});
  return it != entries_.end() && it->second.healthy;
}

std::vector<HealthTransition> HealthMonitor::poll() {
  std::vector<HealthTransition> out;
  out.swap(pending_);
  return out;
}

}  // namespace duet
