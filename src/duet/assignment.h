// VIP-to-switch assignment (§4).
//
// The problem: place VIPs on switches to maximize the traffic handled by
// HMuxes, subject to (a) per-switch memory — a VIP with |d_v| DIPs consumes
// |d_v| ECMP + tunneling entries, min(free ECMP, free tunnel) ≈ 512 slots per
// switch; (b) per-link bandwidth — the VIP's traffic from each ingress to the
// candidate switch and from the switch to each DIP ToR loads every link of
// the ECMP DAG; capacity is derated to 80 % (§4); and (c) the global host
// table limit — every switch must carry a /32 route per HMux VIP, so at most
// 16 K VIPs can live on HMuxes in total (§3.3.2, §8.2).
//
// It is a multi-dimensional bin-packing problem (NP-hard); the paper uses a
// greedy: VIPs in decreasing traffic order, each to the switch minimizing the
// maximum resource utilization (MRU). Ties on MRU are broken first by the
// candidate's own touched-resource utilization (a deterministic refinement of
// the paper's "breaking ties at random"), then randomly.
//
// Two variants (§4.2):
//   * assign()        — from scratch ("Non-sticky" input); terminates at the
//                       first VIP whose best MRU exceeds 100 % (the paper's
//                       rule), leaving it and the rest on SMuxes.
//   * assign_sticky() — takes the previous placement and moves a VIP only if
//                       the new position improves MRU by more than δ = 5 %,
//                       bounding migration churn (Fig 20b).
//
// The container optimization (§4.2, Fig 5): assigning a VIP to different
// ToRs inside one container only changes utilization inside that container,
// so only the least-loaded ToR per container needs full evaluation — dropping
// complexity from O(|V|·|S|·|E|) to O(|V|·((|S_core|+|S_agg|+|C|)·|E| +
// |S_tor|·|E_c|)). Both paths are implemented (ablation bench compares them).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "duet/config.h"
#include "exec/thread_pool.h"
#include "topo/fattree.h"
#include "topo/paths.h"
#include "util/random.h"
#include "workload/demand.h"

namespace duet {

struct AssignmentOptions {
  double link_headroom = 0.8;
  std::size_t switch_dip_capacity = 512;    // min(ECMP, tunnel) free slots
  std::size_t host_table_capacity = 16 * 1024;
  double sticky_threshold = 0.05;
  bool container_optimization = true;
  bool stop_on_first_failure = true;  // §4.1 termination rule (scratch only)
  // The paper breaks exact MRU ties at random; we default to deterministic
  // (first candidate in scan order) so that re-running the algorithm on
  // near-identical demands yields near-identical placements — what a real
  // controller re-computation does. Enable for the paper's literal rule.
  bool random_tie_break = false;
  std::uint64_t seed = 1;
  // Pool for parallel candidate scoring (nullptr = exec::global_pool()). The
  // per-VIP candidate evaluations run concurrently into ordered slots and the
  // best-pick reduction stays serial, so the assignment is bit-for-bit
  // identical at any width — including the rng draw sequence under
  // random_tie_break.
  exec::ThreadPool* pool = nullptr;

  static AssignmentOptions from_config(const DuetConfig& c) {
    AssignmentOptions o;
    o.link_headroom = c.link_headroom;
    o.switch_dip_capacity = std::min(c.tunnel_table_capacity, c.ecmp_table_capacity);
    o.host_table_capacity = c.host_table_capacity;
    o.sticky_threshold = c.sticky_threshold;
    return o;
  }
};

// The result of one assignment round.
struct Assignment {
  // HMux-assigned VIPs; a VIP absent here is served by the SMux pool.
  std::unordered_map<VipId, SwitchId> placement;
  std::vector<VipId> on_smux;

  double hmux_gbps = 0.0;
  double smux_gbps = 0.0;
  double mru = 0.0;  // final maximum resource utilization

  // Directed link loads (Gbps): index = link*2 + dir (dir 0 = a->b).
  std::vector<double> link_load_gbps;
  // DIP slots consumed per switch.
  std::vector<std::size_t> switch_dips_used;

  bool on_hmux(VipId v) const { return placement.contains(v); }
  std::optional<SwitchId> switch_of(VipId v) const {
    const auto it = placement.find(v);
    if (it == placement.end()) return std::nullopt;
    return it->second;
  }
  double hmux_fraction() const {
    const double t = hmux_gbps + smux_gbps;
    return t <= 0.0 ? 0.0 : hmux_gbps / t;
  }
};

class VipAssigner {
 public:
  VipAssigner(const FatTree& fabric, AssignmentOptions options);

  // Greedy from scratch (§4.1). `demands` in any order; sorted internally.
  Assignment assign(const std::vector<VipDemand>& demands) const;

  // Sticky re-assignment (§4.2) against the previous round's placement.
  Assignment assign_sticky(const std::vector<VipDemand>& demands,
                           const Assignment& previous) const;

  // Re-validates a FROZEN placement against fresh demands: each VIP stays on
  // its assigned switch while that is still feasible (checked in decreasing
  // traffic order); VIPs whose home no longer fits the drifted traffic
  // overflow to the SMuxes. This is how the One-time baseline of Fig 20a
  // loses traffic share over the trace: the placement never adapts, so
  // demand drift invalidates it.
  Assignment revalidate(const std::vector<VipDemand>& demands,
                        const Assignment& placement) const;

  const AssignmentOptions& options() const noexcept { return options_; }

 private:
  struct State;    // packing state (link loads, memory, counters)
  struct Scratch;  // per-worker dense delta buffer for evaluate()

  // Evaluates placing demand d on switch s against `state`. Returns the
  // resulting MRU (max over touched resources and the running global MRU),
  // or nullopt when infeasible (memory or >100 % utilization). Reads `state`
  // only; all mutation goes to `scratch`, so evaluations with distinct
  // scratch buffers may run concurrently.
  std::optional<double> evaluate(const State& state, Scratch& scratch, const VipDemand& d,
                                 SwitchId s, double* touched_max) const;

  // Applies the placement to the state.
  void commit(State& state, Scratch& scratch, const VipDemand& d, SwitchId s) const;

  // Candidate switches for d given the container optimization setting.
  std::vector<SwitchId> candidates(const State& state, const VipDemand& d) const;

  // Slots d consumes on its primary switch: |dips|, or the TIP-pointer count
  // for large-fanout VIPs (§5.2).
  std::size_t dip_slots_needed(const VipDemand& d) const;

  // Directed-link loads d adds when assigned to s (ingress->s plus s->DIP
  // ToRs), written into scratch's dense delta buffer.
  void delta_loads(const VipDemand& d, SwitchId s, Scratch& scratch) const;

  Assignment run(const std::vector<VipDemand>& demands, const Assignment* previous) const;

  const FatTree* fabric_;
  AssignmentOptions options_;
  EcmpRouting routing_;  // healthy-topology routing, shared by all rounds
};

// --- Failover provisioning (§8.2) ---------------------------------------------
// How much HMux traffic lands on the SMux pool under the paper's failure
// model: the worst single-container failure, or the worst 3-switch failure.
struct FailoverAnalysis {
  double worst_container_gbps = 0.0;
  double worst_three_switch_gbps = 0.0;
  double worst_gbps() const {
    return std::max(worst_container_gbps, worst_three_switch_gbps);
  }
};

FailoverAnalysis analyze_failover(const FatTree& fabric, const std::vector<VipDemand>& demands,
                                  const Assignment& assignment);

// SMuxes needed: max of (leftover VIP traffic, failover traffic, migration
// transit traffic), each divided by per-SMux capacity (§8.2, Fig 20c).
std::size_t smuxes_needed(double leftover_gbps, double failover_gbps, double migration_gbps,
                          double smux_capacity_gbps);

}  // namespace duet
