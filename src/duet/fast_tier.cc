#include "duet/fast_tier.h"

#include <algorithm>
#include <thread>

#include "duet/smux.h"
#include "stateless/stateless_engine.h"

namespace duet {

namespace {

// Collision handling is grow-and-retry: a direct-mapped probe must stay one
// read, so the builder buys collision-freedom with slots, not chains. Past
// this cap the colliding tail simply stays cold (a miss, never a wrong
// answer).
constexpr std::size_t kMaxSlots = std::size_t{1} << 20;

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::size_t FastTierTable::build(const std::vector<Entry>& entries) {
  dips_.clear();
  admitted_.clear();
  vip_count_ = 0;
  if (entries.empty()) {
    slots_.assign(1, Slot{});
    slot_mask_ = 0;
    return 0;
  }

  std::size_t dropped = 0;
  for (std::size_t size = std::max<std::size_t>(8, next_pow2(entries.size() * 2));;
       size <<= 1) {
    slots_.assign(size, Slot{});
    slot_mask_ = size - 1;
    dips_.clear();
    admitted_.clear();
    dropped = 0;
    for (const Entry& e : entries) {
      Slot& s = slots_[slot_probe(e.vip) & slot_mask_];
      if (s.vip != 0) {
        ++dropped;
        continue;
      }
      s.vip = e.vip;
      s.mask = e.mask;
      s.offset = static_cast<std::uint32_t>(dips_.size());
      s.epoch = e.epoch;
      s.salt = e.salt;
      dips_.insert(dips_.end(), e.owner->begin(), e.owner->end());
      admitted_.push_back(e.vip);
    }
    if (dropped == 0 || size >= kMaxSlots) break;
  }
  vip_count_ = admitted_.size();
  return dropped;
}

FastTier::FastTier(std::size_t readers)
    : current_(&buffers_[0]), hazards_(std::max<std::size_t>(1, readers)) {}

void FastTier::wait_unreferenced(const FastTierTable* retired) const noexcept {
  // Pairs with the seq_cst store/re-load in acquire(): the swap that
  // preceded this scan and these loads are seq_cst, so either this scan
  // sees the reader's hazard, or the reader's re-check sees the new current.
  for (const Hazard& h : hazards_) {
    while (h.ptr.load(std::memory_order_seq_cst) == retired) {
      std::this_thread::yield();
    }
  }
}

FastTier::RebuildStats FastTier::install(const std::vector<FastTierTable::Entry>& entries) {
  const FastTierTable* cur = current_.load(std::memory_order_acquire);
  FastTierTable& spare = (cur == &buffers_[0]) ? buffers_[1] : buffers_[0];
  // The spare was drained when it was retired; re-checking is O(readers).
  wait_unreferenced(&spare);
  RebuildStats stats;
  stats.rejected_collision = spare.build(entries);
  stats.admitted = spare.vip_count();
  stats.dip_slots = spare.dip_slots();
  current_.store(&spare, std::memory_order_release);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  // Drain the retired buffer so the NEXT install may rebuild into it.
  wait_unreferenced(cur);
  return stats;
}

FastTier::RebuildStats FastTier::rebuild(Smux& smux, double now_us) {
  RebuildStats out;
  stateless::StatelessEngine* engine = smux.stateless_engine();

  // VIPs carrying (vip, port) ACL rules are never admitted: the fast tier
  // resolves pools by destination address alone.
  std::vector<std::uint32_t> port_vips;
  smux.for_each_port_rule([&](std::uint64_t pool_id, const VipPool&) {
    port_vips.push_back(static_cast<std::uint32_t>(pool_id >> 16));
  });

  // Traffic served by the fast tier never touched the map's drain clock, so
  // after churn every bucket of a previously admitted pool must be presumed
  // live as of now — otherwise a stale last-seen would let a bucket adopt a
  // new version under a connection the fast tier was still serving (PCC).
  // While the pool stays settled this is a no-op (nothing is draining).
  if (engine != nullptr) {
    for (const std::uint32_t vip :
         current_.load(std::memory_order_acquire)->admitted()) {
      auto* map = engine->mutable_pool_map(vip_pool_id(Ipv4Address{vip}));
      if (map != nullptr) map->mark_all_seen(now_us);
    }
  }

  std::vector<FastTierTable::Entry> entries;
  smux.for_each_vip([&](Ipv4Address vip, const VipPool&) {
    if (engine == nullptr || smux.engine_for(vip) != SmuxEngine::kStateless) {
      ++out.rejected_engine;  // stateful pins are invisible to a snapshot
      return;
    }
    if (std::find(port_vips.begin(), port_vips.end(), vip.value()) != port_vips.end()) {
      ++out.rejected_port_rule;
      return;
    }
    auto* map = engine->mutable_pool_map(vip_pool_id(vip));
    if (map == nullptr || !map->built()) {
      ++out.rejected_unsettled;
      return;
    }
    // Flip buckets whose drain already expired, so an idle pool re-settles
    // here instead of waiting for one packet per bucket.
    map->adopt_drained(now_us);
    if (!map->settled()) {
      ++out.rejected_unsettled;  // draining: decisions still time-dependent
      return;
    }
    const stateless::MapVersion* newest = map->version(map->newest_epoch());
    entries.push_back(FastTierTable::Entry{
        vip.value(), map->salt(), static_cast<std::uint32_t>(map->bucket_mask()),
        map->newest_epoch(), &newest->owner});
  });

  const RebuildStats installed = install(entries);
  out.admitted = installed.admitted;
  out.rejected_collision = installed.rejected_collision;
  out.dip_slots = installed.dip_slots;
  return out;
}

}  // namespace duet
