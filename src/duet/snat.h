// SNAT with hash-steered source-port selection (§5.2).
//
// Outbound connections from a DIP must appear to come from the VIP, and the
// *return* traffic for them arrives at whatever mux owns the VIP. An SMux
// keeps per-connection state, but an HMux cannot — it will simply hash the
// return packet's 5-tuple into the ECMP group. Duet therefore makes the host
// agent choose the source port so that the return 5-tuple's hash lands on
// exactly the ECMP slot that points back to this DIP. The HA can do this
// because it shares the FlowHasher with every HMux.
//
// Like Ananta, the controller hands each DIP a disjoint port range; unlike
// Ananta, the HA scans its range for a port whose hash matches instead of
// picking an arbitrary free one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "duet/snat_manager.h"
#include "net/hash.h"
#include "net/packet.h"

namespace duet {

// A DIP's SNAT port allocator over the controller-assigned range
// [range_begin, range_end).
class SnatPortAllocator {
 public:
  SnatPortAllocator(FlowHasher hasher, std::uint16_t range_begin, std::uint16_t range_end);
  SnatPortAllocator(FlowHasher hasher, PortRange initial);

  // Picks a free source port for an outbound connection
  //   (vip:port_chosen -> remote:remote_port)
  // such that `lands_on_us(return_tuple)` is true for the RETURN packet
  // (remote:remote_port -> vip:port_chosen). The predicate encodes "the
  // HMux's ECMP stage maps this tuple to my DIP" — typically a probe of the
  // same ResilientHashGroup the switch uses. Returns nullopt when the range
  // has no free port with a matching hash (caller requests a bigger range).
  using LandsOnUs = std::function<bool(const FiveTuple& return_tuple)>;
  std::optional<std::uint16_t> allocate(Ipv4Address vip, Ipv4Address remote,
                                        std::uint16_t remote_port, IpProto proto,
                                        const LandsOnUs& lands_on_us);

  // Convenience for plain modulo-N ECMP groups: the return tuple must hash
  // to `wanted_slot` of `slot_count`.
  std::optional<std::uint16_t> allocate_modulo(Ipv4Address vip, Ipv4Address remote,
                                               std::uint16_t remote_port, IpProto proto,
                                               std::uint32_t wanted_slot,
                                               std::uint32_t slot_count);

  void release(std::uint16_t port);

  std::size_t ports_in_use() const noexcept { return used_.size(); }
  std::size_t range_size() const noexcept {
    std::size_t n = 0;
    for (const auto& r : ranges_) n += r.size();
    return n;
  }

  // Grows the last range (controller granted a contiguous extension).
  void extend_range(std::uint16_t new_end);

  // Adds a disjoint block granted by the SnatCoordinator (§5.2: "If an HA
  // runs out of available ports, it receives another set").
  void add_range(PortRange range);

  std::size_t range_count() const noexcept { return ranges_.size(); }

 private:
  FlowHasher hasher_;
  std::vector<PortRange> ranges_;
  std::unordered_set<std::uint16_t> used_;
};

}  // namespace duet
