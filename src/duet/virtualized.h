// Virtualized clusters (§5.2, Fig 6).
//
// "In virtualized clusters, the HMux would have to encapsulate the packet
// twice … So, we use HA in tandem with HMux. The HMux encapsulates the
// packet with the IP of the host machine (HIP) that is hosting the DIP. The
// HA on the DIP decapsulates the packet and forwards it to the right DIP
// based on the VIP. If a host has multiple DIPs, the ECMP and tunneling
// table on the HMux holds multiple entries for that HIP to ensure equal
// splitting. At the host, the HA selects the DIP by hashing the 5-tuple."
//
// This module computes the switch-programming view of a VM placement — the
// HIP target list with per-host multiplicity — and wires up the host agents.
#pragma once

#include <unordered_map>
#include <vector>

#include "dataplane/pipeline.h"
#include "duet/host_agent.h"
#include "net/ip.h"

namespace duet {

// One backend VM: its (virtual) DIP and the physical host carrying it.
struct VmPlacement {
  Ipv4Address host;  // HIP — what the HMux encapsulates to
  Ipv4Address vm;    // DIP — what the HA delivers to
};

// The HMux-facing install list: every host appears once per VM it carries
// (Fig 6: host 20.0.0.1 with two VMs owns tunneling entries 0 and 1), so
// ECMP splits the VIP's traffic evenly across VMs, not across hosts.
std::vector<Ipv4Address> hmux_targets(const std::vector<VmPlacement>& placement);

// Registers every VM with its host's agent (creating agents on demand in
// `agents`). After this, HostAgent::deliver() on the encap target completes
// the second half of the split.
void register_host_agents(Ipv4Address vip, const std::vector<VmPlacement>& placement,
                          FlowHasher hasher,
                          std::unordered_map<Ipv4Address, HostAgent>& agents);

// Convenience: installs the VIP on the switch and wires the agents.
// Returns false if the switch tables lack room.
bool install_virtualized_vip(Ipv4Address vip, const std::vector<VmPlacement>& placement,
                             SwitchDataPlane& hmux,
                             std::unordered_map<Ipv4Address, HostAgent>& agents);

}  // namespace duet
