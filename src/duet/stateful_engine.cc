#include "duet/stateful_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/hot.h"

namespace duet {

std::size_t StatefulEngine::expire_flows(double now_us, double idle_us) {
  const std::size_t evicted = flow_table_.erase_if(
      [&](const FiveTuple&, const FlowPin& pin) { return now_us - pin.last_seen_us > idle_us; });
  if (tm_flow_evictions_ != nullptr && evicted > 0) tm_flow_evictions_->inc(evicted);
  refresh_size_gauge();
  return evicted;
}

StatefulEngine::EvictStats StatefulEngine::expire_flows_step(double now_us, double idle_us,
                                                             std::size_t max_slots) {
  const auto r = flow_table_.scan_step(&scan_cursor_, max_slots, [&](const FiveTuple&,
                                                                     FlowPin& pin) {
    return now_us - pin.last_seen_us > idle_us;
  });
  scan_max_slots_ = std::max(scan_max_slots_, r.scanned);
  if (tm_flow_scan_slots_ != nullptr) tm_flow_scan_slots_->inc(r.scanned);
  if (tm_flow_scan_max_ != nullptr) tm_flow_scan_max_->set(static_cast<double>(scan_max_slots_));
  if (r.erased > 0) {
    if (tm_flow_evictions_ != nullptr) tm_flow_evictions_->inc(r.erased);
    refresh_size_gauge();
  }
  return EvictStats{r.scanned, r.erased};
}

DUET_HOT_ALLOW("flow-cap shedding: runs only when an insert pushes the table past smux_flow_table_max; O(n) selection is the documented rare-case cost")
void StatefulEngine::enforce_flow_cap(double now_us) {
  if (config_.smux_flow_idle_us > 0) expire_flows(now_us, config_.smux_flow_idle_us);
  const std::size_t cap = config_.smux_flow_table_max;
  if (cap == 0 || flow_table_.size() <= cap) return;
  // Still over the cap with no idle pins to reclaim: shed the coldest
  // entries. O(n) selection, but reaching here requires > cap concurrently
  // live flows, so it is rare by construction. Ties on last-seen break by
  // tuple order so the shed set does not depend on slot iteration order.
  std::vector<std::pair<double, FiveTuple>> by_age;
  by_age.reserve(flow_table_.size());
  flow_table_.for_each(
      [&](const FiveTuple& tuple, const FlowPin& pin) { by_age.emplace_back(pin.last_seen_us, tuple); });
  const std::size_t excess = flow_table_.size() - cap;
  const auto colder = [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  };
  std::nth_element(by_age.begin(), by_age.begin() + static_cast<std::ptrdiff_t>(excess - 1),
                   by_age.end(), colder);
  for (std::size_t i = 0; i < excess; ++i) flow_table_.erase(by_age[i].second);
  if (tm_flow_evictions_ != nullptr) tm_flow_evictions_->inc(excess);
  refresh_size_gauge();
}

void StatefulEngine::bind_telemetry(telemetry::MetricRegistry& registry,
                                    const std::string& prefix) {
  tm_flow_evictions_ = &registry.counter(prefix + "flow_evictions");
  tm_flow_dip_kills_ = &registry.counter(prefix + "flow_dip_kills");
  tm_flow_scan_slots_ = &registry.counter(prefix + "flow_scan_slots");
  tm_flow_table_size_ = &registry.gauge(prefix + "flow_table_size");
  tm_flow_scan_max_ = &registry.gauge(prefix + "flow_scan_max_slots");
  tm_flow_table_size_->set(static_cast<double>(flow_table_.size()));
}

}  // namespace duet
