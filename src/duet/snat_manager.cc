#include "duet/snat_manager.h"

#include "util/logging.h"

namespace duet {

SnatCoordinator::SnatCoordinator(std::uint16_t block_size, std::uint16_t first_port)
    : block_size_(block_size), first_port_(first_port) {
  DUET_CHECK(block_size_ > 0) << "zero SNAT block size";
}

SnatCoordinator::VipSpace& SnatCoordinator::space(Ipv4Address vip) {
  auto [it, inserted] = spaces_.try_emplace(vip);
  if (inserted) it->second.next_fresh = first_port_;
  return it->second;
}

std::optional<PortRange> SnatCoordinator::grant(Ipv4Address vip, Ipv4Address dip) {
  VipSpace& sp = space(vip);
  PortRange block;
  if (!sp.free.empty()) {
    block = sp.free.back();
    sp.free.pop_back();
  } else {
    // Carve a fresh block; 65536 - next_fresh must fit a whole block.
    const std::uint32_t begin = sp.next_fresh;
    if (begin + block_size_ > 65536u) return std::nullopt;  // space exhausted
    block = PortRange{static_cast<std::uint16_t>(begin),
                      static_cast<std::uint16_t>(begin + block_size_)};
    sp.next_fresh = static_cast<std::uint16_t>(begin + block_size_);
    if (sp.next_fresh == 0) sp.next_fresh = 65535;  // wrapped: mark full
  }
  sp.held[dip].push_back(block);
  return block;
}

void SnatCoordinator::release_all(Ipv4Address vip, Ipv4Address dip) {
  const auto sit = spaces_.find(vip);
  if (sit == spaces_.end()) return;
  auto& sp = sit->second;
  const auto hit = sp.held.find(dip);
  if (hit == sp.held.end()) return;
  for (const auto& block : hit->second) sp.free.push_back(block);
  sp.held.erase(hit);
}

std::vector<PortRange> SnatCoordinator::ranges_of(Ipv4Address vip, Ipv4Address dip) const {
  const auto sit = spaces_.find(vip);
  if (sit == spaces_.end()) return {};
  const auto hit = sit->second.held.find(dip);
  return hit == sit->second.held.end() ? std::vector<PortRange>{} : hit->second;
}

std::size_t SnatCoordinator::free_blocks(Ipv4Address vip) const {
  const auto sit = spaces_.find(vip);
  if (sit == spaces_.end()) {
    return (65536u - first_port_) / block_size_;
  }
  const auto& sp = sit->second;
  return sp.free.size() + (65536u - sp.next_fresh) / block_size_;
}

}  // namespace duet
