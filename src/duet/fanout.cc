#include "duet/fanout.h"

#include "util/logging.h"

namespace duet {

FanoutPlan plan_fanout(Ipv4Address vip, const std::vector<Ipv4Address>& dips,
                       Ipv4Address tip_base, const std::vector<SwitchId>& hosts,
                       std::size_t max_per_partition) {
  DUET_CHECK(!dips.empty()) << "fanout with no DIPs";
  DUET_CHECK(!hosts.empty()) << "fanout with no host switches";
  DUET_CHECK(max_per_partition > 0) << "empty partitions";

  FanoutPlan plan;
  plan.vip = vip;
  std::uint32_t next_tip = tip_base.value();
  for (std::size_t begin = 0; begin < dips.size(); begin += max_per_partition) {
    FanoutPartition part;
    part.tip = Ipv4Address{next_tip++};
    part.host_switch = hosts[plan.partitions.size() % hosts.size()];
    const std::size_t end = std::min(begin + max_per_partition, dips.size());
    part.dips.assign(dips.begin() + static_cast<std::ptrdiff_t>(begin),
                     dips.begin() + static_cast<std::ptrdiff_t>(end));
    plan.partitions.push_back(std::move(part));
  }
  // The primary switch needs one tunneling entry per TIP; the plan itself
  // must respect the same 512 cap.
  DUET_CHECK(plan.partitions.size() <= max_per_partition)
      << "too many partitions (" << plan.partitions.size() << ") for one VIP";
  return plan;
}

bool install_fanout(const FanoutPlan& plan, SwitchDataPlane& primary,
                    std::unordered_map<SwitchId, SwitchDataPlane*>& dataplanes) {
  // 1. TIP entries on the partition hosts.
  std::vector<std::pair<SwitchDataPlane*, Ipv4Address>> installed;
  for (const auto& part : plan.partitions) {
    const auto it = dataplanes.find(part.host_switch);
    DUET_CHECK(it != dataplanes.end() && it->second != nullptr)
        << "no data plane for switch " << part.host_switch;
    if (!it->second->install_tip(part.tip, part.dips)) {
      for (auto& [dp, tip] : installed) dp->remove_vip(tip);
      return false;
    }
    installed.emplace_back(it->second, part.tip);
  }
  // 2. The VIP on the primary, pointing at the TIPs.
  std::vector<Ipv4Address> tips;
  tips.reserve(plan.partitions.size());
  for (const auto& part : plan.partitions) tips.push_back(part.tip);
  if (!primary.install_vip(plan.vip, tips)) {
    for (auto& [dp, tip] : installed) dp->remove_vip(tip);
    return false;
  }
  return true;
}

void remove_fanout(const FanoutPlan& plan, SwitchDataPlane& primary,
                   std::unordered_map<SwitchId, SwitchDataPlane*>& dataplanes) {
  primary.remove_vip(plan.vip);
  for (const auto& part : plan.partitions) {
    const auto it = dataplanes.find(part.host_switch);
    if (it != dataplanes.end() && it->second != nullptr) it->second->remove_vip(part.tip);
  }
}

}  // namespace duet
