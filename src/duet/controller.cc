#include "duet/controller.h"

#include <algorithm>

#include "audit/invariants.h"
#include "audit/snapshot.h"
#include "util/logging.h"

namespace duet {

DuetController::DuetController(const FatTree& fabric, DuetConfig config, FlowHasher hasher,
                               std::uint64_t seed)
    : fabric_(&fabric),
      config_(config),
      hasher_(hasher),
      options_(AssignmentOptions::from_config(config)),
      assigner_(fabric, [&] {
        auto o = AssignmentOptions::from_config(config);
        o.seed = seed;
        return o;
      }()),
      routing_(fabric.topo.switch_count()),
      rng_(seed) {
  options_.seed = seed;
  // Audit violations count into this controller's registry (last controller
  // constructed wins the process-wide binding; sims build one).
  audit::bind_registry(&telemetry_.registry);
}

DuetController::~DuetController() { audit::unbind_registry(&telemetry_.registry); }

void DuetController::audit_now(bool converged_placement, const char* where) {
  if (!audit::audit_enabled()) return;
  audit::InvariantAuditor auditor(audit::AuditOptions{converged_placement});
  audit::AuditReport report = auditor.audit(audit::SystemSnapshot::capture(*this));
  report.merge(auditor.audit_journal(telemetry_.journal));
  if (!report.clean()) {
    DUET_LOG_ERROR << "invariant audit (" << where << "): " << report.summary();
  }
  report.raise();
}

void DuetController::deploy_smuxes(const std::vector<SwitchId>& tors, Ipv4Prefix vip_aggregate) {
  DUET_CHECK(smuxes_.empty()) << "SMux pool already deployed";
  DUET_CHECK(!tors.empty()) << "need at least one SMux (the backstop must exist)";
  aggregate_ = vip_aggregate;
  for (const SwitchId tor : tors) {
    DUET_CHECK(fabric_->topo.switch_info(tor).role == SwitchRole::kTor)
        << "SMuxes run on servers under ToRs";
    SmuxInstance inst;
    inst.id = static_cast<std::uint32_t>(smuxes_.size());
    inst.tor = tor;
    inst.mux = std::make_unique<Smux>(inst.id, hasher_, config_);
    inst.mux->bind_telemetry(telemetry_.registry,
                             "duet.smux." + std::to_string(inst.id) + ".");
    // BGP speaker alongside the SMux announces the aggregate (§6).
    routing_.announce_everywhere(aggregate_, tor);
    journal_event(telemetry::EventKind::kBgpAnnounce, {}, {}, tor,
                  "smux aggregate " + aggregate_.to_string());
    smuxes_.push_back(std::move(inst));
  }
}

void DuetController::journal_event(telemetry::EventKind kind, Ipv4Address vip, Ipv4Address dip,
                                   std::uint32_t sw, std::string detail) {
  telemetry_.journal.record(clock_us_, kind, vip, dip, sw, std::move(detail));
}

DuetController::VipRecord& DuetController::record(Ipv4Address vip) {
  const auto it = vips_.find(vip);
  DUET_CHECK(it != vips_.end()) << "unknown VIP " << vip.to_string();
  return it->second;
}

const DuetController::VipRecord* DuetController::find_record(Ipv4Address vip) const {
  const auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

Hmux& DuetController::ensure_hmux(SwitchId s) {
  auto it = hmuxes_.find(s);
  if (it == hmuxes_.end()) {
    it = hmuxes_.emplace(s, std::make_unique<Hmux>(s, hasher_, config_)).first;
    it->second->dataplane().bind_telemetry(telemetry_.registry,
                                           "duet.hmux.sw" + std::to_string(s) + ".");
  }
  return *it->second;
}

void DuetController::sync_smuxes(const VipRecord& rec) {
  for (auto& inst : smuxes_) {
    if (!inst.alive) continue;
    inst.mux->set_vip(rec.vip, rec.dips, rec.weights);
    for (const auto& [port, dips] : rec.port_rules) {
      inst.mux->set_port_rule(rec.vip, port, dips);
    }
    if (rec.engine_override.has_value()) {
      inst.mux->set_engine_override(rec.vip, *rec.engine_override);
    }
  }
  // Under the stateless engine a pool sync is a version build pushed to
  // every live SMux (the off-path rebuild of DESIGN.md §13) — journal it so
  // the VIP's update history shows when new colorings went live.
  if (config_.smux_engine == SmuxEngine::kStateless && !smuxes_.empty()) {
    journal_event(telemetry::EventKind::kStatelessVersionBuild, rec.vip, {},
                  telemetry::kNoSwitch,
                  std::to_string(rec.dips.size()) + " dips");
  }
}

void DuetController::purge_from_smuxes(Ipv4Address vip) {
  for (auto& inst : smuxes_) {
    if (inst.alive) inst.mux->remove_vip(vip);
  }
}

VipId DuetController::add_vip(Ipv4Address vip, std::vector<Ipv4Address> dips) {
  DUET_CHECK(!vips_.contains(vip)) << "VIP already exists: " << vip.to_string();
  DUET_CHECK(!dips.empty()) << "VIP with no DIPs";
  DUET_CHECK(aggregate_.contains(vip))
      << "VIP " << vip.to_string() << " outside the SMux aggregate " << aggregate_.to_string();
  VipRecord rec;
  rec.id = next_vip_id_++;
  rec.vip = vip;
  rec.dips = std::move(dips);
  vip_by_id_.emplace(rec.id, vip);
  const VipId id = rec.id;
  sync_smuxes(rec);  // §5.2: new VIPs start on the SMuxes
  vips_.emplace(vip, std::move(rec));
  journal_event(telemetry::EventKind::kVipAdded, vip, {}, telemetry::kNoSwitch,
                "on smux backstop");
  return id;
}

void DuetController::remove_vip(Ipv4Address vip) {
  auto& rec = record(vip);
  withdraw_from_hmux(rec);
  purge_from_smuxes(vip);
  vip_by_id_.erase(rec.id);
  vips_.erase(vip);
  journal_event(telemetry::EventKind::kVipRemoved, vip);
}

bool DuetController::place_on_hmux(VipRecord& rec, SwitchId target) {
  if (dead_switches_.contains(target)) return false;
  Hmux& hmux = ensure_hmux(target);
  if (rec.home == target) return true;
  withdraw_from_hmux(rec);
  if (rec.dips.size() > config_.tunnel_table_capacity) {
    return place_fanout_on_hmux(rec, target);
  }
  if (!hmux.dataplane().install_vip(rec.vip, rec.dips, rec.weights)) {
    DUET_LOG_WARN << "HMux " << target << " rejected VIP " << rec.vip.to_string()
                  << " (tables full); staying on SMux";
    return false;
  }
  for (const auto& [port, dips] : rec.port_rules) {
    if (!hmux.dataplane().install_port_rule(rec.vip, port, dips)) {
      DUET_LOG_WARN << "ACL table full for port rule " << rec.vip.to_string() << ":" << port;
    }
  }
  routing_.announce_everywhere(Ipv4Prefix::host_route(rec.vip), target);
  journal_event(telemetry::EventKind::kBgpAnnounce, rec.vip, {}, target);
  journal_event(telemetry::EventKind::kVipPlaced, rec.vip, {}, target);
  rec.home = target;
  return true;
}

bool DuetController::place_fanout_on_hmux(VipRecord& rec, SwitchId target) {
  // §5.2 large fanout: partition the DIPs, host each partition's TIP on a
  // helper switch with room, and point the primary at the TIPs.
  const std::size_t cap = config_.tunnel_table_capacity;
  const std::size_t parts = (rec.dips.size() + cap - 1) / cap;

  // Helpers: the emptiest alive switches other than the primary. Aggs and
  // Cores first — their tables are the least contended (§9).
  std::vector<SwitchId> pool;
  pool.insert(pool.end(), fabric_->aggs.begin(), fabric_->aggs.end());
  pool.insert(pool.end(), fabric_->cores.begin(), fabric_->cores.end());
  pool.insert(pool.end(), fabric_->tors.begin(), fabric_->tors.end());
  std::vector<SwitchId> helpers;
  for (const SwitchId s : pool) {
    if (helpers.size() == parts) break;
    if (s == target || dead_switches_.contains(s)) continue;
    if (ensure_hmux(s).free_dip_slots() >= std::min(cap, rec.dips.size())) helpers.push_back(s);
  }
  if (helpers.size() < parts) {
    DUET_LOG_WARN << "no helper switches with room for " << parts << " TIP partitions of VIP "
                  << rec.vip.to_string();
    return false;
  }

  FanoutPlan plan =
      plan_fanout(rec.vip, rec.dips, Ipv4Address{next_tip_}, helpers, cap);
  next_tip_ += static_cast<std::uint32_t>(plan.partitions.size());

  std::unordered_map<SwitchId, SwitchDataPlane*> dps;
  for (const auto& part : plan.partitions) {
    dps[part.host_switch] = &ensure_hmux(part.host_switch).dataplane();
  }
  if (!install_fanout(plan, ensure_hmux(target).dataplane(), dps)) {
    DUET_LOG_WARN << "fanout install failed for VIP " << rec.vip.to_string();
    return false;
  }
  // TIPs are routable addresses assigned to their host switches (§5.2).
  for (const auto& part : plan.partitions) {
    routing_.announce_everywhere(Ipv4Prefix::host_route(part.tip), part.host_switch);
  }
  routing_.announce_everywhere(Ipv4Prefix::host_route(rec.vip), target);
  journal_event(telemetry::EventKind::kBgpAnnounce, rec.vip, {}, target,
                "fanout, " + std::to_string(plan.partitions.size()) + " TIP partitions");
  journal_event(telemetry::EventKind::kVipPlaced, rec.vip, {}, target);
  rec.fanout = std::move(plan);
  rec.home = target;
  return true;
}

void DuetController::withdraw_from_hmux(VipRecord& rec) {
  if (!rec.home) return;
  const SwitchId old = *rec.home;
  routing_.withdraw_everywhere(Ipv4Prefix::host_route(rec.vip), old);
  journal_event(telemetry::EventKind::kBgpWithdraw, rec.vip, {}, old);
  const auto it = hmuxes_.find(old);
  if (it != hmuxes_.end()) {
    it->second->dataplane().remove_vip(rec.vip);
    for (const auto& [port, dips] : rec.port_rules) {
      (void)dips;
      it->second->dataplane().remove_port_rule(rec.vip, port);
    }
  }
  if (rec.fanout.has_value()) {
    for (const auto& part : rec.fanout->partitions) {
      routing_.withdraw_everywhere(Ipv4Prefix::host_route(part.tip), part.host_switch);
      const auto hit = hmuxes_.find(part.host_switch);
      if (hit != hmuxes_.end()) hit->second->dataplane().remove_vip(part.tip);
    }
    rec.fanout.reset();
  }
  rec.home.reset();
}

void DuetController::add_dip(Ipv4Address vip, Ipv4Address dip) {
  auto& rec = record(vip);
  // §5.2: resilient hashing cannot grow in place — bounce through the SMuxes
  // (which pin existing connections) and let the next epoch move it back.
  if (rec.home.has_value()) {
    withdraw_from_hmux(rec);
    // Keep the remembered assignment honest so the next sticky epoch knows
    // the VIP is currently on the SMuxes and re-places it.
    current_.placement.erase(rec.id);
    current_.on_smux.push_back(rec.id);
    journal_event(telemetry::EventKind::kVipFallback, vip, dip, telemetry::kNoSwitch,
                  "dip addition bounce");
  }
  rec.dips.push_back(dip);
  sync_smuxes(rec);
}

void DuetController::remove_dip(Ipv4Address vip, Ipv4Address dip) {
  auto& rec = record(vip);
  const auto pos = std::find(rec.dips.begin(), rec.dips.end(), dip);
  if (pos == rec.dips.end()) return;
  if (rec.dips.size() == 1) {
    // Last DIP: the VIP has no backends left.
    remove_vip(vip);
    return;
  }
  rec.dips.erase(pos);
  if (rec.home) {
    // Resilient hashing: surviving connections keep their DIPs (§5.1).
    ensure_hmux(*rec.home).dataplane().remove_vip_target(vip, dip);
  }
  bool touched_smux = false;
  for (auto& inst : smuxes_) {
    if (inst.alive && inst.mux->has_vip(vip)) {
      inst.mux->remove_dip(vip, dip);
      touched_smux = true;
    }
  }
  // In-place removal also builds a version under the stateless engine
  // (dead-owner buckets flip immediately, §5.1).
  if (config_.smux_engine == SmuxEngine::kStateless && touched_smux) {
    journal_event(telemetry::EventKind::kStatelessVersionBuild, vip, dip,
                  telemetry::kNoSwitch, "dip removal");
  }
}

void DuetController::report_dip_health(Ipv4Address vip, Ipv4Address dip, bool healthy) {
  journal_event(healthy ? telemetry::EventKind::kDipUp : telemetry::EventKind::kDipDown, vip,
                dip, telemetry::kNoSwitch, healthy ? "" : "removed from rotation");
  if (!healthy) remove_dip(vip, dip);
}

void DuetController::install_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                                       std::vector<Ipv4Address> dips) {
  DUET_CHECK(!dips.empty()) << "port rule with no DIPs";
  auto& rec = record(vip);
  rec.port_rules[dst_port] = dips;
  if (rec.home.has_value()) {
    auto& dp = ensure_hmux(*rec.home).dataplane();
    dp.remove_port_rule(vip, dst_port);  // replace-if-present
    if (!dp.install_port_rule(vip, dst_port, dips)) {
      DUET_LOG_WARN << "ACL table full for port rule " << vip.to_string() << ":" << dst_port;
    }
  }
  for (auto& inst : smuxes_) {
    if (inst.alive) inst.mux->set_port_rule(vip, dst_port, dips);
  }
}

void DuetController::remove_port_rule(Ipv4Address vip, std::uint16_t dst_port) {
  auto& rec = record(vip);
  rec.port_rules.erase(dst_port);
  if (rec.home.has_value()) {
    ensure_hmux(*rec.home).dataplane().remove_port_rule(vip, dst_port);
  }
  for (auto& inst : smuxes_) {
    if (inst.alive) inst.mux->remove_port_rule(vip, dst_port);
  }
}

void DuetController::set_dip_weights(Ipv4Address vip, std::vector<std::uint32_t> weights) {
  auto& rec = record(vip);
  DUET_CHECK(weights.empty() || weights.size() == rec.dips.size())
      << "weights/dips size mismatch for " << vip.to_string();
  // Like DIP addition: the slot layout changes, so bounce through the SMuxes
  // (flow pins preserve existing connections) and return next epoch (§5.2).
  if (rec.home.has_value()) {
    withdraw_from_hmux(rec);
    current_.placement.erase(rec.id);
    current_.on_smux.push_back(rec.id);
    journal_event(telemetry::EventKind::kVipFallback, vip, {}, telemetry::kNoSwitch,
                  "wcmp weight bounce");
  }
  rec.weights = std::move(weights);
  sync_smuxes(rec);
}

bool DuetController::migrate_vip(Ipv4Address vip, std::optional<SwitchId> target) {
  auto& rec = record(vip);
  if (rec.home == target) return true;  // already where the operator wants it

  // Phase 1 (§4.2): withdraw — traffic falls through LPM onto the SMux
  // backstop, which always carries the VIP.
  if (rec.home.has_value()) {
    withdraw_from_hmux(rec);
    current_.placement.erase(rec.id);
    if (std::find(current_.on_smux.begin(), current_.on_smux.end(), rec.id) ==
        current_.on_smux.end()) {
      current_.on_smux.push_back(rec.id);
    }
    journal_event(telemetry::EventKind::kVipFallback, vip, {}, telemetry::kNoSwitch,
                  "operator migrate");
    audit_now(/*converged_placement=*/true, "migrate mid");
  }

  // Phase 2: announce from the new home (if any).
  bool ok = true;
  if (target.has_value()) {
    ok = place_on_hmux(rec, *target);
    if (ok) {
      current_.placement[rec.id] = *target;
      current_.on_smux.erase(
          std::remove(current_.on_smux.begin(), current_.on_smux.end(), rec.id),
          current_.on_smux.end());
    }
  }
  telemetry_.registry.counter("duet.controller.operator_migrations").inc();
  audit_now(/*converged_placement=*/true, "migrate end");
  return ok;
}

void DuetController::set_engine_override(Ipv4Address vip, std::optional<SmuxEngine> engine) {
  auto& rec = record(vip);
  rec.engine_override = engine;
  for (auto& inst : smuxes_) {
    if (!inst.alive) continue;
    if (engine.has_value()) {
      inst.mux->set_engine_override(vip, *engine);
    } else {
      inst.mux->clear_engine_override(vip);
    }
  }
}

std::optional<SmuxEngine> DuetController::engine_override_of(Ipv4Address vip) const {
  const auto* rec = find_record(vip);
  return rec == nullptr ? std::nullopt : rec->engine_override;
}

DuetController::EpochReport DuetController::run_epoch(const std::vector<VipDemand>& demands,
                                                      bool sticky) {
  EpochReport report;
  Assignment next = (sticky && have_assignment_) ? assigner_.assign_sticky(demands, current_)
                                                 : assigner_.assign(demands);

  report.migration = plan_migration(current_, next, demands);
  journal_migration_plan(report.migration, telemetry_.journal, clock_us_, [this](VipId id) {
    const auto it = vip_by_id_.find(id);
    return it == vip_by_id_.end() ? Ipv4Address{} : it->second;
  });

  // Phase 1 (§4.2): withdraw moving VIPs — their traffic falls to the SMuxes.
  for (const auto& move : report.migration.moves) {
    const auto it = vip_by_id_.find(move.vip);
    if (it == vip_by_id_.end()) continue;
    if (move.kind == MoveKind::kHmuxToHmux || move.kind == MoveKind::kHmuxToSmux) {
      withdraw_from_hmux(record(it->second));
    }
  }
  // Mid-migration audit: withdrawn VIPs must already be safe on the SMux
  // backstop, but the remembered placement intentionally disagrees with the
  // VipRecords until phase 2 lands.
  audit_now(/*converged_placement=*/false, "epoch mid-migration");

  // Phase 2: announce from the new homes.
  for (const auto& move : report.migration.moves) {
    const auto it = vip_by_id_.find(move.vip);
    if (it == vip_by_id_.end() || !move.to) continue;
    auto& rec = record(it->second);
    if (!place_on_hmux(rec, *move.to)) {
      // Fall back to SMux; fix the bookkeeping so current_ matches reality.
      next.placement.erase(move.vip);
      next.on_smux.push_back(move.vip);
      next.smux_gbps += move.gbps;
      next.hmux_gbps -= move.gbps;
    }
  }

  const auto failover = analyze_failover(*fabric_, demands, next);
  report.smuxes_needed = smuxes_needed(next.smux_gbps, failover.worst_gbps(),
                                       report.migration.shuffled_gbps,
                                       config_.smux_capacity_gbps());
  report.hmux_fraction = next.hmux_fraction();
  report.assignment = next;
  current_ = std::move(next);
  have_assignment_ = true;

  // Epoch-level metrics (§4: MRU is what the assignment minimizes).
  auto& reg = telemetry_.registry;
  reg.counter("duet.controller.epochs").inc();
  reg.gauge("duet.controller.mru").set(current_.mru);
  reg.gauge("duet.controller.hmux_fraction").set(report.hmux_fraction);
  reg.gauge("duet.controller.hmux_gbps").set(current_.hmux_gbps);
  reg.gauge("duet.controller.smux_gbps").set(current_.smux_gbps);
  reg.gauge("duet.controller.smuxes_needed").set(static_cast<double>(report.smuxes_needed));
  reg.gauge("duet.controller.migration_moves")
      .set(static_cast<double>(report.migration.move_count()));
  reg.gauge("duet.controller.migration_shuffled_gbps").set(report.migration.shuffled_gbps);

  audit_now(/*converged_placement=*/true, "epoch end");
  return report;
}

void DuetController::handle_switch_failure(SwitchId dead) {
  dead_switches_.insert(dead);
  journal_event(telemetry::EventKind::kHmuxDown, {}, {}, dead);
  telemetry_.registry.counter("duet.controller.switch_failures").inc();
  // BGP withdraws every route the dead switch originated (§5.1); VIP traffic
  // collapses onto the SMux aggregate.
  routing_.fail_origin_everywhere(dead);
  for (auto& [vip, rec] : vips_) {
    const bool primary_died = rec.home == dead;
    // A large-fanout VIP also depends on its TIP partition hosts: losing any
    // of them blackholes the partition's hash share, so the whole VIP falls
    // back to the SMuxes until the next epoch re-plans it.
    bool partition_died = false;
    if (rec.fanout.has_value()) {
      for (const auto& part : rec.fanout->partitions) {
        partition_died |= (part.host_switch == dead);
      }
    }
    if (primary_died || partition_died) {
      if (partition_died && !primary_died) {
        withdraw_from_hmux(rec);  // primary is alive: clean teardown
      } else if (rec.fanout.has_value()) {
        // Primary died: its routes are already gone; clean the partitions.
        for (const auto& part : rec.fanout->partitions) {
          if (part.host_switch == dead) continue;
          routing_.withdraw_everywhere(Ipv4Prefix::host_route(part.tip), part.host_switch);
          const auto hit = hmuxes_.find(part.host_switch);
          if (hit != hmuxes_.end()) hit->second->dataplane().remove_vip(part.tip);
        }
        rec.fanout.reset();
        rec.home.reset();
      } else {
        // The dead switch's routes vanished with it; journal the implicit
        // withdraw so the VIP's journal tells the full §5.1 story.
        journal_event(telemetry::EventKind::kBgpWithdraw, vip, {}, dead, "origin died");
        rec.home.reset();
      }
      current_.placement.erase(rec.id);
      current_.on_smux.push_back(rec.id);
      journal_event(telemetry::EventKind::kVipFallback, vip, {}, telemetry::kNoSwitch,
                    "smux backstop after switch failure");
    }
  }
  hmuxes_.erase(dead);

  audit_now(/*converged_placement=*/true, "switch failure");
}

void DuetController::handle_smux_failure(std::uint32_t smux_id) {
  for (auto& inst : smuxes_) {
    if (inst.id == smux_id && inst.alive) {
      inst.alive = false;
      routing_.withdraw_everywhere(aggregate_, inst.tor);
      telemetry::Event e{clock_us_, telemetry::EventKind::kSmuxDown,
                        {},        {},
                        inst.tor,  smux_id,
                        0,         0,
                        {}};
      telemetry_.journal.record(std::move(e));
      journal_event(telemetry::EventKind::kBgpWithdraw, {}, {}, inst.tor,
                    "smux aggregate " + aggregate_.to_string());
      audit_now(/*converged_placement=*/true, "smux failure");
      return;
    }
  }
  DUET_LOG_WARN << "unknown SMux id " << smux_id;
}

DuetController::Owner DuetController::owner_of(Ipv4Address vip) const {
  const auto* rec = find_record(vip);
  if (rec == nullptr) return Owner::kNone;
  return rec->home.has_value() ? Owner::kHmux : Owner::kSmux;
}

std::optional<SwitchId> DuetController::hmux_home(Ipv4Address vip) const {
  const auto* rec = find_record(vip);
  return rec == nullptr ? std::nullopt : rec->home;
}

std::vector<Ipv4Address> DuetController::vip_addresses() const {
  std::vector<Ipv4Address> out;
  out.reserve(vips_.size());
  for (const auto& [vip, rec] : vips_) out.push_back(vip);
  return out;
}

std::vector<Ipv4Address> DuetController::dips_of(Ipv4Address vip) const {
  const auto* rec = find_record(vip);
  return rec == nullptr ? std::vector<Ipv4Address>{} : rec->dips;
}

std::vector<std::uint32_t> DuetController::weights_of(Ipv4Address vip) const {
  const auto* rec = find_record(vip);
  return rec == nullptr ? std::vector<std::uint32_t>{} : rec->weights;
}

std::optional<Ipv4Address> DuetController::load_balance(Packet& packet) {
  // Converged view: every switch has the same RIB, so consult view 0.
  const Rib& rib = routing_.rib(0);
  const Ipv4Address dst = packet.routing_destination();
  const auto prefix = rib.best_prefix(dst);
  if (!prefix) return std::nullopt;

  if (prefix->length() == 32) {
    // HMux home route.
    const auto origins = rib.origins(*prefix);
    DUET_CHECK(!origins.empty()) << "matched /32 with no origin";
    const auto it = hmuxes_.find(origins.front());
    if (it == hmuxes_.end()) return std::nullopt;
    if (it->second->dataplane().process(packet) != PipelineVerdict::kEncapsulated) {
      return std::nullopt;
    }
    // §5.2 large fanout: if the outer destination is a TIP, the network
    // carries the packet to the TIP's switch, which decapsulates and
    // re-encapsulates toward a DIP of that partition at line rate.
    const auto tip_prefix = rib.best_prefix(packet.outer().outer_dst);
    if (tip_prefix.has_value() && tip_prefix->length() == 32) {
      const auto tip_origins = rib.origins(*tip_prefix);
      const auto tip_it = tip_origins.empty() ? hmuxes_.end() : hmuxes_.find(tip_origins.front());
      if (tip_it != hmuxes_.end() && tip_it->second->dataplane().has_vip(packet.outer().outer_dst)) {
        if (tip_it->second->dataplane().process(packet) != PipelineVerdict::kEncapsulated) {
          return std::nullopt;
        }
      }
    }
    return packet.outer().outer_dst;
  }

  // Aggregate route: ECMP over the live SMuxes.
  std::vector<Smux*> alive;
  for (auto& inst : smuxes_) {
    if (inst.alive) alive.push_back(inst.mux.get());
  }
  if (alive.empty()) return std::nullopt;
  Smux& smux = *alive[hasher_.bucket(packet.tuple(), static_cast<std::uint32_t>(alive.size()))];
  if (!smux.process(packet)) return std::nullopt;
  return packet.outer().outer_dst;
}

Hmux* DuetController::hmux_at(SwitchId s) {
  const auto it = hmuxes_.find(s);
  return it == hmuxes_.end() ? nullptr : it->second.get();
}

void DuetController::snapshot_table_occupancy() {
  std::size_t host = 0, ecmp = 0, tunnel = 0;
  std::uint64_t lookups = 0;
  for (const auto& [sw, hmux] : hmuxes_) {
    const auto& dp = hmux->dataplane();
    telemetry::Event e{clock_us_,
                       telemetry::EventKind::kTableOccupancy,
                       {},
                       {},
                       sw,
                       dp.host_entries_used(),
                       dp.ecmp_entries_used(),
                       dp.tunnel_entries_used(),
                       {}};
    telemetry_.journal.record(std::move(e));
    host += dp.host_entries_used();
    ecmp += dp.ecmp_entries_used();
    tunnel += dp.tunnel_entries_used();
    lookups += dp.table_lookups();
  }
  auto& reg = telemetry_.registry;
  reg.gauge("duet.dataplane.host_entries_used").set(static_cast<double>(host));
  reg.gauge("duet.dataplane.ecmp_entries_used").set(static_cast<double>(ecmp));
  reg.gauge("duet.dataplane.tunnel_entries_used").set(static_cast<double>(tunnel));
  reg.gauge("duet.dataplane.table_lookups").set(static_cast<double>(lookups));
  reg.gauge("duet.dataplane.hmux_count").set(static_cast<double>(hmuxes_.size()));
}

}  // namespace duet
