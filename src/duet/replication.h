// VIP replication across multiple HMuxes — the §9 road-not-taken.
//
// "As hinted in §3.3, it may be possible to handle failover and migration by
// replicating VIP entries in multiple HMuxes. We continue to investigate
// this approach, although our initial exploration shows that the resulting
// design is far more complex than our current design."
//
// This module implements that alternative so its trade-off can be measured
// (bench_ablation_replication):
//   * each VIP is installed on R switches, all announcing the same /32 —
//     anycast; upstream ECMP splits the VIP's traffic across the replicas;
//   * connections are safe across replicas for free: every replica builds
//     the identical resilient-hash group from the identical DIP list and the
//     shared FlowHasher, so whichever replica a flow lands on picks the same
//     DIP (§3.3.1 generalized);
//   * a single switch/container failure now spills only the traffic of VIPs
//     that lost their LAST replica — anti-affinity places replicas in
//     distinct containers, so container failures spill (almost) nothing;
//   * the price: R× switch-memory consumption per VIP, so fewer VIPs fit on
//     HMuxes, and R× the control-plane updates per VIP event — the
//     complexity the paper chose the SMux backstop over.
//
// Modelling note: each ingress's traffic is assumed to split evenly across
// the R replicas. In a symmetric FatTree with anycast ECMP this is close to
// exact for Core/Agg replicas; for ToR replicas the split skews towards the
// nearest replica, which this model ignores.
#pragma once

#include <unordered_map>
#include <vector>

#include "duet/assignment.h"

namespace duet {

struct ReplicatedAssignment {
  // Every placed VIP has exactly `replication` distinct homes.
  std::unordered_map<VipId, std::vector<SwitchId>> placement;
  std::vector<VipId> on_smux;

  double hmux_gbps = 0.0;
  double smux_gbps = 0.0;
  double mru = 0.0;
  std::vector<std::size_t> switch_dips_used;

  bool on_hmux(VipId v) const { return placement.contains(v); }
  double hmux_fraction() const {
    const double t = hmux_gbps + smux_gbps;
    return t <= 0.0 ? 0.0 : hmux_gbps / t;
  }
};

struct ReplicationOptions {
  std::size_t replicas = 2;
  // Require replicas to live in distinct containers (Core switches count as
  // their own singleton domain), so one container failure cannot take every
  // replica of a VIP.
  bool container_anti_affinity = true;
};

class ReplicatedAssigner {
 public:
  ReplicatedAssigner(const FatTree& fabric, AssignmentOptions options,
                     ReplicationOptions replication);

  ReplicatedAssignment assign(const std::vector<VipDemand>& demands) const;

 private:
  const FatTree* fabric_;
  AssignmentOptions options_;
  ReplicationOptions replication_;
  EcmpRouting routing_;
};

// Failover under the §8.2 model when every VIP has R replicas: traffic
// spills to the SMuxes only for VIPs whose every replica died.
FailoverAnalysis analyze_failover_replicated(const FatTree& fabric,
                                             const std::vector<VipDemand>& demands,
                                             const ReplicatedAssignment& assignment);

}  // namespace duet
