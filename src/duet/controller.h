// The Duet controller (Fig 9, §6).
//
// Three roles from the paper:
//   * Datacenter monitoring — topology, traffic (per-epoch demands), and DIP
//     health reported by host agents;
//   * Duet Engine — runs the VIP-switch assignment (§4) each epoch;
//   * Assignment Updater — translates assignment diffs into switch-agent
//     operations: program/clear ECMP+tunneling entries on HMuxes, update the
//     SMuxes' full VIP tables, and fire BGP announcements/withdrawals.
//
// This controller applies operations in converged steps (every RIB view
// updates atomically per step, with the SMux-transit ordering of §4.2
// between steps). The event-driven testbed simulator (sim/probe.h) models
// the *latencies* of the same operations for the Fig 12–14 experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "duet/assignment.h"
#include "duet/config.h"
#include "duet/fanout.h"
#include "duet/hmux.h"
#include "duet/migration.h"
#include "duet/smux.h"
#include "routing/bgp.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "topo/fattree.h"
#include "workload/demand.h"

namespace duet {

namespace audit {
struct SystemSnapshot;
}  // namespace audit

namespace persist {
struct ControllerAccess;
}  // namespace persist

class DuetController {
 public:
  DuetController(const FatTree& fabric, DuetConfig config, FlowHasher hasher,
                 std::uint64_t seed = 1);
  // Unbinds the audit registry binding made in the constructor (if still
  // ours) so later violation reports can't reach a dead registry.
  ~DuetController();

  // --- deployment -----------------------------------------------------------
  // Creates the SMux pool on servers under the given ToRs; every SMux
  // announces the covering aggregate so it backstops all VIPs (§3.3.1).
  void deploy_smuxes(const std::vector<SwitchId>& tors, Ipv4Prefix vip_aggregate);

  // --- VIP lifecycle (§5.2) ---------------------------------------------------
  // "A new VIP is first added to SMuxes, and then the migration algorithm
  // decides the right destination."
  VipId add_vip(Ipv4Address vip, std::vector<Ipv4Address> dips);
  void remove_vip(Ipv4Address vip);
  // DIP addition bounces the VIP through the SMuxes (resilient hashing can't
  // grow in place); DIP removal uses resilient hashing on the HMux.
  void add_dip(Ipv4Address vip, Ipv4Address dip);
  void remove_dip(Ipv4Address vip, Ipv4Address dip);
  // Host-agent health report; an unhealthy DIP is removed (§5.1).
  void report_dip_health(Ipv4Address vip, Ipv4Address dip, bool healthy);

  // Port-based LB (§5.2): a (vip, dst_port)-specific DIP pool, programmed as
  // an ACL rule on the VIP's HMux and mirrored on every SMux.
  void install_port_rule(Ipv4Address vip, std::uint16_t dst_port,
                         std::vector<Ipv4Address> dips);
  void remove_port_rule(Ipv4Address vip, std::uint16_t dst_port);

  // WCMP weights for heterogeneous backends (§5.2). Changing weights changes
  // the slot layout, so like DIP addition the VIP bounces through the
  // SMuxes (whose flow table pins existing connections) and returns to
  // hardware at the next epoch.
  void set_dip_weights(Ipv4Address vip, std::vector<std::uint32_t> weights);

  // Operator-directed single-VIP migration (duetctl migrate): the §4.2
  // two-phase move for one VIP — withdraw (traffic falls to the SMux
  // backstop), then announce from `target` (nullopt = stay on the SMux
  // pool). Returns false when the target rejects the VIP (tables full or
  // switch dead); the VIP then stays safely on the SMuxes.
  bool migrate_vip(Ipv4Address vip, std::optional<SwitchId> target);

  // Pins the VIP's SMux decision engine (nullopt clears back to the
  // DuetConfig default). Remembered in the VIP record so new SMux syncs and
  // controller snapshots carry it.
  void set_engine_override(Ipv4Address vip, std::optional<SmuxEngine> engine);
  std::optional<SmuxEngine> engine_override_of(Ipv4Address vip) const;

  // --- epoch processing --------------------------------------------------------
  struct EpochReport {
    Assignment assignment;
    MigrationPlan migration;
    double hmux_fraction = 0.0;
    std::size_t smuxes_needed = 0;
  };
  // Runs the (sticky, unless first) assignment over fresh demands and
  // executes the resulting migration. Demands' VipIds must come from
  // add_vip. `sticky=false` forces a from-scratch round (the paper's
  // Non-sticky baseline).
  EpochReport run_epoch(const std::vector<VipDemand>& demands, bool sticky = true);

  // --- failure handling (§5.1) ----------------------------------------------------
  // HMux died: withdraw its routes everywhere; VIPs fall back to SMuxes and
  // are remembered for re-assignment next epoch.
  void handle_switch_failure(SwitchId dead);
  // SMux died: drop it from the pool (ECMP redistributes).
  void handle_smux_failure(std::uint32_t smux_id);

  // --- queries -----------------------------------------------------------------
  enum class Owner : std::uint8_t { kNone, kSmux, kHmux };
  Owner owner_of(Ipv4Address vip) const;
  std::optional<SwitchId> hmux_home(Ipv4Address vip) const;
  // Configured VIPs / a VIP's pool, for renderers of controller state into a
  // serving path (duetd pushes these into its MuxServer after every op).
  std::vector<Ipv4Address> vip_addresses() const;
  std::vector<Ipv4Address> dips_of(Ipv4Address vip) const;
  std::vector<std::uint32_t> weights_of(Ipv4Address vip) const;

  // Data-path entry point for tests/examples: runs the packet through the
  // mux currently owning its VIP (converged view) and returns the DIP it was
  // encapsulated to, or nullopt when dropped/unknown.
  std::optional<Ipv4Address> load_balance(Packet& packet);

  // --- telemetry ----------------------------------------------------------------
  // Always-on observability (metric prefix `duet.controller.` plus per-mux
  // `duet.hmux.sw<N>.` / `duet.smux.<id>.` series; §4/§5 control-plane steps
  // land in the journal). The controller has no clock of its own — callers
  // with a notion of time advance it so journal timestamps are meaningful;
  // otherwise every event stamps 0 and keeps insertion order.
  telemetry::MetricRegistry& metrics() noexcept { return telemetry_.registry; }
  const telemetry::MetricRegistry& metrics() const noexcept { return telemetry_.registry; }
  telemetry::EventJournal& journal() noexcept { return telemetry_.journal; }
  const telemetry::EventJournal& journal() const noexcept { return telemetry_.journal; }
  void set_clock_us(double t_us) { clock_us_ = t_us; }
  double clock_us() const noexcept { return clock_us_; }
  // Journals one kTableOccupancy event per live HMux and refreshes the
  // aggregate `duet.dataplane.*` gauges. Explicit (not per-epoch) so the
  // journal stays small in long simulations.
  void snapshot_table_occupancy();

  const RoutingFabric& routing() const noexcept { return routing_; }
  Hmux* hmux_at(SwitchId s);
  std::size_t smux_count() const noexcept { return smuxes_.size(); }
  Smux& smux(std::size_t i) { return *smuxes_.at(i).mux; }
  std::size_t vip_count() const noexcept { return vips_.size(); }
  const Assignment& current_assignment() const noexcept { return current_; }
  const DuetConfig& config() const noexcept { return config_; }

 private:
  // Read-only state walk for the invariant auditor (audit/snapshot.h).
  friend struct audit::SystemSnapshot;
  // Snapshot capture/restore for crash recovery (persist/state_image.h).
  friend struct persist::ControllerAccess;

  struct VipRecord {
    VipId id = 0;
    Ipv4Address vip;
    std::vector<Ipv4Address> dips;
    std::optional<SwitchId> home;  // HMux switch, nullopt = SMux pool
    // Large-fanout VIPs (> tunnel capacity DIPs) are served through TIP
    // indirection (§5.2); the active plan is kept for teardown.
    std::optional<FanoutPlan> fanout;
    // WCMP weights (empty = equal) and port-specific pools (§5.2).
    std::vector<std::uint32_t> weights;
    std::unordered_map<std::uint16_t, std::vector<Ipv4Address>> port_rules;
    // Per-VIP SMux decision-engine pin (DESIGN.md §13); nullopt = config
    // default. Kept here (not only inside the Smuxes) so snapshots carry it.
    std::optional<SmuxEngine> engine_override;
  };
  struct SmuxInstance {
    std::uint32_t id = 0;
    SwitchId tor = kInvalidSwitch;
    std::unique_ptr<Smux> mux;
    bool alive = true;
  };

  VipRecord& record(Ipv4Address vip);
  const VipRecord* find_record(Ipv4Address vip) const;
  // Runs the invariant auditor over a fresh snapshot (plus a journal replay)
  // and raises every violation through the audit/check.h policy. No-op when
  // the process audit level is off. `converged_placement` is false between
  // the §4.2 withdraw and announce phases.
  void audit_now(bool converged_placement, const char* where);
  Hmux& ensure_hmux(SwitchId s);
  void journal_event(telemetry::EventKind kind, Ipv4Address vip = {}, Ipv4Address dip = {},
                     std::uint32_t sw = telemetry::kNoSwitch, std::string detail = {});

  // Assignment-updater primitives (switch-agent + BGP ops).
  bool place_on_hmux(VipRecord& rec, SwitchId target);
  // Installs a large-fanout VIP: TIP partitions on helper switches, TIP
  // pointers on the primary. Returns false when no helper set fits.
  bool place_fanout_on_hmux(VipRecord& rec, SwitchId target);
  void withdraw_from_hmux(VipRecord& rec);
  void sync_smuxes(const VipRecord& rec);
  void purge_from_smuxes(Ipv4Address vip);

  const FatTree* fabric_;
  DuetConfig config_;
  FlowHasher hasher_;
  AssignmentOptions options_;
  VipAssigner assigner_;
  RoutingFabric routing_;
  Rng rng_;

  std::unordered_map<Ipv4Address, VipRecord> vips_;
  std::unordered_map<VipId, Ipv4Address> vip_by_id_;
  VipId next_vip_id_ = 0;
  std::unordered_map<SwitchId, std::unique_ptr<Hmux>> hmuxes_;
  std::uint32_t next_tip_ = (210u << 24) + 1;  // TIP pool: 210.0.0.0/8
  std::vector<SmuxInstance> smuxes_;
  Ipv4Prefix aggregate_;
  std::unordered_set<SwitchId> dead_switches_;
  bool have_assignment_ = false;
  Assignment current_;

  struct Telemetry {
    telemetry::MetricRegistry registry;
    telemetry::EventJournal journal;
  };
  Telemetry telemetry_;
  double clock_us_ = 0.0;
};

}  // namespace duet
