// Property-based and parameterized sweeps over the library's core
// invariants. Where the other test files pin concrete scenarios, these
// sweep fabric shapes, group sizes, seeds and load levels and assert the
// properties that must hold everywhere:
//   * routing: flow conservation, distance symmetry, DAG validity;
//   * hashing: device-independent agreement, removal monotonicity;
//   * assignment: resource feasibility, traffic conservation, determinism;
//   * migration: plan consistency and revalidation idempotence.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "dataplane/pipeline.h"
#include "duet/assignment.h"
#include "duet/migration.h"
#include "duet/smux.h"
#include "exec/replay.h"
#include "sim/flowsim.h"
#include "telemetry/export.h"
#include "topo/paths.h"
#include "workload/tracegen.h"

namespace duet {
namespace {

// --- Routing invariants across fabric shapes -----------------------------------

struct FabricShape {
  std::size_t containers, tors, cores;
};

class RoutingProperty : public ::testing::TestWithParam<FabricShape> {
 protected:
  RoutingProperty()
      : ft_(build_fattree(
            FatTreeParams::scaled(GetParam().containers, GetParam().tors, GetParam().cores))) {}
  FatTree ft_;
};

TEST_P(RoutingProperty, UnitFlowConservesIntoDestination) {
  // One unit injected at src must arrive, in total, at dst.
  const EcmpRouting r{ft_.topo};
  Rng rng{1};
  for (int trial = 0; trial < 20; ++trial) {
    const SwitchId src = ft_.tors[rng.uniform(ft_.tors.size())];
    const SwitchId dst = ft_.tors[rng.uniform(ft_.tors.size())];
    if (src == dst) continue;
    double into_dst = 0.0;
    for (const auto& [idx, frac] : r.unit_flow(src, dst)) {
      const auto link = static_cast<LinkId>(idx / 2);
      const auto& li = ft_.topo.link_info(link);
      const SwitchId to = (idx % 2 == 0) ? li.b : li.a;
      if (to == dst) into_dst += frac;
    }
    EXPECT_NEAR(into_dst, 1.0, 1e-9) << "src=" << src << " dst=" << dst;
  }
}

TEST_P(RoutingProperty, DistanceIsSymmetricOnFatTree) {
  const EcmpRouting r{ft_.topo};
  Rng rng{2};
  for (int trial = 0; trial < 30; ++trial) {
    const SwitchId a = static_cast<SwitchId>(rng.uniform(ft_.topo.switch_count()));
    const SwitchId b = static_cast<SwitchId>(rng.uniform(ft_.topo.switch_count()));
    EXPECT_EQ(r.distance(a, b), r.distance(b, a));
  }
}

TEST_P(RoutingProperty, SampledPathsAreShortest) {
  const EcmpRouting r{ft_.topo};
  Rng rng{3};
  for (int trial = 0; trial < 20; ++trial) {
    const SwitchId src = ft_.tors[rng.uniform(ft_.tors.size())];
    const SwitchId dst = ft_.cores[rng.uniform(ft_.cores.size())];
    const auto path = r.sample_path(src, dst, rng());
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size() - 1, r.distance(src, dst));
  }
}

TEST_P(RoutingProperty, SingleSwitchFailureNeverPartitionsFatTree) {
  // A FatTree with >1 Agg per container and >1 Core survives any single
  // non-ToR failure; a failed ToR only cuts off itself.
  Rng rng{4};
  for (int trial = 0; trial < 10; ++trial) {
    const SwitchId dead = static_cast<SwitchId>(rng.uniform(ft_.topo.switch_count()));
    const EcmpRouting r{ft_.topo, {dead}, {}};
    for (int probes = 0; probes < 10; ++probes) {
      const SwitchId a = ft_.tors[rng.uniform(ft_.tors.size())];
      const SwitchId b = ft_.tors[rng.uniform(ft_.tors.size())];
      if (a == dead || b == dead) continue;
      EXPECT_TRUE(r.reachable(a, b)) << "dead=" << dead;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RoutingProperty,
                         ::testing::Values(FabricShape{2, 2, 2}, FabricShape{3, 4, 2},
                                           FabricShape{4, 6, 4}, FabricShape{6, 4, 6}),
                         [](const auto& info) {
                           return "c" + std::to_string(info.param.containers) + "t" +
                                  std::to_string(info.param.tors) + "k" +
                                  std::to_string(info.param.cores);
                         });

// --- Hash agreement across devices, sweeping group size and seed ----------------

class HashAgreement : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(HashAgreement, HmuxSmuxAndSecondHmuxAllAgree) {
  const auto [dip_count, seed] = GetParam();
  const FlowHasher hasher{seed};
  const Ipv4Address vip{100, 7, 7, 7};
  std::vector<Ipv4Address> dips;
  for (int i = 0; i < dip_count; ++i) dips.push_back(Ipv4Address{(10u << 24) + 77u + i});

  SwitchDataPlane hmux_a{hasher}, hmux_b{hasher};
  DuetConfig cfg;
  Smux smux{0, hasher, cfg};
  ASSERT_TRUE(hmux_a.install_vip(vip, dips));
  ASSERT_TRUE(hmux_b.install_vip(vip, dips));
  smux.set_vip(vip, dips);

  for (std::uint16_t sp = 1; sp <= 300; ++sp) {
    Packet pa{FiveTuple{Ipv4Address(172, 1, 2, 3), vip, sp, 443, IpProto::kTcp}, 64};
    Packet pb = pa, ps = pa;
    ASSERT_EQ(hmux_a.process(pa), PipelineVerdict::kEncapsulated);
    ASSERT_EQ(hmux_b.process(pb), PipelineVerdict::kEncapsulated);
    ASSERT_TRUE(smux.process(ps));
    EXPECT_EQ(pa.outer().outer_dst, pb.outer().outer_dst);
    EXPECT_EQ(pa.outer().outer_dst, ps.outer().outer_dst);
  }
}

TEST_P(HashAgreement, RemovalNeverRemapsSurvivors) {
  const auto [dip_count, seed] = GetParam();
  if (dip_count < 2) GTEST_SKIP();
  ResilientHashGroup g{static_cast<std::size_t>(dip_count), 8, seed};
  Rng rng{seed};
  std::unordered_map<std::uint64_t, std::uint32_t> before;
  for (int f = 0; f < 2000; ++f) {
    const auto h = rng();
    before[h] = g.select(h);
  }
  const auto victim = static_cast<std::uint32_t>(rng.uniform(dip_count));
  g.remove_member(victim);
  for (const auto& [h, m] : before) {
    if (m != victim) {
      EXPECT_EQ(g.select(h), m);
    } else {
      EXPECT_NE(g.select(h), victim);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSweep, HashAgreement,
                         ::testing::Combine(::testing::Values(2, 3, 8, 33, 128, 512),
                                            ::testing::Values(1ULL, 42ULL, 0xdeadbeefULL)));

// --- Assignment invariants across load levels -----------------------------------

class AssignmentProperty : public ::testing::TestWithParam<double> {
 protected:
  AssignmentProperty() : fabric_(build_fattree(FatTreeParams::scaled(4, 6, 4))) {
    TraceParams p;
    p.vip_count = 300;
    p.total_gbps = GetParam();
    p.epochs = 2;
    p.seed = 7 + static_cast<std::uint64_t>(GetParam());
    trace_ = generate_trace(fabric_, p);
    demands_ = build_demands(fabric_, trace_, 0);
  }
  FatTree fabric_;
  Trace trace_;
  std::vector<VipDemand> demands_;
};

TEST_P(AssignmentProperty, NoResourceEverExceedsCapacity) {
  AssignmentOptions o;
  o.stop_on_first_failure = false;
  const auto a = VipAssigner{fabric_, o}.assign(demands_);
  for (const auto used : a.switch_dips_used) EXPECT_LE(used, o.switch_dip_capacity);
  for (LinkId l = 0; l < fabric_.topo.link_count(); ++l) {
    const double cap = o.link_headroom * fabric_.topo.capacity_gbps(l);
    EXPECT_LE(a.link_load_gbps[l * 2], cap + 1e-6);
    EXPECT_LE(a.link_load_gbps[l * 2 + 1], cap + 1e-6);
  }
}

TEST_P(AssignmentProperty, TrafficIsConserved) {
  const auto a = VipAssigner{fabric_, AssignmentOptions{}}.assign(demands_);
  EXPECT_NEAR(a.hmux_gbps + a.smux_gbps, total_demand_gbps(demands_), 1e-6);
  EXPECT_EQ(a.placement.size() + a.on_smux.size(), demands_.size());
}

TEST_P(AssignmentProperty, RevalidationOfFreshAssignmentIsLossless) {
  // Re-checking an assignment against the demands that produced it must not
  // evict anything (same order, same loads).
  const VipAssigner assigner{fabric_, AssignmentOptions{}};
  const auto a = assigner.assign(demands_);
  const auto again = assigner.revalidate(demands_, a);
  EXPECT_EQ(again.placement.size(), a.placement.size());
  EXPECT_NEAR(again.hmux_gbps, a.hmux_gbps, 1e-6);
}

TEST_P(AssignmentProperty, SelfMigrationIsEmpty) {
  const auto a = VipAssigner{fabric_, AssignmentOptions{}}.assign(demands_);
  const auto plan = plan_migration(a, a, demands_);
  EXPECT_EQ(plan.move_count(), 0u);
  EXPECT_DOUBLE_EQ(plan.shuffled_gbps, 0.0);
}

TEST_P(AssignmentProperty, StickyChainStaysFeasibleOverEpochs) {
  const VipAssigner assigner{fabric_, AssignmentOptions{}};
  auto current = assigner.assign(demands_);
  const auto d1 = build_demands(fabric_, trace_, 1);
  current = assigner.assign_sticky(d1, current);
  for (const auto used : current.switch_dips_used) {
    EXPECT_LE(used, AssignmentOptions{}.switch_dip_capacity);
  }
  EXPECT_NEAR(current.hmux_gbps + current.smux_gbps, total_demand_gbps(d1), 1e-6);
}

TEST_P(AssignmentProperty, FlowSimAgreesOnMaxUtilization) {
  // The assignment's own view of link load must match an independent
  // simulation of its HMux-placed VIPs.
  const auto a = VipAssigner{fabric_, AssignmentOptions{}}.assign(demands_);
  std::vector<VipDemand> placed;
  for (const auto& d : demands_) {
    if (a.on_hmux(d.id)) placed.push_back(d);
  }
  const auto sim = simulate_flows(fabric_, placed, a, {fabric_.tors[0]}, healthy_scenario());
  double assigner_max = 0.0;
  for (LinkId l = 0; l < fabric_.topo.link_count(); ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      assigner_max = std::max(assigner_max,
                              a.link_load_gbps[l * 2 + dir] / fabric_.topo.capacity_gbps(l));
    }
  }
  EXPECT_NEAR(sim.max_link_utilization, assigner_max, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, AssignmentProperty,
                         ::testing::Values(50.0, 200.0, 500.0, 900.0),
                         [](const auto& info) {
                           return "gbps" + std::to_string(static_cast<int>(info.param));
                         });

// --- Trace generator invariants across seeds -------------------------------------

class TraceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceProperty, EveryVipIsServableByItsBackends) {
  const auto fabric = build_fattree(FatTreeParams::scaled(3, 4, 3));
  TraceParams p;
  p.vip_count = 200;
  p.total_gbps = 300.0;
  p.epochs = 5;
  p.seed = GetParam();
  const auto trace = generate_trace(fabric, p);
  for (const auto& v : trace.vips) {
    for (std::size_t e = 0; e < trace.epochs; ++e) {
      // No DIP is ever asked for more than ~2x the NIC headroom constant.
      const double per_dip = v.gbps(e) / static_cast<double>(v.dips.size());
      EXPECT_LE(per_dip, p.max_gbps_per_dip * 2.0 + 1e-9)
          << "vip rank " << v.id << " epoch " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperty, ::testing::Values(1ULL, 99ULL, 2014ULL, 31337ULL));

// --- Registry merge: permutation invariance --------------------------------------
//
// The sweep engine's contract leans on MetricRegistry::merge being a faithful
// aggregation: merging K sharded registries — in ANY order — must produce the
// same document as recording everything into one registry. Counts and bucket
// tallies are integers; the float-summed fields (histogram sum, gauge total)
// are only order-independent when the addition itself is exact, so samples
// are dyadic rationals (k/1024) whose partial sums carry no rounding — this
// makes byte-equality across permutations well-defined. (Real sweeps record
// arbitrary doubles; that is exactly why exec/sweep.h merges in FIXED shard
// order rather than relying on permutation invariance.)

class RegistryMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryMergeProperty, ShardedMergeEqualsSingleRegistryInAnyOrder) {
  constexpr std::size_t kShards = 6;
  const auto bounds = telemetry::Histogram::linear_bounds(0.0, 1.0, 20);

  // Reference: everything recorded into one registry, in shard order.
  telemetry::MetricRegistry single;
  std::vector<telemetry::MetricRegistry> shards(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    Rng rng{exec::shard_seed(GetParam(), s)};
    auto& sh = shards[s];
    const int n = 50 + static_cast<int>(rng.uniform(100));
    for (int i = 0; i < n; ++i) {
      const double v = static_cast<double>(rng.uniform(1024)) / 1024.0;
      single.counter("p.events").inc();
      sh.counter("p.events").inc();
      single.histogram("p.values", bounds).record(v);
      sh.histogram("p.values", bounds).record(v);
      single.gauge("p.total").add(v);
      sh.gauge("p.total").add(v);
    }
  }

  // With exact sample sums, the whole document — counters, gauge total,
  // histogram sum/mean/extremes/buckets — must match byte for byte no matter
  // which order the shards merge in.
  const std::string want = telemetry::JsonExporter::to_json(single);
  std::vector<std::size_t> perm(kShards);
  std::iota(perm.begin(), perm.end(), 0);
  Rng shuffle_rng{GetParam() ^ 0xabcdefULL};
  for (int trial = 0; trial < 5; ++trial) {
    shuffle_rng.shuffle(perm);
    telemetry::MetricRegistry merged;
    for (const std::size_t s : perm) merged.merge(shards[s]);
    EXPECT_EQ(telemetry::JsonExporter::to_json(merged), want) << "permutation trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryMergeProperty,
                         ::testing::Values(1ULL, 42ULL, 0xdeadbeefULL));

// --- Parallel packet replay: shard-count invariance ------------------------------

class ReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayProperty, ShardedReplayMatchesSerialReference) {
  const std::uint64_t seed = GetParam();
  const FlowHasher hasher{seed};
  const Ipv4Address vip{100, 9, 9, 9};
  std::vector<Ipv4Address> dips;
  for (int i = 0; i < 24; ++i) dips.push_back(Ipv4Address{(10u << 24) + 500u + i});

  const auto make_replica = [&](exec::ShardContext&) {
    SwitchDataPlane dp{hasher};
    EXPECT_TRUE(dp.install_vip(vip, dips));
    return dp;
  };

  // Random mix of VIP hits and misses.
  Rng rng{seed ^ 0x5eedULL};
  std::vector<Packet> packets;
  for (int i = 0; i < 4000; ++i) {
    const Ipv4Address dst = rng.uniform(4) == 0 ? Ipv4Address{9, 9, 9, 9} : vip;
    packets.emplace_back(FiveTuple{Ipv4Address(172, 1, 2, 3), dst,
                                   static_cast<std::uint16_t>(rng.uniform(65535) + 1), 443,
                                   IpProto::kTcp},
                         64);
  }

  // Serial ground truth, bypassing the replay machinery entirely.
  SwitchDataPlane ref_dp{hasher};
  ASSERT_TRUE(ref_dp.install_vip(vip, dips));
  std::vector<PipelineVerdict> ref_verdicts;
  std::vector<Ipv4Address> ref_dst;
  for (const Packet& p : packets) {
    Packet copy = p;
    const auto v = ref_dp.process(copy);
    ref_verdicts.push_back(v);
    ref_dst.push_back(v == PipelineVerdict::kEncapsulated ? copy.outer().outer_dst
                                                          : Ipv4Address{});
  }

  exec::ThreadPool pool{4};
  exec::ReplayResult one;
  for (const std::size_t shards : {1, 3, 8}) {
    exec::ReplayOptions opts;
    opts.pool = &pool;
    opts.shards = shards;
    auto got = exec::replay_packets(make_replica, packets, opts);
    EXPECT_EQ(got.verdicts, ref_verdicts) << "shards " << shards;
    EXPECT_EQ(got.encap_dst, ref_dst) << "shards " << shards;
    EXPECT_EQ(got.no_match + got.encapsulated + got.dropped, packets.size());
    if (shards == 1) {
      one = std::move(got);
    } else {
      EXPECT_TRUE(got == one) << "shards " << shards;
      // Merged per-shard counters are shard-count invariant too.
      EXPECT_EQ(got.metrics->counter("duet.replay.table_lookups").value(),
                one.metrics->counter("duet.replay.table_lookups").value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty, ::testing::Values(1ULL, 7ULL, 0xfeedULL));

}  // namespace
}  // namespace duet
