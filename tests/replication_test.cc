// Tests for the §9 VIP-replication extension.
#include <gtest/gtest.h>

#include <unordered_set>

#include "dataplane/pipeline.h"
#include "duet/replication.h"
#include "workload/tracegen.h"

namespace duet {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : fabric_(build_fattree(FatTreeParams::scaled(4, 6, 4))) {
    TraceParams p;
    p.vip_count = 250;
    p.total_gbps = 400.0;
    p.epochs = 2;
    p.max_dips = 80;
    trace_ = generate_trace(fabric_, p);
    demands_ = build_demands(fabric_, trace_, 0);
  }

  ReplicatedAssignment assign(std::size_t replicas, bool anti_affinity = true) {
    AssignmentOptions o;
    ReplicationOptions ro;
    ro.replicas = replicas;
    ro.container_anti_affinity = anti_affinity;
    return ReplicatedAssigner{fabric_, o, ro}.assign(demands_);
  }

  FatTree fabric_;
  Trace trace_;
  std::vector<VipDemand> demands_;
};

TEST_F(ReplicationTest, EveryPlacedVipHasExactlyRDistinctHomes) {
  const auto a = assign(3);
  EXPECT_FALSE(a.placement.empty());
  for (const auto& [vip, homes] : a.placement) {
    (void)vip;
    ASSERT_EQ(homes.size(), 3u);
    std::unordered_set<SwitchId> uniq(homes.begin(), homes.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST_F(ReplicationTest, AntiAffinitySeparatesContainers) {
  const auto a = assign(2);
  for (const auto& [vip, homes] : a.placement) {
    (void)vip;
    std::unordered_set<std::uint64_t> domains;
    for (const SwitchId s : homes) {
      const auto& info = fabric_.topo.switch_info(s);
      domains.insert(info.container != kNoContainer ? info.container : (1ULL << 32) + s);
    }
    EXPECT_EQ(domains.size(), homes.size()) << "two replicas share a failure domain";
  }
}

TEST_F(ReplicationTest, ReplicationConsumesProportionalMemory) {
  const auto a1 = assign(1);
  const auto a2 = assign(2);
  std::size_t mem1 = 0, mem2 = 0;
  for (const auto m : a1.switch_dips_used) mem1 += m;
  for (const auto m : a2.switch_dips_used) mem2 += m;
  // Per placed VIP, R=2 uses twice the slots.
  const double per_vip1 = static_cast<double>(mem1) / a1.placement.size();
  const double per_vip2 = static_cast<double>(mem2) / a2.placement.size();
  EXPECT_NEAR(per_vip2, 2.0 * per_vip1, per_vip1 * 0.2);
}

TEST_F(ReplicationTest, ReplicationSlashesFailoverSpill) {
  const auto a1 = assign(1);
  const auto a2 = assign(2);
  const auto f1 = analyze_failover_replicated(fabric_, demands_, a1);
  const auto f2 = analyze_failover_replicated(fabric_, demands_, a2);
  // With anti-affinity and R=2, no container failure can orphan a VIP.
  EXPECT_DOUBLE_EQ(f2.worst_container_gbps, 0.0);
  EXPECT_GT(f1.worst_gbps(), 0.0);
  EXPECT_LT(f2.worst_gbps(), f1.worst_gbps());
}

TEST_F(ReplicationTest, SingleReplicaMatchesFailoverModelOfBaseAssigner) {
  // R=1 must reduce to the plain single-home analysis on the same placement.
  const auto a1 = assign(1);
  Assignment flat;
  for (const auto& [vip, homes] : a1.placement) flat.placement.emplace(vip, homes.front());
  flat.on_smux = a1.on_smux;
  const auto f_rep = analyze_failover_replicated(fabric_, demands_, a1);
  const auto f_flat = analyze_failover(fabric_, demands_, flat);
  EXPECT_NEAR(f_rep.worst_three_switch_gbps, f_flat.worst_three_switch_gbps, 1e-9);
}

TEST_F(ReplicationTest, TrafficConserved) {
  const auto a = assign(2);
  EXPECT_NEAR(a.hmux_gbps + a.smux_gbps, total_demand_gbps(demands_), 1e-6);
}

TEST_F(ReplicationTest, HigherReplicationPlacesLessTraffic) {
  // The §9 complexity/cost trade-off: more replicas, fewer VIPs fit.
  AssignmentOptions tight;
  tight.host_table_capacity = 300;
  ReplicationOptions r1{1, true}, r3{3, true};
  const auto a1 = ReplicatedAssigner{fabric_, tight, r1}.assign(demands_);
  const auto a3 = ReplicatedAssigner{fabric_, tight, r3}.assign(demands_);
  EXPECT_GT(a1.placement.size(), a3.placement.size());
  EXPECT_GE(a1.hmux_fraction(), a3.hmux_fraction());
}

TEST_F(ReplicationTest, ReplicasAgreeOnDipSelection) {
  // The free lunch that makes anycast replication safe: identical groups on
  // every replica pick identical DIPs for the same flow.
  const auto a = assign(2);
  const auto& [vip_id, homes] = *a.placement.begin();
  const auto& workload = trace_.vips[vip_id];
  const FlowHasher hasher{123};
  SwitchDataPlane dp_a{hasher}, dp_b{hasher};
  ASSERT_TRUE(dp_a.install_vip(workload.vip, workload.dips));
  ASSERT_TRUE(dp_b.install_vip(workload.vip, workload.dips));
  for (std::uint16_t sp = 1; sp <= 200; ++sp) {
    Packet pa{FiveTuple{Ipv4Address(172, 0, 0, 1), workload.vip, sp, 80, IpProto::kTcp}, 64};
    Packet pb = pa;
    dp_a.process(pa);
    dp_b.process(pb);
    EXPECT_EQ(pa.outer().outer_dst, pb.outer().outer_dst);
  }
  (void)homes;
}

TEST(ReplicationOptionsTest, ZeroReplicasAborts) {
  const auto fabric = build_fattree(FatTreeParams::testbed());
  EXPECT_DEATH(
      { ReplicatedAssigner(fabric, AssignmentOptions{}, ReplicationOptions{0, true}); },
      "replication factor");
}

}  // namespace
}  // namespace duet
