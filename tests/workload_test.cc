#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "workload/demand.h"
#include "workload/tracegen.h"

namespace duet {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : fabric_(build_fattree(FatTreeParams::scaled(4, 8, 4))) {
    params_.vip_count = 500;
    params_.total_gbps = 800.0;
    params_.epochs = 6;
    params_.max_dips = 300;
    trace_ = generate_trace(fabric_, params_);
  }
  FatTree fabric_;
  TraceParams params_;
  Trace trace_;
};

TEST_F(TraceTest, ShapeMatchesParams) {
  EXPECT_EQ(trace_.vips.size(), params_.vip_count);
  EXPECT_EQ(trace_.epochs, params_.epochs);
  for (const auto& v : trace_.vips) {
    EXPECT_EQ(v.gbps_by_epoch.size(), params_.epochs);
    EXPECT_FALSE(v.dips.empty());
    EXPECT_LE(v.dips.size(), params_.max_dips);
  }
}

TEST_F(TraceTest, VipAddressesUniqueAndUnderAggregate) {
  std::unordered_set<Ipv4Address> seen;
  for (const auto& v : trace_.vips) {
    EXPECT_TRUE(seen.insert(v.vip).second);
    EXPECT_TRUE(trace_.vip_aggregate.contains(v.vip));
  }
}

TEST_F(TraceTest, TotalTrafficNearTarget) {
  // Epoch 0 has no drift; the Zipf shares sum to exactly the target.
  EXPECT_NEAR(trace_.total_gbps(0), params_.total_gbps, params_.total_gbps * 0.01);
  // Later epochs drift but stay in the same ballpark (§8.6: 6.2-7.1 Tbps on
  // a nominal ~6.7).
  for (std::size_t e = 1; e < trace_.epochs; ++e) {
    EXPECT_GT(trace_.total_gbps(e), params_.total_gbps * 0.5);
    EXPECT_LT(trace_.total_gbps(e), params_.total_gbps * 2.0);
  }
}

TEST_F(TraceTest, TrafficIsSkewedLikeFig15) {
  // Fig 15: a small head of elephant VIPs carries most of the bytes.
  double total = 0.0, head = 0.0;
  const std::size_t head_count = trace_.vips.size() / 10;
  for (std::size_t i = 0; i < trace_.vips.size(); ++i) {
    total += trace_.vips[i].gbps(0);
    if (i < head_count) head += trace_.vips[i].gbps(0);
  }
  EXPECT_GT(head / total, 0.6) << "top 10% of VIPs should dominate traffic";
}

TEST_F(TraceTest, VipsEmittedHeaviestFirst) {
  for (std::size_t i = 1; i < trace_.vips.size(); ++i) {
    EXPECT_GE(trace_.vips[i - 1].gbps(0), trace_.vips[i].gbps(0));
  }
}

TEST_F(TraceTest, SourceFractionsSumToOne) {
  for (const auto& v : trace_.vips) {
    double sum = 0.0;
    for (const auto& s : v.sources) sum += s.fraction;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(TraceTest, InternetShareEntersAtCores) {
  // §2: ~30 % of VIP traffic is Internet-borne, entering via Core switches.
  for (const auto& v : trace_.vips) {
    double core_frac = 0.0;
    for (const auto& s : v.sources) {
      if (fabric_.topo.switch_info(s.ingress).role == SwitchRole::kCore) {
        core_frac += s.fraction;
      }
    }
    EXPECT_NEAR(core_frac, params_.internet_fraction, 1e-9);
  }
}

TEST_F(TraceTest, DipsAreDistinctAttachedServers) {
  for (const auto& v : trace_.vips) {
    std::unordered_set<Ipv4Address> seen;
    for (const auto d : v.dips) {
      EXPECT_TRUE(seen.insert(d).second) << "duplicate DIP";
      EXPECT_NE(fabric_.topo.tor_of(d), kInvalidSwitch);
    }
  }
}

TEST_F(TraceTest, DeterministicForSameSeed) {
  const Trace again = generate_trace(fabric_, params_);
  ASSERT_EQ(again.vips.size(), trace_.vips.size());
  for (std::size_t i = 0; i < trace_.vips.size(); ++i) {
    EXPECT_EQ(again.vips[i].vip, trace_.vips[i].vip);
    EXPECT_EQ(again.vips[i].dips, trace_.vips[i].dips);
    EXPECT_EQ(again.vips[i].gbps_by_epoch, trace_.vips[i].gbps_by_epoch);
  }
}

TEST_F(TraceTest, DifferentSeedsDiffer) {
  auto p2 = params_;
  p2.seed += 1;
  const Trace other = generate_trace(fabric_, p2);
  bool differs = false;
  for (std::size_t i = 0; i < trace_.vips.size() && !differs; ++i) {
    differs = other.vips[i].dips != trace_.vips[i].dips;
  }
  EXPECT_TRUE(differs);
}

// --- demands -----------------------------------------------------------------

TEST_F(TraceTest, DemandsConserveTraffic) {
  const auto demands = build_demands(fabric_, trace_, 0);
  ASSERT_EQ(demands.size(), trace_.vips.size());
  EXPECT_NEAR(total_demand_gbps(demands), trace_.total_gbps(0), 1e-6);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    double in = 0.0, out = 0.0;
    for (const auto& [sw, g] : d.ingress_gbps) {
      (void)sw;
      in += g;
    }
    for (const auto& [sw, g] : d.dip_tor_gbps) {
      (void)sw;
      out += g;
    }
    EXPECT_NEAR(in, d.total_gbps, 1e-9);
    EXPECT_NEAR(out, d.total_gbps, 1e-9);
    EXPECT_EQ(d.dip_count, trace_.vips[i].dips.size());
  }
}

TEST_F(TraceTest, DipTorSharesFollowDipPlacement) {
  const auto demands = build_demands(fabric_, trace_, 0);
  const auto& v = trace_.vips[0];
  const auto& d = demands[0];
  // Each DIP contributes total/|dips| to its ToR.
  const double per_dip = d.total_gbps / static_cast<double>(v.dips.size());
  std::unordered_map<SwitchId, int> dips_per_tor;
  for (const auto dip : v.dips) ++dips_per_tor[fabric_.topo.tor_of(dip)];
  for (const auto& [tor, gbps] : d.dip_tor_gbps) {
    EXPECT_NEAR(gbps, per_dip * dips_per_tor[tor], 1e-9);
  }
}

TEST_F(TraceTest, LaterEpochDemandsTrackDrift) {
  const auto d0 = build_demands(fabric_, trace_, 0);
  const auto d3 = build_demands(fabric_, trace_, 3);
  bool changed = false;
  for (std::size_t i = 0; i < d0.size() && !changed; ++i) {
    changed = std::abs(d0[i].total_gbps - d3[i].total_gbps) > 1e-9;
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace duet
